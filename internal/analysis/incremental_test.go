package analysis

import (
	"fmt"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// requireSameResult asserts bit-identical bounds and backlogs.
func requireSameResult(t *testing.T, label string, full, incr *Result) {
	t.Helper()
	if full.Algorithm != incr.Algorithm {
		t.Fatalf("%s: algorithm %q vs %q", label, full.Algorithm, incr.Algorithm)
	}
	if len(full.Bounds) != len(incr.Bounds) {
		t.Fatalf("%s: bounds length %d vs %d", label, len(full.Bounds), len(incr.Bounds))
	}
	for i := range full.Bounds {
		if full.Bounds[i] != incr.Bounds[i] {
			t.Errorf("%s: bound %d: full %v incremental %v", label, i, full.Bounds[i], incr.Bounds[i])
		}
	}
	for s := range full.Backlogs {
		if full.Backlog(s) != incr.Backlog(s) {
			t.Errorf("%s: backlog %d: full %v incremental %v", label, s, full.Backlog(s), incr.Backlog(s))
		}
	}
}

// extendAndCompare splits net into (all but last connection) + candidate,
// runs baseline+extend, and compares against the full analysis of net.
func extendAndCompare(t *testing.T, label string, a Incremental, net *topo.Network) *Extension {
	t.Helper()
	if len(net.Connections) == 0 {
		t.Fatalf("%s: network has no connections", label)
	}
	base := &topo.Network{Servers: net.Servers, Connections: net.Connections[:len(net.Connections)-1]}
	cand := net.Connections[len(net.Connections)-1]

	bl, err := a.NewBaseline(base)
	if err != nil {
		t.Fatalf("%s: baseline: %v", label, err)
	}
	ext, err := bl.Extend(cand)
	if err != nil {
		t.Fatalf("%s: extend: %v", label, err)
	}
	full, err := a.Analyze(net)
	if err != nil {
		t.Fatalf("%s: full analyze: %v", label, err)
	}
	requireSameResult(t, label, full, ext.Result())
	return ext
}

func TestExtendMatchesFullOnRandomNetworks(t *testing.T) {
	for _, a := range []Incremental{Decomposed{}, Integrated{}} {
		for seed := int64(0); seed < 12; seed++ {
			net, err := topo.RandomFeedforward(6, 8, 0.5, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := range net.Connections {
				net.Connections[i].Deadline = 100
			}
			extendAndCompare(t, fmt.Sprintf("%s/seed%d", a.Name(), seed), a, net)
		}
	}
}

// TestExtendMatchesFullWhenPartitionShifts forces the integrated partition
// to change shape when the candidate arrives: without the candidate there
// is no through traffic between s1 and s2, so the partition is
// [s0,s1][s2][s3,s4...]; the candidate's route s1->s2 welds a chain there
// and shifts every later chain boundary. Replay must notice via the
// partition diff, not just via shared servers.
func TestExtendMatchesFullWhenPartitionShifts(t *testing.T) {
	const n = 6
	servers := make([]server.Server, n)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("s%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	conn := func(name string, path ...int) topo.Connection {
		return topo.Connection{
			Name:       name,
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.05},
			AccessRate: 1,
			Path:       path,
			Deadline:   100,
		}
	}
	net := &topo.Network{
		Servers: servers,
		Connections: []topo.Connection{
			conn("ab", 0, 1),
			conn("cd", 2, 3),
			conn("ef", 4, 5),
			conn("tail", 3, 4, 5),
			conn("weld", 1, 2, 3), // the candidate: bridges s1->s2
		},
	}
	ext := extendAndCompare(t, "partition-shift", Integrated{}, net)
	if ext.Stats.RecomputedUnits == 0 {
		t.Fatal("partition shift must recompute units")
	}
}

// TestExtendReplaysUntouchedUnits checks the point of the exercise: a
// candidate at the tail of a long tandem leaves upstream units replayed.
func TestExtendReplaysUntouchedUnits(t *testing.T) {
	const n = 8
	servers := make([]server.Server, n)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("s%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	var conns []topo.Connection
	for i := 0; i+1 < n; i++ {
		conns = append(conns, topo.Connection{
			Name:       fmt.Sprintf("c%d", i),
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.02},
			AccessRate: 1,
			Path:       []int{i, i + 1},
			Deadline:   100,
		})
	}
	// Candidate crosses only the last pair.
	conns = append(conns, topo.Connection{
		Name:       "cand",
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.02},
		AccessRate: 1,
		Path:       []int{n - 2, n - 1},
		Deadline:   100,
	})
	net := &topo.Network{Servers: servers, Connections: conns}
	for _, a := range []Incremental{Decomposed{}, Integrated{}} {
		ext := extendAndCompare(t, "tail/"+a.Name(), a, net)
		if ext.Stats.ReplayedUnits == 0 {
			t.Errorf("%s: tail candidate should replay upstream units, stats %+v", a.Name(), ext.Stats)
		}
		if ext.Stats.Affected >= len(conns)-1 {
			t.Errorf("%s: tail candidate affected everything: %+v", a.Name(), ext.Stats)
		}
	}
}

// TestPromoteChains checks that committing an extension yields a baseline
// whose further extensions still match the full analysis.
func TestPromoteChains(t *testing.T) {
	net, err := topo.RandomFeedforward(5, 10, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 100
	}
	for _, a := range []Incremental{Decomposed{}, Integrated{}} {
		bl, err := a.NewBaseline(&topo.Network{Servers: net.Servers, Connections: net.Connections[:4]})
		if err != nil {
			t.Fatal(err)
		}
		for k := 4; k < len(net.Connections); k++ {
			ext, err := bl.Extend(net.Connections[k])
			if err != nil {
				t.Fatal(err)
			}
			full, err := a.Analyze(&topo.Network{Servers: net.Servers, Connections: net.Connections[:k+1]})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("%s/promote%d", a.Name(), k), full, ext.Result())
			bl = ext.Promote()
		}
	}
}

func TestExtendUnstableTrial(t *testing.T) {
	net, err := topo.RandomFeedforward(4, 4, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Integrated{}.NewBaseline(net)
	if err != nil {
		t.Fatal(err)
	}
	hog := topo.Connection{
		Name:   "hog",
		Bucket: traffic.TokenBucket{Sigma: 1, Rho: net.Servers[0].Capacity},
		Path:   []int{0},
	}
	ext, err := bl.Extend(hog)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Integrated{}.Analyze(&topo.Network{
		Servers:     net.Servers,
		Connections: append(append([]topo.Connection(nil), net.Connections...), hog),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "unstable", full, ext.Result())
}
