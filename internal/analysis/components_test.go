package analysis

import (
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

func TestComponentsLabeling(t *testing.T) {
	// Two chains (0-1-2 via two overlapping routes, 3-4) and an untouched
	// server 5.
	net := &topo.Network{
		Servers: make([]server.Server, 6),
		Connections: []topo.Connection{
			{Name: "a", Path: []int{0, 1}},
			{Name: "b", Path: []int{3, 4}},
			{Name: "c", Path: []int{1, 2}},
		},
	}
	view := Components(net)
	if view.Count != 2 {
		t.Fatalf("count %d, want 2", view.Count)
	}
	if view.Conn[0] != 0 || view.Conn[1] != 1 || view.Conn[2] != 0 {
		t.Fatalf("conn labels %v, want [0 1 0]", view.Conn)
	}
	wantServer := []int{0, 0, 0, 1, 1, -1}
	for s, want := range wantServer {
		if view.Server[s] != want {
			t.Errorf("server %d label %d, want %d", s, view.Server[s], want)
		}
	}
	if view.Sizes[0] != 2 || view.Sizes[1] != 1 {
		t.Fatalf("sizes %v, want [2 1]", view.Sizes)
	}
}

func TestComponentsOnBuilders(t *testing.T) {
	// On a fat-tree the labeling must be a true partition: connections
	// sharing any server share a label, and distinct components touch
	// disjoint server sets. Disjoint blocks have exactly one component per
	// block, with every connection of block b labeled b (blocks appear in
	// order, so dense ids match block indices).
	ft, err := topo.FatTree(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	view := Components(ft)
	sum := 0
	for _, s := range view.Sizes {
		sum += s
	}
	if sum != len(ft.Connections) {
		t.Fatalf("component sizes sum to %d, want %d", sum, len(ft.Connections))
	}
	for i, a := range ft.Connections {
		for _, s := range a.Path {
			if view.Server[s] != view.Conn[i] {
				t.Fatalf("connection %d (component %d) traverses server %d of component %d",
					i, view.Conn[i], s, view.Server[s])
			}
		}
	}
	db, err := topo.DisjointBlocks(5, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	view = Components(db)
	if view.Count != 5 {
		t.Fatalf("disjoint-block components %d, want 5", view.Count)
	}
	perBlock := len(db.Connections) / 5
	for i := range db.Connections {
		if view.Conn[i] != i/perBlock {
			t.Fatalf("connection %d labeled %d, want %d", i, view.Conn[i], i/perBlock)
		}
	}
}
