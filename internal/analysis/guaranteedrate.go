package analysis

import (
	"context"
	"fmt"

	"delaycalc/internal/minplus"
	"delaycalc/internal/topo"
)

// grServiceCurve returns the rate-latency service curve a GuaranteedRate
// server offers to connection c: beta_{R,T} with R the connection's
// reserved rate and T the server's scheduling latency. It fails when the
// connection has no reservation or the server is oversubscribed, mirroring
// the admission test a real fair-queueing scheduler performs.
func grServiceCurve(net *topo.Network, s, c int) (minplus.Curve, error) {
	srv := net.Servers[s]
	conn := net.Connections[c]
	if conn.Rate <= 0 {
		return minplus.Curve{}, fmt.Errorf("analysis: connection %d has no reserved rate at guaranteed-rate server %d", c, s)
	}
	total := 0.0
	for _, o := range net.ConnectionsAt(s) {
		total += net.Connections[o].Rate
	}
	if total > srv.Capacity+1e-9 {
		return minplus.Curve{}, fmt.Errorf("analysis: guaranteed-rate server %d oversubscribed: reserved %g > capacity %g", s, total, srv.Capacity)
	}
	return minplus.RateLatency(conn.Rate, srv.Latency), nil
}

// GuaranteedRateNetworkCurve implements the service-curve analysis in the
// setting where it is known to work well (the paper's Section 1.2):
// every server on the path offers the connection a rate-latency curve, and
// the end-to-end ("network") service curve is their min-plus convolution,
// so the burst penalty is paid only once. Analyze returns the delay bounds
// obtained from the horizontal deviation between each connection's source
// envelope and its network service curve.
type GuaranteedRateNetworkCurve struct{}

// Name implements Analyzer.
func (GuaranteedRateNetworkCurve) Name() string { return "GuaranteedRate/NetworkServiceCurve" }

// Analyze implements Analyzer.
func (GuaranteedRateNetworkCurve) Analyze(net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	res := &Result{Algorithm: "GuaranteedRate/NetworkServiceCurve"}
	res.Bounds = make([]float64, len(net.Connections))
	res.Stages = make([][]Stage, len(net.Connections))
	if pass, _, finite, perr := decomposedPass(context.Background(), net); perr == nil && finite {
		// Buffer bounds come from the per-hop propagation, which is also
		// valid for guaranteed-rate servers.
		res.Backlogs = pass.backlog
	}
	for i, conn := range net.Connections {
		betaNet := minplus.Curve{}
		for hop, s := range conn.Path {
			beta, err := grServiceCurve(net, s, i)
			if err != nil {
				return nil, err
			}
			if hop == 0 {
				betaNet = beta
			} else {
				betaNet = minplus.Convolve(betaNet, beta)
			}
		}
		d := minplus.HorizontalDeviation(conn.SourceEnvelope(), betaNet)
		res.Bounds[i] = d
		res.Stages[i] = []Stage{{Servers: append([]int(nil), conn.Path...), Delay: d}}
	}
	return denormalizeBacklogs(res, scale), nil
}
