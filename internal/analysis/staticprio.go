package analysis

import (
	"sort"

	"delaycalc/internal/minplus"
	"delaycalc/internal/topo"
)

// spLocalDelays computes per-connection local delay bounds at a
// static-priority server: each priority class receives the leftover
// service curve
//
//	beta_p(t) = [C*t - sum_{q with higher priority} G_q(t)]^+ ,
//
// which is exact for a preemptive-priority fluid server, and the class is
// served FIFO internally, so the class delay is the horizontal deviation
// between the class aggregate envelope and beta_p. This is the
// decomposition-style static-priority analysis of Cruz and of the authors'
// earlier RTSS'97 work, which the paper names as the basis of its announced
// static-priority extension. The returned slice is indexed like conns.
func spLocalDelays(net *topo.Network, s int, conns []int, p *propagation) []float64 {
	srv := net.Servers[s]
	// Group connections by priority class (lower value = more urgent).
	classes := make(map[int][]int)
	for _, c := range conns {
		classes[net.Connections[c].Priority] = append(classes[net.Connections[c].Priority], c)
	}
	prios := make([]int, 0, len(classes))
	for q := range classes {
		prios = append(prios, q)
	}
	sort.Ints(prios)

	delays := make(map[int]float64, len(classes))
	higher := minplus.Zero()
	for _, q := range prios {
		var classEnvs []minplus.Curve
		for _, c := range classes[q] {
			classEnvs = append(classEnvs, p.env[c])
		}
		classAgg := minplus.Sum(classEnvs...)
		beta := minplus.PositivePart(minplus.Sub(minplus.Rate(srv.Capacity), higher))
		delays[q] = minplus.HorizontalDeviation(classAgg, beta) + srv.Latency
		higher = minplus.Add(higher, classAgg)
	}
	out := make([]float64, len(conns))
	for i, c := range conns {
		out[i] = delays[net.Connections[c].Priority]
	}
	return out
}
