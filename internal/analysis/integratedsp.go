package analysis

import (
	"context"
	"fmt"
	"math"
	"sort"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// IntegratedSP extends Algorithm Integrated to static-priority networks —
// the extension the paper's conclusion announces as ongoing work.
//
// The construction layers the two leftover results this library already
// validates separately:
//
//  1. At an SP server, priority class p receives the leftover service
//     curve L(t) = [C*t - G_higher(t)]^+ (exact for preemptive-priority
//     fluid; see staticprio.go), of which a rate-latency minorant
//     beta_{R,T} with R = C - rate_higher and T the last zero of L is a
//     valid (slightly weaker) service curve.
//
//  2. Within its class the server is FIFO, so the theta-parameterized
//     FIFO residual family applies against same-class cross traffic on
//     top of the rate-latency guarantee:
//
//     beta_theta(t) = [ beta_{R,T}(t) - F_cross(t - theta) ]^+ . 1{t > theta},
//
//     the form used throughout FIFO network calculus for rate-latency
//     nodes; every theta >= 0 yields a sound bound.
//
// Chains of consecutive servers then convolve these per-class residuals
// exactly like the FIFO Integrated analyzer, clamped by the per-server
// class bounds. Classes are processed from the most urgent down, so the
// higher-class envelopes each class sees are already propagated.
type IntegratedSP struct {
	// ChainLength bounds the subnetwork size, as in Integrated.
	ChainLength int
}

// Name implements Analyzer.
func (IntegratedSP) Name() string { return "IntegratedSP" }

// Analyze implements Analyzer.
func (a IntegratedSP) Analyze(net *topo.Network) (*Result, error) {
	return a.AnalyzeContext(context.Background(), net)
}

// AnalyzeContext implements ContextAnalyzer: the per-class chain analysis
// checks the context between chains and classes, and the theta searches it
// spawns stop between candidates once the context is done. An uncancelled
// run is bit-identical to Analyze.
func (a IntegratedSP) AnalyzeContext(ctx context.Context, net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.StaticPriority {
			return nil, fmt.Errorf("analysis: IntegratedSP applies to static-priority networks; server %d is %v", i, s.Discipline)
		}
	}
	if !net.Stable() {
		return allInf("IntegratedSP", net), nil
	}
	chainer := Integrated{ChainLength: a.ChainLength}
	subnets, err := chainer.partition(net)
	if err != nil {
		return nil, err
	}
	ordered, err := orderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	p := newPropagation(net)
	for _, sn := range ordered {
		ok := analyzeSPChain(ctx, net, sn.servers, p)
		if err := ctx.Err(); err != nil {
			return nil, ctxErr(err)
		}
		if !ok {
			return allInf("IntegratedSP", net), nil
		}
	}
	return denormalizeBacklogs(p.result("IntegratedSP"), scale), nil
}

// analyzeSPChain handles one chain of static-priority servers: classes in
// priority order, each analyzed like a FIFO chain against the leftover
// rate-latency guarantees after all more-urgent classes.
func analyzeSPChain(ctx context.Context, net *topo.Network, chain []int, p *propagation) bool {
	pos := make(map[int]int, len(chain))
	for i, s := range chain {
		pos[s] = i
	}
	// Classes present in this chain, most urgent first.
	classSet := map[int]bool{}
	for _, s := range chain {
		for _, c := range net.ConnectionsAt(s) {
			classSet[net.Connections[c].Priority] = true
		}
	}
	classes := make([]int, 0, len(classSet))
	for q := range classSet {
		classes = append(classes, q)
	}
	sort.Ints(classes)

	// higherEnv[i] accumulates, per chain position, the envelopes of all
	// classes more urgent than the one currently analyzed (at their
	// position-local deformation).
	higherEnv := make([]minplus.Curve, len(chain))
	for i := range higherEnv {
		higherEnv[i] = minplus.Zero()
	}

	for _, class := range classes {
		if canceled(ctx) {
			return false
		}
		if !analyzeSPClass(ctx, net, chain, pos, class, higherEnv, p) {
			return false
		}
	}
	// Record whole-server backlog bounds: the total aggregate after all
	// classes have been propagated is exactly higherEnv.
	for i, s := range chain {
		p.recordBacklog(s, higherEnv[i], net.Servers[s].Capacity)
	}
	return true
}

// analyzeSPClass runs the FIFO-style run analysis for one priority class
// of a chain and folds the class's per-position envelopes into higherEnv.
func analyzeSPClass(ctx context.Context, net *topo.Network, chain []int, pos map[int]int, class int, higherEnv []minplus.Curve, p *propagation) bool {
	// Runs of this class within the chain.
	runIndex := map[[2]int]*run{}
	var runs []*run
	seen := map[int]bool{}
	for _, s := range chain {
		for _, c := range net.ConnectionsAt(s) {
			if net.Connections[c].Priority != class || seen[c] {
				continue
			}
			seen[c] = true
			path := net.Connections[c].Path
			h := p.next[c]
			lo := pos[path[h]]
			hi := lo
			for k := h + 1; k < len(path); k++ {
				q, ok := pos[path[k]]
				if !ok || q != hi+1 {
					break
				}
				hi = q
			}
			key := [2]int{lo, hi}
			r, ok := runIndex[key]
			if !ok {
				r = &run{lo: lo, hi: hi}
				runIndex[key] = r
				runs = append(runs, r)
			}
			r.conns = append(r.conns, c)
		}
	}
	if len(runs) == 0 {
		return true
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].lo != runs[j].lo {
			return runs[i].lo < runs[j].lo
		}
		return runs[i].hi < runs[j].hi
	})

	// Per-position rate-latency guarantee for this class and local class
	// delays, then decomposed-style envelope propagation within the class.
	k := len(chain)
	guar := make([]minplus.Curve, k)
	local := make([]float64, k)
	envAt := make([]map[int]minplus.Curve, k+1)
	for i := range envAt {
		envAt[i] = map[int]minplus.Curve{}
	}
	for _, r := range runs {
		for _, c := range r.conns {
			envAt[r.lo][c] = p.env[c]
		}
	}
	for i := range chain {
		srv := net.Servers[chain[i]]
		var err error
		guar[i], err = spRateLatencyGuarantee(srv.Capacity, higherEnv[i], srv.Latency)
		if err != nil {
			return false
		}
		agg := sumSorted(envAt[i])
		local[i] = minplus.HorizontalDeviation(agg, guar[i])
		if math.IsInf(local[i], 1) {
			return false
		}
		for _, r := range runs {
			if r.lo <= i && i < r.hi {
				for _, c := range r.conns {
					envAt[i+1][c] = minplus.ShiftLeft(envAt[i][c], local[i])
				}
			}
		}
	}

	// Interval DP identical in structure to the FIFO chain analysis.
	type key [2]int
	direct := map[key]float64{}
	var best func(lo, hi int) float64
	directBound := func(lo, hi int) float64 {
		if lo == hi {
			return local[lo]
		}
		if d, ok := direct[key{lo, hi}]; ok {
			return d
		}
		covering := map[int]bool{}
		for _, r := range runs {
			if r.lo <= lo && hi <= r.hi {
				for _, c := range r.conns {
					covering[c] = true
				}
			}
		}
		d := spRunBound(ctx, net, chain, lo, hi, covering, envAt, guar, local)
		direct[key{lo, hi}] = d
		return d
	}
	memo := map[key]float64{}
	best = func(lo, hi int) float64 {
		if d, ok := memo[key{lo, hi}]; ok {
			return d
		}
		d := directBound(lo, hi)
		for m := lo; m < hi; m++ {
			if split := best(lo, m) + best(m+1, hi); split < d {
				d = split
			}
		}
		memo[key{lo, hi}] = d
		return d
	}

	for _, r := range runs {
		servers := make([]int, 0, r.hi-r.lo+1)
		for i := r.lo; i <= r.hi; i++ {
			servers = append(servers, chain[i])
		}
		d := best(r.lo, r.hi)
		for _, c := range r.conns {
			if !p.advance(c, servers, d, len(servers)) {
				return false
			}
		}
	}
	// Fold this class's per-position envelopes into the interference seen
	// by less urgent classes.
	for i := range chain {
		higherEnv[i] = minplus.Add(higherEnv[i], sumSorted(envAt[i]))
	}
	return true
}

// spRateLatencyGuarantee returns a rate-latency minorant of the preemptive
// leftover [C*t - higher(t)]^+: rate R = C - rate(higher), latency T = the
// last time the leftover is zero (the higher classes' maximal busy
// period), shifted by the server's fixed latency. A minorant of a valid
// service curve is valid.
func spRateLatencyGuarantee(capacity float64, higher minplus.Curve, lat float64) (minplus.Curve, error) {
	rate := capacity - higher.FinalSlope()
	if rate <= 0 {
		return minplus.Curve{}, fmt.Errorf("analysis: higher-priority classes saturate the server")
	}
	t := minplus.MaxBusyPeriod(higher, capacity)
	if math.IsInf(t, 1) {
		return minplus.Curve{}, fmt.Errorf("analysis: higher-priority busy period unbounded")
	}
	return minplus.RateLatency(rate, t+lat), nil
}

// spRunBound is runIntervalBound with the constant-rate service replaced
// by the class's rate-latency guarantees: the residual family
// [beta(t) - cross(t-theta)]^+ . 1{t>theta} on a rate-latency beta is the
// standard FIFO-node form, sound for every theta. The theta minimization
// is the shared memoized search (thetaSearch) with the rate-latency
// residual family injected.
func spRunBound(ctx context.Context, net *topo.Network, chain []int, lo, hi int, inAgg map[int]bool, envAt []map[int]minplus.Curve, guar []minplus.Curve, local []float64) float64 {
	entry := make(map[int]minplus.Curve, len(inAgg))
	for c := range inAgg {
		entry[c] = envAt[lo][c]
	}
	agg := sumSorted(entry)

	k := hi - lo + 1
	cross := make([]minplus.Curve, k)
	cands := make([][]float64, k)
	decomposedSum := 0.0
	for i := 0; i < k; i++ {
		posIdx := lo + i
		decomposedSum += local[posIdx]
		crossCurves := make(map[int]minplus.Curve)
		for c, e := range envAt[posIdx] {
			if !inAgg[c] {
				crossCurves[c] = e
			}
		}
		cross[i] = sumSorted(crossCurves)
		cands[i] = thetaCandidates(net.Servers[chain[posIdx]].Capacity, cross[i], local[posIdx])
	}

	ts := &thetaSearch{
		ctx:   ctx,
		agg:   agg,
		cands: cands,
		residual: func(i int, theta float64) minplus.Curve {
			return spResidual(guar[lo+i], cross[i], theta)
		},
	}
	best := ts.minimize()
	if decomposedSum < best {
		best = decomposedSum
	}
	return best
}

// spResidual is the FIFO residual family over a general (rate-latency)
// service curve.
func spResidual(beta, cross minplus.Curve, theta float64) minplus.Curve {
	raw := minplus.PositivePart(minplus.Sub(beta, minplus.Delay(cross, theta)))
	if !raw.IsNonDecreasing() {
		raw = minplus.MonotoneClosure(raw)
	}
	return minplus.ZeroUntil(raw, theta)
}
