package analysis

import (
	"context"
	"fmt"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// ServiceCurve implements the induced-service-curve analysis for FIFO
// networks, the paper's Algorithm Service Curve. Because a FIFO server has
// no per-connection guarantee, the only service curve that can be induced
// for a single connection without further information is the leftover
// (blind multiplexing) curve
//
//	beta_j(t) = [C_j*t - G_cross,j(t)]^+ ,
//
// where G_cross,j bounds the traffic of all other connections at server j;
// the paper derives an upper bound on the FIFO service curve of exactly
// this shape. The per-hop curves are min-plus convolved into the network
// service curve S_i = beta_1 (x) ... (x) beta_m (Equation 2 of the paper)
// and the delay bound is the horizontal deviation between the source
// envelope and S_i (Equation 1).
//
// Cross-traffic envelopes inside the network are characterized with the
// decomposition propagation — the tightest description available to the
// method — so the comparison against Algorithm Integrated is as favorable
// to the service-curve method as the available machinery allows.
type ServiceCurve struct{}

// Name implements Analyzer.
func (ServiceCurve) Name() string { return "ServiceCurve" }

// Analyze implements Analyzer.
func (ServiceCurve) Analyze(net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return nil, fmt.Errorf("analysis: ServiceCurve applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	pass, perHopEnv, finite, err := decomposedPass(context.Background(), net)
	if err != nil {
		return nil, err
	}
	if !finite {
		return allInf("ServiceCurve", net), nil
	}
	res := &Result{Algorithm: "ServiceCurve"}
	res.Bounds = make([]float64, len(net.Connections))
	res.Stages = make([][]Stage, len(net.Connections))
	// Buffer bounds are discipline-independent for work-conserving
	// servers; reuse the ones the propagation pass computed.
	res.Backlogs = pass.backlog
	for i, conn := range net.Connections {
		betaNet, err := networkServiceCurve(net, perHopEnv, i)
		if err != nil {
			return nil, err
		}
		d := minplus.HorizontalDeviation(conn.SourceEnvelope(), betaNet)
		res.Bounds[i] = d
		res.Stages[i] = []Stage{{Servers: append([]int(nil), conn.Path...), Delay: d}}
	}
	return denormalizeBacklogs(res, scale), nil
}

// networkServiceCurve convolves the leftover service curves offered to
// connection i along its path.
func networkServiceCurve(net *topo.Network, perHopEnv [][]minplus.Curve, i int) (minplus.Curve, error) {
	conn := net.Connections[i]
	var betaNet minplus.Curve
	for hop, s := range conn.Path {
		beta := leftoverServiceCurve(net, perHopEnv, s, i)
		if hop == 0 {
			betaNet = beta
		} else {
			betaNet = minplus.Convolve(betaNet, beta)
		}
	}
	if betaNet.FinalSlope() <= 0 {
		return minplus.Curve{}, fmt.Errorf("analysis: connection %d starved on its path (leftover service rate %g)", i, betaNet.FinalSlope())
	}
	return betaNet, nil
}

// leftoverServiceCurve computes [C*t - G_cross(t)]^+ for connection i at
// server s, delayed by the server's fixed latency. The cross envelopes are
// the decomposition-propagated ones at their respective hops. If the raw
// leftover dips (possible for non-concave cross envelopes) it is replaced
// by its monotone closure, which is a smaller and therefore still valid
// service curve.
func leftoverServiceCurve(net *topo.Network, perHopEnv [][]minplus.Curve, s, i int) minplus.Curve {
	srv := net.Servers[s]
	cross := minplus.Zero()
	for _, o := range net.ConnectionsAt(s) {
		if o == i {
			continue
		}
		h := net.HopIndex(o, s)
		cross = minplus.Add(cross, perHopEnv[o][h])
	}
	raw := minplus.PositivePart(minplus.Sub(minplus.Rate(srv.Capacity), cross))
	if !raw.IsNonDecreasing() {
		raw = minplus.MonotoneClosure(raw)
	}
	if srv.Latency > 0 {
		raw = minplus.Delay(raw, srv.Latency)
	}
	return raw
}
