package analysis

// This file carries closed-form delay expressions derived by hand for the
// simplest configurations of the paper's evaluation topology. They are
// deliberately computed WITHOUT the curve algebra, so the tests that
// compare them against the analyzers cross-check the implementation
// through an independent route. The first formula coincides with the one
// per-hop expression that survived the OCR of the paper's Section 4.2
// (E_1 = 2*sigma/(1-rho) at unit capacity), confirming that our reading of
// the topology matches the authors'.

// SingleFIFOFreshDelay returns the worst-case FIFO delay of k identical
// (sigma, rho) sources, each rate-limited by an access line of the
// server's own capacity C, sharing that server: the backlog peaks at the
// common knee t* = sigma/(C-rho) where each flow has contributed C*t*,
// giving
//
//	d = (k-1) * sigma / (C - rho).
//
// Requires k*rho < C for stability.
func SingleFIFOFreshDelay(k int, sigma, rho, capacity float64) float64 {
	return float64(k-1) * sigma / (capacity - rho)
}

// TandemFirstHopDelay returns the local delay at the first server of the
// paper's tandem, which carries three fresh connections (connection 0,
// a_0, b_0):
//
//	E_1 = 2 * sigma / (C - rho),
//
// the k = 3 case of SingleFIFOFreshDelay and exactly the paper's E_1.
func TandemFirstHopDelay(sigma, rho, capacity float64) float64 {
	return SingleFIFOFreshDelay(3, sigma, rho, capacity)
}

// TandemSecondHopDelay returns the decomposed local delay at the second
// server of the paper's tandem (n >= 3 so that b_1 continues), carrying
// two fresh connections (a_1, b_1) and two connections deformed by the
// first hop's delay d0 (connection 0, b_0).
//
// Derivation: after a shift of d0 = 2*sigma/(C-rho), a capped token bucket
// is in bucket mode for every interval length (d0 exceeds the knee
// sigma/(C-rho)), so the shifted envelopes are sigma + rho*d0 + rho*I.
// The aggregate minus the service line then increases up to the fresh
// flows' knee t* = sigma/(C-rho) (slope 2*rho + C > 0) and decreases
// afterwards (slope 4*rho - C < 0 for rho < C/4, which the topology
// guarantees), so the supremum sits at t*:
//
//	E_2 = [ 2*sigma + 2*rho*d0 + (2*rho + C)*t* ] / C.
func TandemSecondHopDelay(sigma, rho, capacity float64) float64 {
	d0 := TandemFirstHopDelay(sigma, rho, capacity)
	knee := sigma / (capacity - rho)
	return (2*sigma + 2*rho*d0 + (2*rho+capacity)*knee) / capacity
}
