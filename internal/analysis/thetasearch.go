package analysis

import (
	"context"
	"math"

	"delaycalc/internal/minplus"
)

// thetaSearch minimizes, over theta vectors, the horizontal deviation
// between an aggregate envelope and the convolution of k per-position
// residual service curves. It is shared by the FIFO chain analysis
// (constant-rate service) and the static-priority chain analysis
// (rate-latency service) — the residual family is injected — and it
// replaces the naive enumeration that rebuilt every residual and redid the
// full convolution for every candidate vector:
//
//   - residual curves are memoized per (position, candidate) — a k=2
//     enumeration over c0 x c1 pairs builds c0 + c1 residuals, not
//     2*c0*c1;
//
//   - the k=2 enumeration uses the gated-convex closed form of the
//     convolution when every residual decomposes (always the case against
//     concave cross traffic): with residual_i = Delay_{g_i}(chi_i),
//
//     h(A, res_0 ⊗ res_1) = g_0 + g_1 +
//     max( h(A, chi_0), h(A, chi_1), h(A, J_0+J_1 + psi_0 ⊗ psi_1) ),
//
//     where psi_0 ⊗ psi_1 is an O(n) ascending-slope merge
//     (minplus.ConvolveConvexParts) — the per-candidate deviations
//     h(A, chi_i) are cached, so each pair costs one slope merge and one
//     deviation instead of a generic convolution. The identity is exact:
//     delays factor out of the pseudo-inverse whenever the aggregate is
//     positive on (0, eps) — checked, with fallback to the generic
//     convolution — and the lower pseudo-inverse of a min of
//     non-decreasing curves is the max of their pseudo-inverses;
//
//   - coordinate descent for k > 2 convolves the fixed prefix and suffix
//     of the scanned coordinate once per scan, so each candidate pays two
//     convolutions instead of k-1, and memoizes evaluated theta vectors
//     across passes;
//
//   - candidate evaluations fan out across cores (parallelValues /
//     parallelMin); the reduction is sequential over the precomputed
//     values, replicating the serial argmin exactly.
type thetaSearch struct {
	// ctx carries the cancellation signal into the candidate fan-out: the
	// parallel enumerations stop between candidates once it is done. A
	// cancelled search returns a meaningless partial minimum; the owning
	// analyzer checks the context after minimize and discards the value.
	ctx      context.Context
	agg      minplus.Curve
	cands    [][]float64
	residual func(pos int, theta float64) minplus.Curve
	// ar is the owning chain's arena (nil for heap allocation): residual
	// curves, decompositions and prefix/suffix convolutions are drawn from
	// it. The arena is not goroutine-safe, so everything built from it is
	// built sequentially before a candidate fan-out; the parallel workers
	// only read those curves and allocate from their own pooled arenas.
	ar *minplus.Arena

	// res memoizes residuals per (position, candidate) by value, rows
	// drawn from the chain arena. The zero Curve marks an unset slot:
	// both residual families (FIFO constant-rate, static-priority
	// rate-latency) have strictly positive final slope under stability,
	// so a genuine residual is never the zero curve (if one ever were,
	// the memo would merely recompute it — still correct).
	res [][]minplus.Curve
}

// residualAt returns the memoized residual of candidate ci at position i.
func (ts *thetaSearch) residualAt(i, ci int) minplus.Curve {
	c := ts.res[i][ci]
	if c.NumPoints() == 0 && c.FinalSlope() == 0 {
		c = ts.residual(i, ts.cands[i][ci])
		ts.res[i][ci] = c
	}
	return c
}

// minimize returns the minimal horizontal deviation over the candidate
// grid (full enumeration for k = 2, coordinate descent otherwise).
func (ts *thetaSearch) minimize() float64 {
	k := len(ts.cands)
	ts.res = make([][]minplus.Curve, k)
	for i := range ts.res {
		n := len(ts.cands[i])
		row := ts.ar.Curves(n)[:n]
		for j := range row {
			row[j] = minplus.Curve{} // arena memory is not zeroed
		}
		ts.res[i] = row
	}
	if k == 2 {
		return ts.enumeratePairs()
	}
	return ts.coordinateDescent()
}

// aggRisesImmediately reports whether the aggregate is positive on
// (0, eps), the condition under which h(A, Delay_g(E)) = g + h(A, E)
// holds exactly (the deviation at any t > 0 is then at least g, so the
// split never undercounts).
func (ts *thetaSearch) aggRisesImmediately() bool {
	return ts.agg.EvalRight(0) > minplus.Eps || ts.agg.RightSlope(0) > minplus.Eps
}

// enumeratePairs is the k = 2 full enumeration.
func (ts *thetaSearch) enumeratePairs() float64 {
	n0, n1 := len(ts.cands[0]), len(ts.cands[1])
	for i := 0; i < 2; i++ {
		for ci := range ts.cands[i] {
			ts.residualAt(i, ci)
		}
	}
	// Gated-convex fast path: decompose every residual once; pairs then
	// cost a slope merge plus one deviation.
	type part struct {
		dec minplus.GatedConvex
		hd  float64 // h(agg, chi) with the gate stripped
	}
	fast := true
	parts := [2][]part{make([]part, n0), make([]part, n1)}
	for i := 0; i < 2 && fast; i++ {
		for ci := range ts.cands[i] {
			dec, ok := ts.ar.DecomposeGatedConvex(ts.residualAt(i, ci))
			if !ok {
				fast = false
				break
			}
			parts[i][ci] = part{dec: dec}
		}
	}
	if fast && ts.aggRisesImmediately() {
		for i := 0; i < 2; i++ {
			for ci := range ts.cands[i] {
				chi := ts.ar.ShiftLeft(ts.residualAt(i, ci), parts[i][ci].dec.Gate)
				parts[i][ci].hd = minplus.HorizontalDeviation(ts.agg, chi)
			}
		}
		return parallelMinArena(ts.ctx, n0*n1, func(wa *minplus.Arena, idx int) float64 {
			a, b := &parts[0][idx/n1], &parts[1][idx%n1]
			w := wa.ConvolveConvexParts(a.dec, b.dec)
			hd := math.Max(math.Max(a.hd, b.hd), minplus.HorizontalDeviation(ts.agg, w))
			return a.dec.Gate + b.dec.Gate + hd
		})
	}
	return parallelMinArena(ts.ctx, n0*n1, func(wa *minplus.Arena, idx int) float64 {
		beta := wa.Convolve(ts.residualAt(0, idx/n1), ts.residualAt(1, idx%n1))
		return minplus.HorizontalDeviation(ts.agg, beta)
	})
}

// coordinateDescent scans one coordinate at a time from the all-zero
// vector (candidate index 0 is always theta = 0), keeping the first
// strictly improving candidate per scan, up to three passes — the same
// search the pre-overhaul engine ran, with prefix/suffix convolutions
// hoisted out of the candidate loop and evaluated vectors memoized.
func (ts *thetaSearch) coordinateDescent() float64 {
	k := len(ts.cands)
	idx := make([]int, k)
	seen := map[string]float64{}
	evalVec := func(v []int) float64 {
		key := vecKey(v)
		if d, ok := seen[key]; ok {
			return d
		}
		beta := ts.residualAt(0, v[0])
		for i := 1; i < k; i++ {
			beta = ts.ar.Convolve(beta, ts.residualAt(i, v[i]))
		}
		d := minplus.HorizontalDeviation(ts.agg, beta)
		seen[key] = d
		return d
	}
	best := evalVec(idx)
	for pass := 0; pass < 3; pass++ {
		improved := false
		for i := 0; i < k; i++ {
			if canceled(ts.ctx) {
				return best
			}
			// Build every residual of the scanned coordinate before the
			// fan-out: residualAt writes the chain arena and the memo
			// table, which the parallel workers may only read.
			for ci := range ts.cands[i] {
				ts.residualAt(i, ci)
			}
			// Convolve the fixed prefix and suffix once; min-plus
			// convolution is associative, so prefix ⊗ res_i ⊗ suffix is
			// the same curve as the left fold.
			var pre, suf *minplus.Curve
			if i > 0 {
				b := ts.residualAt(0, idx[0])
				for j := 1; j < i; j++ {
					b = ts.ar.Convolve(b, ts.residualAt(j, idx[j]))
				}
				pre = &b
			}
			if i+1 < k {
				b := ts.residualAt(i+1, idx[i+1])
				for j := i + 2; j < k; j++ {
					b = ts.ar.Convolve(b, ts.residualAt(j, idx[j]))
				}
				suf = &b
			}
			// evalCand runs concurrently: it only reads seen (no concurrent
			// writes happen during the fan-out), and a memo miss recomputes
			// the pure evaluation — the identical value the serial code
			// would have cached.
			evalCand := func(wa *minplus.Arena, ci int) float64 {
				v := append([]int(nil), idx...)
				v[i] = ci
				if d, ok := seen[vecKey(v)]; ok {
					return d
				}
				beta := ts.residualAt(i, ci)
				if pre != nil {
					beta = wa.Convolve(*pre, beta)
				}
				if suf != nil {
					beta = wa.Convolve(beta, *suf)
				}
				return minplus.HorizontalDeviation(ts.agg, beta)
			}
			vals := parallelValuesArena(ts.ctx, len(ts.cands[i]), evalCand)
			// Persist the scan's evaluations into the memo sequentially.
			wb := append([]int(nil), idx...)
			for ci := range ts.cands[i] {
				wb[i] = ci
				seen[vecKey(wb)] = vals[ci]
			}
			bestHere := idx[i]
			for ci := range ts.cands[i] {
				if ci == bestHere {
					continue
				}
				if d := vals[ci]; d < best {
					best = d
					bestHere = ci
					improved = true
				}
			}
			idx[i] = bestHere
		}
		if !improved {
			break
		}
	}
	return best
}

// vecKey encodes a candidate-index vector as a map key.
func vecKey(v []int) string {
	b := make([]byte, 0, 2*len(v))
	for _, x := range v {
		b = append(b, byte(x), byte(x>>8))
	}
	return string(b)
}
