package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

func TestServiceCurveSingleServerMatchesLeftoverDeviation(t *testing.T) {
	net := singleServerNet(3, 1, 0.2, 1)
	res, err := (ServiceCurve{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	// Independent computation: cross = 2 capped buckets, beta = [t - G]^+.
	env := minplus.TokenBucketCapped(1, 0.2, 1)
	cross := minplus.Sum(env, env)
	beta := minplus.PositivePart(minplus.Sub(minplus.Rate(1), cross))
	want := minplus.HorizontalDeviation(env, beta)
	for i := range net.Connections {
		if math.Abs(res.Bound(i)-want) > 1e-9 {
			t.Errorf("conn %d: bound %g, want %g", i, res.Bound(i), want)
		}
	}
}

func TestServiceCurveWorseThanDecomposedOnSingleFIFO(t *testing.T) {
	// Blind multiplexing cannot use FIFO order, so even at one server it
	// is no better than the FIFO-aware decomposed bound.
	net := singleServerNet(4, 1, 0.2, 1)
	rs, _ := (ServiceCurve{}).Analyze(net)
	rd, _ := (Decomposed{}).Analyze(net)
	if rs.Bound(0) < rd.Bound(0)-1e-9 {
		t.Errorf("service-curve %g beats FIFO bound %g at a single server", rs.Bound(0), rd.Bound(0))
	}
}

func TestServiceCurveDegradesWithLoadFasterThanDecomposed(t *testing.T) {
	// Paper Figure 4: as load grows the service-curve method's inadequacy
	// for FIFO becomes evident. Check the ratio SC/D grows with U on a
	// short tandem.
	prev := 0.0
	for _, u := range []float64{0.2, 0.5, 0.8, 0.9} {
		net, err := topo.PaperTandem(2, u)
		if err != nil {
			t.Fatal(err)
		}
		rs, _ := (ServiceCurve{}).Analyze(net)
		rd, _ := (Decomposed{}).Analyze(net)
		ratio := rs.Bound(0) / rd.Bound(0)
		if ratio <= prev {
			t.Errorf("U=%g: SC/D ratio %g did not grow (prev %g)", u, ratio, prev)
		}
		prev = ratio
	}
	if prev < 1 {
		t.Errorf("at high load the service-curve method should be worse than decomposed (ratio %g)", prev)
	}
}

func TestServiceCurveRejectsNonFIFO(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.GuaranteedRate}},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, Path: []int{0}, Rate: 0.5},
		},
	}
	if _, err := (ServiceCurve{}).Analyze(net); err == nil {
		t.Fatal("expected discipline error")
	}
}

func TestServiceCurveUnstable(t *testing.T) {
	net := singleServerNet(2, 1, 0.7, 1)
	res, err := (ServiceCurve{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Bound(0), 1) {
		t.Errorf("unstable: bound = %g, want +Inf", res.Bound(0))
	}
}

func TestFIFOResidualProperties(t *testing.T) {
	cross := minplus.TokenBucketCapped(2, 0.3, 1)
	for _, theta := range []float64{0, 0.5, 2, 5} {
		beta := FIFOResidual(1, cross, theta)
		if !beta.IsNonDecreasing() {
			t.Errorf("theta=%g: residual not non-decreasing: %v", theta, beta)
		}
		if got := beta.Eval(theta); got > 1e-9 {
			t.Errorf("theta=%g: residual %g > 0 at its gate", theta, got)
		}
		// Larger theta means more traffic already counted as gone: the
		// curve beyond the gate can only be higher.
		if theta > 0 {
			base := FIFOResidual(1, cross, 0)
			for _, x := range []float64{theta + 1, theta + 5, theta + 20} {
				if beta.Eval(x) < base.Eval(x)-1e-9 {
					t.Errorf("theta=%g: residual below theta=0 curve at %g", theta, x)
				}
			}
		}
	}
}

func TestFIFOResidualThetaZeroIsBlindLeftover(t *testing.T) {
	cross := minplus.TokenBucketCapped(2, 0.3, 1)
	got := FIFOResidual(1, cross, 0)
	want := minplus.PositivePart(minplus.Sub(minplus.Rate(1), cross))
	if !got.Equal(want) {
		t.Errorf("theta=0 residual %v != blind leftover %v", got, want)
	}
}

func TestThetaCandidatesContainStructuralPoints(t *testing.T) {
	cross := minplus.TokenBucketCapped(2, 0.3, 1)
	cands := thetaCandidates(1, cross, 4)
	has := func(v float64) bool {
		for _, c := range cands {
			if math.Abs(c-v) < 1e-12 {
				return true
			}
		}
		return false
	}
	if !has(0) {
		t.Error("candidates missing 0")
	}
	knee := 2 / (1 - 0.3)
	if !has(knee) {
		t.Errorf("candidates missing the cross knee %g: %v", knee, cands)
	}
}
