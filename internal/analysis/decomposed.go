package analysis

import (
	"context"
	"fmt"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Decomposed implements the classical decomposition-based end-to-end
// analysis of Cruz ("A calculus for network delay", parts I and II), the
// paper's Algorithm Decomposed: servers are analyzed one at a time in
// topological order; at each FIFO server the local worst-case delay is the
// horizontal deviation between the aggregate input envelope and the
// service line; every transiting connection's envelope is then deformed by
// that local delay (b'(I) = b(I + d)), and a connection's end-to-end bound
// is the sum of the local delays along its route.
//
// The method is simple and fully general for feedforward networks, but it
// charges every connection the worst-case delay at every hop, which the
// integrated analysis avoids.
type Decomposed struct{}

// Name implements Analyzer.
func (Decomposed) Name() string { return "Decomposed" }

// Analyze implements Analyzer.
func (d Decomposed) Analyze(net *topo.Network) (*Result, error) {
	return d.AnalyzeContext(context.Background(), net)
}

// AnalyzeContext implements ContextAnalyzer: the decomposed pass checks
// the context between servers and returns its error once it is done; an
// uncancelled run is bit-identical to Analyze.
func (Decomposed) AnalyzeContext(ctx context.Context, net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	p, _, finite, err := decomposedPass(ctx, net)
	if err != nil {
		return nil, err
	}
	if !finite {
		return allInf("Decomposed", net), nil
	}
	return denormalizeBacklogs(p.result("Decomposed"), scale), nil
}

// decomposedPass runs the decomposition propagation over the whole network
// and additionally records every connection's traffic envelope at the entry
// of each of its hops (used by the service-curve analyzer to characterize
// cross traffic inside the network). finite is false when some stage delay
// is unbounded, in which case the other return values are meaningless. The
// context is checked between servers; once it is done the pass aborts with
// its error.
func decomposedPass(ctx context.Context, net *topo.Network) (p *propagation, perHopEnv [][]minplus.Curve, finite bool, err error) {
	if !net.Stable() {
		return nil, nil, false, nil
	}
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, nil, false, err
	}
	p = newPropagation(net)
	perHopEnv = make([][]minplus.Curve, len(net.Connections))
	for i, c := range net.Connections {
		perHopEnv[i] = make([]minplus.Curve, len(c.Path))
	}
	record := func(conns []int) {
		for _, c := range conns {
			perHopEnv[c][p.next[c]] = p.env[c]
		}
	}
	idx := net.ConnectionIndex()
	ar := minplus.GetArena()
	defer ar.Release()
	for _, s := range order {
		if canceled(ctx) {
			return nil, nil, false, ctxErr(ctx.Err())
		}
		conns := idx[s]
		if len(conns) == 0 {
			continue
		}
		record(conns)
		ar.Reset()
		ok, serr := decomposedServerStep(net, s, conns, p, ar)
		if serr != nil || !ok {
			return nil, nil, false, serr
		}
	}
	return p, perHopEnv, true, nil
}

// decomposedServerStep analyzes a single server: it records the server's
// backlog bound and advances every crossing connection by the local delay
// of the server's discipline. It is the unit computation shared by the
// full decomposed pass and the incremental driver. ok=false means a local
// delay was unbounded and the whole analysis degrades to +Inf. conns must
// be the server's crossing connections (ConnectionIndex order); the
// aggregate envelope is computed once, in the arena, and consumed before
// the caller resets it.
func decomposedServerStep(net *topo.Network, s int, conns []int, p *propagation, ar *minplus.Arena) (ok bool, err error) {
	srv := net.Servers[s]
	if len(conns) == 0 {
		return true, nil
	}
	envs := ar.Curves(len(conns))
	for _, c := range conns {
		envs = append(envs, p.env[c])
	}
	agg := ar.SumNSlice(envs)
	p.recordBacklog(s, agg, srv.Capacity)
	switch srv.Discipline {
	case server.FIFO:
		d := fifoLocalDelay(agg, srv.Capacity, srv.Latency)
		for _, c := range conns {
			if !p.advance(c, []int{s}, d, 1) {
				return false, nil
			}
		}
	case server.StaticPriority:
		delays := spLocalDelays(net, s, conns, p)
		for i, c := range conns {
			if !p.advance(c, []int{s}, delays[i], 1) {
				return false, nil
			}
		}
	case server.GuaranteedRate:
		for _, c := range conns {
			beta, gerr := grServiceCurve(net, s, c)
			if gerr != nil {
				return false, gerr
			}
			dc := minplus.HorizontalDeviation(p.env[c], beta)
			if !p.advance(c, []int{s}, dc, 1) {
				return false, nil
			}
		}
	case server.EDF:
		delays, eerr := edfLocalDelays(net, s, conns, p)
		if eerr != nil {
			return false, eerr
		}
		for i, c := range conns {
			if !p.advance(c, []int{s}, delays[i], 1) {
				return false, nil
			}
		}
	default:
		return false, fmt.Errorf("analysis: unsupported discipline %v at server %d", srv.Discipline, s)
	}
	return true, nil
}
