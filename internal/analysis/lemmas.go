package analysis

import (
	"delaycalc/internal/minplus"
)

// This file implements the paper's Section 2 machinery (Lemmas 1-4) on the
// all-greedy fluid scenario: every source emits exactly its constraint
// function from time 0 and both servers are busy from time 0. The
// functions are exact for that scenario and are exported for inspection,
// tests and the experiment harness.
//
// GreedyPairEstimate — the literal evaluation of Lemma 4 on the greedy
// scenario — is a tight ESTIMATE of the two-server through delay but NOT a
// proven upper bound over all arrival alignments: packet-level simulation
// of the paper's tandem exhibits conforming arrival patterns whose delay
// exceeds it (the worst case for a through bit can require cross bursts
// shifted in time relative to the busy-period start, the degree of freedom
// Theorem 1's outer maximization ranges over and the greedy scenario
// fixes). The Integrated analyzer therefore uses the sound residual-curve
// bound; the estimate remains available to quantify the gap.

// OutputFunction returns W(t) = (lambda_C (x) G)(t), the cumulative output
// of a work-conserving constant-rate server with capacity c whose
// cumulative input is G (the paper's Lemma 1).
func OutputFunction(g minplus.Curve, c float64) minplus.Curve {
	return minplus.Convolve(minplus.Rate(c), g)
}

// ArrivalTimeFunction returns H(t) = G^{-1}(W(t)), the arrival time of the
// W(t)-th bit (the paper's Lemma 2): the composition of the lower
// pseudo-inverse of the input function with the output function.
func ArrivalTimeFunction(g, w minplus.Curve) minplus.Curve {
	return minplus.Compose(minplus.LowerInverse(g), w)
}

// DepartureTimeFunction returns D(t) = W^{-1}(G(t)), the departure time of
// the G(t)-th arriving bit (the paper's Lemma 3).
func DepartureTimeFunction(g, w minplus.Curve) minplus.Curve {
	return minplus.Compose(minplus.LowerInverse(w), g)
}

// GreedyPairEstimate evaluates the paper's Lemma 4 delay expression
//
//	d = sup_t { W2^{-1}(G2(t)) - G1^{-1}(W1(t)) }
//
// on the all-greedy scenario for a two-server FIFO subsystem: f12 is the
// aggregate envelope of the through traffic, f1 of the traffic leaving
// after server 1, and f2 of the traffic joining at server 2; c1 and c2 are
// the capacities. See the file comment: this is a scenario-exact estimate,
// not a bound.
func GreedyPairEstimate(f12, f1, f2 minplus.Curve, c1, c2 float64) float64 {
	g1 := minplus.Add(f12, f1)
	w1 := OutputFunction(g1, c1)
	h1 := ArrivalTimeFunction(g1, w1)
	// S12 bits out of server 1 by time t: FIFO preserves arrival order,
	// so they are the S12 arrivals by H1(t), capped by the total output.
	out12 := minplus.Min(w1, minplus.Compose(f12, h1))
	g2 := minplus.Add(out12, f2)
	w2 := OutputFunction(g2, c2)
	depart := DepartureTimeFunction(g2, w2)
	d := minplus.SupDiff(depart, h1)
	if d < 0 {
		d = 0
	}
	return d
}
