// Independent-subnetwork extraction.
//
// The paper's chain decomposition only couples servers that share through
// traffic: a chain link s->t exists because some connection traverses s and
// t consecutively, and AffectedSet closures only spread along shared
// servers. Connections whose routes live in disjoint server-sharing
// components therefore have provably independent bounds — the contracted
// dependency graph never bridges them — which is what ShardedEngine
// exploits to commit them without contending.
package analysis

import "delaycalc/internal/topo"

// ComponentView labels every connection and server of a network with the
// connected component of the server-sharing graph it belongs to. Two
// servers are in one component when some chain of routes links them (each
// route merges all servers it traverses); a connection's component is its
// route's component. Component ids are dense, assigned in order of first
// appearance over net.Connections, so the labeling is deterministic.
type ComponentView struct {
	// Count is the number of components that contain at least one
	// connection.
	Count int
	// Conn maps each connection index to its component id.
	Conn []int
	// Server maps each server index to its component id, or -1 for servers
	// no admitted connection traverses.
	Server []int
	// Sizes holds, per component id, the number of connections in it.
	Sizes []int
}

// Components computes the ComponentView of a network via union-find over
// the servers, one union per consecutive pair of route hops (unioning any
// two servers of a route is equivalent; consecutive pairs match the
// partitioner's edge relation). Out-of-range path entries are ignored —
// validation is the caller's concern, as elsewhere in this package.
func Components(net *topo.Network) ComponentView {
	n := len(net.Servers)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb { // smaller index wins: deterministic roots
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	inRange := func(s int) bool { return s >= 0 && s < n }
	for _, c := range net.Connections {
		prev := -1
		for _, s := range c.Path {
			if !inRange(s) {
				continue
			}
			if prev >= 0 {
				union(prev, s)
			}
			prev = s
		}
	}
	view := ComponentView{
		Conn:   make([]int, len(net.Connections)),
		Server: make([]int, n),
	}
	for i := range view.Server {
		view.Server[i] = -1
	}
	id := make(map[int]int) // union-find root -> dense component id
	for i, c := range net.Connections {
		root := -1
		for _, s := range c.Path {
			if inRange(s) {
				root = find(s)
				break
			}
		}
		if root < 0 {
			// A connection with no valid hop shares nothing; give it its
			// own component so callers never see a bridge that isn't there.
			view.Conn[i] = view.Count
			view.Sizes = append(view.Sizes, 1)
			view.Count++
			continue
		}
		comp, ok := id[root]
		if !ok {
			comp = view.Count
			id[root] = comp
			view.Sizes = append(view.Sizes, 0)
			view.Count++
		}
		view.Conn[i] = comp
		view.Sizes[comp]++
		for _, s := range c.Path {
			if inRange(s) {
				view.Server[find(s)] = comp
			}
		}
	}
	// Propagate the root labels to every member server.
	for s := 0; s < n; s++ {
		if r := find(s); view.Server[r] >= 0 {
			view.Server[s] = view.Server[r]
		}
	}
	return view
}
