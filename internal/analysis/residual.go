package analysis

import (
	"math"
	"sort"

	"delaycalc/internal/minplus"
)

// FIFOResidual returns the theta-parameterized FIFO residual service curve
//
//	beta_theta(t) = [C*t - alphaCross(t - theta)]^+  for t > theta,  0 otherwise,
//
// which a FIFO multiplexor of capacity C provably offers to a flow (or
// sub-aggregate) whose competing traffic is bounded by alphaCross, for
// every theta >= 0 (Cruz's induced FIFO curves; Proposition 6.2.1 in
// Le Boudec & Thiran). Small theta emphasizes rate, large theta emphasizes
// latency; every member of the family yields a sound bound, so optimizing
// over a finite candidate set of thetas is always safe.
func FIFOResidual(capacity float64, alphaCross minplus.Curve, theta float64) minplus.Curve {
	return fifoResidual(nil, capacity, alphaCross, theta)
}

// fifoResidual is FIFOResidual with the intermediate and result curves
// drawn from the arena (heap when ar is nil). The hot analysis paths build
// residual families per theta candidate; keeping them arena-backed keeps
// the steady-state search allocation-free.
func fifoResidual(ar *minplus.Arena, capacity float64, alphaCross minplus.Curve, theta float64) minplus.Curve {
	raw := ar.PositivePart(ar.Sub(minplus.Rate(capacity), ar.Delay(alphaCross, theta)))
	if !raw.IsNonDecreasing() {
		raw = ar.MonotoneClosure(raw)
	}
	return ar.ZeroUntil(raw, theta)
}

// thetaCandidates proposes a finite set of theta parameters for the
// residual family at a server of the given capacity with the given cross
// envelope: structural values derived from the cross curve's breakpoints
// (where the optimum of piecewise-linear problems lives) plus a geometric
// sweep up to the server's busy-period scale. The result is sorted and
// exact-duplicate-free — the same set the previous map-based construction
// produced, without the map or the breakpoint copy.
func thetaCandidates(capacity float64, cross minplus.Curve, scale float64) []float64 {
	return thetaCandidatesArena(nil, capacity, cross, scale)
}

// thetaCandidatesArena is thetaCandidates with the candidate list drawn
// from the arena (heap when ar is nil), for the hot chain-analysis path.
func thetaCandidatesArena(ar *minplus.Arena, capacity float64, cross minplus.Curve, scale float64) []float64 {
	out := ar.Floats(2*cross.NumPoints() + 10)
	out = append(out, 0)
	add := func(v float64) {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	for i := 0; i < cross.NumPoints(); i++ {
		p := cross.PointAt(i)
		add(p.X)
		add(p.Y / capacity)
	}
	// Burst-clearing time of the cross traffic at full capacity.
	add(cross.EvalRight(0) / capacity)
	if scale > 0 {
		for k := 1; k <= 8; k++ {
			add(scale * float64(k) / 8)
		}
	}
	// Sorted so that downstream search strategies (coordinate descent on
	// long chains) visit candidates in a deterministic order; the pair
	// enumeration is order-independent either way.
	sort.Float64s(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
