package analysis

import (
	"math"
	"sort"

	"delaycalc/internal/minplus"
)

// FIFOResidual returns the theta-parameterized FIFO residual service curve
//
//	beta_theta(t) = [C*t - alphaCross(t - theta)]^+  for t > theta,  0 otherwise,
//
// which a FIFO multiplexor of capacity C provably offers to a flow (or
// sub-aggregate) whose competing traffic is bounded by alphaCross, for
// every theta >= 0 (Cruz's induced FIFO curves; Proposition 6.2.1 in
// Le Boudec & Thiran). Small theta emphasizes rate, large theta emphasizes
// latency; every member of the family yields a sound bound, so optimizing
// over a finite candidate set of thetas is always safe.
func FIFOResidual(capacity float64, alphaCross minplus.Curve, theta float64) minplus.Curve {
	raw := minplus.PositivePart(minplus.Sub(minplus.Rate(capacity), minplus.Delay(alphaCross, theta)))
	if !raw.IsNonDecreasing() {
		raw = minplus.MonotoneClosure(raw)
	}
	return minplus.ZeroUntil(raw, theta)
}

// thetaCandidates proposes a finite set of theta parameters for the
// residual family at a server of the given capacity with the given cross
// envelope: structural values derived from the cross curve's breakpoints
// (where the optimum of piecewise-linear problems lives) plus a geometric
// sweep up to the server's busy-period scale.
func thetaCandidates(capacity float64, cross minplus.Curve, scale float64) []float64 {
	set := map[float64]bool{0: true}
	add := func(v float64) {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			set[v] = true
		}
	}
	for _, p := range cross.Points() {
		add(p.X)
		add(p.Y / capacity)
	}
	// Burst-clearing time of the cross traffic at full capacity.
	add(cross.EvalRight(0) / capacity)
	if scale > 0 {
		for k := 1; k <= 8; k++ {
			add(scale * float64(k) / 8)
		}
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	// Sorted so that downstream search strategies (coordinate descent on
	// long chains) visit candidates in a deterministic order; the pair
	// enumeration is order-independent either way.
	sort.Float64s(out)
	return out
}
