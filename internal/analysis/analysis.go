// Package analysis implements the end-to-end worst-case delay analyses the
// paper studies and compares:
//
//   - Decomposed: Cruz's decomposition-based analysis (one server at a
//     time, burstiness propagated, local delays summed).
//   - ServiceCurve: the induced-service-curve analysis (per-connection
//     leftover service curves convolved into a network service curve).
//   - Integrated: the paper's contribution — subnetworks of up to two
//     servers analyzed jointly with the input/output-function lemmas
//     (Lemmas 1-4, Theorem 1), capturing the delay dependency between
//     consecutive FIFO servers.
//
// Extensions the paper announces as ongoing work are also provided:
// static-priority servers (per-class leftover analysis in the decomposed
// pass, plus IntegratedSP — the integrated analysis per priority class),
// guaranteed-rate servers (GuaranteedRateNetworkCurve, where the
// service-curve method is the right tool), and EDF servers
// (schedulability and uniform-lateness bounds).
//
// All analyzers consume a topo.Network and produce per-connection
// end-to-end delay bounds plus a per-stage breakdown.
package analysis

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Stage records one step of a connection's per-stage delay breakdown.
type Stage struct {
	// Servers lists the server indices of the subnetwork this stage
	// covers (one server for decomposition, up to two for the integrated
	// analysis).
	Servers []int
	// Delay is the worst-case delay bound contributed by the stage.
	Delay float64
}

// Result is the output of an analyzer run.
type Result struct {
	Algorithm string
	// Bounds holds one end-to-end delay bound per connection, indexed
	// like Network.Connections. +Inf marks an unstable or unanalyzable
	// connection.
	Bounds []float64
	// Stages breaks each bound into per-subnetwork contributions.
	Stages [][]Stage
	// Backlogs holds one worst-case buffer occupancy bound per server
	// (in bits), indexed like Network.Servers: the vertical deviation
	// between the server's aggregate input envelope and its service
	// line, valid for any work-conserving discipline. Zero for servers
	// no connection crosses.
	Backlogs []float64
}

// Bound returns the end-to-end bound of connection i.
func (r *Result) Bound(i int) float64 { return r.Bounds[i] }

// Backlog returns the buffer bound of server s (zero when the analyzer
// did not record backlogs).
func (r *Result) Backlog(s int) float64 {
	if s >= len(r.Backlogs) {
		return 0
	}
	return r.Backlogs[s]
}

// MaxBound returns the largest finite bound, or +Inf if any connection is
// unbounded.
func (r *Result) MaxBound() float64 {
	m := 0.0
	for _, b := range r.Bounds {
		if math.IsInf(b, 1) {
			return b
		}
		if b > m {
			m = b
		}
	}
	return m
}

// Analyzer computes end-to-end delay bounds for every connection of a
// network.
type Analyzer interface {
	Name() string
	Analyze(net *topo.Network) (*Result, error)
}

// allInf builds a Result marking every connection unbounded, used when the
// network fails the stability precondition.
func allInf(name string, net *topo.Network) *Result {
	r := &Result{Algorithm: name}
	r.Bounds = make([]float64, len(net.Connections))
	r.Stages = make([][]Stage, len(net.Connections))
	for i := range r.Bounds {
		r.Bounds[i] = math.Inf(1)
	}
	return r
}

// propagation tracks, while servers are consumed in topological order, each
// connection's accumulated delay and its traffic envelope at the entrance
// of its next unprocessed hop.
type propagation struct {
	env     []minplus.Curve
	delay   []float64
	next    []int // index into Connection.Path of the next unprocessed hop
	stage   [][]Stage
	backlog []float64 // per-server buffer bound, filled as servers are seen
	// shift recycles each connection's envelope storage across the
	// per-subnetwork ShiftLefts: only the latest envelope (and its
	// immediate predecessor, still referenced by the analyzing chain's
	// scratch) is live, so double buffering per connection suffices.
	// Connections are advanced by at most one chain at a time, so the
	// per-slot discipline holds under level parallelism.
	shift *minplus.ShiftPool
}

func newPropagation(net *topo.Network) *propagation {
	return newPropagationPooled(net, false)
}

// newSparsePropagation is newPropagation for the incremental Extend/Shrink
// drivers, which replay most units from trace: only the dirty closure's few
// connections ever shift or append stages, so the shift-pool buffers are
// carved lazily per slot and no stage slab is pre-carved (a replayed
// connection's stage list aliases the immutable trace; a recomputed one
// grows from nil). Sizing either for the whole network would dominate the
// per-extension allocation bill.
func newSparsePropagation(net *topo.Network) *propagation {
	return newPropagationPooled(net, true)
}

func newPropagationPooled(net *topo.Network, sparse bool) *propagation {
	p := &propagation{
		env:     make([]minplus.Curve, len(net.Connections)),
		delay:   make([]float64, len(net.Connections)),
		next:    make([]int, len(net.Connections)),
		stage:   make([][]Stage, len(net.Connections)),
		backlog: make([]float64, len(net.Servers)),
	}
	// A connection accrues at most one stage per hop, and each shift can
	// add at most two breakpoints to its envelope: one flat slab backs
	// every stage list and the shift pool, fixed-capacity sub-sliced so
	// concurrent chains append into disjoint ranges.
	var stageSlab []Stage
	if !sparse {
		totalHops := 0
		for _, c := range net.Connections {
			totalHops += len(c.Path)
		}
		stageSlab = make([]Stage, 0, totalHops)
	}
	hints := make([]int, len(net.Connections))
	for i, c := range net.Connections {
		p.env[i] = c.SourceEnvelope()
		if !sparse {
			n := len(stageSlab)
			stageSlab = stageSlab[:n+len(c.Path)]
			p.stage[i] = stageSlab[n:n:n+len(c.Path)]
		}
		hints[i] = p.env[i].NumPoints() + 2*len(c.Path) + 2
	}
	if sparse {
		p.shift = minplus.NewLazyShiftPool(hints)
	} else {
		p.shift = minplus.NewShiftPool(hints)
	}
	return p
}

// advance records that connection c crossed nHops hops with delay bound d.
// It reports false when d is infinite, in which case no finite envelope can
// be propagated and the caller must abandon the analysis (the whole result
// degrades to +Inf, since downstream cross-traffic envelopes would be
// unknown).
func (p *propagation) advance(c int, servers []int, d float64, nHops int) bool {
	if math.IsInf(d, 1) {
		return false
	}
	p.delay[c] += d
	p.env[c] = p.shift.ShiftLeft(c, p.env[c], d)
	p.next[c] += nHops
	p.stage[c] = append(p.stage[c], Stage{Servers: servers, Delay: d})
	return true
}

// result packages the accumulated state.
func (p *propagation) result(name string) *Result {
	return &Result{Algorithm: name, Bounds: p.delay, Stages: p.stage, Backlogs: p.backlog}
}

// recordBacklog stores the buffer bound of server s computed from its
// aggregate input envelope: the vertical deviation from the service line,
// valid for every work-conserving discipline.
func (p *propagation) recordBacklog(s int, agg minplus.Curve, capacity float64) {
	b := minplus.VerticalDeviation(agg, minplus.Rate(capacity))
	if b < 0 {
		b = 0
	}
	p.backlog[s] = b
}

// fifoLocalDelay returns the worst-case delay of a FIFO server with
// capacity c and fixed latency lat whose aggregate input is bounded by g.
func fifoLocalDelay(g minplus.Curve, capacity, lat float64) float64 {
	d := minplus.HorizontalDeviation(g, minplus.Rate(capacity))
	return d + lat
}

// checkAnalyzable verifies the preconditions shared by all analyzers.
func checkAnalyzable(net *topo.Network) error {
	if err := net.Validate(); err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	return nil
}

// normalizeNetwork rescales all bit-valued quantities (capacities, bucket
// parameters, access and reserved rates) by the largest server capacity,
// returning the rescaled network and the scale factor. Delay bounds are
// invariant under this rescaling — a delay is bits divided by
// bits-per-second, and both scale together — but the piecewise-linear
// curve arithmetic becomes well-conditioned: raw bits-per-second
// magnitudes (1e8 and up) would otherwise amplify floating-point noise in
// breakpoint coordinates past the comparison tolerances. Bit-valued
// results (backlog bounds) must be multiplied back by the returned scale;
// see denormalizeBacklogs. The input network is not modified.
func normalizeNetwork(net *topo.Network) (*topo.Network, float64) {
	scale := 0.0
	for _, s := range net.Servers {
		if s.Capacity > scale {
			scale = s.Capacity
		}
	}
	if scale == 0 || (scale >= 0.5 && scale <= 2) {
		return net, 1
	}
	out := &topo.Network{
		Servers:     make([]server.Server, len(net.Servers)),
		Connections: make([]topo.Connection, len(net.Connections)),
	}
	copy(out.Servers, net.Servers)
	copy(out.Connections, net.Connections)
	for i := range out.Servers {
		out.Servers[i].Capacity /= scale
	}
	for i := range out.Connections {
		c := &out.Connections[i]
		c.Bucket.Sigma /= scale
		c.Bucket.Rho /= scale
		c.AccessRate /= scale
		c.Rate /= scale
		if c.Envelope != nil {
			scaled := minplus.ScaleY(*c.Envelope, 1/scale)
			c.Envelope = &scaled
		}
	}
	return out, scale
}

// denormalizeBacklogs converts a result's backlog bounds back to the
// caller's bit units after an analysis on a normalized network.
func denormalizeBacklogs(r *Result, scale float64) *Result {
	if scale != 1 {
		for i := range r.Backlogs {
			r.Backlogs[i] *= scale
		}
	}
	return r
}

// maxParallelWorkers bounds the fan-out of the intra-analysis parallel
// helpers (parallelMin, parallelValues).
func maxParallelWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelMin evaluates f(0..n-1) across the available cores and returns
// the minimum. Used for the embarrassingly parallel theta enumerations;
// the result is deterministic because min is order-independent. Each
// worker checks ctx between candidates and stops early once it is done;
// the partial minimum returned after cancellation is meaningless and
// callers must discard it (they surface ctx.Err() instead).
func parallelMin(ctx context.Context, n int, f func(int) float64) float64 {
	return parallelMinArena(ctx, n, func(_ *minplus.Arena, i int) float64 { return f(i) })
}

// parallelMinArena is parallelMin with a per-worker curve arena: each
// worker draws one arena from the pool, resets it between candidates, and
// releases it when done, so candidate-local curve scratch never reaches
// the garbage collector. f must not retain arena-backed curves past its
// return.
func parallelMinArena(ctx context.Context, n int, f func(*minplus.Arena, int) float64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	workers := maxParallelWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ar := minplus.GetArena()
		defer ar.Release()
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if canceled(ctx) {
				break
			}
			ar.Reset()
			if v := f(ar, i); v < best {
				best = v
			}
		}
		return best
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		mu   sync.Mutex
	)
	best := math.Inf(1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ar := minplus.GetArena()
			defer ar.Release()
			local := math.Inf(1)
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || canceled(ctx) {
					break
				}
				ar.Reset()
				if v := f(ar, i); v < local {
					local = v
				}
			}
			mu.Lock()
			if local < best {
				best = local
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return best
}
