package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

func TestIntegratedSingleServerEqualsDecomposed(t *testing.T) {
	net := singleServerNet(4, 1, 0.2, 1)
	ri, err := (Integrated{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if math.Abs(ri.Bound(i)-rd.Bound(i)) > 1e-9 {
			t.Errorf("conn %d: integrated %g != decomposed %g on a single server",
				i, ri.Bound(i), rd.Bound(i))
		}
	}
}

func TestIntegratedNeverWorseThanDecomposed(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		for _, u := range []float64{0.2, 0.5, 0.8, 0.95} {
			net, err := topo.PaperTandem(n, u)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := (Integrated{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := (Decomposed{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			for i := range net.Connections {
				if ri.Bound(i) > rd.Bound(i)+1e-9 {
					t.Errorf("n=%d U=%g conn %d: integrated %g > decomposed %g",
						n, u, i, ri.Bound(i), rd.Bound(i))
				}
			}
		}
	}
}

func TestIntegratedStrictlyBetterOnTandem(t *testing.T) {
	// The headline claim: for the multi-hop connection the integrated
	// bound is strictly tighter, and the relative improvement grows with
	// the network size (paper Figure 5, loads up to 80%).
	prevImprovement := 0.0
	for _, n := range []int{2, 4, 8} {
		net, err := topo.PaperTandem(n, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		ri, _ := (Integrated{}).Analyze(net)
		rd, _ := (Decomposed{}).Analyze(net)
		if ri.Bound(0) >= rd.Bound(0) {
			t.Fatalf("n=%d: integrated %g not better than decomposed %g", n, ri.Bound(0), rd.Bound(0))
		}
		imp := (rd.Bound(0) - ri.Bound(0)) / rd.Bound(0)
		if imp <= prevImprovement {
			t.Errorf("n=%d: improvement %g did not grow (prev %g)", n, imp, prevImprovement)
		}
		prevImprovement = imp
	}
}

func TestIntegratedDisablePairingEqualsDecomposed(t *testing.T) {
	net, err := topo.PaperTandem(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := (Integrated{DisablePairing: true}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if math.Abs(ri.Bound(i)-rd.Bound(i)) > 1e-9 {
			t.Errorf("conn %d: singleton-integrated %g != decomposed %g",
				i, ri.Bound(i), rd.Bound(i))
		}
	}
}

func TestIntegratedPairingOnTandem(t *testing.T) {
	net, err := topo.PaperTandem(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	subnets, err := (Integrated{}).partition(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(subnets) != 2 {
		t.Fatalf("expected 2 pairs for a 4-tandem, got %d subnetworks: %+v", len(subnets), subnets)
	}
	for _, sn := range subnets {
		if len(sn.servers) != 2 {
			t.Errorf("expected all pairs on an even tandem, got %v", sn.servers)
		}
	}
	// Odd tandem leaves one singleton.
	net5, _ := topo.PaperTandem(5, 0.5)
	subnets5, err := (Integrated{}).partition(net5)
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	for _, sn := range subnets5 {
		if len(sn.servers) == 1 {
			singles++
		}
	}
	if singles != 1 {
		t.Errorf("5-tandem: expected exactly 1 singleton, got %d", singles)
	}
	// Longer chains: the whole tandem becomes one subnetwork.
	subnetsFull, err := (Integrated{ChainLength: 8}).partition(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(subnetsFull) != 1 || len(subnetsFull[0].servers) != 4 {
		t.Errorf("ChainLength=8 on a 4-tandem: got %+v, want one 4-chain", subnetsFull)
	}
}

func TestIntegratedChainLengths(t *testing.T) {
	// Every chain length yields a valid bound no worse than decomposition
	// (each interval bound is clamped by its local-delay sum, and the
	// interval DP includes the all-singletons segmentation). Strict
	// monotonicity in ChainLength is NOT guaranteed — partitions with
	// different boundaries group different server pairs — but the
	// full-chain analysis must beat the paper's pairs on a long tandem,
	// since its segmentation DP subsumes every intra-chain pairing.
	net, err := topo.PaperTandem(6, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[int]float64{}
	for _, L := range []int{1, 2, 3, 4, 6} {
		res, err := (Integrated{ChainLength: L}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Connections {
			if res.Bound(i) > rd.Bound(i)+1e-9 {
				t.Errorf("ChainLength %d conn %d: %g worse than decomposed %g",
					L, i, res.Bound(i), rd.Bound(i))
			}
		}
		bounds[L] = res.Bound(0)
	}
	if bounds[6] >= bounds[2] {
		t.Errorf("full chain %g not better than pairs %g", bounds[6], bounds[2])
	}
	if math.Abs(bounds[1]-rd.Bound(0)) > 1e-9 {
		t.Errorf("ChainLength 1 = %g should equal decomposed %g", bounds[1], rd.Bound(0))
	}
}

func TestIntegratedStagesConsistent(t *testing.T) {
	net, err := topo.PaperTandem(6, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Integrated{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range net.Connections {
		sum, hops := 0.0, 0
		for _, st := range res.Stages[i] {
			sum += st.Delay
			hops += len(st.Servers)
		}
		if math.Abs(sum-res.Bound(i)) > 1e-9 {
			t.Errorf("conn %d: stage sum %g != bound %g", i, sum, res.Bound(i))
		}
		if hops != len(c.Path) {
			t.Errorf("conn %d: stages cover %d hops, path has %d", i, hops, len(c.Path))
		}
	}
}

func TestIntegratedRejectsNonFIFO(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.StaticPriority}},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, Path: []int{0}},
		},
	}
	if _, err := (Integrated{}).Analyze(net); err == nil {
		t.Fatal("expected discipline error")
	}
}

func TestIntegratedUnstable(t *testing.T) {
	net := singleServerNet(2, 1, 0.6, 1)
	res, err := (Integrated{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Bound(0), 1) {
		t.Errorf("unstable: bound = %g, want +Inf", res.Bound(0))
	}
}

func TestIntegratedRandomFeedforwardDominatedByDecomposed(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		net, err := topo.RandomFeedforward(6, 10, 0.7, seed)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := (Integrated{}).Analyze(net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rd, err := (Decomposed{}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Connections {
			if ri.Bound(i) > rd.Bound(i)+1e-9 {
				t.Errorf("seed %d conn %d: integrated %g > decomposed %g",
					seed, i, ri.Bound(i), rd.Bound(i))
			}
			if math.IsInf(ri.Bound(i), 1) {
				t.Errorf("seed %d conn %d: infinite bound on stable network", seed, i)
			}
		}
	}
}

func TestGreedyPairEstimateBelowSoundBound(t *testing.T) {
	// The greedy-scenario Lemma-4 estimate is by construction reachable by
	// at least one conforming scenario, so the sound pair bound must
	// dominate it. Verify on the paper's two-multiplexor subsystem.
	c := 1.0
	f12 := minplus.Sum(minplus.TokenBucketCapped(1, 0.15, c), minplus.TokenBucketCapped(1, 0.15, c))
	f1 := minplus.TokenBucketCapped(1, 0.15, c)
	f2 := minplus.TokenBucketCapped(1, 0.15, c)
	est := GreedyPairEstimate(f12, f1, f2, c, c)
	if est <= 0 {
		t.Fatalf("estimate = %g, want positive", est)
	}
	best := math.Inf(1)
	for _, th1 := range thetaCandidates(c, f1, 5) {
		b1 := FIFOResidual(c, f1, th1)
		for _, th2 := range thetaCandidates(c, f2, 5) {
			b2 := FIFOResidual(c, f2, th2)
			if d := minplus.HorizontalDeviation(f12, minplus.Convolve(b1, b2)); d < best {
				best = d
			}
		}
	}
	if best < est-1e-9 {
		t.Errorf("sound pair bound %g below greedy-scenario estimate %g", best, est)
	}
}

func TestOutputAndArrivalTimeFunctions(t *testing.T) {
	// Single token bucket through a unit server: W = min(t, G) and
	// H(t) = G^{-1}(W(t)) <= t.
	g := minplus.TokenBucketCapped(2, 0.5, 2) // enters at up to rate 2
	w := OutputFunction(g, 1)
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		if w.Eval(x) > g.Eval(x)+1e-9 {
			t.Errorf("output exceeds input at %g: %g > %g", x, w.Eval(x), g.Eval(x))
		}
		if w.Eval(x) > x+1e-9 {
			t.Errorf("output exceeds capacity at %g: %g", x, w.Eval(x))
		}
	}
	h := ArrivalTimeFunction(g, w)
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		if h.Eval(x) > x+1e-9 {
			t.Errorf("H(%g) = %g > t (bits cannot arrive after they leave)", x, h.Eval(x))
		}
	}
	d := DepartureTimeFunction(g, w)
	for _, x := range []float64{0.5, 1, 2, 5} {
		if d.Eval(x) < x-1e-9 {
			t.Errorf("D(%g) = %g < t (bits cannot leave before they arrive)", x, d.Eval(x))
		}
	}
}

func TestIntegratedDeterministic(t *testing.T) {
	// Map iteration or goroutine scheduling must never leak into results:
	// repeated runs produce bit-identical bounds.
	net, err := topo.RandomFeedforward(6, 12, 0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	base, err := (Integrated{ChainLength: 3}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		res, err := (Integrated{ChainLength: 3}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Bounds {
			if res.Bounds[i] != base.Bounds[i] {
				t.Fatalf("run %d conn %d: %v != %v (nondeterministic)",
					run, i, res.Bounds[i], base.Bounds[i])
			}
		}
	}
}

func TestDeconvPropagationNeverWorse(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		for _, u := range []float64{0.3, 0.6, 0.9} {
			net, err := topo.PaperTandem(n, u)
			if err != nil {
				t.Fatal(err)
			}
			base, err := (Integrated{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := (Integrated{DeconvPropagation: true}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			for i := range net.Connections {
				if ref.Bound(i) > base.Bound(i)+1e-9 {
					t.Errorf("n=%d U=%g conn %d: deconv propagation %g worse than shift %g",
						n, u, i, ref.Bound(i), base.Bound(i))
				}
			}
		}
	}
}

func TestDeconvPropagationMatchesShiftOnPaperWorkload(t *testing.T) {
	// Ablation finding: on the paper's tandem the per-flow deconvolution
	// refinement never beats the b(I + d) shift rule — the blind per-flow
	// residual is weaker than the FIFO-aggregate treatment the run bound
	// already used, so the shift envelope is the binding one. This
	// validates the paper's (and Cruz's) choice of propagation rule; the
	// knob stays available for other workloads.
	net, err := topo.PaperTandem(8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := (Integrated{}).Analyze(net)
	ref, _ := (Integrated{DeconvPropagation: true}).Analyze(net)
	for i := range net.Connections {
		if math.Abs(ref.Bound(i)-base.Bound(i)) > 1e-9 {
			t.Logf("conn %d differs: %g vs %g (refinement active)", i, ref.Bound(i), base.Bound(i))
		}
		if ref.Bound(i) > base.Bound(i)+1e-9 {
			t.Errorf("conn %d: refinement made things worse: %g > %g", i, ref.Bound(i), base.Bound(i))
		}
	}
}
