package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/topo"
)

func TestClosedFormSingleServer(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, rho := range []float64{0.05, 0.1, 0.2} {
			net := singleServerNet(k, 1.5, rho, 1)
			res, err := (Decomposed{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			want := SingleFIFOFreshDelay(k, 1.5, rho, 1)
			if math.Abs(res.Bound(0)-want) > 1e-9 {
				t.Errorf("k=%d rho=%g: analyzer %g vs closed form %g", k, rho, res.Bound(0), want)
			}
		}
	}
}

func TestClosedFormTandemFirstTwoHops(t *testing.T) {
	for _, u := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		net, err := topo.PaperTandem(5, u)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Decomposed{}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		rho := u / 4
		wantE1 := TandemFirstHopDelay(1, rho, 1)
		wantE2 := TandemSecondHopDelay(1, rho, 1)
		gotE1 := res.Stages[0][0].Delay
		gotE2 := res.Stages[0][1].Delay
		if math.Abs(gotE1-wantE1) > 1e-9 {
			t.Errorf("U=%g: E1 analyzer %g vs closed form %g", u, gotE1, wantE1)
		}
		if math.Abs(gotE2-wantE2) > 1e-9 {
			t.Errorf("U=%g: E2 analyzer %g vs closed form %g", u, gotE2, wantE2)
		}
	}
}

func TestClosedFormMatchesPaperUnitFormula(t *testing.T) {
	// The paper's surviving formula: E_1 = 2*sigma/(1-rho) at C = 1.
	for _, rho := range []float64{0.1, 0.2} {
		if got, want := TandemFirstHopDelay(1, rho, 1), 2/(1-rho); math.Abs(got-want) > 1e-12 {
			t.Errorf("rho=%g: E1 = %g, want %g", rho, got, want)
		}
	}
}

func TestClosedFormScalesWithCapacity(t *testing.T) {
	// Doubling capacity and all rates/bursts leaves delays unchanged;
	// doubling only capacity halves-ish them (sanity directions).
	base := TandemSecondHopDelay(1, 0.1, 1)
	scaled := TandemSecondHopDelay(2, 0.2, 2)
	if math.Abs(base-scaled) > 1e-12 {
		t.Errorf("joint scaling changed the delay: %g vs %g", base, scaled)
	}
	faster := TandemSecondHopDelay(1, 0.1, 2)
	if faster >= base {
		t.Errorf("doubling capacity did not reduce the delay: %g vs %g", faster, base)
	}
}
