package analysis

// This file freezes the pre-arena Integrated engine verbatim — the chain
// analysis, partitioner and subnetwork ordering exactly as they stood
// before the allocation-free overhaul: per-server ConnectionsAt scans
// (O(connections x path length) per call), the connection-rescan
// successor/extension checks in the partitioner, the sort-per-pop
// subnetwork ready queue, heap-allocated aggregate caches, and the
// heap-allocating theta search. TestFabricSpeedup measures the pooled
// engine against this reference on the Clos/fat-tree fabric workload, so
// the gate compares against the real pre-overhaul code rather than a
// strawman. The minplus layer is shared (the nil-arena paths allocate on
// the heap like the old operations did), which under-measures the true
// delta — the gate is conservative.
//
// Nothing here is reachable from non-test code. Shared, semantically
// unchanged helpers (FIFOResidual, thetaCandidates, fifoLocalDelay,
// propagation, partitioner.createsCycle, levelizeSubnetworks,
// analyzeLevel, normalizeNetwork) are used as-is; everything the overhaul
// rewrote is copied with a pre prefix.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// preIntegratedAnalyze is the old Integrated.AnalyzeContext body on a
// background context: old partition, old ordering, old chain analysis.
func preIntegratedAnalyze(a Integrated, net *topo.Network) (*Result, error) {
	ctx := context.Background()
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return nil, fmt.Errorf("analysis: Integrated applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	if !net.Stable() {
		return allInf("Integrated", net), nil
	}
	subnets, err := prePartition(a, net)
	if err != nil {
		return nil, err
	}
	ordered, err := preOrderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	var levels [][]subnetwork
	if !a.Sequential {
		levels = levelizeSubnetworks(net, ordered)
	}
	p := newPropagation(net)
	if a.Sequential {
		for _, sn := range ordered {
			if !preAnalyzeChain(ctx, net, sn.servers, p, a.DeconvPropagation) {
				return allInf("Integrated", net), nil
			}
		}
	} else {
		for _, level := range levels {
			ok := analyzeLevel(level, func(sn subnetwork) bool {
				return preAnalyzeChain(ctx, net, sn.servers, p, a.DeconvPropagation)
			})
			if !ok {
				return allInf("Integrated", net), nil
			}
		}
	}
	return denormalizeBacklogs(p.result("Integrated"), scale), nil
}

// prePartition is the old Integrated.partition: successor choice and
// extension validity both rescan every connection.
func prePartition(a Integrated, net *topo.Network) ([]subnetwork, error) {
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	maxLen := a.chainLength()
	pt := newPartitioner(net)
	used := make(map[int]bool, len(net.Servers))
	var subnets []subnetwork
	for _, u := range order {
		if used[u] {
			continue
		}
		chain := []int{u}
		used[u] = true
		unit := pt.newUnit(u)
		for len(chain) < maxLen {
			tail := chain[len(chain)-1]
			next := preBestSuccessor(a, net, tail, used)
			if next < 0 {
				break
			}
			trial := append(append([]int(nil), chain...), next)
			if !preExtensionValid(pt, trial, unit, next) {
				break
			}
			chain = trial
			used[next] = true
			pt.assign(unit, next)
		}
		subnets = append(subnets, subnetwork{servers: chain})
	}
	return subnets, nil
}

// preBestSuccessor is the old bestSuccessor: a full connection scan per
// call.
func preBestSuccessor(a Integrated, net *topo.Network, tail int, used map[int]bool) int {
	through := make(map[int]float64)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			if c.Path[i] == tail && !used[c.Path[i+1]] {
				through[c.Path[i+1]] += c.Bucket.Rho
			}
		}
	}
	best, bestRate := -1, a.MaxPairRate
	keys := make([]int, 0, len(through))
	for v := range through {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	for _, v := range keys {
		if through[v] > bestRate {
			best, bestRate = v, through[v]
		}
	}
	return best
}

// preExtensionValid is the old partitioner.extensionValid: the reversal
// check rescans every connection's full path.
func preExtensionValid(pt *partitioner, trial []int, unit, next int) bool {
	pos := make(map[int]int, len(trial))
	for i, s := range trial {
		pos[s] = i
	}
	for _, c := range pt.net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			pu, okU := pos[c.Path[i]]
			pv, okV := pos[c.Path[i+1]]
			if okU && okV && pv < pu {
				return false
			}
		}
	}
	return !pt.createsCycle(unit, next)
}

// preOrderSubnetworks is the old orderSubnetworks with the
// sort-after-every-pop ready queue.
func preOrderSubnetworks(net *topo.Network, subnets []subnetwork) ([]subnetwork, error) {
	owner := make(map[int]int, len(net.Servers))
	for i, sn := range subnets {
		for _, s := range sn.servers {
			owner[s] = i
		}
	}
	adj := make(map[int]map[int]bool)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			a, b := owner[c.Path[i]], owner[c.Path[i+1]]
			if a == b {
				continue
			}
			if adj[a] == nil {
				adj[a] = make(map[int]bool)
			}
			adj[a][b] = true
		}
	}
	indeg := make([]int, len(subnets))
	for _, outs := range adj {
		for v := range outs {
			indeg[v]++
		}
	}
	var ready []int
	for i := range subnets {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []subnetwork
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, subnets[u])
		var next []int
		for v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
		sort.Ints(ready)
	}
	if len(order) != len(subnets) {
		return nil, fmt.Errorf("analysis: subnetwork partition induces a cycle")
	}
	return order, nil
}

// preAnalyzeChain is the old analyzeChain: per-server ConnectionsAt
// scans, heap-allocated aggregate caches, heap theta search.
func preAnalyzeChain(ctx context.Context, net *topo.Network, chain []int, p *propagation, deconv bool) bool {
	pos := make(map[int]int, len(chain))
	for i, s := range chain {
		pos[s] = i
	}
	runIndex := map[[2]int]*run{}
	var runs []*run
	seen := map[int]bool{}
	for _, s := range chain {
		for _, c := range net.ConnectionsAt(s) {
			if seen[c] {
				continue
			}
			seen[c] = true
			path := net.Connections[c].Path
			h := p.next[c]
			lo := pos[path[h]]
			hi := lo
			for k := h + 1; k < len(path); k++ {
				q, ok := pos[path[k]]
				if !ok || q != hi+1 {
					break
				}
				hi = q
			}
			key := [2]int{lo, hi}
			r, ok := runIndex[key]
			if !ok {
				r = &run{lo: lo, hi: hi}
				runIndex[key] = r
				runs = append(runs, r)
			}
			r.conns = append(r.conns, c)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].lo != runs[j].lo {
			return runs[i].lo < runs[j].lo
		}
		return runs[i].hi < runs[j].hi
	})

	prefix := map[int][]float64{}
	var bounds *preIntervalBounds
	iters := 1
	if len(chain) > 2 {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		envAt := make([]map[int]minplus.Curve, len(chain)+1)
		local := make([]float64, len(chain))
		for i := range envAt {
			envAt[i] = map[int]minplus.Curve{}
		}
		for _, r := range runs {
			for _, c := range r.conns {
				for i := r.lo; i <= r.hi; i++ {
					if iter > 0 {
						envAt[i][c] = minplus.ShiftLeft(p.env[c], prefix[c][i-r.lo])
					} else if i == r.lo {
						envAt[i][c] = p.env[c]
					}
				}
			}
		}
		ra := newPreRunAggregates(len(chain), runs)
		for i := range chain {
			srv := net.Servers[chain[i]]
			ra.fill(i, envAt[i])
			agg := ra.total(i)
			local[i] = fifoLocalDelay(agg, srv.Capacity, srv.Latency)
			if math.IsInf(local[i], 1) {
				return false
			}
			if iter == iters-1 {
				p.recordBacklog(chain[i], agg, srv.Capacity)
			}
			if iter == 0 {
				for _, r := range runs {
					if r.lo <= i && i < r.hi {
						for _, c := range r.conns {
							envAt[i+1][c] = minplus.ShiftLeft(envAt[i][c], local[i])
						}
					}
				}
			}
		}
		bounds = newPreIntervalBounds(ctx, net, chain, runs, ra, envAt, local)
		for _, r := range runs {
			for _, c := range r.conns {
				shifts := make([]float64, r.hi-r.lo+1)
				for i := r.lo + 1; i <= r.hi; i++ {
					shifts[i-r.lo] = bounds.best(r.lo, i-1)
				}
				prefix[c] = shifts
			}
		}
	}
	for ri, r := range runs {
		servers := make([]int, 0, r.hi-r.lo+1)
		for i := r.lo; i <= r.hi; i++ {
			servers = append(servers, chain[i])
		}
		d := bounds.best(r.lo, r.hi)
		var excl *preRunExclSums
		if deconv && r.hi > r.lo {
			excl = newPreRunExclSums(bounds, ri)
		}
		for mi, c := range r.conns {
			entry := p.env[c]
			if !p.advance(c, servers, d, len(servers)) {
				return false
			}
			if excl != nil {
				refined := preDeconvOutput(net, chain, r, mi, entry, excl)
				if refined != nil {
					p.env[c] = minplus.Min(p.env[c], *refined)
				}
			}
		}
	}
	return true
}

// preSumConns is the old sumConns: a fresh operand slice per call.
func preSumConns(env map[int]minplus.Curve, conns []int) minplus.Curve {
	curves := make([]minplus.Curve, len(conns))
	for i, c := range conns {
		curves[i] = env[c]
	}
	return minplus.SumN(curves...)
}

// preRunAggregates is the old runAggregates: every partial, total and
// interval aggregate heap-allocates its operand list and result.
type preRunAggregates struct {
	runs    []*run
	partial [][]minplus.Curve
}

func newPreRunAggregates(nPos int, runs []*run) *preRunAggregates {
	ra := &preRunAggregates{runs: runs, partial: make([][]minplus.Curve, nPos)}
	for i := range ra.partial {
		ra.partial[i] = make([]minplus.Curve, len(runs))
	}
	return ra
}

func (ra *preRunAggregates) fill(i int, env map[int]minplus.Curve) {
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			ra.partial[i][ri] = preSumConns(env, r.conns)
		}
	}
}

func (ra *preRunAggregates) total(i int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			curves = append(curves, ra.partial[i][ri])
		}
	}
	return minplus.SumN(curves...)
}

func (ra *preRunAggregates) covering(at, lo, hi int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= lo && hi <= r.hi {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	return minplus.SumN(curves...)
}

func (ra *preRunAggregates) crossAt(at, lo, hi int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= at && at <= r.hi && !(r.lo <= lo && hi <= r.hi) {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	return minplus.SumN(curves...)
}

// preRunExclSums is the old runExclSums: heap pairwise prefix/suffix sums.
type preRunExclSums struct {
	r        *run
	others   []minplus.Curve
	pre, suf [][]minplus.Curve
}

func newPreRunExclSums(ib *preIntervalBounds, ri int) *preRunExclSums {
	r := ib.runs[ri]
	n := r.hi - r.lo + 1
	m := len(r.conns)
	ex := &preRunExclSums{
		r:      r,
		others: make([]minplus.Curve, n),
		pre:    make([][]minplus.Curve, n),
		suf:    make([][]minplus.Curve, n),
	}
	for i := r.lo; i <= r.hi; i++ {
		rel := i - r.lo
		curves := make([]minplus.Curve, 0, len(ib.runs))
		for rj, o := range ib.runs {
			if rj != ri && o.lo <= i && i <= o.hi {
				curves = append(curves, ib.ra.partial[i][rj])
			}
		}
		ex.others[rel] = minplus.SumN(curves...)
		pre := make([]minplus.Curve, m+1)
		suf := make([]minplus.Curve, m+1)
		pre[0] = minplus.Zero()
		for j := 0; j < m; j++ {
			pre[j+1] = minplus.Add(pre[j], ib.envAt[i][r.conns[j]])
		}
		suf[m] = minplus.Zero()
		for j := m - 1; j >= 0; j-- {
			suf[j] = minplus.Add(suf[j+1], ib.envAt[i][r.conns[j]])
		}
		ex.pre[rel] = pre
		ex.suf[rel] = suf
	}
	return ex
}

func (ex *preRunExclSums) crossWithout(i, mi int) minplus.Curve {
	rel := i - ex.r.lo
	return minplus.SumN(ex.others[rel], ex.pre[rel][mi], ex.suf[rel][mi+1])
}

func preDeconvOutput(net *topo.Network, chain []int, r *run, mi int, entry minplus.Curve, ex *preRunExclSums) *minplus.Curve {
	beta := minplus.Curve{}
	for i := r.lo; i <= r.hi; i++ {
		res := FIFOResidual(net.Servers[chain[i]].Capacity, ex.crossWithout(i, mi), 0)
		if i == r.lo {
			beta = res
		} else {
			beta = minplus.ConvolveGated(beta, res)
		}
	}
	if beta.FinalSlope() <= entry.FinalSlope() {
		return nil
	}
	out, err := minplus.Deconvolve(entry, beta)
	if err != nil {
		return nil
	}
	return &out
}

// preIntervalBounds is the old intervalBounds over the old aggregates.
type preIntervalBounds struct {
	ctx    context.Context
	net    *topo.Network
	chain  []int
	runs   []*run
	ra     *preRunAggregates
	envAt  []map[int]minplus.Curve
	local  []float64
	direct map[[2]int]float64
	opt    map[[2]int]float64
}

func newPreIntervalBounds(ctx context.Context, net *topo.Network, chain []int, runs []*run, ra *preRunAggregates, envAt []map[int]minplus.Curve, local []float64) *preIntervalBounds {
	return &preIntervalBounds{
		ctx: ctx, net: net, chain: chain, runs: runs, ra: ra, envAt: envAt, local: local,
		direct: map[[2]int]float64{},
		opt:    map[[2]int]float64{},
	}
}

func (ib *preIntervalBounds) best(lo, hi int) float64 {
	key := [2]int{lo, hi}
	if d, ok := ib.opt[key]; ok {
		return d
	}
	d := ib.directBound(lo, hi)
	for m := lo; m < hi; m++ {
		if split := ib.best(lo, m) + ib.best(m+1, hi); split < d {
			d = split
		}
	}
	ib.opt[key] = d
	return d
}

func (ib *preIntervalBounds) directBound(lo, hi int) float64 {
	if lo == hi {
		return ib.local[lo]
	}
	key := [2]int{lo, hi}
	if d, ok := ib.direct[key]; ok {
		return d
	}
	d := preRunIntervalBound(ib.ctx, ib.net, ib.chain, lo, hi, ib.ra, ib.local)
	ib.direct[key] = d
	return d
}

func preRunIntervalBound(ctx context.Context, net *topo.Network, chain []int, lo, hi int, ra *preRunAggregates, local []float64) float64 {
	agg := ra.covering(lo, lo, hi)

	k := hi - lo + 1
	cross := make([]minplus.Curve, k)
	caps := make([]float64, k)
	cands := make([][]float64, k)
	lat := 0.0
	decomposedSum := 0.0
	for i := 0; i < k; i++ {
		posIdx := lo + i
		srv := net.Servers[chain[posIdx]]
		caps[i] = srv.Capacity
		lat += srv.Latency
		decomposedSum += local[posIdx]
		cross[i] = ra.crossAt(posIdx, lo, hi)
		cands[i] = thetaCandidates(caps[i], cross[i], local[posIdx])
	}

	ts := &preThetaSearch{
		ctx:   ctx,
		agg:   agg,
		cands: cands,
		residual: func(i int, theta float64) minplus.Curve {
			return FIFOResidual(caps[i], cross[i], theta)
		},
	}
	best := ts.minimize() + lat
	if decomposedSum < best {
		best = decomposedSum
	}
	return best
}

// preThetaSearch is the old thetaSearch: every residual, decomposition,
// convolution and deviation allocates on the heap.
type preThetaSearch struct {
	ctx      context.Context
	agg      minplus.Curve
	cands    [][]float64
	residual func(pos int, theta float64) minplus.Curve

	res [][]*minplus.Curve
}

func (ts *preThetaSearch) residualAt(i, ci int) minplus.Curve {
	if ts.res[i][ci] == nil {
		c := ts.residual(i, ts.cands[i][ci])
		ts.res[i][ci] = &c
	}
	return *ts.res[i][ci]
}

func (ts *preThetaSearch) minimize() float64 {
	k := len(ts.cands)
	ts.res = make([][]*minplus.Curve, k)
	for i := range ts.res {
		ts.res[i] = make([]*minplus.Curve, len(ts.cands[i]))
	}
	if k == 2 {
		return ts.enumeratePairs()
	}
	return ts.coordinateDescent()
}

func (ts *preThetaSearch) aggRisesImmediately() bool {
	return ts.agg.EvalRight(0) > minplus.Eps || ts.agg.RightSlope(0) > minplus.Eps
}

func (ts *preThetaSearch) enumeratePairs() float64 {
	n0, n1 := len(ts.cands[0]), len(ts.cands[1])
	for i := 0; i < 2; i++ {
		for ci := range ts.cands[i] {
			ts.residualAt(i, ci)
		}
	}
	type part struct {
		dec minplus.GatedConvex
		hd  float64
	}
	fast := true
	parts := [2][]part{make([]part, n0), make([]part, n1)}
	for i := 0; i < 2 && fast; i++ {
		for ci := range ts.cands[i] {
			dec, ok := minplus.DecomposeGatedConvex(ts.residualAt(i, ci))
			if !ok {
				fast = false
				break
			}
			parts[i][ci] = part{dec: dec}
		}
	}
	if fast && ts.aggRisesImmediately() {
		for i := 0; i < 2; i++ {
			for ci := range ts.cands[i] {
				chi := minplus.ShiftLeft(ts.residualAt(i, ci), parts[i][ci].dec.Gate)
				parts[i][ci].hd = minplus.HorizontalDeviation(ts.agg, chi)
			}
		}
		return parallelMin(ts.ctx, n0*n1, func(idx int) float64 {
			a, b := &parts[0][idx/n1], &parts[1][idx%n1]
			w := minplus.ConvolveConvexParts(a.dec, b.dec)
			hd := math.Max(math.Max(a.hd, b.hd), minplus.HorizontalDeviation(ts.agg, w))
			return a.dec.Gate + b.dec.Gate + hd
		})
	}
	return parallelMin(ts.ctx, n0*n1, func(idx int) float64 {
		beta := minplus.Convolve(ts.residualAt(0, idx/n1), ts.residualAt(1, idx%n1))
		return minplus.HorizontalDeviation(ts.agg, beta)
	})
}

// coordinateDescent evaluates candidates sequentially where the old code
// fanned out with parallelValues: the old fan-out wrote the memo map from
// the workers (the latent race the overhaul fixed), which would trip the
// race detector here. Only reachable for ChainLength > 2, which the
// fabric gate does not use.
func (ts *preThetaSearch) coordinateDescent() float64 {
	k := len(ts.cands)
	idx := make([]int, k)
	seen := map[string]float64{}
	evalVec := func(v []int) float64 {
		key := vecKey(v)
		if d, ok := seen[key]; ok {
			return d
		}
		beta := ts.residualAt(0, v[0])
		for i := 1; i < k; i++ {
			beta = minplus.Convolve(beta, ts.residualAt(i, v[i]))
		}
		d := minplus.HorizontalDeviation(ts.agg, beta)
		seen[key] = d
		return d
	}
	best := evalVec(idx)
	for pass := 0; pass < 3; pass++ {
		improved := false
		for i := 0; i < k; i++ {
			var pre, suf *minplus.Curve
			if i > 0 {
				b := ts.residualAt(0, idx[0])
				for j := 1; j < i; j++ {
					b = minplus.Convolve(b, ts.residualAt(j, idx[j]))
				}
				pre = &b
			}
			if i+1 < k {
				b := ts.residualAt(i+1, idx[i+1])
				for j := i + 2; j < k; j++ {
					b = minplus.Convolve(b, ts.residualAt(j, idx[j]))
				}
				suf = &b
			}
			vals := make([]float64, len(ts.cands[i]))
			for ci := range ts.cands[i] {
				v := append([]int(nil), idx...)
				v[i] = ci
				key := vecKey(v)
				if d, ok := seen[key]; ok {
					vals[ci] = d
					continue
				}
				beta := ts.residualAt(i, ci)
				if pre != nil {
					beta = minplus.Convolve(*pre, beta)
				}
				if suf != nil {
					beta = minplus.Convolve(beta, *suf)
				}
				d := minplus.HorizontalDeviation(ts.agg, beta)
				seen[key] = d
				vals[ci] = d
			}
			bestHere := idx[i]
			for ci := range ts.cands[i] {
				if ci == bestHere {
					continue
				}
				if d := vals[ci]; d < best {
					best = d
					bestHere = ci
					improved = true
				}
			}
			idx[i] = bestHere
		}
		if !improved {
			break
		}
	}
	return best
}
