package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// edfNet builds one EDF server with two connections whose end-to-end
// deadlines are given.
func edfNet(d1, d2 float64) *topo.Network {
	return &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.EDF}},
		Connections: []topo.Connection{
			{Name: "a", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{0}, Deadline: d1},
			{Name: "b", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{0}, Deadline: d2},
		},
	}
}

func TestEDFSchedulableMeetsDeadlines(t *testing.T) {
	// Generous deadlines: zero lateness, so each bound equals the local
	// deadline.
	net := edfNet(10, 20)
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bound(0)-10) > 1e-9 || math.Abs(res.Bound(1)-20) > 1e-9 {
		t.Errorf("bounds = %g, %g; want the local deadlines 10, 20", res.Bound(0), res.Bound(1))
	}
	ok, err := EDFSchedulable(net, 0)
	if err != nil || !ok {
		t.Errorf("schedulable = %v, %v; want true", ok, err)
	}
}

func TestEDFLatenessAddsUniformly(t *testing.T) {
	// Deadlines too tight for the bursts: the lateness term appears and
	// is the same for both connections (bound - deadline equal).
	net := edfNet(0.5, 0.75)
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	l0 := res.Bound(0) - 0.5
	l1 := res.Bound(1) - 0.75
	if l0 <= 0 {
		t.Fatalf("expected positive lateness, got %g", l0)
	}
	if math.Abs(l0-l1) > 1e-9 {
		t.Errorf("lateness differs between flows: %g vs %g", l0, l1)
	}
	ok, err := EDFSchedulable(net, 0)
	if err != nil || ok {
		t.Errorf("schedulable = %v, %v; want false", ok, err)
	}
}

func TestEDFDistinguishesUrgency(t *testing.T) {
	// With EDF, the urgent flow's bound tracks its deadline; under FIFO
	// both flows share the worst case.
	net := edfNet(1.0, 30)
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	fifoNet := edfNet(1.0, 30)
	fifoNet.Servers[0].Discipline = server.FIFO
	fres, err := (Decomposed{}).Analyze(fifoNet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound(0) >= fres.Bound(0) {
		t.Errorf("urgent EDF bound %g should beat FIFO %g", res.Bound(0), fres.Bound(0))
	}
}

func TestEDFRequiresDeadline(t *testing.T) {
	net := edfNet(10, 0)
	if _, err := (Decomposed{}).Analyze(net); err == nil {
		t.Fatal("expected error for missing deadline at EDF server")
	}
}

func TestLocalDeadlineSplitsEvenly(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{
			{Capacity: 1, Discipline: server.EDF},
			{Capacity: 1, Discipline: server.EDF},
			{Capacity: 1, Discipline: server.EDF},
		},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 1, 2}, Deadline: 9},
		},
	}
	d, err := LocalDeadline(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 1e-12 {
		t.Errorf("local deadline = %g, want 3", d)
	}
	// End-to-end bound: three schedulable hops of 3 each.
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bound(0)-9) > 1e-9 {
		t.Errorf("end-to-end EDF bound = %g, want 9", res.Bound(0))
	}
}

func TestEDFTandemDominatesDeadlinesWhenFeasible(t *testing.T) {
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 3, Sigma: 1, Rho: 0.1, Capacity: 1, Discipline: server.EDF,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 30
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if math.IsInf(res.Bound(i), 1) || res.Bound(i) <= 0 {
			t.Errorf("conn %d: bad EDF bound %g", i, res.Bound(i))
		}
	}
}
