package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

func spTandem(n int, load float64) *topo.Network {
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: n, Sigma: 1, Rho: load / 4, Capacity: 1,
		Discipline: server.StaticPriority,
		// Connection 0 is the LOW-priority class here: that is where the
		// integrated pairing has something to improve (the urgent class
		// already gets near-zero bounds).
		Priority0: 1, PriorityCross: 0,
	})
	if err != nil {
		panic(err)
	}
	return net
}

func TestIntegratedSPNeverWorseThanDecomposed(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		for _, u := range []float64{0.3, 0.6, 0.9} {
			net := spTandem(n, u)
			ri, err := (IntegratedSP{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := (Decomposed{}).Analyze(net)
			if err != nil {
				t.Fatal(err)
			}
			for i := range net.Connections {
				if ri.Bound(i) > rd.Bound(i)+1e-9 {
					t.Errorf("n=%d U=%g conn %d: integratedSP %g > SP decomposed %g",
						n, u, i, ri.Bound(i), rd.Bound(i))
				}
				if math.IsInf(ri.Bound(i), 1) || ri.Bound(i) < 0 {
					t.Errorf("n=%d U=%g conn %d: bad bound %g", n, u, i, ri.Bound(i))
				}
			}
		}
	}
}

func TestIntegratedSPImprovesLowPriorityThroughTraffic(t *testing.T) {
	net := spTandem(6, 0.7)
	ri, err := (IntegratedSP{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Bound(0) >= rd.Bound(0) {
		t.Errorf("integratedSP %g not better than decomposed %g for the multi-hop low-priority connection",
			ri.Bound(0), rd.Bound(0))
	}
}

func TestIntegratedSPMatchesFIFOWhenOneClass(t *testing.T) {
	// With every connection in the same class, static priority IS FIFO,
	// and IntegratedSP's bounds should be close to Integrated's (the
	// rate-latency minorant of the full service line is the line itself).
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 4, Sigma: 1, Rho: 0.15, Capacity: 1,
		Discipline: server.StaticPriority,
	})
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := (IntegratedSP{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	fifoNet, err := topo.Tandem(topo.TandemSpec{
		Switches: 4, Sigma: 1, Rho: 0.15, Capacity: 1,
		Discipline: server.FIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	rfifo, err := (Integrated{}).Analyze(fifoNet)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if math.Abs(rsp.Bound(i)-rfifo.Bound(i)) > 1e-6 {
			t.Errorf("conn %d: single-class SP %g != FIFO %g", i, rsp.Bound(i), rfifo.Bound(i))
		}
	}
}

func TestIntegratedSPRejectsNonSP(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.FIFO}},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, Path: []int{0}},
		},
	}
	if _, err := (IntegratedSP{}).Analyze(net); err == nil {
		t.Fatal("expected discipline error")
	}
}

func TestIntegratedSPUnstable(t *testing.T) {
	net := spTandem(2, 0.7)
	for i := range net.Connections {
		net.Connections[i].Bucket.Rho = 0.3 // 4 connections per link: 120% load
	}
	res, err := (IntegratedSP{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Bound(0), 1) {
		t.Errorf("unstable: bound %g, want +Inf", res.Bound(0))
	}
}

func TestIntegratedSPUrgentClassTiny(t *testing.T) {
	// The urgent class must keep near-trivial bounds regardless of the
	// bulk class's load.
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 3, Sigma: 1, Rho: 0.2, Capacity: 1,
		Discipline: server.StaticPriority, Priority0: 0, PriorityCross: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (IntegratedSP{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	// Connection 0 is alone in the urgent class: essentially zero delay.
	if res.Bound(0) > 1e-6 {
		t.Errorf("urgent lone connection bound %g, want ~0", res.Bound(0))
	}
}
