package analysis

import (
	"context"
	"fmt"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// TestShrinkMatchesFullAnalysis is the bit-identity check for incremental
// removal: over randomized feedforward networks, shrinking a baseline by
// any connection index must reproduce the full analysis of the shrunken
// network exactly — bounds, stages, and backlogs — for both incremental
// analyzers, and the promoted baseline must keep extending exactly.
func TestShrinkMatchesFullAnalysis(t *testing.T) {
	for _, inc := range []Incremental{Decomposed{}, Integrated{}} {
		for seed := int64(0); seed < 8; seed++ {
			net, err := topo.RandomFeedforward(6, 7, 0.6, seed)
			if err != nil {
				t.Fatal(err)
			}
			base, err := inc.NewBaseline(net)
			if err != nil {
				t.Fatal(err)
			}
			for remove := 0; remove < len(net.Connections); remove++ {
				label := fmt.Sprintf("%s/seed%d/remove%d", inc.Name(), seed, remove)
				ext, err := base.Shrink(remove)
				if err != nil {
					t.Fatalf("%s: shrink: %v", label, err)
				}
				shrunk := &topo.Network{
					Servers:     net.Servers,
					Connections: removeConnection(net.Connections, remove),
				}
				want, err := inc.Analyze(shrunk)
				if err != nil {
					t.Fatalf("%s: full analyze: %v", label, err)
				}
				requireSameResult(t, label, want, ext.Result())

				// The promoted baseline must extend bit-identically too:
				// re-admitting the released connection has to match a full
				// analysis of the re-extended network.
				reext, err := ext.Promote().Extend(net.Connections[remove])
				if err != nil {
					t.Fatalf("%s: re-extend: %v", label, err)
				}
				readmitted := &topo.Network{
					Servers: net.Servers,
					Connections: append(append([]topo.Connection(nil), shrunk.Connections...),
						net.Connections[remove]),
				}
				want, err = inc.Analyze(readmitted)
				if err != nil {
					t.Fatalf("%s: full re-analyze: %v", label, err)
				}
				requireSameResult(t, label+"/readmit", want, reext.Result())
			}
		}
	}
}

// TestShrinkScopesWork pins the point of the tentpole: releasing a
// connection whose closure is a strict subset of a long tandem must replay
// most units rather than recompute them.
func TestShrinkScopesWork(t *testing.T) {
	const n = 16
	servers := make([]server.Server, n)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("s%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	conns := make([]topo.Connection, n/2)
	for i := range conns {
		conns[i] = topo.Connection{
			Name:       fmt.Sprintf("c%d", i),
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.05},
			AccessRate: 1,
			Path:       []int{2 * i, 2*i + 1}, // disjoint 2-hop routes
		}
	}
	net := &topo.Network{Servers: servers, Connections: conns}
	base, err := Decomposed{}.NewBaseline(net)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := base.Shrink(0)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Stats.Affected != 0 {
		t.Errorf("disjoint release affected %d survivors, want 0", ext.Stats.Affected)
	}
	if ext.Stats.RecomputedUnits > 2 {
		t.Errorf("recomputed %d units, want <= 2 (the released route)", ext.Stats.RecomputedUnits)
	}
	if ext.Stats.ReplayedUnits < n-2 {
		t.Errorf("replayed %d units, want >= %d", ext.Stats.ReplayedUnits, n-2)
	}
}

// TestShrinkErrors covers the degenerate inputs.
func TestShrinkErrors(t *testing.T) {
	net, err := topo.RandomFeedforward(4, 3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Integrated{}.NewBaseline(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Shrink(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := base.Shrink(len(net.Connections)); err == nil {
		t.Error("out-of-range index accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := base.ShrinkContext(ctx, 0); err == nil {
		t.Error("cancelled shrink returned no error")
	}
}

// TestShrinkToEmpty releases the only connection: the promoted baseline
// must cover the empty network and still accept a fresh extension.
func TestShrinkToEmpty(t *testing.T) {
	net, err := topo.RandomFeedforward(4, 1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range []Incremental{Decomposed{}, Integrated{}} {
		base, err := inc.NewBaseline(net)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := base.Shrink(0)
		if err != nil {
			t.Fatalf("%s: shrink to empty: %v", inc.Name(), err)
		}
		if got := len(ext.Result().Bounds); got != 0 {
			t.Fatalf("%s: %d bounds on the empty network", inc.Name(), got)
		}
		reext, err := ext.Promote().Extend(net.Connections[0])
		if err != nil {
			t.Fatalf("%s: extend from empty: %v", inc.Name(), err)
		}
		want, err := inc.Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, inc.Name()+"/from-empty", want, reext.Result())
	}
}
