package analysis

import (
	"fmt"
	"math"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// boundsClose compares delay/backlog values with a tight relative
// tolerance. The reworked engine reassociates floating-point sums (SumN
// merges k operands in one pass where the reference folds pairwise), so
// last-ulp differences are legitimate; anything larger is a bug.
func boundsClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// checkResultsClose fails the test unless two results agree on every bound,
// stage delay, and backlog up to boundsClose.
func checkResultsClose(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Bounds) != len(want.Bounds) {
		t.Fatalf("%s: %d bounds, reference has %d", label, len(got.Bounds), len(want.Bounds))
	}
	for i := range got.Bounds {
		if !boundsClose(got.Bounds[i], want.Bounds[i]) {
			t.Errorf("%s: conn %d bound %v, reference %v", label, i, got.Bounds[i], want.Bounds[i])
		}
	}
	for i := range got.Stages {
		if len(got.Stages[i]) != len(want.Stages[i]) {
			t.Errorf("%s: conn %d has %d stages, reference %d", label, i, len(got.Stages[i]), len(want.Stages[i]))
			continue
		}
		for j := range got.Stages[i] {
			if !boundsClose(got.Stages[i][j].Delay, want.Stages[i][j].Delay) {
				t.Errorf("%s: conn %d stage %d delay %v, reference %v",
					label, i, j, got.Stages[i][j].Delay, want.Stages[i][j].Delay)
			}
		}
	}
	for s := range got.Backlogs {
		if !boundsClose(got.Backlogs[s], want.Backlogs[s]) {
			t.Errorf("%s: server %d backlog %v, reference %v", label, s, got.Backlogs[s], want.Backlogs[s])
		}
	}
}

// differentialCorpus returns the randomized networks both engines are
// compared on: small feedforward meshes across seeds plus the paper's
// tandem at several sizes and loads.
func differentialCorpus(t *testing.T) map[string]*topo.Network {
	t.Helper()
	nets := map[string]*topo.Network{}
	for seed := int64(1); seed <= 26; seed++ {
		net, err := topo.RandomFeedforward(6, 9, 0.6, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nets[fmt.Sprintf("ff6x9-seed%d", seed)] = net
	}
	for _, tc := range []struct {
		n    int
		load float64
	}{{3, 0.5}, {4, 0.8}, {6, 0.7}, {8, 0.9}} {
		net, err := topo.PaperTandem(tc.n, tc.load)
		if err != nil {
			t.Fatalf("tandem(%d, %g): %v", tc.n, tc.load, err)
		}
		nets[fmt.Sprintf("tandem%d-u%g", tc.n, tc.load)] = net
	}
	return nets
}

// TestCurveEngineMatchesReference runs the reworked engines against the
// frozen pre-overhaul implementations (reference_test.go) on a randomized
// corpus, across every ChainLength / DeconvPropagation configuration.
func TestCurveEngineMatchesReference(t *testing.T) {
	for name, net := range differentialCorpus(t) {
		got, err := Decomposed{}.Analyze(net)
		if err != nil {
			t.Fatalf("%s: decomposed: %v", name, err)
		}
		want, err := refDecomposedAnalyze(net)
		if err != nil {
			t.Fatalf("%s: reference decomposed: %v", name, err)
		}
		checkResultsClose(t, name+"/decomposed", got, want)

		for chainLen := 1; chainLen <= 4; chainLen++ {
			for _, deconv := range []bool{false, true} {
				a := Integrated{ChainLength: chainLen, DeconvPropagation: deconv, Sequential: true}
				got, err := a.Analyze(net)
				if err != nil {
					t.Fatalf("%s: integrated: %v", name, err)
				}
				want, err := refIntegratedAnalyze(a, net)
				if err != nil {
					t.Fatalf("%s: reference integrated: %v", name, err)
				}
				label := fmt.Sprintf("%s/integrated-L%d-deconv%v", name, chainLen, deconv)
				checkResultsClose(t, label, got, want)
			}
		}
	}
}

// TestParallelAnalyzeDeterministic checks that the level-parallel analysis
// is bitwise identical to the sequential order: within one engine there is
// no floating-point reassociation, so equality must be exact.
func TestParallelAnalyzeDeterministic(t *testing.T) {
	nets := differentialCorpus(t)
	for seed := int64(100); seed < 126; seed++ {
		net, err := topo.RandomFeedforward(10, 16, 0.65, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nets[fmt.Sprintf("ff10x16-seed%d", seed)] = net
	}
	nets["forest"] = forestNet(8, 5)
	for name, net := range nets {
		par, err := Integrated{DeconvPropagation: true}.Analyze(net)
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		seq, err := Integrated{DeconvPropagation: true, Sequential: true}.Analyze(net)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for i := range par.Bounds {
			if par.Bounds[i] != seq.Bounds[i] {
				t.Errorf("%s: conn %d parallel bound %v != sequential %v", name, i, par.Bounds[i], seq.Bounds[i])
			}
		}
		for i := range par.Stages {
			if len(par.Stages[i]) != len(seq.Stages[i]) {
				t.Errorf("%s: conn %d parallel has %d stages, sequential %d",
					name, i, len(par.Stages[i]), len(seq.Stages[i]))
				continue
			}
			for j := range par.Stages[i] {
				if par.Stages[i][j].Delay != seq.Stages[i][j].Delay {
					t.Errorf("%s: conn %d stage %d parallel delay %v != sequential %v",
						name, i, j, par.Stages[i][j].Delay, seq.Stages[i][j].Delay)
				}
			}
		}
		for s := range par.Backlogs {
			if par.Backlogs[s] != seq.Backlogs[s] {
				t.Errorf("%s: server %d parallel backlog %v != sequential %v", name, s, par.Backlogs[s], seq.Backlogs[s])
			}
		}
	}
}

// forestNet builds nGroups disjoint tandems of groupLen switches, each
// crossed by a handful of multi-hop connections. Every chain sits in
// dependency level zero, so the parallel analyzer runs all of them
// concurrently — the workload the race stress below leans on.
func forestNet(nGroups, groupLen int) *topo.Network {
	var servers []server.Server
	var conns []topo.Connection
	for g := 0; g < nGroups; g++ {
		base := g * groupLen
		for s := 0; s < groupLen; s++ {
			servers = append(servers, server.Server{
				Name: fmt.Sprintf("g%ds%d", g, s), Capacity: 1, Discipline: server.FIFO,
			})
		}
		for c := 0; c < 4; c++ {
			hops := 2 + (g+c)%(groupLen-1)
			start := c % (groupLen - hops + 1)
			path := make([]int, hops)
			for h := range path {
				path[h] = base + start + h
			}
			conns = append(conns, topo.Connection{
				Name:       fmt.Sprintf("g%dc%d", g, c),
				Bucket:     traffic.TokenBucket{Sigma: 1 + 0.1*float64(c), Rho: 0.08 * (1 + 0.01*float64(g))},
				AccessRate: 1,
				Path:       path,
				Deadline:   1000,
			})
		}
	}
	net := &topo.Network{Servers: servers, Connections: conns}
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}

// TestParallelAnalyzeRaceStress repeatedly analyzes a forest of disjoint
// chains so that many goroutines run per level; meaningful under -race.
func TestParallelAnalyzeRaceStress(t *testing.T) {
	net := forestNet(10, 5)
	a := Integrated{DeconvPropagation: true}
	first, err := a.Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		res, err := a.Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Bounds {
			if res.Bounds[i] != first.Bounds[i] {
				t.Fatalf("round %d: conn %d bound %v differs from first run %v", round, i, res.Bounds[i], first.Bounds[i])
			}
		}
	}
}
