package analysis

import (
	"runtime"
	"testing"
	"time"

	"delaycalc/internal/topo"
)

// fabricNet builds the datacenter-fabric benchmark workload: a k-ary
// fat-tree with hostsPerEdge flows per edge switch, loaded to 55% on its
// hottest link.
func fabricNet(tb testing.TB, k, hostsPerEdge int) *topo.Network {
	tb.Helper()
	net, err := topo.FatTree(k, hostsPerEdge, 0.55)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// TestFabricSpeedup enforces the allocation-free overhaul's acceptance
// gate on the fabric workload: against the pre-overhaul engine (frozen
// verbatim in fabricref_test.go) the pooled engine must be at least 2x
// faster and allocate at least 10x less on a fat-tree fabric, while
// producing identical bounds. The gate runs at k=16 (4,096 link servers,
// 12,800 flows) to keep the reference engine's share of the test budget
// tolerable; BenchmarkFabricAnalyze covers the full ~10k-switch scale.
func TestFabricSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate")
	}
	net := fabricNet(t, 16, 100)
	a := Integrated{}

	fastRes, err := a.Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := preIntegratedAnalyze(a, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fastRes.Bounds {
		if !boundsClose(fastRes.Bounds[i], slowRes.Bounds[i]) {
			t.Fatalf("conn %d: pooled engine bound %v, pre-overhaul %v", i, fastRes.Bounds[i], slowRes.Bounds[i])
		}
	}

	minDur := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 2; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	measureAllocs := func(f func()) uint64 {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	fast := minDur(func() {
		if _, err := a.Analyze(net); err != nil {
			t.Fatal(err)
		}
	})
	slow := minDur(func() {
		if _, err := preIntegratedAnalyze(a, net); err != nil {
			t.Fatal(err)
		}
	})
	fastAllocs := measureAllocs(func() {
		if _, err := a.Analyze(net); err != nil {
			t.Fatal(err)
		}
	})
	slowAllocs := measureAllocs(func() {
		if _, err := preIntegratedAnalyze(a, net); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(slow) / float64(fast)
	allocRatio := float64(slowAllocs) / float64(fastAllocs)
	t.Logf("pooled %v (%d allocs), pre-overhaul %v (%d allocs): %.1fx time, %.1fx allocs",
		fast, fastAllocs, slow, slowAllocs, ratio, allocRatio)
	if ratio < 2 {
		t.Errorf("fabric speedup %.1fx, want >= 2x", ratio)
	}
	if allocRatio < 10 {
		t.Errorf("fabric alloc reduction %.1fx, want >= 10x", allocRatio)
	}
}

// BenchmarkFabricAnalyze is the headline datacenter-scale benchmark: a
// k=22 fat-tree — 10,648 link servers — crossed by 99,946 host flows.
func BenchmarkFabricAnalyze(b *testing.B) {
	net := fabricNet(b, 22, 413)
	a := Integrated{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricAnalyzeK8 is the small-fabric smoke variant CI runs: 512
// link servers, 640 flows.
func BenchmarkFabricAnalyzeK8(b *testing.B) {
	net := fabricNet(b, 8, 20)
	a := Integrated{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(net); err != nil {
			b.Fatal(err)
		}
	}
}
