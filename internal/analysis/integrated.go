package analysis

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Integrated implements the paper's Algorithm Integrated (Figure 2):
//
//  1. Partition the network into subnetworks — the paper uses at most two
//     servers per subnetwork; this implementation generalizes to chains of
//     up to ChainLength consecutive servers, realizing the extension the
//     paper's conclusion announces.
//  2. Order the subnetworks topologically, so every subnetwork's input
//     traffic is characterized before the subnetwork is analyzed.
//  3. For each subnetwork, compute the delay bounds of the connections
//     inside it — jointly for every sub-aggregate that traverses several
//     consecutive servers — and the envelopes of its output traffic.
//  4. Sum the per-subnetwork delays along each connection's route.
//
// The multi-server bound realizes the paper's Theorem 1 idea — the delay
// dependency between consecutive FIFO servers means through traffic cannot
// pay every local worst case in full — with the provably sound FIFO
// residual service-curve family (see FIFOResidual): each server s of a run
// offers the run's through-aggregate the curve beta_theta_s against the
// local cross traffic, the run offers their min-plus convolution, and
//
//	d_run = min_{theta vector} h( A, beta_theta_1 (x) ... (x) beta_theta_k )
//
// bounds the delay of every through bit ("pay bursts only once" across the
// run). The published closed form of Theorem 1 lives in an unavailable
// technical report; the naive reading of Lemmas 1-4 on the all-greedy
// scenario (kept as GreedyPairEstimate for comparison) is not a sound
// bound — packet-level simulation exhibits arrival alignments that exceed
// it — so this implementation uses the residual-curve formulation, every
// member of which is a proven service curve. Every run bound is clamped by
// the decomposed sum of its local FIFO delays, which is always valid.
//
// Independent subnetworks run concurrently: the topological order is cut
// into dependency levels, and all chains of a level are analyzed in
// parallel. Chains of one level share no connections (a connection
// crossing two chains induces a path between them in the subnetwork DAG,
// which would separate their levels), so their writes into the propagation
// state touch disjoint indices and the merged result is bit-identical to
// a sequential run regardless of scheduling.
type Integrated struct {
	// ChainLength is the maximum number of consecutive servers grouped
	// into one subnetwork. 0 and 2 reproduce the paper (pairs); larger
	// values trade analysis time for tighter bounds; 1 degenerates to
	// plain decomposition.
	ChainLength int
	// MaxPairRate, when set, requires a grouping's through-aggregate rate
	// to exceed the threshold (an ablation knob; zero keeps every viable
	// grouping).
	MaxPairRate float64
	// DisablePairing turns the analysis into plain decomposition
	// (equivalent to ChainLength 1; kept as an explicit ablation knob).
	DisablePairing bool
	// DeconvPropagation refines the envelope a connection carries out of
	// a multi-server run: in addition to the paper's burstiness shift
	// b(I + d_run), the connection's own per-flow residual service curve
	// over the run is deconvolved out of its entry envelope, and the
	// pointwise minimum of the two (both valid envelopes) propagates.
	// An ablation knob for the propagation rule; costs one residual
	// convolution and deconvolution per multi-hop connection per chain.
	DeconvPropagation bool
	// Sequential disables the level-parallel chain execution and analyzes
	// subnetworks strictly in topological order on one goroutine. The
	// bounds are bit-identical either way (the determinism test suite
	// asserts it); the knob exists for that suite and for benchmarking
	// the parallel speedup itself.
	Sequential bool
}

// Name implements Analyzer.
func (a Integrated) Name() string { return "Integrated" }

// chainLength resolves the effective maximum subnetwork size.
func (a Integrated) chainLength() int {
	switch {
	case a.DisablePairing:
		return 1
	case a.ChainLength <= 0:
		return 2
	default:
		return a.ChainLength
	}
}

// subnetwork is one element of the partition: a chain of consecutive
// servers (singletons have length 1).
type subnetwork struct {
	servers []int
}

// Analyze implements Analyzer.
func (a Integrated) Analyze(net *topo.Network) (*Result, error) {
	return a.AnalyzeContext(context.Background(), net)
}

// AnalyzeContext implements ContextAnalyzer: the same analysis as Analyze
// with cooperative cancellation checkpoints between chains, between chain
// positions, and inside the theta-search candidate fan-out. An uncancelled
// run is bit-identical to Analyze; once the context is done the partial
// state is discarded and the context's error is returned.
func (a Integrated) AnalyzeContext(ctx context.Context, net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return nil, fmt.Errorf("analysis: Integrated applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	if !net.Stable() {
		return allInf("Integrated", net), nil
	}
	tm := timingsFrom(ctx)
	partStart := time.Now()
	subnets, err := a.partition(net)
	if err != nil {
		return nil, err
	}
	ordered, err := orderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	var levels [][]subnetwork
	if !a.Sequential {
		levels = levelizeSubnetworks(net, ordered)
	}
	if tm != nil {
		tm.observe(&tm.Partition, partStart)
	}
	p := newPropagation(net)
	if a.Sequential {
		for _, sn := range ordered {
			ok := analyzeChain(ctx, net, sn.servers, p, a.DeconvPropagation)
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
			if !ok {
				return allInf("Integrated", net), nil
			}
		}
	} else {
		for _, level := range levels {
			ok := analyzeLevel(level, func(sn subnetwork) bool {
				return analyzeChain(ctx, net, sn.servers, p, a.DeconvPropagation)
			})
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
			if !ok {
				return allInf("Integrated", net), nil
			}
		}
	}
	return denormalizeBacklogs(p.result("Integrated"), scale), nil
}

// levelizeSubnetworks cuts a topologically ordered partition into
// dependency levels: a chain's level is one past the deepest level among
// the chains feeding it, so every chain of a level only depends on
// earlier levels. Order within a level follows the input order, keeping
// the grouping deterministic.
func levelizeSubnetworks(net *topo.Network, ordered []subnetwork) [][]subnetwork {
	owner := make(map[int]int, len(net.Servers))
	for i, sn := range ordered {
		for _, s := range sn.servers {
			owner[s] = i
		}
	}
	out := make([][]int, len(ordered)) // unit -> sorted distinct successor units
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			u, v := owner[c.Path[i]], owner[c.Path[i+1]]
			if u != v {
				out[u] = append(out[u], v)
			}
		}
	}
	// ordered is topological, so every edge points from a smaller to a
	// larger index: relaxing outgoing edges in index order computes the
	// exact longest-path level in one pass.
	level := make([]int, len(ordered))
	for u := range ordered {
		for _, v := range out[u] {
			if level[v] < level[u]+1 {
				level[v] = level[u] + 1
			}
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	levels := make([][]subnetwork, maxLevel+1)
	for i, sn := range ordered {
		levels[level[i]] = append(levels[level[i]], sn)
	}
	return levels
}

// analyzeLevel runs f on every chain of one dependency level concurrently
// and reports whether all succeeded. The chains write disjoint slices of
// the propagation state, so no synchronization beyond the join is needed.
func analyzeLevel(level []subnetwork, f func(subnetwork) bool) bool {
	if len(level) == 1 {
		return f(level[0])
	}
	oks := make([]bool, len(level))
	var wg sync.WaitGroup
	wg.Add(len(level))
	for i := range level {
		go func(i int) {
			defer wg.Done()
			oks[i] = f(level[i])
		}(i)
	}
	wg.Wait()
	for _, ok := range oks {
		if !ok {
			return false
		}
	}
	return true
}

// partition greedily grows chains of consecutive servers (in topological
// order), extending each chain toward the successor carrying the largest
// through rate, subject to the extension not creating a cycle among
// subnetworks and not containing a reversed traversal. Servers that cannot
// be grouped become singletons, exactly as the paper's Step 1 allows.
//
// The validity check is incremental: the committed partition is known
// acyclic (inductively), so extending a chain by one server creates a
// cycle iff the merged unit can reach itself through at least one outside
// unit — a local reachability probe over the contracted unit graph
// (partitioner.createsCycle) instead of the full clone-and-toposort the
// previous implementation ran per candidate.
func (a Integrated) partition(net *topo.Network) ([]subnetwork, error) {
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	maxLen := a.chainLength()
	pt := newPartitioner(net)
	used := make(map[int]bool, len(net.Servers))
	var subnets []subnetwork
	for _, u := range order {
		if used[u] {
			continue
		}
		chain := []int{u}
		used[u] = true
		unit := pt.newUnit(u)
		for len(chain) < maxLen {
			tail := chain[len(chain)-1]
			next := a.bestSuccessor(net, tail, used)
			if next < 0 {
				break
			}
			trial := append(append([]int(nil), chain...), next)
			if !pt.extensionValid(trial, unit, next) {
				break
			}
			chain = trial
			used[next] = true
			pt.assign(unit, next)
		}
		subnets = append(subnets, subnetwork{servers: chain})
	}
	return subnets, nil
}

// bestSuccessor picks the unused direct successor of tail with the largest
// through-traffic rate above the ablation threshold, or -1.
func (a Integrated) bestSuccessor(net *topo.Network, tail int, used map[int]bool) int {
	through := make(map[int]float64)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			if c.Path[i] == tail && !used[c.Path[i+1]] {
				through[c.Path[i+1]] += c.Bucket.Rho
			}
		}
	}
	best, bestRate := -1, a.MaxPairRate
	keys := make([]int, 0, len(through))
	for v := range through {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	for _, v := range keys {
		if through[v] > bestRate {
			best, bestRate = v, through[v]
		}
	}
	return best
}

// partitioner maintains the state of a growing partition — server
// ownership and the server-level successor relation — so that each
// extension's validity check is a local graph probe. The committed
// partition (completed chains, the currently growing chain, and implicit
// singletons for unassigned servers) is acyclic as an invariant: it
// starts as the server DAG itself, and every accepted extension is
// checked to preserve acyclicity.
type partitioner struct {
	net   *topo.Network
	succ  [][]int // server -> sorted distinct successor servers
	owner []int   // server -> unit id, -1 while an implicit singleton
	units [][]int // unit id -> member servers

	// Epoch-stamped DFS marks, reused across probes without clearing.
	unitMark   []int
	serverMark []int
	epoch      int
}

func newPartitioner(net *topo.Network) *partitioner {
	n := len(net.Servers)
	succSet := make([]map[int]bool, n)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			u, v := c.Path[i], c.Path[i+1]
			if succSet[u] == nil {
				succSet[u] = make(map[int]bool)
			}
			succSet[u][v] = true
		}
	}
	succ := make([][]int, n)
	for u, set := range succSet {
		for v := range set {
			succ[u] = append(succ[u], v)
		}
		sort.Ints(succ[u])
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	return &partitioner{
		net:        net,
		succ:       succ,
		owner:      owner,
		serverMark: make([]int, n),
	}
}

// newUnit opens a unit for a fresh chain rooted at server s.
func (pt *partitioner) newUnit(s int) int {
	id := len(pt.units)
	pt.units = append(pt.units, []int{s})
	pt.unitMark = append(pt.unitMark, 0)
	pt.owner[s] = id
	return id
}

// assign commits server s to unit id after a successful extension.
func (pt *partitioner) assign(id, s int) {
	pt.owner[s] = id
	pt.units[id] = append(pt.units[id], s)
}

// extensionValid checks that extending `unit` (whose members plus `next`
// form `trial`) keeps the partition free of reversed intra-chain
// traversals and acyclic. The predicate is equivalent to rebuilding the
// whole partition with the trial chain and toposorting it, as the
// previous implementation did: reversal is checked identically, and with
// the pre-extension partition acyclic, the rebuilt partition has a cycle
// iff the merged unit lies on one, iff the merged unit reaches itself.
func (pt *partitioner) extensionValid(trial []int, unit, next int) bool {
	pos := make(map[int]int, len(trial))
	for i, s := range trial {
		pos[s] = i
	}
	for _, c := range pt.net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			pu, okU := pos[c.Path[i]]
			pv, okV := pos[c.Path[i+1]]
			if okU && okV && pv < pu {
				return false
			}
		}
	}
	return !pt.createsCycle(unit, next)
}

// createsCycle reports whether merging server `next` (currently an
// implicit singleton) into `unit` closes a cycle in the contracted unit
// graph: it walks the units reachable from the merged set's external
// successors and checks whether any walk re-enters the merged set.
func (pt *partitioner) createsCycle(unit, next int) bool {
	pt.epoch++
	inMerged := func(s int) bool { return pt.owner[s] == unit || s == next }
	// Stack of contracted nodes: unit ids as-is, singleton servers
	// bit-complemented.
	var stack []int
	push := func(t int) {
		if u := pt.owner[t]; u >= 0 {
			if pt.unitMark[u] != pt.epoch {
				pt.unitMark[u] = pt.epoch
				stack = append(stack, u)
			}
		} else if pt.serverMark[t] != pt.epoch {
			pt.serverMark[t] = pt.epoch
			stack = append(stack, ^t)
		}
	}
	// Seed with the merged set's external successors; edges inside the
	// merged set (including tail -> next, the edge being contracted) are
	// not cycles.
	seed := func(s int) {
		for _, t := range pt.succ[s] {
			if !inMerged(t) {
				push(t)
			}
		}
	}
	for _, s := range pt.units[unit] {
		seed(s)
	}
	seed(next)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var servers []int
		if n >= 0 {
			servers = pt.units[n]
		} else {
			servers = []int{^n}
		}
		for _, s := range servers {
			for _, t := range pt.succ[s] {
				if inMerged(t) {
					return true
				}
				push(t)
			}
		}
	}
	return false
}

// orderSubnetworks topologically sorts the partition by the precedence
// relation "some connection leaves subnetwork A and enters subnetwork B".
// An error means the partition induces a cycle.
func orderSubnetworks(net *topo.Network, subnets []subnetwork) ([]subnetwork, error) {
	owner := make(map[int]int, len(net.Servers))
	for i, sn := range subnets {
		for _, s := range sn.servers {
			owner[s] = i
		}
	}
	adj := make(map[int]map[int]bool)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			a, b := owner[c.Path[i]], owner[c.Path[i+1]]
			if a == b {
				continue
			}
			if adj[a] == nil {
				adj[a] = make(map[int]bool)
			}
			adj[a][b] = true
		}
	}
	indeg := make([]int, len(subnets))
	for _, outs := range adj {
		for v := range outs {
			indeg[v]++
		}
	}
	var ready []int
	for i := range subnets {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []subnetwork
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, subnets[u])
		var next []int
		for v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
		sort.Ints(ready)
	}
	if len(order) != len(subnets) {
		return nil, fmt.Errorf("analysis: subnetwork partition induces a cycle")
	}
	return order, nil
}

// run is a maximal consecutive interval of chain positions traversed by a
// group of connections: the unit of joint analysis inside a chain.
type run struct {
	lo, hi int // inclusive chain positions
	conns  []int
}

// analyzeChain performs the integrated analysis on one chain of servers.
//
// Within the chain, connections sharing the same maximal interval of
// consecutive chain servers form one FIFO sub-aggregate (a "run"): the
// paper's S12 with S1/S2 generalizes to one run per distinct interval.
// Every run of length one gets the exact local FIFO bound against the full
// aggregate at its server; every longer run gets the residual-convolution
// bound against its cross traffic, clamped by the decomposed sum. Cross
// envelopes at interior servers are the run-entry envelopes deformed by
// the local FIFO delays accumulated so far — a valid (decomposed-style)
// intra-chain characterization.
//
// Aggregation is cached per iteration: every run's partial envelope sum is
// computed once per position (runAggregates), and the total, entry and
// cross aggregates every DP interval needs are k-way sums of those
// partials rather than per-interval folds over individual connections.
//
// The context is checked between chain positions and between runs, and
// flows into the theta search; after cancellation the function may return
// early with arbitrary partial state in p, so callers must consult
// ctx.Err() before interpreting the result. A Timings collector attached
// to the context receives the chain's aggregate / theta / propagate time.
func analyzeChain(ctx context.Context, net *topo.Network, chain []int, p *propagation, deconv bool) bool {
	tm := timingsFrom(ctx)
	pos := make(map[int]int, len(chain))
	for i, s := range chain {
		pos[s] = i
	}
	// Group connections into runs.
	runIndex := map[[2]int]*run{}
	var runs []*run
	seen := map[int]bool{}
	for _, s := range chain {
		for _, c := range net.ConnectionsAt(s) {
			if seen[c] {
				continue
			}
			seen[c] = true
			path := net.Connections[c].Path
			h := p.next[c] // subnet topological order guarantees path[h] is in this chain
			lo := pos[path[h]]
			hi := lo
			for k := h + 1; k < len(path); k++ {
				q, ok := pos[path[k]]
				if !ok || q != hi+1 {
					break
				}
				hi = q
			}
			key := [2]int{lo, hi}
			r, ok := runIndex[key]
			if !ok {
				r = &run{lo: lo, hi: hi}
				runIndex[key] = r
				runs = append(runs, r)
			}
			r.conns = append(r.conns, c)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].lo != runs[j].lo {
			return runs[i].lo < runs[j].lo
		}
		return runs[i].hi < runs[j].hi
	})

	// Delay per run: dynamic program over segmentations of the run's
	// interval. For every subinterval [i, j] the bound B[i][j] applies to
	// the aggregate of ALL connections whose chain interval covers
	// [i, j] — FIFO serves the aggregate as one flow, so its bound holds
	// for every member — and a run may split its interval wherever that
	// is cheaper:
	//
	//	D[i][j] = min( B[i][j], min_m D[i][m] + D[m+1][j] ).
	//
	// Single positions use the exact local FIFO bound (B[i][i] =
	// local[i], since every connection at a server is part of the full
	// aggregate there). This subsumes the paper's pair analysis (the
	// segmentation into pairs is one of the candidates) and extends it to
	// longer chains.
	//
	// Intra-chain envelopes are a fixpoint problem: cross envelopes at
	// interior positions depend on upstream delay bounds, which depend on
	// cross envelopes. Iterate from the decomposed (local-shift)
	// propagation and re-propagate with the DP prefix bounds: every
	// iterate deforms envelopes by proven delay bounds, so every
	// iteration is sound, and later iterations only tighten.
	prefix := map[int][]float64{} // conn -> shift at each position of its run
	var bounds *intervalBounds
	// For chains of length <= 2 the DP prefix equals the local delay, so
	// one pass suffices; longer chains benefit from re-propagation.
	iters := 1
	if len(chain) > 2 {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		aggStart := time.Now()
		envAt := make([]map[int]minplus.Curve, len(chain)+1)
		local := make([]float64, len(chain))
		for i := range envAt {
			envAt[i] = map[int]minplus.Curve{}
		}
		for _, r := range runs {
			for _, c := range r.conns {
				for i := r.lo; i <= r.hi; i++ {
					if iter > 0 {
						envAt[i][c] = minplus.ShiftLeft(p.env[c], prefix[c][i-r.lo])
					} else if i == r.lo {
						envAt[i][c] = p.env[c]
					}
				}
			}
		}
		ra := newRunAggregates(len(chain), runs)
		for i := range chain {
			if canceled(ctx) {
				return false
			}
			srv := net.Servers[chain[i]]
			ra.fill(i, envAt[i])
			agg := ra.total(i)
			local[i] = fifoLocalDelay(agg, srv.Capacity, srv.Latency)
			if math.IsInf(local[i], 1) {
				return false
			}
			if iter == iters-1 {
				p.recordBacklog(chain[i], agg, srv.Capacity)
			}
			if iter == 0 {
				// Initial decomposed-style propagation.
				for _, r := range runs {
					if r.lo <= i && i < r.hi {
						for _, c := range r.conns {
							envAt[i+1][c] = minplus.ShiftLeft(envAt[i][c], local[i])
						}
					}
				}
			}
		}
		if tm != nil {
			tm.observe(&tm.Aggregate, aggStart)
		}
		thetaStart := time.Now()
		bounds = newIntervalBounds(ctx, net, chain, runs, ra, envAt, local)
		// Record the DP prefix bounds as the next iteration's shifts.
		for _, r := range runs {
			if canceled(ctx) {
				return false
			}
			for _, c := range r.conns {
				shifts := make([]float64, r.hi-r.lo+1)
				for i := r.lo + 1; i <= r.hi; i++ {
					shifts[i-r.lo] = bounds.best(r.lo, i-1)
				}
				prefix[c] = shifts
			}
		}
		if tm != nil {
			tm.observe(&tm.Theta, thetaStart)
		}
	}
	for ri, r := range runs {
		if canceled(ctx) {
			return false
		}
		servers := make([]int, 0, r.hi-r.lo+1)
		for i := r.lo; i <= r.hi; i++ {
			servers = append(servers, chain[i])
		}
		thetaStart := time.Now()
		d := bounds.best(r.lo, r.hi)
		if tm != nil {
			tm.observe(&tm.Theta, thetaStart)
		}
		propStart := time.Now()
		var excl *runExclSums
		if deconv && r.hi > r.lo {
			excl = newRunExclSums(bounds, ri)
		}
		for mi, c := range r.conns {
			entry := p.env[c]
			if !p.advance(c, servers, d, len(servers)) {
				return false
			}
			if excl != nil {
				refined := deconvOutput(net, chain, r, mi, entry, excl)
				if refined != nil {
					p.env[c] = minplus.Min(p.env[c], *refined)
				}
			}
		}
		if tm != nil {
			tm.observe(&tm.Propagate, propStart)
		}
	}
	return true
}

// runExclSums supports leave-one-out cross aggregates for a run: at every
// position of the run's interval, the sum of all other runs' partials
// plus prefix/suffix sums over the run's own members, so excluding one
// member is a 3-way sum instead of a fold over all other connections.
type runExclSums struct {
	r *run
	// others[i-lo] sums the partials of every other run present at i.
	others []minplus.Curve
	// pre[i-lo][j] sums members 0..j-1 at position i; suf[i-lo][j] sums
	// members j+1.. at position i.
	pre, suf [][]minplus.Curve
}

func newRunExclSums(ib *intervalBounds, ri int) *runExclSums {
	r := ib.runs[ri]
	n := r.hi - r.lo + 1
	m := len(r.conns)
	ex := &runExclSums{
		r:      r,
		others: make([]minplus.Curve, n),
		pre:    make([][]minplus.Curve, n),
		suf:    make([][]minplus.Curve, n),
	}
	for i := r.lo; i <= r.hi; i++ {
		rel := i - r.lo
		curves := make([]minplus.Curve, 0, len(ib.runs))
		for rj, o := range ib.runs {
			if rj != ri && o.lo <= i && i <= o.hi {
				curves = append(curves, ib.ra.partial[i][rj])
			}
		}
		ex.others[rel] = minplus.SumN(curves...)
		pre := make([]minplus.Curve, m+1)
		suf := make([]minplus.Curve, m+1)
		pre[0] = minplus.Zero()
		for j := 0; j < m; j++ {
			pre[j+1] = minplus.Add(pre[j], ib.envAt[i][r.conns[j]])
		}
		suf[m] = minplus.Zero()
		for j := m - 1; j >= 0; j-- {
			suf[j] = minplus.Add(suf[j+1], ib.envAt[i][r.conns[j]])
		}
		ex.pre[rel] = pre
		ex.suf[rel] = suf
	}
	return ex
}

// crossWithout returns the aggregate of every connection at run position i
// except member mi.
func (ex *runExclSums) crossWithout(i, mi int) minplus.Curve {
	rel := i - ex.r.lo
	return minplus.SumN(ex.others[rel], ex.pre[rel][mi], ex.suf[rel][mi+1])
}

// deconvOutput computes the per-flow deconvolution envelope of run member
// mi leaving its run: the member alone receives the theta = 0 residual
// against ALL other traffic at each run server (a valid per-flow service
// curve), their convolution is a valid end-to-end service curve for it
// over the run, and the deconvolution of its entry envelope out of it is
// a valid output envelope. Returns nil when the residual leaves the
// member no guaranteed rate.
func deconvOutput(net *topo.Network, chain []int, r *run, mi int, entry minplus.Curve, ex *runExclSums) *minplus.Curve {
	beta := minplus.Curve{}
	for i := r.lo; i <= r.hi; i++ {
		res := FIFOResidual(net.Servers[chain[i]].Capacity, ex.crossWithout(i, mi), 0)
		if i == r.lo {
			beta = res
		} else {
			beta = minplus.ConvolveGated(beta, res)
		}
	}
	if beta.FinalSlope() <= entry.FinalSlope() {
		return nil // no spare rate: deconvolution would diverge
	}
	out, err := minplus.Deconvolve(entry, beta)
	if err != nil {
		return nil
	}
	return &out
}

// intervalBounds lazily computes and memoizes the direct bound B[i][j] and
// the segmented optimum D[i][j] for chain intervals.
type intervalBounds struct {
	ctx    context.Context // cancellation for the theta searches it spawns
	net    *topo.Network
	chain  []int
	runs   []*run
	ra     *runAggregates
	envAt  []map[int]minplus.Curve
	local  []float64
	direct map[[2]int]float64
	opt    map[[2]int]float64
}

func newIntervalBounds(ctx context.Context, net *topo.Network, chain []int, runs []*run, ra *runAggregates, envAt []map[int]minplus.Curve, local []float64) *intervalBounds {
	return &intervalBounds{
		ctx: ctx, net: net, chain: chain, runs: runs, ra: ra, envAt: envAt, local: local,
		direct: map[[2]int]float64{},
		opt:    map[[2]int]float64{},
	}
}

// best returns D[lo][hi], the cheapest bound for traversing chain
// positions lo..hi as part of a covering aggregate.
func (ib *intervalBounds) best(lo, hi int) float64 {
	key := [2]int{lo, hi}
	if d, ok := ib.opt[key]; ok {
		return d
	}
	d := ib.directBound(lo, hi)
	for m := lo; m < hi; m++ {
		if split := ib.best(lo, m) + ib.best(m+1, hi); split < d {
			d = split
		}
	}
	ib.opt[key] = d
	return d
}

// directBound returns B[lo][hi]: the residual-convolution bound for the
// aggregate of all connections whose interval covers [lo, hi] (the local
// FIFO bound when lo == hi).
func (ib *intervalBounds) directBound(lo, hi int) float64 {
	if lo == hi {
		return ib.local[lo]
	}
	key := [2]int{lo, hi}
	if d, ok := ib.direct[key]; ok {
		return d
	}
	d := runIntervalBound(ib.ctx, ib.net, ib.chain, lo, hi, ib.ra, ib.local)
	ib.direct[key] = d
	return d
}

// runIntervalBound computes the joint bound of a multi-server interval for
// a given aggregate: the horizontal deviation between the aggregate's
// entry envelope and the min-plus convolution of the per-server FIFO
// residual curves against the local cross traffic, minimized over the
// theta parameters by the shared memoized search (full enumeration for
// two servers, coordinate descent for longer intervals — every
// evaluation is a valid bound, so any search strategy is sound), clamped
// by the decomposed sum of local delays.
func runIntervalBound(ctx context.Context, net *topo.Network, chain []int, lo, hi int, ra *runAggregates, local []float64) float64 {
	agg := ra.covering(lo, lo, hi)

	k := hi - lo + 1
	cross := make([]minplus.Curve, k)
	caps := make([]float64, k)
	cands := make([][]float64, k)
	lat := 0.0
	decomposedSum := 0.0
	for i := 0; i < k; i++ {
		posIdx := lo + i
		srv := net.Servers[chain[posIdx]]
		caps[i] = srv.Capacity
		lat += srv.Latency
		decomposedSum += local[posIdx]
		cross[i] = ra.crossAt(posIdx, lo, hi)
		cands[i] = thetaCandidates(caps[i], cross[i], local[posIdx])
	}

	ts := &thetaSearch{
		ctx:   ctx,
		agg:   agg,
		cands: cands,
		residual: func(i int, theta float64) minplus.Curve {
			return FIFOResidual(caps[i], cross[i], theta)
		},
	}
	best := ts.minimize() + lat
	if decomposedSum < best {
		best = decomposedSum
	}
	return best
}
