package analysis

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Integrated implements the paper's Algorithm Integrated (Figure 2):
//
//  1. Partition the network into subnetworks — the paper uses at most two
//     servers per subnetwork; this implementation generalizes to chains of
//     up to ChainLength consecutive servers, realizing the extension the
//     paper's conclusion announces.
//  2. Order the subnetworks topologically, so every subnetwork's input
//     traffic is characterized before the subnetwork is analyzed.
//  3. For each subnetwork, compute the delay bounds of the connections
//     inside it — jointly for every sub-aggregate that traverses several
//     consecutive servers — and the envelopes of its output traffic.
//  4. Sum the per-subnetwork delays along each connection's route.
//
// The multi-server bound realizes the paper's Theorem 1 idea — the delay
// dependency between consecutive FIFO servers means through traffic cannot
// pay every local worst case in full — with the provably sound FIFO
// residual service-curve family (see FIFOResidual): each server s of a run
// offers the run's through-aggregate the curve beta_theta_s against the
// local cross traffic, the run offers their min-plus convolution, and
//
//	d_run = min_{theta vector} h( A, beta_theta_1 (x) ... (x) beta_theta_k )
//
// bounds the delay of every through bit ("pay bursts only once" across the
// run). The published closed form of Theorem 1 lives in an unavailable
// technical report; the naive reading of Lemmas 1-4 on the all-greedy
// scenario (kept as GreedyPairEstimate for comparison) is not a sound
// bound — packet-level simulation exhibits arrival alignments that exceed
// it — so this implementation uses the residual-curve formulation, every
// member of which is a proven service curve. Every run bound is clamped by
// the decomposed sum of its local FIFO delays, which is always valid.
//
// Independent subnetworks run concurrently: the topological order is cut
// into dependency levels, and all chains of a level are analyzed in
// parallel. Chains of one level share no connections (a connection
// crossing two chains induces a path between them in the subnetwork DAG,
// which would separate their levels), so their writes into the propagation
// state touch disjoint indices and the merged result is bit-identical to
// a sequential run regardless of scheduling.
type Integrated struct {
	// ChainLength is the maximum number of consecutive servers grouped
	// into one subnetwork. 0 and 2 reproduce the paper (pairs); larger
	// values trade analysis time for tighter bounds; 1 degenerates to
	// plain decomposition.
	ChainLength int
	// MaxPairRate, when set, requires a grouping's through-aggregate rate
	// to exceed the threshold (an ablation knob; zero keeps every viable
	// grouping).
	MaxPairRate float64
	// DisablePairing turns the analysis into plain decomposition
	// (equivalent to ChainLength 1; kept as an explicit ablation knob).
	DisablePairing bool
	// DeconvPropagation refines the envelope a connection carries out of
	// a multi-server run: in addition to the paper's burstiness shift
	// b(I + d_run), the connection's own per-flow residual service curve
	// over the run is deconvolved out of its entry envelope, and the
	// pointwise minimum of the two (both valid envelopes) propagates.
	// An ablation knob for the propagation rule; costs one residual
	// convolution and deconvolution per multi-hop connection per chain.
	DeconvPropagation bool
	// Sequential disables the level-parallel chain execution and analyzes
	// subnetworks strictly in topological order on one goroutine. The
	// bounds are bit-identical either way (the determinism test suite
	// asserts it); the knob exists for that suite and for benchmarking
	// the parallel speedup itself.
	Sequential bool
}

// Name implements Analyzer.
func (a Integrated) Name() string { return "Integrated" }

// chainLength resolves the effective maximum subnetwork size.
func (a Integrated) chainLength() int {
	switch {
	case a.DisablePairing:
		return 1
	case a.ChainLength <= 0:
		return 2
	default:
		return a.ChainLength
	}
}

// subnetwork is one element of the partition: a chain of consecutive
// servers (singletons have length 1).
type subnetwork struct {
	servers []int
}

// Analyze implements Analyzer.
func (a Integrated) Analyze(net *topo.Network) (*Result, error) {
	return a.AnalyzeContext(context.Background(), net)
}

// AnalyzeContext implements ContextAnalyzer: the same analysis as Analyze
// with cooperative cancellation checkpoints between chains, between chain
// positions, and inside the theta-search candidate fan-out. An uncancelled
// run is bit-identical to Analyze; once the context is done the partial
// state is discarded and the context's error is returned.
func (a Integrated) AnalyzeContext(ctx context.Context, net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return nil, fmt.Errorf("analysis: Integrated applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	if !net.Stable() {
		return allInf("Integrated", net), nil
	}
	tm := timingsFrom(ctx)
	partStart := time.Now()
	subnets, err := a.partition(net)
	if err != nil {
		return nil, err
	}
	ordered, err := orderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	var levels [][]subnetwork
	if !a.Sequential {
		levels = levelizeSubnetworks(net, ordered)
	}
	if tm != nil {
		tm.observe(&tm.Partition, partStart)
	}
	idx := net.ConnectionIndex()
	p := newPropagation(net)
	if a.Sequential {
		for _, sn := range ordered {
			ok := analyzeChain(ctx, net, idx, sn.servers, p, a.DeconvPropagation)
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
			if !ok {
				return allInf("Integrated", net), nil
			}
		}
	} else {
		for _, level := range levels {
			ok := analyzeLevel(level, func(sn subnetwork) bool {
				return analyzeChain(ctx, net, idx, sn.servers, p, a.DeconvPropagation)
			})
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
			if !ok {
				return allInf("Integrated", net), nil
			}
		}
	}
	return denormalizeBacklogs(p.result("Integrated"), scale), nil
}

// subnetOwner maps every server to the index of its subnetwork. The
// partition covers all servers, so the result is total.
func subnetOwner(nServers int, subnets []subnetwork) []int {
	owner := make([]int, nServers)
	for i, sn := range subnets {
		for _, s := range sn.servers {
			owner[s] = i
		}
	}
	return owner
}

// unitPairs collects the distinct cross-unit precedence edges
// (owner[path[i]], owner[path[i+1]]) over all routes, sorted by (from,
// to): one flat pair list instead of the per-unit successor maps the
// ordering passes previously built.
func unitPairs(net *topo.Network, owner []int) [][2]int {
	n := 0
	for _, c := range net.Connections {
		n += len(c.Path) - 1
	}
	pairs := make([][2]int, 0, n)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			u, v := owner[c.Path[i]], owner[c.Path[i+1]]
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	w := 0
	for i, p := range pairs {
		if i == 0 || p != pairs[w-1] {
			pairs[w] = p
			w++
		}
	}
	return pairs[:w]
}

// levelizeSubnetworks cuts a topologically ordered partition into
// dependency levels: a chain's level is one past the deepest level among
// the chains feeding it, so every chain of a level only depends on
// earlier levels. Order within a level follows the input order, keeping
// the grouping deterministic.
func levelizeSubnetworks(net *topo.Network, ordered []subnetwork) [][]subnetwork {
	owner := subnetOwner(len(net.Servers), ordered)
	pairs := unitPairs(net, owner)
	// ordered is topological, so every edge points from a smaller to a
	// larger index: relaxing edges in ascending from-index order computes
	// the exact longest-path level in one pass.
	level := make([]int, len(ordered))
	for _, p := range pairs {
		if level[p[1]] < level[p[0]]+1 {
			level[p[1]] = level[p[0]] + 1
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	levels := make([][]subnetwork, maxLevel+1)
	for i, sn := range ordered {
		levels[level[i]] = append(levels[level[i]], sn)
	}
	return levels
}

// analyzeLevel runs f on every chain of one dependency level concurrently
// and reports whether all succeeded. The chains write disjoint slices of
// the propagation state, so no synchronization beyond the join is needed.
func analyzeLevel(level []subnetwork, f func(subnetwork) bool) bool {
	if len(level) == 1 {
		return f(level[0])
	}
	oks := make([]bool, len(level))
	workers := maxParallelWorkers()
	if workers > len(level) {
		workers = len(level)
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(level) {
					return
				}
				oks[i] = f(level[i])
			}
		}()
	}
	wg.Wait()
	for _, ok := range oks {
		if !ok {
			return false
		}
	}
	return true
}

// partition greedily grows chains of consecutive servers (in topological
// order), extending each chain toward the successor carrying the largest
// through rate, subject to the extension not creating a cycle among
// subnetworks and not containing a reversed traversal. Servers that cannot
// be grouped become singletons, exactly as the paper's Step 1 allows.
//
// The validity check is incremental: the committed partition is known
// acyclic (inductively), so extending a chain by one server creates a
// cycle iff the merged unit can reach itself through at least one outside
// unit — a local reachability probe over the contracted unit graph
// (partitioner.createsCycle) instead of the full clone-and-toposort the
// previous implementation ran per candidate.
func (a Integrated) partition(net *topo.Network) ([]subnetwork, error) {
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	maxLen := a.chainLength()
	pt := newPartitioner(net)
	rates := edgeThroughRates(net)
	used := make([]bool, len(net.Servers))
	var subnets []subnetwork
	for _, u := range order {
		if used[u] {
			continue
		}
		chain := []int{u}
		used[u] = true
		unit := pt.newUnit(u)
		for len(chain) < maxLen {
			tail := chain[len(chain)-1]
			next := a.bestSuccessor(rates, tail, used)
			if next < 0 {
				break
			}
			pt.trial = append(append(pt.trial[:0], chain...), next)
			if !pt.extensionValid(pt.trial, unit, next) {
				break
			}
			chain = append(chain, next)
			used[next] = true
			pt.assign(unit, next)
		}
		subnets = append(subnets, subnetwork{servers: chain})
	}
	return subnets, nil
}

// edgeRate is one outgoing server edge with the total sustained rate of
// the connections traversing it.
type edgeRate struct {
	to   int
	rate float64
}

// edgeThroughRates sums, per consecutive-hop edge, the sustained rates of
// the connections using it, in one pass over all routes; successors are
// listed in ascending index. bestSuccessor reads this instead of
// re-scanning every connection per chain tail, which made the partition
// quadratic on fabric-scale networks. The accumulation sorts one flat
// edge list and folds equal (from, to) entries in ascending connection
// order — the same per-edge left-to-right addition order the previous
// per-server maps performed, so the sums are bit-identical.
func edgeThroughRates(net *topo.Network) [][]edgeRate {
	type hopEdge struct {
		from, to int
		rho      float64
	}
	n := 0
	for _, c := range net.Connections {
		n += len(c.Path) - 1
	}
	edges := make([]hopEdge, 0, n)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			edges = append(edges, hopEdge{from: c.Path[i], to: c.Path[i+1], rho: c.Bucket.Rho})
		}
	}
	// Stable keeps equal-key entries in connection order, preserving the
	// float addition order of the map-based accumulation.
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	flat := make([]edgeRate, 0, len(edges))
	out := make([][]edgeRate, len(net.Servers))
	for i := 0; i < len(edges); {
		u := edges[i].from
		row := len(flat)
		for i < len(edges) && edges[i].from == u {
			e := edgeRate{to: edges[i].to, rate: edges[i].rho}
			i++
			for i < len(edges) && edges[i].from == u && edges[i].to == e.to {
				e.rate += edges[i].rho
				i++
			}
			flat = append(flat, e)
		}
		out[u] = flat[row:len(flat):len(flat)]
	}
	return out
}

// bestSuccessor picks the unused direct successor of tail with the largest
// through-traffic rate above the ablation threshold, or -1. Skipping used
// successors at selection time is equivalent to the old per-call rescan
// that filtered them during accumulation: an edge's rate sum never mixes
// used and unused targets, and ascending-index iteration with a strict
// comparison picks the same winner.
func (a Integrated) bestSuccessor(rates [][]edgeRate, tail int, used []bool) int {
	best, bestRate := -1, a.MaxPairRate
	for _, e := range rates[tail] {
		if used[e.to] {
			continue
		}
		if e.rate > bestRate {
			best, bestRate = e.to, e.rate
		}
	}
	return best
}

// partitioner maintains the state of a growing partition — server
// ownership and the server-level successor relation — so that each
// extension's validity check is a local graph probe. The committed
// partition (completed chains, the currently growing chain, and implicit
// singletons for unassigned servers) is acyclic as an invariant: it
// starts as the server DAG itself, and every accepted extension is
// checked to preserve acyclicity.
type partitioner struct {
	net   *topo.Network
	succ  [][]int // server -> sorted distinct successor servers
	owner []int   // server -> unit id, -1 while an implicit singleton
	units [][]int // unit id -> member servers

	// Epoch-stamped DFS marks and stack, reused across probes without
	// clearing (the stack grows to its high-water mark once).
	unitMark   []int
	serverMark []int
	epoch      int
	stack      []int
	trial      []int // reusable extension-candidate chain buffer
}

func newPartitioner(net *topo.Network) *partitioner {
	n := len(net.Servers)
	// Distinct route edges as one sorted, deduplicated flat pair list;
	// per-server successor rows slice it (same sorted contents the
	// per-server map construction produced).
	cnt := 0
	for _, c := range net.Connections {
		cnt += len(c.Path) - 1
	}
	pairs := make([][2]int, 0, cnt)
	for _, c := range net.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			pairs = append(pairs, [2]int{c.Path[i], c.Path[i+1]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	w := 0
	for i, p := range pairs {
		if i == 0 || p != pairs[w-1] {
			pairs[w] = p
			w++
		}
	}
	pairs = pairs[:w]
	flat := make([]int, len(pairs))
	succ := make([][]int, n)
	for i := 0; i < len(pairs); {
		u := pairs[i][0]
		row := i
		for i < len(pairs) && pairs[i][0] == u {
			flat[i] = pairs[i][1]
			i++
		}
		succ[u] = flat[row:i:i]
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	return &partitioner{
		net:        net,
		succ:       succ,
		owner:      owner,
		serverMark: make([]int, n),
	}
}

// newUnit opens a unit for a fresh chain rooted at server s.
func (pt *partitioner) newUnit(s int) int {
	id := len(pt.units)
	pt.units = append(pt.units, []int{s})
	pt.unitMark = append(pt.unitMark, 0)
	pt.owner[s] = id
	return id
}

// assign commits server s to unit id after a successful extension.
func (pt *partitioner) assign(id, s int) {
	pt.owner[s] = id
	pt.units[id] = append(pt.units[id], s)
}

// extensionValid checks that extending `unit` (whose members plus `next`
// form `trial`) keeps the partition free of reversed intra-chain
// traversals and acyclic. The predicate is equivalent to rebuilding the
// whole partition with the trial chain and toposorting it, as the
// previous implementation did: reversal is checked identically, and with
// the pre-extension partition acyclic, the rebuilt partition has a cycle
// iff the merged unit lies on one, iff the merged unit reaches itself.
func (pt *partitioner) extensionValid(trial []int, unit, next int) bool {
	// A reversed traversal is a route edge u -> v with both endpoints in
	// the trial chain and v earlier than u. The precomputed successor
	// relation contains exactly the distinct route edges, so probing it
	// from each trial member is equivalent to the old full scan over
	// every connection's path. Trial chains are at most ChainLength long,
	// so a linear position scan beats a map.
	for i, s := range trial {
		for _, t := range pt.succ[s] {
			for j := 0; j < i; j++ {
				if trial[j] == t {
					return false
				}
			}
		}
	}
	return !pt.createsCycle(unit, next)
}

// createsCycle reports whether merging server `next` (currently an
// implicit singleton) into `unit` closes a cycle in the contracted unit
// graph: it walks the units reachable from the merged set's external
// successors and checks whether any walk re-enters the merged set.
func (pt *partitioner) createsCycle(unit, next int) bool {
	pt.epoch++
	inMerged := func(s int) bool { return pt.owner[s] == unit || s == next }
	// Stack of contracted nodes: unit ids as-is, singleton servers
	// bit-complemented.
	stack := pt.stack[:0]
	defer func() { pt.stack = stack[:0] }()
	push := func(t int) {
		if u := pt.owner[t]; u >= 0 {
			if pt.unitMark[u] != pt.epoch {
				pt.unitMark[u] = pt.epoch
				stack = append(stack, u)
			}
		} else if pt.serverMark[t] != pt.epoch {
			pt.serverMark[t] = pt.epoch
			stack = append(stack, ^t)
		}
	}
	// Seed with the merged set's external successors; edges inside the
	// merged set (including tail -> next, the edge being contracted) are
	// not cycles.
	seed := func(s int) {
		for _, t := range pt.succ[s] {
			if !inMerged(t) {
				push(t)
			}
		}
	}
	for _, s := range pt.units[unit] {
		seed(s)
	}
	seed(next)
	probe := func(s int) bool {
		for _, t := range pt.succ[s] {
			if inMerged(t) {
				return true
			}
			push(t)
		}
		return false
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n >= 0 {
			for _, s := range pt.units[n] {
				if probe(s) {
					return true
				}
			}
		} else if probe(^n) {
			return true
		}
	}
	return false
}

// orderSubnetworks topologically sorts the partition by the precedence
// relation "some connection leaves subnetwork A and enters subnetwork B".
// An error means the partition induces a cycle.
func orderSubnetworks(net *topo.Network, subnets []subnetwork) ([]subnetwork, error) {
	owner := subnetOwner(len(net.Servers), subnets)
	pairs := unitPairs(net, owner)
	// Counting-sort offsets into the sorted pair list: unit u's out-edges
	// are pairs[start[u]:start[u+1]].
	start := make([]int, len(subnets)+1)
	for _, p := range pairs {
		start[p[0]+1]++
	}
	for u := 1; u <= len(subnets); u++ {
		start[u] += start[u-1]
	}
	indeg := make([]int, len(subnets))
	for _, p := range pairs {
		indeg[p[1]]++
	}
	ready := make(intMinHeap, 0, len(subnets))
	for i := range subnets {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	order := make([]subnetwork, 0, len(subnets))
	for len(ready) > 0 {
		u := ready.pop()
		order = append(order, subnets[u])
		// Popping the global minimum each round reproduces the old
		// sorted-queue order without its per-pop re-sort.
		for _, p := range pairs[start[u]:start[u+1]] {
			indeg[p[1]]--
			if indeg[p[1]] == 0 {
				ready.push(p[1])
			}
		}
	}
	if len(order) != len(subnets) {
		return nil, fmt.Errorf("analysis: subnetwork partition induces a cycle")
	}
	return order, nil
}

// intMinHeap is a hand-rolled binary min-heap of unit indices backing the
// ready queue of orderSubnetworks (the sort-after-every-pop queue it
// replaces was quadratic on fabric-scale partitions).
type intMinHeap []int

func (h *intMinHeap) push(x int) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *intMinHeap) pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l] < s[m] {
			m = l
		}
		if r < n && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// run is a maximal consecutive interval of chain positions traversed by a
// group of connections: the unit of joint analysis inside a chain.
type run struct {
	lo, hi int // inclusive chain positions
	conns  []int
}

// resize returns s with length n, reusing its backing array when it is
// large enough. Contents are unspecified; callers must fully assign every
// element they read.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// chainScratch pools analyzeChain's per-chain bookkeeping — run headers,
// the dense slot-indexed envelope tables, DP shift vectors and interval
// memos — so a steady-state analysis reuses the same buffers for every
// chain instead of rebuilding maps and slices per chain. Chains of one
// level run concurrently; each invocation draws its own scratch from the
// pool. Reused tables are either fully reassigned before use or only read
// at indices the current chain provably wrote, so stale contents never
// leak between chains.
type chainScratch struct {
	hdrs  []*run // grow-only header pool; member slices keep capacity
	nHdrs int
	runs  []*run
	base  []int // runs[ri]'s members own slots base[ri]..base[ri]+len-1
	// envBuf backs the per-position envelope rows: envAt[i] =
	// envBuf[i*total : (i+1)*total], indexed by member slot.
	envBuf []minplus.Curve
	envAt  [][]minplus.Curve
	prefix [][]float64 // per-slot DP shift vectors (values in chain arena)
	local  []float64
	ra     runAggregates
	ib     intervalBounds
}

var chainScratchPool = sync.Pool{New: func() any { return new(chainScratch) }}

// newRun hands out a reset run header from the grow-only pool. Headers are
// allocated once and keep their member slice's capacity across chains.
func (sc *chainScratch) newRun(lo, hi int) *run {
	if sc.nHdrs == len(sc.hdrs) {
		sc.hdrs = append(sc.hdrs, new(run))
	}
	r := sc.hdrs[sc.nHdrs]
	sc.nHdrs++
	r.lo, r.hi, r.conns = lo, hi, r.conns[:0]
	return r
}

// analyzeChain performs the integrated analysis on one chain of servers.
//
// Within the chain, connections sharing the same maximal interval of
// consecutive chain servers form one FIFO sub-aggregate (a "run"): the
// paper's S12 with S1/S2 generalizes to one run per distinct interval.
// Every run of length one gets the exact local FIFO bound against the full
// aggregate at its server; every longer run gets the residual-convolution
// bound against its cross traffic, clamped by the decomposed sum. Cross
// envelopes at interior servers are the run-entry envelopes deformed by
// the local FIFO delays accumulated so far — a valid (decomposed-style)
// intra-chain characterization.
//
// Aggregation is cached per iteration: every run's partial envelope sum is
// computed once per position (runAggregates), and the total, entry and
// cross aggregates every DP interval needs are k-way sums of those
// partials rather than per-interval folds over individual connections.
//
// The context is checked between chain positions and between runs, and
// flows into the theta search; after cancellation the function may return
// early with arbitrary partial state in p, so callers must consult
// ctx.Err() before interpreting the result. A Timings collector attached
// to the context receives the chain's aggregate / theta / propagate time.
//
// idx is the network's ConnectionIndex. Every intra-chain curve —
// envelope shifts, run partial sums, residuals, theta-search scratch —
// is drawn from one pooled arena owned by the chain and released on
// return; only what outlives the chain (the propagation's envelopes and
// stages) is heap-allocated. Chains of one level run concurrently, so the
// arena is strictly chain-local, and the theta search's candidate
// fan-outs use their own per-worker pool arenas.
func analyzeChain(ctx context.Context, net *topo.Network, idx [][]int, chain []int, p *propagation, deconv bool) bool {
	ar := minplus.GetArena()
	defer ar.Release()
	sc := chainScratchPool.Get().(*chainScratch)
	defer chainScratchPool.Put(sc)
	tm := timingsFrom(ctx)
	// Chains hold at most ChainLength servers, so position lookup is a
	// linear scan instead of a per-chain map.
	posOf := func(s int) int {
		for i, cs := range chain {
			if cs == s {
				return i
			}
		}
		return -1
	}
	// Group connections into runs. A connection is normally grouped
	// exactly at the chain server its next unprocessed hop points to: the
	// partition's acyclicity makes its chain crossing one contiguous path
	// segment with strictly increasing chain positions, so the entry
	// server is the first chain server it appears at and later servers of
	// the crossing never match — no seen-set is needed. The exception is
	// a connection whose next hop lies outside this chain (its previous
	// run was cut short by a chain-position gap, leaving p.next pointing
	// into an already-analyzed chain): the historical map-based grouping
	// defaulted those to position 0 at the connection's first chain
	// server, and that behavior is replicated verbatim — the bounds are
	// pinned bitwise to the frozen reference engine.
	sc.nHdrs = 0
	runs := sc.runs[:0]
	for i, s := range chain {
		for _, c := range idx[s] {
			path := net.Connections[c].Path
			h := p.next[c]
			lo := posOf(path[h])
			if lo != i {
				if lo >= 0 {
					continue // grouped at its entry server, not here
				}
				// Next hop outside the chain: group at the first chain
				// server on the path, at default position 0.
				first := true
				for j := 0; j < i && first; j++ {
					for _, q := range path {
						if q == chain[j] {
							first = false
							break
						}
					}
				}
				if !first {
					continue
				}
				lo = 0
			}
			hi := lo
			for k := h + 1; k < len(path); k++ {
				if q := posOf(path[k]); q != hi+1 {
					break
				}
				hi++
			}
			var r *run
			for _, q := range runs {
				if q.lo == lo && q.hi == hi {
					r = q
					break
				}
			}
			if r == nil {
				r = sc.newRun(lo, hi)
				runs = append(runs, r)
			}
			r.conns = append(r.conns, c)
		}
	}
	// Insertion sort by (lo, hi). Intervals are distinct, so this is the
	// exact order the previous sort.Slice produced, without its closure.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && (runs[j].lo < runs[j-1].lo ||
			(runs[j].lo == runs[j-1].lo && runs[j].hi < runs[j-1].hi)); j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	sc.runs = runs
	// Dense member slots replace the per-connection envelope and shift
	// maps: run ri's members own slots base[ri]..base[ri]+len(conns)-1,
	// and every consumer walks run memberships, so (ri, j) always
	// identifies a slot without any lookup structure.
	base := resize(sc.base, len(runs))
	sc.base = base
	total := 0
	for ri, r := range runs {
		base[ri] = total
		total += len(r.conns)
	}

	// Delay per run: dynamic program over segmentations of the run's
	// interval. For every subinterval [i, j] the bound B[i][j] applies to
	// the aggregate of ALL connections whose chain interval covers
	// [i, j] — FIFO serves the aggregate as one flow, so its bound holds
	// for every member — and a run may split its interval wherever that
	// is cheaper:
	//
	//	D[i][j] = min( B[i][j], min_m D[i][m] + D[m+1][j] ).
	//
	// Single positions use the exact local FIFO bound (B[i][i] =
	// local[i], since every connection at a server is part of the full
	// aggregate there). This subsumes the paper's pair analysis (the
	// segmentation into pairs is one of the candidates) and extends it to
	// longer chains.
	//
	// Intra-chain envelopes are a fixpoint problem: cross envelopes at
	// interior positions depend on upstream delay bounds, which depend on
	// cross envelopes. Iterate from the decomposed (local-shift)
	// propagation and re-propagate with the DP prefix bounds: every
	// iterate deforms envelopes by proven delay bounds, so every
	// iteration is sound, and later iterations only tighten.
	prefix := resize(sc.prefix, total) // slot -> shift per run position
	sc.prefix = prefix
	var bounds *intervalBounds
	// For chains of length <= 2 the DP prefix equals the local delay, so
	// one pass suffices; longer chains benefit from re-propagation.
	iters := 1
	if len(chain) > 2 {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		aggStart := time.Now()
		envAt := resize(sc.envAt, len(chain)+1)
		sc.envAt = envAt
		envBuf := resize(sc.envBuf, (len(chain)+1)*total)
		sc.envBuf = envBuf
		for i := range envAt {
			envAt[i] = envBuf[i*total : (i+1)*total]
		}
		local := resize(sc.local, len(chain))
		sc.local = local
		for ri, r := range runs {
			b := base[ri]
			for j, c := range r.conns {
				for i := r.lo; i <= r.hi; i++ {
					if iter > 0 {
						envAt[i][b+j] = ar.ShiftLeft(p.env[c], prefix[b+j][i-r.lo])
					} else if i == r.lo {
						envAt[i][b+j] = p.env[c]
					}
				}
			}
		}
		ra := &sc.ra
		ra.init(ar, len(chain), runs, base)
		for i := range chain {
			if canceled(ctx) {
				return false
			}
			srv := net.Servers[chain[i]]
			ra.fill(i, envAt[i])
			agg := ra.total(i)
			local[i] = fifoLocalDelay(agg, srv.Capacity, srv.Latency)
			if math.IsInf(local[i], 1) {
				return false
			}
			if iter == iters-1 {
				p.recordBacklog(chain[i], agg, srv.Capacity)
			}
			if iter == 0 {
				// Initial decomposed-style propagation.
				for ri, r := range runs {
					if r.lo <= i && i < r.hi {
						b := base[ri]
						for j := range r.conns {
							envAt[i+1][b+j] = ar.ShiftLeft(envAt[i][b+j], local[i])
						}
					}
				}
			}
		}
		if tm != nil {
			tm.observe(&tm.Aggregate, aggStart)
		}
		thetaStart := time.Now()
		bounds = &sc.ib
		bounds.init(ctx, ar, net, chain, runs, ra, envAt, base, local)
		// Record the DP prefix bounds as the next iteration's shifts. The
		// shift vector is identical for every member of a run, so one
		// arena-backed vector per run is shared by all its slots.
		for ri, r := range runs {
			if canceled(ctx) {
				return false
			}
			n := r.hi - r.lo + 1
			shifts := ar.Floats(n)[:n]
			shifts[0] = 0 // arena memory is not zeroed
			for i := r.lo + 1; i <= r.hi; i++ {
				shifts[i-r.lo] = bounds.best(r.lo, i-1)
			}
			b := base[ri]
			for j := range r.conns {
				prefix[b+j] = shifts
			}
		}
		if tm != nil {
			tm.observe(&tm.Theta, thetaStart)
		}
	}
	for ri, r := range runs {
		if canceled(ctx) {
			return false
		}
		servers := make([]int, 0, r.hi-r.lo+1)
		for i := r.lo; i <= r.hi; i++ {
			servers = append(servers, chain[i])
		}
		thetaStart := time.Now()
		d := bounds.best(r.lo, r.hi)
		if tm != nil {
			tm.observe(&tm.Theta, thetaStart)
		}
		propStart := time.Now()
		var excl *runExclSums
		if deconv && r.hi > r.lo {
			excl = newRunExclSums(ar, bounds, ri)
		}
		for mi, c := range r.conns {
			entry := p.env[c]
			if !p.advance(c, servers, d, len(servers)) {
				return false
			}
			if excl != nil {
				refined := deconvOutput(ar, net, chain, r, mi, entry, excl)
				if refined != nil {
					p.env[c] = minplus.Min(p.env[c], *refined)
				}
			}
		}
		if tm != nil {
			tm.observe(&tm.Propagate, propStart)
		}
	}
	return true
}

// runExclSums supports leave-one-out cross aggregates for a run: at every
// position of the run's interval, the sum of all other runs' partials
// plus prefix/suffix sums over the run's own members, so excluding one
// member is a 3-way sum instead of a fold over all other connections.
type runExclSums struct {
	ar *minplus.Arena // owning chain's arena; all sums are chain-local
	r  *run
	// others[i-lo] sums the partials of every other run present at i.
	others []minplus.Curve
	// pre[i-lo][j] sums members 0..j-1 at position i; suf[i-lo][j] sums
	// members j+1.. at position i.
	pre, suf [][]minplus.Curve
}

func newRunExclSums(ar *minplus.Arena, ib *intervalBounds, ri int) *runExclSums {
	r := ib.runs[ri]
	n := r.hi - r.lo + 1
	m := len(r.conns)
	ex := &runExclSums{
		ar:     ar,
		r:      r,
		others: make([]minplus.Curve, n),
		pre:    make([][]minplus.Curve, n),
		suf:    make([][]minplus.Curve, n),
	}
	b := ib.base[ri]
	for i := r.lo; i <= r.hi; i++ {
		rel := i - r.lo
		curves := make([]minplus.Curve, 0, len(ib.runs))
		for rj, o := range ib.runs {
			if rj != ri && o.lo <= i && i <= o.hi {
				curves = append(curves, ib.ra.partial[i][rj])
			}
		}
		ex.others[rel] = ar.SumNSlice(curves)
		pre := make([]minplus.Curve, m+1)
		suf := make([]minplus.Curve, m+1)
		pre[0] = minplus.Zero()
		for j := 0; j < m; j++ {
			pre[j+1] = ar.Add(pre[j], ib.envAt[i][b+j])
		}
		suf[m] = minplus.Zero()
		for j := m - 1; j >= 0; j-- {
			suf[j] = ar.Add(suf[j+1], ib.envAt[i][b+j])
		}
		ex.pre[rel] = pre
		ex.suf[rel] = suf
	}
	return ex
}

// crossWithout returns the aggregate of every connection at run position i
// except member mi.
func (ex *runExclSums) crossWithout(i, mi int) minplus.Curve {
	rel := i - ex.r.lo
	return ex.ar.SumN(ex.others[rel], ex.pre[rel][mi], ex.suf[rel][mi+1])
}

// deconvOutput computes the per-flow deconvolution envelope of run member
// mi leaving its run: the member alone receives the theta = 0 residual
// against ALL other traffic at each run server (a valid per-flow service
// curve), their convolution is a valid end-to-end service curve for it
// over the run, and the deconvolution of its entry envelope out of it is
// a valid output envelope. Returns nil when the residual leaves the
// member no guaranteed rate. The residual convolution is chain-arena
// scratch; the returned deconvolution is heap-allocated because the
// caller folds it into the propagation, which outlives the chain.
func deconvOutput(ar *minplus.Arena, net *topo.Network, chain []int, r *run, mi int, entry minplus.Curve, ex *runExclSums) *minplus.Curve {
	beta := minplus.Curve{}
	for i := r.lo; i <= r.hi; i++ {
		res := fifoResidual(ar, net.Servers[chain[i]].Capacity, ex.crossWithout(i, mi), 0)
		if i == r.lo {
			beta = res
		} else {
			beta = ar.ConvolveGated(beta, res)
		}
	}
	if beta.FinalSlope() <= entry.FinalSlope() {
		return nil // no spare rate: deconvolution would diverge
	}
	out, err := minplus.Deconvolve(entry, beta)
	if err != nil {
		return nil
	}
	return &out
}

// intervalBounds lazily computes and memoizes the direct bound B[i][j] and
// the segmented optimum D[i][j] for chain intervals. The memos are dense
// L*L tables (L = chain length, key lo*L+hi) with NaN marking unset
// entries — every stored bound is finite: local delays were checked
// against +Inf before the DP runs, and every interval bound is clamped by
// its decomposed sum of local delays.
type intervalBounds struct {
	ctx    context.Context // cancellation for the theta searches it spawns
	ar     *minplus.Arena  // owning chain's arena for interval scratch
	net    *topo.Network
	chain  []int
	runs   []*run
	ra     *runAggregates
	envAt  [][]minplus.Curve
	base   []int
	local  []float64
	direct []float64
	opt    []float64
}

func (ib *intervalBounds) init(ctx context.Context, ar *minplus.Arena, net *topo.Network, chain []int, runs []*run, ra *runAggregates, envAt [][]minplus.Curve, base []int, local []float64) {
	ib.ctx, ib.ar, ib.net, ib.chain = ctx, ar, net, chain
	ib.runs, ib.ra, ib.envAt, ib.base, ib.local = runs, ra, envAt, base, local
	n := len(chain) * len(chain)
	ib.direct = resize(ib.direct, n)
	ib.opt = resize(ib.opt, n)
	for i := range ib.direct {
		ib.direct[i] = math.NaN()
		ib.opt[i] = math.NaN()
	}
}

// best returns D[lo][hi], the cheapest bound for traversing chain
// positions lo..hi as part of a covering aggregate.
func (ib *intervalBounds) best(lo, hi int) float64 {
	key := lo*len(ib.chain) + hi
	if d := ib.opt[key]; !math.IsNaN(d) {
		return d
	}
	d := ib.directBound(lo, hi)
	for m := lo; m < hi; m++ {
		if split := ib.best(lo, m) + ib.best(m+1, hi); split < d {
			d = split
		}
	}
	ib.opt[key] = d
	return d
}

// directBound returns B[lo][hi]: the residual-convolution bound for the
// aggregate of all connections whose interval covers [lo, hi] (the local
// FIFO bound when lo == hi).
func (ib *intervalBounds) directBound(lo, hi int) float64 {
	if lo == hi {
		return ib.local[lo]
	}
	key := lo*len(ib.chain) + hi
	if d := ib.direct[key]; !math.IsNaN(d) {
		return d
	}
	d := runIntervalBound(ib.ctx, ib.ar, ib.net, ib.chain, lo, hi, ib.ra, ib.local)
	ib.direct[key] = d
	return d
}

// runIntervalBound computes the joint bound of a multi-server interval for
// a given aggregate: the horizontal deviation between the aggregate's
// entry envelope and the min-plus convolution of the per-server FIFO
// residual curves against the local cross traffic, minimized over the
// theta parameters by the shared memoized search (full enumeration for
// two servers, coordinate descent for longer intervals — every
// evaluation is a valid bound, so any search strategy is sound), clamped
// by the decomposed sum of local delays.
func runIntervalBound(ctx context.Context, ar *minplus.Arena, net *topo.Network, chain []int, lo, hi int, ra *runAggregates, local []float64) float64 {
	agg := ra.covering(lo, lo, hi)

	k := hi - lo + 1
	cross := ar.Curves(k)[:k]
	caps := ar.Floats(k)[:k]
	cands := make([][]float64, k)
	lat := 0.0
	decomposedSum := 0.0
	for i := 0; i < k; i++ {
		posIdx := lo + i
		srv := net.Servers[chain[posIdx]]
		caps[i] = srv.Capacity
		lat += srv.Latency
		decomposedSum += local[posIdx]
		cross[i] = ra.crossAt(posIdx, lo, hi)
		cands[i] = thetaCandidatesArena(ar, caps[i], cross[i], local[posIdx])
	}

	ts := &thetaSearch{
		ctx:   ctx,
		agg:   agg,
		cands: cands,
		ar:    ar,
		residual: func(i int, theta float64) minplus.Curve {
			return fifoResidual(ar, caps[i], cross[i], theta)
		},
	}
	best := ts.minimize() + lat
	if decomposedSum < best {
		best = decomposedSum
	}
	return best
}
