package analysis

import (
	"fmt"
	"testing"
	"time"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// benchTandemNet builds the curve-engine benchmark workload: a tandem of
// unit-capacity FIFO switches crossed by short overlapping connections
// (hops cycling 2..4), loaded well inside the stability region.
func benchTandemNet(nServers, nConns int) *topo.Network {
	servers := make([]server.Server, nServers)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("sw%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	load := make([]int, nServers)
	paths := make([][]int, nConns)
	for i := 0; i < nConns; i++ {
		hops := 2 + i%3
		start := (i * 7) % (nServers - hops)
		path := make([]int, hops)
		for h := range path {
			path[h] = start + h
			load[start+h]++
		}
		paths[i] = path
	}
	maxLoad := 1
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	rho := 0.55 / float64(maxLoad+1)
	conns := make([]topo.Connection, nConns)
	for i := range conns {
		conns[i] = topo.Connection{
			Name:       fmt.Sprintf("bench%d", i),
			Bucket:     traffic.TokenBucket{Sigma: 1 + 0.01*float64(i%7), Rho: rho * (1 + 0.001*float64(i%11))},
			AccessRate: 1,
			Path:       paths[i],
			Deadline:   10000,
		}
	}
	net := &topo.Network{Servers: servers, Connections: conns}
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}

// TestCurveEngineSpeedup enforces the overhaul's acceptance gate: on a
// 64-switch / 400-connection tandem the reworked Integrated engine must be
// at least 4x faster than the pre-overhaul engine (frozen verbatim in
// reference_test.go), while producing the same bounds.
func TestCurveEngineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate")
	}
	net := benchTandemNet(64, 400)
	a := Integrated{}

	fastRes, err := a.Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := refIntegratedAnalyze(a, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fastRes.Bounds {
		if !boundsClose(fastRes.Bounds[i], slowRes.Bounds[i]) {
			t.Fatalf("conn %d: new engine bound %v, reference %v", i, fastRes.Bounds[i], slowRes.Bounds[i])
		}
	}

	minDur := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	fast := minDur(func() {
		if _, err := a.Analyze(net); err != nil {
			t.Fatal(err)
		}
	})
	slow := minDur(func() {
		if _, err := refIntegratedAnalyze(a, net); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(slow) / float64(fast)
	t.Logf("new engine %v, reference %v, ratio %.1fx", fast, slow, ratio)
	if ratio < 4 {
		t.Errorf("curve-engine speedup %.1fx, want >= 4x", ratio)
	}
}

func BenchmarkIntegratedAnalyze(b *testing.B) {
	net := benchTandemNet(64, 400)
	a := Integrated{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegratedAnalyzeChain4(b *testing.B) {
	net := benchTandemNet(32, 200)
	a := Integrated{ChainLength: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(net); err != nil {
			b.Fatal(err)
		}
	}
}
