package analysis

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"delaycalc/internal/topo"
)

// ContextAnalyzer is implemented by analyzers that support cooperative
// cancellation: AnalyzeContext behaves exactly like Analyze — an
// uncancelled run returns bit-identical results — but observes the
// context at internal checkpoints (theta-search candidate fan-out, the
// level-parallel chain loop, per-server propagation steps) and returns
// the context's error once it is done. The granularity is one checkpoint
// per candidate evaluation or chain position, so cancellation latency is
// bounded by a single curve operation, not a whole analysis.
type ContextAnalyzer interface {
	Analyzer
	AnalyzeContext(ctx context.Context, net *topo.Network) (*Result, error)
}

// AnalyzeWithContext runs an analyzer under a context: cancellation-aware
// analyzers get the context plumbed through; for the rest the context is
// checked once up front (their analyses are cheap enough that cooperative
// checkpoints buy nothing) and the plain Analyze runs to completion.
func AnalyzeWithContext(ctx context.Context, a Analyzer, net *topo.Network) (*Result, error) {
	if ca, ok := a.(ContextAnalyzer); ok {
		return ca.AnalyzeContext(ctx, net)
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	return a.Analyze(net)
}

// canceled reports whether the context is done. It is the checkpoint
// predicate of the cancellation-aware paths; on context.Background() the
// select hits the default case, so an uncancelled analysis takes the
// exact same computation path as the context-free one.
func canceled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// ctxErr wraps a context error in the package's error convention while
// keeping errors.Is(err, context.Canceled / DeadlineExceeded) working.
func ctxErr(err error) error {
	return fmt.Errorf("analysis: %w", err)
}

// Timings accumulates per-stage wall time of one analysis run, in
// nanoseconds. Stages are the integrated analyzer's phases: partitioning
// the network into chains, aggregate-envelope construction, the theta
// search over residual-curve candidates, and bound/envelope propagation.
// Chains of one dependency level run concurrently, so the counters are
// atomic and a stage's total can exceed wall-clock time (it is CPU time
// across workers). Attach a collector with WithTimings; analyzers that
// find none in the context skip all instrumentation.
type Timings struct {
	Partition atomic.Int64
	Aggregate atomic.Int64
	Theta     atomic.Int64
	Propagate atomic.Int64
}

// StageSeconds returns the accumulated stage times in seconds, keyed by
// the stage names the serving layer exports as metric labels.
func (t *Timings) StageSeconds() map[string]float64 {
	return map[string]float64{
		"partition": time.Duration(t.Partition.Load()).Seconds(),
		"aggregate": time.Duration(t.Aggregate.Load()).Seconds(),
		"theta":     time.Duration(t.Theta.Load()).Seconds(),
		"propagate": time.Duration(t.Propagate.Load()).Seconds(),
	}
}

// observe adds the time elapsed since start to one stage counter.
func (t *Timings) observe(dst *atomic.Int64, start time.Time) {
	dst.Add(int64(time.Since(start)))
}

type timingsKey struct{}

// WithTimings derives a context carrying a fresh stage-timing collector.
// Context-aware analyzers fill it as they run; read it after the analysis
// returns.
func WithTimings(ctx context.Context) (context.Context, *Timings) {
	t := &Timings{}
	return context.WithValue(ctx, timingsKey{}, t), t
}

// timingsFrom extracts the collector, or nil when none is attached.
func timingsFrom(ctx context.Context) *Timings {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(timingsKey{}).(*Timings)
	return t
}
