package analysis

// This file freezes the pre-overhaul curve engine verbatim: the pairwise
// envelope folds, the per-candidate residual rebuilds, the generic
// convolution in the theta enumeration, and the strictly sequential chain
// loop, exactly as they stood before the k-way/memoized engine replaced
// them. TestCurveEngineSpeedup measures the new engine against this
// reference, and TestCurveEngineMatchesReference pins the bounds to it, so
// the speedup is enforced against the real old code rather than a strawman.
//
// Nothing here is reachable from non-test code. Shared, semantically
// unchanged helpers (FIFOResidual, thetaCandidates, fifoLocalDelay,
// propagation, partition/orderSubnetworks, normalizeNetwork) are used
// as-is; everything the overhaul rewrote is copied.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// refSum is the old minplus.Sum: a pairwise left fold of Add.
func refSum(curves ...minplus.Curve) minplus.Curve {
	acc := minplus.Zero()
	for _, c := range curves {
		acc = minplus.Add(acc, c)
	}
	return acc
}

// refSumSorted is the old analysis sumSorted: pairwise fold in key order.
func refSumSorted(m map[int]minplus.Curve) minplus.Curve {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	acc := minplus.Zero()
	for _, k := range keys {
		acc = minplus.Add(acc, m[k])
	}
	return acc
}

// refIntegratedAnalyze is the old Integrated.Analyze: strictly sequential
// subnetwork processing over the old chain analysis.
func refIntegratedAnalyze(a Integrated, net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return nil, fmt.Errorf("analysis: Integrated applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	if !net.Stable() {
		return allInf("Integrated", net), nil
	}
	subnets, err := a.partition(net)
	if err != nil {
		return nil, err
	}
	ordered, err := orderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	p := newPropagation(net)
	for _, sn := range ordered {
		if ok := refAnalyzeChain(net, sn.servers, p, a.DeconvPropagation); !ok {
			return allInf("Integrated", net), nil
		}
	}
	return denormalizeBacklogs(p.result("Integrated"), scale), nil
}

// refDecomposedAnalyze is the old Decomposed.Analyze for FIFO networks,
// with the pairwise aggregate fold.
func refDecomposedAnalyze(net *topo.Network) (*Result, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	net, scale := normalizeNetwork(net)
	if !net.Stable() {
		return allInf("Decomposed", net), nil
	}
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	p := newPropagation(net)
	for _, s := range order {
		srv := net.Servers[s]
		conns := net.ConnectionsAt(s)
		if len(conns) == 0 {
			continue
		}
		var envs []minplus.Curve
		for _, c := range conns {
			envs = append(envs, p.env[c])
		}
		p.recordBacklog(s, refSum(envs...), srv.Capacity)
		d := fifoLocalDelay(refSum(envs...), srv.Capacity, srv.Latency)
		for _, c := range conns {
			if !p.advance(c, []int{s}, d, 1) {
				return allInf("Decomposed", net), nil
			}
		}
	}
	return denormalizeBacklogs(p.result("Decomposed"), scale), nil
}

// refAnalyzeChain is the old analyzeChain, byte-for-byte except for calls
// into the other ref* copies.
func refAnalyzeChain(net *topo.Network, chain []int, p *propagation, deconv bool) bool {
	pos := make(map[int]int, len(chain))
	for i, s := range chain {
		pos[s] = i
	}
	runIndex := map[[2]int]*run{}
	var runs []*run
	seen := map[int]bool{}
	for _, s := range chain {
		for _, c := range net.ConnectionsAt(s) {
			if seen[c] {
				continue
			}
			seen[c] = true
			path := net.Connections[c].Path
			h := p.next[c]
			lo := pos[path[h]]
			hi := lo
			for k := h + 1; k < len(path); k++ {
				q, ok := pos[path[k]]
				if !ok || q != hi+1 {
					break
				}
				hi = q
			}
			key := [2]int{lo, hi}
			r, ok := runIndex[key]
			if !ok {
				r = &run{lo: lo, hi: hi}
				runIndex[key] = r
				runs = append(runs, r)
			}
			r.conns = append(r.conns, c)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].lo != runs[j].lo {
			return runs[i].lo < runs[j].lo
		}
		return runs[i].hi < runs[j].hi
	})

	prefix := map[int][]float64{}
	var bounds *refIntervalBounds
	iters := 1
	if len(chain) > 2 {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		envAt := make([]map[int]minplus.Curve, len(chain)+1)
		local := make([]float64, len(chain))
		for i := range envAt {
			envAt[i] = map[int]minplus.Curve{}
		}
		for _, r := range runs {
			for _, c := range r.conns {
				for i := r.lo; i <= r.hi; i++ {
					if iter > 0 {
						envAt[i][c] = minplus.ShiftLeft(p.env[c], prefix[c][i-r.lo])
					} else if i == r.lo {
						envAt[i][c] = p.env[c]
					}
				}
			}
		}
		for i := range chain {
			srv := net.Servers[chain[i]]
			agg := refSumSorted(envAt[i])
			local[i] = fifoLocalDelay(agg, srv.Capacity, srv.Latency)
			if math.IsInf(local[i], 1) {
				return false
			}
			if iter == iters-1 {
				p.recordBacklog(chain[i], agg, srv.Capacity)
			}
			if iter == 0 {
				for _, r := range runs {
					if r.lo <= i && i < r.hi {
						for _, c := range r.conns {
							envAt[i+1][c] = minplus.ShiftLeft(envAt[i][c], local[i])
						}
					}
				}
			}
		}
		bounds = newRefIntervalBounds(net, chain, runs, envAt, local)
		for _, r := range runs {
			for _, c := range r.conns {
				shifts := make([]float64, r.hi-r.lo+1)
				for i := r.lo + 1; i <= r.hi; i++ {
					shifts[i-r.lo] = bounds.best(r.lo, i-1)
				}
				prefix[c] = shifts
			}
		}
	}
	for _, r := range runs {
		servers := make([]int, 0, r.hi-r.lo+1)
		for i := r.lo; i <= r.hi; i++ {
			servers = append(servers, chain[i])
		}
		d := bounds.best(r.lo, r.hi)
		for _, c := range r.conns {
			entry := p.env[c]
			if !p.advance(c, servers, d, len(servers)) {
				return false
			}
			if deconv && r.hi > r.lo {
				refined := refDeconvOutput(net, chain, r, c, entry, bounds)
				if refined != nil {
					p.env[c] = minplus.Min(p.env[c], *refined)
				}
			}
		}
	}
	return true
}

func refDeconvOutput(net *topo.Network, chain []int, r *run, c int, entry minplus.Curve, ib *refIntervalBounds) *minplus.Curve {
	beta := minplus.Curve{}
	for i := r.lo; i <= r.hi; i++ {
		crossCurves := make(map[int]minplus.Curve)
		for o, e := range ib.envAt[i] {
			if o != c {
				crossCurves[o] = e
			}
		}
		res := FIFOResidual(net.Servers[chain[i]].Capacity, refSumSorted(crossCurves), 0)
		if i == r.lo {
			beta = res
		} else {
			beta = minplus.Convolve(beta, res)
		}
	}
	if beta.FinalSlope() <= entry.FinalSlope() {
		return nil
	}
	out, err := minplus.Deconvolve(entry, beta)
	if err != nil {
		return nil
	}
	return &out
}

type refIntervalBounds struct {
	net    *topo.Network
	chain  []int
	runs   []*run
	envAt  []map[int]minplus.Curve
	local  []float64
	direct map[[2]int]float64
	opt    map[[2]int]float64
}

func newRefIntervalBounds(net *topo.Network, chain []int, runs []*run, envAt []map[int]minplus.Curve, local []float64) *refIntervalBounds {
	return &refIntervalBounds{
		net: net, chain: chain, runs: runs, envAt: envAt, local: local,
		direct: map[[2]int]float64{},
		opt:    map[[2]int]float64{},
	}
}

func (ib *refIntervalBounds) best(lo, hi int) float64 {
	key := [2]int{lo, hi}
	if d, ok := ib.opt[key]; ok {
		return d
	}
	d := ib.directBound(lo, hi)
	for m := lo; m < hi; m++ {
		if split := ib.best(lo, m) + ib.best(m+1, hi); split < d {
			d = split
		}
	}
	ib.opt[key] = d
	return d
}

func (ib *refIntervalBounds) directBound(lo, hi int) float64 {
	if lo == hi {
		return ib.local[lo]
	}
	key := [2]int{lo, hi}
	if d, ok := ib.direct[key]; ok {
		return d
	}
	covering := map[int]bool{}
	for _, r := range ib.runs {
		if r.lo <= lo && hi <= r.hi {
			for _, c := range r.conns {
				covering[c] = true
			}
		}
	}
	d := refRunIntervalBound(ib.net, ib.chain, lo, hi, covering, ib.envAt, ib.local)
	ib.direct[key] = d
	return d
}

// refRunIntervalBound is the old runIntervalBound: residuals rebuilt for
// every theta vector, generic convolution per evaluation, cross traffic
// re-summed per position.
func refRunIntervalBound(net *topo.Network, chain []int, lo, hi int, inAgg map[int]bool, envAt []map[int]minplus.Curve, local []float64) float64 {
	entry := make(map[int]minplus.Curve, len(inAgg))
	for c := range inAgg {
		entry[c] = envAt[lo][c]
	}
	agg := refSumSorted(entry)

	k := hi - lo + 1
	cross := make([]minplus.Curve, k)
	caps := make([]float64, k)
	cands := make([][]float64, k)
	lat := 0.0
	decomposedSum := 0.0
	for i := 0; i < k; i++ {
		posIdx := lo + i
		srv := net.Servers[chain[posIdx]]
		caps[i] = srv.Capacity
		lat += srv.Latency
		decomposedSum += local[posIdx]
		crossCurves := make(map[int]minplus.Curve)
		for c, e := range envAt[posIdx] {
			if !inAgg[c] {
				crossCurves[c] = e
			}
		}
		cross[i] = refSumSorted(crossCurves)
		cands[i] = thetaCandidates(caps[i], cross[i], local[posIdx])
	}

	evalAt := func(thetas []float64) float64 {
		beta := FIFOResidual(caps[0], cross[0], thetas[0])
		for i := 1; i < k; i++ {
			beta = minplus.Convolve(beta, FIFOResidual(caps[i], cross[i], thetas[i]))
		}
		return minplus.HorizontalDeviation(agg, beta)
	}

	best := math.Inf(1)
	if k == 2 {
		type pair struct{ t0, t1 float64 }
		var jobs []pair
		for _, t0 := range cands[0] {
			for _, t1 := range cands[1] {
				jobs = append(jobs, pair{t0, t1})
			}
		}
		best = parallelMin(context.Background(), len(jobs), func(i int) float64 {
			return evalAt([]float64{jobs[i].t0, jobs[i].t1})
		})
	} else {
		thetas := make([]float64, k)
		best = evalAt(thetas)
		for pass := 0; pass < 3; pass++ {
			improved := false
			for i := 0; i < k; i++ {
				bestHere := thetas[i]
				for _, cand := range cands[i] {
					if cand == bestHere {
						continue
					}
					thetas[i] = cand
					if d := evalAt(thetas); d < best {
						best = d
						bestHere = cand
						improved = true
					}
				}
				thetas[i] = bestHere
			}
			if !improved {
				break
			}
		}
	}
	best += lat
	if decomposedSum < best {
		best = decomposedSum
	}
	return best
}
