package analysis

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"delaycalc/internal/topo"
)

// contextAnalyzers pairs each ContextAnalyzer with a network it applies
// to: the FIFO analyzers run over net, IntegratedSP over a static-priority
// tandem of its own.
func contextAnalyzers(net *topo.Network) map[string]struct {
	a   ContextAnalyzer
	net *topo.Network
} {
	return map[string]struct {
		a   ContextAnalyzer
		net *topo.Network
	}{
		"decomposed":    {Decomposed{}, net},
		"integrated":    {Integrated{}, net},
		"integrated-L3": {Integrated{ChainLength: 3, DeconvPropagation: true}, net},
		"integratedsp":  {IntegratedSP{}, spTandem(4, 0.6)},
	}
}

// TestAnalyzeContextMatchesAnalyze pins that an uncancelled context changes
// nothing: AnalyzeContext(Background) must be bitwise identical to Analyze,
// because every cancellation checkpoint falls through to the same
// computation.
func TestAnalyzeContextMatchesAnalyze(t *testing.T) {
	for name, net := range differentialCorpus(t) {
		for aname, tc := range contextAnalyzers(net) {
			want, err := tc.a.Analyze(tc.net)
			if err != nil {
				t.Fatalf("%s/%s: Analyze: %v", name, aname, err)
			}
			got, err := tc.a.AnalyzeContext(context.Background(), tc.net)
			if err != nil {
				t.Fatalf("%s/%s: AnalyzeContext: %v", name, aname, err)
			}
			for i := range want.Bounds {
				if got.Bounds[i] != want.Bounds[i] {
					t.Errorf("%s/%s: conn %d AnalyzeContext bound %v != Analyze %v",
						name, aname, i, got.Bounds[i], want.Bounds[i])
				}
			}
			for s := range want.Backlogs {
				if got.Backlogs[s] != want.Backlogs[s] {
					t.Errorf("%s/%s: server %d AnalyzeContext backlog %v != Analyze %v",
						name, aname, s, got.Backlogs[s], want.Backlogs[s])
				}
			}
		}
	}
}

// TestDecomposedDominatesIntegrated is the soundness argument behind the
// serving layer's degradation policy: on every corpus network the
// decomposed (Cruz) bound must dominate the integrated bound per
// connection, so answering with the decomposed bound under time pressure
// can only ever be conservative.
func TestDecomposedDominatesIntegrated(t *testing.T) {
	const tol = 1e-9
	for name, net := range differentialCorpus(t) {
		dec, err := Decomposed{}.Analyze(net)
		if err != nil {
			t.Fatalf("%s: decomposed: %v", name, err)
		}
		integ, err := Integrated{DeconvPropagation: true}.Analyze(net)
		if err != nil {
			t.Fatalf("%s: integrated: %v", name, err)
		}
		for i := range dec.Bounds {
			d, g := dec.Bounds[i], integ.Bounds[i]
			// An unbounded decomposed connection dominates trivially; an
			// unbounded integrated connection with a finite decomposed
			// bound would break the fallback's soundness.
			if d+tol*(1+d) < g {
				t.Errorf("%s: conn %d decomposed bound %v below integrated %v — degraded answer would be unsound",
					name, i, d, g)
			}
		}
	}
}

// TestAnalyzeContextCancelled pins the cancellation contract: a cancelled
// context yields a wrapped context error (never a silent partial result)
// and the level-parallel workers exit, leaving no goroutines behind.
func TestAnalyzeContextCancelled(t *testing.T) {
	net, err := topo.RandomFeedforward(10, 16, 0.65, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for aname, tc := range contextAnalyzers(net) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := tc.a.AnalyzeContext(ctx, tc.net)
		if err == nil {
			t.Fatalf("%s: cancelled AnalyzeContext returned %v, want error", aname, res)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled AnalyzeContext error %v does not wrap context.Canceled", aname, err)
		}
	}
	// Give worker goroutines a moment to observe the cancellation and exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked by cancelled analyses: %d before, %d after settle",
		before, runtime.NumGoroutine())
}

// TestExtendContextMatchesExtend pins the incremental path: extending a
// baseline under an uncancelled context is identical to the plain Extend,
// and a cancelled extension reports the context error.
func TestExtendContextMatchesExtend(t *testing.T) {
	net, err := topo.PaperTandem(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Integrated{}.NewBaseline(net)
	if err != nil {
		t.Fatal(err)
	}
	cand := net.Connections[0]
	cand.Name = "extend-probe"
	plain, err := base.Extend(cand)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := base.ExtendContext(context.Background(), cand)
	if err != nil {
		t.Fatal(err)
	}
	pr, cr := plain.Result(), ctxed.Result()
	for i := range pr.Bounds {
		if pr.Bounds[i] != cr.Bounds[i] {
			t.Errorf("conn %d ExtendContext bound %v != Extend %v", i, cr.Bounds[i], pr.Bounds[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := base.ExtendContext(ctx, cand); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExtendContext error %v does not wrap context.Canceled", err)
	}
}

// TestTimingsCollected checks that an analysis run under WithTimings
// attributes time to every pipeline stage it executes.
func TestTimingsCollected(t *testing.T) {
	net, err := topo.RandomFeedforward(8, 12, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, tm := WithTimings(context.Background())
	if _, err := (Integrated{}).AnalyzeContext(ctx, net); err != nil {
		t.Fatal(err)
	}
	stages := tm.StageSeconds()
	for _, stage := range []string{"partition", "aggregate", "theta", "propagate"} {
		if _, ok := stages[stage]; !ok {
			t.Errorf("StageSeconds missing stage %q: %v", stage, stages)
		}
	}
	if stages["theta"] <= 0 {
		t.Errorf("theta stage recorded no time: %v", stages)
	}
	for stage, sec := range stages {
		if sec < 0 {
			t.Errorf("stage %q recorded negative time %v", stage, sec)
		}
	}
}
