package analysis

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// This file implements incremental re-analysis: a Baseline records, for a
// fully analyzed network, the propagation state after every analysis unit
// (one server for Decomposed, one chain for Integrated), and Extend
// re-analyzes the network with one extra connection by recomputing only the
// units the candidate can influence and replaying the recorded state for
// every other unit.
//
// Why replay is exact: both analyzers process units in a topological order
// consistent with every connection's route, so when a unit is processed,
// each crossing connection is entering it with its state fully determined
// by the units it crossed before. A unit's computation is a deterministic
// pure function of its servers and the entry states of its crossing
// connections. Mark the candidate dirty; process the trial partition in
// order; a unit is dirty iff its server tuple did not exist in the baseline
// partition or some crossing connection is dirty, and every connection
// crossing a dirty unit becomes dirty. By induction, a clean unit sees
// exactly the entry states of the baseline run, so its recorded outputs are
// bit-identical to what recomputation would produce. The dirty relation is
// precisely the downstream interference closure of the candidate's route:
// propagated output burstiness makes interference transitive, and the
// closure over the server-sharing graph (lifted to partition units) is how
// it spreads. See docs/INCREMENTAL.md for the full argument.

// Incremental is implemented by analyzers that support baseline+extend
// re-analysis. Extend results are bit-identical to a full Analyze of the
// extended network.
type Incremental interface {
	Analyzer
	// NewBaseline fully analyzes the network and retains the per-unit
	// propagation trace needed by Extend.
	NewBaseline(net *topo.Network) (*Baseline, error)
}

// Compile-time checks: the two analyzers the admission engine accelerates.
var (
	_ Incremental = Decomposed{}
	_ Incremental = Integrated{}
)

// stepCore is the analyzer-specific machinery behind the shared driver: an
// ordered partition of the network into units, and the computation that
// advances the propagation state across one unit.
type stepCore interface {
	name() string
	// check validates analyzer-specific preconditions (e.g. FIFO-only) on
	// the normalized network.
	check(net *topo.Network) error
	// units returns the ordered partition of the normalized network.
	units(net *topo.Network) ([]unitSpec, error)
	// reusableUnits reports whether the partition depends only on the
	// servers and a topological order — in which case a trial whose
	// checker still shares the baseline's witness can reuse the baseline's
	// unit list instead of re-deriving it. Decomposed (one unit per server
	// in witness order) qualifies; Integrated (chain partition, which a
	// bridging candidate can merge) does not.
	reusableUnits() bool
	// apply runs the unit's computation. ok=false degrades the whole
	// analysis to +Inf, exactly as in the full pass. idx is the network's
	// ConnectionIndex, computed once per (trial) network by the driver so
	// unit computations avoid per-server route scans. The context feeds the
	// unit's internal cancellation checkpoints; after cancellation the
	// outputs are meaningless and the caller must consult ctx.Err() before
	// interpreting them.
	apply(ctx context.Context, net *topo.Network, idx [][]int, u unitSpec, p *propagation) (ok bool, err error)
}

// unitSpec identifies one analysis unit by the servers it covers.
type unitSpec struct {
	servers []int
}

// key is the unit's identity across partitions: the exact server tuple.
func (u unitSpec) key() string {
	var b strings.Builder
	for i, s := range u.servers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// crossing returns the indices of connections with a hop in the unit, in
// increasing order, read off the network's precomputed ConnectionIndex
// (the returned slice aliases it for single-server units; callers only
// read it).
func (u unitSpec) crossing(idx [][]int) []int {
	if len(u.servers) == 1 {
		return idx[u.servers[0]]
	}
	seen := make(map[int]bool)
	var out []int
	for _, s := range u.servers {
		for _, c := range idx[s] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// connTrace is one connection's propagation state immediately after a unit.
type connTrace struct {
	conn   int
	env    minplus.Curve
	delay  float64
	next   int
	stages []Stage
}

// serverBacklog is one unit server's recorded backlog bound.
type serverBacklog struct {
	server  int
	backlog float64
}

// unitTrace records the post-unit state of every crossing connection and
// the backlog bounds of the unit's servers. All values are in normalized
// units and immutable once recorded. Pair slices, not maps: a unit crosses
// a handful of connections, and the churn-heavy paths (remapShrunkTrace in
// particular) copy traces wholesale, which a slice does in one allocation
// with no rehashing.
type unitTrace struct {
	post    []connTrace
	backlog []serverBacklog
}

// crosses reports whether the trace includes connection c.
func (t *unitTrace) crosses(c int) bool {
	for i := range t.post {
		if t.post[i].conn == c {
			return true
		}
	}
	return false
}

// recordUnit snapshots the propagation state after a unit was applied.
func recordUnit(u unitSpec, conns []int, p *propagation) *unitTrace {
	t := &unitTrace{
		post:    make([]connTrace, 0, len(conns)),
		backlog: make([]serverBacklog, 0, len(u.servers)),
	}
	for _, c := range conns {
		t.post = append(t.post, connTrace{
			conn: c,
			// The live envelope may sit in the propagation's recycled
			// shift buffers; the trace outlives them, so detach it.
			env:   p.env[c].Clone(),
			delay: p.delay[c],
			next:  p.next[c],
			// Exact capacity, deliberately: replayUnit aliases this slice
			// into later propagations, and len==cap forces any append
			// there to reallocate instead of writing into the shared
			// backing array (which concurrent Extends also alias).
			stages: append(make([]Stage, 0, len(p.stage[c])), p.stage[c]...),
		})
	}
	for _, s := range u.servers {
		t.backlog = append(t.backlog, serverBacklog{server: s, backlog: p.backlog[s]})
	}
	return t
}

// replayUnit splices the recorded post-unit state into the propagation.
// The stage slices are aliased, not copied: recordUnit stores them with
// len==cap, so the one appender (propagation.advance) reallocates on first
// touch and the immutable trace can never be written through a replayed
// alias — including by concurrent Extends replaying the same trace.
func replayUnit(t *unitTrace, p *propagation) {
	for i := range t.post {
		st := &t.post[i]
		p.env[st.conn] = st.env
		p.delay[st.conn] = st.delay
		p.next[st.conn] = st.next
		p.stage[st.conn] = st.stages
	}
	for _, sb := range t.backlog {
		p.backlog[sb.server] = sb.backlog
	}
}

// Baseline is a fully analyzed network plus the per-unit trace that Extend
// reuses. A Baseline is immutable and safe for concurrent Extend calls.
type Baseline struct {
	core  stepCore
	orig  *topo.Network // caller-unit copy of the analyzed network
	norm  *topo.Network // normalized view (aliases orig when scale == 1)
	scale float64
	res   *Result // normalized-internal result
	trace map[string]*unitTrace
	// chk validates one-candidate extensions of orig in O(candidate)
	// instead of re-validating the whole trial network; nil (e.g. after a
	// failed witness recomputation) degrades every check to the full path.
	chk *topo.Checker
	// units caches the core's ordered partition of norm; trials whose
	// checker shares the witness reuse it (see stepCore.reusableUnits).
	// nil (unstable baselines) falls back to a fresh core.units call.
	units []unitSpec
	// idx caches norm.ConnectionIndex(); Extend derives the trial's index
	// from it in O(candidate route) instead of rebuilding the whole
	// per-server table. nil (unstable baselines) falls back to a rebuild.
	idx [][]int
	// unstable marks a baseline whose own network is unstable or
	// unbounded; Extend degenerates to all-Inf exactly like the full pass.
	unstable bool
}

// NewBaseline implements Incremental for the decomposed analysis.
func (Decomposed) NewBaseline(net *topo.Network) (*Baseline, error) {
	return newBaseline(decomposedCore{}, net)
}

// NewBaseline implements Incremental for the integrated analysis.
func (a Integrated) NewBaseline(net *topo.Network) (*Baseline, error) {
	return newBaseline(integratedCore{a}, net)
}

// copyNetwork clones the network's top-level slices so the baseline owns
// its view of servers and connections.
func copyNetwork(net *topo.Network) *topo.Network {
	cp := &topo.Network{
		Servers:     make([]server.Server, len(net.Servers)),
		Connections: make([]topo.Connection, len(net.Connections)),
	}
	copy(cp.Servers, net.Servers)
	copy(cp.Connections, net.Connections)
	return cp
}

func newBaseline(core stepCore, net *topo.Network) (*Baseline, error) {
	if err := checkAnalyzable(net); err != nil {
		return nil, err
	}
	orig := copyNetwork(net)
	norm, scale := normalizeNetwork(orig)
	if err := core.check(norm); err != nil {
		return nil, err
	}
	b := &Baseline{core: core, orig: orig, norm: norm, scale: scale, trace: map[string]*unitTrace{}}
	// The network just passed checkAnalyzable, so the checker build cannot
	// fail; a nil checker would merely fall back to full validation.
	b.chk, _ = topo.NewChecker(orig)
	if !norm.Stable() {
		b.unstable = true
		b.res = allInf(core.name(), norm)
		return b, nil
	}
	units, err := core.units(norm)
	if err != nil {
		return nil, err
	}
	b.units = units
	idx := norm.ConnectionIndex()
	b.idx = idx
	p := newPropagation(norm)
	for _, u := range units {
		// Baselines are built uncancellable: a half-built baseline would
		// poison every later Extend, so the build always runs to completion.
		ok, err := core.apply(context.Background(), norm, idx, u, p)
		if err != nil {
			return nil, err
		}
		if !ok {
			b.unstable = true
			b.res = allInf(core.name(), norm)
			return b, nil
		}
		b.trace[u.key()] = recordUnit(u, u.crossing(idx), p)
	}
	b.res = p.result(core.name())
	return b, nil
}

// Result returns the baseline's full analysis result in the caller's
// units. The returned slices are copies.
func (b *Baseline) Result() *Result {
	return exportResult(b.res, b.scale)
}

// ValidateExtend validates trial — the baseline's network plus exactly one
// appended candidate, in caller units — returning exactly the error
// trial.Validate() would produce, in O(candidate) on the fast path. A nil
// baseline (or one without a checker) degrades to the full validation, so
// admission-layer prechecks can call it unconditionally.
func (b *Baseline) ValidateExtend(trial *topo.Network) error {
	if b == nil {
		return trial.Validate()
	}
	return b.chk.ValidateExtend(trial)
}

// trialUnits returns the core's ordered partition of the trial network,
// reusing the baseline's cached unit list when the partition depends only
// on the (unchanged) servers and a witness order the trial's checker still
// shares. Unit specs are immutable server tuples, so sharing the slice
// across baselines is safe.
func (b *Baseline) trialUnits(trial *topo.Network, pchk *topo.Checker) ([]unitSpec, error) {
	if b.units != nil && b.core.reusableUnits() && pchk.SharesWitness(b.chk) {
		return b.units, nil
	}
	return b.core.units(trial)
}

// extendIndex derives the trial's ConnectionIndex from the baseline's
// cached one: the candidate sits at the last index, so only the rows of
// the servers on its route change. Touched rows are reallocated with a
// full-slice clamp (the cached rows are shared with the baseline and
// possibly its ancestors); untouched rows alias the cache, which is safe
// because index rows are never written after construction.
func (b *Baseline) extendIndex(trial *topo.Network) [][]int {
	if b.idx == nil {
		return trial.ConnectionIndex()
	}
	candIdx := len(trial.Connections) - 1
	out := append([][]int(nil), b.idx...)
	for _, s := range trial.Connections[candIdx].Path {
		row := out[s]
		out[s] = append(row[:len(row):len(row)], candIdx)
	}
	return out
}

// Connections returns how many connections the baseline covers.
func (b *Baseline) Connections() int { return len(b.orig.Connections) }

// exportResult copies a normalized-internal result and converts bit-valued
// bounds back to caller units (delays are scale-invariant).
func exportResult(r *Result, scale float64) *Result {
	out := &Result{
		Algorithm: r.Algorithm,
		Bounds:    append([]float64(nil), r.Bounds...),
		Stages:    append([][]Stage(nil), r.Stages...),
		Backlogs:  append([]float64(nil), r.Backlogs...),
	}
	return denormalizeBacklogs(out, scale)
}

// normalizeConnection rescales one connection's bit-valued parameters,
// using exactly the operations normalizeNetwork applies, so incremental
// and full analyses see bit-identical inputs.
func normalizeConnection(c *topo.Connection, scale float64) {
	c.Bucket.Sigma /= scale
	c.Bucket.Rho /= scale
	c.AccessRate /= scale
	c.Rate /= scale
	if c.Envelope != nil {
		scaled := minplus.ScaleY(*c.Envelope, 1/scale)
		c.Envelope = &scaled
	}
}

// ExtendStats describes how much work an Extend call avoided.
type ExtendStats struct {
	// Affected counts the existing connections whose bounds had to be
	// recomputed (the candidate itself is not counted).
	Affected int
	// RecomputedUnits and ReplayedUnits partition the trial partition's
	// units into those analyzed for real and those spliced from cache.
	RecomputedUnits int
	ReplayedUnits   int
}

// Extension is the outcome of extending a baseline with one candidate.
type Extension struct {
	Stats    ExtendStats
	res      *Result
	scale    float64
	promoted *Baseline
}

// Result returns the trial network's analysis result (admitted connections
// first, the candidate last) in caller units. The slices are copies.
func (e *Extension) Result() *Result { return exportResult(e.res, e.scale) }

// Promote returns a Baseline for the extended network, reusing every
// replayed unit's trace, so committing an admission costs no extra
// analysis. The promoted baseline is independent of the original.
func (e *Extension) Promote() *Baseline { return e.promoted }

// Extend analyzes the baseline's network plus one candidate connection,
// recomputing only the units inside the candidate's interference closure.
// The result is bit-identical to core's full analysis of the trial
// network.
func (b *Baseline) Extend(cand topo.Connection) (*Extension, error) {
	return b.ExtendContext(context.Background(), cand)
}

// ExtendContext is Extend with cooperative cancellation: the unit replay
// loop checks the context between units (and recomputed units observe it
// internally), returning its error once it is done. An uncancelled call is
// bit-identical to Extend.
func (b *Baseline) ExtendContext(ctx context.Context, cand topo.Connection) (*Extension, error) {
	// Trial in caller units, candidate appended last so existing
	// connection indices are stable.
	trialOrig := &topo.Network{
		Servers:     b.orig.Servers,
		Connections: append(append([]topo.Connection(nil), b.orig.Connections...), cand),
	}
	// The baseline's own network was validated when it was built, so only
	// the candidate needs checking — O(candidate) via the cached checker
	// instead of re-validating (and re-sorting) the whole trial network on
	// every admission test.
	if err := b.chk.ValidateExtend(trialOrig); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	// Checker for the would-be promoted baseline: reuses the witness order
	// (recomputing it only for routes that disagree with it) and extends
	// the name set by the candidate.
	pchk := b.chk.Extend(trialOrig)
	// Trial in normalized units: the scale depends only on the servers,
	// which the candidate does not change.
	trial := trialOrig
	if b.scale != 1 {
		ncand := cand
		normalizeConnection(&ncand, b.scale)
		trial = &topo.Network{
			Servers:     b.norm.Servers,
			Connections: append(append([]topo.Connection(nil), b.norm.Connections...), ncand),
		}
	}
	// core.check inspects only the servers (e.g. the FIFO-only rule),
	// which the candidate does not change and newBaseline already checked.
	mkExt := func(res *Result, stats ExtendStats, promoted *Baseline) *Extension {
		return &Extension{Stats: stats, res: res, scale: b.scale, promoted: promoted}
	}
	// An unstable baseline has an empty trace, so the loop below simply
	// recomputes every unit — still exact, never wrong.
	if !trial.Stable() {
		// The full pass would degrade everything to +Inf before any unit
		// ran; an unstable trial is never committed, but keep Promote
		// total by handing back an unstable baseline.
		res := allInf(b.core.name(), trial)
		promoted := &Baseline{core: b.core, orig: trialOrig, norm: trial, scale: b.scale,
			res: res, trace: map[string]*unitTrace{}, unstable: true, chk: pchk}
		return mkExt(res, ExtendStats{Affected: len(b.orig.Connections)}, promoted), nil
	}
	units, err := b.trialUnits(trial, pchk)
	if err != nil {
		return nil, err
	}
	idx := b.extendIndex(trial)
	p := newSparsePropagation(trial)
	candIdx := len(trial.Connections) - 1
	dirty := map[int]bool{candIdx: true}
	stats := ExtendStats{}
	newTrace := make(map[string]*unitTrace, len(units))
	for _, u := range units {
		if canceled(ctx) {
			return nil, ctxErr(ctx.Err())
		}
		conns := u.crossing(idx)
		old := b.trace[u.key()]
		isDirty := old == nil
		if !isDirty {
			for _, c := range conns {
				if dirty[c] {
					isDirty = true
					break
				}
			}
		}
		if isDirty {
			ok, err := b.core.apply(ctx, trial, idx, u, p)
			if err != nil {
				return nil, err
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, ctxErr(cerr)
			}
			if !ok {
				res := allInf(b.core.name(), trial)
				promoted := &Baseline{core: b.core, orig: trialOrig, norm: trial, scale: b.scale,
					res: res, trace: map[string]*unitTrace{}, unstable: true, chk: pchk}
				return mkExt(res, ExtendStats{Affected: len(b.orig.Connections)}, promoted), nil
			}
			for _, c := range conns {
				dirty[c] = true
			}
			newTrace[u.key()] = recordUnit(u, conns, p)
			stats.RecomputedUnits++
		} else {
			replayUnit(old, p)
			newTrace[u.key()] = old
			stats.ReplayedUnits++
		}
	}
	stats.Affected = len(dirty) - 1
	promoted := &Baseline{
		core:  b.core,
		orig:  trialOrig,
		norm:  trial,
		scale: b.scale,
		res:   p.result(b.core.name()),
		trace: newTrace,
		chk:   pchk,
		units: units,
		idx:   idx,
	}
	return mkExt(promoted.res, stats, promoted), nil
}

// removeConnection returns a copy of conns without index remove.
func removeConnection(conns []topo.Connection, remove int) []topo.Connection {
	out := make([]topo.Connection, 0, len(conns)-1)
	out = append(out, conns[:remove]...)
	out = append(out, conns[remove+1:]...)
	return out
}

// remapShrunkTrace rebuilds a recorded unit trace with connection indices
// shifted down past the removed one. Clean units are never crossed by the
// removed connection (that is what makes them clean), so its entry is
// absent by construction; the guard keeps a would-be bug loud in tests
// rather than silently replaying stale state.
func remapShrunkTrace(t *unitTrace, removed int) *unitTrace {
	// Traces are immutable once recorded, so when no index clears the
	// removed one — releases of recently admitted connections, the common
	// churn shape — the remap is the identity and the trace is shared
	// instead of copied.
	needsRemap := false
	for i := range t.post {
		c := t.post[i].conn
		if c == removed {
			panic("analysis: shrink replayed a unit crossed by the removed connection")
		}
		if c > removed {
			needsRemap = true
		}
	}
	if !needsRemap {
		return t
	}
	out := &unitTrace{post: append([]connTrace(nil), t.post...), backlog: t.backlog}
	for i := range out.post {
		if out.post[i].conn > removed {
			out.post[i].conn--
		}
	}
	return out
}

// Shrink analyzes the baseline's network with the connection at index
// remove released, recomputing only the units inside the removed
// connection's interference closure and replaying the recorded traces
// (indices remapped) for every other unit. The result is bit-identical to
// core's full analysis of the shrunken network, by the same induction as
// Extend: a unit not crossed by the removed connection and crossed by no
// dirty survivor saw exactly the same crossing set and entry states in the
// baseline run, so its recorded outputs are what recomputation would
// produce. The returned Extension's Result covers the survivors in their
// new (shifted) indexing, and Promote hands back a baseline for the
// shrunken network at no extra cost.
func (b *Baseline) Shrink(remove int) (*Extension, error) {
	return b.ShrinkContext(context.Background(), remove)
}

// ShrinkContext is Shrink with cooperative cancellation between (and
// inside) recomputed units. An uncancelled call is bit-identical to Shrink.
func (b *Baseline) ShrinkContext(ctx context.Context, remove int) (*Extension, error) {
	if remove < 0 || remove >= len(b.orig.Connections) {
		return nil, fmt.Errorf("analysis: shrink index %d out of range [0,%d)", remove, len(b.orig.Connections))
	}
	trialOrig := &topo.Network{
		Servers:     b.orig.Servers,
		Connections: removeConnection(b.orig.Connections, remove),
	}
	// No re-validation: a valid network stays valid under connection
	// removal. The servers are untouched, every survivor was individually
	// valid, the name set only shrinks, and the route graph loses edges,
	// so no cycle can appear. core.check likewise inspects only the
	// (unchanged) servers. Skipping the O(network) checks here is what
	// keeps a release proportional to its affected set.
	pchk := b.chk.Shrink(b.orig.Connections[remove])
	// Shrunken trial in normalized units: the scale depends only on the
	// servers, which a release does not change.
	trial := trialOrig
	if b.scale != 1 {
		trial = &topo.Network{
			Servers:     b.norm.Servers,
			Connections: removeConnection(b.norm.Connections, remove),
		}
	}
	mkExt := func(res *Result, stats ExtendStats, promoted *Baseline) *Extension {
		return &Extension{Stats: stats, res: res, scale: b.scale, promoted: promoted}
	}
	// Releasing traffic can restore stability, so an unstable baseline does
	// not imply an unstable trial: its empty trace just recomputes every
	// unit below. The converse cannot happen, but keep the same guard as
	// Extend so the degenerate case stays total.
	if !trial.Stable() {
		res := allInf(b.core.name(), trial)
		promoted := &Baseline{core: b.core, orig: trialOrig, norm: trial, scale: b.scale,
			res: res, trace: map[string]*unitTrace{}, unstable: true, chk: pchk}
		return mkExt(res, ExtendStats{Affected: len(trial.Connections)}, promoted), nil
	}
	units, err := b.trialUnits(trial, pchk)
	if err != nil {
		return nil, err
	}
	idx := trial.ConnectionIndex()
	p := newSparsePropagation(trial)
	dirty := map[int]bool{}
	stats := ExtendStats{}
	newTrace := make(map[string]*unitTrace, len(units))
	for _, u := range units {
		if canceled(ctx) {
			return nil, ctxErr(ctx.Err())
		}
		conns := u.crossing(idx)
		old := b.trace[u.key()]
		isDirty := old == nil
		if !isDirty {
			// The removed connection seeds the closure: every unit it
			// crossed in the baseline run loses a crossing connection and
			// must recompute.
			if old.crosses(remove) {
				isDirty = true
			}
		}
		if !isDirty {
			for _, c := range conns {
				if dirty[c] {
					isDirty = true
					break
				}
			}
		}
		if isDirty {
			ok, err := b.core.apply(ctx, trial, idx, u, p)
			if err != nil {
				return nil, err
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, ctxErr(cerr)
			}
			if !ok {
				res := allInf(b.core.name(), trial)
				promoted := &Baseline{core: b.core, orig: trialOrig, norm: trial, scale: b.scale,
					res: res, trace: map[string]*unitTrace{}, unstable: true, chk: pchk}
				return mkExt(res, ExtendStats{Affected: len(trial.Connections)}, promoted), nil
			}
			for _, c := range conns {
				dirty[c] = true
			}
			newTrace[u.key()] = recordUnit(u, conns, p)
			stats.RecomputedUnits++
		} else {
			t := remapShrunkTrace(old, remove)
			replayUnit(t, p)
			newTrace[u.key()] = t
			stats.ReplayedUnits++
		}
	}
	stats.Affected = len(dirty)
	promoted := &Baseline{
		core:  b.core,
		orig:  trialOrig,
		norm:  trial,
		scale: b.scale,
		res:   p.result(b.core.name()),
		trace: newTrace,
		chk:   pchk,
		units: units,
		idx:   idx,
	}
	return mkExt(promoted.res, stats, promoted), nil
}

// decomposedCore adapts the decomposition analysis to the driver: one unit
// per server, in topological order.
type decomposedCore struct{}

func (decomposedCore) name() string                  { return "Decomposed" }
func (decomposedCore) check(net *topo.Network) error { return nil }

func (decomposedCore) reusableUnits() bool { return true }

func (decomposedCore) units(net *topo.Network) ([]unitSpec, error) {
	order, err := net.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	units := make([]unitSpec, len(order))
	for i, s := range order {
		units[i] = unitSpec{servers: []int{s}}
	}
	return units, nil
}

func (decomposedCore) apply(_ context.Context, net *topo.Network, idx [][]int, u unitSpec, p *propagation) (bool, error) {
	// One server is the unit of cancellation granularity here; the driver
	// checks the context between units. The pooled arena makes the replay
	// loop reuse the same scratch slabs across units.
	s := u.servers[0]
	ar := minplus.GetArena()
	defer ar.Release()
	return decomposedServerStep(net, s, idx[s], p, ar)
}

// integratedCore adapts the integrated analysis: one unit per chain of the
// partition, in subnetwork topological order.
type integratedCore struct {
	a Integrated
}

func (ic integratedCore) name() string { return "Integrated" }

func (ic integratedCore) check(net *topo.Network) error {
	for i, s := range net.Servers {
		if s.Discipline != server.FIFO {
			return fmt.Errorf("analysis: Integrated applies to FIFO networks; server %d is %v", i, s.Discipline)
		}
	}
	return nil
}

// reusableUnits is false for the integrated partition: a candidate whose
// route bridges two chains merges them, so the unit list must be
// re-derived per trial.
func (ic integratedCore) reusableUnits() bool { return false }

func (ic integratedCore) units(net *topo.Network) ([]unitSpec, error) {
	subnets, err := ic.a.partition(net)
	if err != nil {
		return nil, err
	}
	ordered, err := orderSubnetworks(net, subnets)
	if err != nil {
		return nil, err
	}
	units := make([]unitSpec, len(ordered))
	for i, sn := range ordered {
		units[i] = unitSpec{servers: sn.servers}
	}
	return units, nil
}

func (ic integratedCore) apply(ctx context.Context, net *topo.Network, idx [][]int, u unitSpec, p *propagation) (bool, error) {
	return analyzeChain(ctx, net, idx, u.servers, p, ic.a.DeconvPropagation), nil
}
