package analysis

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"delaycalc/internal/minplus"
)

// sumSorted adds the map's curves in deterministic (key-sorted) order so
// results do not depend on map iteration. It is the one shared aggregate
// helper of the analysis layer (the FIFO and static-priority analyzers
// both fold envelopes through it), built on the k-way minplus.SumN instead
// of a pairwise Add fold.
func sumSorted(m map[int]minplus.Curve) minplus.Curve {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	curves := make([]minplus.Curve, len(keys))
	for i, k := range keys {
		curves[i] = m[k]
	}
	return minplus.SumN(curves...)
}

// sumConns sums the envelopes of the listed connections at one position in
// list order (callers keep run membership sorted).
func sumConns(env map[int]minplus.Curve, conns []int) minplus.Curve {
	curves := make([]minplus.Curve, len(conns))
	for i, c := range conns {
		curves[i] = env[c]
	}
	return minplus.SumN(curves...)
}

// runAggregates is the per-iteration aggregate cache of one chain: for
// every chain position, the partial sum of each run's member envelopes at
// that position. The total aggregate at a position and the entry/cross
// aggregates of every interval the DP explores are k-way sums of these
// partials, so no per-interval re-summation over individual connections is
// ever needed.
type runAggregates struct {
	runs []*run
	// partial[i][ri] is the sum of runs[ri].conns' envelopes at chain
	// position i; only positions inside the run's interval are populated.
	partial [][]minplus.Curve
}

func newRunAggregates(nPos int, runs []*run) *runAggregates {
	ra := &runAggregates{runs: runs, partial: make([][]minplus.Curve, nPos)}
	for i := range ra.partial {
		ra.partial[i] = make([]minplus.Curve, len(runs))
	}
	return ra
}

// fill computes the partial sums of every run present at position i from
// the position's envelope map.
func (ra *runAggregates) fill(i int, env map[int]minplus.Curve) {
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			ra.partial[i][ri] = sumConns(env, r.conns)
		}
	}
}

// total returns the full aggregate at position i (sum over every run
// present there, in run order).
func (ra *runAggregates) total(i int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			curves = append(curves, ra.partial[i][ri])
		}
	}
	return minplus.SumN(curves...)
}

// covering returns the sum at position at of the partials of runs whose
// interval covers [lo, hi] — the through-aggregate of the interval.
func (ra *runAggregates) covering(at, lo, hi int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= lo && hi <= r.hi {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	return minplus.SumN(curves...)
}

// crossAt returns the cross traffic of interval [lo, hi] at position at:
// the partials of runs present at the position whose interval does not
// cover [lo, hi].
func (ra *runAggregates) crossAt(at, lo, hi int) minplus.Curve {
	curves := make([]minplus.Curve, 0, len(ra.runs))
	for ri, r := range ra.runs {
		if r.lo <= at && at <= r.hi && !(r.lo <= lo && hi <= r.hi) {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	return minplus.SumN(curves...)
}

// parallelValues evaluates f(0..n-1) across the available cores into a
// slice. Each slot is written by exactly one worker and f is pure, so the
// result is identical to a sequential evaluation regardless of
// scheduling. Workers check ctx between evaluations and stop early once
// it is done, leaving the remaining slots zero; callers must discard the
// slice after cancellation (they surface ctx.Err() instead).
func parallelValues(ctx context.Context, n int, f func(int) float64) []float64 {
	vals := make([]float64, n)
	workers := maxParallelWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if canceled(ctx) {
				break
			}
			vals[i] = f(i)
		}
		return vals
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || canceled(ctx) {
					return
				}
				vals[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return vals
}
