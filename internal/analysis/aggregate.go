package analysis

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"delaycalc/internal/minplus"
)

// sumSorted adds the map's curves in deterministic (key-sorted) order so
// results do not depend on map iteration. It is the one shared aggregate
// helper of the analysis layer (the FIFO and static-priority analyzers
// both fold envelopes through it), built on the k-way minplus.SumN instead
// of a pairwise Add fold.
func sumSorted(m map[int]minplus.Curve) minplus.Curve {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	curves := make([]minplus.Curve, len(keys))
	for i, k := range keys {
		curves[i] = m[k]
	}
	return minplus.SumN(curves...)
}

// runAggregates is the per-iteration aggregate cache of one chain: for
// every chain position, the partial sum of each run's member envelopes at
// that position. The total aggregate at a position and the entry/cross
// aggregates of every interval the DP explores are k-way sums of these
// partials, so no per-interval re-summation over individual connections is
// ever needed. All partial and derived curves are drawn from the owning
// chain's arena and die with it; the cache is used strictly sequentially.
type runAggregates struct {
	ar   *minplus.Arena
	runs []*run
	base []int // member-slot bases, shared with the owning chainScratch
	// partial[i][ri] is the sum of runs[ri].conns' envelopes at chain
	// position i; only positions inside the run's interval are populated
	// (entries outside it are never read). Rows slice the reusable flat
	// backing, so steady-state chains allocate nothing here.
	flat    []minplus.Curve
	partial [][]minplus.Curve
	scratch []minplus.Curve // reusable operand buffer for the k-way sums
}

// init points the cache at the current chain's runs and re-slices the
// partial table to nPos x len(runs); stale entries from a previous chain
// are never read (every read is guarded by the covering-run predicate
// whose entries fill rewrote this chain).
func (ra *runAggregates) init(ar *minplus.Arena, nPos int, runs []*run, base []int) {
	ra.ar, ra.runs, ra.base = ar, runs, base
	ra.flat = resize(ra.flat, nPos*len(runs))
	ra.partial = resize(ra.partial, nPos)
	for i := range ra.partial {
		ra.partial[i] = ra.flat[i*len(runs) : (i+1)*len(runs)]
	}
}

// fill computes the partial sums of every run present at position i from
// the position's slot-indexed envelope row.
func (ra *runAggregates) fill(i int, env []minplus.Curve) {
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			curves := ra.scratch[:0]
			b := ra.base[ri]
			for j := range r.conns {
				curves = append(curves, env[b+j])
			}
			ra.partial[i][ri] = ra.ar.SumNSlice(curves)
			ra.scratch = curves[:0]
		}
	}
}

// total returns the full aggregate at position i (sum over every run
// present there, in run order).
func (ra *runAggregates) total(i int) minplus.Curve {
	curves := ra.scratch[:0]
	for ri, r := range ra.runs {
		if r.lo <= i && i <= r.hi {
			curves = append(curves, ra.partial[i][ri])
		}
	}
	ra.scratch = curves[:0]
	return ra.ar.SumNSlice(curves)
}

// covering returns the sum at position at of the partials of runs whose
// interval covers [lo, hi] — the through-aggregate of the interval.
func (ra *runAggregates) covering(at, lo, hi int) minplus.Curve {
	curves := ra.scratch[:0]
	for ri, r := range ra.runs {
		if r.lo <= lo && hi <= r.hi {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	ra.scratch = curves[:0]
	return ra.ar.SumNSlice(curves)
}

// crossAt returns the cross traffic of interval [lo, hi] at position at:
// the partials of runs present at the position whose interval does not
// cover [lo, hi].
func (ra *runAggregates) crossAt(at, lo, hi int) minplus.Curve {
	curves := ra.scratch[:0]
	for ri, r := range ra.runs {
		if r.lo <= at && at <= r.hi && !(r.lo <= lo && hi <= r.hi) {
			curves = append(curves, ra.partial[at][ri])
		}
	}
	ra.scratch = curves[:0]
	return ra.ar.SumNSlice(curves)
}

// parallelValues evaluates f(0..n-1) across the available cores into a
// slice. Each slot is written by exactly one worker and f is pure, so the
// result is identical to a sequential evaluation regardless of
// scheduling. Workers check ctx between evaluations and stop early once
// it is done, leaving the remaining slots zero; callers must discard the
// slice after cancellation (they surface ctx.Err() instead).
func parallelValues(ctx context.Context, n int, f func(int) float64) []float64 {
	return parallelValuesArena(ctx, n, func(_ *minplus.Arena, i int) float64 { return f(i) })
}

// parallelValuesArena is parallelValues with a per-worker curve arena:
// each worker draws one arena from the pool, resets it between
// evaluations, and releases it when done, so per-candidate curve scratch
// never reaches the garbage collector. f must not retain arena-backed
// curves past its return.
func parallelValuesArena(ctx context.Context, n int, f func(*minplus.Arena, int) float64) []float64 {
	vals := make([]float64, n)
	workers := maxParallelWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ar := minplus.GetArena()
		defer ar.Release()
		for i := 0; i < n; i++ {
			if canceled(ctx) {
				break
			}
			ar.Reset()
			vals[i] = f(ar, i)
		}
		return vals
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ar := minplus.GetArena()
			defer ar.Release()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || canceled(ctx) {
					return
				}
				ar.Reset()
				vals[i] = f(ar, i)
			}
		}()
	}
	wg.Wait()
	return vals
}
