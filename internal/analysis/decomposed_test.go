package analysis

import (
	"math"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// singleServerNet builds one FIFO server of the given capacity with k
// identical capped token-bucket connections.
func singleServerNet(k int, sigma, rho, capacity float64) *topo.Network {
	net := &topo.Network{
		Servers: []server.Server{{Name: "s0", Capacity: capacity, Discipline: server.FIFO}},
	}
	for i := 0; i < k; i++ {
		net.Connections = append(net.Connections, topo.Connection{
			Bucket:     traffic.TokenBucket{Sigma: sigma, Rho: rho},
			AccessRate: capacity,
			Path:       []int{0},
		})
	}
	return net
}

func TestDecomposedSingleServerClosedForm(t *testing.T) {
	// k identical capped (sigma, rho) flows into a FIFO server of rate C:
	// the aggregate is k*min(C t, sigma + rho t); the worst backlog grows
	// until the per-flow knee t* = sigma/(C - rho), so the delay bound is
	// (k-1) * sigma / (C - rho).
	cases := []struct {
		k                   int
		sigma, rho, c, want float64
	}{
		{3, 1, 0.2, 1, 2.5}, // 2*1/0.8
		{4, 1, 0.125, 1, 24.0 / 7},
		{2, 2, 0.5, 2, 4.0 / 3}, // 1*2/1.5
		{1, 1, 0.5, 1, 0},       // a single flow through a line suffers no queueing
	}
	for _, tc := range cases {
		net := singleServerNet(tc.k, tc.sigma, tc.rho, tc.c)
		res, err := (Decomposed{}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Connections {
			if got := res.Bound(i); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("k=%d sigma=%g rho=%g C=%g: bound = %g, want %g",
					tc.k, tc.sigma, tc.rho, tc.c, got, tc.want)
			}
		}
	}
}

func TestDecomposedPureBucketBurstSum(t *testing.T) {
	// Uncapped token buckets dump their bursts instantaneously: the local
	// delay is the total burst over the capacity (plus self smoothing; for
	// pure buckets the sup is at t -> 0+ giving sum sigma / C).
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 2, Discipline: server.FIFO}},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 3, Rho: 0.5}, Path: []int{0}},
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.5}, Path: []int{0}},
		},
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Bound(0), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("bound = %g, want %g", got, want)
	}
}

func TestDecomposedUnstableNetwork(t *testing.T) {
	net := singleServerNet(3, 1, 0.4, 1) // total rate 1.2 > 1
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if !math.IsInf(res.Bound(i), 1) {
			t.Errorf("unstable network: bound %d = %g, want +Inf", i, res.Bound(i))
		}
	}
}

func TestDecomposedStagesSumToBound(t *testing.T) {
	net, err := topo.PaperTandem(5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range net.Connections {
		sum := 0.0
		for _, st := range res.Stages[i] {
			sum += st.Delay
		}
		if math.Abs(sum-res.Bound(i)) > 1e-9 {
			t.Errorf("connection %d: stages sum %g != bound %g", i, sum, res.Bound(i))
		}
		if len(res.Stages[i]) != len(c.Path) {
			t.Errorf("connection %d: %d stages for %d hops", i, len(res.Stages[i]), len(c.Path))
		}
	}
}

func TestDecomposedMonotoneInLoadAndSize(t *testing.T) {
	prev := 0.0
	for _, u := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		net, err := topo.PaperTandem(4, u)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Decomposed{}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound(0) <= prev {
			t.Errorf("bound not increasing in load: %g after %g", res.Bound(0), prev)
		}
		prev = res.Bound(0)
	}
	prev = 0.0
	for _, n := range []int{1, 2, 4, 8} {
		net, err := topo.PaperTandem(n, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Decomposed{}).Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound(0) <= prev {
			t.Errorf("bound not increasing in size: %g after %g", res.Bound(0), prev)
		}
		prev = res.Bound(0)
	}
}

func TestDecomposedCrossConnectionsCheaperThanConn0(t *testing.T) {
	net, err := topo.PaperTandem(6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(net.Connections); i++ {
		if res.Bound(i) >= res.Bound(0) {
			t.Errorf("cross connection %d bound %g >= conn0 bound %g", i, res.Bound(i), res.Bound(0))
		}
	}
}

func TestDecomposedStaticPriority(t *testing.T) {
	// Two classes at one server: high priority sees only itself; low
	// priority waits for the high burst too.
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.StaticPriority}},
		Connections: []topo.Connection{
			{Name: "hi", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{0}, Priority: 0},
			{Name: "lo", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{0}, Priority: 1},
		},
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound(0) >= res.Bound(1) {
		t.Errorf("high priority %g should beat low priority %g", res.Bound(0), res.Bound(1))
	}
	// A single capped flow alone on a line has zero queueing delay.
	if res.Bound(0) > 1e-9 {
		t.Errorf("highest priority lone flow delay = %g, want 0", res.Bound(0))
	}
	// FIFO on the same traffic sits between the two priorities.
	for i := range net.Servers {
		net.Servers[i].Discipline = server.FIFO
	}
	fres, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Bound(0) <= fres.Bound(0) && fres.Bound(1) <= res.Bound(1)+1e-9) {
		t.Errorf("FIFO bounds %g/%g not between SP bounds %g/%g",
			fres.Bound(0), fres.Bound(1), res.Bound(0), res.Bound(1))
	}
}

func TestDecomposedGuaranteedRate(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{
			{Capacity: 1, Discipline: server.GuaranteedRate, Latency: 0.1},
			{Capacity: 1, Discipline: server.GuaranteedRate, Latency: 0.1},
		},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 2, Rho: 0.3}, Path: []int{0, 1}, Rate: 0.5},
			{Bucket: traffic.TokenBucket{Sigma: 2, Rho: 0.3}, Path: []int{0, 1}, Rate: 0.5},
		},
	}
	res, err := (Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	// Per hop: T + sigma'/R with burst growing by rho*d per hop.
	d1 := 0.1 + 2.0/0.5
	d2 := 0.1 + (2.0+0.3*d1)/0.5
	want := d1 + d2
	if math.Abs(res.Bound(0)-want) > 1e-9 {
		t.Errorf("GR decomposed bound = %g, want %g", res.Bound(0), want)
	}
}

func TestDecomposedGuaranteedRateOversubscribed(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{{Capacity: 1, Discipline: server.GuaranteedRate}},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.3}, Path: []int{0}, Rate: 0.7},
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.3}, Path: []int{0}, Rate: 0.7},
		},
	}
	if _, err := (Decomposed{}).Analyze(net); err == nil {
		t.Fatal("expected oversubscription error")
	}
}

func TestDecomposedInvalidNetwork(t *testing.T) {
	net := &topo.Network{} // no servers
	if _, err := (Decomposed{}).Analyze(net); err == nil {
		t.Fatal("expected validation error")
	}
}
