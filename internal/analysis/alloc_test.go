package analysis

import (
	"context"
	"math"
	"runtime/debug"
	"testing"

	"delaycalc/internal/minplus"
)

// TestThetaSearchAllocCeiling gates the steady-state allocations of the
// theta-search inner loop: a warm-arena k=2 enumeration (candidate grids,
// memoized residuals, gated-convex decompositions, and the per-pair slope
// merges) must run the pooled path end to end without heap traffic beyond
// a small constant. testing.AllocsPerRun pins GOMAXPROCS to 1, so the
// enumeration takes parallelMinArena's sequential branch and draws its
// worker arena from the warm pool deterministically.
func TestThetaSearchAllocCeiling(t *testing.T) {
	caps := [2]float64{1.0, 1.0}
	cross := [2]minplus.Curve{
		minplus.TokenBucket(0.3, 0.25),
		minplus.TokenBucket(0.2, 0.35),
	}
	agg := minplus.TokenBucketCapped(0.5, 0.4, 1.0)
	local := [2]float64{1.1, 0.9}

	ar := minplus.GetArena()
	defer ar.Release()

	run := func() float64 {
		ar.Reset()
		cands := make([][]float64, 2)
		for i := 0; i < 2; i++ {
			cands[i] = thetaCandidatesArena(ar, caps[i], cross[i], local[i])
		}
		ts := &thetaSearch{
			ctx:   context.Background(),
			agg:   agg,
			cands: cands,
			ar:    ar,
			residual: func(i int, theta float64) minplus.Curve {
				return fifoResidual(ar, caps[i], cross[i], theta)
			},
		}
		return ts.minimize()
	}

	want := run() // warm the chain arena and the worker arena pool
	if math.IsInf(want, 1) || math.IsNaN(want) {
		t.Fatalf("theta search returned %v on a stable two-server scenario", want)
	}
	// The worker arena lives in a sync.Pool, which the GC drains at will:
	// under heap pressure (-race, -count) a collection between runs evicts
	// the warm arena and every run re-allocates it, tripping the ceiling
	// for a reason that has nothing to do with the inner loop. Suspend GC
	// for the measurement so the pool stays warm and the count is the
	// loop's own steady state.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(10, func() {
		if got := run(); got != want {
			t.Errorf("theta search drifted: got %v, want %v", got, want)
		}
	})
	t.Logf("theta-search k=2 allocs/op: %.0f (bound %v)", allocs, want)
	// minimize builds its memo spine (res outer slice, the two parts rows,
	// the cands header) on the heap per call; everything per-candidate must
	// come from the arenas.
	if allocs > 8 {
		t.Errorf("theta-search inner loop allocates %.0f times per search, ceiling is 8", allocs)
	}
}
