package analysis

import (
	"fmt"
	"math"

	"delaycalc/internal/minplus"
	"delaycalc/internal/topo"
)

// LocalDeadline returns connection c's per-hop relative deadline: its
// end-to-end deadline split evenly over its hops. EDF servers require a
// positive end-to-end deadline.
func LocalDeadline(net *topo.Network, c int) (float64, error) {
	conn := net.Connections[c]
	if conn.Deadline <= 0 {
		return 0, fmt.Errorf("analysis: connection %d needs a positive deadline for EDF scheduling", c)
	}
	return conn.Deadline / float64(len(conn.Path)), nil
}

// edfLocalDelays computes per-connection local delay bounds at an EDF
// server. Fluid EDF serves work in deadline order, so within a busy period
// starting at 0, all work with deadline at most tau has arrived by the
// curves shifted by each flow's local deadline:
//
//	W(tau) = sum_j alpha_j(tau - D_j).
//
// Every bit with deadline tau completes by W(tau)/C, hence by tau + L with
// the uniform lateness bound
//
//	L = sup_tau { (W(tau) - C*tau)/C }  (clamped at 0),
//
// and each flow's local delay is bounded by D_j + L: the classical EDF
// schedulability analysis (L == 0 means every local deadline is met). The
// returned slice is indexed like conns.
func edfLocalDelays(net *topo.Network, s int, conns []int, p *propagation) ([]float64, error) {
	srv := net.Servers[s]
	shifted := make([]minplus.Curve, 0, len(conns))
	deadlines := make([]float64, len(conns))
	for i, c := range conns {
		d, err := LocalDeadline(net, c)
		if err != nil {
			return nil, err
		}
		deadlines[i] = d
		// alpha_j(tau - D_j) is zero for tau <= D_j: propagated envelopes
		// can have a positive value at 0, which a plain Delay would
		// extend leftwards.
		shifted = append(shifted, minplus.ZeroUntil(minplus.Delay(p.env[c], d), d))
	}
	w := minplus.Sum(shifted...)
	lateness := minplus.SupDiff(w, minplus.Rate(srv.Capacity)) / srv.Capacity
	if lateness < 0 {
		lateness = 0
	}
	if math.IsInf(lateness, 1) {
		return nil, fmt.Errorf("analysis: EDF server %d is unstable", s)
	}
	out := make([]float64, len(conns))
	for i := range conns {
		out[i] = deadlines[i] + lateness + srv.Latency
	}
	return out, nil
}

// EDFSchedulable reports whether every local deadline at server s is met
// (zero lateness) for the current source envelopes: the classical EDF
// admission test sum_j alpha_j(t - D_j) <= C*t.
func EDFSchedulable(net *topo.Network, s int) (bool, error) {
	if err := checkAnalyzable(net); err != nil {
		return false, err
	}
	net, _ = normalizeNetwork(net)
	p := newPropagation(net)
	conns := net.ConnectionsAt(s)
	if len(conns) == 0 {
		return true, nil
	}
	delays, err := edfLocalDelays(net, s, conns, p)
	if err != nil {
		return false, err
	}
	for i, c := range conns {
		d, err := LocalDeadline(net, c)
		if err != nil {
			return false, err
		}
		if delays[i] > d+net.Servers[s].Latency+1e-12 {
			return false, nil
		}
	}
	return true, nil
}
