package traffic

import (
	"fmt"
	"math"

	"delaycalc/internal/minplus"
)

// Trace is a recorded variable-bit-rate source: the size in bits of each
// frame, emitted at a fixed frame interval. The classic example is an
// MPEG elementary stream, whose I/P/B structure makes single token buckets
// a poor fit and motivated multi-segment "empirical envelopes" (D-BIND and
// the deterministic VBR-video literature the paper cites).
type Trace struct {
	Frames   []float64 // frame sizes in bits
	Interval float64   // seconds between frame starts
}

// Validate reports whether the trace is usable.
func (tr Trace) Validate() error {
	if len(tr.Frames) == 0 {
		return fmt.Errorf("traffic: empty trace")
	}
	if tr.Interval <= 0 {
		return fmt.Errorf("traffic: non-positive frame interval %g", tr.Interval)
	}
	for i, f := range tr.Frames {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("traffic: bad frame size %g at %d", f, i)
		}
	}
	return nil
}

// TotalBits returns the sum of all frame sizes.
func (tr Trace) TotalBits() float64 {
	s := 0.0
	for _, f := range tr.Frames {
		s += f
	}
	return s
}

// MeanRate returns the long-run rate of the trace.
func (tr Trace) MeanRate() float64 {
	return tr.TotalBits() / (float64(len(tr.Frames)) * tr.Interval)
}

// PeakFrame returns the largest frame.
func (tr Trace) PeakFrame() float64 {
	p := 0.0
	for _, f := range tr.Frames {
		if f > p {
			p = f
		}
	}
	return p
}

// WindowSums returns, for every window length k = 1..len(Frames), the
// maximum total bits in any k consecutive frames of the trace played
// periodically — the exact cyclic "empirical envelope" at frame
// granularity. Cyclic (wrap-around) windows matter: a burst at the end of
// the trace adjacent to the burst at its start is a real window of the
// repeated stream, and an envelope built from within-trace windows only
// would not dominate it.
func (tr Trace) WindowSums() []float64 {
	n := len(tr.Frames)
	// Prefix sums over two concatenated copies cover every cyclic window
	// of length at most n.
	prefix := make([]float64, 2*n+1)
	for i := 0; i < 2*n; i++ {
		prefix[i+1] = prefix[i] + tr.Frames[i%n]
	}
	out := make([]float64, n)
	for k := 1; k <= n; k++ {
		best := 0.0
		for i := 0; i < n; i++ {
			if s := prefix[i+k] - prefix[i]; s > best {
				best = s
			}
		}
		out[k-1] = best
	}
	return out
}

// Envelope returns a concave piecewise-linear arrival curve that dominates
// the trace played periodically: the upper concave hull of the cyclic
// window sums (k * Interval, WindowSums[k]), with a final slope of exactly
// the mean rate (trailing hull segments flatter than the mean are
// dropped). Domination over arbitrarily long windows follows because a
// window of q*n + r frames sums to q*TotalBits plus one cyclic r-window,
// and every hull slope is at least the mean rate, so
// env(x + q*n*T) >= env(x) + q*TotalBits. The envelope's value for any
// interval shorter than one frame time is the peak frame (a frame arrives
// atomically at its instant).
func (tr Trace) Envelope() (minplus.Curve, error) {
	if err := tr.Validate(); err != nil {
		return minplus.Curve{}, err
	}
	sums := tr.WindowSums()
	n := len(sums)
	// k frames (instants spaced Interval apart) fit in any window wider
	// than (k-1)*Interval, so the hull point for k frames sits at
	// x = (k-1)*Interval. k = 1 lands at the origin: the jump to the peak
	// frame.
	type pt struct{ x, y float64 }
	pts := []pt{{0, sums[0]}}
	for k := 2; k <= n; k++ {
		pts = append(pts, pt{float64(k-1) * tr.Interval, sums[k-1]})
	}
	// Tail slope: the repetition rate — total bits per (n * Interval).
	tail := tr.TotalBits() / (float64(n) * tr.Interval)
	// Upper concave hull (monotone chain on slopes, anchored at pts[0]).
	hull := []pt{pts[0]}
	for _, p := range pts[1:] {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			s1 := (b.y - a.y) / (b.x - a.x)
			s2 := (p.y - b.y) / (p.x - b.x)
			if s2 <= s1+1e-12 {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Drop trailing hull points whose incoming slope is below the tail
	// rate: the envelope must end at least as steep as the repetition
	// rate, and concavity requires slopes to be non-increasing.
	for len(hull) >= 2 {
		a, b := hull[len(hull)-2], hull[len(hull)-1]
		if (b.y-a.y)/(b.x-a.x) >= tail-1e-12 {
			break
		}
		hull = hull[:len(hull)-1]
	}
	cpts := []minplus.Point{{X: 0, Y: 0}}
	for _, p := range hull {
		cpts = append(cpts, minplus.Point{X: p.x, Y: p.y})
	}
	return minplus.New(cpts, tail), nil
}

// FitTokenBucket returns the minimal bucket depth sigma such that a
// (sigma, rho) token bucket dominates the repeated trace, for a given
// sustained rate rho >= MeanRate:
//
//	sigma(rho) = max_k { WindowSums[k] - rho * (k-1) * Interval },
//
// (k frames fit in a window of width just over (k-1)*Interval), clamped
// below by the peak frame (a whole frame arrives at one instant).
func (tr Trace) FitTokenBucket(rho float64) (TokenBucket, error) {
	if err := tr.Validate(); err != nil {
		return TokenBucket{}, err
	}
	if rho < tr.MeanRate() {
		return TokenBucket{}, fmt.Errorf("traffic: rate %g below trace mean rate %g", rho, tr.MeanRate())
	}
	sigma := tr.PeakFrame()
	for k, s := range tr.WindowSums() {
		// Index k holds the sum of k+1 frames, spanning k intervals.
		if v := s - rho*float64(k)*tr.Interval; v > sigma {
			sigma = v
		}
	}
	return TokenBucket{Sigma: sigma, Rho: rho}, nil
}

// SyntheticGOP builds a deterministic MPEG-like trace: groups of pictures
// of the given length where the first frame (I) is iSize bits, every
// third following frame (P) is pSize, and the rest (B) are bSize. It is
// the standard shape used to exercise VBR-video envelopes without real
// trace data.
func SyntheticGOP(gops, gopLen int, iSize, pSize, bSize, interval float64) Trace {
	var frames []float64
	for g := 0; g < gops; g++ {
		for i := 0; i < gopLen; i++ {
			switch {
			case i == 0:
				frames = append(frames, iSize)
			case i%3 == 0:
				frames = append(frames, pSize)
			default:
				frames = append(frames, bSize)
			}
		}
	}
	return Trace{Frames: frames, Interval: interval}
}
