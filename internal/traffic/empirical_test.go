package traffic

import (
	"math"
	"testing"
)

func gopTrace() Trace {
	// 4 GOPs of 6 frames: I=8000, P=3000, B=1000 bits, 40 ms spacing.
	return SyntheticGOP(4, 6, 8000, 3000, 1000, 0.04)
}

func TestTraceValidate(t *testing.T) {
	if err := gopTrace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{},
		{Frames: []float64{1}, Interval: 0},
		{Frames: []float64{-1}, Interval: 1},
		{Frames: []float64{math.NaN()}, Interval: 1},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTraceStatistics(t *testing.T) {
	tr := gopTrace()
	// Per GOP: I + P (frames 3) + 4 B = 8000 + 3000 + 4*1000 = 15000.
	if got, want := tr.TotalBits(), 4*15000.0; got != want {
		t.Errorf("total = %g, want %g", got, want)
	}
	if got := tr.PeakFrame(); got != 8000 {
		t.Errorf("peak = %g, want 8000", got)
	}
	if got, want := tr.MeanRate(), 4*15000.0/(24*0.04); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean rate = %g, want %g", got, want)
	}
}

func TestWindowSumsCyclic(t *testing.T) {
	// [9, 1, 1, 9]: the worst 2-window wraps around (9+9).
	tr := Trace{Frames: []float64{9, 1, 1, 9}, Interval: 1}
	sums := tr.WindowSums()
	want := []float64{9, 18, 19, 20}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("window sums = %v, want %v", sums, want)
		}
	}
}

func TestWindowSumsMonotone(t *testing.T) {
	sums := gopTrace().WindowSums()
	for i := 1; i < len(sums); i++ {
		if sums[i] < sums[i-1] {
			t.Fatalf("window sums not monotone at %d: %v", i, sums[:i+1])
		}
	}
}

func TestEnvelopeDominatesPeriodicWindows(t *testing.T) {
	tr := Trace{Frames: []float64{9, 1, 1, 9}, Interval: 1}
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	// Exact periodic window sums for windows up to 4 periods: a window of
	// q*n + r frames is q*Total + cyclic r-window.
	sums := tr.WindowSums()
	total := tr.TotalBits()
	n := len(tr.Frames)
	for k := 1; k <= 4*n; k++ {
		q, r := k/n, k%n
		exact := float64(q) * total
		if r > 0 {
			exact += sums[r-1]
		}
		// Frames arrive atomically at instants (k-1)*T .. so a window of
		// length just over (k-1)*T captures k frames; probe the envelope
		// just past that width.
		width := float64(k-1)*tr.Interval + 1e-9
		if got := env.EvalRight(width); got < exact-1e-6 {
			t.Errorf("k=%d frames: envelope(%g) = %g below exact %g", k, width, got, exact)
		}
	}
	if !env.IsConcave() {
		t.Error("envelope should be concave")
	}
}

func TestEnvelopeTailIsMeanRate(t *testing.T) {
	tr := gopTrace()
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(env.FinalSlope()-tr.MeanRate()) > 1e-9 {
		t.Errorf("tail slope %g, want mean rate %g", env.FinalSlope(), tr.MeanRate())
	}
}

func TestFitTokenBucket(t *testing.T) {
	tr := gopTrace()
	tb, err := tr.FitTokenBucket(tr.MeanRate() * 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// The bucket must dominate every cyclic window.
	for k, s := range tr.WindowSums() {
		window := float64(k) * tr.Interval // k+1 frames span k intervals
		if tb.Sigma+tb.Rho*window < s-1e-9 {
			t.Errorf("bucket %v below window sum %g at k=%d", tb, s, k+1)
		}
	}
	if tb.Sigma < tr.PeakFrame() {
		t.Errorf("sigma %g below peak frame", tb.Sigma)
	}
	// Higher rate, smaller bucket.
	tb2, err := tr.FitTokenBucket(tr.MeanRate() * 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Sigma > tb.Sigma {
		t.Errorf("sigma did not shrink with rate: %g vs %g", tb2.Sigma, tb.Sigma)
	}
	if _, err := tr.FitTokenBucket(tr.MeanRate() * 0.5); err == nil {
		t.Error("expected error for rate below mean")
	}
}

func TestEnvelopeTighterThanFittedBucket(t *testing.T) {
	// The multi-segment envelope should be no larger than any fitted
	// token bucket anywhere (it is the hull of the exact windows).
	tr := gopTrace()
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tr.FitTokenBucket(tr.MeanRate() * 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 50; i++ {
		x := 3 * float64(i) / 50
		if env.EvalRight(x) > tb.Sigma+tb.Rho*x+1e-6 {
			t.Errorf("envelope %g above fitted bucket %g at %g",
				env.EvalRight(x), tb.Sigma+tb.Rho*x, x)
		}
	}
}

func TestSyntheticGOPStructure(t *testing.T) {
	tr := SyntheticGOP(2, 6, 8, 3, 1, 0.04)
	want := []float64{8, 1, 1, 3, 1, 1, 8, 1, 1, 3, 1, 1}
	if len(tr.Frames) != len(want) {
		t.Fatalf("frames = %v", tr.Frames)
	}
	for i := range want {
		if tr.Frames[i] != want[i] {
			t.Fatalf("frames = %v, want %v", tr.Frames, want)
		}
	}
}
