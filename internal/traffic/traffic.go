// Package traffic defines the source-traffic models and per-connection
// descriptors used by the delay analyzers: token buckets, peak-rate-limited
// TSpecs, general piecewise-linear envelopes, and the burstiness
// propagation rules that track how an envelope deforms as traffic crosses
// servers ("b'(I) = b(I + d)" in the paper's notation).
package traffic

import (
	"fmt"

	"delaycalc/internal/minplus"
)

// TokenBucket describes a (sigma, rho) leaky-bucket regulator: at most
// Sigma + Rho*I bits may enter the network in any interval of length I.
type TokenBucket struct {
	Sigma float64 // bucket depth (burst), in bits
	Rho   float64 // token rate (sustained rate), in bits per second
}

// Validate reports whether the parameters are usable.
func (tb TokenBucket) Validate() error {
	if tb.Sigma < 0 {
		return fmt.Errorf("traffic: negative burst %g", tb.Sigma)
	}
	if tb.Rho < 0 {
		return fmt.Errorf("traffic: negative rate %g", tb.Rho)
	}
	return nil
}

// Envelope returns the pure token-bucket arrival curve min{I==0 ? 0 :
// Sigma + Rho*I}.
func (tb TokenBucket) Envelope() minplus.Curve {
	return minplus.TokenBucket(tb.Sigma, tb.Rho)
}

// EnvelopeCapped returns the arrival curve of the bucket behind an access
// link of capacity c: min{c*I, Sigma + Rho*I}. This is the source model of
// the paper's evaluation (traffic cannot enter faster than the line rate).
func (tb TokenBucket) EnvelopeCapped(c float64) minplus.Curve {
	return minplus.TokenBucketCapped(tb.Sigma, tb.Rho, c)
}

// String renders the bucket as "(sigma, rho)".
func (tb TokenBucket) String() string {
	return fmt.Sprintf("(%g, %g)", tb.Sigma, tb.Rho)
}

// Conforms checks that packet emissions of the given size at the given
// (non-decreasing) instants stay within the bucket envelope: every window
// (s, t] must carry at most Sigma + Rho*(t-s) bits. With f(i) = i*L -
// Rho*t_i (cumulative bits minus refill, f(0) = 0 for the window opening
// at time zero with a full bucket), the condition is f(j) - min_{i<j} f(i)
// <= Sigma for every j, which one pass computes exactly. A small relative
// tolerance absorbs the floating-point equalities exact greedy sources sit
// on. It returns nil when the trace conforms, or an error naming the first
// offending packet — the guard falsification uses to reject adversarial
// traces that overdraw their declared envelope (a delay observed under
// non-conforming traffic says nothing about the bound).
func (tb TokenBucket) Conforms(times []float64, packetSize float64) error {
	if packetSize <= 0 {
		return fmt.Errorf("traffic: non-positive packet size %g", packetSize)
	}
	eps := 1e-9 * (tb.Sigma + tb.Rho + packetSize + 1)
	prev := 0.0
	minF := 0.0 // f(0): the window opening at time zero
	for i, t := range times {
		if t < prev {
			return fmt.Errorf("traffic: packet %d emitted at %g before packet %d at %g", i, t, i-1, prev)
		}
		if t < 0 {
			return fmt.Errorf("traffic: packet %d emitted at negative time %g", i, t)
		}
		f := float64(i+1)*packetSize - tb.Rho*t
		if f-minF > tb.Sigma+eps {
			return fmt.Errorf("traffic: packet %d at t=%g overdraws bucket %v by %g bits",
				i, t, tb, f-minF-tb.Sigma)
		}
		if f < minF {
			minF = f
		}
		prev = t
	}
	return nil
}

// TSpec is the IETF-style traffic specification: a token bucket plus a peak
// rate and maximum packet size. Its envelope is
// min{M + P*I, Sigma + Rho*I}.
type TSpec struct {
	TokenBucket
	Peak    float64 // peak rate P >= Rho
	MaxUnit float64 // maximum packet size M
}

// Validate reports whether the TSpec is self-consistent.
func (ts TSpec) Validate() error {
	if err := ts.TokenBucket.Validate(); err != nil {
		return err
	}
	if ts.Peak < ts.Rho {
		return fmt.Errorf("traffic: peak rate %g below sustained rate %g", ts.Peak, ts.Rho)
	}
	if ts.MaxUnit < 0 {
		return fmt.Errorf("traffic: negative maximum unit %g", ts.MaxUnit)
	}
	return nil
}

// Envelope returns min{M + P*I, Sigma + Rho*I} (with the value 0 at I=0).
func (ts TSpec) Envelope() minplus.Curve {
	peak := minplus.TokenBucket(ts.MaxUnit, ts.Peak)
	sustained := minplus.TokenBucket(ts.Sigma, ts.Rho)
	return minplus.Min(peak, sustained)
}

// Shifted returns the envelope deformed by a delay bound d upstream:
// b'(I) = b(I + d). For a token bucket this is the classical burstiness
// increase sigma' = sigma + rho*d. Shifted applies to any envelope curve.
func Shifted(envelope minplus.Curve, d float64) minplus.Curve {
	if d < 0 {
		panic("traffic: Shifted with negative delay")
	}
	if d == 0 {
		return envelope
	}
	return minplus.ShiftLeft(envelope, d)
}

// ShiftedBucket returns the token bucket that results from pushing tb
// through a stage with delay bound d: (sigma + rho*d, rho).
func ShiftedBucket(tb TokenBucket, d float64) TokenBucket {
	if d < 0 {
		panic("traffic: ShiftedBucket with negative delay")
	}
	return TokenBucket{Sigma: tb.Sigma + tb.Rho*d, Rho: tb.Rho}
}

// Aggregate sums the envelopes of a set of flows.
func Aggregate(envelopes ...minplus.Curve) minplus.Curve {
	return minplus.Sum(envelopes...)
}
