package traffic

import (
	"math"
	"testing"

	"delaycalc/internal/minplus"
)

func TestTokenBucketValidate(t *testing.T) {
	if err := (TokenBucket{Sigma: 1, Rho: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (TokenBucket{Sigma: -1}).Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	if err := (TokenBucket{Rho: -1}).Validate(); err == nil {
		t.Error("negative rho accepted")
	}
}

func TestTokenBucketEnvelopes(t *testing.T) {
	tb := TokenBucket{Sigma: 2, Rho: 0.5}
	env := tb.Envelope()
	if got := env.Eval(0); got != 0 {
		t.Errorf("envelope at 0 = %g, want 0", got)
	}
	if got := env.Eval(4); math.Abs(got-4) > 1e-12 {
		t.Errorf("envelope at 4 = %g, want 4", got)
	}
	capped := tb.EnvelopeCapped(1)
	if got := capped.Eval(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("capped envelope at 1 = %g, want 1 (line limited)", got)
	}
	if capped.Eval(1) > env.EvalRight(1)+1e-12 {
		t.Error("capped envelope must not exceed the pure bucket")
	}
}

func TestTokenBucketString(t *testing.T) {
	if got := (TokenBucket{Sigma: 2, Rho: 0.5}).String(); got != "(2, 0.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestTSpec(t *testing.T) {
	ts := TSpec{TokenBucket: TokenBucket{Sigma: 10, Rho: 1}, Peak: 4, MaxUnit: 1}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	env := ts.Envelope()
	// Early: peak-limited (1 + 4t); late: bucket-limited (10 + t).
	if got, want := env.Eval(1), 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("TSpec envelope at 1 = %g, want %g", got, want)
	}
	if got, want := env.Eval(10), 20.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("TSpec envelope at 10 = %g, want %g", got, want)
	}
	bad := TSpec{TokenBucket: TokenBucket{Sigma: 1, Rho: 2}, Peak: 1}
	if err := bad.Validate(); err == nil {
		t.Error("peak below sustained rate accepted")
	}
}

func TestShifted(t *testing.T) {
	tb := TokenBucket{Sigma: 2, Rho: 0.5}
	env := tb.EnvelopeCapped(1)
	sh := Shifted(env, 3)
	for _, x := range []float64{0, 1, 5, 10} {
		if got, want := sh.Eval(x), env.Eval(x+3); math.Abs(got-want) > 1e-12 {
			t.Errorf("shifted at %g = %g, want %g", x, got, want)
		}
	}
	if !Shifted(env, 0).Equal(env) {
		t.Error("zero shift must be identity")
	}
}

func TestShiftedBucket(t *testing.T) {
	tb := TokenBucket{Sigma: 2, Rho: 0.5}
	sb := ShiftedBucket(tb, 4)
	if sb.Sigma != 4 || sb.Rho != 0.5 {
		t.Errorf("shifted bucket = %v, want (4, 0.5)", sb)
	}
	// Consistency with the envelope shift for the pure bucket: for t > 0
	// both give sigma + rho*(t + d).
	env := Shifted(tb.Envelope(), 4)
	if got, want := env.Eval(2), sb.Envelope().EvalRight(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("envelope shift %g != bucket shift %g", got, want)
	}
}

func TestAggregate(t *testing.T) {
	a := TokenBucket{Sigma: 1, Rho: 0.25}.EnvelopeCapped(1)
	b := TokenBucket{Sigma: 2, Rho: 0.25}.EnvelopeCapped(1)
	agg := Aggregate(a, b)
	for _, x := range []float64{0.5, 2, 8} {
		if got, want := agg.Eval(x), a.Eval(x)+b.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("aggregate at %g = %g, want %g", x, got, want)
		}
	}
	if !Aggregate().Equal(minplus.Zero()) {
		t.Error("empty aggregate should be zero")
	}
}

func TestShiftedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	Shifted(minplus.Zero(), -1)
}

func TestTokenBucketConforms(t *testing.T) {
	tb := TokenBucket{Sigma: 1, Rho: 0.5}
	// A full-bucket burst followed by rate-spaced packets conforms.
	conforming := []float64{0, 0, 0, 0, 0.4, 0.8, 1.2}
	if err := tb.Conforms(conforming, 0.2); err != nil {
		t.Fatalf("conforming trace rejected: %v", err)
	}
	// Six packets at time zero overdraw the one-bit bucket.
	if err := tb.Conforms([]float64{0, 0, 0, 0, 0, 0}, 0.2); err == nil {
		t.Fatal("overdrawn burst accepted")
	}
	// Refilling too fast: packets at twice the token rate drain out.
	fast := make([]float64, 20)
	for i := range fast {
		fast[i] = float64(i) * 0.1 // rate 2, bucket refills at 0.5
	}
	if err := tb.Conforms(fast, 0.2); err == nil {
		t.Fatal("over-rate trace accepted")
	}
	// Non-monotone times are rejected outright.
	if err := tb.Conforms([]float64{0.5, 0.1}, 0.2); err == nil {
		t.Fatal("non-monotone trace accepted")
	}
	// Invalid packet size.
	if err := tb.Conforms([]float64{0}, 0); err == nil {
		t.Fatal("zero packet size accepted")
	}
}

func TestTokenBucketConformsSimSources(t *testing.T) {
	// Every adversarially-placed greedy pattern must pass its own
	// bucket's conformance check (falsify depends on this guard).
	tb := TokenBucket{Sigma: 1, Rho: 0.25}
	if err := tb.Conforms([]float64{0, 0, 0, 0, 1.0, 2.0}, 0.25); err != nil {
		t.Fatalf("greedy-shaped trace rejected: %v", err)
	}
}
