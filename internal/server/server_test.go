package server

import (
	"math"
	"testing"
)

func TestDisciplineString(t *testing.T) {
	cases := map[Discipline]string{
		FIFO:           "FIFO",
		StaticPriority: "StaticPriority",
		GuaranteedRate: "GuaranteedRate",
		EDF:            "EDF",
		Discipline(9):  "Discipline(9)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestDisciplineValid(t *testing.T) {
	for _, d := range []Discipline{FIFO, StaticPriority, GuaranteedRate, EDF} {
		if !d.Valid() {
			t.Errorf("%v should be valid", d)
		}
	}
	if Discipline(-1).Valid() || Discipline(99).Valid() {
		t.Error("out-of-range disciplines should be invalid")
	}
}

func TestServerValidate(t *testing.T) {
	ok := Server{Name: "s", Capacity: 1, Discipline: FIFO}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Server{
		{Capacity: 0},
		{Capacity: -1},
		{Capacity: 1, Latency: -1},
		{Capacity: 1, Discipline: Discipline(42)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestServiceLine(t *testing.T) {
	s := Server{Capacity: 2, Discipline: FIFO}
	line := s.ServiceLine()
	if got := line.Eval(3); math.Abs(got-6) > 1e-12 {
		t.Errorf("service line at 3 = %g, want 6", got)
	}
	lat := Server{Capacity: 2, Discipline: FIFO, Latency: 1}
	dl := lat.ServiceLine()
	if got := dl.Eval(1); got != 0 {
		t.Errorf("latency service line at 1 = %g, want 0", got)
	}
	if got := dl.Eval(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("latency service line at 2 = %g, want 2", got)
	}
}
