// Package server models the packet servers (switch output ports) of the
// network: their capacity and their scheduling discipline. The paper's
// analysis targets FIFO multiplexors; static-priority and guaranteed-rate
// servers are supported as the extensions the paper announces.
package server

import (
	"fmt"

	"delaycalc/internal/minplus"
)

// Discipline identifies the scheduling policy of a server.
type Discipline int

const (
	// FIFO serves packets in arrival order across all connections.
	FIFO Discipline = iota
	// StaticPriority serves the highest-priority backlogged class first;
	// within a class, FIFO order applies. Lower numeric priority values
	// are served first.
	StaticPriority
	// GuaranteedRate models a fair-queueing-like server that offers each
	// connection a rate-latency service curve (rate = its reserved rate,
	// latency = MaxUnit/Capacity-style scheduling latency).
	GuaranteedRate
	// EDF serves the packet whose local (per-hop) deadline expires first.
	// Connections need an end-to-end Deadline, split evenly over their
	// hops.
	EDF
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "FIFO"
	case StaticPriority:
		return "StaticPriority"
	case GuaranteedRate:
		return "GuaranteedRate"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Valid reports whether d is a known discipline.
func (d Discipline) Valid() bool {
	return d >= FIFO && d <= EDF
}

// Server is one store-and-forward multiplexing point (an output port of a
// switch) with a fixed outgoing capacity.
type Server struct {
	Name       string
	Capacity   float64 // outgoing line rate, bits per second
	Discipline Discipline
	// Latency is a fixed processing/propagation latency added to every
	// packet regardless of queueing (0 for the paper's model).
	Latency float64
}

// Validate reports whether the server parameters are usable.
func (s Server) Validate() error {
	if s.Capacity <= 0 {
		return fmt.Errorf("server %q: non-positive capacity %g", s.Name, s.Capacity)
	}
	if s.Latency < 0 {
		return fmt.Errorf("server %q: negative latency %g", s.Name, s.Latency)
	}
	if !s.Discipline.Valid() {
		return fmt.Errorf("server %q: unknown discipline %d", s.Name, int(s.Discipline))
	}
	return nil
}

// ServiceLine returns the raw service curve of the transmission line:
// Capacity * t, delayed by the fixed latency.
func (s Server) ServiceLine() minplus.Curve {
	return minplus.Delay(minplus.Rate(s.Capacity), s.Latency)
}
