package topo

import (
	"fmt"
	"sort"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// Fabric is a physical topology: named nodes joined by directed links.
// Each link is one store-and-forward multiplexing point (a switch output
// port), so materializing a Fabric turns every link into one server of the
// analyzable Network. Demands are routed over fewest-hop paths.
type Fabric struct {
	Links []Link
}

// Link is one directed edge of the fabric.
type Link struct {
	From, To   string
	Capacity   float64
	Discipline server.Discipline
	Latency    float64
}

// Demand is one requested connection between fabric nodes.
type Demand struct {
	Name       string
	From, To   string
	Bucket     traffic.TokenBucket
	AccessRate float64
	Priority   int
	Rate       float64
	Deadline   float64
}

// nodeSet returns the sorted node names of the fabric.
func (f *Fabric) nodeSet() []string {
	set := map[string]bool{}
	for _, l := range f.Links {
		set[l.From] = true
		set[l.To] = true
	}
	nodes := make([]string, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Route returns the link indices of a fewest-hop path from one node to
// another (breadth-first search; ties broken by link order for
// determinism), or an error when no path exists.
func (f *Fabric) Route(from, to string) ([]int, error) {
	if from == to {
		return nil, fmt.Errorf("topo: demand from %q to itself", from)
	}
	adj := map[string][]int{} // node -> outgoing link indices
	for i, l := range f.Links {
		adj[l.From] = append(adj[l.From], i)
	}
	if len(adj[from]) == 0 {
		return nil, fmt.Errorf("topo: node %q has no outgoing links", from)
	}
	type hop struct {
		node string
		via  int // link used to reach node
		prev int // index into visited order, -1 for the source
	}
	visited := map[string]int{from: 0}
	order := []hop{{node: from, via: -1, prev: -1}}
	for head := 0; head < len(order); head++ {
		cur := order[head]
		if cur.node == to {
			var links []int
			for i := head; order[i].via >= 0; i = order[i].prev {
				links = append(links, order[i].via)
			}
			// Reverse into source-to-destination order.
			for l, r := 0, len(links)-1; l < r; l, r = l+1, r-1 {
				links[l], links[r] = links[r], links[l]
			}
			return links, nil
		}
		for _, li := range adj[cur.node] {
			next := f.Links[li].To
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = len(order)
			order = append(order, hop{node: next, via: li, prev: head})
		}
	}
	return nil, fmt.Errorf("topo: no path from %q to %q", from, to)
}

// Network materializes the fabric with the given demands into an
// analyzable Network: one server per link, one connection per demand,
// each routed over its fewest-hop path. The resulting route set must be
// feedforward; Network returns an error otherwise (pick link directions or
// demands accordingly — e.g. route rings in one direction only).
func (f *Fabric) Network(demands []Demand) (*Network, error) {
	if len(f.Links) == 0 {
		return nil, fmt.Errorf("topo: fabric has no links")
	}
	net := &Network{}
	for _, l := range f.Links {
		if l.From == l.To {
			return nil, fmt.Errorf("topo: self-loop link at %q", l.From)
		}
		net.Servers = append(net.Servers, server.Server{
			Name:       l.From + ">" + l.To,
			Capacity:   l.Capacity,
			Discipline: l.Discipline,
			Latency:    l.Latency,
		})
	}
	for _, d := range demands {
		path, err := f.Route(d.From, d.To)
		if err != nil {
			return nil, fmt.Errorf("topo: demand %q: %w", d.Name, err)
		}
		net.Connections = append(net.Connections, Connection{
			Name:       d.Name,
			Bucket:     d.Bucket,
			AccessRate: d.AccessRate,
			Path:       path,
			Priority:   d.Priority,
			Rate:       d.Rate,
			Deadline:   d.Deadline,
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// LineFabric builds a bidirectional line of n nodes named "n0".."n{n-1}"
// with identical links in both directions.
func LineFabric(n int, capacity float64, d server.Discipline) *Fabric {
	f := &Fabric{}
	for i := 0; i+1 < n; i++ {
		a, b := fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)
		f.Links = append(f.Links,
			Link{From: a, To: b, Capacity: capacity, Discipline: d},
			Link{From: b, To: a, Capacity: capacity, Discipline: d},
		)
	}
	return f
}

// StarFabric builds a hub-and-spoke fabric: leaves "l0".."l{n-1}" each
// with links to and from the hub "hub".
func StarFabric(leaves int, capacity float64, d server.Discipline) *Fabric {
	f := &Fabric{}
	for i := 0; i < leaves; i++ {
		l := fmt.Sprintf("l%d", i)
		f.Links = append(f.Links,
			Link{From: l, To: "hub", Capacity: capacity, Discipline: d},
			Link{From: "hub", To: l, Capacity: capacity, Discipline: d},
		)
	}
	return f
}
