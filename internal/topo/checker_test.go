package topo

import (
	"fmt"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// checkerNet is a 4-server diamond with enough admitted connections to
// exercise name collisions and both witness-consistent and
// witness-divergent candidate routes.
func checkerNet() *Network {
	return &Network{
		Servers: []server.Server{
			{Name: "in", Capacity: 1, Discipline: server.FIFO},
			{Name: "up", Capacity: 1, Discipline: server.FIFO},
			{Name: "down", Capacity: 1, Discipline: server.FIFO},
			{Name: "out", Capacity: 1, Discipline: server.FIFO},
		},
		Connections: []Connection{
			{Name: "c0", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 1, 3}},
			{Name: "c1", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 2, 3}},
		},
	}
}

func extended(base *Network, cand Connection) *Network {
	return &Network{
		Servers:     base.Servers,
		Connections: append(append([]Connection(nil), base.Connections...), cand),
	}
}

// TestCheckerMatchesFullValidate is the contract test: over every kind of
// candidate — valid, self-inconsistent, colliding, off the witness order,
// and cycle-forming — ValidateExtend must agree with the full
// trial.Validate() down to the exact error string.
func TestCheckerMatchesFullValidate(t *testing.T) {
	base := checkerNet()
	k, err := NewChecker(base)
	if err != nil {
		t.Fatal(err)
	}
	ok := Connection{Name: "x", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 3}}
	cases := []struct {
		name string
		mut  func(*Connection)
	}{
		{"valid forward route", func(c *Connection) {}},
		{"valid single hop", func(c *Connection) { c.Path = []int{2} }},
		// 2 -> 1 contradicts the cached witness (1 before 2) but the
		// extended graph is still acyclic: the fallback must accept it.
		{"valid off-witness route", func(c *Connection) { c.Path = []int{2, 1} }},
		{"cycle", func(c *Connection) { c.Path = []int{3, 0} }},
		{"duplicate name", func(c *Connection) { c.Name = "c1" }},
		{"negative sigma", func(c *Connection) { c.Bucket.Sigma = -1 }},
		{"rho above access", func(c *Connection) { c.Bucket.Rho = 2 }},
		{"empty path", func(c *Connection) { c.Path = nil }},
		{"path out of range", func(c *Connection) { c.Path = []int{0, 9} }},
		{"repeated server", func(c *Connection) { c.Path = []int{0, 1, 0} }},
		{"negative deadline", func(c *Connection) { c.Deadline = -1 }},
		{"negative access rate", func(c *Connection) { c.AccessRate = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := ok
			tc.mut(&cand)
			trial := extended(base, cand)
			want := trial.Validate()
			got := k.ValidateExtend(trial)
			if (want == nil) != (got == nil) {
				t.Fatalf("fast path disagrees: got %v, full validate %v", got, want)
			}
			if want != nil && got.Error() != want.Error() {
				t.Fatalf("error text diverged:\n fast: %s\n full: %s", got, want)
			}
		})
	}
}

// TestCheckerNilDegradesToFull pins the nil-receiver contract every call
// site leans on: no checker means the full validation, same answer.
func TestCheckerNilDegradesToFull(t *testing.T) {
	base := checkerNet()
	var k *Checker
	bad := Connection{Name: "c0", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0}}
	trial := extended(base, bad)
	got := k.ValidateExtend(trial)
	want := trial.Validate()
	if got == nil || want == nil || got.Error() != want.Error() {
		t.Fatalf("nil checker: got %v, want %v", got, want)
	}
	if k.Extend(trial) != nil || k.Shrink(bad) != nil {
		t.Fatal("nil checker must derive nil checkers")
	}
}

// TestCheckerExtendShrinkChain drives a checker through a mixed
// admit/release sequence — including an off-witness admit that forces the
// witness recomputation — re-checking the full-validate agreement after
// every step.
func TestCheckerExtendShrinkChain(t *testing.T) {
	net := checkerNet()
	k, err := NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	admit := func(cand Connection) {
		t.Helper()
		trial := extended(net, cand)
		if err := k.ValidateExtend(trial); err != nil {
			t.Fatalf("admit %q: %v", cand.Name, err)
		}
		k = k.Extend(trial)
		net = trial
	}
	release := func(name string) {
		t.Helper()
		for i, c := range net.Connections {
			if c.Name == name {
				k = k.Shrink(c)
				net = &Network{
					Servers:     net.Servers,
					Connections: append(append([]Connection(nil), net.Connections[:i]...), net.Connections[i+1:]...),
				}
				return
			}
		}
		t.Fatalf("release %q: not admitted", name)
	}
	probe := func(step string) {
		t.Helper()
		if k == nil {
			t.Fatalf("%s: checker degraded to nil", step)
		}
		// A duplicate of an admitted name must be rejected with the exact
		// full-validate error; a fresh name on a forward route must pass.
		for _, c := range net.Connections {
			dup := c
			trial := extended(net, dup)
			got, want := k.ValidateExtend(trial), trial.Validate()
			if got == nil || want == nil || got.Error() != want.Error() {
				t.Fatalf("%s: dup %q: got %v, want %v", step, c.Name, got, want)
			}
		}
		fresh := Connection{Name: fmt.Sprintf("probe-%s", step),
			Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.01}, AccessRate: 1, Path: []int{0, 3}}
		trial := extended(net, fresh)
		if err := k.ValidateExtend(trial); err != nil {
			t.Fatalf("%s: fresh probe rejected: %v", step, err)
		}
	}

	admit(Connection{Name: "a", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 1}})
	probe("after-admit")
	// Off-witness but acyclic (2 -> 1): Extend must recompute the witness,
	// and routes that agree with the NEW order must go back to passing.
	admit(Connection{Name: "b", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{2, 1}})
	probe("after-off-witness-admit")
	// With 2 -> 1 admitted, 1 -> 2 now forms a cycle and must be rejected
	// identically by both paths.
	cyc := Connection{Name: "cyc", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{1, 2}}
	trial := extended(net, cyc)
	got, want := k.ValidateExtend(trial), trial.Validate()
	if got == nil || want == nil || got.Error() != want.Error() {
		t.Fatalf("cycle after off-witness admit: got %v, want %v", got, want)
	}
	release("a")
	probe("after-release")
	// The released name must be admissible again.
	admit(Connection{Name: "a", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{0, 1}})
	probe("after-readmit")
}
