// Package topo models the network under analysis: a set of servers (switch
// output ports), a set of connections with fixed routes across those
// servers, and the structural checks the paper's algorithms require —
// in particular that the connection routes are feedforward (cycle-free), a
// precondition of Algorithm Integrated stated in the paper's conclusion.
package topo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// Connection is one unidirectional flow with a token-bucket-regulated
// source and a fixed route through the network.
type Connection struct {
	Name   string
	Bucket traffic.TokenBucket
	// AccessRate caps how fast source traffic can physically enter the
	// network (the speed of the access line). Zero means uncapped (a pure
	// token-bucket burst arrives instantaneously).
	AccessRate float64
	// Path lists the indices (into Network.Servers) of the servers the
	// connection traverses, in order.
	Path []int
	// Priority is the static-priority class (lower = more urgent); only
	// meaningful at StaticPriority servers.
	Priority int
	// Rate is the reserved service rate at GuaranteedRate servers.
	Rate float64
	// Deadline is the end-to-end delay requirement used by admission
	// control; zero means best effort.
	Deadline float64
	// Envelope optionally replaces the token-bucket source model with an
	// arbitrary arrival curve, e.g. a trace-derived empirical envelope
	// (traffic.Trace.Envelope). When set, Bucket.Rho must equal the
	// envelope's long-run rate (its final slope), which keeps
	// utilization and stability accounting consistent.
	Envelope *minplus.Curve
}

// SourceEnvelope returns the arrival curve of the connection at its entry
// point: the custom envelope when one is set, otherwise the token bucket,
// in both cases limited by the access line rate (the pointwise minimum
// with the line is a valid — if slightly loose — model of the access
// multiplexing).
func (c Connection) SourceEnvelope() minplus.Curve {
	if c.Envelope != nil {
		env := *c.Envelope
		if c.AccessRate > 0 {
			env = minplus.Min(minplus.Rate(c.AccessRate), env)
		}
		return env
	}
	if c.AccessRate > 0 {
		return c.Bucket.EnvelopeCapped(c.AccessRate)
	}
	return c.Bucket.Envelope()
}

// Validate reports whether the connection is self-consistent against a
// server count.
func (c Connection) Validate(nServers int) error {
	if err := c.Bucket.Validate(); err != nil {
		return fmt.Errorf("connection %q: %w", c.Name, err)
	}
	if c.AccessRate < 0 {
		return fmt.Errorf("connection %q: negative access rate %g", c.Name, c.AccessRate)
	}
	if c.AccessRate > 0 && c.Bucket.Rho > c.AccessRate {
		return fmt.Errorf("connection %q: sustained rate %g exceeds access rate %g", c.Name, c.Bucket.Rho, c.AccessRate)
	}
	if len(c.Path) == 0 {
		return fmt.Errorf("connection %q: empty path", c.Name)
	}
	seen := make(map[int]bool, len(c.Path))
	for _, s := range c.Path {
		if s < 0 || s >= nServers {
			return fmt.Errorf("connection %q: path references server %d of %d", c.Name, s, nServers)
		}
		if seen[s] {
			return fmt.Errorf("connection %q: path visits server %d twice", c.Name, s)
		}
		seen[s] = true
	}
	if c.Rate < 0 {
		return fmt.Errorf("connection %q: negative reserved rate %g", c.Name, c.Rate)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("connection %q: negative deadline %g", c.Name, c.Deadline)
	}
	if c.Envelope != nil {
		if !c.Envelope.IsNonDecreasing() {
			return fmt.Errorf("connection %q: custom envelope must be non-decreasing", c.Name)
		}
		if math.Abs(c.Envelope.FinalSlope()-c.Bucket.Rho) > 1e-9*(1+math.Abs(c.Bucket.Rho)) {
			return fmt.Errorf("connection %q: envelope long-run rate %g disagrees with Bucket.Rho %g",
				c.Name, c.Envelope.FinalSlope(), c.Bucket.Rho)
		}
	}
	return nil
}

// Network is the complete model handed to an analyzer.
type Network struct {
	Servers     []server.Server
	Connections []Connection
}

// Validate checks servers, connections, and the feedforward property.
func (n *Network) Validate() error {
	if len(n.Servers) == 0 {
		return fmt.Errorf("topo: network has no servers")
	}
	names := make(map[string]bool, len(n.Servers))
	for i, s := range n.Servers {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("topo: server %d: %w", i, err)
		}
		if s.Name != "" {
			if names[s.Name] {
				return fmt.Errorf("topo: duplicate server name %q", s.Name)
			}
			names[s.Name] = true
		}
	}
	cnames := make(map[string]bool, len(n.Connections))
	for i, c := range n.Connections {
		if err := c.Validate(len(n.Servers)); err != nil {
			return fmt.Errorf("topo: connection %d: %w", i, err)
		}
		if c.Name != "" {
			if cnames[c.Name] {
				return fmt.Errorf("topo: duplicate connection name %q", c.Name)
			}
			cnames[c.Name] = true
		}
	}
	if _, err := n.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// ConnectionsAt returns the indices of connections whose path includes
// server s.
func (n *Network) ConnectionsAt(s int) []int {
	var out []int
	for i, c := range n.Connections {
		for _, hop := range c.Path {
			if hop == s {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// HopIndex returns the position of server s in connection c's path, or -1.
func (n *Network) HopIndex(c, s int) int {
	for i, hop := range n.Connections[c].Path {
		if hop == s {
			return i
		}
	}
	return -1
}

// edges returns the server precedence relation induced by connection
// routes: u -> v whenever some connection visits u immediately before v.
func (n *Network) edges() map[int]map[int]bool {
	e := make(map[int]map[int]bool)
	for _, c := range n.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			u, v := c.Path[i], c.Path[i+1]
			if e[u] == nil {
				e[u] = make(map[int]bool)
			}
			e[u][v] = true
		}
	}
	return e
}

// TopologicalOrder returns the servers sorted so that every connection
// visits them in increasing order, or an error when the route graph has a
// cycle (the network is not feedforward). Ties are broken by server index
// for determinism.
func (n *Network) TopologicalOrder() ([]int, error) {
	e := n.edges()
	indeg := make([]int, len(n.Servers))
	for _, outs := range e {
		for v := range outs {
			indeg[v]++
		}
	}
	ready := make([]int, 0, len(n.Servers))
	for i := range n.Servers {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, len(n.Servers))
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var next []int
		for v := range e[u] {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
		sort.Ints(ready)
	}
	if len(order) != len(n.Servers) {
		return nil, fmt.Errorf("topo: connection routes induce a cycle; the network is not feedforward")
	}
	return order, nil
}

// IsFeedforward reports whether the route graph is acyclic.
func (n *Network) IsFeedforward() bool {
	_, err := n.TopologicalOrder()
	return err == nil
}

// Utilization returns, per server, the sum of sustained rates crossing it
// divided by its capacity.
func (n *Network) Utilization() []float64 {
	u := make([]float64, len(n.Servers))
	for _, c := range n.Connections {
		for _, s := range c.Path {
			u[s] += c.Bucket.Rho
		}
	}
	for i := range u {
		u[i] /= n.Servers[i].Capacity
	}
	return u
}

// Stable reports whether every server's long-run input rate is strictly
// below its capacity, the basic feasibility condition for finite delay
// bounds.
func (n *Network) Stable() bool {
	for _, u := range n.Utilization() {
		if u >= 1 {
			return false
		}
	}
	return true
}

// MaxUtilization returns the highest per-server utilization.
func (n *Network) MaxUtilization() float64 {
	m := 0.0
	for _, u := range n.Utilization() {
		if u > m {
			m = u
		}
	}
	return m
}

// DOT renders the route graph in Graphviz format: servers as boxes, one
// edge per consecutive hop pair, labeled with the connections using it.
func (n *Network) DOT() string {
	var b strings.Builder
	b.WriteString("digraph network {\n  rankdir=LR;\n")
	for i, s := range n.Servers {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("S%d", i)
		}
		fmt.Fprintf(&b, "  s%d [shape=box,label=%q];\n", i, fmt.Sprintf("%s\nC=%g %s", name, s.Capacity, s.Discipline))
	}
	type edgeKey struct{ u, v int }
	labels := make(map[edgeKey][]string)
	for ci, c := range n.Connections {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("c%d", ci)
		}
		for i := 0; i+1 < len(c.Path); i++ {
			k := edgeKey{c.Path[i], c.Path[i+1]}
			labels[k] = append(labels[k], name)
		}
	}
	keys := make([]edgeKey, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", k.u, k.v, strings.Join(labels[k], ","))
	}
	b.WriteString("}\n")
	return b.String()
}
