// Package topo models the network under analysis: a set of servers (switch
// output ports), a set of connections with fixed routes across those
// servers, and the structural checks the paper's algorithms require —
// in particular that the connection routes are feedforward (cycle-free), a
// precondition of Algorithm Integrated stated in the paper's conclusion.
package topo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// Connection is one unidirectional flow with a token-bucket-regulated
// source and a fixed route through the network.
type Connection struct {
	Name   string
	Bucket traffic.TokenBucket
	// AccessRate caps how fast source traffic can physically enter the
	// network (the speed of the access line). Zero means uncapped (a pure
	// token-bucket burst arrives instantaneously).
	AccessRate float64
	// Path lists the indices (into Network.Servers) of the servers the
	// connection traverses, in order.
	Path []int
	// Priority is the static-priority class (lower = more urgent); only
	// meaningful at StaticPriority servers.
	Priority int
	// Rate is the reserved service rate at GuaranteedRate servers.
	Rate float64
	// Deadline is the end-to-end delay requirement used by admission
	// control; zero means best effort.
	Deadline float64
	// Envelope optionally replaces the token-bucket source model with an
	// arbitrary arrival curve, e.g. a trace-derived empirical envelope
	// (traffic.Trace.Envelope). When set, Bucket.Rho must equal the
	// envelope's long-run rate (its final slope), which keeps
	// utilization and stability accounting consistent.
	Envelope *minplus.Curve
}

// SourceEnvelope returns the arrival curve of the connection at its entry
// point: the custom envelope when one is set, otherwise the token bucket,
// in both cases limited by the access line rate (the pointwise minimum
// with the line is a valid — if slightly loose — model of the access
// multiplexing).
func (c Connection) SourceEnvelope() minplus.Curve {
	if c.Envelope != nil {
		env := *c.Envelope
		if c.AccessRate > 0 {
			env = minplus.Min(minplus.Rate(c.AccessRate), env)
		}
		return env
	}
	if c.AccessRate > 0 {
		return c.Bucket.EnvelopeCapped(c.AccessRate)
	}
	return c.Bucket.Envelope()
}

// Validate reports whether the connection is self-consistent against a
// server count.
func (c Connection) Validate(nServers int) error {
	if err := c.Bucket.Validate(); err != nil {
		return fmt.Errorf("connection %q: %w", c.Name, err)
	}
	if c.AccessRate < 0 {
		return fmt.Errorf("connection %q: negative access rate %g", c.Name, c.AccessRate)
	}
	if c.AccessRate > 0 && c.Bucket.Rho > c.AccessRate {
		return fmt.Errorf("connection %q: sustained rate %g exceeds access rate %g", c.Name, c.Bucket.Rho, c.AccessRate)
	}
	if len(c.Path) == 0 {
		return fmt.Errorf("connection %q: empty path", c.Name)
	}
	seen := make(map[int]bool, len(c.Path))
	for _, s := range c.Path {
		if s < 0 || s >= nServers {
			return fmt.Errorf("connection %q: path references server %d of %d", c.Name, s, nServers)
		}
		if seen[s] {
			return fmt.Errorf("connection %q: path visits server %d twice", c.Name, s)
		}
		seen[s] = true
	}
	if c.Rate < 0 {
		return fmt.Errorf("connection %q: negative reserved rate %g", c.Name, c.Rate)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("connection %q: negative deadline %g", c.Name, c.Deadline)
	}
	if c.Envelope != nil {
		if !c.Envelope.IsNonDecreasing() {
			return fmt.Errorf("connection %q: custom envelope must be non-decreasing", c.Name)
		}
		if math.Abs(c.Envelope.FinalSlope()-c.Bucket.Rho) > 1e-9*(1+math.Abs(c.Bucket.Rho)) {
			return fmt.Errorf("connection %q: envelope long-run rate %g disagrees with Bucket.Rho %g",
				c.Name, c.Envelope.FinalSlope(), c.Bucket.Rho)
		}
	}
	return nil
}

// Network is the complete model handed to an analyzer.
type Network struct {
	Servers     []server.Server
	Connections []Connection
}

// Validate checks servers, connections, and the feedforward property.
func (n *Network) Validate() error {
	if len(n.Servers) == 0 {
		return fmt.Errorf("topo: network has no servers")
	}
	names := make(map[string]bool, len(n.Servers))
	for i, s := range n.Servers {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("topo: server %d: %w", i, err)
		}
		if s.Name != "" {
			if names[s.Name] {
				return fmt.Errorf("topo: duplicate server name %q", s.Name)
			}
			names[s.Name] = true
		}
	}
	cnames := make(map[string]bool, len(n.Connections))
	for i, c := range n.Connections {
		if err := c.Validate(len(n.Servers)); err != nil {
			return fmt.Errorf("topo: connection %d: %w", i, err)
		}
		if c.Name != "" {
			if cnames[c.Name] {
				return fmt.Errorf("topo: duplicate connection name %q", c.Name)
			}
			cnames[c.Name] = true
		}
	}
	if _, err := n.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// ConnectionsAt returns the indices of connections whose path includes
// server s.
func (n *Network) ConnectionsAt(s int) []int {
	var out []int
	for i, c := range n.Connections {
		for _, hop := range c.Path {
			if hop == s {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// ConnectionIndex returns, for every server, the indices of the
// connections whose path includes it, in increasing connection order: the
// batch form of ConnectionsAt, computed in one pass over all routes.
// Analyzers that need the relation at many servers use it instead of
// per-server ConnectionsAt scans, which cost O(connections x path length)
// each.
func (n *Network) ConnectionIndex() [][]int {
	// Counting sort into one flat backing array: per-server rows come out
	// in increasing connection order (routes never repeat a server), in
	// four allocations total instead of per-row append growth.
	start := make([]int, len(n.Servers)+1)
	for _, c := range n.Connections {
		for _, s := range c.Path {
			start[s+1]++
		}
	}
	for s := 1; s <= len(n.Servers); s++ {
		start[s] += start[s-1]
	}
	flat := make([]int, start[len(n.Servers)])
	cur := make([]int, len(n.Servers))
	copy(cur, start)
	for i, c := range n.Connections {
		for _, s := range c.Path {
			flat[cur[s]] = i
			cur[s]++
		}
	}
	idx := make([][]int, len(n.Servers))
	for s := range idx {
		idx[s] = flat[start[s]:start[s+1]:start[s+1]]
	}
	return idx
}

// HopIndex returns the position of server s in connection c's path, or -1.
func (n *Network) HopIndex(c, s int) int {
	for i, hop := range n.Connections[c].Path {
		if hop == s {
			return i
		}
	}
	return -1
}

// edgePairs returns the distinct server precedence pairs induced by
// connection routes — u -> v whenever some connection visits u
// immediately before v — sorted by (u, v). One flat sorted-and-deduped
// slice instead of a map of per-node sets, so fabric-scale graphs
// (hundreds of thousands of hop pairs) build their adjacency with a
// handful of allocations.
func (n *Network) edgePairs() [][2]int {
	total := 0
	for _, c := range n.Connections {
		if len(c.Path) > 1 {
			total += len(c.Path) - 1
		}
	}
	pairs := make([][2]int, 0, total)
	for _, c := range n.Connections {
		for i := 0; i+1 < len(c.Path); i++ {
			pairs = append(pairs, [2]int{c.Path[i], c.Path[i+1]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	w := 0
	for i, p := range pairs {
		if i == 0 || p != pairs[w-1] {
			pairs[w] = p
			w++
		}
	}
	return pairs[:w]
}

// TopologicalOrder returns the servers sorted so that every connection
// visits them in increasing order, or an error when the route graph has a
// cycle (the network is not feedforward). Ties are broken by server index
// for determinism.
func (n *Network) TopologicalOrder() ([]int, error) {
	pairs := n.edgePairs()
	indeg := make([]int, len(n.Servers))
	for _, p := range pairs {
		indeg[p[1]]++
	}
	var ready intMinHeap
	for i := range n.Servers {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	// start[u]..start[u+1] delimits u's successor range in pairs
	// (counting-sort offsets over the sorted pair list).
	start := make([]int, len(n.Servers)+1)
	for _, p := range pairs {
		start[p[0]+1]++
	}
	for u := 1; u <= len(n.Servers); u++ {
		start[u] += start[u-1]
	}
	order := make([]int, 0, len(n.Servers))
	for len(ready) > 0 {
		u := ready.pop()
		order = append(order, u)
		// Newly freed successors enter the heap; popping the global
		// minimum each round reproduces the sorted-queue order exactly.
		for _, p := range pairs[start[u]:start[u+1]] {
			v := p[1]
			indeg[v]--
			if indeg[v] == 0 {
				ready.push(v)
			}
		}
	}
	if len(order) != len(n.Servers) {
		return nil, fmt.Errorf("topo: connection routes induce a cycle; the network is not feedforward")
	}
	return order, nil
}

// intMinHeap is a hand-rolled binary min-heap of server indices, replacing
// the sort-after-every-pop ready queue that made TopologicalOrder
// quadratic on fabric-scale networks. Popping the global minimum each
// round yields exactly the order of the sorted queue.
type intMinHeap []int

func (h *intMinHeap) push(x int) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *intMinHeap) pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l] < s[m] {
			m = l
		}
		if r < n && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// IsFeedforward reports whether the route graph is acyclic.
func (n *Network) IsFeedforward() bool {
	_, err := n.TopologicalOrder()
	return err == nil
}

// Utilization returns, per server, the sum of sustained rates crossing it
// divided by its capacity.
func (n *Network) Utilization() []float64 {
	u := make([]float64, len(n.Servers))
	for _, c := range n.Connections {
		for _, s := range c.Path {
			u[s] += c.Bucket.Rho
		}
	}
	for i := range u {
		u[i] /= n.Servers[i].Capacity
	}
	return u
}

// Stable reports whether every server's long-run input rate is strictly
// below its capacity, the basic feasibility condition for finite delay
// bounds.
func (n *Network) Stable() bool {
	for _, u := range n.Utilization() {
		if u >= 1 {
			return false
		}
	}
	return true
}

// MaxUtilization returns the highest per-server utilization.
func (n *Network) MaxUtilization() float64 {
	m := 0.0
	for _, u := range n.Utilization() {
		if u > m {
			m = u
		}
	}
	return m
}

// DOT renders the route graph in Graphviz format: servers as boxes, one
// edge per consecutive hop pair, labeled with the connections using it.
func (n *Network) DOT() string {
	var b strings.Builder
	b.WriteString("digraph network {\n  rankdir=LR;\n")
	for i, s := range n.Servers {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("S%d", i)
		}
		fmt.Fprintf(&b, "  s%d [shape=box,label=%q];\n", i, fmt.Sprintf("%s\nC=%g %s", name, s.Capacity, s.Discipline))
	}
	type edgeKey struct{ u, v int }
	labels := make(map[edgeKey][]string)
	for ci, c := range n.Connections {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("c%d", ci)
		}
		for i := 0; i+1 < len(c.Path); i++ {
			k := edgeKey{c.Path[i], c.Path[i+1]}
			labels[k] = append(labels[k], name)
		}
	}
	keys := make([]edgeKey, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", k.u, k.v, strings.Join(labels[k], ","))
	}
	b.WriteString("}\n")
	return b.String()
}
