package topo

import (
	"fmt"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// checkInvariants asserts the structural properties every builder output
// must satisfy: a valid spec, every utilization strictly below 1, an
// acyclic (feedforward) route graph, in-range server indices, loop-free
// paths, and unique connection names.
func checkInvariants(t *testing.T, label string, net *Network) {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Errorf("%s: Validate: %v", label, err)
		return
	}
	for s, u := range net.Utilization() {
		if u >= 1 {
			t.Errorf("%s: server %d utilization %g >= 1", label, s, u)
		}
	}
	if !net.Stable() {
		t.Errorf("%s: network not stable", label)
	}
	if !net.IsFeedforward() {
		t.Errorf("%s: route graph has a cycle", label)
	}
	if _, err := net.TopologicalOrder(); err != nil {
		t.Errorf("%s: TopologicalOrder: %v", label, err)
	}
	names := map[string]bool{}
	for _, c := range net.Connections {
		if c.Name != "" {
			if names[c.Name] {
				t.Errorf("%s: duplicate connection name %q", label, c.Name)
			}
			names[c.Name] = true
		}
		if len(c.Path) == 0 {
			t.Errorf("%s: connection %q has an empty path", label, c.Name)
		}
		seen := map[int]bool{}
		for _, s := range c.Path {
			if s < 0 || s >= len(net.Servers) {
				t.Errorf("%s: connection %q references server %d of %d", label, c.Name, s, len(net.Servers))
			}
			if seen[s] {
				t.Errorf("%s: connection %q visits server %d twice", label, c.Name, s)
			}
			seen[s] = true
		}
	}
}

func TestTandemInvariantGrid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for _, load := range []float64{0.1, 0.5, 0.8, 0.95} {
			net, err := PaperTandem(n, load)
			if err != nil {
				t.Fatalf("PaperTandem(%d, %g): %v", n, load, err)
			}
			label := fmt.Sprintf("tandem n=%d load=%g", n, load)
			checkInvariants(t, label, net)
			if got, want := len(net.Connections), 2*n+1; got != want {
				t.Errorf("%s: %d connections, want %d", label, got, want)
			}
			// Interior servers carry exactly four connections, so their
			// utilization is exactly the requested load.
			for s, u := range net.Utilization() {
				if s > 0 && s+1 < n && !almost(u, load) {
					t.Errorf("%s: interior server %d utilization %g, want %g", label, s, u, load)
				}
			}
		}
	}
}

func TestParkingLotInvariantGrid(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, rho := range []float64{0.05, 0.2, 0.45} {
			net, err := ParkingLot(n, 1, rho, 1)
			if err != nil {
				t.Fatalf("ParkingLot(%d, rho=%g): %v", n, rho, err)
			}
			label := fmt.Sprintf("parkinglot n=%d rho=%g", n, rho)
			checkInvariants(t, label, net)
			// Every server carries the main connection plus one cross.
			for s := range net.Servers {
				if got := len(net.ConnectionsAt(s)); got != 2 {
					t.Errorf("%s: server %d carries %d connections, want 2", label, s, got)
				}
			}
		}
	}
}

func TestSinkTreeInvariantGrid(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 4} {
		// Root multiplexes every leaf pair; keep rho small enough that
		// 2^depth connections stay below unit utilization.
		rho := 0.9 / float64(int(1)<<depth)
		net, err := SinkTree(depth, 1, rho, 1)
		if err != nil {
			t.Fatalf("SinkTree(%d): %v", depth, err)
		}
		label := fmt.Sprintf("sinktree depth=%d", depth)
		checkInvariants(t, label, net)
		leaves := 1 << (depth - 1)
		if got, want := len(net.Connections), 2*leaves; got != want {
			t.Errorf("%s: %d connections, want %d", label, got, want)
		}
		// Every connection ends at the root, which therefore carries all
		// of them.
		if got := len(net.ConnectionsAt(0)); got != len(net.Connections) {
			t.Errorf("%s: root carries %d of %d connections", label, got, len(net.Connections))
		}
		for _, c := range net.Connections {
			if c.Path[len(c.Path)-1] != 0 {
				t.Errorf("%s: connection %q does not end at the root: %v", label, c.Name, c.Path)
			}
			if got, want := len(c.Path), depth; got != want {
				t.Errorf("%s: connection %q path length %d, want %d", label, c.Name, got, want)
			}
		}
	}
}

func TestRandomFeedforwardInvariantGrid(t *testing.T) {
	for _, servers := range []int{1, 3, 6, 12} {
		for _, conns := range []int{1, 5, 20} {
			for _, util := range []float64{0.3, 0.7, 0.95} {
				for seed := int64(1); seed <= 3; seed++ {
					net, err := RandomFeedforward(servers, conns, util, seed)
					if err != nil {
						t.Fatalf("RandomFeedforward(%d, %d, %g, %d): %v", servers, conns, util, seed, err)
					}
					label := fmt.Sprintf("randff s=%d c=%d u=%g seed=%d", servers, conns, util, seed)
					checkInvariants(t, label, net)
					// The scaling promise: no server exceeds the requested
					// utilization.
					for s, u := range net.Utilization() {
						if u > util+1e-12 {
							t.Errorf("%s: server %d utilization %g exceeds requested %g", label, s, u, util)
						}
					}
					// Paths must be strictly increasing (the acyclicity
					// guarantee the builder documents).
					for _, c := range net.Connections {
						for i := 1; i < len(c.Path); i++ {
							if c.Path[i] <= c.Path[i-1] {
								t.Errorf("%s: path %v not strictly increasing", label, c.Path)
							}
						}
					}
				}
			}
		}
	}
}

func TestFatTreeInvariantGrid(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		for _, hosts := range []int{1, 3} {
			for _, util := range []float64{0.3, 0.9} {
				net, err := FatTree(k, hosts, util)
				if err != nil {
					t.Fatalf("FatTree(%d, %d, %g): %v", k, hosts, util, err)
				}
				label := fmt.Sprintf("fattree k=%d hosts=%d u=%g", k, hosts, util)
				checkInvariants(t, label, net)
				if got, want := len(net.Servers), k*k*k; got != want {
					t.Errorf("%s: %d servers, want k^3 = %d", label, got, want)
				}
				if got, want := len(net.Connections), k*(k/2)*hosts; got != want {
					t.Errorf("%s: %d connections, want %d", label, got, want)
				}
				// The scaling promise: the most loaded link runs at exactly
				// util, everything else at or below it.
				peak := 0.0
				for s, u := range net.Utilization() {
					if u > util+1e-12 {
						t.Errorf("%s: server %d utilization %g exceeds requested %g", label, s, u, util)
					}
					if u > peak {
						peak = u
					}
				}
				if !almost(peak, util) {
					t.Errorf("%s: peak utilization %g, want %g", label, peak, util)
				}
				// Feedforward by construction: paths visit strictly
				// increasing server indices.
				for _, c := range net.Connections {
					if n := len(c.Path); n != 2 && n != 4 {
						t.Errorf("%s: connection %q path length %d, want 2 or 4", label, c.Name, n)
					}
					for i := 1; i < len(c.Path); i++ {
						if c.Path[i] <= c.Path[i-1] {
							t.Errorf("%s: path %v not strictly increasing", label, c.Path)
						}
					}
				}
			}
		}
	}
	for _, bad := range []struct {
		k, hosts int
		util     float64
	}{{3, 1, 0.5}, {0, 1, 0.5}, {4, 0, 0.5}, {4, 1, 0}, {4, 1, 1}} {
		if _, err := FatTree(bad.k, bad.hosts, bad.util); err == nil {
			t.Errorf("FatTree(%d, %d, %g): expected error", bad.k, bad.hosts, bad.util)
		}
	}
}

func TestClosInvariantGrid(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		net, err := Clos(k, 0.6)
		if err != nil {
			t.Fatalf("Clos(%d): %v", k, err)
		}
		label := fmt.Sprintf("clos k=%d", k)
		checkInvariants(t, label, net)
		// One flow per host port: k/2 hosts at each of k*(k/2) edge switches.
		if got, want := len(net.Connections), k*(k/2)*(k/2); got != want {
			t.Errorf("%s: %d connections, want %d", label, got, want)
		}
	}
}

func TestFabricInvariantGrid(t *testing.T) {
	bucket := traffic.TokenBucket{Sigma: 1, Rho: 0.1}
	mk := func(name, from, to string) Demand {
		return Demand{Name: name, From: from, To: to, Bucket: bucket, AccessRate: 1}
	}
	for _, n := range []int{2, 3, 4, 6} {
		f := LineFabric(n, 1, server.FIFO)
		last := fmt.Sprintf("n%d", n-1)
		net, err := f.Network([]Demand{
			mk("fwd", "n0", last),
			mk("rev", last, "n0"),
			mk("mid", "n0", "n1"),
		})
		if err != nil {
			t.Fatalf("LineFabric(%d): %v", n, err)
		}
		label := fmt.Sprintf("linefabric n=%d", n)
		checkInvariants(t, label, net)
		if got, want := len(net.Servers), 2*(n-1); got != want {
			t.Errorf("%s: %d servers, want %d", label, got, want)
		}
	}
	for _, leaves := range []int{2, 3, 5, 8} {
		f := StarFabric(leaves, 1, server.FIFO)
		var demands []Demand
		for i := 0; i < leaves; i++ {
			demands = append(demands, mk(
				fmt.Sprintf("d%d", i),
				fmt.Sprintf("l%d", i),
				fmt.Sprintf("l%d", (i+1)%leaves),
			))
		}
		net, err := f.Network(demands)
		if err != nil {
			t.Fatalf("StarFabric(%d): %v", leaves, err)
		}
		label := fmt.Sprintf("starfabric leaves=%d", leaves)
		checkInvariants(t, label, net)
		// Every demand crosses the hub: exactly one uplink and one downlink.
		for _, c := range net.Connections {
			if len(c.Path) != 2 {
				t.Errorf("%s: connection %q path %v, want 2 hops", label, c.Name, c.Path)
			}
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
