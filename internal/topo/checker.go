package topo

import "fmt"

// Checker validates one-connection extensions of a known-valid network in
// O(candidate) time instead of the O(network) full re-validation, by
// reusing the facts an extension cannot invalidate: the servers and the
// existing connections were already validated, and the cached topological
// order witnesses the feedforward property for every existing route.
//
// The fast path is exact, not approximate: ValidateExtend returns nil or
// precisely the error Network.Validate would return on the extended
// network. The one case that cannot be decided locally — the candidate's
// route disagrees with the cached witness order, which may or may not be a
// cycle — falls back to the full validation.
//
// A Checker is immutable and safe for concurrent use.
type Checker struct {
	nServers int
	nConns   int
	// pos maps each server to its position in a witness topological order
	// of the checker's network. The slice is shared across Extend/Shrink
	// derivations and never written after construction.
	pos []int
	// names holds the non-empty connection names in the network.
	names map[string]bool
}

// NewChecker builds a Checker over a network that already passed
// Network.Validate, recomputing only the topological-order witness. The
// network must not be mutated afterwards; appending to a copy of its
// connection slice (how the analysis and admission layers build trials)
// is fine.
func NewChecker(n *Network) (*Checker, error) {
	order, err := n.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(n.Servers))
	for p, s := range order {
		pos[s] = p
	}
	names := make(map[string]bool, len(n.Connections))
	for _, c := range n.Connections {
		if c.Name != "" {
			names[c.Name] = true
		}
	}
	return &Checker{nServers: len(n.Servers), nConns: len(n.Connections), pos: pos, names: names}, nil
}

// ValidateExtend validates trial — the checker's network plus exactly one
// appended candidate — returning exactly what trial.Validate() would. The
// servers and existing connections are valid by construction, so only the
// candidate's self-consistency, a name collision, or a broken feedforward
// property can fail. A nil Checker degrades to the full validation.
func (k *Checker) ValidateExtend(trial *Network) error {
	if k == nil {
		return trial.Validate()
	}
	cand := trial.Connections[len(trial.Connections)-1]
	if err := cand.Validate(k.nServers); err != nil {
		return fmt.Errorf("topo: connection %d: %w", k.nConns, err)
	}
	if cand.Name != "" && k.names[cand.Name] {
		return fmt.Errorf("topo: duplicate connection name %q", cand.Name)
	}
	for i := 0; i+1 < len(cand.Path); i++ {
		if k.pos[cand.Path[i]] >= k.pos[cand.Path[i+1]] {
			// The route disagrees with the cached witness; another witness
			// may still exist, so this one case pays the full check.
			return trial.Validate()
		}
	}
	return nil
}

// Extend returns a checker for the extended network. Call it only after
// ValidateExtend(trial) returned nil. When the candidate's route follows
// the cached witness order, the witness carries over unchanged; otherwise
// it is recomputed once from the trial.
func (k *Checker) Extend(trial *Network) *Checker {
	if k == nil {
		return nil
	}
	cand := trial.Connections[len(trial.Connections)-1]
	nk := &Checker{nServers: k.nServers, nConns: k.nConns + 1, pos: k.pos,
		names: make(map[string]bool, len(k.names)+1)}
	for n := range k.names {
		nk.names[n] = true
	}
	if cand.Name != "" {
		nk.names[cand.Name] = true
	}
	for i := 0; i+1 < len(cand.Path); i++ {
		if k.pos[cand.Path[i]] >= k.pos[cand.Path[i+1]] {
			order, err := trial.TopologicalOrder()
			if err != nil {
				// The caller promised a validated trial; degrade to the
				// checker-less slow path rather than carry a bad witness.
				return nil
			}
			pos := make([]int, len(order))
			for p, s := range order {
				pos[s] = p
			}
			nk.pos = pos
			break
		}
	}
	return nk
}

// SharesWitness reports whether both checkers carry the same witness
// order — true exactly when the derivation chain between them never had
// to recompute it. Callers use it to reuse order-derived caches across an
// Extend or Shrink.
func (k *Checker) SharesWitness(o *Checker) bool {
	return k != nil && o != nil && len(k.pos) > 0 && len(o.pos) > 0 && &k.pos[0] == &o.pos[0]
}

// Shrink returns a checker for the network with the given connection
// removed: a subgraph of a feedforward network is feedforward, so the
// witness order carries over unchanged and only the name set shrinks.
func (k *Checker) Shrink(removed Connection) *Checker {
	if k == nil {
		return nil
	}
	nk := &Checker{nServers: k.nServers, nConns: k.nConns - 1, pos: k.pos,
		names: make(map[string]bool, len(k.names))}
	for n := range k.names {
		if n != removed.Name {
			nk.names[n] = true
		}
	}
	return nk
}
