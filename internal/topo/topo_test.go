package topo

import (
	"math"
	"strings"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

func validNet() *Network {
	return &Network{
		Servers: []server.Server{
			{Name: "a", Capacity: 1, Discipline: server.FIFO},
			{Name: "b", Capacity: 1, Discipline: server.FIFO},
		},
		Connections: []Connection{
			{Name: "c0", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{0, 1}},
			{Name: "c1", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.2}, AccessRate: 1, Path: []int{1}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validNet().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Network)
	}{
		{"no servers", func(n *Network) { n.Servers = nil }},
		{"bad capacity", func(n *Network) { n.Servers[0].Capacity = 0 }},
		{"dup server name", func(n *Network) { n.Servers[1].Name = "a" }},
		{"dup conn name", func(n *Network) { n.Connections[1].Name = "c0" }},
		{"empty path", func(n *Network) { n.Connections[0].Path = nil }},
		{"path out of range", func(n *Network) { n.Connections[0].Path = []int{0, 7} }},
		{"repeated server in path", func(n *Network) { n.Connections[0].Path = []int{0, 1, 0} }},
		{"negative sigma", func(n *Network) { n.Connections[0].Bucket.Sigma = -1 }},
		{"rho above access", func(n *Network) { n.Connections[0].Bucket.Rho = 2 }},
		{"negative deadline", func(n *Network) { n.Connections[0].Deadline = -1 }},
		{"negative latency", func(n *Network) { n.Servers[0].Latency = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := validNet()
			tc.mut(n)
			if err := n.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	n := validNet()
	n.Connections = append(n.Connections, Connection{
		Name: "rev", Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.1}, AccessRate: 1, Path: []int{1, 0},
	})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "feedforward") {
		t.Fatalf("expected feedforward error, got %v", err)
	}
	if n.IsFeedforward() {
		t.Error("IsFeedforward should report false")
	}
}

func TestTopologicalOrder(t *testing.T) {
	n := validNet()
	order, err := n.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, s := range order {
		pos[s] = i
	}
	if pos[0] > pos[1] {
		t.Errorf("server 0 must precede server 1 in %v", order)
	}
	if len(order) != 2 {
		t.Errorf("order covers %d servers, want 2", len(order))
	}
}

func TestConnectionsAtAndHopIndex(t *testing.T) {
	n := validNet()
	at1 := n.ConnectionsAt(1)
	if len(at1) != 2 {
		t.Fatalf("ConnectionsAt(1) = %v, want both connections", at1)
	}
	if got := n.HopIndex(0, 1); got != 1 {
		t.Errorf("HopIndex(c0, s1) = %d, want 1", got)
	}
	if got := n.HopIndex(1, 0); got != -1 {
		t.Errorf("HopIndex(c1, s0) = %d, want -1", got)
	}
}

func TestUtilizationAndStability(t *testing.T) {
	n := validNet()
	u := n.Utilization()
	if math.Abs(u[0]-0.2) > 1e-12 || math.Abs(u[1]-0.4) > 1e-12 {
		t.Errorf("utilization = %v, want [0.2 0.4]", u)
	}
	if !n.Stable() {
		t.Error("network should be stable")
	}
	if math.Abs(n.MaxUtilization()-0.4) > 1e-12 {
		t.Errorf("max utilization = %g", n.MaxUtilization())
	}
	n.Connections[0].Bucket.Rho = 0.9
	if n.Stable() {
		t.Error("network should be unstable at rho sum 1.1")
	}
}

func TestSourceEnvelope(t *testing.T) {
	c := Connection{Bucket: traffic.TokenBucket{Sigma: 2, Rho: 0.5}, AccessRate: 1}
	env := c.SourceEnvelope()
	if !env.IsContinuous() {
		t.Error("capped source envelope should be continuous")
	}
	c.AccessRate = 0
	env = c.SourceEnvelope()
	if env.IsContinuous() {
		t.Error("uncapped source envelope should jump at 0")
	}
}

func TestPaperTandemStructure(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		net, err := PaperTandem(n, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if len(net.Servers) != n {
			t.Fatalf("n=%d: %d servers", n, len(net.Servers))
		}
		if got, want := len(net.Connections), 2*n+1; got != want {
			t.Fatalf("n=%d: %d connections, want %d (2n+1)", n, got, want)
		}
		if got := len(net.Connections[0].Path); got != n {
			t.Errorf("conn0 path length %d, want %d", got, n)
		}
		// Paper: every middle link except the first carries exactly four
		// connections.
		for s := 0; s < n; s++ {
			k := len(net.ConnectionsAt(s))
			want := 4
			if s == 0 {
				want = 3
			}
			if n == 1 {
				want = 3
			}
			if k != want {
				t.Errorf("n=%d server %d carries %d connections, want %d", n, s, k, want)
			}
		}
		// Interior utilization must equal the requested load.
		u := net.Utilization()
		for s := 1; s < n; s++ {
			if math.Abs(u[s]-0.6) > 1e-12 {
				t.Errorf("server %d utilization %g, want 0.6", s, u[s])
			}
		}
	}
}

func TestPaperTandemRejectsBadLoad(t *testing.T) {
	for _, load := range []float64{0, 1, -0.5, 1.5} {
		if _, err := PaperTandem(3, load); err == nil {
			t.Errorf("load %g: expected error", load)
		}
	}
	if _, err := PaperTandem(0, 0.5); err == nil {
		t.Error("0 switches: expected error")
	}
}

func TestParkingLot(t *testing.T) {
	net, err := ParkingLot(4, 1, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Connections) != 5 {
		t.Fatalf("%d connections, want 5", len(net.Connections))
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if got := len(net.ConnectionsAt(s)); got != 2 {
			t.Errorf("server %d carries %d, want 2", s, got)
		}
	}
}

func TestSinkTree(t *testing.T) {
	net, err := SinkTree(3, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Servers) != 7 {
		t.Fatalf("%d servers, want 7", len(net.Servers))
	}
	if len(net.Connections) != 8 {
		t.Fatalf("%d connections, want 8 (two per leaf)", len(net.Connections))
	}
	// The root carries everything.
	if got := len(net.ConnectionsAt(0)); got != 8 {
		t.Errorf("root carries %d, want 8", got)
	}
	// Every path ends at the root.
	for i, c := range net.Connections {
		if c.Path[len(c.Path)-1] != 0 {
			t.Errorf("connection %d does not end at the root: %v", i, c.Path)
		}
	}
}

func TestRandomFeedforward(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net, err := RandomFeedforward(5, 8, 0.6, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !net.IsFeedforward() {
			t.Errorf("seed %d: not feedforward", seed)
		}
		if !net.Stable() {
			t.Errorf("seed %d: unstable (max util %g)", seed, net.MaxUtilization())
		}
		if net.MaxUtilization() > 0.6+1e-9 {
			t.Errorf("seed %d: utilization %g exceeds request", seed, net.MaxUtilization())
		}
	}
}

func TestDOT(t *testing.T) {
	net, err := PaperTandem(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dot := net.DOT()
	for _, want := range []string{"digraph", "s0 -> s1", "s1 -> s2", "conn0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestTandemWithStaticPriority(t *testing.T) {
	net, err := Tandem(TandemSpec{
		Switches: 3, Sigma: 1, Rho: 0.1, Capacity: 1,
		Discipline: server.StaticPriority, Priority0: 0, PriorityCross: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.Connections[0].Priority != 0 || net.Connections[1].Priority != 1 {
		t.Error("priorities not applied")
	}
}
