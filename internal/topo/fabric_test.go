package topo

import (
	"strings"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

func demand(name, from, to string) Demand {
	return Demand{
		Name: name, From: from, To: to,
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.05},
		AccessRate: 1,
	}
}

func TestFabricRouteLine(t *testing.T) {
	f := LineFabric(4, 1, server.FIFO)
	path, err := f.Route("n0", "n3")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path %v, want 3 hops", path)
	}
	// Every hop must chain: To of one == From of next.
	for i := 0; i+1 < len(path); i++ {
		if f.Links[path[i]].To != f.Links[path[i+1]].From {
			t.Fatalf("path does not chain: %v", path)
		}
	}
	if f.Links[path[0]].From != "n0" || f.Links[path[2]].To != "n3" {
		t.Fatalf("path endpoints wrong: %v", path)
	}
}

func TestFabricRouteErrors(t *testing.T) {
	f := LineFabric(3, 1, server.FIFO)
	if _, err := f.Route("n0", "n0"); err == nil {
		t.Error("expected error for self demand")
	}
	if _, err := f.Route("nowhere", "n1"); err == nil {
		t.Error("expected error for unknown source")
	}
	// Unreachable: one-way fabric.
	one := &Fabric{Links: []Link{{From: "a", To: "b", Capacity: 1}}}
	if _, err := one.Route("b", "a"); err == nil {
		t.Error("expected error for unreachable destination")
	}
}

func TestFabricNetwork(t *testing.T) {
	f := LineFabric(4, 1, server.FIFO)
	net, err := f.Network([]Demand{
		demand("fwd", "n0", "n3"),
		demand("mid", "n1", "n2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Servers) != len(f.Links) {
		t.Fatalf("%d servers for %d links", len(net.Servers), len(f.Links))
	}
	if len(net.Connections[0].Path) != 3 || len(net.Connections[1].Path) != 1 {
		t.Fatalf("paths %v / %v", net.Connections[0].Path, net.Connections[1].Path)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Server names identify the links.
	if !strings.Contains(net.Servers[net.Connections[0].Path[0]].Name, "n0>n1") {
		t.Errorf("server name %q", net.Servers[net.Connections[0].Path[0]].Name)
	}
}

func TestFabricOppositeDemandsStayFeedforward(t *testing.T) {
	// Forward and reverse demands use disjoint directed links, so the
	// route graph stays acyclic.
	f := LineFabric(3, 1, server.FIFO)
	net, err := f.Network([]Demand{
		demand("fwd", "n0", "n2"),
		demand("rev", "n2", "n0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !net.IsFeedforward() {
		t.Error("opposite line demands should be feedforward")
	}
}

func TestFabricStar(t *testing.T) {
	f := StarFabric(3, 1, server.FIFO)
	net, err := f.Network([]Demand{
		demand("a", "l0", "l1"),
		demand("b", "l2", "l0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range net.Connections {
		if len(c.Path) != 2 {
			t.Errorf("star path %v, want 2 hops (up, down)", c.Path)
		}
	}
}

func TestFabricNetworkErrors(t *testing.T) {
	if _, err := (&Fabric{}).Network(nil); err == nil {
		t.Error("expected error for empty fabric")
	}
	loop := &Fabric{Links: []Link{{From: "a", To: "a", Capacity: 1}}}
	if _, err := loop.Network(nil); err == nil {
		t.Error("expected error for self-loop link")
	}
	f := LineFabric(2, 1, server.FIFO)
	if _, err := f.Network([]Demand{demand("x", "n0", "n9")}); err == nil {
		t.Error("expected error for unroutable demand")
	}
}

func TestFabricAnalyzable(t *testing.T) {
	// End to end: fabric -> network -> both analyzers agree on structure.
	f := LineFabric(5, 1, server.FIFO)
	var demands []Demand
	demands = append(demands, demand("long", "n0", "n4"))
	for i := 0; i < 4; i++ {
		demands = append(demands, demand(
			"seg"+string(rune('0'+i)),
			"n"+string(rune('0'+i)),
			"n"+string(rune('1'+i)),
		))
	}
	net, err := f.Network(demands)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.ConnectionsAt(net.Connections[0].Path[0])); got != 2 {
		t.Errorf("first link carries %d connections, want 2", got)
	}
}
