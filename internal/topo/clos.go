package topo

import (
	"fmt"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// FatTree builds a k-ary fat-tree fabric as a direct feedforward Network,
// the standard datacenter Clos construction: k pods, each with k/2 edge
// and k/2 aggregation switches, and (k/2)^2 core switches. As in the
// other builders, a server models a switch output port, here one per
// directed inter-switch link, giving exactly k^3 unit-capacity FIFO
// servers in four classes:
//
//	edge->agg (up), agg->core (up), core->agg (down), agg->edge (down)
//
// Server indices are laid out class-major in that order, so every route
// (up first, then down) visits strictly increasing indices and the
// network is feedforward by construction — no BFS routing and no cycle
// checking is needed while building, which keeps construction linear in
// the number of flows even at the ~10k-switch scale the fabric benchmark
// uses (k=22 gives 10,648 servers).
//
// Each edge switch hosts hostsPerEdge sources and each source emits one
// flow to a deterministically chosen host under a different edge switch:
// mostly inter-pod (4 links: up to a core and back down) with a fraction
// of intra-pod flows (2 links: up to an aggregation switch and back).
// The aggregation and core choices are spread by a hash of the flow id,
// mimicking ECMP load balancing. Every source is a unit-burst token
// bucket whose rate is scaled so the single most-loaded link runs at
// exactly util < 1; utilization everywhere else is at or below that.
func FatTree(k, hostsPerEdge int, util float64) (*Network, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity %d must be even and >= 2", k)
	}
	if hostsPerEdge < 1 {
		return nil, fmt.Errorf("topo: fat-tree needs at least one host per edge switch, got %d", hostsPerEdge)
	}
	if util <= 0 || util >= 1 {
		return nil, fmt.Errorf("topo: utilization %g outside (0, 1)", util)
	}
	half := k / 2
	class := k * half * half // links (servers) per class
	// Index formulas for the four link classes, class-major so paths are
	// strictly increasing.
	eUp := func(p, e, a int) int { return (p*half+e)*half + a }
	aUp := func(p, a, j int) int { return class + (p*half+a)*half + j }
	cDown := func(a, j, p int) int { return 2*class + (a*half+j)*k + p }
	aDown := func(p, a, e int) int { return 3*class + (p*half+a)*half + e }

	net := &Network{Servers: make([]server.Server, 4*class)}
	port := func(i int, name string) {
		net.Servers[i] = server.Server{Name: name, Capacity: 1, Discipline: server.FIFO}
	}
	for p := 0; p < k; p++ {
		for x := 0; x < half; x++ {
			for y := 0; y < half; y++ {
				port(eUp(p, x, y), fmt.Sprintf("p%d.e%d>a%d", p, x, y))
				// Aggregation switch x uplinks only to core row x (the
				// fat-tree wiring constraint), column y.
				port(aUp(p, x, y), fmt.Sprintf("p%d.a%d>c%d.%d", p, x, x, y))
				port(aDown(p, x, y), fmt.Sprintf("p%d.a%d>e%d", p, x, y))
			}
		}
	}
	for a := 0; a < half; a++ {
		for j := 0; j < half; j++ {
			for p := 0; p < k; p++ {
				port(cDown(a, j, p), fmt.Sprintf("c%d.%d>p%d", a, j, p))
			}
		}
	}

	paths := make([][]int, 0, k*half*hostsPerEdge)
	names := make([]string, 0, cap(paths))
	load := make([]int, 4*class)
	var id uint64
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < hostsPerEdge; h++ {
				hv := ftMix(id)
				id++
				a := int(hv % uint64(half))
				var path []int
				if half > 1 && h%4 == 0 {
					// Intra-pod: bounce off aggregation switch a to a
					// different edge switch of the same pod.
					ed := (e + 1 + int((hv>>48)%uint64(half-1))) % half
					path = []int{eUp(p, e, a), aDown(p, a, ed)}
				} else {
					// Inter-pod through core (a, j); the core row is
					// forced to a by the wiring, so both pods use
					// aggregation switch a.
					j := int((hv >> 16) % uint64(half))
					ed := int((hv >> 32) % uint64(half))
					pd := (p + 1 + int((hv>>48)%uint64(k-1))) % k
					path = []int{eUp(p, e, a), aUp(p, a, j), cDown(a, j, pd), aDown(pd, a, ed)}
				}
				for _, s := range path {
					load[s]++
				}
				paths = append(paths, path)
				names = append(names, fmt.Sprintf("ft.p%d.e%d.h%d", p, e, h))
			}
		}
	}
	maxLoad := 1
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	bucket := traffic.TokenBucket{Sigma: 1, Rho: util / float64(maxLoad)}
	net.Connections = make([]Connection, len(paths))
	for i, path := range paths {
		net.Connections[i] = Connection{
			Name:       names[i],
			Bucket:     bucket,
			AccessRate: 1,
			Path:       path,
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// Clos builds the canonical folded-Clos instance of the k-ary fat-tree:
// one flow per edge-switch host port (k/2 hosts per edge switch), the
// fully wired three-stage topology datacenter fabrics are built from.
func Clos(k int, util float64) (*Network, error) {
	return FatTree(k, k/2, util)
}

// ftMix is a 64-bit finalizer-style hash (murmur3 avalanche constants)
// used to spread flow routing choices deterministically.
func ftMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
