package topo

import (
	"fmt"
	"math/rand"

	"delaycalc/internal/server"
	"delaycalc/internal/traffic"
)

// TandemSpec parameterizes the paper's evaluation topology (Section 4.1):
// a chain of n 3x3 switches whose middle output ports form a tandem of FIFO
// servers. Connection 0 traverses every server; at each switch k a 1-hop
// cross connection a_k joins for one server and a 2-hop cross connection
// b_k joins for two servers (truncated at the network edge). Every interior
// server carries exactly four connections — connection 0, a_j, b_j and
// b_{j-1} — as stated in the paper, and there are 2n+1 connections total.
type TandemSpec struct {
	Switches   int     // n, number of switches (hops of connection 0)
	Sigma      float64 // token bucket depth of every source (paper: 1)
	Rho        float64 // token rate of every source (paper: U/4)
	Capacity   float64 // line rate of every server (paper: 1)
	Discipline server.Discipline
	// Priority0 and PriorityCross set static-priority classes when
	// Discipline is StaticPriority (ignored otherwise).
	Priority0     int
	PriorityCross int
}

// PaperTandem builds the evaluation network for a given size n and
// workload U (interior link utilization): unit bucket depth, unit
// capacity, per-connection rate U/4 so that the four connections sharing
// each interior link load it to exactly U.
func PaperTandem(n int, load float64) (*Network, error) {
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("topo: load %g outside (0, 1)", load)
	}
	return Tandem(TandemSpec{
		Switches:   n,
		Sigma:      1,
		Rho:        load / 4,
		Capacity:   1,
		Discipline: server.FIFO,
	})
}

// Tandem builds the paper's tandem network from an explicit spec.
func Tandem(spec TandemSpec) (*Network, error) {
	n := spec.Switches
	if n < 1 {
		return nil, fmt.Errorf("topo: tandem needs at least 1 switch, got %d", n)
	}
	if spec.Capacity <= 0 {
		return nil, fmt.Errorf("topo: non-positive capacity %g", spec.Capacity)
	}
	if spec.Rho <= 0 || spec.Sigma < 0 {
		return nil, fmt.Errorf("topo: invalid source parameters sigma=%g rho=%g", spec.Sigma, spec.Rho)
	}
	net := &Network{}
	for k := 0; k < n; k++ {
		net.Servers = append(net.Servers, server.Server{
			Name:       fmt.Sprintf("sw%d.mid", k),
			Capacity:   spec.Capacity,
			Discipline: spec.Discipline,
		})
	}
	bucket := traffic.TokenBucket{Sigma: spec.Sigma, Rho: spec.Rho}
	path0 := make([]int, n)
	for k := range path0 {
		path0[k] = k
	}
	net.Connections = append(net.Connections, Connection{
		Name:       "conn0",
		Bucket:     bucket,
		AccessRate: spec.Capacity,
		Path:       path0,
		Priority:   spec.Priority0,
		Rate:       spec.Rho,
	})
	for k := 0; k < n; k++ {
		net.Connections = append(net.Connections, Connection{
			Name:       fmt.Sprintf("a%d", k),
			Bucket:     bucket,
			AccessRate: spec.Capacity,
			Path:       []int{k},
			Priority:   spec.PriorityCross,
			Rate:       spec.Rho,
		})
		bPath := []int{k}
		if k+1 < n {
			bPath = append(bPath, k+1)
		}
		net.Connections = append(net.Connections, Connection{
			Name:       fmt.Sprintf("b%d", k),
			Bucket:     bucket,
			AccessRate: spec.Capacity,
			Path:       bPath,
			Priority:   spec.PriorityCross,
			Rate:       spec.Rho,
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// ParkingLot builds the classic "parking lot" stress topology: a main
// connection over n unit-capacity FIFO servers with one fresh single-hop
// cross connection per server. All sources share the same token bucket.
func ParkingLot(n int, sigma, rho, capacity float64) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: parking lot needs at least 1 server")
	}
	net := &Network{}
	for k := 0; k < n; k++ {
		net.Servers = append(net.Servers, server.Server{
			Name:       fmt.Sprintf("pl%d", k),
			Capacity:   capacity,
			Discipline: server.FIFO,
		})
	}
	bucket := traffic.TokenBucket{Sigma: sigma, Rho: rho}
	main := make([]int, n)
	for k := range main {
		main[k] = k
	}
	net.Connections = append(net.Connections, Connection{
		Name: "main", Bucket: bucket, AccessRate: capacity, Path: main, Rate: rho,
	})
	for k := 0; k < n; k++ {
		net.Connections = append(net.Connections, Connection{
			Name: fmt.Sprintf("x%d", k), Bucket: bucket, AccessRate: capacity, Path: []int{k}, Rate: rho,
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// SinkTree builds a balanced binary aggregation tree of the given depth:
// every leaf-to-root path is a connection, and interior servers multiplex
// the two subtrees below them. depth 1 is a single server with two
// connections.
func SinkTree(depth int, sigma, rho, capacity float64) (*Network, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topo: sink tree needs depth >= 1")
	}
	net := &Network{}
	// Server indices follow a heap layout rooted at 0; leaves are at the
	// deepest level. Traffic flows leaf -> root, so paths list servers
	// bottom-up.
	total := 1<<depth - 1
	for i := 0; i < total; i++ {
		net.Servers = append(net.Servers, server.Server{
			Name:       fmt.Sprintf("t%d", i),
			Capacity:   capacity,
			Discipline: server.FIFO,
		})
	}
	bucket := traffic.TokenBucket{Sigma: sigma, Rho: rho}
	firstLeaf := 1<<(depth-1) - 1
	for leaf := firstLeaf; leaf < total; leaf++ {
		// Two connections enter at each leaf (its two input ports).
		var path []int
		for v := leaf; ; v = (v - 1) / 2 {
			path = append(path, v)
			if v == 0 {
				break
			}
		}
		for dup := 0; dup < 2; dup++ {
			net.Connections = append(net.Connections, Connection{
				Name:       fmt.Sprintf("leaf%d.%d", leaf, dup),
				Bucket:     bucket,
				AccessRate: capacity,
				Path:       append([]int(nil), path...),
				Rate:       rho,
			})
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// RandomFeedforward builds a random feedforward network: servers are
// totally ordered and every connection's path is an increasing sequence of
// server indices, which guarantees acyclicity. Bucket rates are scaled so
// that no server exceeds the requested utilization.
func RandomFeedforward(nServers, nConns int, util float64, seed int64) (*Network, error) {
	if nServers < 1 || nConns < 1 {
		return nil, fmt.Errorf("topo: need at least one server and one connection")
	}
	if util <= 0 || util >= 1 {
		return nil, fmt.Errorf("topo: utilization %g outside (0, 1)", util)
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Network{}
	for i := 0; i < nServers; i++ {
		net.Servers = append(net.Servers, server.Server{
			Name:       fmt.Sprintf("r%d", i),
			Capacity:   1,
			Discipline: server.FIFO,
		})
	}
	load := make([]int, nServers) // connections per server
	paths := make([][]int, nConns)
	for c := 0; c < nConns; c++ {
		hops := 1 + rng.Intn(nServers)
		start := rng.Intn(nServers)
		var path []int
		for s := start; s < nServers && len(path) < hops; s++ {
			if rng.Intn(2) == 0 || len(path) == 0 {
				path = append(path, s)
			}
		}
		paths[c] = path
		for _, s := range path {
			load[s]++
		}
	}
	maxLoad := 1
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	rho := util / float64(maxLoad)
	for c := 0; c < nConns; c++ {
		net.Connections = append(net.Connections, Connection{
			Name:       fmt.Sprintf("rc%d", c),
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: rho},
			AccessRate: 1,
			Path:       paths[c],
			Rate:       rho,
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// DisjointBlocks builds a fabric of `blocks` independent copies of the
// paper tandem (PaperTandem(switches, load)), concatenated into one server
// list with per-block route offsets and name prefixes. No connection
// crosses blocks, so the server-sharing graph has exactly `blocks`
// components — the canonical workload for sharded admission, where
// disjoint components must commit without contending.
func DisjointBlocks(blocks, switches int, load float64) (*Network, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("topo: need at least 1 block, got %d", blocks)
	}
	net := &Network{}
	for b := 0; b < blocks; b++ {
		block, err := PaperTandem(switches, load)
		if err != nil {
			return nil, err
		}
		off := len(net.Servers)
		for _, s := range block.Servers {
			s.Name = fmt.Sprintf("b%d.%s", b, s.Name)
			net.Servers = append(net.Servers, s)
		}
		for _, c := range block.Connections {
			c.Name = fmt.Sprintf("b%d.%s", b, c.Name)
			path := make([]int, len(c.Path))
			for i, s := range c.Path {
				path[i] = s + off
			}
			c.Path = path
			net.Connections = append(net.Connections, c)
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
