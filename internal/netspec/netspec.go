// Package netspec serializes networks to and from a small JSON format used
// by the command-line tools, so that topologies and workloads can be
// version-controlled and shared.
//
// Format example:
//
//	{
//	  "servers": [
//	    {"name": "sw0", "capacity": 1, "discipline": "fifo"},
//	    {"name": "sw1", "capacity": 1, "discipline": "fifo"}
//	  ],
//	  "connections": [
//	    {"name": "video", "sigma": 1, "rho": 0.25, "access_rate": 1,
//	     "path": ["sw0", "sw1"], "deadline": 10}
//	  ]
//	}
//
// Paths may reference servers by name or by zero-based index.
package netspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// ServerSpec mirrors server.Server in JSON.
type ServerSpec struct {
	Name       string  `json:"name"`
	Capacity   float64 `json:"capacity"`
	Discipline string  `json:"discipline,omitempty"` // fifo | static-priority | guaranteed-rate
	Latency    float64 `json:"latency,omitempty"`
}

// ConnectionSpec mirrors topo.Connection in JSON.
type ConnectionSpec struct {
	Name       string            `json:"name"`
	Sigma      float64           `json:"sigma"`
	Rho        float64           `json:"rho"`
	AccessRate float64           `json:"access_rate,omitempty"`
	Path       []json.RawMessage `json:"path"`
	Priority   int               `json:"priority,omitempty"`
	Rate       float64           `json:"rate,omitempty"`
	Deadline   float64           `json:"deadline,omitempty"`
	// Envelope optionally carries a custom piecewise-linear arrival
	// curve as breakpoints plus a final slope; see EnvelopeSpec.
	Envelope *EnvelopeSpec `json:"envelope,omitempty"`
}

// EnvelopeSpec serializes a piecewise-linear arrival curve: breakpoints
// as [x, y] pairs (the first must be at x = 0) and the slope beyond the
// last breakpoint. The slope must equal the connection's rho.
type EnvelopeSpec struct {
	Points [][2]float64 `json:"points"`
	Slope  float64      `json:"slope"`
}

// Curve converts the spec into a curve.
func (e *EnvelopeSpec) Curve() (c minplus.Curve, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("netspec: invalid envelope: %v", r)
		}
	}()
	pts := make([]minplus.Point, len(e.Points))
	for i, p := range e.Points {
		pts[i] = minplus.Point{X: p[0], Y: p[1]}
	}
	return minplus.New(pts, e.Slope), nil
}

// Spec is the top-level JSON document.
type Spec struct {
	Servers     []ServerSpec     `json:"servers"`
	Connections []ConnectionSpec `json:"connections"`
}

// ParseDiscipline maps a JSON discipline string to the model enum.
func ParseDiscipline(s string) (server.Discipline, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fifo":
		return server.FIFO, nil
	case "static-priority", "staticpriority", "sp":
		return server.StaticPriority, nil
	case "guaranteed-rate", "guaranteedrate", "gr", "wfq":
		return server.GuaranteedRate, nil
	case "edf", "earliest-deadline-first":
		return server.EDF, nil
	default:
		return 0, fmt.Errorf("netspec: unknown discipline %q", s)
	}
}

// DisciplineName maps the enum back to its canonical JSON string.
func DisciplineName(d server.Discipline) string {
	switch d {
	case server.StaticPriority:
		return "static-priority"
	case server.GuaranteedRate:
		return "guaranteed-rate"
	case server.EDF:
		return "edf"
	default:
		return "fifo"
	}
}

// Decode parses a JSON document into a validated Network.
func Decode(data []byte) (*topo.Network, error) {
	var spec Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("netspec: %w", err)
	}
	return FromSpec(&spec)
}

// ServerIndex maps named servers to their indices, rejecting duplicates.
func ServerIndex(servers []server.Server) (map[string]int, error) {
	index := make(map[string]int, len(servers))
	for i, s := range servers {
		if s.Name == "" {
			continue
		}
		if _, dup := index[s.Name]; dup {
			return nil, fmt.Errorf("netspec: duplicate server name %q", s.Name)
		}
		index[s.Name] = i
	}
	return index, nil
}

// ConnectionFromSpec resolves one connection spec against a server fabric,
// mapping path hops given by name through the index. The result is not
// validated beyond path resolution; callers validate it in network context.
func ConnectionFromSpec(c *ConnectionSpec, index map[string]int) (topo.Connection, error) {
	var path []int
	for j, raw := range c.Path {
		var byName string
		if err := json.Unmarshal(raw, &byName); err == nil {
			idx, ok := index[byName]
			if !ok {
				return topo.Connection{}, fmt.Errorf("netspec: connection %q hop %d: unknown server %q", c.Name, j, byName)
			}
			path = append(path, idx)
			continue
		}
		var byIdx int
		if err := json.Unmarshal(raw, &byIdx); err == nil {
			path = append(path, byIdx)
			continue
		}
		return topo.Connection{}, fmt.Errorf("netspec: connection %q hop %d: want server name or index, got %s", c.Name, j, string(raw))
	}
	conn := topo.Connection{
		Name:       c.Name,
		Bucket:     traffic.TokenBucket{Sigma: c.Sigma, Rho: c.Rho},
		AccessRate: c.AccessRate,
		Path:       path,
		Priority:   c.Priority,
		Rate:       c.Rate,
		Deadline:   c.Deadline,
	}
	if c.Envelope != nil {
		env, err := c.Envelope.Curve()
		if err != nil {
			return topo.Connection{}, fmt.Errorf("netspec: connection %q: %w", c.Name, err)
		}
		conn.Envelope = &env
	}
	return conn, nil
}

// FromSpec converts a parsed Spec into a validated Network.
func FromSpec(spec *Spec) (*topo.Network, error) {
	net := &topo.Network{}
	for i, s := range spec.Servers {
		d, err := ParseDiscipline(s.Discipline)
		if err != nil {
			return nil, fmt.Errorf("netspec: server %d: %w", i, err)
		}
		net.Servers = append(net.Servers, server.Server{
			Name:       s.Name,
			Capacity:   s.Capacity,
			Discipline: d,
			Latency:    s.Latency,
		})
	}
	index, err := ServerIndex(net.Servers)
	if err != nil {
		return nil, err
	}
	for i := range spec.Connections {
		conn, err := ConnectionFromSpec(&spec.Connections[i], index)
		if err != nil {
			return nil, fmt.Errorf("netspec: connection %d: %w", i, err)
		}
		net.Connections = append(net.Connections, conn)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// Encode renders a Network as an indented JSON document, naming path hops
// by server name when available.
func Encode(net *topo.Network) ([]byte, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(ToSpec(net), "", "  ")
}

// ToSpec converts a Network back into its serializable Spec form, naming
// path hops by server name when available. The network is assumed valid.
func ToSpec(net *topo.Network) *Spec {
	spec := Spec{}
	for _, s := range net.Servers {
		spec.Servers = append(spec.Servers, ServerSpec{
			Name:       s.Name,
			Capacity:   s.Capacity,
			Discipline: DisciplineName(s.Discipline),
			Latency:    s.Latency,
		})
	}
	for _, c := range net.Connections {
		spec.Connections = append(spec.Connections, ConnectionToSpec(c, net.Servers))
	}
	return &spec
}

// ConnectionToSpec converts one connection into its serializable form,
// naming path hops by server name when available. Hops are assumed to be
// valid indices into servers.
func ConnectionToSpec(c topo.Connection, servers []server.Server) ConnectionSpec {
	cs := ConnectionSpec{
		Name:       c.Name,
		Sigma:      c.Bucket.Sigma,
		Rho:        c.Bucket.Rho,
		AccessRate: c.AccessRate,
		Priority:   c.Priority,
		Rate:       c.Rate,
		Deadline:   c.Deadline,
	}
	if c.Envelope != nil {
		es := &EnvelopeSpec{Slope: c.Envelope.FinalSlope()}
		for _, p := range c.Envelope.Points() {
			es.Points = append(es.Points, [2]float64{p.X, p.Y})
		}
		cs.Envelope = es
	}
	for _, hop := range c.Path {
		var raw json.RawMessage
		if name := servers[hop].Name; name != "" {
			raw, _ = json.Marshal(name)
		} else {
			raw, _ = json.Marshal(hop)
		}
		cs.Path = append(cs.Path, raw)
	}
	return cs
}
