package netspec

import (
	"testing"

	"delaycalc/internal/topo"
)

// Two textually different documents describing the same network must hash
// identically; a semantic change must not.
func TestDigestCanonical(t *testing.T) {
	byName := []byte(`{
	  "servers": [
	    {"name": "sw0", "capacity": 1, "discipline": "fifo"},
	    {"name": "sw1", "capacity": 1}
	  ],
	  "connections": [
	    {"name": "video", "sigma": 1, "rho": 0.25, "access_rate": 1,
	     "path": ["sw0", "sw1"], "deadline": 10}
	  ]
	}`)
	byIndex := []byte(`{"servers":[{"name":"sw0","capacity":1},{"name":"sw1","capacity":1,"discipline":"fifo"}],"connections":[{"name":"video","sigma":1,"rho":0.25,"access_rate":1,"path":[0,1],"deadline":10}]}`)
	changed := []byte(`{"servers":[{"name":"sw0","capacity":1},{"name":"sw1","capacity":1}],"connections":[{"name":"video","sigma":2,"rho":0.25,"access_rate":1,"path":[0,1],"deadline":10}]}`)

	digest := func(doc []byte) string {
		net, err := Decode(doc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		d, err := Digest(net)
		if err != nil {
			t.Fatalf("Digest: %v", err)
		}
		return d
	}

	d1, d2, d3 := digest(byName), digest(byIndex), digest(changed)
	if d1 != d2 {
		t.Errorf("equivalent specs digest differently: %s vs %s", d1, d2)
	}
	if d1 == d3 {
		t.Errorf("distinct specs collide: %s", d1)
	}
	if len(d1) != 64 {
		t.Errorf("want 64 hex chars, got %d (%s)", len(d1), d1)
	}
}

func TestDigestRejectsInvalid(t *testing.T) {
	if _, err := Digest(&topo.Network{}); err == nil {
		t.Fatal("Digest of an empty network should fail validation")
	}
}
