package netspec

import (
	"strings"
	"testing"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

const sample = `{
  "servers": [
    {"name": "sw0", "capacity": 1, "discipline": "fifo"},
    {"name": "sw1", "capacity": 1}
  ],
  "connections": [
    {"name": "video", "sigma": 1, "rho": 0.25, "access_rate": 1,
     "path": ["sw0", "sw1"], "deadline": 10},
    {"name": "cross", "sigma": 1, "rho": 0.25, "access_rate": 1,
     "path": [1]}
  ]
}`

func TestDecode(t *testing.T) {
	net, err := Decode([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Servers) != 2 || len(net.Connections) != 2 {
		t.Fatalf("decoded %d servers, %d connections", len(net.Servers), len(net.Connections))
	}
	if net.Connections[0].Path[1] != 1 {
		t.Errorf("name-based path not resolved: %v", net.Connections[0].Path)
	}
	if net.Connections[1].Path[0] != 1 {
		t.Errorf("index-based path not resolved: %v", net.Connections[1].Path)
	}
	if net.Connections[0].Deadline != 10 {
		t.Errorf("deadline lost: %g", net.Connections[0].Deadline)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"servers": [{"name":"a","capacity":1,"speed":2}], "connections": []}`},
		{"unknown server in path", `{"servers": [{"name":"a","capacity":1}], "connections": [{"name":"c","sigma":1,"rho":0.1,"path":["b"]}]}`},
		{"bad hop type", `{"servers": [{"name":"a","capacity":1}], "connections": [{"name":"c","sigma":1,"rho":0.1,"path":[true]}]}`},
		{"bad discipline", `{"servers": [{"name":"a","capacity":1,"discipline":"lifo"}], "connections": []}`},
		{"invalid network", `{"servers": [{"name":"a","capacity":0}], "connections": []}`},
		{"duplicate server", `{"servers": [{"name":"a","capacity":1},{"name":"a","capacity":1}], "connections": []}`},
		{"syntax", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode([]byte(tc.doc)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	net, err := topo.PaperTandem(3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if len(back.Servers) != len(net.Servers) || len(back.Connections) != len(net.Connections) {
		t.Fatal("round trip changed sizes")
	}
	for i := range net.Connections {
		a, b := net.Connections[i], back.Connections[i]
		if a.Name != b.Name || a.Bucket != b.Bucket || len(a.Path) != len(b.Path) {
			t.Errorf("connection %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Path {
			if a.Path[j] != b.Path[j] {
				t.Errorf("connection %d path changed", i)
			}
		}
	}
}

func TestParseDiscipline(t *testing.T) {
	cases := map[string]server.Discipline{
		"":                server.FIFO,
		"fifo":            server.FIFO,
		"FIFO":            server.FIFO,
		"sp":              server.StaticPriority,
		"static-priority": server.StaticPriority,
		"wfq":             server.GuaranteedRate,
		"guaranteed-rate": server.GuaranteedRate,
		"edf":             server.EDF,
	}
	for in, want := range cases {
		got, err := ParseDiscipline(in)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDiscipline("round-robin"); err == nil {
		t.Error("expected error for unknown discipline")
	}
}

func TestDisciplineNameRoundTrip(t *testing.T) {
	for _, d := range []server.Discipline{server.FIFO, server.StaticPriority, server.GuaranteedRate, server.EDF} {
		back, err := ParseDiscipline(DisciplineName(d))
		if err != nil || back != d {
			t.Errorf("round trip of %v failed: %v, %v", d, back, err)
		}
	}
}

func TestEncodeUsesNames(t *testing.T) {
	net, _ := topo.PaperTandem(2, 0.5)
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sw0.mid"`) {
		t.Errorf("encoded spec should reference servers by name:\n%s", data)
	}
}

func TestEnvelopeSpecRoundTrip(t *testing.T) {
	tr := traffic.SyntheticGOP(3, 6, 8000, 3000, 1000, 0.04)
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	net := &topo.Network{
		Servers: []server.Server{{Name: "s", Capacity: 1e6}},
		Connections: []topo.Connection{{
			Name:     "video",
			Bucket:   traffic.TokenBucket{Sigma: tr.PeakFrame(), Rho: tr.MeanRate()},
			Path:     []int{0},
			Envelope: &env,
		}},
	}
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"envelope"`) {
		t.Fatalf("envelope not serialized:\n%s", data)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Connections[0].Envelope
	if got == nil {
		t.Fatal("envelope lost in round trip")
	}
	if !got.Equal(env) {
		t.Errorf("envelope changed: %v vs %v", got, env)
	}
}

func TestEnvelopeSpecInvalid(t *testing.T) {
	doc := `{"servers":[{"name":"a","capacity":1}],
	 "connections":[{"name":"c","sigma":1,"rho":0.1,"path":["a"],
	  "envelope":{"points":[[5,1]],"slope":0.1}}]}`
	if _, err := Decode([]byte(doc)); err == nil {
		t.Fatal("expected error for envelope not starting at x=0")
	}
	// Envelope slope disagreeing with rho fails network validation.
	doc2 := `{"servers":[{"name":"a","capacity":1}],
	 "connections":[{"name":"c","sigma":1,"rho":0.1,"path":["a"],
	  "envelope":{"points":[[0,0]],"slope":0.5}}]}`
	if _, err := Decode([]byte(doc2)); err == nil {
		t.Fatal("expected error for rate mismatch")
	}
}
