package netspec

import (
	"testing"
)

// FuzzDecode drives the JSON decoder with arbitrary bytes: it must never
// panic, and anything it accepts must survive an encode/decode round trip.
// The seed corpus runs as part of the regular test suite; `go test -fuzz
// FuzzDecode ./internal/netspec` explores further.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		sample,
		`{}`,
		`{"servers":[],"connections":[]}`,
		`{"servers":[{"name":"a","capacity":1}],"connections":[]}`,
		`{"servers":[{"name":"a","capacity":1,"discipline":"edf"}],
		  "connections":[{"name":"c","sigma":1,"rho":0.1,"path":["a"],"deadline":2}]}`,
		`{"servers":[{"name":"a","capacity":1}],
		  "connections":[{"name":"c","sigma":1,"rho":0.1,"path":[0],
		   "envelope":{"points":[[0,0],[1,2]],"slope":0.1}}]}`,
		`{"servers":[{"name":"a","capacity":-1}],"connections":[]}`,
		`[1,2,3]`,
		`not json at all`,
		`{"servers":[{"name":"a","capacity":1}],"connections":[{"path":[99]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Decode(data)
		if err != nil {
			return // rejecting is always fine; panicking is not
		}
		out, err := Encode(net)
		if err != nil {
			t.Fatalf("accepted network failed to encode: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("encoded network failed to decode: %v\n%s", err, out)
		}
		if len(back.Servers) != len(net.Servers) || len(back.Connections) != len(net.Connections) {
			t.Fatal("round trip changed the network shape")
		}
	})
}
