package netspec

import (
	"crypto/sha256"
	"encoding/hex"

	"delaycalc/internal/topo"
)

// Digest returns a canonical SHA-256 hex digest of a network. Two spec
// documents that decode to the same network — regardless of formatting,
// discipline aliases ("sp" vs "static-priority"), or whether path hops are
// given by name or index — produce the same digest, because the digest is
// taken over the canonical re-encoding (Encode) rather than the input
// bytes. The service layer uses it as the cache key for analysis results.
func Digest(net *topo.Network) (string, error) {
	data, err := Encode(net)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
