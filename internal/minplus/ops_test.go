package minplus

import (
	"math"
	"testing"
)

// sampleCheck compares a curve against a reference evaluator on a grid,
// including points just left and right of every breakpoint.
func sampleCheck(t *testing.T, got Curve, ref func(float64) float64, hi float64, label string) {
	t.Helper()
	const n = 400
	for i := 0; i <= n; i++ {
		x := hi * float64(i) / n
		g, w := got.Eval(x), ref(x)
		if !almostEqual(g, w) && math.Abs(g-w) > 1e-7 {
			t.Fatalf("%s: Eval(%g) = %g, want %g (curve %v)", label, x, g, w, got)
		}
	}
}

func TestAdd(t *testing.T) {
	f := TokenBucketCapped(2, 0.5, 1)
	g := TokenBucketCapped(1, 0.25, 1)
	s := Add(f, g)
	sampleCheck(t, s, func(x float64) float64 { return f.Eval(x) + g.Eval(x) }, 20, "add")
	if !almostEqual(s.FinalSlope(), 0.75) {
		t.Errorf("final slope = %g, want 0.75", s.FinalSlope())
	}
}

func TestAddWithJumps(t *testing.T) {
	f := TokenBucket(3, 1)
	g := Step(2, 1)
	s := Add(f, g)
	if got := s.Eval(0); got != 0 {
		t.Errorf("sum at 0 = %g, want 0", got)
	}
	if got := s.EvalRight(0); got != 3 {
		t.Errorf("sum right of 0 = %g, want 3", got)
	}
	if got := s.Eval(1); got != 4 {
		t.Errorf("sum at 1 = %g, want 4 (left of step)", got)
	}
	if got := s.EvalRight(1); got != 6 {
		t.Errorf("sum right of 1 = %g, want 6", got)
	}
}

func TestSum(t *testing.T) {
	if !Sum().Equal(Zero()) {
		t.Error("empty Sum should be zero")
	}
	a, b, c := TokenBucketCapped(1, 0.1, 1), TokenBucketCapped(2, 0.2, 1), TokenBucketCapped(3, 0.3, 1)
	s := Sum(a, b, c)
	sampleCheck(t, s, func(x float64) float64 { return a.Eval(x) + b.Eval(x) + c.Eval(x) }, 30, "sum3")
	if !almostEqual(s.FinalSlope(), 0.6) {
		t.Errorf("final slope = %g, want 0.6", s.FinalSlope())
	}
}

func TestMinOfConcaveThroughOrigin(t *testing.T) {
	f := TokenBucketCapped(2, 0.5, 1)
	g := Rate(0.8)
	m := Min(f, g)
	sampleCheck(t, m, func(x float64) float64 { return math.Min(f.Eval(x), g.Eval(x)) }, 20, "min")
	if !m.IsConcave() {
		t.Errorf("min of concave curves should be concave: %v", m)
	}
}

func TestMinMaxCrossingDetection(t *testing.T) {
	// f = 2 + 0.5 t, g = t: cross at t = 4.
	f := Affine(0.5, 2)
	g := Identity()
	m := Min(f, g)
	if got := m.Eval(4); !almostEqual(got, 4) {
		t.Errorf("min at crossing = %g, want 4", got)
	}
	if got := m.Eval(2); !almostEqual(got, 2) {
		t.Errorf("min below crossing = %g, want 2 (g)", got)
	}
	if got := m.Eval(6); !almostEqual(got, 5) {
		t.Errorf("min above crossing = %g, want 5 (f)", got)
	}
	mx := Max(f, g)
	if got := mx.Eval(2); !almostEqual(got, 3) {
		t.Errorf("max below crossing = %g, want 3 (f)", got)
	}
	if got := mx.Eval(6); !almostEqual(got, 6) {
		t.Errorf("max above crossing = %g, want 6 (g)", got)
	}
	if !almostEqual(mx.FinalSlope(), 1) {
		t.Errorf("max final slope = %g, want 1", mx.FinalSlope())
	}
	if !almostEqual(m.FinalSlope(), 0.5) {
		t.Errorf("min final slope = %g, want 0.5", m.FinalSlope())
	}
}

func TestMinTailCrossing(t *testing.T) {
	// Curves whose only crossing is beyond both curves' breakpoints.
	f := New([]Point{{0, 10}}, 0.1) // 10 + 0.1 t
	g := New([]Point{{0, 0}, {1, 1}}, 2)
	// g catches f where 1 + 2(t-1) = 10 + 0.1 t -> t = 11/1.9 + ...
	m := Min(f, g)
	sampleCheck(t, m, func(x float64) float64 { return math.Min(f.Eval(x), g.Eval(x)) }, 30, "tailmin")
	if !almostEqual(m.FinalSlope(), 0.1) {
		t.Errorf("final slope = %g, want 0.1", m.FinalSlope())
	}
}

func TestPositivePart(t *testing.T) {
	// t - 3 clipped at zero.
	f := New([]Point{{0, -3}}, 1)
	p := PositivePart(f)
	if got := p.Eval(2); got != 0 {
		t.Errorf("PositivePart.Eval(2) = %g, want 0", got)
	}
	if got := p.Eval(5); !almostEqual(got, 2) {
		t.Errorf("PositivePart.Eval(5) = %g, want 2", got)
	}
	if !p.IsNonDecreasing() {
		t.Error("positive part of an increasing curve should be non-decreasing")
	}
}

func TestSub(t *testing.T) {
	f := TokenBucketCapped(4, 0.5, 1)
	g := Rate(0.5)
	d := Sub(f, g)
	sampleCheck(t, d, func(x float64) float64 { return f.Eval(x) - g.Eval(x) }, 20, "sub")
	if !almostEqual(d.FinalSlope(), 0) {
		t.Errorf("final slope = %g, want 0", d.FinalSlope())
	}
}

func TestMinWithStepJump(t *testing.T) {
	f := Step(5, 2)
	g := Affine(1, 1)
	m := Min(f, g)
	// Before the step min = 0 (f); after the step min = g until g passes 5.
	if got := m.Eval(1); got != 0 {
		t.Errorf("m(1) = %g, want 0", got)
	}
	if got := m.Eval(3); !almostEqual(got, 4) {
		t.Errorf("m(3) = %g, want 4 (g)", got)
	}
	if got := m.Eval(10); !almostEqual(got, 5) {
		t.Errorf("m(10) = %g, want 5 (f)", got)
	}
}
