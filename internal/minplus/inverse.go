package minplus

import "math"

// LowerInverse returns the lower pseudo-inverse of a non-decreasing curve,
//
//	f^{-1}(y) = inf{ t >= 0 : f(t) >= y },
//
// itself a non-decreasing curve in y. Flat segments of f become jumps of
// the inverse and jumps of f become flat segments. For y below f(0+) the
// inverse is 0. The curve must be unbounded (positive final slope) so that
// the inverse is defined for all y; LowerInverse panics otherwise, since a
// bounded curve has no finite inverse beyond its supremum.
func LowerInverse(f Curve) Curve {
	f.mustValid()
	if !f.IsNonDecreasing() {
		panic("minplus: LowerInverse requires a non-decreasing curve")
	}
	if f.slope <= Eps {
		panic("minplus: LowerInverse of a bounded curve (final slope 0)")
	}
	// Candidate ordinates: the Y values of all breakpoints (both sides of
	// jumps) plus 0.
	ys := []float64{0}
	for _, p := range f.pts {
		if p.Y > 0 {
			ys = append(ys, p.Y)
		}
	}
	eval := func(y float64) float64 { return LowerInverseAt(f, y) }
	return fromEvaluator(nil, ys, eval, 1/f.slope)
}

// LowerInverseAt evaluates the lower pseudo-inverse of f at a single
// ordinate y without constructing the full inverse curve.
func LowerInverseAt(f Curve, y float64) float64 {
	f.mustValid()
	if !f.IsNonDecreasing() {
		panic("minplus: LowerInverseAt requires a non-decreasing curve")
	}
	if y <= f.pts[0].Y {
		return 0
	}
	// Walk segments; find the first time the curve reaches y.
	for i := 0; i < len(f.pts); i++ {
		p := f.pts[i]
		if p.Y >= y || almostEqual(p.Y, y) {
			return p.X
		}
		last := f.lastOfRun(i)
		if last != i {
			// Jump at p.X from p.Y to f.pts[last].Y.
			if f.pts[last].Y >= y || almostEqual(f.pts[last].Y, y) {
				return p.X
			}
			i = last - 1 // continue from the upper point
			continue
		}
		s := f.segSlope(i)
		var nextY float64
		var span float64
		if i+1 < len(f.pts) {
			span = f.pts[i+1].X - p.X
			nextY = p.Y + s*span
		} else {
			span = math.Inf(1)
			nextY = math.Inf(1)
			if s <= Eps {
				panic("minplus: LowerInverseAt beyond the supremum of a bounded curve")
			}
		}
		if nextY >= y {
			if s <= Eps {
				// Flat segment cannot reach a strictly larger y;
				// the next breakpoint handles it.
				continue
			}
			return p.X + (y-p.Y)/s
		}
	}
	panic("minplus: LowerInverseAt internal error") // unreachable
}

// UpperInverse returns the upper pseudo-inverse
//
//	f^{+1}(y) = sup{ t >= 0 : f(t) <= y } = inf{ t >= 0 : f(t) > y },
//
// for a non-decreasing unbounded curve.
func UpperInverse(f Curve) Curve {
	f.mustValid()
	if !f.IsNonDecreasing() {
		panic("minplus: UpperInverse requires a non-decreasing curve")
	}
	if f.slope <= Eps {
		panic("minplus: UpperInverse of a bounded curve (final slope 0)")
	}
	ys := []float64{0}
	for _, p := range f.pts {
		if p.Y > 0 {
			ys = append(ys, p.Y)
		}
	}
	eval := func(y float64) float64 { return upperInverseAt(f, y) }
	return fromEvaluator(nil, ys, eval, 1/f.slope)
}

// upperInverseAt evaluates inf{ t : f(t) > y }.
func upperInverseAt(f Curve, y float64) float64 {
	// inf{t : f(t) > y} = lim_{y' -> y+} lowerInverse(y'). Evaluate by
	// scanning for the last time the curve is still <= y.
	t := LowerInverseAt(f, y)
	// If f stays at y on a flat run starting at t, advance past it.
	for {
		r := f.EvalRight(t)
		if r > y && !almostEqual(r, y) {
			return t
		}
		// Flat at y: find the end of the flat segment.
		adv := false
		for i := 0; i < len(f.pts); i++ {
			if f.pts[i].X > t+Eps && almostEqual(f.Eval(f.pts[i].X), y) {
				t = f.pts[i].X
				adv = true
				break
			}
		}
		if !adv {
			// Flat to infinity at y would contradict positive final
			// slope unless y is beyond all breakpoints.
			return t
		}
	}
}

// strictInverseAtBounded returns inf{ x >= 0 : f(x) > y } for a
// non-decreasing curve, or -1 when f never strictly exceeds y (bounded
// curves whose supremum is at most y). It differs from the lower
// pseudo-inverse only where f has a plateau at exactly y, in which case the
// strict inverse skips past the plateau.
func strictInverseAtBounded(f Curve, y float64) float64 {
	x := LowerInverseAtBounded(f, y)
	if x < 0 {
		return -1
	}
	for {
		if r := f.EvalRight(x); r > y && !almostEqual(r, y) {
			return x
		}
		// The right limit at x is still y; if the curve rises continuously
		// from it, f exceeds y immediately after x and x is the strict
		// inverse. Only a genuine plateau (zero right slope) is skipped.
		if f.RightSlope(x) > Eps {
			return x
		}
		// The curve sits at (approximately) y just after x: advance to the
		// next distinct breakpoint, or into the affine tail.
		advanced := false
		for i, p := range f.pts {
			if i > 0 && almostEqual(p.X, f.pts[i-1].X) {
				continue
			}
			if p.X > x && !almostEqual(p.X, x) {
				x = p.X
				advanced = true
				break
			}
		}
		if !advanced {
			if f.slope > Eps {
				return x // the tail rises immediately past y
			}
			return -1 // flat forever at y
		}
	}
}
