package minplus

import "math"

// pointwise builds the exact piecewise-linear combination h(t) =
// op(f(t), g(t)). Breakpoints of the result lie at the union of the operand
// breakpoints plus, for min and max, the crossing points of f and g inside
// shared segments; crossings are found per segment pair by linear
// interpolation. tailSlope must give the exact slope of the result beyond
// all breakpoints and crossings; it is computed from the operand slopes
// rather than by numeric differencing so that no floating-point drift
// enters the representation. With a non-nil arena all scratch and result
// storage comes from the arena.
func pointwise(ar *Arena, f, g Curve, op func(a, b float64) float64, tailSlope func(f, g Curve, farT float64) float64) Curve {
	f.mustValid()
	g.mustValid()
	xs := mergeBreaks(ar, f, g)
	// Add crossing points of f-g within each inter-breakpoint interval and
	// in the tail, where both functions are linear: at most one per
	// interval plus one in the tail.
	extra := ar.floats(len(xs))
	addCrossing := func(lo, hi float64) {
		fl, gl := f.EvalRight(lo), g.EvalRight(lo)
		if math.IsInf(hi, 1) {
			// Tail: slopes within tolerance are treated as parallel; a
			// crossing computed from a near-zero slope difference would
			// land at an astronomically large abscissa and destroy
			// float64 precision downstream.
			df := f.slope - g.slope
			if math.Abs(df) <= Eps {
				return
			}
			d0 := fl - gl
			t := lo - d0/df
			if t > lo+Eps {
				extra = append(extra, t)
			}
			return
		}
		fh, gh := f.Eval(hi), g.Eval(hi)
		d0, d1 := fl-gl, fh-gh
		if (d0 > Eps && d1 < -Eps) || (d0 < -Eps && d1 > Eps) {
			t := lo + (hi-lo)*(-d0)/(d1-d0)
			extra = append(extra, t)
		}
	}
	for i := 0; i+1 < len(xs); i++ {
		addCrossing(xs[i], xs[i+1])
	}
	addCrossing(xs[len(xs)-1], math.Inf(1))
	all := mergeXsArena(ar, xs, extra)

	eval := func(t float64) float64 { return op(f.Eval(t), g.Eval(t)) }
	return fromEvaluator(ar, all, eval, tailSlope(f, g, all[len(all)-1]+1))
}

func addTail(f, g Curve, _ float64) float64 { return f.slope + g.slope }
func subTail(f, g Curve, _ float64) float64 { return f.slope - g.slope }

// minTail picks the exact slope of min(f, g) far to the right: the smaller
// slope wins eventually; for (near-)parallel tails the lower curve wins and
// the shared slope is returned exactly.
func minTail(f, g Curve, farT float64) float64 {
	switch {
	case f.slope < g.slope-Eps:
		return f.slope
	case g.slope < f.slope-Eps:
		return g.slope
	case f.Eval(farT) <= g.Eval(farT):
		return f.slope
	default:
		return g.slope
	}
}

func maxTail(f, g Curve, farT float64) float64 {
	switch {
	case f.slope > g.slope+Eps:
		return f.slope
	case g.slope > f.slope+Eps:
		return g.slope
	case f.Eval(farT) >= g.Eval(farT):
		return f.slope
	default:
		return g.slope
	}
}

func opAdd(a, b float64) float64 { return a + b }
func opSub(a, b float64) float64 { return a - b }

// Add returns f + g.
func Add(f, g Curve) Curve { return pointwise(nil, f, g, opAdd, addTail) }

// Add returns f + g built in the arena.
func (a *Arena) Add(f, g Curve) Curve { return pointwise(a, f, g, opAdd, addTail) }

// Sum adds any number of curves; Sum() is the zero curve. It delegates to
// SumN, the single-pass k-way merge.
func Sum(curves ...Curve) Curve {
	return SumN(curves...)
}

// Min returns the pointwise minimum of f and g.
func Min(f, g Curve) Curve { return pointwise(nil, f, g, math.Min, minTail) }

// Min returns the pointwise minimum of f and g built in the arena.
func (a *Arena) Min(f, g Curve) Curve { return pointwise(a, f, g, math.Min, minTail) }

// Max returns the pointwise maximum of f and g.
func Max(f, g Curve) Curve { return pointwise(nil, f, g, math.Max, maxTail) }

// Max returns the pointwise maximum of f and g built in the arena.
func (a *Arena) Max(f, g Curve) Curve { return pointwise(a, f, g, math.Max, maxTail) }

// PositivePart returns max(f, 0), written [f]^+ in network calculus.
func PositivePart(f Curve) Curve { return Max(f, Zero()) }

// PositivePart returns max(f, 0) built in the arena.
func (a *Arena) PositivePart(f Curve) Curve { return a.Max(f, Zero()) }

// Sub returns f - g. The result need not be monotone; it is intended for
// deviation computations and plotting.
func Sub(f, g Curve) Curve { return pointwise(nil, f, g, opSub, subTail) }

// Sub returns f - g built in the arena.
func (a *Arena) Sub(f, g Curve) Curve { return pointwise(a, f, g, opSub, subTail) }

// MonotoneClosure returns the greatest non-decreasing curve that nowhere
// exceeds f:
//
//	f_down(t) = inf_{s >= t} f(s).
//
// It is used to repair leftover service curves that dip: a smaller service
// curve is always a valid (if weaker) guarantee, so the closure is sound.
// The curve's final slope must be non-negative, otherwise the infimum is
// -Inf everywhere and MonotoneClosure panics.
func MonotoneClosure(f Curve) Curve { return monotoneClosure(nil, f) }

// MonotoneClosure is the arena variant of the package-level function.
func (a *Arena) MonotoneClosure(f Curve) Curve { return monotoneClosure(a, f) }

func monotoneClosure(ar *Arena, f Curve) Curve {
	f.mustValid()
	if f.slope < -Eps {
		panic("minplus: MonotoneClosure of a curve decreasing to -Inf")
	}
	if f.IsNonDecreasing() {
		return f
	}
	xs := f.xBreaksArena(ar)
	// M[i] = inf of f over [xs[i], inf).
	m := ar.floats(len(xs))[:len(xs)]
	tail := f.EvalRight(xs[len(xs)-1]) // min of the affine tail (slope >= 0)
	run := tail
	// Segment interiors are linear, so every local minimum is attained at
	// a breakpoint value or one-sided limit; a reverse scan suffices.
	for i := len(xs) - 1; i >= 0; i-- {
		v, vr := f.Eval(xs[i]), f.EvalRight(xs[i])
		run = math.Min(run, math.Min(v, vr))
		m[i] = run
	}
	// Step curve S(t) = M[first i with xs[i] >= t], built directly from the
	// reverse scan: value m[i] at xs[i], constant m[i+1] on the open
	// interval after it. On the tail S follows f itself (the tail infimum
	// is its right limit at the last breakpoint, since slope >= 0) so that
	// Min(f, S) leaves the tail untouched.
	pts := ar.points(2 * len(xs))
	for i, x := range xs {
		pts = append(pts, Point{x, m[i]})
		if i+1 < len(xs) {
			if !almostEqual(m[i+1], m[i]) {
				pts = append(pts, Point{x, m[i+1]})
			}
		} else if !almostEqual(tail, m[i]) {
			pts = append(pts, Point{x, tail})
		}
	}
	s := Curve{pts: pts, slope: f.slope}
	s.normalize()
	return pointwise(ar, f, s, math.Min, minTail)
}
