// Package minplus implements exact min-plus (network calculus) algebra on
// piecewise-linear curves.
//
// A Curve is a real-valued, piecewise-linear function defined on [0, +inf),
// represented by a finite list of breakpoints plus a final slope that
// extends the last segment to infinity. Curves are left-continuous: at a
// discontinuity x0 the value f(x0) is the limit from the left, which is the
// convention used throughout deterministic network calculus (arrival
// functions count traffic in the half-open interval [0, t)).
//
// A vertical jump is represented by two breakpoints sharing the same X with
// increasing Y; the first carries the value at X, the second the right
// limit.
//
// All operations in this package are exact for piecewise-linear inputs: the
// breakpoints of results such as min-plus convolutions, compositions and
// pseudo-inverses are located on arithmetic combinations of the input
// breakpoints, so no sampling or discretization error is introduced.
package minplus

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the absolute tolerance used when comparing coordinates. Two values
// closer than Eps (scaled by magnitude) are considered equal.
const Eps = 1e-9

// almostEqual reports whether a and b are equal within tolerance, scaling
// the tolerance with the magnitude of the operands.
func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= Eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= Eps*scale
}

// Point is a breakpoint of a piecewise-linear curve.
type Point struct {
	X, Y float64
}

// Curve is a piecewise-linear function on [0, +inf). The zero value is not
// a valid Curve; construct curves with New or the builder functions.
type Curve struct {
	pts   []Point
	slope float64 // slope after the last breakpoint
}

// New constructs a curve from breakpoints and a final slope. The points are
// sorted, duplicate and collinear points are merged, and vertical jumps
// (points sharing an X) are preserved. The first breakpoint must be at
// X == 0; New panics otherwise, and on NaN or infinite coordinates.
func New(pts []Point, finalSlope float64) Curve {
	if len(pts) == 0 {
		panic("minplus: New called with no breakpoints")
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return newFromOwned(cp, finalSlope)
}

// newFromOwned builds a curve taking ownership of pts (no defensive copy).
// Validation and normalization match New exactly; internal operations use
// it to construct results directly into arena-allocated buffers.
func newFromOwned(pts []Point, finalSlope float64) Curve {
	if len(pts) == 0 {
		panic("minplus: New called with no breakpoints")
	}
	sortPoints(pts)
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			panic(fmt.Sprintf("minplus: non-finite breakpoint %+v", p))
		}
	}
	if math.IsNaN(finalSlope) || math.IsInf(finalSlope, 0) {
		panic("minplus: non-finite final slope")
	}
	if !almostEqual(pts[0].X, 0) || pts[0].X < 0 {
		panic(fmt.Sprintf("minplus: first breakpoint must be at X=0, got X=%g", pts[0].X))
	}
	pts[0].X = 0
	c := Curve{pts: pts, slope: finalSlope}
	c.normalize()
	return c
}

// pointLess is the breakpoint ordering: by X, then by Y (so the lower
// point of a jump carries the left-continuous value).
func pointLess(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// sortPoints sorts breakpoints by (X, Y) in place without the reflection
// swapper that sort.Slice allocates. Nearly every construction site feeds
// already-ordered points, so the sorted check makes the common case a
// single linear scan; the insertion-sort fallback is only reached by
// evaluator reconstructions with downward jumps or unordered candidates,
// whose point counts are small.
func sortPoints(pts []Point) {
	sorted := true
	for i := 1; i < len(pts); i++ {
		if pointLess(pts[i], pts[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		j := i - 1
		for j >= 0 && pointLess(p, pts[j]) {
			pts[j+1] = pts[j]
			j--
		}
		pts[j+1] = p
	}
}

// normalize collapses duplicate X runs to at most two points (value and
// right limit), merges collinear interior points, and drops a final
// breakpoint whose incoming slope equals the final slope.
func (c *Curve) normalize() {
	// Collapse runs of equal X to first (value) and last (right limit).
	out := c.pts[:0]
	for i := 0; i < len(c.pts); {
		j := i
		for j+1 < len(c.pts) && almostEqual(c.pts[j+1].X, c.pts[i].X) {
			j++
		}
		first, last := c.pts[i], c.pts[j]
		last.X = first.X
		out = append(out, first)
		if !almostEqual(first.Y, last.Y) {
			out = append(out, last)
		}
		i = j + 1
	}
	// Merge collinear interior points, in place: the write index never
	// passes the read index, and the popped entries are only re-read from
	// the already-written prefix.
	merged := out[:0]
	for _, p := range out {
		for len(merged) >= 2 {
			a, b := merged[len(merged)-2], merged[len(merged)-1]
			if almostEqual(a.X, b.X) || almostEqual(b.X, p.X) {
				break // jumps are never merged away
			}
			s1 := (b.Y - a.Y) / (b.X - a.X)
			s2 := (p.Y - b.Y) / (p.X - b.X)
			if !almostEqual(s1, s2) {
				break
			}
			merged = merged[:len(merged)-1]
		}
		merged = append(merged, p)
	}
	// Drop a trailing point that merely continues the final slope.
	for len(merged) >= 2 {
		a, b := merged[len(merged)-2], merged[len(merged)-1]
		if almostEqual(a.X, b.X) {
			break
		}
		s := (b.Y - a.Y) / (b.X - a.X)
		if !almostEqual(s, c.slope) {
			break
		}
		merged = merged[:len(merged)-1]
	}
	c.pts = merged
}

// Points returns a copy of the curve's breakpoints.
func (c Curve) Points() []Point {
	cp := make([]Point, len(c.pts))
	copy(cp, c.pts)
	return cp
}

// PointAt returns the i-th breakpoint without copying the breakpoint
// slice. Use it with NumPoints to iterate allocation-free.
func (c Curve) PointAt(i int) Point { return c.pts[i] }

// NumPoints returns the number of breakpoints, for iteration with PointAt
// without the defensive copy Points makes.
func (c Curve) NumPoints() int { return len(c.pts) }

// FinalSlope returns the slope of the curve after its last breakpoint.
func (c Curve) FinalSlope() float64 { return c.slope }

// LastX returns the X coordinate of the last breakpoint.
func (c Curve) LastX() float64 { return c.pts[len(c.pts)-1].X }

// valid reports whether the curve was built by a constructor.
func (c Curve) valid() bool { return len(c.pts) > 0 }

func (c Curve) mustValid() {
	if !c.valid() {
		panic("minplus: use of zero-value Curve; construct with New or a builder")
	}
}

// segSlope returns the slope of the segment starting at breakpoint index i,
// where i must index the last point of its X-run.
func (c Curve) segSlope(i int) float64 {
	k := i + 1
	for k < len(c.pts) && almostEqual(c.pts[k].X, c.pts[i].X) {
		k++
	}
	if k >= len(c.pts) {
		return c.slope
	}
	return (c.pts[k].Y - c.pts[i].Y) / (c.pts[k].X - c.pts[i].X)
}

// Eval returns the (left-continuous) value f(x). Negative arguments are
// clamped to zero.
func (c Curve) Eval(x float64) float64 {
	c.mustValid()
	if x <= 0 {
		return c.pts[0].Y
	}
	// First index with X >= x, treating X within tolerance of x as at x.
	j := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X >= x })
	for j > 0 && almostEqual(c.pts[j-1].X, x) {
		j--
	}
	if j < len(c.pts) && almostEqual(c.pts[j].X, x) {
		return c.pts[j].Y // first point at x carries the left-continuous value
	}
	// The active segment starts at the last point with X < x.
	i := j - 1
	if i < 0 {
		return c.pts[0].Y
	}
	return c.pts[i].Y + c.segSlope(i)*(x-c.pts[i].X)
}

// EvalRight returns the right limit f(x+) = lim_{u -> x, u > x} f(u).
func (c Curve) EvalRight(x float64) float64 {
	c.mustValid()
	if x < 0 {
		x = 0
	}
	// Last index with X <= x (within tolerance).
	j := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X > x })
	for j < len(c.pts) && almostEqual(c.pts[j].X, x) {
		j++
	}
	i := j - 1
	if i < 0 {
		// x below first breakpoint (only possible through rounding).
		return c.pts[0].Y
	}
	return c.pts[i].Y + c.segSlope(i)*(x-c.pts[i].X)
}

// IsNonDecreasing reports whether the curve never decreases. Dips within
// floating-point tolerance (relative to the magnitude of the values, so
// that curves expressed in bits-per-second scales behave like unit-scale
// ones) do not count as decreases.
func (c Curve) IsNonDecreasing() bool {
	c.mustValid()
	if c.slope < -Eps {
		return false
	}
	for i := 1; i < len(c.pts); i++ {
		if c.pts[i].Y < c.pts[i-1].Y && !almostEqual(c.pts[i].Y, c.pts[i-1].Y) {
			return false
		}
	}
	return true
}

// IsContinuous reports whether the curve has no vertical jumps.
func (c Curve) IsContinuous() bool {
	c.mustValid()
	for i := 1; i < len(c.pts); i++ {
		if almostEqual(c.pts[i].X, c.pts[i-1].X) {
			return false
		}
	}
	return true
}

// IsConcave reports whether the curve is concave on (0, inf), i.e. segment
// slopes are non-increasing and there are no upward jumps after x=0. A jump
// at x=0 (as in a pure token bucket) does not break concavity on (0, inf).
func (c Curve) IsConcave() bool {
	c.mustValid()
	prev := math.Inf(1)
	for i := 0; i < len(c.pts); i++ {
		if i > 0 && almostEqual(c.pts[i].X, c.pts[i-1].X) {
			if c.pts[i-1].X > Eps {
				return false // interior jump
			}
			continue
		}
		if last := c.lastOfRun(i); last != i {
			continue
		}
		s := c.segSlope(i)
		if s > prev+Eps {
			return false
		}
		prev = s
	}
	return true
}

// IsConvex reports whether the curve is convex: segment slopes are
// non-decreasing and there are no jumps.
func (c Curve) IsConvex() bool {
	c.mustValid()
	if !c.IsContinuous() {
		return false
	}
	prev := math.Inf(-1)
	for i := 0; i < len(c.pts); i++ {
		s := c.segSlope(i)
		if s < prev-Eps {
			return false
		}
		prev = s
	}
	return true
}

// lastOfRun returns the index of the last point sharing pts[i].X.
func (c Curve) lastOfRun(i int) int {
	for i+1 < len(c.pts) && almostEqual(c.pts[i+1].X, c.pts[i].X) {
		i++
	}
	return i
}

// xBreaks returns the distinct breakpoint X coordinates.
func (c Curve) xBreaks() []float64 { return c.xBreaksArena(nil) }

// xBreaksArena is xBreaks with the output drawn from an arena.
func (c Curve) xBreaksArena(ar *Arena) []float64 {
	xs := ar.floats(len(c.pts))
	for i, p := range c.pts {
		if i > 0 && almostEqual(p.X, c.pts[i-1].X) {
			continue
		}
		xs = append(xs, p.X)
	}
	return xs
}

// Equal reports whether two curves describe the same function within
// tolerance. It compares values and one-sided limits at the union of
// breakpoints, a probe beyond both curves' last breakpoints, and the final
// slopes.
func (c Curve) Equal(o Curve) bool {
	c.mustValid()
	o.mustValid()
	if !almostEqual(c.slope, o.slope) {
		return false
	}
	xs := mergeXs(c.xBreaks(), o.xBreaks())
	far := xs[len(xs)-1] + 1
	xs = append(xs, far)
	for _, x := range xs {
		if !almostEqual(c.Eval(x), o.Eval(x)) || !almostEqual(c.EvalRight(x), o.EvalRight(x)) {
			return false
		}
	}
	return true
}

// String renders the curve breakpoints and final slope compactly.
func (c Curve) String() string {
	if !c.valid() {
		return "Curve{}"
	}
	var b strings.Builder
	b.WriteString("Curve{")
	for i, p := range c.pts {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "(%g,%g)", p.X, p.Y)
	}
	fmt.Fprintf(&b, " slope %g}", c.slope)
	return b.String()
}

// mergeXs merges two ascending float slices, removing near-duplicates.
func mergeXs(a, b []float64) []float64 {
	return mergeXsArena(nil, a, b)
}

// mergeXsArena is mergeXs with the output drawn from an arena.
func mergeXsArena(ar *Arena, a, b []float64) []float64 {
	out := ar.floats(len(a) + len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Float64s(out)
	dedup := out[:0]
	for _, x := range out {
		if len(dedup) == 0 || !almostEqual(dedup[len(dedup)-1], x) {
			dedup = append(dedup, x)
		}
	}
	return dedup
}

// mergeBreaks returns the near-deduplicated union of the distinct
// breakpoint abscissae of f and g — the same result as
// mergeXs(f.xBreaks(), g.xBreaks()) computed by a direct two-pointer merge
// over the breakpoint arrays, with a single output buffer.
func mergeBreaks(ar *Arena, f, g Curve) []float64 {
	out := ar.floats(len(f.pts) + len(g.pts))
	fp, gp := f.pts, g.pts
	i, j := 0, 0
	for i < len(fp) || j < len(gp) {
		var x float64
		if j >= len(gp) || (i < len(fp) && fp[i].X <= gp[j].X) {
			x = fp[i].X
			i++
			for i < len(fp) && almostEqual(fp[i].X, x) {
				i++
			}
		} else {
			x = gp[j].X
			j++
			for j < len(gp) && almostEqual(gp[j].X, x) {
				j++
			}
		}
		if len(out) == 0 || !almostEqual(out[len(out)-1], x) {
			out = append(out, x)
		}
	}
	return out
}

// fromEvaluator reconstructs a piecewise-linear curve from its values at a
// superset ts of its true breakpoints, a left-continuous evaluator, and the
// final slope beyond the last candidate. Jumps located at candidate points
// are recovered by probing segment midpoints. ts is sorted and consumed in
// place; with a non-nil arena the result curve aliases arena memory.
func fromEvaluator(ar *Arena, ts []float64, eval func(float64) float64, finalSlope float64) Curve {
	sort.Float64s(ts)
	dedup := ts[:0]
	for _, t := range ts {
		if t < 0 {
			continue
		}
		if len(dedup) == 0 || !almostEqual(dedup[len(dedup)-1], t) {
			dedup = append(dedup, t)
		}
	}
	ts = dedup
	if len(ts) == 0 || !almostEqual(ts[0], 0) {
		withZero := ar.floats(len(ts) + 1)
		withZero = append(withZero, 0)
		ts = append(withZero, ts...)
	}
	pts := ar.points(2 * len(ts))
	vals := ar.floats(len(ts))[:len(ts)]
	for i, t := range ts {
		vals[i] = eval(t)
	}
	for i, t := range ts {
		pts = append(pts, Point{t, vals[i]})
		if i+1 < len(ts) {
			mid := (t + ts[i+1]) / 2
			vm := eval(mid)
			// If the function is linear on (t, t+1) the value at mid
			// determines the right limit at t; a mismatch with vals[i]
			// reveals a jump at t.
			slope := (vals[i+1] - vm) / (ts[i+1] - mid)
			rightLim := vm - slope*(mid-t)
			if !almostEqual(rightLim, vals[i]) {
				pts = append(pts, Point{t, rightLim})
			}
		} else {
			// Tail: probe one unit out to find the right limit at the
			// last candidate under the declared final slope.
			vm := eval(t + 1)
			rightLim := vm - finalSlope*1
			if !almostEqual(rightLim, vals[i]) {
				pts = append(pts, Point{t, rightLim})
			}
		}
	}
	return newFromOwned(pts, finalSlope)
}

// RightSlope returns the slope of the curve on the segment immediately to
// the right of x (the right derivative, ignoring any jump at x itself).
func (c Curve) RightSlope(x float64) float64 {
	c.mustValid()
	if x < 0 {
		x = 0
	}
	j := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X > x })
	for j < len(c.pts) && almostEqual(c.pts[j].X, x) {
		j++
	}
	i := j - 1
	if i < 0 {
		i = 0
	}
	return c.segSlope(c.lastOfRun(i))
}
