package minplus

import (
	"encoding/binary"
	"math"
	"sync"
)

// Curve interning. The analysis layer rebuilds the same handful of
// token-bucket / rate-latency / rate envelopes constantly — once per
// connection per analysis pass — so the common builders memoize their
// results in a bounded table keyed by constructor parameters. Interned
// curves are shared: every operation in this package treats curves as
// immutable (all mutating steps happen on freshly-allocated buffers before
// a curve is returned), so sharing is safe, including across goroutines.

type internKind uint8

const (
	internRate internKind = iota + 1
	internTokenBucket
	internTokenBucketCapped
	internRateLatency
)

type internKey struct {
	kind    internKind
	a, b, c float64
}

// internMax bounds the builder table. Adversarial workloads (the falsify
// hill-climber mutates sigma/rho continuously) would otherwise grow it
// without bound; on overflow the table is simply dropped and re-warmed.
const internMax = 1 << 14

var (
	internMu  sync.RWMutex
	internTab map[internKey]Curve
)

// internCurve returns the cached curve for key, building and caching it on
// a miss.
func internCurve(k internKey, build func() Curve) Curve {
	internMu.RLock()
	c, ok := internTab[k]
	internMu.RUnlock()
	if ok {
		return c
	}
	c = build()
	internMu.Lock()
	if internTab == nil {
		internTab = make(map[internKey]Curve, 256)
	} else if len(internTab) >= internMax {
		clear(internTab)
	}
	internTab[k] = c
	internMu.Unlock()
	return c
}

// Digest returns a canonical 64-bit digest of the curve: FNV-1a over the
// breakpoint coordinates and the final slope. Equal representations have
// equal digests; it is the key used by Intern and a cheap identity for
// cache layers above this package.
func (c Curve) Digest() uint64 {
	c.mustValid()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var buf [8]byte
	mix := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime64
		}
	}
	for _, p := range c.pts {
		mix(p.X)
		mix(p.Y)
	}
	mix(c.slope)
	return h
}

var (
	digestMu  sync.RWMutex
	digestTab map[uint64]Curve
)

// Intern returns a canonical shared instance of c: the first curve
// interned with a given digest wins and later structurally-identical
// curves are replaced by it, so repeated envelopes collapse to one
// backing array. Curves whose digest collides with a structurally
// different entry are returned unchanged. The caller must treat the
// result as immutable (true of every curve in this package) and must not
// intern arena-backed curves without Clone-ing them first.
func Intern(c Curve) Curve {
	d := c.Digest()
	digestMu.RLock()
	cached, ok := digestTab[d]
	digestMu.RUnlock()
	if ok {
		if sameRepr(cached, c) {
			return cached
		}
		return c
	}
	digestMu.Lock()
	if digestTab == nil {
		digestTab = make(map[uint64]Curve, 256)
	} else if len(digestTab) >= internMax {
		clear(digestTab)
	}
	digestTab[d] = c
	digestMu.Unlock()
	return c
}

// sameRepr reports whether two curves have bit-identical representations.
func sameRepr(a, b Curve) bool {
	if a.slope != b.slope || len(a.pts) != len(b.pts) {
		return false
	}
	for i := range a.pts {
		if a.pts[i] != b.pts[i] {
			return false
		}
	}
	return true
}

// internReset clears both intern tables (test hook).
func internReset() {
	internMu.Lock()
	internTab = nil
	internMu.Unlock()
	digestMu.Lock()
	digestTab = nil
	digestMu.Unlock()
}
