package minplus

import "math"

// ConvolveSampled computes the min-plus convolution on a uniform time grid
// of the given step, up to the horizon, with the exact affine tail beyond
// it. It exists as the baseline for the exact/sampled ablation
// (BenchmarkAblationSampling): grid evaluation is how several network
// calculus tools approximate convolution, trading a discretization error
// of up to (step * max slope) for predictable cost.
//
// The sampled result is NOT sound in general — sampling an infimum can
// overshoot the true curve between grid points — so the library's
// analyzers always use the exact Convolve; this function is for
// measurement and comparison only.
func ConvolveSampled(f, g Curve, step, horizon float64) Curve {
	f.mustValid()
	g.mustValid()
	if step <= 0 || horizon <= 0 {
		panic("minplus: ConvolveSampled needs positive step and horizon")
	}
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: ConvolveSampled requires non-decreasing curves")
	}
	n := int(math.Ceil(horizon/step)) + 1
	fv := make([]float64, n)
	gv := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) * step
		fv[i] = f.Eval(t)
		gv[i] = g.Eval(t)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for s := 0; s <= i; s++ {
			if v := fv[s] + gv[i-s]; v < best {
				best = v
			}
		}
		pts = append(pts, Point{float64(i) * step, best})
	}
	return New(pts, math.Min(f.FinalSlope(), g.FinalSlope()))
}
