package minplus

import "sort"

// Cursor evaluates one curve at a non-decreasing sequence of arguments in
// amortized constant time per call by remembering the active segment
// between calls. It returns exactly what Curve.Eval / Curve.EvalRight
// return; if an argument moves backwards the cursor transparently rewinds
// (correct, just no longer amortized-constant).
type Cursor struct {
	c     Curve
	left  int // lower bound for the next Eval search
	right int // lower bound for the next EvalRight search
	lastX float64
}

// NewCursor returns a cursor over c positioned at the origin.
func NewCursor(c Curve) Cursor {
	c.mustValid()
	return Cursor{c: c}
}

// rewind restarts both scan positions when the argument sequence goes
// backwards.
func (cu *Cursor) rewind(x float64) {
	if x < cu.lastX {
		cu.left, cu.right = 0, 0
	}
	cu.lastX = x
}

// Eval returns the left-continuous value f(x), identically to Curve.Eval.
func (cu *Cursor) Eval(x float64) float64 {
	cu.rewind(x)
	pts := cu.c.pts
	if x <= 0 {
		return pts[0].Y
	}
	// Advance to the first index whose X is >= x or within tolerance of x
	// (the same index Curve.Eval reaches via binary search plus backup).
	j := cu.left
	for j < len(pts) && pts[j].X < x && !almostEqual(pts[j].X, x) {
		j++
	}
	cu.left = j
	if j < len(pts) && almostEqual(pts[j].X, x) {
		return pts[j].Y
	}
	i := j - 1
	if i < 0 {
		return pts[0].Y
	}
	return pts[i].Y + cu.c.segSlope(i)*(x-pts[i].X)
}

// EvalRight returns the right limit f(x+), identically to Curve.EvalRight.
func (cu *Cursor) EvalRight(x float64) float64 {
	cu.rewind(x)
	pts := cu.c.pts
	if x < 0 {
		x = 0
	}
	// Advance to the first index whose X is > x and not within tolerance.
	j := cu.right
	for j < len(pts) && (pts[j].X <= x || almostEqual(pts[j].X, x)) {
		j++
	}
	cu.right = j
	i := j - 1
	if i < 0 {
		return pts[0].Y
	}
	return pts[i].Y + cu.c.segSlope(i)*(x-pts[i].X)
}

// SumN returns the exact pointwise sum of any number of curves in a single
// k-way sweep over the union of the operands' breakpoint abscissae, using
// one cursor per operand. The piecewise sum is linear between union
// breakpoints, so evaluating value and right limit at each union abscissa
// reconstructs the sum exactly; total cost is O(B log B) for B total
// breakpoints, against the quadratic pairwise fold it replaces. Operands
// whose breakpoints all sit at the origin (affine curves, token buckets —
// the overwhelmingly common envelope shape) take a closed-form fast path
// with no sweep at all. SumN() is the zero curve.
func SumN(curves ...Curve) Curve { return sumN(nil, curves) }

// SumN is the arena variant of the package-level SumN: scratch buffers and
// the result curve are drawn from the arena.
func (a *Arena) SumN(curves ...Curve) Curve { return sumN(a, curves) }

// SumNSlice sums a slice of curves into the arena without the variadic
// copy the ... form forces at call sites that already hold a slice.
func (a *Arena) SumNSlice(curves []Curve) Curve { return sumN(a, curves) }

func sumN(ar *Arena, curves []Curve) Curve {
	switch len(curves) {
	case 0:
		return Zero()
	case 1:
		curves[0].mustValid()
		return curves[0]
	}
	slope := 0.0
	total := 0
	allOrigin := true
	for i := range curves {
		curves[i].mustValid()
		slope += curves[i].slope
		total += len(curves[i].pts)
		if curves[i].pts[len(curves[i].pts)-1].X > Eps {
			allOrigin = false
		}
	}
	if allOrigin {
		// Every operand is v0 at 0, then affine from its right limit: the
		// sum is the same shape with summed ordinates and slope.
		v0, vr := 0.0, 0.0
		for i := range curves {
			p := curves[i].pts
			v0 += p[0].Y
			vr += p[len(p)-1].Y
		}
		pts := ar.points(2)
		pts = append(pts, Point{0, v0})
		if !almostEqual(v0, vr) {
			pts = append(pts, Point{0, vr})
		}
		return Curve{pts: pts, slope: slope}
	}
	// Union of distinct breakpoint abscissae.
	xs := ar.floats(total)
	for i := range curves {
		pts := curves[i].pts
		for j, p := range pts {
			if j > 0 && almostEqual(p.X, pts[j-1].X) {
				continue
			}
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	dedup := xs[:0]
	for _, x := range xs {
		if len(dedup) == 0 || !almostEqual(dedup[len(dedup)-1], x) {
			dedup = append(dedup, x)
		}
	}
	xs = dedup

	cursors := ar.cursors(len(curves))
	for i := range curves {
		cursors[i] = NewCursor(curves[i])
	}
	pts := ar.points(2 * len(xs))
	for _, x := range xs {
		v, vr := 0.0, 0.0
		for i := range cursors {
			v += cursors[i].Eval(x)
			vr += cursors[i].EvalRight(x)
		}
		pts = append(pts, Point{x, v})
		if !almostEqual(v, vr) {
			pts = append(pts, Point{x, vr})
		}
	}
	out := Curve{pts: pts, slope: slope}
	out.normalize()
	return out
}
