package minplus

// ShiftPool recycles breakpoint storage for repeated ShiftLefts whose
// results must persist until the same slot's next shift — the propagation
// state of an analysis, where each connection's envelope is shifted once
// per traversed subnetwork and only the latest result (plus, transiently,
// its immediate predecessor) is live. Each slot owns two fixed-capacity
// buffers carved from one backing slab and alternates between them: a
// shift writes into the buffer not backing its input, so the input — which
// may alias the slot's other buffer or be a shared interned curve — is
// never clobbered. A shift that outgrows the slot's capacity spills that
// result to the heap; the slot buffers are full-sliced, so an overflow can
// never run into a neighbouring slot.
//
// Distinct slots may be used concurrently (they write disjoint slab
// ranges, and a lazy slot carves its own private buffer); a single slot
// must not.
type ShiftPool struct {
	a, b [][]Point
	// hints is retained only by lazy pools: a slot's buffers are carved on
	// its first shift instead of up front, so uses that touch few slots —
	// an incremental extension shifts only the dirty closure — pay for
	// those alone instead of one network-sized slab.
	hints []int
}

// NewShiftPool sizes a pool of len(hints) slots, hints[i] being slot i's
// per-buffer point capacity, with all slots carved from one slab up
// front — the right shape when most slots will shift (a full analysis).
func NewShiftPool(hints []int) *ShiftPool {
	total := 0
	for _, h := range hints {
		total += h
	}
	slab := make([]Point, 2*total)
	sp := &ShiftPool{a: make([][]Point, len(hints)), b: make([][]Point, len(hints))}
	off := 0
	for i, h := range hints {
		sp.a[i] = slab[off : off : off+h]
		off += h
		sp.b[i] = slab[off : off : off+h]
		off += h
	}
	return sp
}

// NewLazyShiftPool is NewShiftPool without the up-front slab: each slot
// allocates its two buffers on its first shift. The right shape when only
// a few slots will ever shift (an incremental extension's dirty closure).
func NewLazyShiftPool(hints []int) *ShiftPool {
	return &ShiftPool{
		a:     make([][]Point, len(hints)),
		b:     make([][]Point, len(hints)),
		hints: hints,
	}
}

// sameBase reports whether two slices share a backing array, by first
// element identity. Safe on zero-length slices with spare capacity.
func sameBase(a, b []Point) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:1][0] == &b[:1][0]
}

// ShiftLeft is ShiftLeft(f, d) with the result stored in slot's spare
// buffer. The returned curve is valid until the slot's next-next shift
// (double buffering keeps the immediately preceding result intact).
func (sp *ShiftPool) ShiftLeft(slot int, f Curve, d float64) Curve {
	f.mustValid()
	if d < 0 {
		panic("minplus: ShiftLeft by negative amount")
	}
	if d == 0 {
		return f
	}
	if sp.hints != nil && cap(sp.a[slot]) == 0 && sp.hints[slot] > 0 {
		// Lazy pool, first shift on this slot: carve its double buffer
		// now. Distinct slots stay concurrency-safe — each writes only
		// its own index.
		h := sp.hints[slot]
		buf := make([]Point, 2*h)
		sp.a[slot] = buf[0:0:h]
		sp.b[slot] = buf[h:h : 2*h]
	}
	dst := sp.a[slot]
	if sameBase(dst, f.pts) {
		dst = sp.b[slot]
	}
	if cap(dst) < len(f.pts)+2 {
		dst = make([]Point, 0, len(f.pts)+2)
	}
	return shiftLeftInto(dst, f, d)
}
