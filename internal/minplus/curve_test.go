package minplus

import (
	"math"
	"strings"
	"testing"
)

func TestNewSortsAndNormalizes(t *testing.T) {
	c := New([]Point{{2, 4}, {0, 0}, {1, 2}}, 2)
	// All three points are collinear with the final slope: a single point
	// should remain.
	if got := c.NumPoints(); got != 1 {
		t.Fatalf("NumPoints = %d, want 1 (collinear merge), curve %v", got, c)
	}
	if c.FinalSlope() != 2 {
		t.Fatalf("FinalSlope = %g, want 2", c.FinalSlope())
	}
}

func TestNewKeepsJumps(t *testing.T) {
	c := New([]Point{{0, 0}, {0, 5}}, 1)
	if c.NumPoints() != 2 {
		t.Fatalf("NumPoints = %d, want 2 (jump preserved)", c.NumPoints())
	}
	if got := c.Eval(0); got != 0 {
		t.Errorf("Eval(0) = %g, want 0 (left-continuous)", got)
	}
	if got := c.EvalRight(0); got != 5 {
		t.Errorf("EvalRight(0) = %g, want 5", got)
	}
}

func TestNewCollapsesTripleJump(t *testing.T) {
	c := New([]Point{{0, 0}, {0, 3}, {0, 1}}, 1)
	if c.NumPoints() != 2 {
		t.Fatalf("NumPoints = %d, want 2", c.NumPoints())
	}
	if got := c.EvalRight(0); got != 3 {
		t.Errorf("EvalRight(0) = %g, want 3 (max of run)", got)
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { New(nil, 0) }},
		{"first not at zero", func() { New([]Point{{1, 0}}, 0) }},
		{"NaN Y", func() { New([]Point{{0, math.NaN()}}, 0) }},
		{"Inf slope", func() { New([]Point{{0, 0}}, math.Inf(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestEvalInteriorAndTail(t *testing.T) {
	// f: 0 at 0, rises at slope 2 to (3,6), then slope 0.5.
	f := New([]Point{{0, 0}, {3, 6}}, 0.5)
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {1, 2}, {3, 6}, {5, 7},
	}
	for _, tc := range cases {
		if got := f.Eval(tc.x); !almostEqual(got, tc.want) {
			t.Errorf("Eval(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestEvalAroundJump(t *testing.T) {
	// Step of height 4 at x=2.
	f := Step(4, 2)
	if got := f.Eval(2); got != 0 {
		t.Errorf("Eval(2) = %g, want 0 (left limit at jump)", got)
	}
	if got := f.EvalRight(2); got != 4 {
		t.Errorf("EvalRight(2) = %g, want 4", got)
	}
	if got := f.Eval(2.5); got != 4 {
		t.Errorf("Eval(2.5) = %g, want 4", got)
	}
	if got := f.Eval(1.999); got != 0 {
		t.Errorf("Eval(1.999) = %g, want 0", got)
	}
}

func TestIsNonDecreasing(t *testing.T) {
	if !TokenBucket(2, 1).IsNonDecreasing() {
		t.Error("token bucket should be non-decreasing")
	}
	dec := New([]Point{{0, 5}, {1, 3}}, 0)
	if dec.IsNonDecreasing() {
		t.Error("decreasing curve misreported as non-decreasing")
	}
	negSlope := New([]Point{{0, 0}}, -1)
	if negSlope.IsNonDecreasing() {
		t.Error("negative final slope misreported as non-decreasing")
	}
}

func TestIsContinuous(t *testing.T) {
	if !TokenBucketCapped(2, 0.5, 1).IsContinuous() {
		t.Error("capped token bucket should be continuous")
	}
	if TokenBucket(2, 1).IsContinuous() {
		t.Error("token bucket has a jump at 0 and is not continuous")
	}
}

func TestIsConcaveConvex(t *testing.T) {
	tb := TokenBucketCapped(3, 0.25, 1)
	if !tb.IsConcave() {
		t.Errorf("capped token bucket should be concave: %v", tb)
	}
	if tb.IsConvex() {
		t.Errorf("capped token bucket should not be convex: %v", tb)
	}
	rl := RateLatency(2, 1)
	if !rl.IsConvex() {
		t.Errorf("rate-latency should be convex: %v", rl)
	}
	if rl.IsConcave() {
		t.Errorf("rate-latency should not be concave: %v", rl)
	}
	if !Rate(1).IsConcave() || !Rate(1).IsConvex() {
		t.Error("a line should be both concave and convex")
	}
	// Pure token bucket: jump at 0 does not break concavity on (0, inf).
	if !TokenBucket(2, 1).IsConcave() {
		t.Error("token bucket should be concave on (0, inf)")
	}
	// An interior jump does break concavity.
	if Step(1, 2).IsConcave() {
		t.Error("interior step should not be concave")
	}
}

func TestEqual(t *testing.T) {
	a := TokenBucketCapped(2, 0.5, 1)
	b := New([]Point{{0, 0}, {4, 4}}, 0.5)
	if !a.Equal(b) {
		t.Errorf("curves should be equal: %v vs %v", a, b)
	}
	c := TokenBucketCapped(2, 0.6, 1)
	if a.Equal(c) {
		t.Errorf("curves should differ: %v vs %v", a, c)
	}
	if a.Equal(TokenBucket(2, 0.5)) {
		t.Error("capped and pure token buckets should differ near 0")
	}
}

func TestString(t *testing.T) {
	s := TokenBucket(2, 1).String()
	for _, want := range []string{"(0,0)", "(0,2)", "slope 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestZeroValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-value Curve")
		}
	}()
	var c Curve
	c.Eval(1)
}

func TestBuilders(t *testing.T) {
	if got := Zero().Eval(100); got != 0 {
		t.Errorf("Zero().Eval(100) = %g", got)
	}
	if got := Constant(7).Eval(3); got != 7 {
		t.Errorf("Constant(7).Eval(3) = %g", got)
	}
	if got := Affine(2, 1).Eval(3); got != 7 {
		t.Errorf("Affine(2,1).Eval(3) = %g", got)
	}
	if got := Identity().Eval(4.5); got != 4.5 {
		t.Errorf("Identity().Eval(4.5) = %g", got)
	}
	rl := RateLatency(3, 2)
	if got := rl.Eval(1); got != 0 {
		t.Errorf("RateLatency.Eval(1) = %g, want 0", got)
	}
	if got := rl.Eval(4); got != 6 {
		t.Errorf("RateLatency.Eval(4) = %g, want 6", got)
	}
	if got := RateLatency(3, 0).Eval(2); got != 6 {
		t.Errorf("RateLatency(3,0).Eval(2) = %g, want 6", got)
	}
}

func TestTokenBucketCapped(t *testing.T) {
	f := TokenBucketCapped(1, 0.25, 1)
	// Knee at sigma/(c-rho) = 1/0.75.
	knee := 1 / 0.75
	if got := f.Eval(knee / 2); !almostEqual(got, knee/2) {
		t.Errorf("below knee Eval = %g, want %g (line c*t)", got, knee/2)
	}
	if got := f.Eval(knee + 4); !almostEqual(got, 1+0.25*(knee+4)) {
		t.Errorf("above knee Eval = %g, want %g", got, 1+0.25*(knee+4))
	}
	if !f.IsContinuous() || !f.IsConcave() {
		t.Error("capped token bucket must be continuous and concave")
	}
	// rho == c collapses to the line.
	if !TokenBucketCapped(1, 1, 1).Equal(Rate(1)) {
		t.Error("TokenBucketCapped(1,1,1) should equal Rate(1)")
	}
	// sigma == 0 is the pure rate.
	if !TokenBucketCapped(0, 0.5, 1).Equal(Rate(0.5)) {
		t.Error("TokenBucketCapped(0,rho,c) should equal Rate(rho)")
	}
}

func TestDelayAndShiftLeft(t *testing.T) {
	f := TokenBucketCapped(2, 0.5, 1)
	d := Delay(f, 3)
	if got := d.Eval(2); got != 0 {
		t.Errorf("Delay.Eval(2) = %g, want 0", got)
	}
	if got, want := d.Eval(5), f.Eval(2); !almostEqual(got, want) {
		t.Errorf("Delay.Eval(5) = %g, want %g", got, want)
	}
	back := ShiftLeft(d, 3)
	if !back.Equal(f) {
		t.Errorf("ShiftLeft(Delay(f,3),3) = %v, want %v", back, f)
	}
	if !Delay(f, 0).Equal(f) || !ShiftLeft(f, 0).Equal(f) {
		t.Error("zero shifts must be identity")
	}
}

func TestShiftLeftAcrossJump(t *testing.T) {
	f := Step(4, 2)
	g := ShiftLeft(f, 2)
	// g(0) should keep the left value 0 and jump immediately.
	if got := g.Eval(0); got != 0 {
		t.Errorf("g.Eval(0) = %g, want 0", got)
	}
	if got := g.EvalRight(0); got != 4 {
		t.Errorf("g.EvalRight(0) = %g, want 4", got)
	}
}

func TestVShiftScale(t *testing.T) {
	f := TokenBucketCapped(2, 0.5, 1)
	up := VShift(f, 3)
	if got, want := up.Eval(1), f.Eval(1)+3; !almostEqual(got, want) {
		t.Errorf("VShift eval = %g, want %g", got, want)
	}
	sy := ScaleY(f, 2)
	if got, want := sy.Eval(5), 2*f.Eval(5); !almostEqual(got, want) {
		t.Errorf("ScaleY eval = %g, want %g", got, want)
	}
	sx := ScaleX(f, 2)
	if got, want := sx.Eval(8), f.Eval(4); !almostEqual(got, want) {
		t.Errorf("ScaleX eval = %g, want %g", got, want)
	}
	if !almostEqual(sx.FinalSlope(), f.FinalSlope()/2) {
		t.Errorf("ScaleX final slope = %g, want %g", sx.FinalSlope(), f.FinalSlope()/2)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"TokenBucket negative sigma", func() { TokenBucket(-1, 0) }},
		{"TokenBucketCapped rho>c", func() { TokenBucketCapped(1, 2, 1) }},
		{"RateLatency negative", func() { RateLatency(-1, 0) }},
		{"Rate negative", func() { Rate(-1) }},
		{"Delay negative", func() { Delay(Zero(), -1) }},
		{"ScaleY negative", func() { ScaleY(Zero(), -1) }},
		{"ScaleX zero", func() { ScaleX(Zero(), 0) }},
		{"Step negative", func() { Step(1, -1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}
