package minplus

import "sync"

// Arena is a bump allocator for the transient buffers behind curve
// operations: breakpoint slices, abscissa unions, convex segments, sweep
// cursors and envelope branch lists. Operations invoked through an Arena
// (a.SumN, a.Convolve, a.ConvolveGated, ...) carve their result and
// scratch storage out of slabs owned by the arena instead of the heap, so
// a steady-state analysis loop that calls Reset between iterations
// allocates nothing once the slabs have grown to the high-water mark.
//
// Lifetime rules:
//
//   - Curves returned by arena methods alias arena memory and are valid
//     only until the next Reset or Release. Copy them (Clone) before
//     storing them anywhere that outlives the arena scope.
//   - An Arena is NOT safe for concurrent use. Parallel workers must each
//     obtain their own arena (GetArena) and Release it when done.
//   - A nil *Arena is valid everywhere and falls back to heap allocation,
//     so code can be written once against the arena API.
//
// The zero value is ready to use.
type Arena struct {
	pt  slab[Point]
	f64 slab[float64]
	seg slab[SlopeSeg]
	cur slab[Cursor]
	cv  slab[Curve]
}

// slab is a grow-only block list handing out exact-capacity sub-slices.
// Full three-index slicing caps every buffer at its requested capacity, so
// an append past the hint spills to the heap instead of clobbering a
// neighbouring allocation.
type slab[T any] struct {
	blocks [][]T
	bi     int // current block
	off    int // used prefix of blocks[bi]
}

// arenaBlock is the minimum slab block length, in elements.
const arenaBlock = 2048

func (s *slab[T]) alloc(n int) []T {
	if n < 0 {
		panic("minplus: negative arena allocation")
	}
	for s.bi < len(s.blocks) {
		b := s.blocks[s.bi]
		if len(b)-s.off >= n {
			out := b[s.off : s.off : s.off+n]
			s.off += n
			return out
		}
		s.bi++
		s.off = 0
	}
	size := arenaBlock
	if n > size {
		size = n
	}
	b := make([]T, size)
	s.blocks = append(s.blocks, b)
	s.bi = len(s.blocks) - 1
	s.off = n
	return b[0:0:n]
}

func (s *slab[T]) reset() { s.bi, s.off = 0, 0 }

// NewArena returns an empty arena. Prefer GetArena in hot paths so slabs
// are recycled through the package pool.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena: every buffer previously handed out is invalid
// and the slabs are reused by subsequent allocations. Memory is retained
// at the high-water mark.
func (a *Arena) Reset() {
	a.pt.reset()
	a.f64.reset()
	a.seg.reset()
	a.cur.reset()
	a.cv.reset()
}

var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// GetArena takes a reset arena from the package pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// Release resets the arena and returns it to the package pool. The caller
// must not use the arena, or any curve built in it, afterwards. Release on
// a nil arena is a no-op.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// points returns an empty Point buffer with the given capacity, from the
// arena when non-nil and the heap otherwise.
func (a *Arena) points(n int) []Point {
	if a == nil {
		return make([]Point, 0, n)
	}
	return a.pt.alloc(n)
}

// floats returns an empty float64 buffer with the given capacity.
func (a *Arena) floats(n int) []float64 {
	if a == nil {
		return make([]float64, 0, n)
	}
	return a.f64.alloc(n)
}

// segs returns an empty SlopeSeg buffer with the given capacity.
func (a *Arena) segs(n int) []SlopeSeg {
	if a == nil {
		return make([]SlopeSeg, 0, n)
	}
	return a.seg.alloc(n)
}

// cursors returns a zeroed Cursor slice of length n.
func (a *Arena) cursors(n int) []Cursor {
	if a == nil {
		return make([]Cursor, n)
	}
	out := a.cur.alloc(n)[:n]
	for i := range out {
		out[i] = Cursor{}
	}
	return out
}

// curves returns an empty Curve buffer with the given capacity.
func (a *Arena) curves(n int) []Curve {
	if a == nil {
		return make([]Curve, 0, n)
	}
	return a.cv.alloc(n)[:0]
}

// Curves returns an empty Curve buffer with the given capacity, for
// callers assembling operand lists (e.g. for SumNSlice) without a heap
// allocation per call. The buffer obeys the arena lifetime rules.
func (a *Arena) Curves(n int) []Curve { return a.curves(n) }

// Floats returns an empty float64 buffer with the given capacity, for
// callers assembling scalar scratch (candidate lists, sample grids)
// without a heap allocation per call. The buffer obeys the arena
// lifetime rules. Note that arena memory is not zeroed.
func (a *Arena) Floats(n int) []float64 { return a.floats(n) }

// Clone copies a curve's breakpoints to the heap, detaching it from any
// arena it was built in. Use it to keep a result past Reset/Release.
func (c Curve) Clone() Curve {
	c.mustValid()
	cp := make([]Point, len(c.pts))
	copy(cp, c.pts)
	return Curve{pts: cp, slope: c.slope}
}
