package minplus

import (
	"math"
	"testing"
)

// fuzzCurve builds a non-decreasing curve from raw fuzz bytes, or nil when
// the bytes cannot form one.
func fuzzCurve(data []byte) *Curve {
	if len(data) < 3 {
		return nil
	}
	slope := float64(data[0]%32) / 8
	pts := []Point{{0, 0}}
	x, y := 0.0, 0.0
	for i := 1; i+1 < len(data) && len(pts) < 8; i += 2 {
		dx := float64(data[i]%16) / 4
		dy := float64(data[i+1]%16) / 4
		x += dx
		y += dy
		pts = append(pts, Point{x, y})
	}
	c := New(pts, slope)
	return &c
}

// FuzzAlgebra checks structural invariants of the core operations on
// arbitrary generated curves: no panics, monotonicity preservation, and
// the defining inequalities of min/convolution. The seed corpus runs in
// the normal test suite; `go test -fuzz FuzzAlgebra ./internal/minplus`
// explores further.
func FuzzAlgebra(f *testing.F) {
	f.Add([]byte{8, 1, 1, 2, 2, 0, 4}, []byte{4, 2, 0, 0, 3, 3, 1})
	f.Add([]byte{0, 0, 0}, []byte{31, 15, 15})
	f.Add([]byte{1, 0, 15, 15, 0}, []byte{2, 8, 8})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		fc, gc := fuzzCurve(a), fuzzCurve(b)
		if fc == nil || gc == nil {
			return
		}
		fcur, gcur := *fc, *gc
		sum := Add(fcur, gcur)
		mn := Min(fcur, gcur)
		mx := Max(fcur, gcur)
		conv := Convolve(fcur, gcur)
		for _, c := range []Curve{sum, mn, mx, conv} {
			if !c.IsNonDecreasing() {
				t.Fatalf("result not monotone: %v (f=%v g=%v)", c, fcur, gcur)
			}
		}
		hi := fcur.LastX() + gcur.LastX() + 2
		for i := 0; i <= 16; i++ {
			x := hi * float64(i) / 16
			fv, gv := fcur.Eval(x), gcur.Eval(x)
			if mn.Eval(x) > math.Min(fv, gv)+1e-6 {
				t.Fatalf("min above operands at %g", x)
			}
			if mx.Eval(x) < math.Max(fv, gv)-1e-6 {
				t.Fatalf("max below operands at %g", x)
			}
			if s := sum.Eval(x); math.Abs(s-(fv+gv)) > 1e-6 {
				t.Fatalf("sum wrong at %g: %g vs %g", x, s, fv+gv)
			}
			// Convolution never exceeds either split at the endpoints.
			if conv.Eval(x) > fv+gcur.Eval(0)+1e-6 {
				t.Fatalf("conv above f-split at %g", x)
			}
			if conv.Eval(x) > gv+fcur.Eval(0)+1e-6 {
				t.Fatalf("conv above g-split at %g", x)
			}
		}
		// Deviations must be consistent: against the same service curve,
		// sup-diff of the min never exceeds that of either operand.
		beta := RateLatency(1, 1)
		dm := SupDiff(mn, beta)
		if df := SupDiff(fcur, beta); dm > df+1e-6 {
			t.Fatalf("SupDiff(min) %g > SupDiff(f) %g", dm, df)
		}
	})
}
