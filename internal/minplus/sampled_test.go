package minplus

import (
	"math"
	"testing"
)

func TestConvolveSampledApproachesExact(t *testing.T) {
	f := TokenBucketCapped(3, 0.25, 1)
	g := RateLatency(0.8, 2)
	exact := Convolve(f, g)
	prevErr := math.Inf(1)
	for _, step := range []float64{1, 0.25, 0.0625} {
		sampled := ConvolveSampled(f, g, step, 30)
		worst := 0.0
		for i := 0; i <= 100; i++ {
			x := 30 * float64(i) / 100
			if d := math.Abs(sampled.Eval(x) - exact.Eval(x)); d > worst {
				worst = d
			}
		}
		if worst > prevErr+1e-9 {
			t.Errorf("step %g: error %g did not shrink (prev %g)", step, worst, prevErr)
		}
		prevErr = worst
	}
	if prevErr > 0.2 {
		t.Errorf("finest grid still off by %g", prevErr)
	}
}

func TestConvolveSampledNeverBelowExact(t *testing.T) {
	// Sampling restricts the infimum to grid split points, so the sampled
	// curve can only be above the exact one at grid points.
	f := TokenBucket(2, 0.5)
	g := RateLatency(1, 1.5)
	exact := Convolve(f, g)
	sampled := ConvolveSampled(f, g, 0.3, 20)
	for i := 0; i <= 60; i++ {
		x := 0.3 * float64(i)
		if sampled.Eval(x) < exact.Eval(x)-1e-9 {
			t.Errorf("sampled %g below exact %g at %g", sampled.Eval(x), exact.Eval(x), x)
		}
	}
}

func TestConvolveSampledPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ConvolveSampled(Zero(), Zero(), 0, 10) },
		func() { ConvolveSampled(Zero(), Zero(), 0.1, 0) },
		func() { ConvolveSampled(New([]Point{{0, 5}, {1, 0}}, 0), Zero(), 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
