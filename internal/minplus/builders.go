package minplus

import (
	"fmt"
	"math"
)

// zeroCurve is the immutable shared zero curve. Curves are never mutated
// after construction, so handing out the same value is safe.
var zeroCurve = Curve{pts: []Point{{0, 0}}, slope: 0}

// Zero returns the identically-zero curve.
func Zero() Curve { return zeroCurve }

// Constant returns the constant curve f(t) = v.
func Constant(v float64) Curve { return constant(nil, v) }

func constant(ar *Arena, v float64) Curve {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("minplus: non-finite breakpoint %+v", Point{0, v}))
	}
	if v == 0 {
		return zeroCurve
	}
	pts := ar.points(1)
	pts = append(pts, Point{0, v})
	return Curve{pts: pts, slope: 0}
}

// Affine returns f(t) = b + r*t.
func Affine(r, b float64) Curve {
	if math.IsNaN(r) || math.IsInf(r, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		panic(fmt.Sprintf("minplus: Affine(%g, %g) with non-finite parameter", r, b))
	}
	return Curve{pts: []Point{{0, b}}, slope: r}
}

// Rate returns the service line f(t) = c*t of a constant-rate server.
func Rate(c float64) Curve {
	if c < 0 {
		panic("minplus: Rate with negative capacity")
	}
	return internCurve(internKey{kind: internRate, a: c}, func() Curve {
		return Affine(c, 0)
	})
}

// Identity returns f(t) = t.
func Identity() Curve { return identityCurve }

var identityCurve = Curve{pts: []Point{{0, 0}}, slope: 1}

// TokenBucket returns the arrival curve of a (sigma, rho) token bucket:
// f(0) = 0 and f(t) = sigma + rho*t for t > 0. The burst appears as a jump
// at the origin.
func TokenBucket(sigma, rho float64) Curve {
	if sigma < 0 || rho < 0 {
		panic(fmt.Sprintf("minplus: TokenBucket(%g, %g) with negative parameter", sigma, rho))
	}
	return internCurve(internKey{kind: internTokenBucket, a: sigma, b: rho}, func() Curve {
		if sigma == 0 {
			return Affine(rho, 0)
		}
		return New([]Point{{0, 0}, {0, sigma}}, rho)
	})
}

// TokenBucketCapped returns min{c*t, sigma + rho*t}: a (sigma, rho) token
// bucket emitted through an access link of capacity c, as used for the
// source traffic in the paper's evaluation (continuous, concave). Requires
// rho <= c.
func TokenBucketCapped(sigma, rho, c float64) Curve {
	if sigma < 0 || rho < 0 || c <= 0 {
		panic(fmt.Sprintf("minplus: TokenBucketCapped(%g, %g, %g) with invalid parameter", sigma, rho, c))
	}
	if rho > c+Eps {
		panic(fmt.Sprintf("minplus: TokenBucketCapped rate %g exceeds capacity %g", rho, c))
	}
	return internCurve(internKey{kind: internTokenBucketCapped, a: sigma, b: rho, c: c}, func() Curve {
		if sigma == 0 || almostEqual(rho, c) {
			return Affine(math.Min(rho, c), 0)
		}
		x := sigma / (c - rho) // c*x == sigma + rho*x
		return New([]Point{{0, 0}, {x, c * x}}, rho)
	})
}

// RateLatency returns the service curve beta_{r,T}(t) = r * max(0, t-T) of
// a guaranteed-rate (latency-rate) server.
func RateLatency(r, t float64) Curve {
	if r < 0 || t < 0 {
		panic(fmt.Sprintf("minplus: RateLatency(%g, %g) with negative parameter", r, t))
	}
	return internCurve(internKey{kind: internRateLatency, a: r, b: t}, func() Curve {
		if t == 0 {
			return Affine(r, 0)
		}
		return New([]Point{{0, 0}, {t, 0}}, r)
	})
}

// Step returns the curve that is 0 for t <= at and h afterwards.
func Step(h, at float64) Curve {
	if at < 0 {
		panic("minplus: Step at negative time")
	}
	if at == 0 {
		return TokenBucket(h, 0)
	}
	return New([]Point{{0, 0}, {at, 0}, {at, h}}, 0)
}

// Delay returns the curve shifted right by d: h(t) = f(t-d) for t > d and
// h(t) = f(0) for t <= d. Used to delay service curves and arrival
// envelopes. Requires d >= 0.
func Delay(f Curve, d float64) Curve { return delay(nil, f, d) }

// Delay is the arena variant of the package-level Delay.
func (a *Arena) Delay(f Curve, d float64) Curve { return delay(a, f, d) }

func delay(ar *Arena, f Curve, d float64) Curve {
	f.mustValid()
	if d < 0 {
		panic("minplus: Delay by negative amount")
	}
	if d == 0 {
		return f
	}
	pts := ar.points(len(f.pts) + 1)
	pts = append(pts, Point{0, f.pts[0].Y})
	for _, p := range f.pts {
		pts = append(pts, Point{p.X + d, p.Y})
	}
	return newFromOwned(pts, f.slope)
}

// ShiftLeft returns h(t) = f(t+d) on [0, inf). Requires d >= 0.
func ShiftLeft(f Curve, d float64) Curve { return shiftLeft(nil, f, d) }

// ShiftLeft is the arena variant of the package-level ShiftLeft.
func (a *Arena) ShiftLeft(f Curve, d float64) Curve { return shiftLeft(a, f, d) }

func shiftLeft(ar *Arena, f Curve, d float64) Curve {
	f.mustValid()
	if d < 0 {
		panic("minplus: ShiftLeft by negative amount")
	}
	if d == 0 {
		return f
	}
	return shiftLeftInto(ar.points(len(f.pts)+2), f, d)
}

// shiftLeftInto writes the shifted curve into pts, an empty buffer with
// capacity for len(f.pts)+2 points.
func shiftLeftInto(pts []Point, f Curve, d float64) Curve {
	pts = append(pts, Point{0, f.Eval(d)})
	if r := f.EvalRight(d); !almostEqual(r, pts[0].Y) {
		pts = append(pts, Point{0, r})
	}
	for _, p := range f.pts {
		if p.X > d && !almostEqual(p.X, d) {
			pts = append(pts, Point{p.X - d, p.Y})
		}
	}
	return newFromOwned(pts, f.slope)
}

// VShift returns f + v (vertical shift by a constant, possibly negative).
func VShift(f Curve, v float64) Curve { return vshift(nil, f, v) }

// VShift is the arena variant of the package-level VShift.
func (a *Arena) VShift(f Curve, v float64) Curve { return vshift(a, f, v) }

func vshift(ar *Arena, f Curve, v float64) Curve {
	f.mustValid()
	pts := ar.points(len(f.pts))[:len(f.pts)]
	for i, p := range f.pts {
		pts[i] = Point{p.X, p.Y + v}
	}
	return newFromOwned(pts, f.slope)
}

// ScaleY returns k * f. Requires k >= 0 to preserve monotonicity contracts.
func ScaleY(f Curve, k float64) Curve {
	f.mustValid()
	if k < 0 {
		panic("minplus: ScaleY with negative factor")
	}
	pts := make([]Point, len(f.pts))
	for i, p := range f.pts {
		pts[i] = Point{p.X, k * p.Y}
	}
	return newFromOwned(pts, k*f.slope)
}

// ScaleX returns h(t) = f(t/k), stretching the time axis by k > 0.
func ScaleX(f Curve, k float64) Curve {
	f.mustValid()
	if k <= 0 {
		panic("minplus: ScaleX with non-positive factor")
	}
	pts := make([]Point, len(f.pts))
	for i, p := range f.pts {
		pts[i] = Point{k * p.X, p.Y}
	}
	return newFromOwned(pts, f.slope/k)
}

// ZeroUntil returns the curve that is identically zero on [0, at] and
// follows f afterwards (with a jump at `at` if f(at+) > 0). It gates
// service curves such as the FIFO residual family, which guarantee nothing
// before their parameter. f must be non-negative beyond at.
func ZeroUntil(f Curve, at float64) Curve { return zeroUntil(nil, f, at) }

// ZeroUntil is the arena variant of the package-level ZeroUntil.
func (a *Arena) ZeroUntil(f Curve, at float64) Curve { return zeroUntil(a, f, at) }

func zeroUntil(ar *Arena, f Curve, at float64) Curve {
	f.mustValid()
	if at < 0 {
		panic("minplus: ZeroUntil at negative time")
	}
	if at == 0 {
		return f
	}
	pts := ar.points(len(f.pts) + 3)
	pts = append(pts, Point{0, 0}, Point{at, 0})
	if r := f.EvalRight(at); r > 0 {
		pts = append(pts, Point{at, r})
	}
	for _, p := range f.pts {
		if p.X > at && !almostEqual(p.X, at) {
			pts = append(pts, p)
		}
	}
	return newFromOwned(pts, f.slope)
}
