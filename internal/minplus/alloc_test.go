package minplus

import (
	"math/rand"
	"testing"
)

// Steady-state allocation ceilings for the hot-path operations. These are
// regression gates, not aspirations: the arena variants must stay
// allocation-free once the arena is warm, and the heap variants must not
// regress past the small constant they allocate today. A failure here
// means a change reintroduced per-call heap traffic into the analysis
// inner loops.

// sumNMixedWorkload is the BenchmarkSumNMixed input: 64 random
// piecewise-linear curves.
func sumNMixedWorkload() []Curve {
	rng := rand.New(rand.NewSource(7))
	curves := make([]Curve, 64)
	for i := range curves {
		curves[i] = genCurve(rng)
	}
	return curves
}

func TestSumNAllocCeiling(t *testing.T) {
	curves := sumNMixedWorkload()
	heap := testing.AllocsPerRun(10, func() { SumN(curves...) })
	t.Logf("SumN heap allocs/op: %.0f", heap)
	if heap > 4 {
		t.Errorf("SumN allocates %.0f times on the mixed workload, ceiling is 4", heap)
	}

	ar := GetArena()
	defer ar.Release()
	ar.SumNSlice(curves) // warm the arena to its high-water mark
	arena := testing.AllocsPerRun(10, func() {
		ar.Reset()
		ar.SumNSlice(curves)
	})
	t.Logf("Arena.SumNSlice allocs/op: %.0f", arena)
	if arena > 0 {
		t.Errorf("Arena.SumNSlice allocates %.0f times on a warm arena, ceiling is 0", arena)
	}
}

func TestConvolveGatedAllocCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs := make([]Curve, 16)
	for i := range fs {
		fs[i] = genGatedConvex(rng).Curve()
	}
	heap := testing.AllocsPerRun(10, func() {
		for i := 0; i < 16; i++ {
			ConvolveGated(fs[i], fs[(i+7)%16])
		}
	})
	t.Logf("ConvolveGated heap allocs/op (16 pairs): %.0f", heap)
	if heap > 16*16 {
		t.Errorf("ConvolveGated allocates %.0f times over 16 pairs, ceiling is %d", heap, 16*16)
	}

	ar := GetArena()
	defer ar.Release()
	for i := 0; i < 16; i++ { // warm the arena to its high-water mark
		ar.ConvolveGated(fs[i], fs[(i+7)%16])
	}
	arena := testing.AllocsPerRun(10, func() {
		ar.Reset()
		for i := 0; i < 16; i++ {
			ar.ConvolveGated(fs[i], fs[(i+7)%16])
		}
	})
	t.Logf("Arena.ConvolveGated allocs/op (16 pairs): %.0f", arena)
	if arena > 0 {
		t.Errorf("Arena.ConvolveGated allocates %.0f times on a warm arena, ceiling is 0", arena)
	}
}
