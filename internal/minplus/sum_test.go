package minplus

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// foldSum is the pre-SumN implementation of Sum: a pairwise left fold of
// Add starting from the zero curve. SumN must match it exactly.
func foldSum(curves ...Curve) Curve {
	total := Zero()
	for _, c := range curves {
		total = Add(total, c)
	}
	return total
}

func TestSumNMatchesPairwiseFold(t *testing.T) {
	prop := func(a, b, c, d curveBox) bool {
		curves := []Curve{a.C, b.C, c.C, d.C}
		got := SumN(curves...)
		want := foldSum(curves...)
		if !got.Equal(want) {
			t.Logf("SumN mismatch:\ngot  %v\nwant %v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSumNManyOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		curves := make([]Curve, n)
		for i := range curves {
			curves[i] = genCurve(rng)
		}
		got := SumN(curves...)
		want := foldSum(curves...)
		if !got.Equal(want) {
			t.Fatalf("trial %d (%d operands):\ngot  %v\nwant %v", trial, n, got, want)
		}
	}
}

func TestSumNEdgeCases(t *testing.T) {
	if !SumN().Equal(Zero()) {
		t.Errorf("SumN() = %v, want zero", SumN())
	}
	tb := TokenBucket(3, 0.5)
	if !SumN(tb).Equal(tb) {
		t.Errorf("SumN(tb) = %v, want %v", SumN(tb), tb)
	}
	// Token buckets hit the all-origin fast path.
	a, b := TokenBucket(1, 0.25), TokenBucket(2, 0.5)
	if got, want := SumN(a, b), Add(a, b); !got.Equal(want) {
		t.Errorf("SumN(tb, tb) = %v, want %v", got, want)
	}
	// Pure rates (no jump) through the fast path.
	if got, want := SumN(Rate(1), Rate(0.5)), Rate(1.5); !got.Equal(want) {
		t.Errorf("SumN(rates) = %v, want %v", got, want)
	}
}

func TestCursorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		c := genCurve(rng)
		cur := NewCursor(c)
		// Ascending sweep across and past every breakpoint, probing both
		// exact breakpoints and interior points.
		var xs []float64
		for _, x := range c.xBreaks() {
			xs = append(xs, x, x+0.01, x+0.13)
		}
		xs = append(xs, c.LastX()+5)
		for _, x := range xs {
			if got, want := cur.Eval(x), c.Eval(x); got != want {
				t.Fatalf("Cursor.Eval(%g) = %g, Curve.Eval = %g on %v", x, got, want, c)
			}
			if got, want := cur.EvalRight(x), c.EvalRight(x); got != want {
				t.Fatalf("Cursor.EvalRight(%g) = %g, Curve.EvalRight = %g on %v", x, got, want, c)
			}
		}
		// Non-monotone probes exercise the rewind path.
		for i := 0; i < 20; i++ {
			x := rng.Float64() * (c.LastX() + 2)
			if got, want := cur.Eval(x), c.Eval(x); got != want {
				t.Fatalf("rewound Cursor.Eval(%g) = %g, Curve.Eval = %g on %v", x, got, want, c)
			}
		}
	}
}

// sumNBuckets builds the ISSUE's gate workload: 200 token buckets with
// distinct parameters.
func sumNBuckets(n int) []Curve {
	out := make([]Curve, n)
	for i := range out {
		out[i] = TokenBucket(1+0.01*float64(i%13), 0.001*(1+float64(i%7)))
	}
	return out
}

// TestSumNSpeedup enforces the acceptance gate: summing 200 token buckets
// with SumN must be at least 5x faster than the pairwise Add fold, with
// strictly fewer allocations.
func TestSumNSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate")
	}
	curves := sumNBuckets(200)
	if !SumN(curves...).Equal(foldSum(curves...)) {
		t.Fatal("SumN disagrees with pairwise fold on the gate workload")
	}
	minDur := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	fast := minDur(func() {
		for i := 0; i < 5; i++ {
			SumN(curves...)
		}
	})
	slow := minDur(func() {
		for i := 0; i < 5; i++ {
			foldSum(curves...)
		}
	})
	ratio := float64(slow) / float64(fast)
	t.Logf("SumN %v, pairwise fold %v, ratio %.1fx", fast, slow, ratio)
	if ratio < 5 {
		t.Errorf("SumN speedup %.1fx, want >= 5x", ratio)
	}
	fastAllocs := testing.AllocsPerRun(3, func() { SumN(curves...) })
	slowAllocs := testing.AllocsPerRun(3, func() { foldSum(curves...) })
	t.Logf("allocs: SumN %.0f, pairwise fold %.0f", fastAllocs, slowAllocs)
	if fastAllocs >= slowAllocs {
		t.Errorf("SumN allocates %.0f times, want strictly fewer than the fold's %.0f", fastAllocs, slowAllocs)
	}
}

func BenchmarkSumN(b *testing.B) {
	curves := sumNBuckets(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumN(curves...)
	}
}

func BenchmarkSumPairwiseFold(b *testing.B) {
	curves := sumNBuckets(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		foldSum(curves...)
	}
}

func BenchmarkSumNMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	curves := make([]Curve, 64)
	for i := range curves {
		curves[i] = genCurve(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumN(curves...)
	}
}
