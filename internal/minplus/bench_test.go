package minplus

import (
	"math/rand"
	"testing"
)

// benchCurves builds a deterministic set of moderately complex curves.
func benchCurves(n int) []Curve {
	rng := rand.New(rand.NewSource(7))
	out := make([]Curve, n)
	for i := range out {
		out[i] = genCurve(rng)
	}
	return out
}

func BenchmarkConvolve(b *testing.B) {
	cs := benchCurves(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convolve(cs[i%16], cs[(i+7)%16])
	}
}

func BenchmarkConvolveSampled(b *testing.B) {
	f := TokenBucketCapped(3, 0.25, 1)
	g := RateLatency(0.8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveSampled(f, g, 0.1, 30)
	}
}

func BenchmarkDeconvolve(b *testing.B) {
	f := TokenBucketCapped(3, 0.25, 1)
	g := RateLatency(0.8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Deconvolve(f, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	cs := benchCurves(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(cs[i%16], cs[(i+5)%16])
	}
}

func BenchmarkMin(b *testing.B) {
	cs := benchCurves(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Min(cs[i%16], cs[(i+3)%16])
	}
}

func BenchmarkHorizontalDeviation(b *testing.B) {
	alpha := Sum(TokenBucketCapped(2, 0.3, 1), TokenBucket(1, 0.1))
	beta := RateLatency(0.9, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HorizontalDeviation(alpha, beta)
	}
}

func BenchmarkLowerInverse(b *testing.B) {
	f := Sum(TokenBucketCapped(2, 0.3, 1), TokenBucketCapped(1, 0.2, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LowerInverse(f)
	}
}

func BenchmarkCompose(b *testing.B) {
	f := Sum(TokenBucketCapped(2, 0.3, 1), TokenBucketCapped(1, 0.2, 1))
	g := Convolve(minRateCurve(), f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compose(f, g)
	}
}

func minRateCurve() Curve { return Rate(1) }

func BenchmarkEval(b *testing.B) {
	f := Sum(TokenBucketCapped(2, 0.3, 1), TokenBucketCapped(1, 0.2, 1), TokenBucket(1, 0.05))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Eval(float64(i % 40))
	}
}
