package minplus

import "math"

// SupDiff returns sup_{t >= 0} { f(t) - g(t) }, which may be +Inf when f
// eventually outgrows g. The supremum of a difference of piecewise-linear
// functions is attained at (one side of) a breakpoint of either operand or
// in the affine tail.
func SupDiff(f, g Curve) float64 {
	f.mustValid()
	g.mustValid()
	if f.slope > g.slope+Eps {
		return math.Inf(1)
	}
	// The sup over the candidate set is order-independent, so instead of
	// materializing the merged abscissa union the candidates are probed
	// straight off each operand's breakpoint array (allocation-free; a
	// duplicated probe changes nothing under max).
	best := math.Inf(-1)
	probe := func(x float64) {
		best = math.Max(best, f.Eval(x)-g.Eval(x))
		best = math.Max(best, f.EvalRight(x)-g.EvalRight(x))
	}
	maxX := 0.0
	for i, p := range f.pts {
		if i > 0 && almostEqual(p.X, f.pts[i-1].X) {
			continue
		}
		probe(p.X)
		maxX = math.Max(maxX, p.X)
	}
	for i, p := range g.pts {
		if i > 0 && almostEqual(p.X, g.pts[i-1].X) {
			continue
		}
		probe(p.X)
		maxX = math.Max(maxX, p.X)
	}
	// Tail: the difference is affine with slope f.slope-g.slope <= 0
	// beyond the last breakpoint; its value there is covered by EvalRight
	// at the last breakpoint, but probe once more to be safe against
	// equal-slope tails.
	far := maxX + 1
	best = math.Max(best, f.Eval(far)-g.Eval(far))
	return best
}

// VerticalDeviation returns the maximum vertical distance
// sup_t { alpha(t) - beta(t) }: the backlog bound of a server with service
// curve beta fed with traffic bounded by alpha.
func VerticalDeviation(alpha, beta Curve) float64 { return SupDiff(alpha, beta) }

// HorizontalDeviation returns the maximum horizontal distance
//
//	h(alpha, beta) = sup_{t >= 0} inf{ d >= 0 : alpha(t) <= beta(t+d) },
//
// the delay bound of a FIFO server with service curve beta fed with traffic
// bounded by alpha. Returns +Inf when beta cannot eventually cover alpha.
func HorizontalDeviation(alpha, beta Curve) float64 {
	alpha.mustValid()
	beta.mustValid()
	if !alpha.IsNonDecreasing() || !beta.IsNonDecreasing() {
		panic("minplus: HorizontalDeviation requires non-decreasing curves")
	}
	if alpha.slope > beta.slope+Eps {
		return math.Inf(1)
	}
	if beta.slope <= Eps {
		// Bounded service: finite delay only if alpha is bounded below
		// beta's supremum.
		aSup := alpha.pts[len(alpha.pts)-1].Y
		bSup := beta.pts[len(beta.pts)-1].Y
		if alpha.slope > Eps || aSup > bSup+Eps {
			return math.Inf(1)
		}
	}
	// d(t) = betaInv(alpha(t)) - t is piecewise linear in t with
	// breakpoints at alpha's breakpoints and at preimages (under alpha) of
	// beta's breakpoint ordinates. The supremum over that candidate set is
	// order-independent, so the candidates are probed as they are
	// enumerated — no merged/sorted abscissa list is materialized and the
	// whole computation is allocation-free.
	best := 0.0
	probeOne := func(t, y float64) bool {
		x := LowerInverseAtBounded(beta, y)
		if x < 0 {
			best = math.Inf(1)
			return false
		}
		if d := x - t; d > best {
			best = d
		}
		return true
	}
	probe := func(t float64) {
		if !probeOne(t, alpha.Eval(t)) || !probeOne(t, alpha.EvalRight(t)) {
			return
		}
		// When alpha crosses a plateau ordinate of beta exactly at t and
		// keeps rising, the deviation just after t uses the strict inverse
		// inf{x : beta(x) > y}, which jumps across the plateau; take the
		// right limit of d at t as well (the deviation is a supremum, so
		// one-sided limits count). The strict inverse applies only while
		// alpha strictly increases after t: for a locally flat alpha the
		// non-strict inverse above is the exact one.
		if alpha.RightSlope(t) > Eps {
			y := alpha.EvalRight(t)
			x := strictInverseAtBounded(beta, y)
			if x < 0 {
				best = math.Inf(1)
				return
			}
			if d := x - t; d > best {
				best = d
			}
		}
	}
	maxT := 0.0
	for i, p := range alpha.pts {
		if i > 0 && almostEqual(p.X, alpha.pts[i-1].X) {
			continue
		}
		probe(p.X)
		if math.IsInf(best, 1) {
			return best
		}
		maxT = math.Max(maxT, p.X)
	}
	for _, p := range beta.pts {
		t := LowerInverseAtBounded(alpha, p.Y)
		if t < 0 {
			continue
		}
		probe(t)
		if math.IsInf(best, 1) {
			return best
		}
		maxT = math.Max(maxT, t)
	}
	// Tail probe: beyond the last candidate both alpha and betaInv(alpha)
	// are affine; if their difference still grows the deviation is
	// unbounded, otherwise the last candidates dominate.
	far := maxT + 1
	probe(far)
	probe(far + 1)
	return best
}

// MaxBusyPeriod returns the length of the longest interval during which a
// work-conserving server of capacity c can remain continuously backlogged
// when its aggregate input is bounded by g: sup{ t > 0 : g(t) >= c*t }.
// Returns +Inf when the server is unstable (g's long-run rate >= c).
func MaxBusyPeriod(g Curve, c float64) float64 {
	g.mustValid()
	if c <= 0 {
		panic("minplus: MaxBusyPeriod with non-positive capacity")
	}
	if g.slope >= c-Eps {
		if g.slope > c+Eps {
			return math.Inf(1)
		}
		// Equal rates: busy period unbounded iff g stays above c*t forever.
		far := g.LastX() + 1
		if g.Eval(far) >= c*far-Eps {
			return math.Inf(1)
		}
	}
	// Walk breakpoints from the end to find the last time g(t) >= c*t.
	xs := g.xBreaks()
	last := 0.0
	for i := len(xs) - 1; i >= 0; i-- {
		x := xs[i]
		d := g.EvalRight(x) - c*x
		if d >= -Eps {
			// Busy region extends into the following segment; solve the
			// crossing g(x) + s*(t-x) = c*t.
			s := g.EvalRight(x)
			var slope float64
			if i == len(xs)-1 {
				slope = g.slope
			} else {
				slope = (g.Eval(xs[i+1]) - s) / (xs[i+1] - x)
			}
			if slope >= c-Eps {
				// Does not cross within this segment; continue from the
				// next breakpoint (handled by earlier iterations since we
				// walk from the end: if we are here, all later
				// breakpoints were already below).
				if i == len(xs)-1 {
					return math.Inf(1)
				}
				last = math.Max(last, xs[i+1])
				break
			}
			t := (s - slope*x) / (c - slope)
			last = math.Max(last, math.Max(t, x))
			break
		}
		// Also check the left value at x (jump down cannot happen for
		// non-decreasing g, but g need not dominate c*t continuously).
		if g.Eval(x)-c*x >= -Eps {
			last = math.Max(last, x)
			break
		}
	}
	return math.Max(last, 0)
}
