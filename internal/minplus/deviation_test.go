package minplus

import (
	"math"
	"testing"
)

func TestSupDiffBasic(t *testing.T) {
	f := TokenBucket(4, 0.5)
	g := Rate(1)
	// sup of 4 + 0.5t - t attained just after 0: 4.
	if got := SupDiff(f, g); !almostEqual(got, 4) {
		t.Errorf("SupDiff = %g, want 4", got)
	}
}

func TestSupDiffInfinite(t *testing.T) {
	f := Rate(2)
	g := Rate(1)
	if got := SupDiff(f, g); !math.IsInf(got, 1) {
		t.Errorf("SupDiff = %g, want +Inf", got)
	}
}

func TestSupDiffAttainedInside(t *testing.T) {
	// f concave, g convex: max gap at an interior breakpoint.
	f := TokenBucketCapped(6, 0.25, 1) // knee at 8
	g := RateLatency(0.5, 2)
	// diff at knee t=8: 8 - 3 = ... f(8)=8, g(8)=3 -> 5; check exactness.
	got := SupDiff(f, g)
	brute := math.Inf(-1)
	for i := 0; i <= 5000; i++ {
		x := 40 * float64(i) / 5000
		if d := f.Eval(x) - g.Eval(x); d > brute {
			brute = d
		}
	}
	if math.Abs(got-brute) > 1e-3 {
		t.Errorf("SupDiff = %g, brute %g", got, brute)
	}
	if got < brute-1e-9 {
		t.Errorf("SupDiff %g below brute-force sup %g", got, brute)
	}
}

func TestVerticalDeviationBacklogBound(t *testing.T) {
	// Backlog bound of (sigma, rho) through beta_{R,T}: sigma + rho*T.
	alpha := TokenBucket(3, 0.5)
	beta := RateLatency(1, 4)
	want := 3 + 0.5*4
	if got := VerticalDeviation(alpha, beta); !almostEqual(got, want) {
		t.Errorf("backlog bound = %g, want %g", got, want)
	}
}

func TestHorizontalDeviationDelayBound(t *testing.T) {
	// Delay bound of (sigma, rho) through beta_{R,T}: T + sigma/R.
	alpha := TokenBucket(3, 0.5)
	beta := RateLatency(1, 4)
	want := 4 + 3.0/1
	if got := HorizontalDeviation(alpha, beta); !almostEqual(got, want) {
		t.Errorf("delay bound = %g, want %g", got, want)
	}
}

func TestHorizontalDeviationFIFOServer(t *testing.T) {
	// Aggregate of token buckets through a unit-rate line: the delay is
	// sup(G(t) - t) (vertical = horizontal against a unit-rate server).
	g := Sum(TokenBucketCapped(1, 0.2, 1), TokenBucketCapped(1, 0.2, 1), TokenBucketCapped(1, 0.2, 1))
	beta := Rate(1)
	h := HorizontalDeviation(g, beta)
	v := VerticalDeviation(g, beta)
	if !almostEqual(h, v) {
		t.Errorf("unit-rate server: horizontal %g != vertical %g", h, v)
	}
}

func TestHorizontalDeviationInfinite(t *testing.T) {
	alpha := TokenBucket(1, 2)
	beta := Rate(1)
	if got := HorizontalDeviation(alpha, beta); !math.IsInf(got, 1) {
		t.Errorf("unstable server delay = %g, want +Inf", got)
	}
}

func TestHorizontalDeviationBoundedService(t *testing.T) {
	beta := New([]Point{{0, 0}, {5, 5}}, 0) // serves at most 5
	small := New([]Point{{0, 0}, {1, 3}}, 0)
	if got := HorizontalDeviation(small, beta); math.IsInf(got, 1) {
		t.Error("bounded arrival below bounded service should have finite delay")
	}
	big := New([]Point{{0, 0}, {1, 9}}, 0)
	if got := HorizontalDeviation(big, beta); !math.IsInf(got, 1) {
		t.Errorf("arrival above service supremum: delay = %g, want +Inf", got)
	}
	growing := Rate(0.1)
	if got := HorizontalDeviation(growing, beta); !math.IsInf(got, 1) {
		t.Errorf("unbounded arrival vs bounded service: delay = %g, want +Inf", got)
	}
}

func TestHorizontalDeviationBruteForce(t *testing.T) {
	alpha := Sum(TokenBucketCapped(2, 0.3, 1), TokenBucket(1, 0.1))
	beta := RateLatency(0.9, 1.5)
	got := HorizontalDeviation(alpha, beta)
	// Brute force: for each t, smallest d with alpha(t) <= beta(t+d).
	brute := 0.0
	for i := 0; i <= 3000; i++ {
		x := 30 * float64(i) / 3000
		a := alpha.EvalRight(x)
		lo, hi := 0.0, 200.0
		for k := 0; k < 60; k++ {
			mid := (lo + hi) / 2
			if beta.Eval(x+mid) >= a {
				hi = mid
			} else {
				lo = mid
			}
		}
		if hi > brute {
			brute = hi
		}
	}
	if math.Abs(got-brute) > 0.05 {
		t.Errorf("horizontal deviation = %g, brute %g", got, brute)
	}
	// The brute-force grid never exceeds the true supremum.
	if got < brute-1e-6 {
		t.Errorf("deviation %g below brute-force %g: bound unsound", got, brute)
	}
}

func TestMaxBusyPeriod(t *testing.T) {
	// Three (1, 0.2) sources through a unit server: G(t) = min stuff; busy
	// period ends when G(t) = t.
	g := Sum(TokenBucket(1, 0.2), TokenBucket(1, 0.2), TokenBucket(1, 0.2))
	// G(t) = 3 + 0.6t for t > 0; crossing 3 + 0.6t = t at t = 7.5.
	if got := MaxBusyPeriod(g, 1); !almostEqual(got, 7.5) {
		t.Errorf("busy period = %g, want 7.5", got)
	}
}

func TestMaxBusyPeriodUnstable(t *testing.T) {
	g := TokenBucket(1, 2)
	if got := MaxBusyPeriod(g, 1); !math.IsInf(got, 1) {
		t.Errorf("unstable busy period = %g, want +Inf", got)
	}
	// Critically loaded: rate exactly c with a burst never drains.
	crit := TokenBucket(1, 1)
	if got := MaxBusyPeriod(crit, 1); !math.IsInf(got, 1) {
		t.Errorf("critical busy period = %g, want +Inf", got)
	}
}

func TestMaxBusyPeriodZeroInput(t *testing.T) {
	if got := MaxBusyPeriod(Zero(), 1); got != 0 {
		t.Errorf("idle busy period = %g, want 0", got)
	}
	// A source slower than the server never backlogs beyond t=0.
	if got := MaxBusyPeriod(Rate(0.5), 1); !almostEqual(got, 0) {
		t.Errorf("underloaded busy period = %g, want 0", got)
	}
}

func TestMaxBusyPeriodCappedSources(t *testing.T) {
	// Capped token buckets: G grows at c for a while (server exactly keeps
	// up), then the burst region keeps it above the service line.
	g := Sum(TokenBucketCapped(1, 0.2, 1), TokenBucketCapped(1, 0.2, 1))
	// G(t) = 2t until each source's knee at 1/0.8 = 1.25, i.e. G=2t for
	// t<=1.25, then 2 + 0.4t... busy period ends when G(t) = t.
	got := MaxBusyPeriod(g, 1)
	// Solve 2 + 0.4t = t -> t = 10/3.
	if !almostEqual(got, 10.0/3) {
		t.Errorf("busy period = %g, want %g", got, 10.0/3)
	}
}
