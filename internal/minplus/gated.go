package minplus

import "math"

// SlopeSeg is one finite segment of a convex section: horizontal length
// and slope.
type SlopeSeg struct {
	Len, Slope float64
}

// GatedConvex is the canonical form of a "gated-convex" curve
//
//	f(t) = 0                       for 0 <= t <= Gate,
//	f(t) = Jump + psi(t - Gate)    for t > Gate,
//
// where psi is continuous, convex and non-decreasing with psi(0) = 0,
// described by the finite segments Segs (non-decreasing slopes) followed
// by the infinite Tail slope. FIFO residual service curves against concave
// cross traffic always have this shape, and min-plus convolutions of such
// curves admit the closed form below, which the analysis layer exploits to
// avoid the generic convolution in its theta enumeration.
type GatedConvex struct {
	Gate, Jump float64
	Segs       []SlopeSeg
	Tail       float64
}

// DecomposeGatedConvex writes f in gated-convex canonical form. The second
// return is false when f does not have the shape (nonzero start, interior
// or downward jumps, non-convex section after the gate, decreasing tail).
func DecomposeGatedConvex(f Curve) (GatedConvex, bool) {
	return decomposeGatedConvex(nil, f)
}

// DecomposeGatedConvex is the arena variant of the package-level function:
// the Segs slice of the result is drawn from the arena.
func (a *Arena) DecomposeGatedConvex(f Curve) (GatedConvex, bool) {
	return decomposeGatedConvex(a, f)
}

func decomposeGatedConvex(ar *Arena, f Curve) (GatedConvex, bool) {
	f.mustValid()
	pts := f.pts
	if !almostEqual(pts[0].Y, 0) {
		return GatedConvex{}, false
	}
	// The gate is the last abscissa at which f is still zero.
	i := 0
	for i+1 < len(pts) && almostEqual(pts[i+1].Y, 0) {
		i++
	}
	g := GatedConvex{Gate: pts[i].X}
	j := i + 1
	if j < len(pts) && almostEqual(pts[j].X, pts[i].X) {
		g.Jump = pts[j].Y
		if g.Jump < -Eps {
			return GatedConvex{}, false
		}
		j++
	}
	prevX, prevY := g.Gate, g.Jump
	prevSlope := math.Inf(-1)
	g.Segs = ar.segs(len(pts) - j)
	for ; j < len(pts); j++ {
		p := pts[j]
		if p.X <= prevX || almostEqual(p.X, prevX) {
			return GatedConvex{}, false // jump after the gate
		}
		s := (p.Y - prevY) / (p.X - prevX)
		if s < -Eps || s < prevSlope-Eps {
			return GatedConvex{}, false
		}
		g.Segs = append(g.Segs, SlopeSeg{Len: p.X - prevX, Slope: s})
		prevX, prevY, prevSlope = p.X, p.Y, s
	}
	if f.slope < -Eps || f.slope < prevSlope-Eps {
		return GatedConvex{}, false
	}
	g.Tail = f.slope
	return g, true
}

// Curve reconstructs the curve described by the canonical form.
func (g GatedConvex) Curve() Curve {
	pts := make([]Point, 0, len(g.Segs)+3)
	pts = append(pts, Point{0, 0})
	if g.Gate > 0 {
		pts = append(pts, Point{g.Gate, 0})
	}
	x, y := g.Gate, g.Jump
	if g.Jump > 0 {
		pts = append(pts, Point{x, y})
	}
	for _, s := range g.Segs {
		x += s.Len
		y += s.Len * s.Slope
		pts = append(pts, Point{x, y})
	}
	return New(pts, g.Tail)
}

// ConvolveConvexParts returns the "interior" branch of the convolution of
// two gated-convex curves with their gates stripped: the curve
//
//	W(0) = 0,  W(u) = Jump_a + Jump_b + (psi_a ⊗ psi_b)(u)  for u > 0,
//
// where psi_a ⊗ psi_b is the infimal convolution of the two convex
// sections — their segments replayed in ascending slope order, truncated
// at the smaller tail slope. Together with the two single-jump branches it
// yields the full convolution; see ConvolveGated.
func ConvolveConvexParts(a, b GatedConvex) Curve {
	return convolveConvexParts(nil, a, b)
}

// ConvolveConvexParts is the arena variant of the package-level function.
func (ar *Arena) ConvolveConvexParts(a, b GatedConvex) Curve {
	return convolveConvexParts(ar, a, b)
}

func convolveConvexParts(ar *Arena, a, b GatedConvex) Curve {
	tail := math.Min(a.Tail, b.Tail)
	segs := mergeConvexSegs(ar, a.Segs, b.Segs, tail)
	jump := a.Jump + b.Jump
	pts := ar.points(len(segs) + 2)
	pts = append(pts, Point{0, 0})
	x, y := 0.0, jump
	if !almostEqual(jump, 0) {
		pts = append(pts, Point{0, jump})
	}
	for _, s := range segs {
		x += s.Len
		y += s.Len * s.Slope
		pts = append(pts, Point{x, y})
	}
	out := Curve{pts: pts, slope: tail}
	out.normalize()
	return out
}

// mergeConvexSegs merges two ascending-slope segment lists in slope order,
// dropping segments whose slope is not below cut: a slope reached by the
// (infinitely long) cheaper tail never contributes to the infimal
// convolution.
func mergeConvexSegs(ar *Arena, a, b []SlopeSeg, cut float64) []SlopeSeg {
	out := ar.segs(len(a) + len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var s SlopeSeg
		if j >= len(b) || (i < len(a) && a[i].Slope <= b[j].Slope) {
			s = a[i]
			i++
		} else {
			s = b[j]
			j++
		}
		if s.Slope >= cut {
			break // ascending: everything after is >= cut too
		}
		if n := len(out); n > 0 && almostEqual(out[n-1].Slope, s.Slope) {
			out[n-1].Len += s.Len
		} else {
			out = append(out, s)
		}
	}
	return out
}

// ConvolveGated computes f ⊗ g through the gated-convex closed form
//
//	f ⊗ g = Delay_{Gf+Gg}( min( chi_f, chi_g, W ) ),
//
// where chi = ShiftLeft(curve, gate) strips the gate (keeping the jump and
// convex section) and W = ConvolveConvexParts pays both jumps at once: the
// three branches are the s=0, s=u and 0<s<u splits of the infimal
// convolution. Exact for gated-convex operands; falls back to the generic
// Convolve when either operand does not decompose.
func ConvolveGated(f, g Curve) Curve { return convolveGated(nil, f, g) }

// ConvolveGated is the arena variant of the package-level ConvolveGated.
func (a *Arena) ConvolveGated(f, g Curve) Curve { return convolveGated(a, f, g) }

func convolveGated(ar *Arena, f, g Curve) Curve {
	df, okF := decomposeGatedConvex(ar, f)
	dg, okG := decomposeGatedConvex(ar, g)
	if !okF || !okG {
		return convolve(ar, f, g)
	}
	chiF := shiftLeft(ar, f, df.Gate)
	chiG := shiftLeft(ar, g, dg.Gate)
	env := pointwise(ar, pointwise(ar, chiF, chiG, math.Min, minTail), convolveConvexParts(ar, df, dg), math.Min, minTail)
	return delay(ar, env, df.Gate+dg.Gate)
}
