package minplus

import "fmt"

// Convolve returns the min-plus convolution
//
//	(f (x) g)(t) = inf_{0 <= s <= t} { f(s) + g(t-s) },
//
// the fundamental composition of network calculus: the output of a server
// with service curve g fed by traffic bounded by f, or the end-to-end
// service curve of two servers in series. Both operands must be
// non-decreasing.
//
// The computation is exact. For each t the infimum of the piecewise-linear
// function s -> f(s) + g(t-s) is attained (or approached one-sidedly) at a
// breakpoint of f or at t minus a breakpoint of g. The convolution is
// therefore the pointwise minimum of the finite family of "branch" curves
//
//	t -> f(a) + g(t-a)   for each breakpoint a of f (both one-sided values),
//	t -> g(b) + f(t-b)   for each breakpoint b of g (both one-sided values),
//
// each branch extended left of its pivot by a constant, which never falls
// below the true convolution because f and g are non-decreasing. Pointwise
// Min with crossing detection then yields the exact envelope, including
// breakpoints that are not sums of operand breakpoints.
func Convolve(f, g Curve) Curve {
	f.mustValid()
	g.mustValid()
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: Convolve requires non-decreasing curves")
	}
	branches := make([]Curve, 0, 2*(len(f.pts)+len(g.pts)))
	addPivots := func(outer, inner Curve) {
		for _, a := range outer.xBreaks() {
			vals := []float64{outer.Eval(a)}
			if r := outer.EvalRight(a); !almostEqual(r, vals[0]) {
				vals = append(vals, r)
			}
			for _, v := range vals {
				branches = append(branches, VShift(Delay(inner, a), v))
			}
		}
	}
	addPivots(f, g)
	addPivots(g, f)
	return reduceEnvelope(branches, Min)
}

// reduceEnvelope folds curves with op using a balanced reduction to keep
// intermediate breakpoint counts low.
func reduceEnvelope(curves []Curve, op func(Curve, Curve) Curve) Curve {
	if len(curves) == 0 {
		return Zero()
	}
	for len(curves) > 1 {
		next := curves[:0]
		for i := 0; i < len(curves); i += 2 {
			if i+1 < len(curves) {
				next = append(next, op(curves[i], curves[i+1]))
			} else {
				next = append(next, curves[i])
			}
		}
		curves = next
	}
	return curves[0]
}

// Deconvolve returns the min-plus deconvolution
//
//	(f (/) g)(t) = sup_{s >= 0} { f(t+s) - g(s) },
//
// which yields the tightest arrival curve of the output of a server with
// service curve g fed by traffic with arrival curve f. It returns an error
// if the supremum is infinite (f grows faster than g, i.e. the server is
// unstable for this input). Like Convolve, the result is the exact upper
// envelope of branch curves pivoted at operand breakpoints.
func Deconvolve(f, g Curve) (Curve, error) {
	f.mustValid()
	g.mustValid()
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: Deconvolve requires non-decreasing curves")
	}
	if f.slope > g.slope+Eps {
		return Curve{}, fmt.Errorf("minplus: deconvolution diverges: arrival slope %g exceeds service slope %g", f.slope, g.slope)
	}
	var branches []Curve
	// Branches pivoted at breakpoints b of g: t -> f(t+b) - g(b).
	for _, b := range g.xBreaks() {
		vals := []float64{g.Eval(b)}
		if r := g.EvalRight(b); !almostEqual(r, vals[0]) {
			vals = append(vals, r)
		}
		shifted := ShiftLeft(f, b)
		for _, v := range vals {
			branches = append(branches, VShift(shifted, -v))
		}
	}
	// Branches pivoted at breakpoints x of f: t -> f(x) - g(x-t) for
	// t <= x, constant f(x) - g(0+) afterwards.
	for _, x := range f.xBreaks() {
		vals := []float64{f.Eval(x)}
		if r := f.EvalRight(x); !almostEqual(r, vals[0]) {
			vals = append(vals, r)
		}
		refl := reflectAround(g, x)
		for _, v := range vals {
			branches = append(branches, Sub(Constant(v), refl))
		}
	}
	return reduceEnvelope(branches, Max), nil
}

// reflectAround builds h(t) = g(max(x - t, 0)) as a left-continuous curve:
// the time-reversed tail of g hinged at x. h is non-increasing.
func reflectAround(g Curve, x float64) Curve {
	ts := []float64{0, x}
	for _, y := range g.xBreaks() {
		if d := x - y; d > 0 {
			ts = append(ts, d)
		}
	}
	eval := func(t float64) float64 {
		arg := x - t
		if arg < 0 {
			arg = 0
		}
		// Left-continuity in t means the limit from below in t, i.e. the
		// limit from above in the argument of g.
		return g.EvalRight(arg)
	}
	return fromEvaluator(ts, eval, 0)
}
