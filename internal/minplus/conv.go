package minplus

import "fmt"

// Convolve returns the min-plus convolution
//
//	(f (x) g)(t) = inf_{0 <= s <= t} { f(s) + g(t-s) },
//
// the fundamental composition of network calculus: the output of a server
// with service curve g fed by traffic bounded by f, or the end-to-end
// service curve of two servers in series. Both operands must be
// non-decreasing.
//
// The computation is exact. For each t the infimum of the piecewise-linear
// function s -> f(s) + g(t-s) is attained (or approached one-sidedly) at a
// breakpoint of f or at t minus a breakpoint of g. The convolution is
// therefore the pointwise minimum of the finite family of "branch" curves
//
//	t -> f(a) + g(t-a)   for each breakpoint a of f (both one-sided values),
//	t -> g(b) + f(t-b)   for each breakpoint b of g (both one-sided values),
//
// each branch extended left of its pivot by a constant, which never falls
// below the true convolution because f and g are non-decreasing. Pointwise
// Min with crossing detection then yields the exact envelope, including
// breakpoints that are not sums of operand breakpoints.
func Convolve(f, g Curve) Curve { return convolve(nil, f, g) }

// Convolve is the arena variant of the package-level Convolve.
func (a *Arena) Convolve(f, g Curve) Curve { return convolve(a, f, g) }

func convolve(ar *Arena, f, g Curve) Curve {
	f.mustValid()
	g.mustValid()
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: Convolve requires non-decreasing curves")
	}
	branches := ar.curves(2 * (len(f.pts) + len(g.pts)))
	addPivots := func(outer, inner Curve) {
		pts := outer.pts
		for i, p := range pts {
			if i > 0 && almostEqual(p.X, pts[i-1].X) {
				continue
			}
			a := p.X
			v0 := outer.Eval(a)
			shifted := delay(ar, inner, a)
			branches = append(branches, vshift(ar, shifted, v0))
			if r := outer.EvalRight(a); !almostEqual(r, v0) {
				branches = append(branches, vshift(ar, shifted, r))
			}
		}
	}
	addPivots(f, g)
	addPivots(g, f)
	return reduceEnvelope(ar, branches, (*Arena).Min)
}

// reduceEnvelope folds curves with op using a balanced reduction to keep
// intermediate breakpoint counts low.
func reduceEnvelope(ar *Arena, curves []Curve, op func(*Arena, Curve, Curve) Curve) Curve {
	if len(curves) == 0 {
		return Zero()
	}
	for len(curves) > 1 {
		next := curves[:0]
		for i := 0; i < len(curves); i += 2 {
			if i+1 < len(curves) {
				next = append(next, op(ar, curves[i], curves[i+1]))
			} else {
				next = append(next, curves[i])
			}
		}
		curves = next
	}
	return curves[0]
}

// Deconvolve returns the min-plus deconvolution
//
//	(f (/) g)(t) = sup_{s >= 0} { f(t+s) - g(s) },
//
// which yields the tightest arrival curve of the output of a server with
// service curve g fed by traffic with arrival curve f. It returns an error
// if the supremum is infinite (f grows faster than g, i.e. the server is
// unstable for this input). Like Convolve, the result is the exact upper
// envelope of branch curves pivoted at operand breakpoints.
func Deconvolve(f, g Curve) (Curve, error) { return deconvolve(nil, f, g) }

// Deconvolve is the arena variant of the package-level Deconvolve.
func (a *Arena) Deconvolve(f, g Curve) (Curve, error) { return deconvolve(a, f, g) }

func deconvolve(ar *Arena, f, g Curve) (Curve, error) {
	f.mustValid()
	g.mustValid()
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: Deconvolve requires non-decreasing curves")
	}
	if f.slope > g.slope+Eps {
		return Curve{}, fmt.Errorf("minplus: deconvolution diverges: arrival slope %g exceeds service slope %g", f.slope, g.slope)
	}
	branches := ar.curves(2 * (len(f.pts) + len(g.pts)))
	// Branches pivoted at breakpoints b of g: t -> f(t+b) - g(b).
	gpts := g.pts
	for i, p := range gpts {
		if i > 0 && almostEqual(p.X, gpts[i-1].X) {
			continue
		}
		b := p.X
		v0 := g.Eval(b)
		shifted := shiftLeft(ar, f, b)
		branches = append(branches, vshift(ar, shifted, -v0))
		if r := g.EvalRight(b); !almostEqual(r, v0) {
			branches = append(branches, vshift(ar, shifted, -r))
		}
	}
	// Branches pivoted at breakpoints x of f: t -> f(x) - g(x-t) for
	// t <= x, constant f(x) - g(0+) afterwards.
	fpts := f.pts
	for i, p := range fpts {
		if i > 0 && almostEqual(p.X, fpts[i-1].X) {
			continue
		}
		x := p.X
		v0 := f.Eval(x)
		refl := reflectAround(ar, g, x)
		branches = append(branches, pointwise(ar, constant(ar, v0), refl, opSub, subTail))
		if r := f.EvalRight(x); !almostEqual(r, v0) {
			branches = append(branches, pointwise(ar, constant(ar, r), refl, opSub, subTail))
		}
	}
	return reduceEnvelope(ar, branches, (*Arena).Max), nil
}

// reflectAround builds h(t) = g(max(x - t, 0)) as a left-continuous curve:
// the time-reversed tail of g hinged at x. h is non-increasing.
func reflectAround(ar *Arena, g Curve, x float64) Curve {
	ts := ar.floats(len(g.pts) + 2)
	ts = append(ts, 0, x)
	gpts := g.pts
	for i, p := range gpts {
		if i > 0 && almostEqual(p.X, gpts[i-1].X) {
			continue
		}
		if d := x - p.X; d > 0 {
			ts = append(ts, d)
		}
	}
	eval := func(t float64) float64 {
		arg := x - t
		if arg < 0 {
			arg = 0
		}
		// Left-continuity in t means the limit from below in t, i.e. the
		// limit from above in the argument of g.
		return g.EvalRight(arg)
	}
	return fromEvaluator(ar, ts, eval, 0)
}
