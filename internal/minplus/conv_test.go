package minplus

import (
	"math"
	"testing"
)

// bruteConvAt numerically approximates (f (x) g)(t) on a fine grid,
// probing both sides of each probe point to cope with jumps. Exact
// breakpoint positions (of f, and reflected of g) are probed in addition
// to the grid: when both operands have a jump aligned at one split point,
// the infimum is attained only exactly there.
func bruteConvAt(f, g Curve, t float64) float64 {
	const n = 2000
	cands := make([]float64, 0, n+16)
	for i := 0; i <= n; i++ {
		cands = append(cands, t*float64(i)/n)
	}
	for _, x := range f.xBreaks() {
		if x >= 0 && x <= t {
			cands = append(cands, x)
		}
	}
	for _, x := range g.xBreaks() {
		if s := t - x; s >= 0 && s <= t {
			cands = append(cands, s)
		}
	}
	best := math.Inf(1)
	for _, s := range cands {
		v := f.Eval(s) + g.Eval(t-s)
		if v < best {
			best = v
		}
		v = f.EvalRight(s) + g.Eval(t-s)
		if v < best {
			best = v
		}
		v = f.Eval(s) + g.EvalRight(t-s)
		if v < best {
			best = v
		}
	}
	return best
}

func convCompare(t *testing.T, f, g Curve, hi float64, label string) {
	t.Helper()
	c := Convolve(f, g)
	for i := 0; i <= 40; i++ {
		x := hi * float64(i) / 40
		got, want := c.Eval(x), bruteConvAt(f, g, x)
		// The brute-force infimum samples a grid and therefore never goes
		// below the true infimum; the exact result must not exceed it.
		if got > want+1e-6 {
			t.Fatalf("%s: exact conv above brute-force infimum at %g: %g > %g (curve %v)", label, x, got, want, c)
		}
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("%s: conv(%g) = %g, brute %g (curve %v)", label, x, got, want, c)
		}
	}
}

func TestConvolveRateWithConcave(t *testing.T) {
	// For concave f, g through the origin, f (x) g = min(f, g).
	f := TokenBucketCapped(2, 0.25, 1)
	g := Rate(1)
	c := Convolve(f, g)
	if !c.Equal(Min(f, g)) {
		t.Errorf("conv of concave origin curves should equal min: %v vs %v", c, Min(f, g))
	}
	convCompare(t, f, g, 15, "rate-concave")
}

func TestConvolveRateLatencies(t *testing.T) {
	// RateLatency(r1,T1) (x) RateLatency(r2,T2) = RateLatency(min r, T1+T2).
	a := RateLatency(2, 1)
	b := RateLatency(3, 2)
	c := Convolve(a, b)
	want := RateLatency(2, 3)
	if !c.Equal(want) {
		t.Errorf("conv of rate-latencies = %v, want %v", c, want)
	}
	convCompare(t, a, b, 12, "rate-latency")
}

func TestConvolveTokenBucketWithRateLatency(t *testing.T) {
	// Classic: the output envelope shape sigma + rho(t+T) appears via
	// deconvolution, while convolution gives the "smoothed" input. Verify
	// against brute force only.
	f := TokenBucket(4, 0.5)
	b := RateLatency(1, 2)
	convCompare(t, f, b, 20, "tb-ratelatency")
	c := Convolve(f, b)
	// At t <= T the server may emit nothing.
	if got := c.Eval(1.5); got != 0 {
		t.Errorf("conv below latency = %g, want 0", got)
	}
	if !c.IsNonDecreasing() {
		t.Error("convolution of non-decreasing curves must be non-decreasing")
	}
}

func TestConvolveCommutativeAssociative(t *testing.T) {
	a := TokenBucketCapped(3, 0.25, 1)
	b := RateLatency(0.8, 2)
	c := TokenBucket(1, 0.4)
	ab, ba := Convolve(a, b), Convolve(b, a)
	if !ab.Equal(ba) {
		t.Errorf("convolution not commutative: %v vs %v", ab, ba)
	}
	left := Convolve(Convolve(a, b), c)
	right := Convolve(a, Convolve(b, c))
	if !left.Equal(right) {
		t.Errorf("convolution not associative: %v vs %v", left, right)
	}
}

func TestConvolveZeroIdentity(t *testing.T) {
	// Convolution with the zero curve gives zero (zero is absorbing for
	// curves through the origin).
	f := TokenBucketCapped(2, 0.5, 1)
	if got := Convolve(f, Zero()); !got.Equal(Zero()) {
		t.Errorf("f (x) 0 = %v, want zero curve", got)
	}
	// The neutral element of min-plus convolution is delta_0 (infinite
	// after 0); within PL curves a very steep line approximates it.
	steep := Rate(1e9)
	got := Convolve(f, steep)
	for _, x := range []float64{0.5, 1, 5, 10} {
		if math.Abs(got.Eval(x)-f.Eval(x)) > 1e-5 {
			t.Errorf("f (x) steep at %g = %g, want ~%g", x, got.Eval(x), f.Eval(x))
		}
	}
}

func TestConvolveRequiresMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decreasing operand")
		}
	}()
	dec := New([]Point{{0, 5}, {1, 0}}, 0)
	Convolve(dec, Zero())
}

func TestDeconvolveTokenBucketThroughRateLatency(t *testing.T) {
	// Classic result: (sigma,rho) through beta_{R,T} gives arrival curve
	// sigma + rho*(t+T) when rho <= R. At t = 0 the deconvolution equals
	// the backlog bound sigma + rho*T (not 0), so the result is the affine
	// curve rather than a token bucket with a jump.
	f := TokenBucket(4, 0.5)
	b := RateLatency(1, 2)
	d, err := Deconvolve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	want := Affine(0.5, 4+0.5*2)
	if !d.Equal(want) {
		t.Errorf("deconv = %v, want %v", d, want)
	}
}

func TestDeconvolveDiverges(t *testing.T) {
	f := TokenBucket(1, 2)
	b := RateLatency(1, 0) // service rate below arrival rate
	if _, err := Deconvolve(f, b); err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestDeconvolveBruteForce(t *testing.T) {
	f := TokenBucketCapped(3, 0.5, 1)
	g := RateLatency(0.8, 1.5)
	d, err := Deconvolve(f, g)
	if err != nil {
		t.Fatal(err)
	}
	brute := func(tt float64) float64 {
		best := math.Inf(-1)
		const n = 4000
		hi := 40.0
		for i := 0; i <= n; i++ {
			s := hi * float64(i) / n
			v := f.Eval(tt+s) - g.Eval(s)
			if v > best {
				best = v
			}
			v = f.EvalRight(tt+s) - g.EvalRight(s)
			if v > best {
				best = v
			}
		}
		return best
	}
	for i := 0; i <= 20; i++ {
		x := 10 * float64(i) / 20
		got, want := d.Eval(x), brute(x)
		// The brute-force supremum never exceeds the true supremum.
		if got < want-1e-6 {
			t.Fatalf("deconv(%g) = %g below brute-force sup %g", x, got, want)
		}
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("deconv(%g) = %g, brute %g", x, got, want)
		}
	}
}

func TestConvolveJumpyOperands(t *testing.T) {
	f := TokenBucket(2, 1)
	g := TokenBucket(3, 0.5)
	convCompare(t, f, g, 12, "two-buckets")
	c := Convolve(f, g)
	// Conv of two token buckets: burst min(2,3)=2 at 0+, then min slope.
	if got := c.EvalRight(0); !almostEqual(got, 2) {
		t.Errorf("conv right of 0 = %g, want 2", got)
	}
	if !almostEqual(c.FinalSlope(), 0.5) {
		t.Errorf("final slope = %g, want 0.5", c.FinalSlope())
	}
}
