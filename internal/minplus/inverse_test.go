package minplus

import (
	"math"
	"testing"
)

func TestLowerInverseOfLine(t *testing.T) {
	f := Rate(2)
	inv := LowerInverse(f)
	if !inv.Equal(Rate(0.5)) {
		t.Errorf("inverse of 2t = %v, want 0.5y", inv)
	}
}

func TestLowerInverseOfConcave(t *testing.T) {
	f := TokenBucketCapped(3, 0.5, 1) // t up to 6, then 3 + 0.5t
	inv := LowerInverse(f)
	cases := []struct{ y, want float64 }{
		{0, 0}, {3, 3}, {6, 6}, {8, 10}, // y=8: 3+0.5t=8 -> t=10
	}
	for _, tc := range cases {
		if got := inv.Eval(tc.y); !almostEqual(got, tc.want) {
			t.Errorf("inv(%g) = %g, want %g", tc.y, got, tc.want)
		}
	}
	// Round trip: f(inv(y)) == y for continuous strictly-increasing f.
	for _, y := range []float64{0.5, 2, 5.5, 9, 20} {
		if got := f.Eval(inv.Eval(y)); !almostEqual(got, y) {
			t.Errorf("f(inv(%g)) = %g, want %g", y, got, y)
		}
	}
}

func TestLowerInverseJumpBecomesFlat(t *testing.T) {
	f := TokenBucket(4, 1) // jump to 4 at 0+
	inv := LowerInverse(f)
	// Any y in (0,4] is first reached at t=0.
	for _, y := range []float64{0.5, 2, 4} {
		if got := inv.Eval(y); !almostEqual(got, 0) {
			t.Errorf("inv(%g) = %g, want 0 (jump)", y, got)
		}
	}
	if got := inv.Eval(5); !almostEqual(got, 1) {
		t.Errorf("inv(5) = %g, want 1", got)
	}
}

func TestLowerInverseFlatBecomesJump(t *testing.T) {
	// f rises to 2 at t=2, flat until t=5, then slope 1.
	f := New([]Point{{0, 0}, {2, 2}, {5, 2}}, 1)
	inv := LowerInverse(f)
	if got := inv.Eval(2); !almostEqual(got, 2) {
		t.Errorf("inv(2) = %g, want 2 (first time f reaches 2)", got)
	}
	// Just above the plateau the inverse jumps to 5.
	if got := inv.Eval(2.1); !almostEqual(got, 5.1) {
		t.Errorf("inv(2.1) = %g, want 5.1", got)
	}
	if got := inv.EvalRight(2); !almostEqual(got, 5) {
		t.Errorf("inv right of 2 = %g, want 5", got)
	}
}

func TestLowerInverseAtMatchesCurve(t *testing.T) {
	f := New([]Point{{0, 0}, {1, 3}, {4, 3}, {4, 6}}, 0.5)
	inv := LowerInverse(f)
	for _, y := range []float64{0, 1, 2.9, 3, 3.5, 5.9, 6, 7, 12} {
		got := LowerInverseAt(f, y)
		want := inv.Eval(y)
		if !almostEqual(got, want) {
			t.Errorf("LowerInverseAt(%g) = %g, curve gives %g", y, got, want)
		}
	}
}

func TestLowerInverseGaloisProperty(t *testing.T) {
	// f(t) >= y iff t >= f^{-1}(y) for left-continuous non-decreasing f
	// holds up to the boundary; verify the inequality form:
	// f(f^{-1}(y)) >= y when f is continuous at the point, and always
	// f(t) < y for t < f^{-1}(y).
	f := New([]Point{{0, 0}, {1, 2}, {3, 2}, {3, 5}}, 1)
	for _, y := range []float64{0.5, 1.9, 2, 3, 4.9, 5, 6} {
		x := LowerInverseAt(f, y)
		if x > 0 {
			before := f.Eval(x - 1e-6)
			if before >= y+1e-5 {
				t.Errorf("y=%g: f(%g - eps) = %g >= y, inverse not minimal", y, x, before)
			}
		}
		reach := math.Max(f.Eval(x), f.EvalRight(x))
		if reach < y-1e-6 {
			t.Errorf("y=%g: f does not reach y at inverse point %g (got %g)", y, x, reach)
		}
	}
}

func TestUpperInverse(t *testing.T) {
	// Strictly increasing: upper == lower inverse.
	f := Rate(2)
	if !UpperInverse(f).Equal(LowerInverse(f)) {
		t.Error("upper and lower inverse should agree for strictly increasing f")
	}
	// Plateau at 2 on [2,5]: upper inverse at 2 is 5, lower is 2.
	g := New([]Point{{0, 0}, {2, 2}, {5, 2}}, 1)
	up := UpperInverse(g)
	if got := up.Eval(2); !almostEqual(got, 5) && !almostEqual(up.EvalRight(2), 5) {
		t.Errorf("upper inverse at plateau = %g / %g, want 5", up.Eval(2), up.EvalRight(2))
	}
}

func TestLowerInversePanicsOnBounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bounded curve")
		}
	}()
	LowerInverse(Constant(3))
}

func TestLowerInverseAtBounded(t *testing.T) {
	f := New([]Point{{0, 0}, {4, 4}}, 0)
	if got := LowerInverseAtBounded(f, 2); !almostEqual(got, 2) {
		t.Errorf("bounded inverse below sup = %g, want 2", got)
	}
	if got := LowerInverseAtBounded(f, 4); !almostEqual(got, 4) {
		t.Errorf("bounded inverse at sup = %g, want 4", got)
	}
	if got := LowerInverseAtBounded(f, 5); got != -1 {
		t.Errorf("bounded inverse above sup = %g, want -1", got)
	}
}

func TestComposeLinear(t *testing.T) {
	f := Affine(2, 1)
	g := Affine(3, 0)
	h := Compose(f, g) // 1 + 2*(3t) = 1 + 6t
	if !h.Equal(Affine(6, 1)) {
		t.Errorf("compose = %v, want 1 + 6t", h)
	}
}

func TestComposePicksUpInnerBreakpoints(t *testing.T) {
	f := TokenBucketCapped(4, 0.5, 2) // knee where 2t = 4 + 0.5t -> t = 8/3
	g := Rate(0.5)
	h := Compose(f, g) // f(t/2)
	sampleCheck(t, h, func(x float64) float64 { return f.Eval(0.5 * x) }, 20, "compose")
}

func TestComposeOuterBreakpointPreimages(t *testing.T) {
	f := RateLatency(1, 3) // breakpoint at x=3
	g := Rate(2)
	h := Compose(f, g) // max(0, 2t-3): breakpoint at t=1.5
	if got := h.Eval(1.5); !almostEqual(got, 0) {
		t.Errorf("h(1.5) = %g, want 0", got)
	}
	if got := h.Eval(2.5); !almostEqual(got, 2) {
		t.Errorf("h(2.5) = %g, want 2", got)
	}
	if !almostEqual(h.FinalSlope(), 2) {
		t.Errorf("final slope = %g, want 2", h.FinalSlope())
	}
}

func TestComposeWithBoundedInner(t *testing.T) {
	g := New([]Point{{0, 0}, {4, 4}}, 0) // saturates at 4
	f := Rate(2)
	h := Compose(f, g)
	if got := h.Eval(10); !almostEqual(got, 8) {
		t.Errorf("h(10) = %g, want 8 (saturated)", got)
	}
	if !almostEqual(h.FinalSlope(), 0) {
		t.Errorf("final slope = %g, want 0", h.FinalSlope())
	}
}

func TestComposeJumpInInner(t *testing.T) {
	g := TokenBucket(3, 1)
	f := Rate(2)
	h := Compose(f, g)
	if got := h.Eval(0); got != 0 {
		t.Errorf("h(0) = %g, want 0 (left-continuity)", got)
	}
	if got := h.EvalRight(0); !almostEqual(got, 6) {
		t.Errorf("h(0+) = %g, want 6", got)
	}
}
