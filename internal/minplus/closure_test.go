package minplus

import (
	"math"
	"testing"
)

func TestMonotoneClosureIdentityOnMonotone(t *testing.T) {
	f := TokenBucketCapped(2, 0.5, 1)
	if !MonotoneClosure(f).Equal(f) {
		t.Error("closure of a non-decreasing curve must be itself")
	}
}

func TestMonotoneClosureDip(t *testing.T) {
	// Rise to 5 at x=1, dip to 2 at x=2, rise again at slope 1.
	f := New([]Point{{0, 0}, {1, 5}, {2, 2}}, 1)
	c := MonotoneClosure(f)
	if !c.IsNonDecreasing() {
		t.Fatalf("closure not monotone: %v", c)
	}
	// inf over [t, inf): before the dip the closure is capped at 2 once f
	// rises past it (f reaches 2 at x = 0.4), flat at 2 through the dip,
	// then follows f.
	cases := []struct{ x, want float64 }{
		{0.2, 1},   // f still below the future min
		{0.8, 2},   // capped by the dip
		{1.5, 2},   // inside the descent
		{2.5, 2.5}, // following f again
		{5, 5},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("closure(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	// Never above the original.
	for i := 0; i <= 100; i++ {
		x := 6 * float64(i) / 100
		if c.Eval(x) > f.Eval(x)+1e-9 {
			t.Errorf("closure above original at %g", x)
		}
	}
}

func TestMonotoneClosureIsGreatestMinorant(t *testing.T) {
	f := New([]Point{{0, 3}, {1, 1}, {3, 4}}, 0.5)
	c := MonotoneClosure(f)
	// Exactness: c(t) == inf_{s >= t} f(s) on a grid.
	for i := 0; i <= 120; i++ {
		x := 5 * float64(i) / 120
		inf := math.Inf(1)
		cands := []float64{x}
		for j := 0; j <= 400; j++ {
			cands = append(cands, x+8*float64(j)/400)
		}
		// The true infimum can sit exactly at a breakpoint the grid
		// misses.
		for _, p := range f.Points() {
			if p.X >= x {
				cands = append(cands, p.X)
			}
		}
		for _, s := range cands {
			if v := f.Eval(s); v < inf {
				inf = v
			}
		}
		if math.Abs(c.Eval(x)-inf) > 1e-6 {
			t.Fatalf("closure(%g) = %g, brute inf %g", x, c.Eval(x), inf)
		}
	}
}

func TestMonotoneClosurePanicsOnDivergent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative final slope")
		}
	}()
	MonotoneClosure(New([]Point{{0, 0}}, -1))
}

func TestZeroUntil(t *testing.T) {
	f := Affine(2, 1) // 1 + 2t
	g := ZeroUntil(f, 3)
	if got := g.Eval(2); got != 0 {
		t.Errorf("g(2) = %g, want 0", got)
	}
	if got := g.Eval(3); got != 0 {
		t.Errorf("g(3) = %g, want 0 (left-continuous at the gate)", got)
	}
	if got, want := g.EvalRight(3), f.EvalRight(3); math.Abs(got-want) > 1e-9 {
		t.Errorf("g(3+) = %g, want %g", got, want)
	}
	if got, want := g.Eval(5), f.Eval(5); math.Abs(got-want) > 1e-9 {
		t.Errorf("g(5) = %g, want %g", got, want)
	}
	if !ZeroUntil(f, 0).Equal(f) {
		t.Error("ZeroUntil at 0 must be identity")
	}
}

func TestZeroUntilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZeroUntil(Zero(), -1)
}

func TestRightSlope(t *testing.T) {
	f := New([]Point{{0, 0}, {2, 4}, {4, 4}}, 1) // slopes 2, 0, then 1
	cases := []struct{ x, want float64 }{
		{0, 2}, {1, 2}, {2, 0}, {3, 0}, {4, 1}, {10, 1}, {-1, 2},
	}
	for _, tc := range cases {
		if got := f.RightSlope(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RightSlope(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	// Right slope just after a jump uses the post-jump segment.
	j := Step(5, 2)
	if got := j.RightSlope(2); got != 0 {
		t.Errorf("RightSlope at jump = %g, want 0", got)
	}
}
