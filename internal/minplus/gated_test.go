package minplus

import (
	"math/rand"
	"sort"
	"testing"
)

// genGatedConvex draws a random curve in gated-convex form: zero up to a
// gate, an optional jump, then a convex non-decreasing section.
func genGatedConvex(r *rand.Rand) GatedConvex {
	g := GatedConvex{}
	if r.Intn(2) == 0 {
		g.Gate = round3(r.Float64() * 4)
	}
	if r.Intn(2) == 0 {
		g.Jump = round3(r.Float64() * 3)
	}
	n := r.Intn(4)
	slopes := make([]float64, n)
	for i := range slopes {
		slopes[i] = round3(r.Float64() * 2)
	}
	sort.Float64s(slopes)
	last := 0.0
	for _, s := range slopes {
		g.Segs = append(g.Segs, SlopeSeg{Len: round3(0.25 + r.Float64()*2), Slope: s})
		last = s
	}
	g.Tail = last + round3(r.Float64()*2)
	return g
}

func TestGatedConvexRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		g := genGatedConvex(rng)
		f := g.Curve()
		dec, ok := DecomposeGatedConvex(f)
		if !ok {
			t.Fatalf("trial %d: decomposition failed for %v (from %+v)", trial, f, g)
		}
		if !dec.Curve().Equal(f) {
			t.Fatalf("trial %d: roundtrip mismatch\nf      %v\nrebuilt %v", trial, f, dec.Curve())
		}
	}
}

func TestDecomposeGatedConvexRejects(t *testing.T) {
	cases := []struct {
		name string
		c    Curve
	}{
		{"nonzero start", New([]Point{{0, 1}, {2, 3}}, 1)},
		{"interior jump", New([]Point{{0, 0}, {1, 1}, {1, 3}, {2, 4}}, 1)},
		{"concave section", New([]Point{{0, 0}, {1, 2}, {3, 3}}, 0.25)},
		{"decreasing tail", New([]Point{{0, 0}, {1, 1}}, 0.5)},
	}
	// The last case is convex (slope 1 then 0.5 decreasing): verify it is
	// rejected for non-convexity, not accepted.
	for _, tc := range cases {
		if _, ok := DecomposeGatedConvex(tc.c); ok {
			t.Errorf("%s: DecomposeGatedConvex accepted %v", tc.name, tc.c)
		}
	}
}

func TestConvolveGatedMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 150; trial++ {
		f := genGatedConvex(rng).Curve()
		g := genGatedConvex(rng).Curve()
		got := ConvolveGated(f, g)
		want := Convolve(f, g)
		if !got.Equal(want) {
			t.Fatalf("trial %d:\nf    %v\ng    %v\ngated   %v\ngeneric %v", trial, f, g, got, want)
		}
	}
}

// TestConvolveGatedFallback checks that non-gated-convex operands fall
// back to the generic convolution.
func TestConvolveGatedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 80; trial++ {
		f, g := genCurve(rng), genCurve(rng)
		got := ConvolveGated(f, g)
		want := Convolve(f, g)
		if !got.Equal(want) {
			t.Fatalf("trial %d:\nf    %v\ng    %v\ngated   %v\ngeneric %v", trial, f, g, got, want)
		}
	}
}

func BenchmarkConvolveGated(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	fs := make([]Curve, 16)
	for i := range fs {
		fs[i] = genGatedConvex(rng).Curve()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveGated(fs[i%16], fs[(i+7)%16])
	}
}
