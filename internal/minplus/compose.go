package minplus

// Compose returns h(t) = f(g(t)) for non-decreasing curves f and g. The
// composition of left-continuous non-decreasing piecewise-linear functions
// is again left-continuous piecewise-linear; its breakpoints occur at the
// breakpoints of g and at the points where g crosses a breakpoint abscissa
// of f.
func Compose(f, g Curve) Curve {
	f.mustValid()
	g.mustValid()
	if !f.IsNonDecreasing() || !g.IsNonDecreasing() {
		panic("minplus: Compose requires non-decreasing curves")
	}
	ts := g.xBreaks()
	// Preimages under g of f's breakpoint abscissas.
	for _, x := range f.xBreaks() {
		t := LowerInverseAtBounded(g, x)
		if t >= 0 {
			ts = append(ts, t)
		}
	}
	eval := func(t float64) float64 { return f.Eval(g.Eval(t)) }
	// Tail slope: once t exceeds every candidate, g is affine; if g is
	// unbounded f is also evaluated on its affine tail.
	var tail float64
	if g.slope <= Eps {
		tail = 0
	} else {
		tail = f.slope * g.slope
	}
	return fromEvaluator(nil, ts, eval, tail)
}

// LowerInverseAtBounded is LowerInverseAt extended to bounded curves: it
// returns -1 when y exceeds the supremum of f, instead of panicking.
func LowerInverseAtBounded(f Curve, y float64) float64 {
	f.mustValid()
	if y <= f.pts[0].Y {
		return 0
	}
	last := f.pts[len(f.pts)-1]
	if f.slope <= Eps && y > last.Y && !almostEqual(y, last.Y) {
		return -1
	}
	return LowerInverseAt(f, y)
}
