package minplus

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genCurve draws a random non-decreasing piecewise-linear curve with a few
// breakpoints, occasional jumps, and a bounded final slope.
func genCurve(r *rand.Rand) Curve {
	n := 1 + r.Intn(4)
	pts := []Point{{0, 0}}
	x, y := 0.0, 0.0
	if r.Intn(3) == 0 { // jump at origin
		y = round3(r.Float64() * 5)
		pts = append(pts, Point{0, y})
	}
	for i := 0; i < n; i++ {
		x += round3(0.25 + r.Float64()*3)
		if r.Intn(4) == 0 { // occasional flat segment then jump
			pts = append(pts, Point{x, y})
			y += round3(r.Float64() * 4)
			pts = append(pts, Point{x, y})
			continue
		}
		y += round3(r.Float64() * 4)
		pts = append(pts, Point{x, y})
	}
	slope := round3(r.Float64() * 3)
	return New(pts, slope)
}

// round3 keeps coordinates on a coarse lattice so exact comparisons stay
// away from floating-point noise.
func round3(v float64) float64 { return math.Round(v*8) / 8 }

// curveBox wraps Curve for testing/quick generation.
type curveBox struct{ C Curve }

func (curveBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(curveBox{genCurve(r)})
}

var quickCfg = &quick.Config{MaxCount: 150}

func TestQuickConvolveSoundAndTight(t *testing.T) {
	prop := func(a, b curveBox) bool {
		f, g := a.C, b.C
		c := Convolve(f, g)
		hi := f.LastX() + g.LastX() + 3
		for i := 0; i <= 25; i++ {
			x := hi * float64(i) / 25
			want := bruteConvAt(f, g, x)
			got := c.Eval(x)
			if got > want+1e-6 {
				t.Logf("unsound at %g: got %g > brute %g\nf=%v\ng=%v\nc=%v", x, got, want, f, g, c)
				return false
			}
			if got < want-0.2 { // grid slack
				t.Logf("too loose at %g: got %g << brute %g\nf=%v\ng=%v\nc=%v", x, got, want, f, g, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveCommutative(t *testing.T) {
	prop := func(a, b curveBox) bool {
		return Convolve(a.C, b.C).Equal(Convolve(b.C, a.C))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveMonotone(t *testing.T) {
	prop := func(a, b curveBox) bool {
		c := Convolve(a.C, b.C)
		if !c.IsNonDecreasing() {
			return false
		}
		// Convolution never exceeds either operand plus the other's value
		// at zero.
		hi := c.LastX() + 2
		for i := 0; i <= 20; i++ {
			x := hi * float64(i) / 20
			if c.Eval(x) > a.C.Eval(x)+b.C.Eval(0)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddCommutativeAssociative(t *testing.T) {
	prop := func(a, b, c curveBox) bool {
		ab := Add(a.C, b.C)
		if !ab.Equal(Add(b.C, a.C)) {
			return false
		}
		return Add(ab, c.C).Equal(Add(a.C, Add(b.C, c.C)))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinMaxEnvelope(t *testing.T) {
	prop := func(a, b curveBox) bool {
		mn, mx := Min(a.C, b.C), Max(a.C, b.C)
		hi := math.Max(a.C.LastX(), b.C.LastX()) + 2
		for i := 0; i <= 40; i++ {
			x := hi * float64(i) / 40
			fa, fb := a.C.Eval(x), b.C.Eval(x)
			if !almostEqual(mn.Eval(x), math.Min(fa, fb)) {
				return false
			}
			if !almostEqual(mx.Eval(x), math.Max(fa, fb)) {
				return false
			}
		}
		// min + max == f + g pointwise.
		return Add(mn, mx).Equal(Add(a.C, b.C))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLowerInverseGalois(t *testing.T) {
	prop := func(a curveBox) bool {
		f := a.C
		if f.FinalSlope() <= Eps {
			return true // bounded curves have no full inverse
		}
		ymax := f.Eval(f.LastX()+2) + 1
		for i := 0; i <= 30; i++ {
			y := ymax * float64(i) / 30
			x := LowerInverseAt(f, y)
			// Minimality: strictly before x the curve is below y.
			if x > 1e-6 && f.Eval(x-1e-7) > y+1e-6 {
				return false
			}
			// Attainment: at or just after x the curve reaches y.
			if math.Max(f.Eval(x), f.EvalRight(x)) < y-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComposeMatchesPointwise(t *testing.T) {
	prop := func(a, b curveBox) bool {
		f, g := a.C, b.C
		h := Compose(f, g)
		hi := g.LastX() + 3
		for i := 0; i <= 40; i++ {
			x := hi*float64(i)/40 + 1e-3 // avoid ambiguity exactly at jumps
			if !almostEqual(h.Eval(x), f.Eval(g.Eval(x))) {
				t.Logf("compose mismatch at %g: got %g want %g\nf=%v\ng=%v\nh=%v",
					x, h.Eval(x), f.Eval(g.Eval(x)), f, g, h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeconvolveDominatesShiftedInput(t *testing.T) {
	prop := func(a, b curveBox) bool {
		f, g := a.C, b.C
		if f.FinalSlope() > g.FinalSlope()+Eps {
			_, err := Deconvolve(f, g)
			return err != nil
		}
		d, err := Deconvolve(f, g)
		if err != nil {
			return false
		}
		// (f (/) g)(t) >= f(t) - g(0) with s = 0.
		hi := f.LastX() + g.LastX() + 2
		for i := 0; i <= 25; i++ {
			x := hi * float64(i) / 25
			if d.Eval(x) < f.Eval(x)-g.EvalRight(0)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDelayShiftRoundTrip(t *testing.T) {
	prop := func(a curveBox, dRaw uint8) bool {
		d := float64(dRaw%16) / 4
		f := a.C
		return ShiftLeft(Delay(f, d), d).Equal(f)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHorizontalDeviationSound(t *testing.T) {
	prop := func(a, b curveBox) bool {
		alpha, beta := a.C, b.C
		h := HorizontalDeviation(alpha, beta)
		if math.IsInf(h, 1) {
			return true
		}
		// Soundness: alpha(t) <= beta(t + h + eps) for all t.
		hi := alpha.LastX() + beta.LastX() + 3
		for i := 0; i <= 40; i++ {
			x := hi * float64(i) / 40
			if alpha.Eval(x) > beta.Eval(x+h+1e-6)+1e-5 {
				t.Logf("unsound at t=%g: alpha %g > beta(t+h) %g (h=%g)\nalpha=%v\nbeta=%v",
					x, alpha.Eval(x), beta.Eval(x+h+1e-6), h, alpha, beta)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEqualReflexive(t *testing.T) {
	prop := func(a curveBox) bool { return a.C.Equal(a.C) }
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotoneClosureProperties(t *testing.T) {
	prop := func(a curveBox) bool {
		f := a.C
		c := MonotoneClosure(f)
		if !c.IsNonDecreasing() {
			return false
		}
		hi := f.LastX() + 2
		for i := 0; i <= 30; i++ {
			x := hi * float64(i) / 30
			// Never above the original, and idempotent.
			if c.Eval(x) > f.Eval(x)+1e-9 {
				return false
			}
		}
		return MonotoneClosure(c).Equal(c)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickZeroUntilProperties(t *testing.T) {
	prop := func(a curveBox, gateRaw uint8) bool {
		f := a.C
		gate := float64(gateRaw%20) / 4
		g := ZeroUntil(f, gate)
		if !g.IsNonDecreasing() {
			return false
		}
		hi := f.LastX() + gate + 2
		for i := 0; i <= 30; i++ {
			x := hi * float64(i) / 30
			switch {
			case x < gate-1e-9:
				if g.Eval(x) != 0 {
					return false
				}
			case x > gate+1e-9:
				if !almostEqual(g.Eval(x), f.Eval(x)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveWithGatedOperand(t *testing.T) {
	// Convolving with a gated curve delays everything by at least the
	// gate: the composition the integrated analyzer performs constantly.
	prop := func(a, b curveBox, gateRaw uint8) bool {
		gate := float64(gateRaw%16) / 4
		f := a.C
		g := ZeroUntil(b.C, gate)
		c := Convolve(f, g)
		// c(t) <= f(t-gate) + g-tail... at minimum, c is 0 wherever both
		// operands give no service: c(t) = 0 for t <= gate if f(0) = 0.
		if f.Eval(0) == 0 && c.Eval(gate) > 1e-9 {
			return false
		}
		return c.IsNonDecreasing()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}
