// Package sched provides the packet-queue scheduling disciplines used by
// the discrete-event simulator: FIFO, static priority, and self-clocked
// fair queueing (a practical weighted-fair-queueing variant). The analytic
// packages never depend on sched; it exists to validate their bounds
// against executable behavior.
package sched

import "container/heap"

// Packet is one simulated packet.
type Packet struct {
	Conn     int     // connection index
	Size     float64 // bits
	Release  float64 // time the packet entered the network (first server)
	Priority int     // static-priority class, lower = more urgent
	Weight   float64 // fair-queueing weight (reserved rate)
	Hop      int     // current hop index along the connection's path
	// LocalDeadline is the packet's relative per-hop deadline; EDF queues
	// serve by arrival time plus LocalDeadline.
	LocalDeadline float64
	seq           uint64  // global arrival sequence for FIFO tie-breaking
	tag           float64 // SCFQ virtual finish tag or EDF absolute deadline
}

// Queue is a work-conserving packet queue feeding one transmission line.
type Queue interface {
	// Push enqueues a packet that arrived at the given time.
	Push(p *Packet, now float64)
	// Pop removes and returns the next packet to transmit, or nil.
	Pop(now float64) *Packet
	// Len returns the number of queued packets.
	Len() int
}

// fifoQueue serves packets strictly in arrival order.
type fifoQueue struct {
	q   []*Packet
	seq uint64
}

// NewFIFO returns a FIFO queue.
func NewFIFO() Queue { return &fifoQueue{} }

func (f *fifoQueue) Push(p *Packet, _ float64) {
	p.seq = f.seq
	f.seq++
	f.q = append(f.q, p)
}

func (f *fifoQueue) Pop(_ float64) *Packet {
	if len(f.q) == 0 {
		return nil
	}
	p := f.q[0]
	copy(f.q, f.q[1:])
	f.q = f.q[:len(f.q)-1]
	return p
}

func (f *fifoQueue) Len() int { return len(f.q) }

// spQueue serves the lowest-numbered backlogged priority class first; ties
// within a class break FIFO. Service is non-preemptive, as in a real
// store-and-forward switch: preemption decisions happen only at packet
// boundaries because Pop is only called when the line frees up.
type spQueue struct {
	classes map[int]*fifoQueue
	order   []int // sorted priorities present
}

// NewStaticPriority returns a static-priority queue.
func NewStaticPriority() Queue { return &spQueue{classes: make(map[int]*fifoQueue)} }

func (s *spQueue) Push(p *Packet, now float64) {
	q, ok := s.classes[p.Priority]
	if !ok {
		q = &fifoQueue{}
		s.classes[p.Priority] = q
		s.order = insertSorted(s.order, p.Priority)
	}
	q.Push(p, now)
}

func (s *spQueue) Pop(now float64) *Packet {
	for _, prio := range s.order {
		if q := s.classes[prio]; q.Len() > 0 {
			return q.Pop(now)
		}
	}
	return nil
}

func (s *spQueue) Len() int {
	n := 0
	for _, q := range s.classes {
		n += q.Len()
	}
	return n
}

func insertSorted(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	xs = append(xs, v)
	for i := len(xs) - 1; i > 0 && xs[i] < xs[i-1]; i-- {
		xs[i], xs[i-1] = xs[i-1], xs[i]
	}
	return xs
}

// scfqQueue implements Self-Clocked Fair Queueing (Golestani): each packet
// receives the virtual finish tag
//
//	F = max(v, F_prev(flow)) + Size/Weight,
//
// where v is the tag of the packet most recently dequeued, and packets are
// served in tag order. SCFQ approximates GPS within one packet per flow and
// is the classical practical realization of a guaranteed-rate server.
type scfqQueue struct {
	h        tagHeap
	lastTag  map[int]float64
	v        float64
	seq      uint64
	capacity float64
}

// NewSCFQ returns a self-clocked fair queueing queue.
func NewSCFQ() Queue {
	return &scfqQueue{lastTag: make(map[int]float64)}
}

func (s *scfqQueue) Push(p *Packet, _ float64) {
	w := p.Weight
	if w <= 0 {
		w = 1
	}
	start := s.v
	if last, ok := s.lastTag[p.Conn]; ok && last > start {
		start = last
	}
	p.tag = start + p.Size/w
	s.lastTag[p.Conn] = p.tag
	p.seq = s.seq
	s.seq++
	heap.Push(&s.h, p)
}

func (s *scfqQueue) Pop(_ float64) *Packet {
	if s.h.Len() == 0 {
		return nil
	}
	p := heap.Pop(&s.h).(*Packet)
	s.v = p.tag
	return p
}

func (s *scfqQueue) Len() int { return s.h.Len() }

// edfQueue serves the packet with the earliest absolute local deadline
// (arrival time at this hop plus the packet's relative LocalDeadline);
// ties break in arrival order. Service is non-preemptive.
type edfQueue struct {
	h   tagHeap
	seq uint64
}

// NewEDF returns an earliest-deadline-first queue.
func NewEDF() Queue { return &edfQueue{} }

func (e *edfQueue) Push(p *Packet, now float64) {
	p.tag = now + p.LocalDeadline
	p.seq = e.seq
	e.seq++
	heap.Push(&e.h, p)
}

func (e *edfQueue) Pop(_ float64) *Packet {
	if e.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&e.h).(*Packet)
}

func (e *edfQueue) Len() int { return e.h.Len() }

// tagHeap orders packets by SCFQ tag or EDF deadline, then arrival
// sequence.
type tagHeap []*Packet

func (h tagHeap) Len() int { return len(h) }
func (h tagHeap) Less(i, j int) bool {
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h tagHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tagHeap) Push(x interface{}) { *h = append(*h, x.(*Packet)) }
func (h *tagHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
