package sched

import "testing"

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 5; i++ {
		q.Push(&Packet{Conn: i}, float64(i))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		p := q.Pop(10)
		if p == nil || p.Conn != i {
			t.Fatalf("pop %d: got %+v", i, p)
		}
	}
	if q.Pop(10) != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestStaticPriorityOrder(t *testing.T) {
	q := NewStaticPriority()
	q.Push(&Packet{Conn: 0, Priority: 2}, 0)
	q.Push(&Packet{Conn: 1, Priority: 0}, 1)
	q.Push(&Packet{Conn: 2, Priority: 1}, 2)
	q.Push(&Packet{Conn: 3, Priority: 0}, 3)
	wantConns := []int{1, 3, 2, 0} // class 0 FIFO first, then 1, then 2
	for i, want := range wantConns {
		p := q.Pop(10)
		if p == nil || p.Conn != want {
			t.Fatalf("pop %d: got %+v, want conn %d", i, p, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

func TestStaticPriorityLen(t *testing.T) {
	q := NewStaticPriority()
	for i := 0; i < 7; i++ {
		q.Push(&Packet{Priority: i % 3}, 0)
	}
	if q.Len() != 7 {
		t.Errorf("Len = %d, want 7", q.Len())
	}
}

func TestSCFQSharesBandwidthByWeight(t *testing.T) {
	q := NewSCFQ()
	// Flow 0 has twice the weight of flow 1; with both continuously
	// backlogged, flow 0 should be served about twice as often.
	for i := 0; i < 30; i++ {
		q.Push(&Packet{Conn: 0, Size: 1, Weight: 2}, 0)
		q.Push(&Packet{Conn: 1, Size: 1, Weight: 1}, 0)
	}
	served := map[int]int{}
	for i := 0; i < 30; i++ {
		p := q.Pop(0)
		served[p.Conn]++
	}
	if served[0] < 18 || served[0] > 22 {
		t.Errorf("weighted share off: flow0 served %d of 30 (want ~20)", served[0])
	}
}

func TestSCFQDefaultsZeroWeight(t *testing.T) {
	q := NewSCFQ()
	q.Push(&Packet{Conn: 0, Size: 1, Weight: 0}, 0)
	if p := q.Pop(0); p == nil || p.Conn != 0 {
		t.Fatal("zero-weight packet lost")
	}
}

func TestSCFQFIFOWithinFlow(t *testing.T) {
	q := NewSCFQ()
	for i := 0; i < 4; i++ {
		q.Push(&Packet{Conn: 0, Size: 1, Weight: 1, Release: float64(i)}, float64(i))
	}
	prev := -1.0
	for i := 0; i < 4; i++ {
		p := q.Pop(0)
		if p.Release < prev {
			t.Fatal("per-flow order violated")
		}
		prev = p.Release
	}
}

func TestInsertSorted(t *testing.T) {
	xs := []int{}
	for _, v := range []int{3, 1, 2, 1, 5, 0} {
		xs = insertSorted(xs, v)
	}
	want := []int{0, 1, 2, 3, 5}
	if len(xs) != len(want) {
		t.Fatalf("got %v, want %v", xs, want)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("got %v, want %v", xs, want)
		}
	}
}
