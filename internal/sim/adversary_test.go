package sim

import (
	"math"
	"reflect"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// conformanceCheck verifies that packet emissions stay within the token
// bucket envelope over every interval between emission instants: the bits
// sent in (s, t] must not exceed sigma + rho*(t-s).
func conformanceCheck(t *testing.T, tb traffic.TokenBucket, times []float64, packetSize float64) {
	t.Helper()
	const eps = 1e-9
	for i := range times {
		for j := i; j < len(times); j++ {
			bits := float64(j-i+1) * packetSize
			window := times[j] - times[i]
			if bits > tb.Sigma+tb.Rho*window+packetSize+eps {
				t.Fatalf("emissions %d..%d: %g bits in window %g exceed envelope %g",
					i, j, bits, window, tb.Sigma+tb.Rho*window)
			}
		}
	}
}

func TestAdversarialSourceZeroControlMatchesGreedy(t *testing.T) {
	for _, access := range []float64{0, 1, 5} {
		g := GreedySource{Sigma: 1, Rho: 0.25, Access: access}
		a := AdversarialSource{Sigma: 1, Rho: 0.25, Access: access}
		// The horizon is kept off the exact emission grid: the greedy
		// source computes instants in closed form while the adversarial
		// one accumulates forward, so a horizon landing exactly on an
		// emission differs by one ulp between the two.
		gt := g.Times(0.02, 40.01)
		at := a.Times(0.02, 40.01)
		if len(gt) != len(at) {
			t.Fatalf("access=%g: %d greedy vs %d adversarial packets", access, len(gt), len(at))
		}
		for i := range gt {
			if math.Abs(gt[i]-at[i]) > 1e-9 {
				t.Fatalf("access=%g packet %d: greedy %g adversarial %g", access, i, gt[i], at[i])
			}
		}
	}
}

func TestAdversarialSourcePhaseShiftsGreedy(t *testing.T) {
	base := AdversarialSource{Sigma: 1, Rho: 0.25, Access: 1}
	shifted := base
	shifted.Phase = 3
	bt := base.Times(0.05, 20)
	st := shifted.Times(0.05, 23)
	if len(st) < len(bt) {
		t.Fatalf("shifted horizon should cover as many packets: %d vs %d", len(st), len(bt))
	}
	for i := range bt {
		if math.Abs(st[i]-(bt[i]+3)) > 1e-9 {
			t.Fatalf("packet %d: want %g, got %g", i, bt[i]+3, st[i])
		}
	}
}

func TestAdversarialSourceConformance(t *testing.T) {
	tb := traffic.TokenBucket{Sigma: 1, Rho: 0.3}
	cases := []AdversarialSource{
		{Sigma: tb.Sigma, Rho: tb.Rho, Access: 1, Phase: 2.5, BurstDelay: 4},
		{Sigma: tb.Sigma, Rho: tb.Rho, Access: 1, Phase: 0, BurstDelay: 7, Pace: true},
		{Sigma: tb.Sigma, Rho: tb.Rho, Access: 0, BurstDelay: 3.3, Pace: true},
		{Sigma: tb.Sigma, Rho: tb.Rho, Access: 2, Phase: 1.1, BurstDelay: 0.01, Pace: true},
	}
	for i, src := range cases {
		times := src.Times(0.04, 60)
		if len(times) == 0 {
			t.Fatalf("case %d: no packets emitted", i)
		}
		conformanceCheck(t, tb, times, 0.04)
		for j := 1; j < len(times); j++ {
			if times[j] < times[j-1] {
				t.Fatalf("case %d: emission times not monotone at %d", i, j)
			}
		}
	}
}

func TestAdversarialSourcePaceHoldsRateBeforeBurst(t *testing.T) {
	src := AdversarialSource{Sigma: 1, Rho: 0.25, Access: 1, BurstDelay: 8, Pace: true}
	const L = 0.05
	times := src.Times(L, 30)
	// Before the burst instant, emissions must be spaced at the token
	// rate (L/rho = 0.2), i.e. the source must not be greedy yet.
	pre := 0
	for _, tm := range times {
		if tm < 8 {
			pre++
		}
	}
	// Completion-time packetization puts the k-th paced packet at
	// k*L/rho; the one landing exactly on the burst instant counts as
	// post-burst.
	want := int(8/(L/0.25)) - 1
	if pre != want {
		t.Fatalf("paced prefix emitted %d packets, want %d", pre, want)
	}
	// The burst is then released: emissions right after 8 come at the
	// access line rate, much faster than the token rate.
	post := 0
	for _, tm := range times {
		if tm >= 8 && tm < 8+1.0 { // one bucket at access rate 1 takes ~1 time unit
			post++
		}
	}
	if post < int(0.9/L) {
		t.Fatalf("burst release emitted only %d packets in the window", post)
	}
}

func TestRandomAdversaryDeterministic(t *testing.T) {
	net, err := topo.PaperTandem(3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	a1 := RandomAdversary(net, 42, 10)
	a2 := RandomAdversary(net, 42, 10)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different adversaries")
	}
	a3 := RandomAdversary(net, 43, 10)
	if reflect.DeepEqual(a1.Controls, a3.Controls) {
		t.Fatal("different seeds produced identical controls")
	}
	if len(a1.Controls) != len(net.Connections) {
		t.Fatalf("got %d controls for %d connections", len(a1.Controls), len(net.Connections))
	}
}

func TestRunWithAdversaryReplayable(t *testing.T) {
	net, err := topo.PaperTandem(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	adv := RandomAdversary(net, 7, 5)
	cfg := Config{PacketSize: 0.05, Horizon: WorstCaseHorizon(net), Adversary: adv}
	r1, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("identical adversary configs produced different results")
	}
	if r1.Delivered == 0 {
		t.Fatal("adversarial run delivered no packets")
	}
}

func TestRunAdversaryRespectsBounds(t *testing.T) {
	// Adversarial traffic is token-bucket compliant, so sound analytic
	// bounds must still hold (up to packet quantization slack).
	net, err := topo.PaperTandem(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// The decomposed bound is sound for any conforming sources.
	ares, err := (analysis.Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		adv := RandomAdversary(net, seed, 8)
		const L = 0.02
		res, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net) + 16, Adversary: adv})
		if err != nil {
			t.Fatal(err)
		}
		for c := range net.Connections {
			if res.Stats[c].MaxDelay > ares.Bound(c)+QuantizationSlack(net, c, L) {
				t.Errorf("seed %d conn %d: adversarial delay %g exceeds decomposed bound %g",
					seed, c, res.Stats[c].MaxDelay, ares.Bound(c))
			}
		}
	}
}
