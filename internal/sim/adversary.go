package sim

import (
	"math"
	"math/rand"

	"delaycalc/internal/topo"
)

// SourceControl is the deterministic adversary knob set of one source. The
// zero value reproduces the plain greedy source exactly, so controls can be
// perturbed one field at a time from the worst-case baseline the analysis
// is built around.
type SourceControl struct {
	// Phase delays the start of all activity: the source is silent on
	// [0, Phase). The token bucket is full at time zero and stays full
	// through the silence, so a phased source is still maximally bursty
	// when it wakes.
	Phase float64 `json:"phase,omitempty"`
	// BurstDelay withholds the initial burst for this long after Phase.
	// While withholding, the source either stays silent or (with Pace)
	// emits at exactly the token rate, keeping the bucket full either
	// way; at Phase+BurstDelay it releases the full burst and stays
	// greedy. Shifting cross bursts relative to the busy-period start is
	// the degree of freedom that disproved the greedy-pair estimate
	// (DESIGN.md §4.4).
	BurstDelay float64 `json:"burst_delay,omitempty"`
	// Pace emits at the sustained token rate during the BurstDelay
	// window instead of staying silent, building a backlog background
	// for the burst to land on.
	Pace bool `json:"pace,omitempty"`
}

// Adversary configures deterministic adversarial traffic for a whole run:
// one SourceControl per connection (indexed like Network.Connections;
// missing or zero entries fall back to plain greedy). The struct fully
// determines the generated traffic, so serializing it alongside the
// network spec makes any simulation trace exactly replayable.
type Adversary struct {
	// Seed records the RNG seed the controls were drawn or evolved from.
	// Run does not consume it — it is carried for provenance so a replay
	// can verify it reproduces the same controls.
	Seed int64 `json:"seed"`
	// Controls holds the per-connection knobs.
	Controls []SourceControl `json:"controls"`
}

// RandomAdversary draws one control per connection from a seeded RNG:
// phases and burst delays uniform in [0, spread), pacing by fair coin.
// The same (net, seed, spread) triple always yields the same controls.
func RandomAdversary(net *topo.Network, seed int64, spread float64) *Adversary {
	rng := rand.New(rand.NewSource(seed))
	adv := &Adversary{Seed: seed, Controls: make([]SourceControl, len(net.Connections))}
	for i := range adv.Controls {
		adv.Controls[i] = SourceControl{
			Phase:      rng.Float64() * spread,
			BurstDelay: rng.Float64() * spread,
			Pace:       rng.Intn(2) == 1,
		}
	}
	return adv
}

// Control returns the knob set of connection i, defaulting to the zero
// (plain greedy) control when the adversary is nil or has no entry.
func (a *Adversary) Control(i int) SourceControl {
	if a == nil || i >= len(a.Controls) {
		return SourceControl{}
	}
	return a.Controls[i]
}

// Source builds the adversarial source of connection c under control i.
func (a *Adversary) Source(c topo.Connection, i int) Source {
	ctl := a.Control(i)
	return AdversarialSource{
		Sigma:      c.Bucket.Sigma,
		Rho:        c.Bucket.Rho,
		Access:     c.AccessRate,
		Phase:      ctl.Phase,
		BurstDelay: ctl.BurstDelay,
		Pace:       ctl.Pace,
	}
}

// AdversarialSource is a token-bucket-compliant source with a placeable
// burst: silent on [0, Phase); then silent or pacing at Rho (Pace) on
// [Phase, Phase+BurstDelay); then it releases the full bucket as fast as
// the access line allows and stays greedy. With zero Phase and BurstDelay
// it emits exactly the GreedySource pattern. The bucket starts full and
// both waiting regimes keep it full, so the source is compliant by
// construction.
type AdversarialSource struct {
	Sigma, Rho float64
	Access     float64 // access line rate; 0 means unlimited
	Phase      float64
	BurstDelay float64
	Pace       bool
}

// Times implements Source by inverting the fluid cumulative emission at
// each packet boundary, exactly like GreedySource. The fluid emission is
//
//	E(t) = 0                                     t < Phase
//	     = p*(t-Phase)                           Phase <= t < B   (p = paced rate, 0 unless Pace)
//	     = E(B) + min(a*(t-B), Sigma + Rho*(t-B))   t >= B        (B = Phase+BurstDelay)
//
// Emitting at (at most) the token rate keeps the fluid bucket full, so the
// post-burst tail is precisely the greedy emission started at B — with
// zero Phase and BurstDelay the pattern is bit-identical to GreedySource.
func (a AdversarialSource) Times(packetSize, horizon float64) []float64 {
	if packetSize <= 0 {
		panic("sim: non-positive packet size")
	}
	phase := math.Max(0, a.Phase)
	burstAt := phase + math.Max(0, a.BurstDelay)
	pacedRate := 0.0
	if a.Pace && a.Rho > 0 {
		pacedRate = a.Rho
		if a.Access > 0 && a.Access < pacedRate {
			pacedRate = a.Access // the line, not the bucket, is the brake
		}
	}
	paced := pacedRate * (burstAt - phase)
	tail := GreedySource{Sigma: a.Sigma, Rho: a.Rho, Access: a.Access}
	var times []float64
	for k := 1; ; k++ {
		bits := float64(k) * packetSize
		var t float64
		if bits <= paced {
			t = phase + bits/pacedRate
		} else {
			t = burstAt + tail.inverse(bits-paced)
		}
		if math.IsInf(t, 1) || t >= horizon {
			break
		}
		times = append(times, t)
	}
	return times
}

// QuantizationSlack returns the delay tolerance a packetized simulation
// needs on top of a fluid-model bound for one connection: store-and-forward
// quantization costs up to one packet transmission time per hop, plus one
// packet time of measurement quantization at entry. Observed delays within
// bound+slack are consistent with the bound; beyond it they contradict it.
func QuantizationSlack(net *topo.Network, conn int, packetSize float64) float64 {
	slack := packetSize // entry quantization
	for _, s := range net.Connections[conn].Path {
		slack += packetSize / net.Servers[s].Capacity
	}
	return slack
}
