package sim

import (
	"fmt"
	"math"
	"testing"

	"delaycalc/internal/topo"
)

// TestPercentileOneIsMaxDelay is the nearest-rank property test: with
// sampling on, Percentile(1) must equal MaxDelay exactly for every
// connection, across a sweep of topologies, loads, and packet sizes —
// ceil(1*n)-1 is always the last (largest) sorted sample, which the
// streaming MaxDelay tracked independently.
func TestPercentileOneIsMaxDelay(t *testing.T) {
	type tc struct {
		servers    int
		load       float64
		packetSize float64
	}
	var cases []tc
	for _, n := range []int{1, 2, 4} {
		for _, u := range []float64{0.3, 0.6, 0.9} {
			for _, ps := range []float64{0.02, 0.05} {
				cases = append(cases, tc{n, u, ps})
			}
		}
	}
	for _, c := range cases {
		name := fmt.Sprintf("n%d-u%g-ps%g", c.servers, c.load, c.packetSize)
		net, err := topo.PaperTandem(c.servers, c.load)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Run(net, Config{PacketSize: c.packetSize, Horizon: 30, KeepSamples: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, st := range res.Stats {
			if st.Packets == 0 {
				continue
			}
			if p100 := st.Percentile(1); p100 != st.MaxDelay {
				t.Errorf("%s: conn %d Percentile(1) = %v, MaxDelay = %v", name, i, p100, st.MaxDelay)
			}
			// The quantile function is monotone in p.
			prev := math.Inf(-1)
			for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				v := st.Percentile(p)
				if math.IsNaN(v) {
					t.Fatalf("%s: conn %d Percentile(%g) NaN with sampling on", name, i, p)
				}
				if v < prev {
					t.Errorf("%s: conn %d Percentile(%g)=%v below Percentile at smaller p %v", name, i, p, v, prev)
				}
				prev = v
			}
		}
	}
}

// TestPercentileWithoutSamplingIsNaN pins the documented failure mode the
// serving experiments must guard against: no KeepSamples, no percentiles.
func TestPercentileWithoutSamplingIsNaN(t *testing.T) {
	net, err := topo.PaperTandem(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Config{PacketSize: 0.05, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Stats {
		for _, p := range []float64{0.5, 1} {
			if !math.IsNaN(st.Percentile(p)) {
				t.Errorf("conn %d Percentile(%g) = %v without sampling, want NaN", i, p, st.Percentile(p))
			}
		}
	}
	// Out-of-domain p is NaN even with samples present.
	res2, err := Run(net, Config{PacketSize: 0.05, Horizon: 10, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{-0.1, 0, 1.1} {
		if !math.IsNaN(res2.Stats[0].Percentile(p)) {
			t.Errorf("Percentile(%g) = %v, want NaN", p, res2.Stats[0].Percentile(p))
		}
	}
}
