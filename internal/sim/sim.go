// Package sim is a discrete-event packet-level simulator for the networks
// described by package topo. It exists as an executable oracle for the
// analytic delay bounds: simulated worst-case (greedy) sources drive the
// same topologies, and every observed end-to-end delay must stay below the
// bounds computed by any sound analyzer.
//
// Packets quantize the fluid model the analysis uses; with packet size L
// and per-hop capacity C, quantization adds at most about L/C of delay per
// hop, which validation tests account for.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"delaycalc/internal/sched"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Config controls a simulation run.
type Config struct {
	// PacketSize is the size of every simulated packet in bits. Smaller
	// packets approximate the fluid model more closely but cost time.
	PacketSize float64
	// Horizon is the simulated time span during which sources emit.
	// In-flight packets are always drained to completion.
	Horizon float64
	// Sources optionally overrides the traffic pattern per connection
	// (indexed like Network.Connections); nil entries and a nil map
	// default to GreedySource, the worst-case pattern.
	Sources map[int]Source
	// Adversary, when set, replaces the default greedy sources with
	// deterministically controlled adversarial ones (per-source phase
	// offsets and burst placements); explicit Sources entries still win.
	// The adversary plus the packet size fully determine the generated
	// traffic, making runs exactly replayable.
	Adversary *Adversary
	// KeepSamples retains every per-packet end-to-end delay so that
	// ConnStats.Percentile works; costs memory proportional to the
	// packet count.
	KeepSamples bool
}

// ConnStats aggregates per-connection delay observations.
type ConnStats struct {
	Packets  int
	MaxDelay float64
	MinDelay float64
	SumDelay float64
	// MaxPerHop records the worst queueing+transmission delay seen at
	// each hop of the connection's path.
	MaxPerHop []float64
	// Samples holds every end-to-end delay when Config.KeepSamples is
	// set, in delivery order.
	Samples []float64
}

// Mean returns the mean end-to-end delay.
func (s ConnStats) Mean() float64 {
	if s.Packets == 0 {
		return 0
	}
	return s.SumDelay / float64(s.Packets)
}

// Jitter returns the worst-case delay variation (max minus min delay),
// the quantity playout buffers must absorb.
func (s ConnStats) Jitter() float64 {
	if s.Packets == 0 {
		return 0
	}
	return s.MaxDelay - s.MinDelay
}

// Percentile returns the p-quantile (0 < p <= 1) of the recorded delay
// samples, or NaN when sampling was not enabled.
func (s ConnStats) Percentile(p float64) float64 {
	if len(s.Samples) == 0 || p <= 0 || p > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Result collects the outcome of a run.
type Result struct {
	Stats []ConnStats
	// Clock is the time the last packet left the network.
	Clock float64
	// Delivered is the total number of packets that traversed their full
	// path.
	Delivered int
	// MaxBacklog records, per server, the largest number of bits present
	// (queued plus in transmission) at any instant.
	MaxBacklog []float64
}

// event is a pending simulator action.
type event struct {
	time float64
	seq  uint64
	kind int // 0 = packet arrival at server, 1 = transmission complete
	srv  int
	pkt  *sched.Packet
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

const (
	evArrival = iota
	evComplete
)

// Run simulates the network under the configured sources and returns the
// observed delay statistics.
func Run(net *topo.Network, cfg Config) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.PacketSize <= 0 {
		return nil, fmt.Errorf("sim: packet size must be positive, got %g", cfg.PacketSize)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %g", cfg.Horizon)
	}

	queues := make([]sched.Queue, len(net.Servers))
	busyUntil := make([]float64, len(net.Servers))
	for i, s := range net.Servers {
		switch s.Discipline {
		case server.FIFO:
			queues[i] = sched.NewFIFO()
		case server.StaticPriority:
			queues[i] = sched.NewStaticPriority()
		case server.GuaranteedRate:
			queues[i] = sched.NewSCFQ()
		case server.EDF:
			queues[i] = sched.NewEDF()
		default:
			return nil, fmt.Errorf("sim: unsupported discipline %v at server %d", s.Discipline, i)
		}
	}

	res := &Result{
		Stats:      make([]ConnStats, len(net.Connections)),
		MaxBacklog: make([]float64, len(net.Servers)),
	}
	for i, c := range net.Connections {
		res.Stats[i].MaxPerHop = make([]float64, len(c.Path))
	}
	backlog := make([]float64, len(net.Servers))

	var h eventHeap
	var seq uint64
	push := func(t float64, kind, srv int, p *sched.Packet) {
		heap.Push(&h, &event{time: t, seq: seq, kind: kind, srv: srv, pkt: p})
		seq++
	}

	// Per-connection relative local deadline for EDF servers.
	needEDF := false
	for _, s := range net.Servers {
		if s.Discipline == server.EDF {
			needEDF = true
		}
	}
	localDeadline := make([]float64, len(net.Connections))
	if needEDF {
		for i, c := range net.Connections {
			if c.Deadline <= 0 {
				return nil, fmt.Errorf("sim: connection %d needs a positive deadline for EDF servers", i)
			}
			localDeadline[i] = c.Deadline / float64(len(c.Path))
		}
	}

	// Seed source emissions.
	for ci, c := range net.Connections {
		var src Source
		if cfg.Sources != nil {
			src = cfg.Sources[ci]
		}
		if src == nil && cfg.Adversary != nil {
			src = cfg.Adversary.Source(c, ci)
		}
		if src == nil {
			src = GreedySource{Sigma: c.Bucket.Sigma, Rho: c.Bucket.Rho, Access: c.AccessRate}
		}
		for _, t := range src.Times(cfg.PacketSize, cfg.Horizon) {
			p := &sched.Packet{
				Conn:          ci,
				Size:          cfg.PacketSize,
				Release:       t,
				Priority:      c.Priority,
				Weight:        c.Rate,
				LocalDeadline: localDeadline[ci],
			}
			push(t, evArrival, c.Path[0], p)
		}
	}

	hopEnter := make(map[*sched.Packet]float64)
	startService := func(s int, now float64) {
		if busyUntil[s] > now {
			return
		}
		p := queues[s].Pop(now)
		if p == nil {
			return
		}
		// The line is occupied for the transmission time only; the fixed
		// server latency is a pipeline delay that does not consume
		// capacity (it is added at delivery below).
		done := now + p.Size/net.Servers[s].Capacity
		busyUntil[s] = done
		push(done, evComplete, s, p)
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(*event)
		now := e.time
		if now > res.Clock {
			res.Clock = now
		}
		switch e.kind {
		case evArrival:
			hopEnter[e.pkt] = now
			backlog[e.srv] += e.pkt.Size
			if backlog[e.srv] > res.MaxBacklog[e.srv] {
				res.MaxBacklog[e.srv] = backlog[e.srv]
			}
			queues[e.srv].Push(e.pkt, now)
			startService(e.srv, now)
		case evComplete:
			p := e.pkt
			backlog[e.srv] -= p.Size
			leave := now + net.Servers[e.srv].Latency
			hopDelay := leave - hopEnter[p]
			st := &res.Stats[p.Conn]
			if hopDelay > st.MaxPerHop[p.Hop] {
				st.MaxPerHop[p.Hop] = hopDelay
			}
			delete(hopEnter, p)
			path := net.Connections[p.Conn].Path
			p.Hop++
			if p.Hop < len(path) {
				push(leave, evArrival, path[p.Hop], p)
			} else {
				d := leave - p.Release
				if st.Packets == 0 || d < st.MinDelay {
					st.MinDelay = d
				}
				st.Packets++
				st.SumDelay += d
				if cfg.KeepSamples {
					st.Samples = append(st.Samples, d)
				}
				if d > st.MaxDelay {
					st.MaxDelay = d
				}
				res.Delivered++
				if leave > res.Clock {
					res.Clock = leave
				}
			}
			// The line is now free; serve the next queued packet.
			startService(e.srv, now)
		}
	}
	return res, nil
}

// WorstCaseHorizon suggests a horizon long enough to contain the maximal
// busy period of every server under greedy sources, with headroom.
func WorstCaseHorizon(net *topo.Network) float64 {
	// A crude but safe bound: total burst divided by the smallest
	// capacity margin, times a safety factor.
	totalBurst := 0.0
	minMargin := math.Inf(1)
	for i, s := range net.Servers {
		rate := 0.0
		for _, c := range net.ConnectionsAt(i) {
			rate += net.Connections[c].Bucket.Rho
		}
		if m := s.Capacity - rate; m < minMargin {
			minMargin = m
		}
	}
	for _, c := range net.Connections {
		totalBurst += c.Bucket.Sigma
	}
	if minMargin <= 0 || math.IsInf(minMargin, 1) {
		return 100
	}
	h := 4 * totalBurst / minMargin
	if h < 50 {
		h = 50
	}
	return h
}
