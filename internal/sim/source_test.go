package sim

import (
	"math"
	"testing"
)

// assertConforming checks that the cumulative emissions never exceed the
// token-bucket envelope over any window.
func assertConforming(t *testing.T, times []float64, packetSize, sigma, rho float64) {
	t.Helper()
	for i := range times {
		for j := i; j < len(times); j++ {
			window := times[j] - times[i]
			bits := float64(j-i+1) * packetSize
			if bits > sigma+rho*window+packetSize+1e-9 {
				// One packet of slack: the analysis counts fluid bits, a
				// packet is counted entirely at its last bit.
				t.Fatalf("burst violation: %d packets (%g bits) in window %g (allowed %g)",
					j-i+1, bits, window, sigma+rho*window)
			}
		}
	}
}

func TestGreedySourcePacing(t *testing.T) {
	src := GreedySource{Sigma: 1, Rho: 0.25, Access: 1}
	times := src.Times(0.1, 50)
	if len(times) == 0 {
		t.Fatal("no packets")
	}
	// Early packets paced by the access line (0.1 apart), late packets by
	// the token rate (0.4 apart).
	if d := times[1] - times[0]; math.Abs(d-0.1) > 1e-9 {
		t.Errorf("early spacing %g, want 0.1", d)
	}
	last := len(times) - 1
	if d := times[last] - times[last-1]; math.Abs(d-0.4) > 1e-9 {
		t.Errorf("late spacing %g, want 0.4", d)
	}
	assertConforming(t, times, 0.1, 1, 0.25)
}

func TestGreedySourceUncappedBurst(t *testing.T) {
	src := GreedySource{Sigma: 1, Rho: 0.5}
	times := src.Times(0.25, 10)
	// The first sigma/L = 4 packets are released at t = 0.
	for i := 0; i < 4; i++ {
		if times[i] != 0 {
			t.Errorf("packet %d at %g, want 0", i, times[i])
		}
	}
	if times[4] == 0 {
		t.Error("packet 4 should wait for tokens")
	}
}

func TestGreedySourceZeroRate(t *testing.T) {
	src := GreedySource{Sigma: 1, Rho: 0}
	times := src.Times(0.5, 100)
	if len(times) != 2 {
		t.Errorf("rho=0: got %d packets, want exactly the burst (2)", len(times))
	}
}

func TestGreedySourceHorizon(t *testing.T) {
	src := GreedySource{Sigma: 1, Rho: 1, Access: 2}
	times := src.Times(0.1, 5)
	for _, x := range times {
		if x >= 5 {
			t.Errorf("emission %g beyond horizon", x)
		}
	}
}

func TestOnOffSourceConforms(t *testing.T) {
	src := OnOffSource{Sigma: 1, Rho: 0.25, Access: 1, On: 2, Off: 3}
	times := src.Times(0.1, 60)
	if len(times) == 0 {
		t.Fatal("no packets")
	}
	assertConforming(t, times, 0.1, 1, 0.25)
	// Emissions must avoid off phases.
	for _, x := range times {
		pos := math.Mod(x, 5)
		if pos > 2+1e-9 {
			t.Errorf("emission at %g falls into the off phase (pos %g)", x, pos)
		}
	}
}

func TestOnOffSourceEmitsLessThanGreedy(t *testing.T) {
	g := GreedySource{Sigma: 1, Rho: 0.25, Access: 1}
	o := OnOffSource{Sigma: 1, Rho: 0.25, Access: 1, On: 1, Off: 4}
	if len(o.Times(0.1, 100)) >= len(g.Times(0.1, 100)) {
		t.Error("on-off source should emit fewer packets than greedy")
	}
}

func TestCBRSource(t *testing.T) {
	src := CBRSource{Rate: 0.5, Offset: 1}
	times := src.Times(0.25, 4)
	want := []float64{1, 1.5, 2, 2.5, 3, 3.5}
	if len(times) != len(want) {
		t.Fatalf("got %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", times, want)
		}
	}
	if got := (CBRSource{}).Times(1, 10); got != nil {
		t.Error("zero-rate CBR should emit nothing")
	}
}

func TestSourcesMonotone(t *testing.T) {
	srcs := []Source{
		GreedySource{Sigma: 2, Rho: 0.5, Access: 1},
		OnOffSource{Sigma: 2, Rho: 0.5, Access: 1, On: 3, Off: 2, Phase: 1},
		CBRSource{Rate: 0.3},
	}
	for i, s := range srcs {
		times := s.Times(0.2, 40)
		for j := 1; j < len(times); j++ {
			if times[j] < times[j-1]-1e-12 {
				t.Errorf("source %d: emissions not monotone at %d", i, j)
			}
		}
	}
}
