package sim

import (
	"math"

	"delaycalc/internal/traffic"
)

// TraceSource replays a recorded frame trace periodically: each frame's
// bits arrive at the source at its frame instant and are emitted through
// the access line at the configured rate (unlimited when Access is 0).
// Combined with traffic.Trace.Envelope or FitTokenBucket, it exercises the
// analyzers on realistic VBR video workloads.
type TraceSource struct {
	Trace  traffic.Trace
	Access float64
}

// Times implements Source.
func (ts TraceSource) Times(packetSize, horizon float64) []float64 {
	if packetSize <= 0 {
		panic("sim: non-positive packet size")
	}
	if err := ts.Trace.Validate(); err != nil {
		panic("sim: " + err.Error())
	}
	a := ts.Access
	if a <= 0 {
		a = math.Inf(1)
	}
	var (
		times []float64
		buf   float64 // bits queued at the source
		frac  float64 // bits already transmitted toward the next packet
		cur   float64 // transmission clock
	)
	// drainUntil transmits queued bits at the access rate, emitting a
	// packet whenever packetSize bits have left, stopping at the limit.
	drainUntil := func(limit float64) {
		if math.IsInf(a, 1) {
			for buf+frac >= packetSize {
				take := packetSize - frac
				buf -= take
				frac = 0
				if cur < limit || cur < horizon {
					times = append(times, cur)
				}
			}
			return
		}
		for buf > 0 && cur < limit {
			need := packetSize - frac
			if buf < need {
				dt := buf / a
				if cur+dt > limit {
					sent := (limit - cur) * a
					buf -= sent
					frac += sent
					cur = limit
					return
				}
				cur += dt
				frac += buf
				buf = 0
				return
			}
			dt := need / a
			if cur+dt > limit {
				sent := (limit - cur) * a
				buf -= sent
				frac += sent
				cur = limit
				return
			}
			cur += dt
			buf -= need
			frac = 0
			times = append(times, cur)
		}
	}

	n := len(ts.Trace.Frames)
	for frame := 0; ; frame++ {
		ft := float64(frame) * ts.Trace.Interval
		if ft >= horizon {
			break
		}
		drainUntil(ft)
		if cur < ft {
			cur = ft
		}
		buf += ts.Trace.Frames[frame%n]
	}
	drainUntil(horizon)
	// Clip emissions beyond the horizon (the infinite-access branch can
	// stamp them exactly at it).
	for len(times) > 0 && times[len(times)-1] >= horizon {
		times = times[:len(times)-1]
	}
	return times
}
