package sim

import (
	"fmt"
	"math"
)

// Source produces the emission times (entry into the first server) of a
// connection's packets up to a horizon. All sources respect the
// connection's token bucket so that simulated traffic conforms to the
// envelope the analyzers assume.
type Source interface {
	// Times returns the strictly non-decreasing emission instants of
	// consecutive packets of the given size within [0, horizon).
	Times(packetSize, horizon float64) []float64
}

// GreedySource emits as fast as the token bucket and access line allow,
// starting with a full bucket at time zero — the adversarial pattern the
// worst-case analysis is built around. Its fluid cumulative emission is
// exactly min(access*t, sigma + rho*t).
type GreedySource struct {
	Sigma, Rho float64
	Access     float64 // access line rate; 0 means unlimited
}

// Times implements Source by inverting the fluid emission function at each
// packet boundary.
func (g GreedySource) Times(packetSize, horizon float64) []float64 {
	if packetSize <= 0 {
		panic("sim: non-positive packet size")
	}
	var times []float64
	for k := 1; ; k++ {
		bits := float64(k) * packetSize
		t := g.inverse(bits)
		if math.IsInf(t, 1) || t >= horizon {
			break
		}
		times = append(times, t)
	}
	return times
}

// inverse returns the first time the fluid emission reaches the given
// number of bits.
func (g GreedySource) inverse(bits float64) float64 {
	// Emission E(t) = min(a*t, sigma + rho*t) with a = access (or +inf).
	if g.Access <= 0 {
		// Instantaneous burst of sigma at t=0, then rate rho.
		if bits <= g.Sigma {
			return 0
		}
		if g.Rho <= 0 {
			return math.Inf(1)
		}
		return (bits - g.Sigma) / g.Rho
	}
	tLine := bits / g.Access
	if g.Access*tLine <= g.Sigma+g.Rho*tLine {
		return tLine
	}
	if g.Rho <= 0 {
		return math.Inf(1)
	}
	return (bits - g.Sigma) / g.Rho
}

// OnOffSource alternates activity bursts with silences while remaining
// token-bucket compliant: during an on-period it emits as fast as the
// bucket and access line allow; during an off-period the bucket refills.
// It models bursty but conforming traffic, less adversarial than greedy.
type OnOffSource struct {
	Sigma, Rho float64
	Access     float64
	On, Off    float64 // durations of the on- and off-phases
	Phase      float64 // initial offset into the cycle
}

// Times implements Source with a forward token-bucket simulation.
func (o OnOffSource) Times(packetSize, horizon float64) []float64 {
	if packetSize <= 0 {
		panic("sim: non-positive packet size")
	}
	if o.On <= 0 || o.Off < 0 {
		panic(fmt.Sprintf("sim: invalid on/off durations %g/%g", o.On, o.Off))
	}
	access := o.Access
	if access <= 0 {
		access = math.Inf(1)
	}
	var times []float64
	tokens := o.Sigma
	t := 0.0
	cycle := o.On + o.Off
	phase := math.Mod(o.Phase, cycle)
	for t < horizon {
		pos := math.Mod(t+phase, cycle)
		if pos >= o.On {
			// Off phase: jump to the next on-phase start, refilling.
			wait := cycle - pos
			tokens = math.Min(o.Sigma, tokens+o.Rho*wait)
			t += wait
			continue
		}
		// On phase: wait (if needed) for enough tokens, bounded by the
		// access line spacing.
		if tokens < packetSize {
			need := (packetSize - tokens) / o.Rho
			endOn := t + (o.On - pos)
			if t+need >= endOn {
				// Tokens will not suffice within this on-phase burst;
				// refill through the off phase.
				tokens = math.Min(o.Sigma, tokens+o.Rho*(endOn-t))
				t = endOn
				continue
			}
			tokens += o.Rho * need
			t += need
		}
		tokens -= packetSize
		times = append(times, t)
		// Access line pacing; tokens keep accruing while transmitting.
		pace := packetSize / access
		tokens = math.Min(o.Sigma, tokens+o.Rho*pace)
		t += pace
	}
	return times
}

// CBRSource emits at a constant rate (which must not exceed the bucket
// rate for compliance), starting at a configurable offset.
type CBRSource struct {
	Rate   float64
	Offset float64
}

// Times implements Source.
func (c CBRSource) Times(packetSize, horizon float64) []float64 {
	if c.Rate <= 0 {
		return nil
	}
	var times []float64
	spacing := packetSize / c.Rate
	for t := c.Offset; t < horizon; t += spacing {
		times = append(times, t)
	}
	return times
}
