package sim

import (
	"math"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

func videoTrace() traffic.Trace {
	// 25 fps GOP stream, unit-free sizes.
	return traffic.SyntheticGOP(3, 6, 8, 3, 1, 0.04)
}

func TestTraceSourceBitConservation(t *testing.T) {
	tr := videoTrace()
	const L = 0.5
	// The source replays the trace periodically; a horizon of exactly one
	// period covers each frame once (the fast access line drains every
	// frame before the next).
	horizon := float64(len(tr.Frames)) * tr.Interval
	times := (TraceSource{Trace: tr, Access: 1000}).Times(L, horizon)
	emitted := float64(len(times)) * L
	if math.Abs(emitted-tr.TotalBits()) > L+1e-9 {
		t.Errorf("emitted %g bits of %g", emitted, tr.TotalBits())
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("emissions not monotone")
		}
	}
}

func TestTraceSourceConformsToEnvelope(t *testing.T) {
	tr := videoTrace()
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.25
	times := (TraceSource{Trace: tr}).Times(L, 3*float64(len(tr.Frames))*tr.Interval)
	if len(times) == 0 {
		t.Fatal("no packets")
	}
	// Every window of emissions must stay below the envelope. A packet is
	// counted entirely at its emission, so allow one packet of slack.
	for i := range times {
		for j := i; j < len(times); j++ {
			window := times[j] - times[i]
			bits := float64(j-i+1) * L
			if bits > env.EvalRight(window)+L+1e-9 {
				t.Fatalf("%d packets (%g bits) in window %g exceed envelope %g",
					j-i+1, bits, window, env.EvalRight(window))
			}
		}
	}
}

func TestTraceSourceAccessPacing(t *testing.T) {
	tr := traffic.Trace{Frames: []float64{10}, Interval: 1}
	const L = 1
	times := (TraceSource{Trace: tr, Access: 5}).Times(L, 0.99)
	// 10 bits drain at rate 5: packets complete at 0.2, 0.4, ...
	want := []float64{0.2, 0.4, 0.6, 0.8}
	if len(times) < len(want) {
		t.Fatalf("times = %v", times)
	}
	for i, w := range want {
		if math.Abs(times[i]-w) > 1e-9 {
			t.Fatalf("times = %v, want prefix %v", times, want)
		}
	}
}

func TestTraceSourceUnlimitedAccess(t *testing.T) {
	tr := traffic.Trace{Frames: []float64{4, 2}, Interval: 1}
	times := (TraceSource{Trace: tr}).Times(1, 2)
	// Frame 0: 4 packets at t=0; frame 1: 2 packets at t=1.
	if len(times) != 6 {
		t.Fatalf("emitted %d packets: %v", len(times), times)
	}
	for i := 0; i < 4; i++ {
		if times[i] != 0 {
			t.Fatalf("times = %v", times)
		}
	}
	for i := 4; i < 6; i++ {
		if times[i] != 1 {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestVBRTraceBoundsHoldInSimulation(t *testing.T) {
	// A video connection modeled by its empirical envelope crossing a
	// 2-server tandem with token-bucket cross traffic: the analytic bounds
	// must dominate the replayed trace.
	tr := videoTrace()
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	meanRate := tr.MeanRate() // ~104 bits/s
	net := &topo.Network{
		Servers: []server.Server{
			{Capacity: 1000, Discipline: server.FIFO},
			{Capacity: 1000, Discipline: server.FIFO},
		},
		Connections: []topo.Connection{
			{
				Name:     "video",
				Bucket:   traffic.TokenBucket{Sigma: tr.PeakFrame(), Rho: meanRate},
				Path:     []int{0, 1},
				Envelope: &env,
			},
			{
				Name: "cross0", Bucket: traffic.TokenBucket{Sigma: 50, Rho: 300},
				AccessRate: 1000, Path: []int{0},
			},
			{
				Name: "cross1", Bucket: traffic.TokenBucket{Sigma: 50, Rho: 300},
				AccessRate: 1000, Path: []int{1},
			},
		},
	}
	const L = 0.5
	sres, err := Run(net, Config{
		PacketSize: L,
		Horizon:    3 * float64(len(tr.Frames)) * tr.Interval,
		Sources:    map[int]Source{0: TraceSource{Trace: tr}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []analysis.Analyzer{analysis.Decomposed{}, analysis.Integrated{}} {
		res, err := a.Analyze(net)
		if err != nil {
			t.Fatal(err)
		}
		for c := range net.Connections {
			slack := packetSlack(L, net, c)
			if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
				t.Errorf("%s conn %d: simulated %g exceeds bound %g",
					a.Name(), c, sres.Stats[c].MaxDelay, res.Bound(c))
			}
		}
	}
}

func TestVBREnvelopeTighterThanBucketBound(t *testing.T) {
	// The multi-segment empirical envelope should buy a tighter delay
	// bound than the single token bucket fitted at the same rate.
	tr := videoTrace()
	env, err := tr.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	rate := tr.MeanRate() * 1.5
	tb, err := tr.FitTokenBucket(rate)
	if err != nil {
		t.Fatal(err)
	}
	build := func(custom bool) *topo.Network {
		conn := topo.Connection{
			Name:   "video",
			Bucket: traffic.TokenBucket{Sigma: tb.Sigma, Rho: tb.Rho},
			Path:   []int{0},
		}
		if custom {
			// Rebase the envelope's tail to the fitted rate so the rates
			// agree; taking the min with the bucket keeps it valid.
			e := env
			conn.Envelope = &e
			conn.Bucket = traffic.TokenBucket{Sigma: tb.Sigma, Rho: tr.MeanRate()}
		}
		return &topo.Network{
			Servers: []server.Server{{Capacity: 200, Discipline: server.FIFO}},
			Connections: []topo.Connection{conn,
				{Name: "x", Bucket: traffic.TokenBucket{Sigma: 20, Rho: 60}, AccessRate: 200, Path: []int{0}},
			},
		}
	}
	rEnv, err := (analysis.Decomposed{}).Analyze(build(true))
	if err != nil {
		t.Fatal(err)
	}
	rTB, err := (analysis.Decomposed{}).Analyze(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if rEnv.Bound(0) >= rTB.Bound(0) {
		t.Errorf("envelope bound %g not tighter than bucket bound %g", rEnv.Bound(0), rTB.Bound(0))
	}
}
