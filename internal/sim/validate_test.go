package sim

import (
	"fmt"
	"math"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// packetSlack is the tolerance to allow on top of a fluid bound for a
// packetized simulation; see QuantizationSlack.
func packetSlack(packetSize float64, net *topo.Network, conn int) float64 {
	return QuantizationSlack(net, conn, packetSize)
}

// assertBoundsHold simulates the network with greedy sources and checks
// every connection's observed delay against the analyzer's bound.
func assertBoundsHold(t *testing.T, net *topo.Network, a analysis.Analyzer, label string) {
	t.Helper()
	res, err := a.Analyze(net)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	const L = 0.02
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for c := range net.Connections {
		slack := packetSlack(L, net, c)
		if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
			t.Errorf("%s conn %d: simulated %g exceeds bound %g (+slack %g)",
				label, c, sres.Stats[c].MaxDelay, res.Bound(c), slack)
		}
	}
}

func TestBoundsHoldOnPaperTandem(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		for _, u := range []float64{0.3, 0.6, 0.9} {
			net, err := topo.PaperTandem(n, u)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("n=%d U=%g", n, u)
			assertBoundsHold(t, net, analysis.Decomposed{}, label+" decomposed")
			assertBoundsHold(t, net, analysis.Integrated{}, label+" integrated")
			assertBoundsHold(t, net, analysis.ServiceCurve{}, label+" servicecurve")
		}
	}
}

func TestBoundsHoldOnParkingLot(t *testing.T) {
	net, err := topo.ParkingLot(4, 1, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBoundsHold(t, net, analysis.Decomposed{}, "parkinglot decomposed")
	assertBoundsHold(t, net, analysis.Integrated{}, "parkinglot integrated")
}

func TestBoundsHoldOnSinkTree(t *testing.T) {
	net, err := topo.SinkTree(3, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBoundsHold(t, net, analysis.Decomposed{}, "tree decomposed")
	assertBoundsHold(t, net, analysis.Integrated{}, "tree integrated")
}

func TestBoundsHoldOnRandomFeedforward(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		net, err := topo.RandomFeedforward(5, 8, 0.7, seed)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("random seed %d", seed)
		assertBoundsHold(t, net, analysis.Decomposed{}, label+" decomposed")
		assertBoundsHold(t, net, analysis.Integrated{}, label+" integrated")
	}
}

func TestBoundsHoldUnderNonGreedySources(t *testing.T) {
	// Bounds are worst-case over all conforming sources; on-off and CBR
	// traffic must stay below them too.
	net, err := topo.PaperTandem(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (analysis.Integrated{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.02
	sources := map[int]Source{}
	for i, c := range net.Connections {
		if i%2 == 0 {
			sources[i] = OnOffSource{Sigma: c.Bucket.Sigma, Rho: c.Bucket.Rho, Access: c.AccessRate, On: 3, Off: 2, Phase: float64(i)}
		} else {
			sources[i] = CBRSource{Rate: c.Bucket.Rho, Offset: 0.1 * float64(i)}
		}
	}
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net), Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	for c := range net.Connections {
		if sres.Stats[c].MaxDelay > res.Bound(c)+packetSlack(L, net, c) {
			t.Errorf("conn %d: non-greedy simulated %g exceeds bound %g",
				c, sres.Stats[c].MaxDelay, res.Bound(c))
		}
	}
}

func TestSingleFIFOBoundIsTight(t *testing.T) {
	// At one server the FIFO bound is exact in the fluid limit: greedy
	// simulation should come within a few packet times of it.
	net, err := topo.PaperTandem(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (analysis.Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.005
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	gap := res.Bound(0) - sres.Stats[0].MaxDelay
	if gap < -packetSlack(L, net, 0) || gap > 0.05 {
		t.Errorf("single-server bound %g vs simulated %g: gap %g (bound should be tight)",
			res.Bound(0), sres.Stats[0].MaxDelay, gap)
	}
}

func TestStaticPriorityBoundsHold(t *testing.T) {
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 3, Sigma: 1, Rho: 0.15, Capacity: 1,
		Discipline: server.StaticPriority, Priority0: 0, PriorityCross: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (analysis.Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.02
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	for c, conn := range net.Connections {
		// The fluid SP analysis is preemptive; the packet simulator is
		// non-preemptive, so a high-priority packet can additionally wait
		// for one lower-priority packet in service per hop.
		slack := packetSlack(L, net, c) + float64(len(conn.Path))*L
		if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
			t.Errorf("SP conn %d: simulated %g exceeds bound %g (+%g)",
				c, sres.Stats[c].MaxDelay, res.Bound(c), slack)
		}
	}
}

func TestGuaranteedRateBoundsHold(t *testing.T) {
	net := &topo.Network{
		Servers: []server.Server{
			{Capacity: 1, Discipline: server.GuaranteedRate, Latency: 0.1},
			{Capacity: 1, Discipline: server.GuaranteedRate, Latency: 0.1},
		},
		Connections: []topo.Connection{
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.3}, AccessRate: 1, Path: []int{0, 1}, Rate: 0.5},
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.3}, AccessRate: 1, Path: []int{0}, Rate: 0.5},
			{Bucket: traffic.TokenBucket{Sigma: 1, Rho: 0.3}, AccessRate: 1, Path: []int{1}, Rate: 0.5},
		},
	}
	res, err := (analysis.GuaranteedRateNetworkCurve{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.01
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	for c, conn := range net.Connections {
		// SCFQ lags fluid GPS by up to one packet per flow per hop plus
		// transmission quantization.
		slack := packetSlack(L, net, c) + float64(len(conn.Path))*L/conn.Rate
		if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
			t.Errorf("GR conn %d: simulated %g exceeds bound %g (+%g)",
				c, sres.Stats[c].MaxDelay, res.Bound(c), slack)
		}
	}
}

func TestRunValidation(t *testing.T) {
	net, _ := topo.PaperTandem(2, 0.5)
	if _, err := Run(net, Config{PacketSize: 0, Horizon: 10}); err == nil {
		t.Error("expected packet-size error")
	}
	if _, err := Run(net, Config{PacketSize: 0.1, Horizon: 0}); err == nil {
		t.Error("expected horizon error")
	}
}

func TestRunConservation(t *testing.T) {
	// Every emitted packet must eventually be delivered.
	net, _ := topo.PaperTandem(3, 0.8)
	const L = 0.05
	emitted := 0
	for _, c := range net.Connections {
		src := GreedySource{Sigma: c.Bucket.Sigma, Rho: c.Bucket.Rho, Access: c.AccessRate}
		emitted += len(src.Times(L, 40))
	}
	res, err := Run(net, Config{PacketSize: L, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != emitted {
		t.Errorf("delivered %d of %d packets", res.Delivered, emitted)
	}
	for c := range net.Connections {
		if res.Stats[c].Packets == 0 {
			t.Errorf("connection %d delivered nothing", c)
		}
		if res.Stats[c].Mean() > res.Stats[c].MaxDelay {
			t.Errorf("connection %d: mean %g above max %g", c, res.Stats[c].Mean(), res.Stats[c].MaxDelay)
		}
	}
	if res.Clock <= 0 {
		t.Error("clock did not advance")
	}
}

func TestWorstCaseHorizonReasonable(t *testing.T) {
	net, _ := topo.PaperTandem(4, 0.9)
	h := WorstCaseHorizon(net)
	if h < 50 || math.IsInf(h, 1) {
		t.Errorf("horizon %g out of range", h)
	}
}

func TestEDFBoundsHold(t *testing.T) {
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 3, Sigma: 1, Rho: 0.15, Capacity: 1, Discipline: server.EDF,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Connection 0 gets a tight deadline, cross traffic a loose one.
	for i := range net.Connections {
		if i == 0 {
			net.Connections[i].Deadline = 6
		} else {
			net.Connections[i].Deadline = 30
		}
	}
	res, err := (analysis.Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.02
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	for c, conn := range net.Connections {
		// Non-preemptive EDF blocks an urgent packet for at most one
		// packet in service per hop, like static priority.
		slack := packetSlack(L, net, c) + float64(len(conn.Path))*L
		if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
			t.Errorf("EDF conn %d: simulated %g exceeds bound %g (+%g)",
				c, sres.Stats[c].MaxDelay, res.Bound(c), slack)
		}
	}
	// The urgent connection must actually benefit from its deadline in
	// execution relative to the loose cross traffic at equal hop counts.
	if res.Bound(0) <= 0 {
		t.Error("urgent bound not positive")
	}
}

func TestEDFSimRequiresDeadline(t *testing.T) {
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 2, Sigma: 1, Rho: 0.1, Capacity: 1, Discipline: server.EDF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(net, Config{PacketSize: 0.1, Horizon: 10}); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestBacklogBoundsHold(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, u := range []float64{0.5, 0.9} {
			net, err := topo.PaperTandem(n, u)
			if err != nil {
				t.Fatal(err)
			}
			const L = 0.02
			sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []analysis.Analyzer{analysis.Decomposed{}, analysis.Integrated{}, analysis.ServiceCurve{}} {
				res, err := a.Analyze(net)
				if err != nil {
					t.Fatal(err)
				}
				for s := range net.Servers {
					// A packetized arrival can momentarily exceed the fluid
					// level by one packet per contributing connection.
					slack := L * float64(len(net.ConnectionsAt(s)))
					if sres.MaxBacklog[s] > res.Backlog(s)+slack {
						t.Errorf("%s n=%d U=%g server %d: simulated backlog %g exceeds bound %g",
							a.Name(), n, u, s, sres.MaxBacklog[s], res.Backlog(s))
					}
					if res.Backlog(s) <= 0 {
						t.Errorf("%s: server %d backlog bound %g not positive", a.Name(), s, res.Backlog(s))
					}
				}
			}
		}
	}
}

func TestBacklogSingleServerTight(t *testing.T) {
	// One server, three fresh capped flows: bound (k-1)*C*sigma/(C-rho)
	// is reached by the greedy scenario in the fluid limit.
	net, err := topo.PaperTandem(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (analysis.Decomposed{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 1 / (1 - 0.2) // (k-1)*sigma*C/(C-rho), k=3, rho=U/4=0.2
	if math.Abs(res.Backlog(0)-want) > 1e-9 {
		t.Errorf("backlog bound %g, want %g", res.Backlog(0), want)
	}
	const L = 0.005
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.Backlog(0) - sres.MaxBacklog[0]; gap < -0.05 || gap > 0.05 {
		t.Errorf("single-server backlog bound %g vs simulated %g: not tight", res.Backlog(0), sres.MaxBacklog[0])
	}
}

func TestStatsJitterAndPercentiles(t *testing.T) {
	net, _ := topo.PaperTandem(2, 0.8)
	res, err := Run(net, Config{PacketSize: 0.05, Horizon: 40, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if st.MinDelay <= 0 || st.MinDelay > st.MaxDelay {
		t.Errorf("min delay %g out of range (max %g)", st.MinDelay, st.MaxDelay)
	}
	if st.Jitter() != st.MaxDelay-st.MinDelay {
		t.Errorf("jitter %g inconsistent", st.Jitter())
	}
	if len(st.Samples) != st.Packets {
		t.Fatalf("%d samples for %d packets", len(st.Samples), st.Packets)
	}
	p50, p99, p100 := st.Percentile(0.5), st.Percentile(0.99), st.Percentile(1)
	if !(st.MinDelay <= p50 && p50 <= p99 && p99 <= p100) {
		t.Errorf("percentiles not ordered: %g %g %g", p50, p99, p100)
	}
	if math.Abs(p100-st.MaxDelay) > 1e-12 {
		t.Errorf("p100 %g != max %g", p100, st.MaxDelay)
	}
	// The minimum delay is at least the pure transmission time of the path.
	floor := 0.0
	for range net.Connections[0].Path {
		floor += 0.05 / 1
	}
	if st.MinDelay < floor-1e-9 {
		t.Errorf("min delay %g below transmission floor %g", st.MinDelay, floor)
	}
	// Without sampling, percentiles are undefined.
	res2, _ := Run(net, Config{PacketSize: 0.05, Horizon: 10})
	if !math.IsNaN(res2.Stats[0].Percentile(0.5)) {
		t.Error("percentile should be NaN without samples")
	}
}

func TestIntegratedSPBoundsHold(t *testing.T) {
	// The integrated static-priority analysis (the paper's announced
	// extension) must dominate the non-preemptive SP simulator.
	net, err := topo.Tandem(topo.TandemSpec{
		Switches: 4, Sigma: 1, Rho: 0.2, Capacity: 1,
		Discipline: server.StaticPriority, Priority0: 1, PriorityCross: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (analysis.IntegratedSP{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.02
	sres, err := Run(net, Config{PacketSize: L, Horizon: WorstCaseHorizon(net)})
	if err != nil {
		t.Fatal(err)
	}
	for c, conn := range net.Connections {
		slack := packetSlack(L, net, c) + float64(len(conn.Path))*L
		if sres.Stats[c].MaxDelay > res.Bound(c)+slack {
			t.Errorf("IntegratedSP conn %d: simulated %g exceeds bound %g (+%g)",
				c, sres.Stats[c].MaxDelay, res.Bound(c), slack)
		}
	}
}
