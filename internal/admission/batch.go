// Batch pipelining: a whole mixed admit/release envelope evaluated against
// one working baseline and committed as a single snapshot.
//
// ApplyBatch replays every operation of an envelope the way the sequential
// per-op path would — the same prechecks, the same affected-set scoping,
// the same unit-trace extensions and shrinks against the same analyzer —
// but accumulates the mutations in a private working state and installs
// them with ONE version-checked snapshot swap at the end. A 50-op batch
// therefore pays one snapshot copy and one commit instead of 50, and
// concurrent traffic can never observe (or interleave with) a half-applied
// envelope: readers see the set either entirely before or entirely after
// it. Decisions are bit-identical to issuing the operations one by one
// against an otherwise idle engine; the differential tests in
// batch_test.go pin that equivalence over random networks and the churn
// corpus.
package admission

import (
	"context"
	"fmt"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// OpKind selects what a batch operation does.
type OpKind uint8

const (
	// OpAdmit tests Op.Candidate and, when it passes, adds it to the set.
	OpAdmit OpKind = iota + 1
	// OpRelease removes the admitted connection named Op.Name.
	OpRelease
)

// Op is one operation of a batch envelope.
type Op struct {
	Kind      OpKind
	Candidate topo.Connection // OpAdmit only
	Name      string          // OpRelease only
}

// OpResult is the per-operation outcome of ApplyBatch, mirroring what the
// sequential path would have returned for the same operation: admit ops
// carry the Decision (and Err for invalid candidates), release ops carry
// Released plus the ReleaseInfo report.
type OpResult struct {
	// Decision is the admission decision (OpAdmit only).
	Decision Decision
	// Err is the per-operation error an invalid candidate would have
	// produced sequentially; it never aborts the rest of the envelope.
	Err error
	// Released reports whether an OpRelease found (and removed) its name.
	Released bool
	// Release describes how the release was absorbed (OpRelease only).
	Release ReleaseInfo
}

// BatchResult is the outcome of one envelope.
type BatchResult struct {
	// Results holds one entry per operation, in request order.
	Results []OpResult
	// Commits is the number of snapshot commits the envelope performed:
	// 0 when no operation mutated the set, otherwise exactly one per shard
	// touched (1 for a plain Engine).
	Commits int
	// ShardsTouched is the number of engine shards that committed; always
	// <= Commits-wise equal for shard-local envelopes (a plain Engine
	// reports 1 when the envelope mutated, 0 otherwise).
	ShardsTouched int
}

// batchState is the working state one envelope evaluation accumulates: the
// would-be admitted set and the baseline as the sequential path would have
// left them after the operations applied so far.
type batchState struct {
	admitted []topo.Connection
	base     *analysis.Baseline
	// mutated flips on the first successful admit or release; an envelope
	// that never mutates commits nothing.
	mutated bool
	// buildFailed mirrors the sequential snapshot's sticky baseErr: once a
	// lazy baseline build fails, later operations against the *same*
	// would-be snapshot go straight to the full path. Any mutation starts a
	// fresh would-be snapshot, so the flag resets.
	buildFailed bool
	// compacted records that some release dropped the baseline, so a warm
	// rebuild should be scheduled after the commit (matching the sequential
	// compaction path) unless a later operation promoted a fresh one.
	compacted bool
}

// validateOps rejects malformed envelopes before anything is evaluated.
func validateOps(ops []Op) error {
	for i, op := range ops {
		switch op.Kind {
		case OpAdmit, OpRelease:
		default:
			return fmt.Errorf("admission: batch operation %d has unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// ApplyBatch evaluates a mixed admit/release envelope against the current
// snapshot and commits all its mutations as one new snapshot version.
//
// Every operation sees the set as left by its predecessors in the envelope
// (greedy semantics, like the sequential path), decisions and release
// reports are bit-identical to issuing the operations one by one, and the
// engine's version advances by at most 1. A concurrent commit between the
// snapshot read and the batch commit retries the whole envelope, exactly
// like Admit's optimistic loop. A cancellation (check IsCanceled) aborts
// the envelope with nothing committed.
func (e *Engine) ApplyBatch(ctx context.Context, ops []Op) (*BatchResult, error) {
	if err := validateOps(ops); err != nil {
		return nil, err
	}
	e.batchEnvs.Add(1)
	e.batchOps.Add(uint64(len(ops)))
	for {
		snap := e.Snapshot()
		br, st, err := e.evalBatch(ctx, snap, ops)
		if err != nil {
			return nil, err
		}
		if !st.mutated {
			return br, nil
		}
		if e.commitBatch(snap, st) {
			br.Commits = 1
			br.ShardsTouched = 1
			if st.compacted && st.base == nil && e.inc != nil && e.prewarm {
				e.scheduleWarm()
			}
			return br, nil
		}
		e.conflicts.Add(1)
	}
}

// evalBatch runs every operation against a private working copy of the
// snapshot's state, never mutating the engine. The returned batchState is
// what commitBatch installs.
func (e *Engine) evalBatch(ctx context.Context, snap *Snapshot, ops []Op) (*BatchResult, *batchState, error) {
	st := &batchState{
		// One copy per envelope (not per op): appends and removals below
		// must never write into the snapshot's backing array.
		admitted: append([]topo.Connection(nil), snap.admitted...),
		base:     snap.cachedBaseline(),
	}
	br := &BatchResult{Results: make([]OpResult, len(ops))}
	for i, op := range ops {
		switch op.Kind {
		case OpAdmit:
			d, err := e.batchAdmit(ctx, snap, st, op.Candidate)
			if err != nil && IsCanceled(err) {
				return nil, nil, err
			}
			br.Results[i] = OpResult{Decision: d, Err: err}
		case OpRelease:
			res, err := e.batchRelease(ctx, st, op.Name)
			if err != nil {
				return nil, nil, err
			}
			br.Results[i] = res
		}
	}
	return br, st, nil
}

// ensureBaseline returns the working baseline for an incremental admit,
// building one lazily the way the sequential path would: before the first
// mutation it joins the snapshot's own lazy build (so the analysis is
// shared with concurrent tests), after a mutation it builds privately over
// the working set. Build failures stick until the next mutation.
func (st *batchState) ensureBaseline(e *Engine, snap *Snapshot) (*analysis.Baseline, error) {
	if st.base != nil {
		return st.base, nil
	}
	if st.buildFailed {
		return nil, fmt.Errorf("admission: baseline build failed")
	}
	var (
		base *analysis.Baseline
		err  error
	)
	if !st.mutated {
		base, err = snap.baseline()
	} else {
		net := &topo.Network{
			Servers:     e.servers,
			Connections: append([]topo.Connection(nil), st.admitted...),
		}
		base, err = e.inc.NewBaseline(net)
		if err == nil {
			e.epoch.Add(1)
		}
	}
	if err != nil {
		st.buildFailed = true
		return nil, err
	}
	st.base = base
	return base, nil
}

// batchAdmit mirrors Snapshot.test plus the commit's working-state effects
// against st instead of the engine.
func (e *Engine) batchAdmit(ctx context.Context, snap *Snapshot, st *batchState, cand topo.Connection) (Decision, error) {
	if cand.Deadline <= 0 {
		return Decision{Code: CodeInvalidSpec, Reason: "candidate has no deadline"},
			fmt.Errorf("admission: candidate %q has no deadline", cand.Name)
	}
	trial := &topo.Network{Servers: e.servers}
	trial.Connections = append(trial.Connections, st.admitted...)
	trial.Connections = append(trial.Connections, cand)
	// st.base, when present, is the baseline over exactly st.admitted, so
	// its checker validates the candidate in O(candidate); a nil working
	// baseline degrades to the identical full validation.
	if err := st.base.ValidateExtend(trial); err != nil {
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	if !trial.Stable() {
		return Decision{Code: CodeUnstable, Reason: "network would be unstable"}, nil
	}
	affected, _ := AffectedSet(len(e.servers), st.admitted, cand)
	e.observeAffected(len(affected))
	if e.inc != nil {
		if base, err := st.ensureBaseline(e, snap); err == nil {
			ext, err := base.ExtendContext(ctx, cand)
			if err == nil {
				e.incTests.Add(1)
				d := evaluate(trial, ext.Result())
				if d.Admitted {
					st.admitted = append(st.admitted, cand)
					st.base = ext.Promote()
					st.mutated = true
					st.buildFailed = false
				}
				return d, nil
			}
			if IsCanceled(err) {
				return Decision{}, err
			}
		}
		// Baseline or extension failure: fall through to the full path,
		// which reproduces the sequential fallback exactly.
	}
	e.fullTests.Add(1)
	res, err := analysis.AnalyzeWithContext(ctx, e.analyzer, trial)
	if err != nil {
		if IsCanceled(err) {
			return Decision{}, err
		}
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	d := evaluate(trial, res)
	if d.Admitted {
		// A full-path admit commits without a promoted baseline
		// sequentially; the working state mirrors that (the next
		// incremental admit rebuilds one over the new set).
		st.admitted = append(st.admitted, cand)
		st.base = nil
		st.mutated = true
		st.buildFailed = false
	}
	return d, nil
}

// batchRelease mirrors Engine.Release's shrink-or-compact choice against
// the working state. The only returned error is a cancellation from the
// scoped shrink replay.
func (e *Engine) batchRelease(ctx context.Context, st *batchState, name string) (OpResult, error) {
	idx := -1
	for i, conn := range st.admitted {
		if conn.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return OpResult{}, nil
	}
	info := ReleaseInfo{Affected: -1}
	if e.inc != nil && st.base != nil {
		survivors := append(append([]topo.Connection(nil), st.admitted[:idx]...), st.admitted[idx+1:]...)
		affected, _ := AffectedSet(len(e.servers), survivors, st.admitted[idx])
		info.Affected = len(affected)
		e.observeAffected(len(affected))
		if float64(len(affected)) <= e.compactionThreshold()*float64(len(survivors)) {
			ext, err := st.base.ShrinkContext(ctx, idx)
			if err == nil {
				st.base = ext.Promote()
				info.Incremental = true
			} else if IsCanceled(err) {
				return OpResult{}, err
			}
		}
	}
	if info.Incremental {
		e.incRels.Add(1)
	} else {
		st.base = nil
		st.compacted = true
		e.compactRels.Add(1)
	}
	st.admitted = append(st.admitted[:idx], st.admitted[idx+1:]...)
	st.mutated = true
	st.buildFailed = false
	return OpResult{Released: true, Release: info}, nil
}

// commitBatch installs the working state as the next snapshot version iff
// snap is still current — the envelope's single epoch-stamped commit.
func (e *Engine) commitBatch(snap *Snapshot, st *batchState) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap.Load() != snap {
		return false
	}
	next := &Snapshot{eng: e, version: snap.version + 1, admitted: st.admitted, promoted: st.base}
	if st.base != nil {
		e.epoch.Add(1)
	}
	e.snap.Store(next)
	e.batchComs.Add(1)
	return true
}

// TestBatch is the dry-run counterpart of ApplyBatch: it evaluates every
// candidate against ONE pinned snapshot — never the moving live head — so
// the report is internally consistent even while concurrent admissions
// commit. Like the sequential dry-run semantics, candidates are judged
// against the current admitted set alone (a dry-run envelope does not
// accumulate its own hypothetical admissions). Nothing is ever committed.
func (e *Engine) TestBatch(ctx context.Context, cands []topo.Connection) ([]OpResult, error) {
	return e.Snapshot().testBatch(ctx, cands)
}

// TestBatchWith is TestBatch on the degraded path: every candidate is
// evaluated with the explicit analyzer (full analysis, no incremental
// state) against one pinned snapshot.
func (e *Engine) TestBatchWith(ctx context.Context, analyzer analysis.Analyzer, cands []topo.Connection) ([]OpResult, error) {
	snap := e.Snapshot()
	out := make([]OpResult, len(cands))
	for i, cand := range cands {
		d, err := snap.testWith(ctx, analyzer, cand)
		if err != nil && IsCanceled(err) {
			return nil, err
		}
		out[i] = OpResult{Decision: d, Err: err}
	}
	return out, nil
}

// testBatch runs the pinned-snapshot dry evaluation.
func (s *Snapshot) testBatch(ctx context.Context, cands []topo.Connection) ([]OpResult, error) {
	out := make([]OpResult, len(cands))
	for i, cand := range cands {
		d, _, err := s.test(ctx, cand)
		if err != nil && IsCanceled(err) {
			return nil, err
		}
		out[i] = OpResult{Decision: d, Err: err}
	}
	return out, nil
}
