// Sharded batch pipelining: an envelope is grouped into per-shard
// sub-batches, each committed as one snapshot by Engine.ApplyBatch, so the
// single-commit invariant holds per shard touched.
//
// Two execution paths mirror the sharded admit/release protocol:
//
//   - The shard-local fast path (shared lock) serves envelopes whose
//     operations all route to single shards: admits are claimed up front,
//     releases resolve through the router, and each involved shard runs
//     exactly one sub-batch. Disjoint envelopes pipeline fully in
//     parallel, like shard-local admits.
//   - The global path (exclusive lock) serves everything else — an admit
//     spanning shards, or in-envelope name reuse that needs the strict
//     sequential resolution. Shard-local runs of operations are buffered
//     into per-shard segments and flushed (one engine sub-batch = one
//     commit per shard) before each cross-shard admit, which then commits
//     exactly as the sequential cross path does.
//
// Decision equivalence: per-operation Admitted/Code/Reason and release
// outcomes are identical to issuing the operations one at a time. The one
// documented divergence is routing, not deciding: shard placement of a
// later operation may differ from strict sequential order when an earlier
// admit of the same envelope is rejected (the router claims
// optimistically), which can only relocate an independent component — the
// per-connection bounds and decisions are unaffected.
package admission

import (
	"context"
	"fmt"
	"sort"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// batchSeg is one shard's buffered slice of an envelope.
type batchSeg struct {
	ops  []Op
	idxs []int // envelope index of each op
}

func addSeg(segs map[int]*batchSeg, shard, idx int, op Op) {
	seg := segs[shard]
	if seg == nil {
		seg = &batchSeg{}
		segs[shard] = seg
	}
	seg.ops = append(seg.ops, op)
	seg.idxs = append(seg.idxs, idx)
}

func sortedShards(segs map[int]*batchSeg) []int {
	out := make([]int, 0, len(segs))
	for s := range segs {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func dupResult(name string) OpResult {
	return OpResult{
		Decision: Decision{Code: CodeInvalidSpec, Reason: fmt.Sprintf("connection %q already admitted", name)},
		Err:      fmt.Errorf("admission: connection %q already admitted", name),
	}
}

// ApplyBatch evaluates a mixed admit/release envelope with one snapshot
// commit per shard touched; see Engine.ApplyBatch for the single-engine
// contract. Cancellation never tears a shard (each shard's sub-batch is
// atomic), but in a multi-shard envelope sub-batches of other shards may
// already have committed when the error surfaces.
func (se *ShardedEngine) ApplyBatch(ctx context.Context, ops []Op) (*BatchResult, error) {
	if eng := se.single(); eng != nil {
		return eng.ApplyBatch(ctx, ops)
	}
	if err := validateOps(ops); err != nil {
		return nil, err
	}
	se.mu.RLock()
	br, released, ok, err := se.applyBatchLocal(ctx, ops)
	se.mu.RUnlock()
	if !ok {
		br, released, err = se.applyBatchGlobal(ctx, ops)
	}
	if err != nil {
		return nil, err
	}
	for _, shard := range released {
		if se.wantRebalance(shard) {
			se.rebalance(shard)
		}
	}
	return br, nil
}

// applyBatchLocal is the shared-lock path. ok=false means the envelope
// needs the global path (cross-shard admit or in-envelope name reuse);
// all router claims are rolled back before returning in that case.
// Caller holds se.mu shared.
func (se *ShardedEngine) applyBatchLocal(ctx context.Context, ops []Op) (br *BatchResult, released []int, ok bool, err error) {
	br = &BatchResult{Results: make([]OpResult, len(ops))}
	segs := make(map[int]*batchSeg)
	envAdmit := make(map[string]int)   // in-envelope admit name -> shard
	envReleased := make(map[string]bool)
	var claimed []topo.Connection

	bail := func() {
		for _, c := range claimed {
			se.router.unclaim(c)
		}
	}

	for i, op := range ops {
		switch op.Kind {
		case OpRelease:
			if shard, inEnv := envAdmit[op.Name]; inEnv {
				// Releasing a connection admitted earlier in this envelope:
				// same shard, same sub-batch, engine-exact semantics (a
				// rejected admit makes the release report not-found).
				addSeg(segs, shard, i, op)
				envReleased[op.Name] = true
				continue
			}
			se.router.mu.Lock()
			rc := se.router.conns[op.Name]
			se.router.mu.Unlock()
			if rc == nil {
				br.Results[i] = OpResult{}
				continue
			}
			addSeg(segs, rc.shard, i, op)
			envReleased[op.Name] = true
		case OpAdmit:
			cand := op.Candidate
			if !se.validRoute(cand) {
				// Never touches the router; shard 0 reproduces Engine's
				// canonical rejection and cannot mutate.
				addSeg(segs, 0, i, op)
				continue
			}
			if _, reused := envAdmit[cand.Name]; reused {
				bail()
				return nil, nil, false, nil
			}
			shard, cross, dup := se.router.claim(cand)
			if dup {
				if envReleased[cand.Name] {
					// An earlier op of this envelope releases the name, so
					// sequentially this admit would be tested fresh; only
					// the strict global path can order that correctly.
					bail()
					return nil, nil, false, nil
				}
				br.Results[i] = dupResult(cand.Name)
				continue
			}
			if cross {
				bail()
				return nil, nil, false, nil
			}
			claimed = append(claimed, cand)
			envAdmit[cand.Name] = shard
			addSeg(segs, shard, i, op)
		}
	}

	// Run one engine sub-batch per involved shard (one commit each), then
	// replay its results onto the router: confirm admitted claims, unclaim
	// the rest, drop released records.
	shards := sortedShards(segs)
	for n, shard := range shards {
		seg := segs[shard]
		res, subErr := se.shards[shard].ApplyBatch(ctx, seg.ops)
		if subErr != nil {
			// This shard committed nothing; earlier shards already did and
			// are reconciled. Roll back the claims of every unreconciled
			// segment and surface the error.
			for _, sh := range shards[n:] {
				for _, o := range segs[sh].ops {
					if o.Kind == OpAdmit && se.validRoute(o.Candidate) {
						se.router.unclaim(o.Candidate)
					}
				}
			}
			return nil, nil, true, subErr
		}
		br.Commits += res.Commits
		if res.Commits > 0 {
			br.ShardsTouched++
		}
		for k, r := range res.Results {
			br.Results[seg.idxs[k]] = r
			o := seg.ops[k]
			switch o.Kind {
			case OpAdmit:
				if !se.validRoute(o.Candidate) {
					continue // never claimed, never admitted
				}
				if r.Decision.Admitted {
					se.router.confirm(o.Candidate, shard)
				} else {
					se.router.unclaim(o.Candidate)
				}
			case OpRelease:
				if !r.Released {
					continue
				}
				se.router.mu.Lock()
				// Re-read: a concurrent release of the same name may have
				// already dropped the record.
				if cur := se.router.conns[o.Name]; cur != nil {
					delete(se.router.conns, o.Name)
					se.router.load[cur.shard]--
					se.router.dropRefs(cur.path)
				}
				se.router.mu.Unlock()
				released = append(released, shard)
			}
		}
	}
	return br, released, true, nil
}

// applyBatchGlobal is the exclusive-lock path for envelopes with
// cross-shard admits or in-envelope name reuse. Shard-local operations are
// buffered into per-shard segments flushed (one engine sub-batch, one
// commit per shard) before every cross-shard admit; routing decisions
// between flushes come from a predicted router view that optimistically
// assumes admits succeed (see the package comment for why this never
// changes a decision).
func (se *ShardedEngine) applyBatchGlobal(ctx context.Context, ops []Op) (*BatchResult, []int, error) {
	se.mu.Lock()
	defer se.mu.Unlock()

	br := &BatchResult{Results: make([]OpResult, len(ops))}
	var released []int
	touched := make(map[int]bool)
	segs := make(map[int]*batchSeg)

	// Predicted router view, re-synced from the real router after every
	// flush. Only owner/refs/load and the name->record map matter for
	// routing.
	var pOwner, pRefs, pLoad []int
	pConns := make(map[string]*routedConn)
	sync := func() {
		se.router.mu.Lock()
		pOwner = append(pOwner[:0], se.router.owner...)
		pRefs = append(pRefs[:0], se.router.refs...)
		pLoad = append(pLoad[:0], se.router.load...)
		pConns = make(map[string]*routedConn, len(se.router.conns))
		for name, rc := range se.router.conns {
			pConns[name] = &routedConn{shard: rc.shard, path: rc.path}
		}
		se.router.mu.Unlock()
	}
	sync()

	pOwnersOf := func(path []int) []int {
		var owners []int
		for _, s := range path {
			o := pOwner[s]
			if o < 0 {
				continue
			}
			dup := false
			for _, k := range owners {
				if k == o {
					dup = true
					break
				}
			}
			if !dup {
				owners = append(owners, o)
			}
		}
		sort.Ints(owners)
		return owners
	}
	pLeastLoaded := func() int {
		best := 0
		for i := 1; i < len(pLoad); i++ {
			if pLoad[i] < pLoad[best] {
				best = i
			}
		}
		return best
	}
	pAdmit := func(cand topo.Connection, shard int) {
		for _, s := range uniqueServers(nil, cand.Path, len(pOwner)) {
			if pOwner[s] < 0 {
				pOwner[s] = shard
			}
			pRefs[s]++
		}
		pConns[cand.Name] = &routedConn{shard: shard, path: cand.Path}
		pLoad[shard]++
	}
	pRelease := func(rc *routedConn, name string) {
		delete(pConns, name)
		pLoad[rc.shard]--
		for _, s := range uniqueServers(nil, rc.path, len(pOwner)) {
			pRefs[s]--
			if pRefs[s] == 0 {
				pOwner[s] = -1
			}
		}
	}

	// flush runs every buffered segment (one commit per shard) and then
	// replays the outcomes onto the real router in envelope order — the
	// order matters when an envelope releases and re-admits one name
	// across different shards.
	flush := func() error {
		type recon struct {
			idx   int
			op    Op
			r     OpResult
			shard int
		}
		var replay []recon
		for _, shard := range sortedShards(segs) {
			seg := segs[shard]
			res, err := se.shards[shard].ApplyBatch(ctx, seg.ops)
			if err != nil {
				return err
			}
			br.Commits += res.Commits
			if res.Commits > 0 {
				touched[shard] = true
			}
			for k, r := range res.Results {
				br.Results[seg.idxs[k]] = r
				replay = append(replay, recon{idx: seg.idxs[k], op: seg.ops[k], r: r, shard: shard})
			}
		}
		sort.Slice(replay, func(i, j int) bool { return replay[i].idx < replay[j].idx })
		for _, rec := range replay {
			switch rec.op.Kind {
			case OpAdmit:
				if rec.r.Decision.Admitted {
					se.router.commitAdmit(rec.op.Candidate, rec.shard)
				}
			case OpRelease:
				if rec.r.Released {
					if shard, ok := se.router.commitRelease(rec.op.Name); ok {
						released = append(released, shard)
					}
				}
			}
		}
		segs = make(map[int]*batchSeg)
		return nil
	}

	for i, op := range ops {
		switch op.Kind {
		case OpRelease:
			rc := pConns[op.Name]
			if rc == nil {
				br.Results[i] = OpResult{}
				continue
			}
			addSeg(segs, rc.shard, i, op)
			pRelease(rc, op.Name)
		case OpAdmit:
			cand := op.Candidate
			if !se.validRoute(cand) {
				addSeg(segs, 0, i, op)
				continue
			}
			if pConns[cand.Name] != nil {
				// The prediction may be optimistic (an earlier in-envelope
				// admit that will actually be rejected); resolve against
				// the real router before declaring a duplicate.
				if err := flush(); err != nil {
					return nil, released, err
				}
				sync()
				if pConns[cand.Name] != nil {
					br.Results[i] = dupResult(cand.Name)
					continue
				}
			}
			owners := pOwnersOf(cand.Path)
			if len(owners) > 1 {
				// Cross-shard admit: flush so the router reflects every
				// earlier operation, then run the sequential cross path
				// inline (we already hold the exclusive lock). This is the
				// envelope's one cross-shard commit.
				if err := flush(); err != nil {
					return nil, released, err
				}
				sync()
				owners = pOwnersOf(cand.Path)
				d, err := se.admitCrossLocked(ctx, nil, cand)
				if err != nil && IsCanceled(err) {
					return nil, released, err
				}
				br.Results[i] = OpResult{Decision: d, Err: err}
				if d.Admitted {
					br.Commits++
					for _, o := range owners {
						touched[o] = true
					}
				}
				sync()
				continue
			}
			shard := pLeastLoaded()
			if len(owners) == 1 {
				shard = owners[0]
			}
			addSeg(segs, shard, i, op)
			pAdmit(cand, shard)
		}
	}
	if err := flush(); err != nil {
		return nil, released, err
	}
	br.ShardsTouched = len(touched)
	return br, released, nil
}

// commitAdmit records an admitted connection that was never claimed (the
// exclusive-lock batch path): pin its route's servers to the shard and
// install the routing record with the next commit stamp.
func (r *shardRouter) commitAdmit(cand topo.Connection, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range uniqueServers(nil, cand.Path, len(r.owner)) {
		if r.owner[s] < 0 {
			r.owner[s] = shard
		}
		r.refs[s]++
	}
	r.conns[cand.Name] = &routedConn{shard: shard, seq: r.seq, path: cand.Path}
	r.seq++
	r.load[shard]++
}

// commitRelease drops a released connection's routing record, reporting
// the shard it lived on.
func (r *shardRouter) commitRelease(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rc := r.conns[name]
	if rc == nil {
		return 0, false
	}
	delete(r.conns, name)
	r.load[rc.shard]--
	r.dropRefs(rc.path)
	return rc.shard, true
}

// TestBatch is the dry-run envelope evaluation: every shard's snapshot is
// pinned once up front, so all candidates — including cross-shard ones,
// whose union is assembled from the same pinned snapshots — are judged
// against one consistent global state even while concurrent admissions
// commit. Nothing is ever committed and the router is never mutated.
func (se *ShardedEngine) TestBatch(ctx context.Context, cands []topo.Connection) ([]OpResult, error) {
	if eng := se.single(); eng != nil {
		return eng.TestBatch(ctx, cands)
	}
	return se.testBatch(ctx, nil, cands)
}

// TestBatchWith is TestBatch on the degraded path: every candidate runs a
// full analysis with the explicit analyzer against the same pinned
// per-shard snapshots.
func (se *ShardedEngine) TestBatchWith(ctx context.Context, analyzer analysis.Analyzer, cands []topo.Connection) ([]OpResult, error) {
	if eng := se.single(); eng != nil {
		return eng.TestBatchWith(ctx, analyzer, cands)
	}
	return se.testBatch(ctx, analyzer, cands)
}

// testBatch is the multi-shard dry envelope: analyzer nil selects each
// shard's incremental path, non-nil forces a full analysis with it.
func (se *ShardedEngine) testBatch(ctx context.Context, analyzer analysis.Analyzer, cands []topo.Connection) ([]OpResult, error) {
	se.mu.RLock()
	defer se.mu.RUnlock()
	snaps := make([]*Snapshot, len(se.shards))
	for i, sh := range se.shards {
		snaps[i] = sh.Snapshot()
	}
	pinnedTest := func(snap *Snapshot, cand topo.Connection) (Decision, error) {
		if analyzer != nil {
			return snap.testWith(ctx, analyzer, cand)
		}
		d, _, err := snap.test(ctx, cand)
		return d, err
	}
	out := make([]OpResult, len(cands))
	for i, cand := range cands {
		var d Decision
		var err error
		if !se.validRoute(cand) {
			d, err = pinnedTest(snaps[0], cand)
		} else {
			se.router.mu.Lock()
			owners := se.router.ownersOf(cand.Path)
			shard := se.router.leastLoaded()
			se.router.mu.Unlock()
			if len(owners) == 1 {
				shard = owners[0]
			}
			if len(owners) <= 1 {
				d, err = pinnedTest(snaps[shard], cand)
			} else {
				union := se.gatherUnionPinned(owners, snaps)
				se.crossTests.Add(1)
				unionAnalyzer := analyzer
				if unionAnalyzer == nil {
					unionAnalyzer = se.analyzer
				}
				d, err = se.unionTest(ctx, unionAnalyzer, union, cand)
			}
		}
		if err != nil && IsCanceled(err) {
			return nil, err
		}
		out[i] = OpResult{Decision: d, Err: err}
	}
	return out, nil
}

// gatherUnionPinned is gatherUnion over caller-pinned snapshots instead of
// the live shard heads, preserving dry-run isolation for cross-shard
// candidates.
func (se *ShardedEngine) gatherUnionPinned(owners []int, snaps []*Snapshot) []seqConn {
	var union []seqConn
	se.router.mu.Lock()
	defer se.router.mu.Unlock()
	pendingSeq := uint64(1<<63) + 1
	for _, o := range owners {
		for _, c := range snaps[o].admitted {
			sc := seqConn{conn: c, shard: o}
			if rc := se.router.conns[c.Name]; rc != nil && rc.shard == o {
				sc.seq = rc.seq
			} else {
				sc.seq = pendingSeq
				pendingSeq++
			}
			union = append(union, sc)
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i].seq < union[j].seq })
	return union
}
