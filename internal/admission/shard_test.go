package admission

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// requireSameOutcome asserts decision equality for the multi-shard
// differential: Admitted/Code/Reason/Violations are compared exactly, and
// the candidate's own bound (the last Bounds entry) bitwise. The full
// Bounds vector is not compared because a shard's trial network is the
// candidate's component subset — component independence makes the shared
// entries bit-identical (requireSameDecision pins that at one shard), but
// the vectors cover different connection sets.
func requireSameOutcome(t *testing.T, label string, want, got Decision) {
	t.Helper()
	if want.Admitted != got.Admitted || want.Code != got.Code || want.Reason != got.Reason {
		t.Fatalf("%s: decision diverged:\n  engine  %+v\n  sharded %+v", label, want, got)
	}
	if len(want.Violations) != len(got.Violations) {
		t.Fatalf("%s: violations %d vs %d", label, len(want.Violations), len(got.Violations))
	}
	for i := range want.Violations {
		if want.Violations[i] != got.Violations[i] {
			t.Errorf("%s: violation %d: %+v vs %+v", label, i, want.Violations[i], got.Violations[i])
		}
	}
	if (len(want.Bounds) == 0) != (len(got.Bounds) == 0) {
		t.Fatalf("%s: bounds presence diverged: %d vs %d entries", label, len(want.Bounds), len(got.Bounds))
	}
	if len(want.Bounds) > 0 {
		wb, gb := want.Bounds[len(want.Bounds)-1], got.Bounds[len(got.Bounds)-1]
		if wb != gb {
			t.Errorf("%s: candidate bound %v vs %v", label, wb, gb)
		}
	}
}

// driveShardDifferential replays one admission sequence through a plain
// Engine and a ShardedEngine and asserts identical outcomes at every step.
// At one shard the two must be indistinguishable in every field.
func driveShardDifferential(t *testing.T, label string, analyzer analysis.Analyzer, net *topo.Network, shards int) {
	t.Helper()
	eng, err := NewEngine(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analyzer, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, cand := range net.Connections {
		step := fmt.Sprintf("%s/conn%d", label, i)
		wantD, wantErr := eng.Test(cand)
		gotD, gotErr := se.Test(cand)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: test error diverged: engine %v, sharded %v", step, wantErr, gotErr)
		}
		if shards == 1 {
			requireSameDecision(t, step+"/test", wantD, gotD)
		} else {
			requireSameOutcome(t, step+"/test", wantD, gotD)
		}

		wantD, wantErr = eng.Admit(cand)
		gotD, gotErr = se.Admit(cand)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: admit error diverged: engine %v, sharded %v", step, wantErr, gotErr)
		}
		if shards == 1 {
			requireSameDecision(t, step+"/admit", wantD, gotD)
		} else {
			requireSameOutcome(t, step+"/admit", wantD, gotD)
		}
		if eng.Count() != se.Count() {
			t.Fatalf("%s: count diverged: engine %d, sharded %d", step, eng.Count(), se.Count())
		}
	}
	if v := se.SnapshotVersion(); shards == 1 && v != eng.Snapshot().Version() {
		t.Fatalf("%s: snapshot version %d, engine %d", label, v, eng.Snapshot().Version())
	}
}

// TestShardedMatchesEngineOnRandomNetworks is the sharded differential
// acceptance test over the same 26-seed corpus as the engine/controller
// suite, at 1, 2, and 4 shards. Candidates routinely merge components, so
// the cross-shard path is exercised throughout.
func TestShardedMatchesEngineOnRandomNetworks(t *testing.T) {
	for _, analyzer := range []analysis.Analyzer{analysis.Integrated{}, analysis.Decomposed{}} {
		for seed := int64(0); seed < 26; seed++ {
			net, err := topo.RandomFeedforward(6, 9, 0.6, seed)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 31))
			for i := range net.Connections {
				switch rng.Intn(4) {
				case 0:
					net.Connections[i].Deadline = 1 + 4*rng.Float64()
				case 1:
					net.Connections[i].Deadline = 0 // invalid: exercises the error path
				default:
					net.Connections[i].Deadline = 100
				}
			}
			for _, shards := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s/seed%d/shards%d", analyzer.Name(), seed, shards)
				driveShardDifferential(t, label, analyzer, net, shards)
			}
		}
	}
}

// TestShardedMatchesEngineOnFabrics extends the differential to the
// datacenter builders: a small fat-tree and Clos fabric (connected — every
// admission lands in one growing component) and a disjoint-block fabric
// (the sharded fast path).
func TestShardedMatchesEngineOnFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric differential skipped in -short")
	}
	fabrics := []struct {
		name  string
		build func() (*topo.Network, error)
	}{
		{"fattree2", func() (*topo.Network, error) { return topo.FatTree(2, 2, 0.6) }},
		{"clos2", func() (*topo.Network, error) { return topo.Clos(2, 0.6) }},
		{"disjoint4x3", func() (*topo.Network, error) { return topo.DisjointBlocks(4, 3, 0.6) }},
	}
	for _, f := range fabrics {
		net, err := f.build()
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Connections {
			net.Connections[i].Deadline = 100
		}
		for _, shards := range []int{1, 4} {
			driveShardDifferential(t, fmt.Sprintf("%s/shards%d", f.name, shards),
				analysis.Integrated{}, net, shards)
		}
	}
}

// TestShardedDisjointStaysLocal pins the scaling premise: admissions on a
// disjoint-block fabric spread across shards and never take the global
// cross-shard path.
func TestShardedDisjointStaysLocal(t *testing.T) {
	net, err := topo.DisjointBlocks(4, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
		if d, err := se.Admit(net.Connections[i]); err != nil || !d.Admitted {
			t.Fatalf("admit %s: %+v err=%v", net.Connections[i].Name, d, err)
		}
	}
	st := se.Stats()
	if st.CrossShardCommits != 0 {
		t.Fatalf("disjoint workload took %d cross-shard commits", st.CrossShardCommits)
	}
	nonEmpty := 0
	for _, sh := range st.PerShard {
		if sh.Admitted > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 4 {
		t.Fatalf("expected all 4 shards populated, got %d: %+v", nonEmpty, st.PerShard)
	}
	if se.Count() != len(net.Connections) {
		t.Fatalf("count %d, want %d", se.Count(), len(net.Connections))
	}
}

// TestShardedCrossShardMergeAndRebalance walks the full component life
// cycle: two blocks land in different shards, a bridging connection merges
// them into one shard under a cross-shard commit, and releasing the bridge
// rebalances a component back onto the emptied shard.
func TestShardedCrossShardMergeAndRebalance(t *testing.T) {
	net, err := topo.DisjointBlocks(2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
		if d, err := se.Admit(net.Connections[i]); err != nil || !d.Admitted {
			t.Fatalf("admit %s: %+v err=%v", net.Connections[i].Name, d, err)
		}
	}
	if st := se.Stats(); st.CrossShardCommits != 0 || st.PerShard[0].Admitted == 0 || st.PerShard[1].Admitted == 0 {
		t.Fatalf("setup expected two populated shards, no cross commits: %+v", st)
	}

	bridge := net.Connections[0]
	bridge.Name = "bridge"
	bridge.Path = []int{0, len(net.Servers) - 1} // spans both blocks
	bridge.Deadline = 1000
	if d, err := se.Admit(bridge); err != nil || !d.Admitted {
		t.Fatalf("bridge admit: %+v err=%v", d, err)
	}
	st := se.Stats()
	if st.CrossShardCommits == 0 {
		t.Fatal("bridge admission did not take the cross-shard path")
	}
	if st.PerShard[0].Admitted != 0 && st.PerShard[1].Admitted != 0 {
		t.Fatalf("merged component should live in one shard: %+v", st.PerShard)
	}
	if se.Count() != len(net.Connections)+1 {
		t.Fatalf("count %d, want %d", se.Count(), len(net.Connections)+1)
	}

	if _, ok := se.Release("bridge"); !ok {
		t.Fatal("bridge release failed")
	}
	st = se.Stats()
	if st.Rebalances == 0 {
		t.Fatal("releasing the bridge did not rebalance the split components")
	}
	if st.PerShard[0].Admitted == 0 || st.PerShard[1].Admitted == 0 {
		t.Fatalf("rebalance should repopulate both shards: %+v", st.PerShard)
	}
	if se.Count() != len(net.Connections) {
		t.Fatalf("count %d after release, want %d", se.Count(), len(net.Connections))
	}

	// The surviving state must still be exactly re-provable.
	final := &topo.Network{Servers: se.Servers(), Connections: se.Admitted()}
	res, err := analysis.Integrated{}.Analyze(final)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range final.Connections {
		if res.Bound(i) > c.Deadline {
			t.Errorf("connection %s violates its deadline after rebalance: %g > %g", c.Name, res.Bound(i), c.Deadline)
		}
	}
}

// TestShardedDuplicateNameRejected pins the multi-shard uniqueness
// contract: routing resolves connections by name, so a second admission
// under an existing name is a stable invalid_spec rejection.
func TestShardedDuplicateNameRejected(t *testing.T) {
	net, err := topo.DisjointBlocks(2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cand := net.Connections[0]
	cand.Deadline = 1000
	if d, err := se.Admit(cand); err != nil || !d.Admitted {
		t.Fatalf("first admit: %+v err=%v", d, err)
	}
	d, err := se.Admit(cand)
	if err == nil || d.Admitted || d.Code != CodeInvalidSpec {
		t.Fatalf("duplicate admit: %+v err=%v, want invalid_spec rejection", d, err)
	}
	if se.Count() != 1 {
		t.Fatalf("count %d after duplicate rejection", se.Count())
	}
}

// TestShardedConcurrentMixedOps is the -race stress for the sharding
// protocol: concurrent admits and releases across disjoint blocks mixed
// with block-bridging candidates (cross-shard merges and rebalances). The
// final committed set must be name-consistent between router and shards
// and fully re-provable.
func TestShardedConcurrentMixedOps(t *testing.T) {
	const blocks = 4
	net, err := topo.DisjointBlocks(blocks, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, blocks)
	if err != nil {
		t.Fatal(err)
	}
	perBlock := len(net.Connections) / blocks
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			conns := net.Connections[b*perBlock : (b+1)*perBlock]
			for round := 0; round < 3; round++ {
				for i, c := range conns {
					c.Deadline = 1000
					if _, err := se.Admit(c); err != nil {
						t.Errorf("block %d admit %s: %v", b, c.Name, err)
						return
					}
					if i%2 == 0 {
						se.Release(c.Name)
					}
				}
				// A bridging candidate between this block and the next
				// forces merges and, after its release, rebalances.
				bridge := conns[0]
				bridge.Name = fmt.Sprintf("bridge-%d-%d", b, round)
				bridge.Path = []int{b * 2, ((b + 1) % blocks) * 2}
				bridge.Deadline = 1000
				if _, err := se.Admit(bridge); err != nil {
					t.Errorf("block %d bridge: %v", b, err)
					return
				}
				se.Release(bridge.Name)
				for i, c := range conns {
					if i%2 == 0 {
						se.Release(c.Name)
					}
				}
				se.Test(conns[0]) // concurrent replica reads
				se.ReadView()
				for i, c := range conns {
					if i%2 != 0 {
						se.Release(c.Name)
					}
				}
			}
		}(b)
	}
	wg.Wait()

	conns, _ := se.ReadView()
	if len(conns) != se.Count() {
		t.Fatalf("read view %d connections, count %d", len(conns), se.Count())
	}
	final := &topo.Network{Servers: se.Servers(), Connections: conns}
	if len(conns) > 0 {
		res, err := analysis.Integrated{}.Analyze(final)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range final.Connections {
			if res.Bound(i) > c.Deadline {
				t.Errorf("connection %s violates its deadline: %g > %g", c.Name, res.Bound(i), c.Deadline)
			}
		}
	}
	// Every name must release cleanly exactly once: router and shards agree.
	for _, c := range conns {
		if _, ok := se.Release(c.Name); !ok {
			t.Errorf("release %s failed: router/shard divergence", c.Name)
		}
	}
	if se.Count() != 0 {
		t.Fatalf("count %d after draining", se.Count())
	}
}

// TestReleaseWarmRace is the regression test for the baseline-warmth race:
// before the engine owned a single background warmer, every compacting
// release detached a goroutine that rebuilt a possibly superseded
// snapshot's baseline while concurrent admits on the same component raced
// it for the lazy slot. Hammering admit/release on one component with
// compaction forced (threshold < 0 disables incremental release) must be
// race-clean and leave a warm baseline for the final snapshot.
func TestReleaseWarmRace(t *testing.T) {
	net, err := topo.PaperTandem(3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetCompactionThreshold(-1) // every release compacts and schedules a warm

	const workers = 4
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				cand := net.Connections[0]
				cand.Name = fmt.Sprintf("w%d-%d", g, i)
				cand.Deadline = 1000
				if _, err := eng.Admit(cand); err != nil {
					t.Errorf("admit %s: %v", cand.Name, err)
					return
				}
				eng.Test(cand)
				eng.Release(cand.Name)
			}
		}(g)
	}
	wg.Wait()

	if eng.Count() != 0 {
		t.Fatalf("count %d after symmetric admit/release", eng.Count())
	}
	// One more compacting release schedules a warm of the final snapshot;
	// the single-owner warmer must converge on it.
	cand := net.Connections[0]
	cand.Name = "last"
	cand.Deadline = 1000
	if _, err := eng.Admit(cand); err != nil {
		t.Fatal(err)
	}
	eng.Release(cand.Name)
	deadline := time.Now().Add(10 * time.Second)
	for eng.Snapshot().cachedBaseline() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background warmer never promoted the final snapshot's baseline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
