package admission

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// TestShardedApplyBatchMatchesSequential replays random envelopes through
// a sharded engine and compares every operation's outcome against a second
// sharded engine fed the same ops one at a time. The sharded guarantee is
// Admitted/Code/Reason/Violations and release outcomes (Bounds may list a
// different co-resident set when optimistic routing places a component on
// a different shard — see the shard_batch.go package comment).
func TestShardedApplyBatchMatchesSequential(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		net, err := topo.DisjointBlocks(4, 3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Connections {
			net.Connections[i].Deadline = 1000
		}
		seqSE, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		batchSE, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		ops := randomOps(net, seed, 2*len(net.Connections))
		rng := rand.New(rand.NewSource(seed * 13))
		ctx := context.Background()
		for start := 0; start < len(ops); {
			end := start + 1 + rng.Intn(6)
			if end > len(ops) {
				end = len(ops)
			}
			env := ops[start:end]
			br, err := batchSE.ApplyBatch(ctx, env)
			if err != nil {
				t.Fatalf("seed%d: ApplyBatch: %v", seed, err)
			}
			for k, op := range env {
				step := fmt.Sprintf("seed%d/op%d", seed, start+k)
				switch op.Kind {
				case OpAdmit:
					wantD, wantErr := seqSE.Admit(op.Candidate)
					gotR := br.Results[k]
					if (wantErr == nil) != (gotR.Err == nil) {
						t.Fatalf("%s: admit error diverged: sequential %v, batch %v", step, wantErr, gotR.Err)
					}
					requireSameOutcome(t, step, wantD, gotR.Decision)
				case OpRelease:
					_, wantOK := seqSE.Release(op.Name)
					if wantOK != br.Results[k].Released {
						t.Fatalf("%s: release found diverged: sequential %v, batch %v", step, wantOK, br.Results[k].Released)
					}
				}
			}
			start = end
		}
		if seqSE.Count() != batchSE.Count() {
			t.Fatalf("seed%d: final counts differ: sequential %d, batch %d", seed, seqSE.Count(), batchSE.Count())
		}
		seqNames := make(map[string]bool)
		for _, c := range seqSE.Admitted() {
			seqNames[c.Name] = true
		}
		for _, c := range batchSE.Admitted() {
			if !seqNames[c.Name] {
				t.Fatalf("seed%d: batch admitted %q, sequential did not", seed, c.Name)
			}
		}
	}
}

// TestShardedBatchSingleCommitPerShard pins the sharded pipelining
// invariant: an envelope touching k shards performs exactly k snapshot
// commits (one engine sub-batch each) and never takes the cross path when
// its routes stay within components.
func TestShardedBatchSingleCommitPerShard(t *testing.T) {
	net, err := topo.DisjointBlocks(4, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 0, len(net.Connections))
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
		ops = append(ops, Op{Kind: OpAdmit, Candidate: net.Connections[i]})
	}
	before := se.SnapshotVersion()
	br, err := se.ApplyBatch(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range br.Results {
		if !r.Decision.Admitted {
			t.Fatalf("op %d not admitted: %+v", i, r.Decision)
		}
	}
	if br.Commits != br.ShardsTouched {
		t.Fatalf("commits %d != shards touched %d", br.Commits, br.ShardsTouched)
	}
	if br.Commits > 4 || br.Commits < 1 {
		t.Fatalf("envelope over a 4-block fabric committed %d times", br.Commits)
	}
	if delta := se.SnapshotVersion() - before; int(delta) != br.Commits {
		t.Fatalf("global version advanced %d, reported %d commits", delta, br.Commits)
	}
	if st := se.Stats(); st.CrossShardCommits != 0 {
		t.Fatalf("disjoint envelope took %d cross-shard commits", st.CrossShardCommits)
	}
	if se.Count() != len(net.Connections) {
		t.Fatalf("count %d, want %d", se.Count(), len(net.Connections))
	}

	// Duplicate admits and ghost releases are rejected per-op with the
	// sequential decisions, without committing anything.
	before = se.SnapshotVersion()
	br, err = se.ApplyBatch(context.Background(), []Op{
		{Kind: OpAdmit, Candidate: net.Connections[0]},
		{Kind: OpRelease, Name: "ghost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Decision.Code != CodeInvalidSpec || br.Results[0].Err == nil {
		t.Fatalf("duplicate admit not rejected: %+v", br.Results[0])
	}
	if br.Results[1].Released {
		t.Fatal("ghost release reported found")
	}
	if br.Commits != 0 || se.SnapshotVersion() != before {
		t.Fatalf("read-only envelope committed (commits=%d)", br.Commits)
	}
}

// TestShardedBatchCrossAdmit drives an envelope whose middle admit bridges
// two shards: the shard-local prefix flushes with one commit per shard,
// the bridge takes exactly one cross-shard commit, and the router stays
// consistent (everything admitted is individually releasable afterwards).
func TestShardedBatchCrossAdmit(t *testing.T) {
	net, err := topo.DisjointBlocks(2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
		if d, err := se.Admit(net.Connections[i]); err != nil || !d.Admitted {
			t.Fatalf("setup admit %s: %+v err=%v", net.Connections[i].Name, d, err)
		}
	}
	bridge := net.Connections[0]
	bridge.Name = "bridge"
	bridge.Path = []int{0, len(net.Servers) - 1}
	extraA := net.Connections[0]
	extraA.Name = "extraA"
	extraB := net.Connections[len(net.Connections)-1]
	extraB.Name = "extraB"

	br, err := se.ApplyBatch(context.Background(), []Op{
		{Kind: OpAdmit, Candidate: extraA},
		{Kind: OpAdmit, Candidate: bridge},
		{Kind: OpAdmit, Candidate: extraB},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range br.Results {
		if !r.Decision.Admitted {
			t.Fatalf("op %d not admitted: %+v err=%v", i, r.Decision, r.Err)
		}
	}
	st := se.Stats()
	if st.CrossShardCommits == 0 {
		t.Fatal("bridge admission did not take the cross-shard path")
	}
	if se.Count() != len(net.Connections)+3 {
		t.Fatalf("count %d, want %d", se.Count(), len(net.Connections)+3)
	}
	for _, name := range []string{"extraA", "bridge", "extraB"} {
		if _, ok := se.Release(name); !ok {
			t.Fatalf("router lost %q after the cross envelope", name)
		}
	}
}

// TestShardedBatchReleaseReadmit pins the strict-ordering fallback: an
// envelope that releases a name and then re-admits it must resolve like
// the sequential path (release first, fresh admit after), not as a
// duplicate rejection.
func TestShardedBatchReleaseReadmit(t *testing.T) {
	net, err := topo.DisjointBlocks(2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
		if d, err := se.Admit(net.Connections[i]); err != nil || !d.Admitted {
			t.Fatalf("setup admit: %+v err=%v", d, err)
		}
	}
	name := net.Connections[0].Name
	br, err := se.ApplyBatch(context.Background(), []Op{
		{Kind: OpRelease, Name: name},
		{Kind: OpAdmit, Candidate: net.Connections[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Results[0].Released {
		t.Fatalf("release of %q not found", name)
	}
	if !br.Results[1].Decision.Admitted {
		t.Fatalf("re-admit of %q rejected: %+v err=%v", name, br.Results[1].Decision, br.Results[1].Err)
	}
	if se.Count() != len(net.Connections) {
		t.Fatalf("count %d, want %d", se.Count(), len(net.Connections))
	}
	if _, ok := se.Release(name); !ok {
		t.Fatalf("router lost %q after release+readmit envelope", name)
	}
}

// TestShardedBatchStraddlesRebalance exercises envelopes whose releases
// split a component while an empty shard is available — the
// release-triggered rebalance migrates a component mid-workload — with
// concurrent envelopes on a disjoint block. Run under -race with -count=3
// in CI; the assertions are pure invariants so interleavings are free.
func TestShardedBatchStraddlesRebalance(t *testing.T) {
	net, err := topo.DisjointBlocks(2, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 1000
	}
	se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	half := len(net.Connections) / 2
	blockA, blockB := net.Connections[:half], net.Connections[half:]

	// A chain component on block A's servers whose middle link, once
	// released, splits it in two: base is the block's own connections,
	// chain adds bridging 2-hop links over consecutive servers.
	var chain []topo.Connection
	for i := 0; i+1 < 4; i++ {
		c := blockA[0]
		c.Name = fmt.Sprintf("chain%d", i)
		c.Path = []int{i, i + 1}
		chain = append(chain, c)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	errc := make(chan error, 2)
	go func() {
		// Churn the chain: admit all, release the middle (splitting the
		// component and, with shard 2 kept empty, inviting a rebalance),
		// re-admit, repeat.
		defer wg.Done()
		ctx := context.Background()
		for round := 0; round < 6; round++ {
			var admits []Op
			for _, c := range chain {
				admits = append(admits, Op{Kind: OpAdmit, Candidate: c})
			}
			if _, err := se.ApplyBatch(ctx, admits); err != nil {
				errc <- err
				return
			}
			if _, err := se.ApplyBatch(ctx, []Op{
				{Kind: OpRelease, Name: "chain1"},
				{Kind: OpRelease, Name: "chain0"},
				{Kind: OpRelease, Name: "chain2"},
			}); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() {
		// Concurrent disjoint envelopes on block B.
		defer wg.Done()
		ctx := context.Background()
		for round := 0; round < 6; round++ {
			var ops []Op
			for _, c := range blockB {
				ops = append(ops, Op{Kind: OpAdmit, Candidate: c})
			}
			if _, err := se.ApplyBatch(ctx, ops); err != nil {
				errc <- err
				return
			}
			ops = ops[:0]
			for _, c := range blockB {
				ops = append(ops, Op{Kind: OpRelease, Name: c.Name})
			}
			if _, err := se.ApplyBatch(ctx, ops); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Everything churned back out; the router must agree with the shards.
	if n := se.Count(); n != 0 {
		t.Fatalf("count %d after full churn, want 0: %v", n, se.Admitted())
	}
	// The fabric must still be fully usable: admit both blocks again.
	for _, c := range append(append([]topo.Connection(nil), blockA...), blockB...) {
		if d, err := se.Admit(c); err != nil || !d.Admitted {
			t.Fatalf("post-churn admit %s: %+v err=%v", c.Name, d, err)
		}
	}
}
