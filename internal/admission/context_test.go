package admission

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// TestIsCanceled pins the cancellation classifier both ways: wrapped
// context errors count, everything else does not.
func TestIsCanceled(t *testing.T) {
	if !IsCanceled(context.Canceled) || !IsCanceled(context.DeadlineExceeded) {
		t.Fatal("bare context errors not classified as cancellation")
	}
	if !IsCanceled(fmt.Errorf("analysis: %w", context.Canceled)) {
		t.Fatal("wrapped context.Canceled not classified")
	}
	if IsCanceled(errors.New("spec invalid")) || IsCanceled(nil) {
		t.Fatal("non-context errors classified as cancellation")
	}
}

// TestTestContextCancelled pins two contract points of the cancelled
// admission test: the error is a cancellation (never mislabeled as a bad
// spec) and the engine does NOT fall through to the more expensive full
// path after an incremental cut-off.
func TestTestContextCancelled(t *testing.T) {
	eng, err := NewEngine(fabric(3), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the incremental baseline so the cancelled test below takes the
	// incremental path.
	if d, err := eng.Admit(conn("warm", 50, 0, 1, 2)); err != nil || !d.Admitted {
		t.Fatalf("warm admit: %+v, %v", d, err)
	}
	fullBefore := eng.Stats().FullTests
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.TestContext(ctx, conn("probe", 50, 0, 1))
	if err == nil {
		t.Fatal("cancelled TestContext returned no error")
	}
	if !IsCanceled(err) {
		t.Fatalf("cancelled TestContext error %v not classified by IsCanceled", err)
	}
	if got := eng.Stats().FullTests; got != fullBefore {
		t.Fatalf("cancelled incremental test fell through to the full path: %d -> %d full tests",
			fullBefore, got)
	}
	if eng.Count() != 1 {
		t.Fatalf("cancelled test mutated the admitted set: count=%d", eng.Count())
	}
}

// TestAdmitContextCancelledCommitsNothing checks the hard invariant of a
// cut-off Admit: no partial commit.
func TestAdmitContextCancelledCommitsNothing(t *testing.T) {
	eng, err := NewEngine(fabric(2), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AdmitContext(ctx, conn("v1", 5, 0, 1)); !IsCanceled(err) {
		t.Fatalf("cancelled AdmitContext error = %v, want cancellation", err)
	}
	if eng.Count() != 0 {
		t.Fatalf("cancelled AdmitContext committed: count=%d", eng.Count())
	}
}

// TestAdmitWithCommitsAndStaysConsistent drives the degraded admission
// path: AdmitWith commits under the fallback analyzer's decision, and the
// engine's NEXT test (back on the primary analyzer) sees the committed
// connection exactly as a fresh engine would — the degraded commit must
// not leave a stale incremental baseline behind.
func TestAdmitWithCommitsAndStaysConsistent(t *testing.T) {
	eng, err := NewEngine(fabric(2), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the baseline on the primary analyzer first, as a degraded
	// request would find it.
	if d, err := eng.Admit(conn("first", 50, 0, 1)); err != nil || !d.Admitted {
		t.Fatalf("first admit: %+v, %v", d, err)
	}
	d, err := eng.AdmitWith(context.Background(), analysis.Decomposed{}, conn("degraded", 50, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("degraded admit rejected: %+v", d)
	}
	// The decision's bounds are the fallback analyzer's, not the primary's.
	decRef, err := analysis.Decomposed{}.Analyze(trialNetworkForTest(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	for i := range decRef.Bounds {
		if d.Bounds[i] != decRef.Bounds[i] {
			t.Errorf("degraded bound %d = %v, want decomposed %v", i, d.Bounds[i], decRef.Bounds[i])
		}
	}
	if eng.Count() != 2 {
		t.Fatalf("count = %d after degraded admit, want 2", eng.Count())
	}
	// A later test through the normal path must judge against BOTH
	// admitted connections with the primary analyzer, identically to a
	// fresh engine holding the same set.
	fresh, err := NewEngine(fabric(2), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.Admitted() {
		if d, err := fresh.Admit(c); err != nil || !d.Admitted {
			t.Fatalf("replaying %q on fresh engine: %+v, %v", c.Name, d, err)
		}
	}
	probe := conn("probe", 50, 0, 1)
	got, err := eng.Test(probe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Test(probe)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, "post-degraded-commit", want, got)
}

// trialNetworkForTest rebuilds the engine's current admitted set as a
// network for reference analysis.
func trialNetworkForTest(t *testing.T, eng *Engine) *topo.Network {
	t.Helper()
	net := &topo.Network{Servers: fabric(2), Connections: eng.Admitted()}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}
