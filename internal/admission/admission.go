// Package admission implements connection admission control (CAC), the
// application that motivates the paper: a new connection with a
// deterministic end-to-end deadline is admitted if and only if, with it
// added, the chosen delay analysis still proves every admitted connection's
// deadline. A tighter analysis therefore directly translates into more
// admitted connections at the same quality of service — the paper's
// utilization argument.
//
// Controller is NOT goroutine-safe: Admit, Remove, and FillGreedy mutate
// the admitted set, and Admitted, Count, Test, and Utilization read it,
// all without synchronization. Concurrent callers must serialize access
// themselves; the canonical way is service.State (internal/service),
// which wraps a Controller behind a mutex and returns copies, and which
// both the delayd daemon and the CLIs use.
package admission

import (
	"fmt"
	"math"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// Controller performs admission tests against a fixed server fabric.
type Controller struct {
	servers  []server.Server
	analyzer analysis.Analyzer
	admitted []topo.Connection
}

// New creates a controller over the given servers using the given
// analyzer for the admission test.
func New(servers []server.Server, analyzer analysis.Analyzer) (*Controller, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("admission: no servers")
	}
	for i, s := range servers {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("admission: server %d: %w", i, err)
		}
	}
	if analyzer == nil {
		return nil, fmt.Errorf("admission: nil analyzer")
	}
	cp := make([]server.Server, len(servers))
	copy(cp, servers)
	return &Controller{servers: cp, analyzer: analyzer}, nil
}

// Admitted returns a copy of the currently admitted connections.
func (c *Controller) Admitted() []topo.Connection {
	out := make([]topo.Connection, len(c.admitted))
	copy(out, c.admitted)
	return out
}

// Count returns the number of admitted connections.
func (c *Controller) Count() int { return len(c.admitted) }

// network materializes the current (or trial) connection set.
func (c *Controller) network(extra ...topo.Connection) *topo.Network {
	net := &topo.Network{Servers: c.servers}
	net.Connections = append(net.Connections, c.admitted...)
	net.Connections = append(net.Connections, extra...)
	return net
}

// Stable machine-readable rejection codes carried by Decision.Code and
// surfaced verbatim in the service API's error envelope.
const (
	// CodeDeadlineMissed marks a rejection because some connection's
	// delay bound would exceed its deadline; Violations lists them.
	CodeDeadlineMissed = "deadline_missed"
	// CodeUnstable marks a rejection because some server's long-run load
	// would reach its capacity.
	CodeUnstable = "unstable"
	// CodeInvalidSpec marks a candidate (or trial network) that failed
	// structural validation.
	CodeInvalidSpec = "invalid_spec"
)

// Violation identifies one connection whose deadline the trial network
// would miss, with the offending bound and the deadline as structured
// fields so callers never parse prose.
type Violation struct {
	// Connection is the connection's name ("connection i" when unnamed).
	Connection string
	// Bound is the post-admission delay bound (+Inf when unbounded).
	Bound float64
	// Deadline is the connection's requirement.
	Deadline float64
}

// Decision records the outcome of an admission test.
type Decision struct {
	Admitted bool
	// Code is a stable machine-readable rejection code (one of the Code*
	// constants); empty when admitted.
	Code string
	// Reason explains a rejection in prose.
	Reason string
	// Violations lists every connection whose deadline the trial network
	// would miss (only for CodeDeadlineMissed rejections).
	Violations []Violation
	// Bounds holds the post-admission delay bounds per connection
	// (admitted connections first, the candidate last) when the test ran.
	Bounds []float64
}

// evaluate derives the Decision for an analyzed trial network. It is the
// single decision rule shared by the full Controller path and the
// incremental Engine path, so the two can never diverge.
func evaluate(trial *topo.Network, res *analysis.Result) Decision {
	d := Decision{Bounds: res.Bounds}
	for i, conn := range trial.Connections {
		if conn.Deadline <= 0 {
			continue
		}
		if math.IsInf(res.Bound(i), 1) || res.Bound(i) > conn.Deadline {
			name := conn.Name
			if name == "" {
				name = fmt.Sprintf("connection %d", i)
			}
			d.Violations = append(d.Violations, Violation{
				Connection: name,
				Bound:      res.Bound(i),
				Deadline:   conn.Deadline,
			})
		}
	}
	if len(d.Violations) > 0 {
		v := d.Violations[0]
		d.Code = CodeDeadlineMissed
		d.Reason = fmt.Sprintf("%s would miss its deadline: bound %.6g > %.6g", v.Connection, v.Bound, v.Deadline)
		return d
	}
	d.Admitted = true
	return d
}

// Test checks whether the candidate could be admitted without mutating the
// controller.
func (c *Controller) Test(cand topo.Connection) (Decision, error) {
	if cand.Deadline <= 0 {
		return Decision{Code: CodeInvalidSpec, Reason: "candidate has no deadline"},
			fmt.Errorf("admission: candidate %q has no deadline", cand.Name)
	}
	trial := c.network(cand)
	if err := trial.Validate(); err != nil {
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	if !trial.Stable() {
		return Decision{Code: CodeUnstable, Reason: "network would be unstable"}, nil
	}
	res, err := c.analyzer.Analyze(trial)
	if err != nil {
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	return evaluate(trial, res), nil
}

// Admit runs Test and, on success, commits the candidate.
func (c *Controller) Admit(cand topo.Connection) (Decision, error) {
	d, err := c.Test(cand)
	if err != nil {
		return d, err
	}
	if d.Admitted {
		c.admitted = append(c.admitted, cand)
	}
	return d, nil
}

// Remove releases a previously admitted connection by name.
func (c *Controller) Remove(name string) bool {
	for i, conn := range c.admitted {
		if conn.Name == name {
			c.admitted = append(c.admitted[:i], c.admitted[i+1:]...)
			return true
		}
	}
	return false
}

// Utilization returns the per-server utilization of the admitted set.
func (c *Controller) Utilization() []float64 {
	return c.network().Utilization()
}

// FillGreedy admits copies of the template connection (numbered names)
// until the first rejection, returning how many were admitted. It is the
// measurement loop used to compare the admission capacity enabled by
// different analyzers.
func (c *Controller) FillGreedy(template topo.Connection, limit int) (int, error) {
	n := 0
	for n < limit {
		cand := template
		cand.Name = fmt.Sprintf("%s#%d", template.Name, c.Count())
		d, err := c.Admit(cand)
		if err != nil {
			return n, err
		}
		if !d.Admitted {
			return n, nil
		}
		n++
	}
	return n, nil
}
