// Sharded admission control over independent subnetworks.
//
// The paper's decomposition only couples connections through shared
// servers: admissions whose routes live in disjoint server-sharing
// components are provably independent (the contracted dependency graph
// never bridges components, see analysis.Components), yet a single Engine
// serializes them through one snapshot chain — every commit invalidates
// every concurrent test. ShardedEngine runs one Engine per shard, each
// with its own versioned snapshot chain, baseline, and commit loop, and
// routes operations to shards by the candidate's component. Disjoint
// workloads therefore test and commit fully in parallel; only an
// operation whose closure spans shards (two components merging through a
// new route) or a rebalance after a release falls back to a global
// epoch-stamped commit under an exclusive lock.
//
// Sharding invariants:
//
//   - Every server is owned by at most one shard (router.owner); a shard
//     owns a server while at least one of its committed connections
//     traverses it (router.refs).
//   - A connection's entire route is owned by its shard, so each shard's
//     admitted set is a union of whole components and its local analysis
//     is bit-identical to the full-network analysis restricted to those
//     components.
//   - Cross-shard operations run under the exclusive lock, so they observe
//     no in-flight shard-local operations and can migrate whole components
//     between shards atomically (epoch-stamped replaceAdmitted commits).
//
// Unlike Engine, a multi-shard engine requires admitted connection names
// to be unique: routing and release resolve connections by name.
package admission

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// ShardedEngine is a goroutine-safe admission controller that partitions
// the fabric into independent components and serves each from its own
// Engine shard. With one shard it is a transparent wrapper around Engine
// (same decisions, same counters, no routing overhead).
type ShardedEngine struct {
	servers  []server.Server
	analyzer analysis.Analyzer
	shards   []*Engine

	// mu is the sharding protocol lock: shard-local operations hold it
	// shared (they may run concurrently with each other), cross-shard
	// commits and rebalances hold it exclusively. It never serializes two
	// operations on disjoint components.
	mu     sync.RWMutex
	router shardRouter

	crossTests   atomic.Uint64
	crossCommits atomic.Uint64
	rebalances   atomic.Uint64
}

// shardRouter maps servers and committed connections to shards. All
// fields are guarded by its own mutex; routing decisions are O(route).
type shardRouter struct {
	mu    sync.Mutex
	owner []int // server -> shard id, -1 while unowned
	refs  []int // server -> committed+in-flight connections traversing it
	load  []int // shard -> committed connections
	conns map[string]*routedConn
	// pending names claimed by in-flight admissions, so two concurrent
	// admits of one name cannot both commit.
	pending map[string]bool
	seq     uint64 // global commit order stamp
}

// routedConn is the router's record of one committed connection.
type routedConn struct {
	shard int
	seq   uint64
	path  []int
}

// NewShardedEngine builds an engine with the given number of shards over
// the fabric. Every shard sees the full server list, so server indices —
// and therefore bounds — are identical to a single Engine's.
func NewShardedEngine(servers []server.Server, analyzer analysis.Analyzer, shards int) (*ShardedEngine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("admission: shard count %d < 1", shards)
	}
	se := &ShardedEngine{analyzer: analyzer}
	for i := 0; i < shards; i++ {
		eng, err := NewEngine(servers, analyzer)
		if err != nil {
			return nil, err
		}
		se.shards = append(se.shards, eng)
	}
	se.servers = se.shards[0].servers
	se.router = shardRouter{
		owner:   make([]int, len(se.servers)),
		refs:    make([]int, len(se.servers)),
		load:    make([]int, shards),
		conns:   make(map[string]*routedConn),
		pending: make(map[string]bool),
	}
	for i := range se.router.owner {
		se.router.owner[i] = -1
	}
	return se, nil
}

// single returns the sole shard when sharding is off, else nil. The
// single-shard engine bypasses the router entirely so its behavior —
// including duplicate-name tolerance and operation ordering — is exactly
// Engine's.
func (se *ShardedEngine) single() *Engine {
	if len(se.shards) == 1 {
		return se.shards[0]
	}
	return nil
}

// Shards returns the number of engine shards.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard exposes one shard's engine for tests and diagnostics.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Analyzer returns the analyzer admission tests run.
func (se *ShardedEngine) Analyzer() analysis.Analyzer { return se.analyzer }

// Incremental reports whether the incremental path is active.
func (se *ShardedEngine) Incremental() bool { return se.shards[0].Incremental() }

// Servers returns a copy of the fabric.
func (se *ShardedEngine) Servers() []server.Server { return se.shards[0].Servers() }

// ForceFull disables the incremental path on every shard.
func (se *ShardedEngine) ForceFull() {
	for _, sh := range se.shards {
		sh.ForceFull()
	}
}

// SetCompactionThreshold forwards to every shard; see Engine.
func (se *ShardedEngine) SetCompactionThreshold(frac float64) {
	for _, sh := range se.shards {
		sh.SetCompactionThreshold(frac)
	}
}

// SetBackgroundPromotion forwards to every shard; see Engine.
func (se *ShardedEngine) SetBackgroundPromotion(on bool) {
	for _, sh := range se.shards {
		sh.SetBackgroundPromotion(on)
	}
}

// ShardStat is a point-in-time summary of one shard.
type ShardStat struct {
	Admitted            int
	Version             uint64
	IncrementalTests    uint64
	FullTests           uint64
	IncrementalReleases uint64
	CompactedReleases   uint64
}

// ShardedStats aggregates the per-shard engine counters plus the
// cross-shard protocol counters.
type ShardedStats struct {
	Stats
	// Shards is the configured shard count.
	Shards int
	// CrossShardCommits counts global epoch-stamped commits: component
	// merges (an admission spanning shards) plus rebalances (a component
	// migrated to an empty shard after a release split one).
	CrossShardCommits uint64
	// Rebalances counts the subset of CrossShardCommits that were
	// release-triggered component migrations.
	Rebalances uint64
	// PerShard summarizes each shard.
	PerShard []ShardStat
}

// Stats aggregates every shard's counters. The embedded Stats sums
// field-wise across shards (cross-shard union analyses count as full
// tests), so a one-shard engine reports exactly Engine.Stats.
func (se *ShardedEngine) Stats() ShardedStats {
	agg := ShardedStats{
		Shards:            len(se.shards),
		CrossShardCommits: se.crossCommits.Load() + se.rebalances.Load(),
		Rebalances:        se.rebalances.Load(),
	}
	for _, sh := range se.shards {
		st := sh.Stats()
		snap := sh.Snapshot()
		agg.IncrementalTests += st.IncrementalTests
		agg.FullTests += st.FullTests
		agg.IncrementalReleases += st.IncrementalReleases
		agg.CompactedReleases += st.CompactedReleases
		agg.BaselineEpoch += st.BaselineEpoch
		agg.CommitConflicts += st.CommitConflicts
		agg.BatchEnvelopes += st.BatchEnvelopes
		agg.BatchOps += st.BatchOps
		agg.BatchCommits += st.BatchCommits
		if agg.AffectedBuckets == nil {
			agg.AffectedBuckets = make([]uint64, len(st.AffectedBuckets))
		}
		for i, v := range st.AffectedBuckets {
			agg.AffectedBuckets[i] += v
		}
		agg.AffectedCount += st.AffectedCount
		agg.AffectedSum += st.AffectedSum
		agg.PerShard = append(agg.PerShard, ShardStat{
			Admitted:            snap.Count(),
			Version:             snap.Version(),
			IncrementalTests:    st.IncrementalTests,
			FullTests:           st.FullTests,
			IncrementalReleases: st.IncrementalReleases,
			CompactedReleases:   st.CompactedReleases,
		})
	}
	agg.FullTests += se.crossTests.Load()
	return agg
}

// SnapshotVersion is the engine's global version: the sum of the shard
// snapshot versions. It increases with every commit anywhere and equals
// Engine's snapshot version exactly when running with one shard.
func (se *ShardedEngine) SnapshotVersion() uint64 {
	var v uint64
	for _, sh := range se.shards {
		v += sh.Snapshot().Version()
	}
	return v
}

// ReadView is the replica-read path: a copy of the admitted set and the
// global version, assembled lock-free from each shard's immutable current
// snapshot. During a concurrent cross-shard migration a connection may
// transiently appear in two shards (deduplicated here by name) or in
// none; readers get eventual consistency, never a torn connection.
func (se *ShardedEngine) ReadView() ([]topo.Connection, uint64) {
	if eng := se.single(); eng != nil {
		s := eng.Snapshot()
		return s.Admitted(), s.Version()
	}
	var conns []topo.Connection
	var version uint64
	seen := make(map[string]bool)
	for _, sh := range se.shards {
		s := sh.Snapshot()
		version += s.Version()
		for _, c := range s.admitted {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			conns = append(conns, c)
		}
	}
	return conns, version
}

// Admitted returns a copy of the currently admitted connections (shard
// order, each shard in its own commit order; exactly Engine's order with
// one shard).
func (se *ShardedEngine) Admitted() []topo.Connection {
	conns, _ := se.ReadView()
	return conns
}

// Count returns the number of admitted connections.
func (se *ShardedEngine) Count() int {
	if eng := se.single(); eng != nil {
		return eng.Count()
	}
	n := 0
	for _, sh := range se.shards {
		n += sh.Snapshot().Count()
	}
	return n
}

// Utilization returns the per-server utilization of the admitted set.
func (se *ShardedEngine) Utilization() []float64 {
	conns, _ := se.ReadView()
	net := &topo.Network{Servers: se.servers, Connections: conns}
	return net.Utilization()
}

// WarmBaseline synchronously materializes every shard's baseline.
func (se *ShardedEngine) WarmBaseline() error {
	for _, sh := range se.shards {
		if err := sh.WarmBaseline(); err != nil {
			return err
		}
	}
	return nil
}

// ownersOf returns the distinct shards owning servers of the route, in
// ascending order. Caller must hold r.mu.
func (r *shardRouter) ownersOf(path []int) []int {
	var owners []int
	for _, s := range path {
		o := r.owner[s]
		if o < 0 {
			continue
		}
		dup := false
		for _, k := range owners {
			if k == o {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, o)
		}
	}
	sort.Ints(owners)
	return owners
}

// leastLoaded picks the shard with the fewest committed connections
// (lowest id on ties). Caller must hold r.mu.
func (r *shardRouter) leastLoaded() int {
	best := 0
	for i := 1; i < len(r.load); i++ {
		if r.load[i] < r.load[best] {
			best = i
		}
	}
	return best
}

// uniqueServers appends the distinct in-range servers of path to buf.
func uniqueServers(buf []int, path []int, n int) []int {
	for _, s := range path {
		if s < 0 || s >= n {
			continue
		}
		dup := false
		for _, t := range buf {
			if t == s {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, s)
		}
	}
	return buf
}

// claim routes an admission candidate: it either pins the route's servers
// to one shard (reserving them for the duration of the analysis) or
// reports that the route spans shards (cross) or that the name is already
// taken (dup). Caller must hold se.mu at least shared.
func (r *shardRouter) claim(cand topo.Connection) (shard int, cross, dup bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conns[cand.Name] != nil || r.pending[cand.Name] {
		return 0, false, true
	}
	owners := r.ownersOf(cand.Path)
	if len(owners) > 1 {
		return 0, true, false
	}
	if len(owners) == 1 {
		shard = owners[0]
	} else {
		shard = r.leastLoaded()
	}
	for _, s := range uniqueServers(nil, cand.Path, len(r.owner)) {
		if r.owner[s] < 0 {
			r.owner[s] = shard
		}
		r.refs[s]++
	}
	r.pending[cand.Name] = true
	return shard, false, false
}

// unclaim releases a claim after a rejected or failed admission.
func (r *shardRouter) unclaim(cand topo.Connection) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, cand.Name)
	r.dropRefs(cand.Path)
}

// dropRefs decrements the route's server refcounts, freeing ownership of
// servers no committed or in-flight connection traverses anymore. Caller
// must hold r.mu.
func (r *shardRouter) dropRefs(path []int) {
	for _, s := range uniqueServers(nil, path, len(r.owner)) {
		r.refs[s]--
		if r.refs[s] == 0 {
			r.owner[s] = -1
		}
	}
}

// confirm converts a claim into a committed routing record and assigns
// the connection its global commit sequence number.
func (r *shardRouter) confirm(cand topo.Connection, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, cand.Name)
	r.conns[cand.Name] = &routedConn{shard: shard, seq: r.seq, path: cand.Path}
	r.seq++
	r.load[shard]++
}

// validRoute reports whether every hop is an in-range server index; the
// router only tracks valid routes, invalid candidates go straight to a
// shard engine for the canonical rejection.
func (se *ShardedEngine) validRoute(cand topo.Connection) bool {
	if cand.Deadline <= 0 || len(cand.Path) == 0 {
		return false
	}
	for _, s := range cand.Path {
		if s < 0 || s >= len(se.servers) {
			return false
		}
	}
	return true
}

// Test checks whether the candidate could be admitted; see Engine.Test.
func (se *ShardedEngine) Test(cand topo.Connection) (Decision, error) {
	return se.TestContext(context.Background(), cand)
}

// TestContext runs a dry admission test against the candidate's shard, or
// against the cross-shard union snapshot when its route spans shards.
func (se *ShardedEngine) TestContext(ctx context.Context, cand topo.Connection) (Decision, error) {
	if eng := se.single(); eng != nil {
		return eng.TestContext(ctx, cand)
	}
	return se.test(ctx, nil, cand)
}

// TestWith is the degraded-path dry test with an explicit analyzer.
func (se *ShardedEngine) TestWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	if eng := se.single(); eng != nil {
		return eng.TestWith(ctx, analyzer, cand)
	}
	return se.test(ctx, analyzer, cand)
}

// test is the multi-shard dry test: analyzer nil means the primary
// analyzer on the shard's incremental path, non-nil forces a full
// analysis with that analyzer (the degradation hook).
func (se *ShardedEngine) test(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	if !se.validRoute(cand) {
		if analyzer != nil {
			return se.shards[0].TestWith(ctx, analyzer, cand)
		}
		return se.shards[0].TestContext(ctx, cand)
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	se.router.mu.Lock()
	owners := se.router.ownersOf(cand.Path)
	shard := se.router.leastLoaded()
	if len(owners) == 1 {
		shard = owners[0]
	}
	se.router.mu.Unlock()
	if len(owners) <= 1 {
		if analyzer != nil {
			return se.shards[shard].TestWith(ctx, analyzer, cand)
		}
		return se.shards[shard].TestContext(ctx, cand)
	}
	union := se.gatherUnion(owners)
	if analyzer == nil {
		analyzer = se.analyzer
	}
	se.crossTests.Add(1)
	d, err := se.unionTest(ctx, analyzer, union, cand)
	return d, err
}

// Admit tests and commits the candidate; see Engine.Admit.
func (se *ShardedEngine) Admit(cand topo.Connection) (Decision, error) {
	return se.AdmitContext(context.Background(), cand)
}

// AdmitContext routes the admission to the candidate's shard. A candidate
// whose route would merge components of different shards falls back to the
// global cross-shard commit.
func (se *ShardedEngine) AdmitContext(ctx context.Context, cand topo.Connection) (Decision, error) {
	if eng := se.single(); eng != nil {
		return eng.AdmitContext(ctx, cand)
	}
	return se.admit(ctx, nil, cand)
}

// AdmitWith is the degraded admission path; see Engine.AdmitWith.
func (se *ShardedEngine) AdmitWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	if eng := se.single(); eng != nil {
		return eng.AdmitWith(ctx, analyzer, cand)
	}
	return se.admit(ctx, analyzer, cand)
}

// admit is the multi-shard admission: claim the route, run the shard-local
// engine under the shared lock, confirm or unclaim. analyzer nil selects
// the primary incremental path.
func (se *ShardedEngine) admit(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	if !se.validRoute(cand) {
		// Invalid candidates never touch router state; the shard engine
		// reproduces Engine's canonical decision and error.
		if analyzer != nil {
			return se.shards[0].AdmitWith(ctx, analyzer, cand)
		}
		return se.shards[0].AdmitContext(ctx, cand)
	}
	se.mu.RLock()
	shard, cross, dup := se.router.claim(cand)
	if dup {
		se.mu.RUnlock()
		return Decision{Code: CodeInvalidSpec, Reason: fmt.Sprintf("connection %q already admitted", cand.Name)},
			fmt.Errorf("admission: connection %q already admitted", cand.Name)
	}
	if cross {
		se.mu.RUnlock()
		return se.admitCross(ctx, analyzer, cand)
	}
	var d Decision
	var err error
	if analyzer != nil {
		d, err = se.shards[shard].AdmitWith(ctx, analyzer, cand)
	} else {
		d, err = se.shards[shard].AdmitContext(ctx, cand)
	}
	if err == nil && d.Admitted {
		se.router.confirm(cand, shard)
	} else {
		se.router.unclaim(cand)
	}
	se.mu.RUnlock()
	return d, err
}

// seqConn pairs a committed connection with its global commit stamp.
type seqConn struct {
	conn  topo.Connection
	seq   uint64
	shard int
}

// gatherUnion assembles the admitted sets of the given shards in global
// commit order. Connections a concurrent commit has installed in a shard
// snapshot but not yet confirmed in the router sort after all confirmed
// ones, preserving snapshot order (only reachable from the dry-test path;
// cross-shard commits hold the exclusive lock and see no such gap).
func (se *ShardedEngine) gatherUnion(owners []int) []seqConn {
	var union []seqConn
	se.router.mu.Lock()
	defer se.router.mu.Unlock()
	pendingSeq := uint64(math.MaxUint64/2) + 1
	for _, o := range owners {
		snap := se.shards[o].Snapshot()
		for _, c := range snap.admitted {
			sc := seqConn{conn: c, shard: o}
			if rc := se.router.conns[c.Name]; rc != nil && rc.shard == o {
				sc.seq = rc.seq
			} else {
				sc.seq = pendingSeq
				pendingSeq++
			}
			union = append(union, sc)
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i].seq < union[j].seq })
	return union
}

// unionTest runs one full admission analysis over the union of the
// involved shards plus the candidate. Because every server the trial
// loads is owned by an involved shard, stability and deadline checks over
// the union are identical to the full network's (uninvolved components
// cannot interact with it).
func (se *ShardedEngine) unionTest(ctx context.Context, analyzer analysis.Analyzer, union []seqConn, cand topo.Connection) (Decision, error) {
	trial := &topo.Network{Servers: se.servers}
	for _, sc := range union {
		trial.Connections = append(trial.Connections, sc.conn)
	}
	trial.Connections = append(trial.Connections, cand)
	if err := trial.Validate(); err != nil {
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	if !trial.Stable() {
		return Decision{Code: CodeUnstable, Reason: "network would be unstable"}, nil
	}
	res, err := analysis.AnalyzeWithContext(ctx, analyzer, trial)
	if err != nil {
		if IsCanceled(err) {
			return Decision{}, err
		}
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	return evaluate(trial, res), nil
}

// admitCross admits a candidate whose route spans shards: under the
// exclusive lock (no shard-local operation in flight) it analyzes the
// union of the involved shards plus the candidate, and on success migrates
// the candidate's merged component into one winner shard with epoch-
// stamped commits on every involved engine.
func (se *ShardedEngine) admitCross(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.admitCrossLocked(ctx, analyzer, cand)
}

// admitCrossLocked is the body of admitCross; the batch path calls it
// directly while already holding the exclusive lock. Caller must hold
// se.mu exclusively.
func (se *ShardedEngine) admitCrossLocked(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	if se.router.conns[cand.Name] != nil {
		return Decision{Code: CodeInvalidSpec, Reason: fmt.Sprintf("connection %q already admitted", cand.Name)},
			fmt.Errorf("admission: connection %q already admitted", cand.Name)
	}
	se.router.mu.Lock()
	owners := se.router.ownersOf(cand.Path)
	se.router.mu.Unlock()
	if len(owners) <= 1 {
		// The spanning components vanished before we got the lock (their
		// connections were released); retry as a plain shard-local op.
		shard := 0
		if len(owners) == 1 {
			shard = owners[0]
		} else {
			se.router.mu.Lock()
			shard = se.router.leastLoaded()
			se.router.mu.Unlock()
		}
		var d Decision
		var err error
		if analyzer != nil {
			d, err = se.shards[shard].AdmitWith(ctx, analyzer, cand)
		} else {
			d, err = se.shards[shard].AdmitContext(ctx, cand)
		}
		if err == nil && d.Admitted {
			se.router.mu.Lock()
			for _, s := range uniqueServers(nil, cand.Path, len(se.router.owner)) {
				if se.router.owner[s] < 0 {
					se.router.owner[s] = shard
				}
				se.router.refs[s]++
			}
			se.router.mu.Unlock()
			se.router.confirm(cand, shard)
		}
		return d, err
	}
	union := se.gatherUnion(owners)
	if analyzer == nil {
		analyzer = se.analyzer
	}
	se.crossTests.Add(1)
	d, err := se.unionTest(ctx, analyzer, union, cand)
	if err != nil || !d.Admitted {
		return d, err
	}

	// Commit: compute the candidate's merged component over the union and
	// migrate it wholesale into the involved shard holding the most of it.
	trial := &topo.Network{Servers: se.servers}
	for _, sc := range union {
		trial.Connections = append(trial.Connections, sc.conn)
	}
	trial.Connections = append(trial.Connections, cand)
	view := analysis.Components(trial)
	candComp := view.Conn[len(union)]
	perShard := make(map[int]int)
	for i, sc := range union {
		if view.Conn[i] == candComp {
			perShard[sc.shard]++
		}
	}
	winner := owners[0]
	for _, o := range owners[1:] {
		if perShard[o] > perShard[winner] {
			winner = o
		}
	}

	se.router.mu.Lock()
	var merged []seqConn // winner's survivors plus migrated members
	kept := make(map[int][]topo.Connection)
	for i, sc := range union {
		inComp := view.Conn[i] == candComp
		if sc.shard == winner || inComp {
			merged = append(merged, sc)
		} else {
			kept[sc.shard] = append(kept[sc.shard], sc.conn)
		}
		if inComp && sc.shard != winner {
			rc := se.router.conns[sc.conn.Name]
			se.router.load[rc.shard]--
			se.router.load[winner]++
			rc.shard = winner
			for _, s := range uniqueServers(nil, rc.path, len(se.router.owner)) {
				se.router.owner[s] = winner
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
	next := make([]topo.Connection, 0, len(merged)+1)
	for _, sc := range merged {
		next = append(next, sc.conn)
	}
	next = append(next, cand)
	for _, s := range uniqueServers(nil, cand.Path, len(se.router.owner)) {
		se.router.owner[s] = winner
		se.router.refs[s]++
	}
	se.router.conns[cand.Name] = &routedConn{shard: winner, seq: se.router.seq, path: cand.Path}
	se.router.seq++
	se.router.load[winner]++
	se.router.mu.Unlock()

	for _, o := range owners {
		if o == winner {
			se.shards[o].replaceAdmitted(next)
		} else {
			se.shards[o].replaceAdmitted(kept[o])
		}
		if se.shards[o].inc != nil && se.shards[o].prewarm {
			se.shards[o].scheduleWarm()
		}
	}
	se.crossCommits.Add(1)
	return d, nil
}

// Release removes an admitted connection by name; see Engine.Release.
// When the removal may have split its shard's component set and an empty
// shard exists, a background-style rebalance migrates one component out
// under the exclusive lock, restoring shard parallelism.
func (se *ShardedEngine) Release(name string) (ReleaseInfo, bool) {
	if eng := se.single(); eng != nil {
		return eng.Release(name)
	}
	se.mu.RLock()
	se.router.mu.Lock()
	shard := -1
	if rc := se.router.conns[name]; rc != nil {
		shard = rc.shard
	}
	se.router.mu.Unlock()
	if shard < 0 {
		se.mu.RUnlock()
		return ReleaseInfo{}, false
	}
	info, ok := se.shards[shard].Release(name)
	if ok {
		se.router.mu.Lock()
		// Re-read: a concurrent release of the same name may have already
		// dropped the record (only one engine release succeeds).
		if cur := se.router.conns[name]; cur != nil {
			delete(se.router.conns, name)
			se.router.load[cur.shard]--
			se.router.dropRefs(cur.path)
		}
		se.router.mu.Unlock()
	}
	se.mu.RUnlock()
	if ok && se.wantRebalance(shard) {
		se.rebalance(shard)
	}
	return info, ok
}

// Remove is Release without the report.
func (se *ShardedEngine) Remove(name string) bool {
	_, ok := se.Release(name)
	return ok
}

// wantRebalance cheaply checks whether migrating a component off the
// shard could restore parallelism: some other shard is empty and the
// source holds at least two connections (a one-connection shard holds at
// most one component).
func (se *ShardedEngine) wantRebalance(from int) bool {
	se.router.mu.Lock()
	defer se.router.mu.Unlock()
	if se.router.load[from] < 2 {
		return false
	}
	for i, l := range se.router.load {
		if i != from && l == 0 {
			return true
		}
	}
	return false
}

// rebalance migrates the smallest independent component of the source
// shard to an empty shard under the exclusive lock — the release-splits-
// a-component half of the cross-shard protocol. Both engines take an
// epoch-stamped replaceAdmitted commit.
func (se *ShardedEngine) rebalance(from int) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.router.mu.Lock()
	target := -1
	for i, l := range se.router.load {
		if i != from && l == 0 {
			target = i
			break
		}
	}
	fromLoad := se.router.load[from]
	se.router.mu.Unlock()
	if target < 0 || fromLoad < 2 {
		return
	}
	snap := se.shards[from].Snapshot()
	net := &topo.Network{Servers: se.servers, Connections: snap.admitted}
	view := analysis.Components(net)
	if view.Count < 2 {
		return
	}
	smallest := 0
	for c := 1; c < view.Count; c++ {
		if view.Sizes[c] < view.Sizes[smallest] {
			smallest = c
		}
	}
	var moved, keptConns []topo.Connection
	for i, c := range snap.admitted {
		if view.Conn[i] == smallest {
			moved = append(moved, c)
		} else {
			keptConns = append(keptConns, c)
		}
	}
	se.router.mu.Lock()
	for _, c := range moved {
		rc := se.router.conns[c.Name]
		if rc == nil || rc.shard != from {
			continue
		}
		rc.shard = target
		se.router.load[from]--
		se.router.load[target]++
		for _, s := range uniqueServers(nil, rc.path, len(se.router.owner)) {
			se.router.owner[s] = target
		}
	}
	se.router.mu.Unlock()
	se.shards[from].replaceAdmitted(keptConns)
	se.shards[target].replaceAdmitted(moved)
	for _, o := range []int{from, target} {
		if se.shards[o].inc != nil && se.shards[o].prewarm {
			se.shards[o].scheduleWarm()
		}
	}
	se.rebalances.Add(1)
}

// FillGreedy admits numbered copies of the template until the first
// rejection; see Engine.FillGreedy.
func (se *ShardedEngine) FillGreedy(template topo.Connection, limit int) (int, error) {
	return se.FillGreedyContext(context.Background(), template, limit)
}

// FillGreedyContext is FillGreedy with cooperative cancellation.
func (se *ShardedEngine) FillGreedyContext(ctx context.Context, template topo.Connection, limit int) (int, error) {
	if eng := se.single(); eng != nil {
		return eng.FillGreedyContext(ctx, template, limit)
	}
	n := 0
	for n < limit {
		cand := template
		cand.Name = fmt.Sprintf("%s#%d", template.Name, se.Count())
		d, err := se.AdmitContext(ctx, cand)
		if err != nil {
			return n, err
		}
		if !d.Admitted {
			return n, nil
		}
		n++
	}
	return n, nil
}
