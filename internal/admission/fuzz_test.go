package admission

import (
	"fmt"
	"math/rand"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// FuzzIncrementalEquivalence is the differential fuzzer for the tentpole
// invariant: over fuzzer-chosen random feedforward networks and deadline
// mixes, replaying the same admission sequence through the full-analysis
// Controller and the incremental Engine must produce bit-identical
// decisions at every step. shape packs the network dimensions so the two
// int64 inputs stay trivially mutable; out-of-range values are folded into
// the valid domain rather than rejected, keeping every input productive.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(387))
	f.Add(int64(42), int64(7777))
	f.Add(int64(-9), int64(123456789))
	f.Add(int64(2026), int64(31337))
	f.Fuzz(func(t *testing.T, seed, shape int64) {
		if shape < 0 {
			shape = -shape
		}
		nServers := int(shape%9) + 2               // 2..10
		nConns := int((shape/9)%10) + 2            // 2..11
		util := 0.1 + float64((shape/90)%80)/100.0 // 0.10..0.89
		net, err := topo.RandomFeedforward(nServers, nConns, util, seed)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed ^ shape))
		for i := range net.Connections {
			switch rng.Intn(4) {
			case 0:
				net.Connections[i].Deadline = 0.5 + 5*rng.Float64()
			case 1:
				net.Connections[i].Deadline = 0
			default:
				net.Connections[i].Deadline = 200
			}
		}
		for _, analyzer := range []analysis.Analyzer{analysis.Integrated{}, analysis.Decomposed{}} {
			driveDifferential(t, fmt.Sprintf("fuzz/%s", analyzer.Name()), analyzer, net)
		}
	})
}
