package admission

import (
	"context"
	"fmt"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// benchOps builds one envelope of n admissions over the tandem.
func benchOps(net *topo.Network, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		c := net.Connections[0]
		c.Name = fmt.Sprintf("bb%d", i)
		ops[i] = Op{Kind: OpAdmit, Candidate: c}
	}
	return ops
}

func BenchmarkSequentialAdmits32(b *testing.B) {
	net := disjointTandem(b, 8)
	ops := benchOps(net, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := NewEngine(net.Servers, analysis.Integrated{})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.WarmBaseline(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, op := range ops {
			if _, err := eng.Admit(op.Candidate); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkApplyBatch32(b *testing.B) {
	net := disjointTandem(b, 8)
	ops := benchOps(net, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := NewEngine(net.Servers, analysis.Integrated{})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.WarmBaseline(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.ApplyBatch(context.Background(), ops); err != nil {
			b.Fatal(err)
		}
	}
}
