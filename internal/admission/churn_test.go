package admission

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// disjointTandem builds an n-server FIFO tandem carrying n/2 connections
// on disjoint 2-hop routes, all with loose deadlines: every release has an
// empty interference closure.
func disjointTandem(tb testing.TB, n int) *topo.Network {
	tb.Helper()
	servers := make([]server.Server, n)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("s%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	conns := make([]topo.Connection, n/2)
	for i := range conns {
		conns[i] = topo.Connection{
			Name:       fmt.Sprintf("c%d", i),
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.05},
			AccessRate: 1,
			Path:       []int{2 * i, 2*i + 1},
			Deadline:   100,
		}
	}
	net := &topo.Network{Servers: servers, Connections: conns}
	if err := net.Validate(); err != nil {
		tb.Fatal(err)
	}
	return net
}

// driveChurn replays one admit→release→re-admit schedule through an Engine
// and checks, after every mutation, that a probe admission test is
// bit-identical to a fresh Controller replaying the engine's admitted set
// from scratch — the acceptance bar for incremental removal.
func driveChurn(t *testing.T, label string, analyzer analysis.Analyzer, net *topo.Network, seed int64) {
	t.Helper()
	eng, err := NewEngine(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	probe := net.Connections[len(net.Connections)-1]
	probe.Name = "probe"
	probe.Deadline = 100
	check := func(step string) {
		t.Helper()
		ctrl, err := New(net.Servers, analyzer)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range eng.Admitted() {
			if _, err := ctrl.Admit(c); err != nil {
				t.Fatalf("%s: fresh controller replay: %v", step, err)
			}
		}
		if ctrl.Count() != eng.Count() {
			t.Fatalf("%s: fresh replay admitted %d, engine holds %d", step, ctrl.Count(), eng.Count())
		}
		wantD, wantErr := ctrl.Test(probe)
		gotD, gotErr := eng.Test(probe)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: probe error diverged: controller %v, engine %v", step, wantErr, gotErr)
		}
		requireSameDecision(t, step+"/probe", wantD, gotD)
	}

	rng := rand.New(rand.NewSource(seed))
	var names []string
	released := make(map[string]topo.Connection)
	for step := 0; step < 3*len(net.Connections); step++ {
		op := rng.Intn(3)
		switch {
		case op == 0 && len(names) > 0: // release a random admitted connection
			i := rng.Intn(len(names))
			name := names[i]
			var conn topo.Connection
			for _, c := range eng.Admitted() {
				if c.Name == name {
					conn = c
					break
				}
			}
			info, ok := eng.Release(name)
			if !ok {
				t.Fatalf("%s/step%d: release %q failed", label, step, name)
			}
			if info.Affected < 0 && eng.Incremental() && eng.Count() > 0 {
				// A cold snapshot (no baseline yet) legitimately reports -1;
				// anything else must have scoped the closure.
				_ = info
			}
			released[name] = conn
			names = append(names[:i], names[i+1:]...)
		case op == 1 && len(released) > 0: // re-admit a released connection
			for name, conn := range released {
				if d, err := eng.Admit(conn); err == nil && d.Admitted {
					names = append(names, name)
				}
				delete(released, name)
				break
			}
		default: // admit the next fresh connection
			idx := step % len(net.Connections)
			cand := net.Connections[idx]
			cand.Name = fmt.Sprintf("churn%d", step)
			if d, err := eng.Admit(cand); err == nil && d.Admitted {
				names = append(names, cand.Name)
			}
		}
		check(fmt.Sprintf("%s/step%d", label, step))
	}
}

// TestChurnMatchesFreshController is the differential acceptance suite for
// the release path: over the 26-seed feedforward corpus, every
// admit→release→re-admit schedule must leave the engine bit-identical to a
// fresh full re-analysis, for both incremental analyzers.
func TestChurnMatchesFreshController(t *testing.T) {
	seeds := int64(26)
	if testing.Short() {
		seeds = 6
	}
	for _, analyzer := range []analysis.Analyzer{analysis.Integrated{}, analysis.Decomposed{}} {
		for seed := int64(0); seed < seeds; seed++ {
			net, err := topo.RandomFeedforward(6, 6, 0.5, seed)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 17))
			for i := range net.Connections {
				if rng.Intn(4) == 0 {
					net.Connections[i].Deadline = 1 + 4*rng.Float64()
				} else {
					net.Connections[i].Deadline = 100
				}
			}
			driveChurn(t, fmt.Sprintf("%s/seed%d", analyzer.Name(), seed), analyzer, net, seed)
		}
	}
}

// TestReleaseUsesIncrementalPath pins the tentpole engaging: releasing
// from a warm baseline must count as an incremental release and leave a
// promoted baseline behind, so the following test stays incremental.
func TestReleaseUsesIncrementalPath(t *testing.T) {
	// Disjoint 2-hop routes on a tandem: any release has an empty closure,
	// so it must take the shrink path under the default threshold.
	net := disjointTandem(t, 12)
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		if _, err := eng.Admit(net.Connections[i]); err != nil {
			t.Fatal(err)
		}
	}
	info, ok := eng.Release(net.Connections[2].Name)
	if !ok {
		t.Fatal("release failed")
	}
	if !info.Incremental {
		t.Fatalf("release from a warm baseline was not incremental: %+v", info)
	}
	if info.Affected < 0 {
		t.Fatalf("incremental release did not scope a closure: %+v", info)
	}
	st := eng.Stats()
	if st.IncrementalReleases != 1 || st.CompactedReleases != 0 {
		t.Fatalf("release counters: %+v", st)
	}
	if st.BaselineEpoch == 0 {
		t.Fatalf("no baseline epoch recorded: %+v", st)
	}
	// The promoted shrunken baseline keeps the next test incremental.
	before := eng.Stats().IncrementalTests
	if _, err := eng.Test(net.Connections[2]); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().IncrementalTests != before+1 {
		t.Fatal("test after incremental release fell off the incremental path")
	}
}

// TestReleaseCompactionFallback forces the compaction path (threshold -1)
// and checks the engine stays exact: the baseline is dropped, the release
// is counted as compacted, and later decisions still match a fresh
// controller.
func TestReleaseCompactionFallback(t *testing.T) {
	net, err := topo.RandomFeedforward(5, 6, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 100
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetCompactionThreshold(-1)
	eng.SetBackgroundPromotion(false)
	for _, c := range net.Connections[:5] {
		if _, err := eng.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	info, ok := eng.Release(net.Connections[1].Name)
	if !ok {
		t.Fatal("release failed")
	}
	if info.Incremental {
		t.Fatalf("threshold -1 still shrank incrementally: %+v", info)
	}
	st := eng.Stats()
	if st.CompactedReleases != 1 || st.IncrementalReleases != 0 {
		t.Fatalf("release counters: %+v", st)
	}
	ctrl, err := New(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.Admitted() {
		if _, err := ctrl.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	cand := net.Connections[5]
	wantD, _ := ctrl.Test(cand)
	gotD, _ := eng.Test(cand)
	requireSameDecision(t, "after-compaction", wantD, gotD)
}

// TestChurnConcurrent hammers one engine with concurrent admits, releases,
// and reads; under -race this is the data-race check for the release
// commit protocol and the background re-promotion goroutine. The final
// admitted set must still prove every deadline under a full re-analysis.
func TestChurnConcurrent(t *testing.T) {
	net, err := topo.RandomFeedforward(6, 1, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	template := net.Connections[0]
	template.Deadline = 1000

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-%d", g, i)
				cand := template
				cand.Name = name
				if _, err := eng.Admit(cand); err != nil {
					t.Errorf("admit %s: %v", name, err)
					return
				}
				eng.Test(cand)
				if i%2 == 1 {
					// Release the connection admitted two iterations ago so
					// shrinks race with concurrent admits and tests.
					eng.Release(fmt.Sprintf("w%d-%d", g, i-1))
				}
				eng.Count()
				eng.Stats()
			}
		}(g)
	}
	wg.Wait()

	// Most admissions are rejected on this near-saturated fabric, so the
	// final set may be small (even empty after releases); whatever
	// survived the churn must still prove every deadline under a full
	// re-analysis.
	final := &topo.Network{Servers: eng.Servers(), Connections: eng.Admitted()}
	if len(final.Connections) > 0 {
		res, err := analysis.Integrated{}.Analyze(final)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range final.Connections {
			if res.Bound(i) > c.Deadline {
				t.Errorf("committed connection %s violates its deadline: %g > %g", c.Name, res.Bound(i), c.Deadline)
			}
		}
	}
	// Churn must not corrupt the version chain: one bump per successful
	// mutation (admits + releases), monotonic.
	st := eng.Stats()
	t.Logf("stats after churn: %+v, version %d, count %d", st, eng.Snapshot().Version(), eng.Count())
}
