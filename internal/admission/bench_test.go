package admission

import (
	"fmt"
	"testing"
	"time"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// benchNetwork builds the benchmark fabric from the issue's acceptance
// scenario: a 32-switch tandem carrying 200 admitted connections with
// short contiguous routes, plus a 2-hop candidate at the tail whose
// interference closure touches only a handful of them. Rates are scaled so
// the busiest server runs at 55% utilization.
func benchNetwork(tb testing.TB) (*topo.Network, topo.Connection) {
	tb.Helper()
	const nServers = 32
	const nConns = 200
	servers := make([]server.Server, nServers)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("sw%d", i), Capacity: 1, Discipline: server.FIFO}
	}
	load := make([]int, nServers)
	paths := make([][]int, nConns)
	for i := 0; i < nConns; i++ {
		hops := 2 + i%3
		start := (i * 7) % (nServers - hops)
		path := make([]int, hops)
		for h := range path {
			path[h] = start + h
			load[start+h]++
		}
		paths[i] = path
	}
	maxLoad := 1
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	rho := 0.55 / float64(maxLoad+1) // +1 leaves room for the candidate
	conns := make([]topo.Connection, nConns)
	for i := range conns {
		conns[i] = topo.Connection{
			Name:       fmt.Sprintf("bench%d", i),
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: rho},
			AccessRate: 1,
			Path:       paths[i],
			Deadline:   10000,
		}
	}
	cand := topo.Connection{
		Name:       "cand",
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: rho},
		AccessRate: 1,
		Path:       []int{nServers - 2, nServers - 1},
		Deadline:   10000,
	}
	net := &topo.Network{Servers: servers, Connections: conns}
	if err := net.Validate(); err != nil {
		tb.Fatal(err)
	}
	return net, cand
}

// fullController returns a Controller preloaded with the benchmark's
// admitted set (seeded directly; admitting through the API would run 200
// full analyses of setup).
func fullController(tb testing.TB, net *topo.Network) *Controller {
	tb.Helper()
	ctrl, err := New(net.Servers, analysis.Integrated{})
	if err != nil {
		tb.Fatal(err)
	}
	ctrl.admitted = net.Connections
	return ctrl
}

// warmEngine returns an Engine preloaded with the benchmark's admitted set
// and a built baseline, the steady state a long-running daemon sits in.
func warmEngine(tb testing.TB, net *topo.Network, cand topo.Connection) *Engine {
	tb.Helper()
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		tb.Fatal(err)
	}
	eng.snap.Store(&Snapshot{eng: eng, admitted: net.Connections})
	d, err := eng.Test(cand) // builds the baseline
	if err != nil {
		tb.Fatal(err)
	}
	if !d.Admitted {
		tb.Fatalf("benchmark candidate rejected: %+v", d)
	}
	if st := eng.Stats(); st.IncrementalTests == 0 {
		tb.Fatalf("benchmark engine is not on the incremental path: %+v", st)
	}
	return eng
}

func runFullTest(b *testing.B, net *topo.Network, cand topo.Connection) {
	ctrl := fullController(b, net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ctrl.Test(cand)
		if err != nil || !d.Admitted {
			b.Fatalf("full test failed: %+v %v", d, err)
		}
	}
}

func runIncrementalTest(b *testing.B, net *topo.Network, cand topo.Connection) {
	eng := warmEngine(b, net, cand)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := eng.Test(cand)
		if err != nil || !d.Admitted {
			b.Fatalf("incremental test failed: %+v %v", d, err)
		}
	}
}

// BenchmarkFullTest is one admission test via full re-analysis of the
// 201-connection trial network.
func BenchmarkFullTest(b *testing.B) {
	net, cand := benchNetwork(b)
	runFullTest(b, net, cand)
}

// BenchmarkIncrementalTest is the same admission test via baseline replay;
// the acceptance bar is >=5x faster than BenchmarkFullTest.
func BenchmarkIncrementalTest(b *testing.B) {
	net, cand := benchNetwork(b)
	runIncrementalTest(b, net, cand)
}

// BenchmarkAdmission groups both paths under one name for the CI smoke job
// (go test -bench=Admission -benchtime=1x).
func BenchmarkAdmission(b *testing.B) {
	net, cand := benchNetwork(b)
	b.Run("FullTest", func(b *testing.B) { runFullTest(b, net, cand) })
	b.Run("IncrementalTest", func(b *testing.B) { runIncrementalTest(b, net, cand) })
}

// churnEngine returns a warm engine holding the benchmark's admitted set
// plus the candidate, ready for release/re-admit cycles. invalidating
// configures the pre-tentpole behavior: every release drops the baseline
// (no shrink, no background re-promotion), so the following admission pays
// a full re-analysis to rebuild it.
func churnEngine(tb testing.TB, net *topo.Network, cand topo.Connection, invalidating bool) *Engine {
	tb.Helper()
	eng := warmEngine(tb, net, cand)
	if invalidating {
		eng.SetCompactionThreshold(-1)
		eng.SetBackgroundPromotion(false)
	}
	d, err := eng.Admit(cand)
	if err != nil || !d.Admitted {
		tb.Fatalf("benchmark candidate not admitted: %+v %v", d, err)
	}
	return eng
}

// releaseAndWarm is one measured removal: release the candidate and pay
// whatever it takes to leave the engine ready for the next incremental
// admission. An incremental release promotes the shrunken baseline inline,
// so the warm-up is free; a baseline-invalidating release forces a full
// re-analysis here — the cost the tentpole removes from the churn path.
// The subsequent re-admission costs one extend in both worlds and is
// restored outside the timer by the callers.
func releaseAndWarm(tb testing.TB, eng *Engine, cand topo.Connection) {
	tb.Helper()
	if _, ok := eng.Release(cand.Name); !ok {
		tb.Fatalf("release %q failed", cand.Name)
	}
	if err := eng.WarmBaseline(); err != nil {
		tb.Fatalf("warm baseline: %v", err)
	}
}

// readmit restores the benchmark state after a measured release.
func readmit(tb testing.TB, eng *Engine, cand topo.Connection) {
	tb.Helper()
	d, err := eng.Admit(cand)
	if err != nil || !d.Admitted {
		tb.Fatalf("re-admit failed: %+v %v", d, err)
	}
}

// BenchmarkRelease measures one removal on the 200-connection, 32-switch
// tandem: Incremental shrinks the baseline in place (scoped unit-trace
// replay), Invalidating (the pre-tentpole behavior) drops it and pays the
// full re-analysis the next admission would otherwise absorb. The
// acceptance bar is Incremental >= 5x faster, enforced by
// TestReleaseSpeedup.
func BenchmarkRelease(b *testing.B) {
	net, cand := benchNetwork(b)
	run := func(b *testing.B, invalidating bool) {
		eng := churnEngine(b, net, cand, invalidating)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			releaseAndWarm(b, eng, cand)
			b.StopTimer()
			readmit(b, eng, cand)
			b.StartTimer()
		}
	}
	b.Run("Incremental", func(b *testing.B) { run(b, false) })
	b.Run("Invalidating", func(b *testing.B) { run(b, true) })
}

// TestReleaseSpeedup enforces the release acceptance bar in the regular
// test run: on the 200-connection benchmark fabric the incremental
// removal must be at least 5x faster than the baseline-invalidating
// removal. Wall-clock minima over a few rounds keep scheduler noise out
// of the ratio.
func TestReleaseSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	net, cand := benchNetwork(t)
	incr := churnEngine(t, net, cand, false)
	inval := churnEngine(t, net, cand, true)

	minDur := func(eng *Engine) time.Duration {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			releaseAndWarm(t, eng, cand)
			if d := time.Since(start); d < best {
				best = d
			}
			readmit(t, eng, cand)
		}
		return best
	}
	full := minDur(inval)
	fast := minDur(incr)
	ratio := float64(full) / float64(fast)
	t.Logf("invalidating %v, incremental %v, speedup %.1fx", full, fast, ratio)
	if ratio < 5 {
		t.Fatalf("release speedup %.1fx below the 5x acceptance bar (invalidating %v, incremental %v)", ratio, full, fast)
	}
	st := incr.Stats()
	if st.IncrementalReleases == 0 {
		t.Fatalf("incremental engine never took the shrink path: %+v", st)
	}
	if st := inval.Stats(); st.IncrementalReleases != 0 {
		t.Fatalf("invalidating engine took the shrink path: %+v", st)
	}
}

// TestIncrementalSpeedup enforces the acceptance bar in the regular test
// run: on the 200-connection benchmark fabric the incremental test must be
// at least 5x faster than the full re-analysis. Wall-clock minima over a
// few rounds keep scheduler noise out of the ratio.
func TestIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	net, cand := benchNetwork(t)
	ctrl := fullController(t, net)
	eng := warmEngine(t, net, cand)

	minDur := func(f func()) time.Duration {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	full := minDur(func() {
		if d, err := ctrl.Test(cand); err != nil || !d.Admitted {
			t.Fatalf("full test failed: %+v %v", d, err)
		}
	})
	incr := minDur(func() {
		if d, err := eng.Test(cand); err != nil || !d.Admitted {
			t.Fatalf("incremental test failed: %+v %v", d, err)
		}
	})
	ratio := float64(full) / float64(incr)
	t.Logf("full %v, incremental %v, speedup %.1fx", full, incr, ratio)
	if ratio < 5 {
		t.Fatalf("incremental speedup %.1fx below the 5x acceptance bar (full %v, incremental %v)", ratio, full, incr)
	}
}
