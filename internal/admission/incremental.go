// Incremental, concurrent admission control.
//
// Engine replaces the serialize-everything pattern (a mutex around
// Controller for the whole analysis) with versioned immutable snapshots:
// an admission test analyzes a snapshot outside any lock, and Admit
// commits with a version check, retrying on conflict. On analyzers that
// implement analysis.Incremental (Integrated, Decomposed), each snapshot
// carries a lazily built analysis baseline, so a test re-analyzes only the
// candidate's downstream interference closure and an admission promotes
// the extended baseline at no extra cost. Decisions and bounds are
// bit-identical to Controller's full re-analysis.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// IsCanceled reports whether an admission-test error is a context
// cancellation or deadline expiry (as opposed to an invalid candidate or
// analyzer failure). Callers use it to tell "the request was cut off"
// from "the request was bad".
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// AffectedSet computes the downstream interference closure of a candidate
// route over the server-sharing graph: a connection is affected when its
// route intersects a tainted server; once affected, the suffix of its
// route from the first tainted hop becomes tainted too, because the
// candidate inflates the local delay there and the connection's output
// burstiness propagates the inflation downstream. Iterated to a fixpoint.
//
// It returns the indices (into admitted) of affected connections, in
// increasing order, and the set of tainted servers. The closure is the
// conceptual affected set the incremental analysis may re-analyze; the
// engine reports its size in the affected-set histogram.
func AffectedSet(nServers int, admitted []topo.Connection, cand topo.Connection) (conns []int, tainted []bool) {
	tainted = make([]bool, nServers)
	for _, s := range cand.Path {
		if s >= 0 && s < nServers {
			tainted[s] = true
		}
	}
	affected := make([]bool, len(admitted))
	for changed := true; changed; {
		changed = false
		for i, c := range admitted {
			if affected[i] {
				continue
			}
			hit := -1
			for k, s := range c.Path {
				if tainted[s] {
					hit = k
					break
				}
			}
			if hit < 0 {
				continue
			}
			affected[i] = true
			changed = true
			for _, s := range c.Path[hit:] {
				if !tainted[s] {
					tainted[s] = true
				}
			}
		}
	}
	for i, a := range affected {
		if a {
			conns = append(conns, i)
		}
	}
	return conns, tainted
}

// affectedBuckets are the upper bounds of the affected-set size histogram.
var affectedBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// DefaultCompactionThreshold is the affected-set fraction above which a
// release stops shrinking the baseline in place and falls back to epoch
// compaction: when more than this fraction of the survivors must be
// re-analyzed anyway, the scoped replay approaches the cost of a full
// rebuild, so the rebuild moves off the request path instead.
const DefaultCompactionThreshold = 0.5

// Stats is a point-in-time copy of the engine's counters.
type Stats struct {
	// IncrementalTests and FullTests count admission analyses by path.
	IncrementalTests uint64
	FullTests        uint64
	// IncrementalReleases counts removals that shrank the baseline in
	// place (scoped unit-trace replay); CompactedReleases counts removals
	// that fell back to epoch compaction (baseline dropped, re-promoted in
	// the background).
	IncrementalReleases uint64
	CompactedReleases   uint64
	// BaselineEpoch counts baseline materializations: promotions on admit,
	// shrinks on release, and lazy or background rebuilds. It is the
	// freshness stamp compaction re-promotion checks against.
	BaselineEpoch uint64
	// CommitConflicts counts Admit retries forced by a concurrent commit.
	CommitConflicts uint64
	// BatchEnvelopes counts ApplyBatch calls, BatchOps the operations they
	// carried, and BatchCommits the snapshot commits they installed. A
	// mutating envelope commits exactly once regardless of its size
	// (BatchCommits <= BatchEnvelopes always; strictly fewer when some
	// envelopes left the admitted set untouched), which is the pipelining
	// invariant CI gates on.
	BatchEnvelopes uint64
	BatchOps       uint64
	BatchCommits   uint64
	// AffectedBuckets holds, per entry of AffectedBucketBounds, how many
	// tests had an affected set of at most that many connections (raw,
	// not cumulative); AffectedCount and AffectedSum summarize them.
	AffectedBuckets []uint64
	AffectedCount   uint64
	AffectedSum     uint64
}

// AffectedBucketBounds returns the histogram bucket upper bounds.
func AffectedBucketBounds() []float64 {
	return append([]float64(nil), affectedBuckets...)
}

// Engine is a goroutine-safe admission controller over a fixed fabric.
// All reads and tests run against immutable snapshots; mutations swap the
// snapshot pointer under a short lock that never covers an analysis.
type Engine struct {
	servers  []server.Server
	analyzer analysis.Analyzer
	inc      analysis.Incremental // nil when unsupported or force-full
	// compactFrac holds the float64 bits of the affected-set fraction above
	// which Release stops shrinking and compacts. It is atomic (not plain
	// startup configuration like prewarm) because SetCompactionThreshold is
	// documented as callable while releases run concurrently.
	compactFrac atomic.Uint64
	// prewarm rebuilds compacted baselines in the background; startup
	// configuration, like ForceFull.
	prewarm     bool
	mu          sync.Mutex // serializes snapshot swaps only
	snap        atomic.Pointer[Snapshot]
	incTests    atomic.Uint64
	fullTests   atomic.Uint64
	incRels     atomic.Uint64
	compactRels atomic.Uint64
	epoch       atomic.Uint64
	conflicts   atomic.Uint64
	batchEnvs   atomic.Uint64
	batchOps    atomic.Uint64
	batchComs   atomic.Uint64
	affBucket   []atomic.Uint64
	affCount    atomic.Uint64
	affSum      atomic.Uint64
	// warmBusy/warmDirty implement the single-owner background baseline
	// warmer: at most one warm goroutine runs per engine, and a compaction
	// landing while it runs marks it dirty so the warmer re-checks the
	// (possibly newer) current snapshot before exiting.
	warmBusy  atomic.Bool
	warmDirty atomic.Bool
}

// NewEngine builds an engine over the given fabric. The analyzer's
// incremental path is used automatically when it implements
// analysis.Incremental.
func NewEngine(servers []server.Server, analyzer analysis.Analyzer) (*Engine, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("admission: no servers")
	}
	for i, s := range servers {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("admission: server %d: %w", i, err)
		}
	}
	if analyzer == nil {
		return nil, fmt.Errorf("admission: nil analyzer")
	}
	cp := make([]server.Server, len(servers))
	copy(cp, servers)
	e := &Engine{
		servers:   cp,
		analyzer:  analyzer,
		prewarm:   true,
		affBucket: make([]atomic.Uint64, len(affectedBuckets)+1),
	}
	e.compactFrac.Store(math.Float64bits(DefaultCompactionThreshold))
	if inc, ok := analyzer.(analysis.Incremental); ok {
		e.inc = inc
	}
	e.snap.Store(&Snapshot{eng: e})
	return e, nil
}

// ForceFull disables the incremental path (every test re-analyzes the
// whole trial network). Call it before serving traffic; it is not meant
// to be flipped concurrently with tests.
func (e *Engine) ForceFull() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inc = nil
	cur := e.snap.Load()
	e.snap.Store(&Snapshot{eng: e, version: cur.version + 1, admitted: cur.admitted})
}

// Analyzer returns the analyzer admission tests run.
func (e *Engine) Analyzer() analysis.Analyzer { return e.analyzer }

// Incremental reports whether the incremental path is active.
func (e *Engine) Incremental() bool { return e.inc != nil }

// Servers returns a copy of the fabric.
func (e *Engine) Servers() []server.Server {
	cp := make([]server.Server, len(e.servers))
	copy(cp, e.servers)
	return cp
}

// SetCompactionThreshold sets the affected-set fraction above which a
// release compacts instead of shrinking (see DefaultCompactionThreshold).
// Negative disables incremental release entirely; >= 1 always shrinks.
// Safe to call while releases run concurrently: the threshold is stored
// atomically and each release reads it once.
func (e *Engine) SetCompactionThreshold(frac float64) {
	e.compactFrac.Store(math.Float64bits(frac))
}

// compactionThreshold reads the release compaction threshold.
func (e *Engine) compactionThreshold() float64 {
	return math.Float64frombits(e.compactFrac.Load())
}

// SetBackgroundPromotion toggles the background baseline rebuild after a
// compacting release. On by default; benchmarks of the invalidating path
// turn it off so the rebuild cost lands on the measured request instead of
// a racing goroutine. Call it before serving traffic, like ForceFull.
func (e *Engine) SetBackgroundPromotion(on bool) { e.prewarm = on }

// Stats copies the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		IncrementalTests:    e.incTests.Load(),
		FullTests:           e.fullTests.Load(),
		IncrementalReleases: e.incRels.Load(),
		CompactedReleases:   e.compactRels.Load(),
		BaselineEpoch:       e.epoch.Load(),
		CommitConflicts:     e.conflicts.Load(),
		BatchEnvelopes:      e.batchEnvs.Load(),
		BatchOps:            e.batchOps.Load(),
		BatchCommits:        e.batchComs.Load(),
		AffectedBuckets:     make([]uint64, len(e.affBucket)),
		AffectedCount:       e.affCount.Load(),
		AffectedSum:         e.affSum.Load(),
	}
	for i := range e.affBucket {
		st.AffectedBuckets[i] = e.affBucket[i].Load()
	}
	return st
}

func (e *Engine) observeAffected(n int) {
	i := 0
	for ; i < len(affectedBuckets); i++ {
		if float64(n) <= affectedBuckets[i] {
			break
		}
	}
	e.affBucket[i].Add(1)
	e.affCount.Add(1)
	e.affSum.Add(uint64(n))
}

// Snapshot is an immutable view of the admitted set at one version. Tests
// against a snapshot are pure and may run concurrently.
type Snapshot struct {
	eng      *Engine
	version  uint64
	admitted []topo.Connection
	// promoted is a baseline handed over by the commit that created this
	// snapshot; baseOnce/base/baseErr lazily build one otherwise, with
	// baseReady flipping once a lazy build has succeeded so release can
	// peek without joining an in-flight build.
	promoted  *analysis.Baseline
	baseOnce  sync.Once
	base      *analysis.Baseline
	baseErr   error
	baseReady atomic.Bool
}

// Snapshot returns the current version of the admitted set.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Version identifies the snapshot; it increases with every commit.
func (s *Snapshot) Version() uint64 { return s.version }

// Count returns the number of admitted connections.
func (s *Snapshot) Count() int { return len(s.admitted) }

// Admitted returns a copy of the snapshot's admitted set.
func (s *Snapshot) Admitted() []topo.Connection {
	out := make([]topo.Connection, len(s.admitted))
	copy(out, s.admitted)
	return out
}

// network materializes the snapshot's (or a trial) connection set.
func (s *Snapshot) network(extra ...topo.Connection) *topo.Network {
	net := &topo.Network{Servers: s.eng.servers}
	net.Connections = append(net.Connections, s.admitted...)
	net.Connections = append(net.Connections, extra...)
	return net
}

// Utilization returns the per-server utilization of the admitted set.
func (s *Snapshot) Utilization() []float64 { return s.network().Utilization() }

// baseline returns the snapshot's analysis baseline, building it (one full
// analysis of the admitted set) at most once.
func (s *Snapshot) baseline() (*analysis.Baseline, error) {
	if s.promoted != nil {
		return s.promoted, nil
	}
	s.baseOnce.Do(func() {
		// inc can be nil here when ForceFull raced a stale warm goroutine;
		// the guard keeps the snapshot baseline-less instead of panicking.
		if s.eng.inc == nil {
			s.baseErr = fmt.Errorf("admission: incremental path disabled")
			return
		}
		s.base, s.baseErr = s.eng.inc.NewBaseline(s.network())
		if s.baseErr == nil {
			s.eng.epoch.Add(1)
			s.baseReady.Store(true)
		}
	})
	return s.base, s.baseErr
}

// cachedBaseline returns the snapshot's baseline only if one is already
// materialized (promoted by a commit or completed by a lazy build). It
// never builds one: the release path must not pay a full analysis just to
// shrink it.
func (s *Snapshot) cachedBaseline() *analysis.Baseline {
	if s.promoted != nil {
		return s.promoted
	}
	if s.baseReady.Load() {
		return s.base
	}
	return nil
}

// Test checks whether the candidate could be admitted into this snapshot.
// It never mutates the engine and is safe to call concurrently.
func (s *Snapshot) Test(cand topo.Connection) (Decision, error) {
	d, _, err := s.test(context.Background(), cand)
	return d, err
}

// TestContext is Test with cooperative cancellation: the analysis observes
// the context and the call returns its error (check with IsCanceled) once
// it is done. An uncancelled call is bit-identical to Test.
func (s *Snapshot) TestContext(ctx context.Context, cand topo.Connection) (Decision, error) {
	d, _, err := s.test(ctx, cand)
	return d, err
}

// precheck runs the analysis-free candidate validation shared by every
// test flavor. proceed is false when the decision (or error) is final.
func (s *Snapshot) precheck(cand topo.Connection) (trial *topo.Network, d Decision, proceed bool, err error) {
	if cand.Deadline <= 0 {
		return nil, Decision{Code: CodeInvalidSpec, Reason: "candidate has no deadline"}, false,
			fmt.Errorf("admission: candidate %q has no deadline", cand.Name)
	}
	trial = s.network(cand)
	// With a materialized baseline the validation is O(candidate): the
	// admitted set was validated when it was committed, so only the
	// candidate can fail. Without one (cold start, post-compaction,
	// ForceFull) the nil receiver degrades to the identical full check.
	if err := s.cachedBaseline().ValidateExtend(trial); err != nil {
		return nil, Decision{Code: CodeInvalidSpec, Reason: err.Error()}, false, err
	}
	if !trial.Stable() {
		return nil, Decision{Code: CodeUnstable, Reason: "network would be unstable"}, false, nil
	}
	return trial, Decision{}, true, nil
}

// test returns the decision plus, on the incremental path, the extension
// to promote on commit. A cancellation surfaces as a bare error (never as
// a CodeInvalidSpec decision, and never by silently falling through to
// the more expensive full path).
func (s *Snapshot) test(ctx context.Context, cand topo.Connection) (Decision, *analysis.Extension, error) {
	trial, d, proceed, err := s.precheck(cand)
	if !proceed {
		return d, nil, err
	}
	affected, _ := AffectedSet(len(s.eng.servers), s.admitted, cand)
	s.eng.observeAffected(len(affected))
	if s.eng.inc != nil {
		if base, err := s.baseline(); err == nil {
			ext, err := base.ExtendContext(ctx, cand)
			if err == nil {
				s.eng.incTests.Add(1)
				return evaluate(trial, ext.Result()), ext, nil
			}
			if IsCanceled(err) {
				return Decision{}, nil, err
			}
		}
		// Baseline or extension failure: fall through to the full path,
		// which reproduces Controller.Test exactly (including its error).
	}
	s.eng.fullTests.Add(1)
	res, err := analysis.AnalyzeWithContext(ctx, s.eng.analyzer, trial)
	if err != nil {
		if IsCanceled(err) {
			return Decision{}, nil, err
		}
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, nil, err
	}
	return evaluate(trial, res), nil, nil
}

// testWith runs the full (non-incremental) admission test with an explicit
// analyzer — the degradation hook: the serving layer retries a timed-out
// integrated test with the always-valid decomposed analyzer.
func (s *Snapshot) testWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	trial, d, proceed, err := s.precheck(cand)
	if !proceed {
		return d, err
	}
	s.eng.fullTests.Add(1)
	res, err := analysis.AnalyzeWithContext(ctx, analyzer, trial)
	if err != nil {
		if IsCanceled(err) {
			return Decision{}, err
		}
		return Decision{Code: CodeInvalidSpec, Reason: err.Error()}, err
	}
	return evaluate(trial, res), nil
}

// Test runs the admission test against the current snapshot, outside any
// lock.
func (e *Engine) Test(cand topo.Connection) (Decision, error) {
	return e.Snapshot().Test(cand)
}

// TestContext runs the admission test against the current snapshot under a
// context; see Snapshot.TestContext.
func (e *Engine) TestContext(ctx context.Context, cand topo.Connection) (Decision, error) {
	return e.Snapshot().TestContext(ctx, cand)
}

// TestWith runs a full admission test with an explicit analyzer against
// the current snapshot — the serving layer's degraded path. The decision
// is as sound as the analyzer's bounds; it is never committed here.
func (e *Engine) TestWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	return e.Snapshot().testWith(ctx, analyzer, cand)
}

// Admit tests the candidate against the current snapshot and, on success,
// commits it with a version check: if another commit won the race, the
// test reruns against the fresh snapshot until the commit applies cleanly.
func (e *Engine) Admit(cand topo.Connection) (Decision, error) {
	return e.AdmitContext(context.Background(), cand)
}

// AdmitContext is Admit with cooperative cancellation; a cancelled call
// returns the context's error (check with IsCanceled) and commits nothing.
func (e *Engine) AdmitContext(ctx context.Context, cand topo.Connection) (Decision, error) {
	for {
		snap := e.Snapshot()
		d, ext, err := snap.test(ctx, cand)
		if err != nil || !d.Admitted {
			return d, err
		}
		if e.commit(snap, cand, ext) {
			return d, nil
		}
		e.conflicts.Add(1)
	}
}

// AdmitWith is Admit on the degraded path: the test runs with the given
// analyzer (full, non-incremental), and a positive decision commits with
// no promoted baseline, so the next incremental test rebuilds one against
// the primary analyzer. Sound whenever the analyzer's bounds are valid
// upper bounds (Decomposed always is).
func (e *Engine) AdmitWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (Decision, error) {
	for {
		snap := e.Snapshot()
		d, err := snap.testWith(ctx, analyzer, cand)
		if err != nil || !d.Admitted {
			return d, err
		}
		if e.commit(snap, cand, nil) {
			return d, nil
		}
		e.conflicts.Add(1)
	}
}

// commit installs snap+cand as the next version iff snap is still current.
func (e *Engine) commit(snap *Snapshot, cand topo.Connection, ext *analysis.Extension) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap.Load() != snap {
		return false
	}
	next := &Snapshot{
		eng:      e,
		version:  snap.version + 1,
		admitted: append(append([]topo.Connection(nil), snap.admitted...), cand),
	}
	if ext != nil {
		next.promoted = ext.Promote()
		e.epoch.Add(1)
	}
	e.snap.Store(next)
	return true
}

// ReleaseInfo describes how a release was performed.
type ReleaseInfo struct {
	// Incremental is true when the baseline was shrunk in place (scoped
	// unit-trace replay), false when the release compacted: the baseline
	// was dropped and, with background promotion on, is being rebuilt off
	// the request path.
	Incremental bool
	// Affected is the number of surviving connections inside the removed
	// connection's interference closure (-1 when no baseline was available
	// to scope against).
	Affected int
}

// Release removes an admitted connection by name and reports how. Like
// Admit, it runs optimistically: the shrink analyzes a snapshot outside
// any lock and the commit retries on conflict.
//
// When the snapshot has a materialized baseline and the removed
// connection's interference closure covers at most the compaction
// threshold's fraction of the survivors, the baseline is shrunk in place —
// the surviving unit traces outside the closure replay bit-identically, so
// the next admission test extends a warm baseline exactly as if the
// released connection had never been admitted. Otherwise the release
// compacts: the new snapshot starts epoch-stamped with no baseline and a
// background build re-promotes one, so the release itself never blocks on
// a rebuild.
func (e *Engine) Release(name string) (ReleaseInfo, bool) {
	for {
		snap := e.Snapshot()
		idx := -1
		for i, conn := range snap.admitted {
			if conn.Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return ReleaseInfo{}, false
		}
		info := ReleaseInfo{Affected: -1}
		var promoted *analysis.Baseline
		if e.inc != nil {
			if base := snap.cachedBaseline(); base != nil {
				survivors := append(append([]topo.Connection(nil), snap.admitted[:idx]...), snap.admitted[idx+1:]...)
				affected, _ := AffectedSet(len(e.servers), survivors, snap.admitted[idx])
				info.Affected = len(affected)
				e.observeAffected(len(affected))
				if float64(len(affected)) <= e.compactionThreshold()*float64(len(survivors)) {
					if ext, err := base.Shrink(idx); err == nil {
						promoted = ext.Promote()
						info.Incremental = true
					}
				}
			}
		}
		if e.commitRemove(snap, idx, promoted) {
			if info.Incremental {
				e.incRels.Add(1)
			} else {
				e.compactRels.Add(1)
				if e.inc != nil && e.prewarm {
					e.scheduleWarm()
				}
			}
			return info, true
		}
		e.conflicts.Add(1)
	}
}

// scheduleWarm requests a background re-promotion of the current snapshot's
// baseline. The engine owns exactly one warmer goroutine at a time: earlier
// code spawned a detached goroutine per compacted release, so a release
// racing a concurrent admit on the same component could leave several full
// analyses running against superseded snapshots, each briefly claiming the
// lazy slot a fresh test was about to join. The warmer always re-reads the
// *current* snapshot, and the dirty flag closes the lost-wakeup window: a
// compaction that lands while a warm is in flight re-runs the loop instead
// of being dropped.
func (e *Engine) scheduleWarm() {
	e.warmDirty.Store(true)
	if !e.warmBusy.CompareAndSwap(false, true) {
		return // an active warmer will observe the dirty flag
	}
	go func() {
		for {
			for e.warmDirty.Swap(false) {
				if e.inc == nil {
					break
				}
				_, _ = e.Snapshot().baseline()
			}
			e.warmBusy.Store(false)
			// Re-check: a scheduleWarm between the last Swap and the
			// busy reset would otherwise be lost.
			if !e.warmDirty.Load() || !e.warmBusy.CompareAndSwap(false, true) {
				return
			}
		}
	}()
}

// replaceAdmitted installs a wholesale new admitted set as the next
// version: an epoch-stamped compaction commit with no baseline, used by
// ShardedEngine when a cross-shard admission or a rebalance migrates
// connections between shards. The next incremental test (or a scheduled
// warm) rebuilds the baseline lazily.
func (e *Engine) replaceAdmitted(conns []topo.Connection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	next := &Snapshot{eng: e, version: cur.version + 1}
	next.admitted = append(next.admitted, conns...)
	e.snap.Store(next)
}

// commitRemove installs snap minus index idx as the next version iff snap
// is still current, carrying the shrunken baseline when one was built.
func (e *Engine) commitRemove(snap *Snapshot, idx int, promoted *analysis.Baseline) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap.Load() != snap {
		return false
	}
	next := &Snapshot{eng: e, version: snap.version + 1, promoted: promoted}
	next.admitted = append(next.admitted, snap.admitted[:idx]...)
	next.admitted = append(next.admitted, snap.admitted[idx+1:]...)
	if promoted != nil {
		e.epoch.Add(1)
	}
	e.snap.Store(next)
	return true
}

// Remove releases an admitted connection by name. It is Release without
// the report, kept for callers that only care whether the name existed.
func (e *Engine) Remove(name string) bool {
	_, ok := e.Release(name)
	return ok
}

// WarmBaseline synchronously materializes the current snapshot's analysis
// baseline so the next admission test runs incrementally at full speed. It
// is a no-op when a baseline is already warm (e.g. after an incremental
// release) or when the incremental path is off. Daemons call it after
// startup pre-admission; benchmarks use it to charge a compacted release
// with the rebuild it forces.
func (e *Engine) WarmBaseline() error {
	if e.inc == nil {
		return nil
	}
	_, err := e.Snapshot().baseline()
	return err
}

// Count returns the number of admitted connections.
func (e *Engine) Count() int { return e.Snapshot().Count() }

// Admitted returns a copy of the currently admitted connections.
func (e *Engine) Admitted() []topo.Connection { return e.Snapshot().Admitted() }

// Utilization returns the per-server utilization of the admitted set.
func (e *Engine) Utilization() []float64 { return e.Snapshot().Utilization() }

// FillGreedy admits numbered copies of the template until the first
// rejection, like Controller.FillGreedy. With the incremental path each
// admission extends the previous baseline instead of re-analyzing the
// whole network.
func (e *Engine) FillGreedy(template topo.Connection, limit int) (int, error) {
	return e.FillGreedyContext(context.Background(), template, limit)
}

// FillGreedyContext is FillGreedy with cooperative cancellation between
// (and inside) admissions; it returns the count admitted so far along with
// the context's error when cut off.
func (e *Engine) FillGreedyContext(ctx context.Context, template topo.Connection, limit int) (int, error) {
	n := 0
	for n < limit {
		cand := template
		cand.Name = fmt.Sprintf("%s#%d", template.Name, e.Count())
		d, err := e.AdmitContext(ctx, cand)
		if err != nil {
			return n, err
		}
		if !d.Admitted {
			return n, nil
		}
		n++
	}
	return n, nil
}

// MaxBound returns the largest finite bound of a decision's Bounds, +Inf
// when any bound is unbounded, and NaN when the test never analyzed.
func (d Decision) MaxBound() float64 {
	if d.Bounds == nil {
		return math.NaN()
	}
	m := 0.0
	for _, b := range d.Bounds {
		if math.IsInf(b, 1) {
			return b
		}
		if b > m {
			m = b
		}
	}
	return m
}
