package admission

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// requireSameDecision asserts that two decisions are identical in every
// field, bounds compared bitwise: the engine's incremental path must be
// indistinguishable from the controller's full re-analysis.
func requireSameDecision(t *testing.T, label string, want, got Decision) {
	t.Helper()
	if want.Admitted != got.Admitted || want.Code != got.Code || want.Reason != got.Reason {
		t.Fatalf("%s: decision diverged:\n  controller %+v\n  engine     %+v", label, want, got)
	}
	if len(want.Violations) != len(got.Violations) {
		t.Fatalf("%s: violations %d vs %d", label, len(want.Violations), len(got.Violations))
	}
	for i := range want.Violations {
		if want.Violations[i] != got.Violations[i] {
			t.Errorf("%s: violation %d: %+v vs %+v", label, i, want.Violations[i], got.Violations[i])
		}
	}
	if len(want.Bounds) != len(got.Bounds) {
		t.Fatalf("%s: bounds %d vs %d", label, len(want.Bounds), len(got.Bounds))
	}
	for i := range want.Bounds {
		if want.Bounds[i] != got.Bounds[i] {
			t.Errorf("%s: bound %d: controller %v engine %v", label, i, want.Bounds[i], got.Bounds[i])
		}
	}
}

// driveDifferential replays the same admission sequence through a
// Controller (full re-analysis under the caller's serialization) and an
// Engine (snapshot + incremental analysis) and asserts identical
// decisions, errors, and bounds at every step.
func driveDifferential(t *testing.T, label string, analyzer analysis.Analyzer, net *topo.Network) {
	t.Helper()
	ctrl, err := New(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for i, cand := range net.Connections {
		step := fmt.Sprintf("%s/conn%d", label, i)
		wantD, wantErr := ctrl.Test(cand)
		gotD, gotErr := eng.Test(cand)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: test error diverged: controller %v, engine %v", step, wantErr, gotErr)
		}
		requireSameDecision(t, step+"/test", wantD, gotD)

		wantD, wantErr = ctrl.Admit(cand)
		gotD, gotErr = eng.Admit(cand)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: admit error diverged: controller %v, engine %v", step, wantErr, gotErr)
		}
		requireSameDecision(t, step+"/admit", wantD, gotD)
		if ctrl.Count() != eng.Count() {
			t.Fatalf("%s: count diverged: controller %d, engine %d", step, ctrl.Count(), eng.Count())
		}
	}
}

// TestEngineMatchesControllerOnRandomNetworks is the differential
// acceptance test: on 50+ randomized feedforward networks with a mix of
// loose and tight deadlines, the engine's decisions must be bit-identical
// to the controller's at every admission step, for both incremental
// analyzers.
func TestEngineMatchesControllerOnRandomNetworks(t *testing.T) {
	for _, analyzer := range []analysis.Analyzer{analysis.Integrated{}, analysis.Decomposed{}} {
		for seed := int64(0); seed < 26; seed++ {
			net, err := topo.RandomFeedforward(6, 9, 0.6, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Deadline mix drawn from the same seed: loose (always fits),
			// tight (often violated), and one absent (spec error path).
			rng := rand.New(rand.NewSource(seed * 31))
			for i := range net.Connections {
				switch rng.Intn(4) {
				case 0:
					net.Connections[i].Deadline = 1 + 4*rng.Float64()
				case 1:
					net.Connections[i].Deadline = 0 // invalid: exercises the error path
				default:
					net.Connections[i].Deadline = 100
				}
			}
			driveDifferential(t, fmt.Sprintf("%s/seed%d", analyzer.Name(), seed), analyzer, net)
		}
	}
}

// TestEngineMatchesControllerForcedFull pins the fallback: with the
// incremental path disabled the engine is still exactly the controller.
func TestEngineMatchesControllerForcedFull(t *testing.T) {
	net, err := topo.RandomFeedforward(5, 8, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 50
	}
	ctrl, err := New(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	eng.ForceFull()
	if eng.Incremental() {
		t.Fatal("ForceFull left the incremental path on")
	}
	for i, cand := range net.Connections {
		wantD, _ := ctrl.Admit(cand)
		gotD, _ := eng.Admit(cand)
		requireSameDecision(t, fmt.Sprintf("forced-full/conn%d", i), wantD, gotD)
	}
	st := eng.Stats()
	if st.IncrementalTests != 0 || st.FullTests == 0 {
		t.Fatalf("forced-full engine ran incremental tests: %+v", st)
	}
}

// TestEngineUsesIncrementalPath asserts the tentpole actually engages: a
// second admission against a promoted baseline must count as incremental.
func TestEngineUsesIncrementalPath(t *testing.T) {
	net, err := topo.RandomFeedforward(6, 6, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 100
		if _, err := eng.Admit(net.Connections[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.IncrementalTests == 0 {
		t.Fatalf("no incremental tests recorded: %+v", st)
	}
	if st.AffectedCount != uint64(len(net.Connections)) {
		t.Fatalf("affected histogram count %d, want %d", st.AffectedCount, len(net.Connections))
	}
	if eng.Snapshot().Version() != uint64(len(net.Connections)) {
		t.Fatalf("version %d after %d commits", eng.Snapshot().Version(), len(net.Connections))
	}
}

// TestEngineRemoveRebuilds checks that Remove invalidates the baseline and
// later tests still match a fresh controller over the same admitted set.
func TestEngineRemoveRebuilds(t *testing.T) {
	net, err := topo.RandomFeedforward(5, 7, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Connections {
		net.Connections[i].Deadline = 100
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range net.Connections[:6] {
		if _, err := eng.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.Remove(net.Connections[2].Name) {
		t.Fatal("remove failed")
	}
	if eng.Remove("no-such-connection") {
		t.Fatal("removed a connection that does not exist")
	}
	ctrl, err := New(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.Admitted() {
		if _, err := ctrl.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	cand := net.Connections[6]
	wantD, _ := ctrl.Test(cand)
	gotD, _ := eng.Test(cand)
	requireSameDecision(t, "after-remove", wantD, gotD)
}

// TestEngineConcurrentAdmit hammers Admit from many goroutines; under
// -race this is the data-race check for the snapshot/commit protocol, and
// the final set must be exactly the admitted decisions.
func TestEngineConcurrentAdmit(t *testing.T) {
	net, err := topo.RandomFeedforward(6, 1, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	template := net.Connections[0]
	template.Deadline = 1000

	const workers = 8
	const perWorker = 4
	admitted := make([]int, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cand := template
				cand.Name = fmt.Sprintf("w%d-%d", g, i)
				d, err := eng.Admit(cand)
				if err != nil {
					t.Errorf("admit w%d-%d: %v", g, i, err)
					return
				}
				if d.Admitted {
					admitted[g]++
				}
				eng.Test(cand) // concurrent reads against moving snapshots
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, n := range admitted {
		total += n
	}
	if eng.Count() != total {
		t.Fatalf("count %d, admitted decisions %d", eng.Count(), total)
	}
	if eng.Snapshot().Version() != uint64(total) {
		t.Fatalf("version %d after %d commits", eng.Snapshot().Version(), total)
	}
	// The committed set must still prove every deadline under a full
	// re-analysis, regardless of commit interleaving.
	final := &topo.Network{Servers: eng.Servers(), Connections: eng.Admitted()}
	res, err := analysis.Integrated{}.Analyze(final)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range final.Connections {
		if res.Bound(i) > c.Deadline {
			t.Errorf("committed connection %s violates its deadline: %g > %g", c.Name, res.Bound(i), c.Deadline)
		}
	}
}

func TestAffectedSetClosure(t *testing.T) {
	// Chain of pairwise-overlapping connections: 0-1, 1-2, 2-3, plus an
	// isolated connection on server 5. A candidate at server 0 must taint
	// the whole chain transitively but never the isolated connection.
	admitted := []topo.Connection{
		{Name: "c01", Path: []int{0, 1}},
		{Name: "c12", Path: []int{1, 2}},
		{Name: "c23", Path: []int{2, 3}},
		{Name: "iso", Path: []int{5}},
	}
	cand := topo.Connection{Name: "cand", Path: []int{0}}
	conns, tainted := AffectedSet(6, admitted, cand)
	if want := []int{0, 1, 2}; len(conns) != len(want) || conns[0] != 0 || conns[1] != 1 || conns[2] != 2 {
		t.Fatalf("affected %v, want %v", conns, want)
	}
	for s, want := range []bool{true, true, true, true, false, false} {
		if tainted[s] != want {
			t.Errorf("tainted[%d] = %v, want %v", s, tainted[s], want)
		}
	}

	// Interference only propagates downstream of the first tainted hop:
	// a connection whose path merely ends at a tainted server taints
	// nothing new upstream of it.
	admitted = []topo.Connection{
		{Name: "up", Path: []int{4, 0}}, // joins the tainted server at its tail
		{Name: "side", Path: []int{4}},  // shares only the upstream server
	}
	conns, tainted = AffectedSet(6, admitted, cand)
	if len(conns) != 1 || conns[0] != 0 {
		t.Fatalf("affected %v, want [0]", conns)
	}
	if tainted[4] {
		t.Error("upstream server tainted: interference closure must be downstream-only")
	}
}

func TestAffectedBucketBoundsIsACopy(t *testing.T) {
	b := AffectedBucketBounds()
	b[0] = 99
	if AffectedBucketBounds()[0] == 99 {
		t.Fatal("AffectedBucketBounds leaked the internal slice")
	}
}
