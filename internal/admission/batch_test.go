package admission

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/topo"
)

// randomOps builds a deterministic mixed admit/release schedule over the
// network's connection templates: the same generator the churn suite uses,
// but emitting the ops instead of applying them.
func randomOps(net *topo.Network, seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	var ops []Op
	var live []string
	next := 0
	for len(ops) < n {
		if rng.Intn(3) == 0 && len(live) > 0 {
			i := rng.Intn(len(live))
			ops = append(ops, Op{Kind: OpRelease, Name: live[i]})
			live = append(live[:i], live[i+1:]...)
			continue
		}
		cand := net.Connections[next%len(net.Connections)]
		cand.Name = fmt.Sprintf("b%d", next)
		if rng.Intn(6) == 0 {
			cand.Deadline = 0.2 + 0.4*rng.Float64() // mostly-rejected tight deadline
		}
		ops = append(ops, Op{Kind: OpAdmit, Candidate: cand})
		live = append(live, cand.Name)
		next++
	}
	return ops
}

// driveBatchDifferential replays one op schedule through a sequential
// engine (per-op Admit/Release) and a batch engine (random-size ApplyBatch
// envelopes) and asserts per-op bit-identical decisions, identical final
// state, and the single-commit-per-envelope invariant.
func driveBatchDifferential(t *testing.T, label string, analyzer analysis.Analyzer, net *topo.Network, seed int64) {
	t.Helper()
	seqEng, err := NewEngine(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	batchEng, err := NewEngine(net.Servers, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	// ReleaseInfo (not the decisions) depends on whether a compacted
	// baseline has been re-promoted yet, and the background warmer makes
	// that a race against this test's own schedule. Pin both engines to
	// the deterministic no-warm configuration so the info comparison below
	// is exact; decisions are baseline-independent either way.
	seqEng.SetBackgroundPromotion(false)
	batchEng.SetBackgroundPromotion(false)
	ops := randomOps(net, seed, 3*len(net.Connections))
	rng := rand.New(rand.NewSource(seed * 31))
	ctx := context.Background()
	mutating := 0
	for start := 0; start < len(ops); {
		end := start + 1 + rng.Intn(6)
		if end > len(ops) {
			end = len(ops)
		}
		env := ops[start:end]
		vBefore := batchEng.Snapshot().Version()
		br, err := batchEng.ApplyBatch(ctx, env)
		if err != nil {
			t.Fatalf("%s: ApplyBatch: %v", label, err)
		}
		for k, op := range env {
			step := fmt.Sprintf("%s/op%d", label, start+k)
			switch op.Kind {
			case OpAdmit:
				wantD, wantErr := seqEng.Admit(op.Candidate)
				gotR := br.Results[k]
				if (wantErr == nil) != (gotR.Err == nil) {
					t.Fatalf("%s: admit error diverged: sequential %v, batch %v", step, wantErr, gotR.Err)
				}
				requireSameDecision(t, step, wantD, gotR.Decision)
			case OpRelease:
				wantInfo, wantOK := seqEng.Release(op.Name)
				gotR := br.Results[k]
				if wantOK != gotR.Released {
					t.Fatalf("%s: release found diverged: sequential %v, batch %v", step, wantOK, gotR.Released)
				}
				if wantOK && wantInfo != gotR.Release {
					t.Fatalf("%s: release info diverged: sequential %+v, batch %+v", step, wantInfo, gotR.Release)
				}
			}
		}
		vAfter := batchEng.Snapshot().Version()
		if int(vAfter-vBefore) != br.Commits {
			t.Fatalf("%s: envelope advanced version by %d but reported %d commits", label, vAfter-vBefore, br.Commits)
		}
		if br.Commits > 1 {
			t.Fatalf("%s: envelope committed %d times", label, br.Commits)
		}
		if br.Commits == 1 {
			mutating++
		}
		start = end
	}
	if got := batchEng.Stats().BatchCommits; got != uint64(mutating) {
		t.Fatalf("%s: stats report %d batch commits, want %d", label, got, mutating)
	}
	seqAdmitted, batchAdmitted := seqEng.Admitted(), batchEng.Admitted()
	if len(seqAdmitted) != len(batchAdmitted) {
		t.Fatalf("%s: final sets differ: sequential %d, batch %d", label, len(seqAdmitted), len(batchAdmitted))
	}
	for i := range seqAdmitted {
		if seqAdmitted[i].Name != batchAdmitted[i].Name {
			t.Fatalf("%s: final set order diverged at %d: %q vs %q", label, i, seqAdmitted[i].Name, batchAdmitted[i].Name)
		}
	}
	probe := net.Connections[0]
	probe.Name = "probe"
	probe.Deadline = 100
	wantD, _ := seqEng.Test(probe)
	gotD, _ := batchEng.Test(probe)
	requireSameDecision(t, label+"/probe", wantD, gotD)
}

// TestApplyBatchMatchesSequential is the differential acceptance suite for
// batch pipelining: over the same 26-seed feedforward corpus as the churn
// suite, random envelopes must decide bit-identically to per-op calls and
// commit at most once each.
func TestApplyBatchMatchesSequential(t *testing.T) {
	seeds := int64(26)
	if testing.Short() {
		seeds = 6
	}
	for _, tc := range []struct {
		name     string
		analyzer analysis.Analyzer
	}{
		{"integrated", analysis.Integrated{}},
		{"decomposed", analysis.Decomposed{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				net, err := topo.RandomFeedforward(6, 6, 0.5, seed)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 17))
				for i := range net.Connections {
					if rng.Intn(4) == 0 {
						net.Connections[i].Deadline = 1 + 4*rng.Float64()
					} else {
						net.Connections[i].Deadline = 100
					}
				}
				driveBatchDifferential(t, fmt.Sprintf("seed%d", seed), tc.analyzer, net, seed)
			}
		})
	}
}

// TestApplyBatchSingleCommit pins the pipelining invariant directly: a
// mutating envelope of N ops advances the version exactly once, and the
// engine stats expose the envelope/op/commit accounting CI gates on.
func TestApplyBatchSingleCommit(t *testing.T) {
	net := disjointTandem(t, 16)
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 0, len(net.Connections)+1)
	for _, c := range net.Connections {
		ops = append(ops, Op{Kind: OpAdmit, Candidate: c})
	}
	ops = append(ops, Op{Kind: OpRelease, Name: net.Connections[0].Name})
	br, err := eng.ApplyBatch(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if br.Commits != 1 || br.ShardsTouched != 1 {
		t.Fatalf("envelope reported %d commits over %d shards, want 1/1", br.Commits, br.ShardsTouched)
	}
	if v := eng.Snapshot().Version(); v != 1 {
		t.Fatalf("version %d after one envelope, want 1", v)
	}
	if n := eng.Count(); n != len(net.Connections)-1 {
		t.Fatalf("admitted %d, want %d", n, len(net.Connections)-1)
	}
	st := eng.Stats()
	if st.BatchEnvelopes != 1 || st.BatchOps != uint64(len(ops)) || st.BatchCommits != 1 {
		t.Fatalf("stats envelopes/ops/commits = %d/%d/%d, want 1/%d/1",
			st.BatchEnvelopes, st.BatchOps, st.BatchCommits, len(ops))
	}

	// A read-only envelope (release of nothing) must not commit at all.
	br, err = eng.ApplyBatch(context.Background(), []Op{{Kind: OpRelease, Name: "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if br.Commits != 0 || eng.Snapshot().Version() != 1 {
		t.Fatalf("non-mutating envelope committed (commits=%d, version=%d)", br.Commits, eng.Snapshot().Version())
	}
}

// TestTestBatchPinnedSnapshot pins the dry-run isolation semantics: every
// candidate of a dry envelope is judged against the same snapshot, alone —
// two identical candidates must always agree, even while a concurrent
// writer flips the set's capacity headroom under the evaluation.
func TestTestBatchPinnedSnapshot(t *testing.T) {
	net := disjointTandem(t, 4)
	eng, err := NewEngine(net.Servers, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	// Two equivalent candidates sharing one route: each alone fits, both
	// together would not. Isolation means a dry envelope reports both
	// admitted (judged against the current set alone, not accumulated).
	mk := func(name string) topo.Connection {
		c := net.Connections[0]
		c.Name = name
		c.Bucket.Rho = 0.45
		c.Deadline = 100
		return c
	}
	res, err := eng.TestBatch(context.Background(), []topo.Connection{mk("x"), mk("y")})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Decision.Admitted || !res[1].Decision.Admitted {
		t.Fatalf("dry envelope accumulated state: %+v / %+v", res[0].Decision, res[1].Decision)
	}

	// Concurrency: a writer flips a blocker on the same route in and out;
	// every dry envelope must stay internally consistent (x and y always
	// agree — a torn read of the live head would let them diverge).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		blocker := mk("blocker")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d, err := eng.Admit(blocker); err != nil || !d.Admitted {
				return
			}
			eng.Release("blocker")
		}
	}()
	for i := 0; i < 200; i++ {
		res, err := eng.TestBatch(context.Background(), []topo.Connection{mk("x"), mk("y")})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Decision.Admitted != res[1].Decision.Admitted {
			t.Fatalf("iteration %d: dry envelope internally inconsistent: x=%+v y=%+v",
				i, res[0].Decision, res[1].Decision)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetCompactionThresholdRace is the -race regression for the
// previously unsynchronized compactFrac write: flipping the threshold
// while releases read it concurrently must be clean on both engine
// flavors.
func TestSetCompactionThresholdRace(t *testing.T) {
	net := disjointTandem(t, 8)
	run := func(t *testing.T, admit func(topo.Connection) error, release func(string) bool, setThreshold func(float64)) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				setThreshold(float64(i%2) * DefaultCompactionThreshold * 2)
			}
		}()
		for i := 0; i < 50; i++ {
			c := net.Connections[i%len(net.Connections)]
			c.Name = fmt.Sprintf("r%d", i)
			if err := admit(c); err != nil {
				t.Fatal(err)
			}
			release(c.Name)
		}
		close(stop)
		wg.Wait()
	}
	t.Run("engine", func(t *testing.T) {
		eng, err := NewEngine(net.Servers, analysis.Integrated{})
		if err != nil {
			t.Fatal(err)
		}
		run(t,
			func(c topo.Connection) error { _, err := eng.Admit(c); return err },
			eng.Remove,
			eng.SetCompactionThreshold)
	})
	t.Run("sharded", func(t *testing.T) {
		se, err := NewShardedEngine(net.Servers, analysis.Integrated{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		run(t,
			func(c topo.Connection) error { _, err := se.Admit(c); return err },
			se.Remove,
			se.SetCompactionThreshold)
	})
}
