package admission

import (
	"strings"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

func fabric(n int) []server.Server {
	servers := make([]server.Server, n)
	for i := range servers {
		servers[i] = server.Server{Name: string(rune('a' + i)), Capacity: 1, Discipline: server.FIFO}
	}
	return servers
}

func conn(name string, deadline float64, path ...int) topo.Connection {
	return topo.Connection{
		Name:       name,
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.1},
		AccessRate: 1,
		Path:       path,
		Deadline:   deadline,
	}
}

func TestAdmitAndReject(t *testing.T) {
	c, err := New(fabric(2), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Admit(conn("v1", 5, 0, 1))
	if err != nil || !d.Admitted {
		t.Fatalf("first connection rejected: %+v, %v", d, err)
	}
	// A candidate with an absurdly tight deadline is rejected and leaves
	// the state untouched.
	d, err = c.Admit(conn("tight", 1e-6, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("tight deadline admitted")
	}
	if !strings.Contains(d.Reason, "deadline") {
		t.Errorf("reason = %q", d.Reason)
	}
	if c.Count() != 1 {
		t.Errorf("count = %d after rejection, want 1", c.Count())
	}
}

func TestAdmitProtectsExisting(t *testing.T) {
	c, _ := New(fabric(1), analysis.Decomposed{})
	// First connection has a deadline that new arrivals would violate.
	if d, _ := c.Admit(conn("first", 1.0, 0)); !d.Admitted {
		t.Fatal("first not admitted")
	}
	// Each extra identical flow adds sigma/(C-rho) ~ 1.11 to the shared
	// FIFO bound; the second pushes first's bound past 1.0.
	d, err := c.Admit(conn("second", 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("second admission should have been blocked by first's deadline")
	}
	if !strings.Contains(d.Reason, "first") {
		t.Errorf("reason should blame the existing connection: %q", d.Reason)
	}
}

func TestRejectUnstable(t *testing.T) {
	c, _ := New(fabric(1), analysis.Decomposed{})
	big := conn("big", 100, 0)
	big.Bucket.Rho = 0.6
	if d, _ := c.Admit(big); !d.Admitted {
		t.Fatal("first big flow should fit")
	}
	big2 := big
	big2.Name = "big2"
	d, err := c.Admit(big2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || !strings.Contains(d.Reason, "unstable") {
		t.Fatalf("expected stability rejection, got %+v", d)
	}
}

func TestNoDeadlineIsError(t *testing.T) {
	c, _ := New(fabric(1), analysis.Decomposed{})
	if _, err := c.Admit(conn("free", 0, 0)); err == nil {
		t.Fatal("expected error for deadline-less candidate")
	}
}

func TestRemove(t *testing.T) {
	c, _ := New(fabric(2), analysis.Decomposed{})
	c.Admit(conn("v1", 50, 0, 1))
	c.Admit(conn("v2", 50, 0, 1))
	if !c.Remove("v1") {
		t.Fatal("remove failed")
	}
	if c.Remove("v1") {
		t.Fatal("double remove succeeded")
	}
	if c.Count() != 1 || c.Admitted()[0].Name != "v2" {
		t.Errorf("unexpected state after removal: %+v", c.Admitted())
	}
}

func TestUtilization(t *testing.T) {
	c, _ := New(fabric(2), analysis.Decomposed{})
	c.Admit(conn("v1", 50, 0, 1))
	u := c.Utilization()
	if u[0] != 0.1 || u[1] != 0.1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestTighterAnalysisAdmitsMore(t *testing.T) {
	// The paper's utilization argument: with the same deadline, the
	// integrated analysis admits at least as many connections as the
	// decomposed one on a multi-hop path.
	template := conn("flow", 14, 0, 1, 2, 3)
	template.Bucket.Rho = 0.02

	cd, _ := New(fabric(4), analysis.Decomposed{})
	nd, err := cd.FillGreedy(template, 50)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := New(fabric(4), analysis.Integrated{})
	ni, err := ci.FillGreedy(template, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ni < nd {
		t.Errorf("integrated admitted %d < decomposed %d", ni, nd)
	}
	if ni == 0 {
		t.Error("integrated admitted nothing")
	}
	t.Logf("admitted: decomposed=%d integrated=%d", nd, ni)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, analysis.Decomposed{}); err == nil {
		t.Error("expected error for empty fabric")
	}
	if _, err := New(fabric(1), nil); err == nil {
		t.Error("expected error for nil analyzer")
	}
	if _, err := New([]server.Server{{Capacity: -1}}, analysis.Decomposed{}); err == nil {
		t.Error("expected error for invalid server")
	}
}
