// Package textplot renders simple ASCII line charts for the experiment
// harness, so figure reproductions can be inspected straight from a
// terminal or a CI log without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles through distinguishable glyphs per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the series into a width x height character grid with axis
// annotations. Y values of +Inf are skipped. The chart uses a linear Y
// axis; see PlotLog for a log axis.
func Plot(title string, series []Series, width, height int) string {
	return plot(title, series, width, height, false)
}

// PlotLog renders with a logarithmic Y axis (all finite Y must be > 0).
func PlotLog(title string, series []Series, width, height int) string {
	return plot(title, series, width, height, true)
}

func plot(title string, series []Series, width, height int, logY bool) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			if logY && y <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no finite data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	ty := func(y float64) float64 {
		if logY {
			return math.Log(y)
		}
		return y
	}
	loY, hiY := ty(minY), ty(maxY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if math.IsInf(y, 0) || math.IsNaN(y) || (logY && y <= 0) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((ty(y) - loY) / (hiY - loY) * float64(height-1)))
			grid[height-1-row][col] = m
		}
	}
	axis := "linear"
	if logY {
		axis = "log"
	}
	for r, line := range grid {
		yTop := hiY - (hiY-loY)*float64(r)/float64(height-1)
		label := yTop
		if logY {
			label = math.Exp(yTop)
		}
		fmt.Fprintf(&b, "%10.3f |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.3g%*.3g   (y: %s)\n", "", width/2, minX, width-width/2, maxX, axis)
	names := make([]string, 0, len(series))
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(names, "   "))
	return b.String()
}

// Table renders series as an aligned text table: one row per distinct X,
// one column per series.
func Table(series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%12.4g", x)
		for _, s := range series {
			v := math.NaN()
			for i := range s.X {
				if s.X[i] == x {
					v = s.Y[i]
					break
				}
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %16s", "-")
			} else {
				fmt.Fprintf(&b, " %16.6g", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders series in comma-separated form with an x column followed by
// one column per series (empty cells where a series lacks the x).
func CSV(series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteString(",")
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
