package textplot

import (
	"math"
	"strings"
	"testing"
)

func sample() []Series {
	return []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 2, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 2, 1}},
	}
}

func TestPlotBasics(t *testing.T) {
	out := Plot("demo", sample(), 40, 10)
	for _, want := range []string{"demo", "* a", "o b", "(y: linear)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestPlotLog(t *testing.T) {
	out := PlotLog("log demo", sample(), 40, 10)
	if !strings.Contains(out, "(y: log)") {
		t.Errorf("log axis label missing:\n%s", out)
	}
}

func TestPlotSkipsInfiniteAndEmpty(t *testing.T) {
	s := []Series{{Name: "inf", X: []float64{0, 1}, Y: []float64{math.Inf(1), math.NaN()}}}
	out := Plot("empty", s, 40, 10)
	if !strings.Contains(out, "no finite data") {
		t.Errorf("expected empty-data notice:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := Plot("tiny", sample(), 1, 1)
	if len(strings.Split(out, "\n")) < 5 {
		t.Errorf("plot too small:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	s := []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}}}
	out := Plot("flat", s, 30, 6)
	if !strings.Contains(out, "flat") {
		t.Errorf("constant series not rendered:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table(sample())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 x values
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[0], "b") {
		t.Errorf("header missing series names: %q", lines[0])
	}
}

func TestTableMissingCell(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
		{Name: "b", X: []float64{1}, Y: []float64{9}},
	}
	out := Table(s)
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not marked:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sample())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,4" {
		t.Errorf("row = %q", lines[1])
	}
	if len(lines) != 4 {
		t.Errorf("%d lines", len(lines))
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	s := []Series{{Name: "a,b", X: []float64{0}, Y: []float64{1}}}
	out := CSV(s)
	if !strings.Contains(out, "a;b") {
		t.Errorf("comma in name not escaped: %q", out)
	}
}
