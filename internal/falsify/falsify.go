// Package falsify is the adversarial bound-falsification subsystem: a
// search layer that actively tries to violate the analytic delay bounds
// the repository ships. For every (scenario, analyzer) pair it perturbs
// token-bucket-compliant adversarial traffic — per-source phase offsets,
// burst placements, pacing, and packet sizes — with greedy hill-climbing
// from random restarts, drives the packet simulator, and compares the
// worst observed end-to-end delay against the analyzer's bound.
//
// The simulator already disproved the paper's literal greedy-pair bound
// once (DESIGN.md §4.4): the worst case for a through bit can need cross
// bursts shifted relative to the busy-period start, exactly the degree of
// freedom this search explores. Every shipped analyzer must survive it;
// every future analyzer lands only after it does.
//
// Outputs are per-scenario tightness ratios — max observed delay divided
// by the bound, after subtracting the known L/C packet-quantization slack
// — collected into a machine-readable Report ranking the loosest bounds,
// plus a hard Contradiction (full topology spec, exact adversary controls,
// replay seed) whenever a bound is crossed, so any violation reproduces
// with one command: falsify -replay report.json.
package falsify

import (
	"math"
	"sort"

	"delaycalc/internal/netspec"
	"delaycalc/internal/sim"
)

// TrialParams pins one simulation trial exactly: the packet size and the
// full per-source adversary controls. Together with the scenario's network
// spec they make the trial bit-replayable.
type TrialParams struct {
	PacketSize float64 `json:"packet_size"`
	// Horizon is the emission horizon the trial simulated with; replays
	// reuse it verbatim so the event sequence is bit-identical.
	Horizon   float64       `json:"horizon"`
	Adversary sim.Adversary `json:"adversary"`
}

// Result is the outcome of the search for one (scenario, analyzer) pair.
type Result struct {
	Scenario string `json:"scenario"`
	Analyzer string `json:"analyzer"`
	// Conn is the connection with the highest tightness ratio; ConnName
	// is its human-readable name when the topology assigns one.
	Conn     int    `json:"conn"`
	ConnName string `json:"conn_name,omitempty"`
	// Bound is the analytic end-to-end bound of Conn; Observed the worst
	// simulated delay the search found for it; Slack the packet
	// quantization allowance (sim.QuantizationSlack at the best trial's
	// packet size).
	Bound    float64 `json:"bound"`
	Observed float64 `json:"observed"`
	Slack    float64 `json:"slack"`
	// Tightness is (Observed - Slack) / Bound: 1.0 means the simulator
	// met the bound exactly, small values mean a loose bound, anything
	// above 1.0 is a contradiction.
	Tightness float64 `json:"tightness"`
	// Unbounded marks pairs whose analyzer returned no finite positive
	// bound to attack (the scenario is skipped, not failed).
	Unbounded bool `json:"unbounded,omitempty"`
	// Trials counts simulator runs spent on this pair.
	Trials int `json:"trials"`
	// Truncated is set when the context expired before the full trial
	// budget ran; the ratios are still valid lower bounds on tightness.
	Truncated bool `json:"truncated,omitempty"`
	// Best holds the trial parameters that achieved Observed.
	Best TrialParams `json:"best"`
	// PerConn breaks tightness down by connection (only those with a
	// finite positive bound), each entry the best the adversary managed
	// for that connection across all trials. The headline fields above
	// are the maximum of this list; the multi-hop entries are what a
	// Decomposed-vs-Integrated comparison should read, since 1-hop
	// cross connections are near-tight under every analyzer.
	PerConn []ConnTightness `json:"per_conn,omitempty"`
}

// ConnTightness is one connection's slice of a Result.
type ConnTightness struct {
	Conn      int     `json:"conn"`
	Name      string  `json:"name,omitempty"`
	Hops      int     `json:"hops"`
	Bound     float64 `json:"bound"`
	Observed  float64 `json:"observed"`
	Slack     float64 `json:"slack"`
	Tightness float64 `json:"tightness"`
}

// Contradiction is the hard evidence produced when a simulated delay
// exceeds an analytic bound beyond quantization slack: everything needed
// to reproduce the violation with one command.
type Contradiction struct {
	Scenario string  `json:"scenario"`
	Analyzer string  `json:"analyzer"`
	Conn     int     `json:"conn"`
	ConnName string  `json:"conn_name,omitempty"`
	Bound    float64 `json:"bound"`
	Observed float64 `json:"observed"`
	Slack    float64 `json:"slack"`
	// Spec is the full topology, so the replay needs no access to the
	// scenario matrix that produced it.
	Spec *netspec.Spec `json:"spec"`
	// Params is the exact traffic trace recipe (adversary controls and
	// packet size) of the violating trial.
	Params TrialParams `json:"params"`
	// Seed is the search seed the violation was found under.
	Seed int64 `json:"seed"`
}

// Report is the machine-readable output of one falsification run. For a
// fixed seed, scenario matrix, analyzer set, and budget it is
// byte-for-byte deterministic (results are sorted, no wall-clock state is
// recorded).
type Report struct {
	Seed       int64 `json:"seed"`
	Restarts   int   `json:"restarts"`
	Iterations int   `json:"iterations"`
	// Results holds one entry per (scenario, analyzer) pair, loosest
	// bound first (ascending tightness), so the top of the report is
	// where analytic effort is worst spent today.
	Results []Result `json:"results"`
	// Contradictions lists every crossed bound; an empty list is the
	// certificate CI enforces.
	Contradictions []Contradiction `json:"contradictions,omitempty"`
}

// MaxTightness returns the largest tightness ratio in the report, the
// headline "how close did the adversary get" number.
func (r *Report) MaxTightness() float64 {
	m := 0.0
	for _, res := range r.Results {
		if res.Tightness > m {
			m = res.Tightness
		}
	}
	return m
}

// rank orders results loosest-first and contradictions by identity, making
// the report deterministic regardless of worker scheduling.
func (r *Report) rank() {
	sort.SliceStable(r.Results, func(i, j int) bool {
		a, b := r.Results[i], r.Results[j]
		if a.Tightness != b.Tightness {
			return a.Tightness < b.Tightness
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Analyzer < b.Analyzer
	})
	sort.SliceStable(r.Contradictions, func(i, j int) bool {
		a, b := r.Contradictions[i], r.Contradictions[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Analyzer < b.Analyzer
	})
}

// tightness computes (observed - slack) / bound, clamped at zero so a
// bound slacker than the whole observation reads as 0, not negative.
func tightness(observed, slack, bound float64) float64 {
	if bound <= 0 || math.IsInf(bound, 1) {
		return 0
	}
	t := (observed - slack) / bound
	if t < 0 {
		return 0
	}
	return t
}
