package falsify

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"delaycalc/internal/analysis"
	"delaycalc/internal/netspec"
	"delaycalc/internal/sim"
)

// Options tunes the falsification search.
type Options struct {
	// Seed makes the whole run deterministic: each (scenario, analyzer)
	// pair derives its own RNG from Seed and its identity, so results do
	// not depend on worker scheduling.
	Seed int64
	// Restarts is the number of hill-climbing starts per pair; the first
	// start is always the all-greedy zero-phase baseline (the pattern
	// the analysis is built around), the rest are random adversaries.
	Restarts int
	// Iterations is the number of greedy mutation steps per restart.
	Iterations int
	// PacketSizes are the candidate packet sizes the search may try;
	// the first is the starting size. Smaller packets approximate the
	// fluid model more closely (less slack is subtracted) but simulate
	// slower.
	PacketSizes []float64
	// Parallelism caps concurrent (scenario, analyzer) units; 0 means
	// GOMAXPROCS. Parallel scheduling never changes the report.
	Parallelism int
	// BoundScale is a test-only hook that scales every analytic bound
	// before comparison. Production runs leave it 0 (treated as 1); a
	// test sets it below 1 to corrupt the bounds and prove the harness
	// actually detects and reports contradictions.
	BoundScale float64
}

func (o Options) withDefaults() Options {
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.Iterations <= 0 {
		o.Iterations = 40
	}
	if len(o.PacketSizes) == 0 {
		o.PacketSizes = []float64{0.05, 0.02}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BoundScale <= 0 {
		o.BoundScale = 1
	}
	return o
}

// Search runs the falsification matrix: every scenario against every
// analyzer, in parallel across pairs, each pair a deterministic
// hill-climbing search. Cancellation and deadlines are honored between
// trials and inside the analyzers (via analysis.ContextAnalyzer), so the
// run degrades to a truncated — still valid, still deterministic for a
// fixed budget — report under CI time limits rather than overshooting.
func Search(ctx context.Context, scenarios []Scenario, analyzers []analysis.Analyzer, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("falsify: empty scenario matrix")
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("falsify: no analyzers to attack")
	}
	type unit struct {
		sc Scenario
		an analysis.Analyzer
	}
	var units []unit
	for _, sc := range scenarios {
		for _, an := range analyzers {
			units = append(units, unit{sc, an})
		}
	}
	report := &Report{Seed: opts.Seed, Restarts: opts.Restarts, Iterations: opts.Iterations}
	results := make([]*Result, len(units))
	contras := make([]*Contradiction, len(units))
	errs := make([]error, len(units))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallelism)
	for i := range units {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			u := units[i]
			results[i], contras[i], errs[i] = searchUnit(ctx, u.sc, u.an, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("falsify: %s/%s: %w", units[i].sc.Name, units[i].an.Name(), err)
		}
	}
	for i := range results {
		report.Results = append(report.Results, *results[i])
		if contras[i] != nil {
			report.Contradictions = append(report.Contradictions, *contras[i])
		}
	}
	report.rank()
	return report, nil
}

// unitSeed derives the per-pair RNG seed from the run seed and the pair's
// identity, so adding or filtering scenarios never shifts another pair's
// random stream.
func unitSeed(seed int64, scenario, analyzer string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", scenario, analyzer)
	return seed ^ int64(h.Sum64())
}

// trialOutcome is one simulated trial scored against the bounds.
type trialOutcome struct {
	objective float64 // max per-connection tightness ratio
	violation bool    // some connection crossed bound+slack
}

// searchUnit runs the hill-climbing search for one (scenario, analyzer)
// pair and returns its result plus at most one contradiction.
func searchUnit(ctx context.Context, sc Scenario, an analysis.Analyzer, opts Options) (*Result, *Contradiction, error) {
	res := &Result{Scenario: sc.Name, Analyzer: an.Name(), Conn: -1}
	ares, err := analysis.AnalyzeWithContext(ctx, an, sc.Net)
	if err != nil {
		if ctx.Err() != nil {
			res.Truncated = true
			res.Unbounded = true
			return res, nil, nil
		}
		return nil, nil, err
	}
	bounds := make([]float64, len(ares.Bounds))
	attackable := false
	for i, b := range ares.Bounds {
		bounds[i] = b * opts.BoundScale
		if !math.IsInf(b, 1) && b > 0 {
			attackable = true
		}
	}
	if !attackable {
		res.Unbounded = true
		return res, nil, nil
	}

	rng := rand.New(rand.NewSource(unitSeed(opts.Seed, sc.Name, an.Name())))
	horizon := sim.WorstCaseHorizon(sc.Net) + 2*sc.Spread

	// perConn accumulates, per connection, the best the adversary has
	// managed across every trial (not just accepted hill-climb states).
	perConn := make([]ConnTightness, len(sc.Net.Connections))
	for c := range perConn {
		perConn[c] = ConnTightness{
			Conn:  c,
			Name:  sc.Net.Connections[c].Name,
			Hops:  len(sc.Net.Connections[c].Path),
			Bound: bounds[c],
		}
	}

	evaluate := func(p TrialParams) (trialOutcome, error) {
		sres, err := sim.Run(sc.Net, sim.Config{
			PacketSize: p.PacketSize,
			Horizon:    p.Horizon,
			Adversary:  &p.Adversary,
		})
		if err != nil {
			return trialOutcome{}, err
		}
		var out trialOutcome
		for c := range sc.Net.Connections {
			b := bounds[c]
			if math.IsInf(b, 1) || b <= 0 {
				continue
			}
			obs := sres.Stats[c].MaxDelay
			slack := sim.QuantizationSlack(sc.Net, c, p.PacketSize)
			r := tightness(obs, slack, b)
			if r > out.objective {
				out.objective = r
			}
			if r > perConn[c].Tightness || (perConn[c].Observed == 0 && obs > 0) {
				perConn[c].Observed = obs
				perConn[c].Slack = slack
				perConn[c].Tightness = r
			}
			if obs > b+slack {
				out.violation = true
			}
		}
		res.Trials++
		return out, nil
	}

	bestObjective := -1.0
	var bestParams TrialParams
	var contra *Contradiction

	// consider scores a trial, keeps the globally best parameters, and
	// converts the first conforming violation into a contradiction.
	consider := func(p TrialParams, out trialOutcome) {
		if out.objective > bestObjective {
			bestObjective = out.objective
			bestParams = cloneParams(p)
		}
		if out.violation && contra == nil {
			if c := buildContradiction(sc, an.Name(), bounds, p, opts.Seed); c != nil {
				contra = c
			}
		}
	}

	zero := TrialParams{
		PacketSize: opts.PacketSizes[0],
		Horizon:    horizon,
		Adversary:  sim.Adversary{Seed: opts.Seed, Controls: make([]sim.SourceControl, len(sc.Net.Connections))},
	}
restarts:
	for r := 0; r < opts.Restarts && contra == nil; r++ {
		var cur TrialParams
		if r == 0 {
			cur = cloneParams(zero)
		} else {
			advSeed := rng.Int63()
			cur = TrialParams{
				PacketSize: opts.PacketSizes[rng.Intn(len(opts.PacketSizes))],
				Horizon:    horizon,
				Adversary:  *sim.RandomAdversary(sc.Net, advSeed, sc.Spread),
			}
		}
		if ctx.Err() != nil {
			res.Truncated = true
			break
		}
		curOut, err := evaluate(cur)
		if err != nil {
			return nil, nil, err
		}
		consider(cur, curOut)
		for it := 0; it < opts.Iterations && contra == nil; it++ {
			if ctx.Err() != nil {
				res.Truncated = true
				break restarts
			}
			cand := mutate(rng, cur, sc.Spread, opts.PacketSizes)
			candOut, err := evaluate(cand)
			if err != nil {
				return nil, nil, err
			}
			consider(cand, candOut)
			if candOut.objective > curOut.objective {
				cur, curOut = cand, candOut
			}
		}
	}

	worst := -1
	for c := range perConn {
		b := bounds[c]
		if math.IsInf(b, 1) || b <= 0 {
			continue
		}
		res.PerConn = append(res.PerConn, perConn[c])
		if worst < 0 || perConn[c].Tightness > perConn[worst].Tightness {
			worst = c
		}
	}
	if worst >= 0 && res.Trials > 0 {
		res.Conn = worst
		res.ConnName = perConn[worst].Name
		res.Bound = perConn[worst].Bound
		res.Observed = perConn[worst].Observed
		res.Slack = perConn[worst].Slack
		res.Tightness = perConn[worst].Tightness
		res.Best = bestParams
	} else {
		res.Unbounded = true
		res.PerConn = nil
	}
	return res, contra, nil
}

// cloneParams deep-copies trial parameters so hill-climbing mutations
// never alias an accepted state.
func cloneParams(p TrialParams) TrialParams {
	p.Adversary.Controls = append([]sim.SourceControl(nil), p.Adversary.Controls...)
	return p
}

// mutate proposes one neighbor: usually a single-source knob perturbation
// (phase or burst-placement nudge, pacing toggle), occasionally a packet
// size switch. Offsets are clamped to [0, spread].
func mutate(rng *rand.Rand, p TrialParams, spread float64, packetSizes []float64) TrialParams {
	out := cloneParams(p)
	if len(packetSizes) > 1 && rng.Intn(8) == 0 {
		out.PacketSize = packetSizes[rng.Intn(len(packetSizes))]
		return out
	}
	if len(out.Adversary.Controls) == 0 {
		return out
	}
	i := rng.Intn(len(out.Adversary.Controls))
	ctl := &out.Adversary.Controls[i]
	step := spread / 4
	switch rng.Intn(3) {
	case 0:
		ctl.Phase = clamp(ctl.Phase+(rng.Float64()*2-1)*step, 0, spread)
	case 1:
		ctl.BurstDelay = clamp(ctl.BurstDelay+(rng.Float64()*2-1)*step, 0, spread)
	default:
		ctl.Pace = !ctl.Pace
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

// buildContradiction validates and packages a violating trial. The trace
// of every source is re-generated and checked against its declared token
// bucket first: a delay observed under non-conforming traffic would say
// nothing about the bound, so such trials are discarded (returns nil)
// rather than reported.
func buildContradiction(sc Scenario, analyzer string, bounds []float64, p TrialParams, seed int64) *Contradiction {
	for i, c := range sc.Net.Connections {
		times := p.Adversary.Source(c, i).Times(p.PacketSize, p.Horizon)
		if err := c.Bucket.Conforms(times, p.PacketSize); err != nil {
			return nil
		}
	}
	sres, err := sim.Run(sc.Net, sim.Config{PacketSize: p.PacketSize, Horizon: p.Horizon, Adversary: &p.Adversary})
	if err != nil {
		return nil
	}
	worst := -1
	worstExcess := 0.0
	for c := range sc.Net.Connections {
		b := bounds[c]
		if math.IsInf(b, 1) || b <= 0 {
			continue
		}
		slack := sim.QuantizationSlack(sc.Net, c, p.PacketSize)
		if excess := sres.Stats[c].MaxDelay - (b + slack); excess > worstExcess {
			worst = c
			worstExcess = excess
		}
	}
	if worst < 0 {
		return nil
	}
	return &Contradiction{
		Scenario: sc.Name,
		Analyzer: analyzer,
		Conn:     worst,
		ConnName: sc.Net.Connections[worst].Name,
		Bound:    bounds[worst],
		Observed: sres.Stats[worst].MaxDelay,
		Slack:    sim.QuantizationSlack(sc.Net, worst, p.PacketSize),
		Spec:     netspec.ToSpec(sc.Net),
		Params:   cloneParams(p),
		Seed:     seed,
	}
}

// ReplayOutcome is the result of re-running a contradiction's trial.
type ReplayOutcome struct {
	// Observed is the re-simulated worst delay of the contradicted
	// connection.
	Observed float64
	// Violates reports whether the replay still exceeds the recorded
	// bound plus slack.
	Violates bool
	// Matches reports whether the replay reproduced the recorded
	// observation exactly (the simulator is deterministic, so it must).
	Matches bool
}

// Replay re-runs a contradiction from its own spec and trial parameters
// alone and checks that the violation reproduces. It is the "one command"
// that makes every reported violation independently verifiable.
func Replay(c *Contradiction) (*ReplayOutcome, error) {
	if c.Spec == nil {
		return nil, fmt.Errorf("falsify: contradiction carries no topology spec")
	}
	net, err := netspec.FromSpec(c.Spec)
	if err != nil {
		return nil, fmt.Errorf("falsify: rebuilding topology: %w", err)
	}
	if c.Conn < 0 || c.Conn >= len(net.Connections) {
		return nil, fmt.Errorf("falsify: connection %d out of range", c.Conn)
	}
	if c.Params.Horizon <= 0 {
		return nil, fmt.Errorf("falsify: contradiction carries no trial horizon")
	}
	for i, conn := range net.Connections {
		times := c.Params.Adversary.Source(conn, i).Times(c.Params.PacketSize, c.Params.Horizon)
		if err := conn.Bucket.Conforms(times, c.Params.PacketSize); err != nil {
			return nil, fmt.Errorf("falsify: replay trace does not conform: %w", err)
		}
	}
	sres, err := sim.Run(net, sim.Config{
		PacketSize: c.Params.PacketSize,
		Horizon:    c.Params.Horizon,
		Adversary:  &c.Params.Adversary,
	})
	if err != nil {
		return nil, err
	}
	obs := sres.Stats[c.Conn].MaxDelay
	return &ReplayOutcome{
		Observed: obs,
		Violates: obs > c.Bound+c.Slack,
		Matches:  obs == c.Observed,
	}, nil
}
