package falsify

import (
	"fmt"
	"sort"
	"strings"

	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// Scenario is one entry of the falsification matrix: a named network plus
// the adversary's search envelope.
type Scenario struct {
	Name string
	Net  *topo.Network
	// Spread bounds the phase offsets and burst delays the adversary may
	// try, in time units; it also pads the simulation horizon so shifted
	// activity still completes its busy periods.
	Spread float64
}

// DefaultMatrix builds the standing scenario matrix from the topo
// builders: paper tandems across size and load, the parking-lot and
// sink-tree stress shapes, random feedforward meshes, and routed fabric
// networks (star hub contention, bidirectional line). Every scenario is
// stable and FIFO, so the Decomposed and Integrated bounds apply and must
// hold.
func DefaultMatrix() ([]Scenario, error) {
	var out []Scenario
	add := func(name string, net *topo.Network, err error, spread float64) error {
		if err != nil {
			return fmt.Errorf("falsify: building %s: %w", name, err)
		}
		out = append(out, Scenario{Name: name, Net: net, Spread: spread})
		return nil
	}
	for _, tc := range []struct {
		n int
		u float64
	}{{2, 0.5}, {2, 0.8}, {3, 0.7}, {4, 0.8}} {
		net, err := topo.PaperTandem(tc.n, tc.u)
		if err := add(fmt.Sprintf("tandem%d-u%02.0f", tc.n, tc.u*100), net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		net, err := topo.ParkingLot(4, 1, 0.3, 1)
		if err := add("parkinglot4", net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		net, err := topo.SinkTree(3, 1, 0.1, 1)
		if err := add("sinktree3", net, err, 8); err != nil {
			return nil, err
		}
	}
	for seed := int64(1); seed <= 2; seed++ {
		net, err := topo.RandomFeedforward(5, 8, 0.7, seed)
		if err := add(fmt.Sprintf("randff-s%d", seed), net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		// Demands are chosen to overlap: two flows converge on hub->l0
		// and hub->l1, and two share the l2->hub uplink, so the hub
		// ports actually multiplex (a one-flow-per-link star has zero
		// fluid delay and nothing to falsify).
		f := topo.StarFabric(4, 1, server.FIFO)
		net, err := f.Network([]topo.Demand{
			fabricDemand("d10", "l1", "l0"),
			fabricDemand("d20", "l2", "l0"),
			fabricDemand("d01", "l0", "l1"),
			fabricDemand("d31", "l3", "l1"),
			fabricDemand("d23", "l2", "l3"),
		})
		if err := add("star4", net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		// The smallest fat-tree (k=2: 8 link servers) with two hosts per
		// edge switch, so uplinks and core downlinks genuinely multiplex.
		net, err := topo.FatTree(2, 2, 0.5)
		if err := add("fattree2", net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		// The k=4 folded Clos: 64 link servers, 16 host flows hashed
		// across two aggregation and four core choices.
		net, err := topo.Clos(4, 0.6)
		if err := add("clos4", net, err, 8); err != nil {
			return nil, err
		}
	}
	{
		f := topo.LineFabric(4, 1, server.FIFO)
		net, err := f.Network([]topo.Demand{
			fabricDemand("fwd", "n0", "n3"),
			fabricDemand("mid", "n1", "n3"),
			fabricDemand("rev", "n3", "n0"),
			fabricDemand("back", "n2", "n0"),
		})
		if err := add("line4", net, err, 8); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fabricDemand is the uniform token-bucket demand the fabric scenarios
// use: unit burst at a fifth of the line rate.
func fabricDemand(name, from, to string) topo.Demand {
	return topo.Demand{
		Name: name, From: from, To: to,
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.2},
		AccessRate: 1,
	}
}

// FilterMatrix keeps the scenarios whose name contains any of the
// comma-separated substrings (case-insensitive); an empty filter keeps
// everything.
func FilterMatrix(scenarios []Scenario, filter string) []Scenario {
	filter = strings.TrimSpace(filter)
	if filter == "" {
		return scenarios
	}
	var pats []string
	for _, p := range strings.Split(filter, ",") {
		if p = strings.ToLower(strings.TrimSpace(p)); p != "" {
			pats = append(pats, p)
		}
	}
	var out []Scenario
	for _, sc := range scenarios {
		name := strings.ToLower(sc.Name)
		for _, p := range pats {
			if strings.Contains(name, p) {
				out = append(out, sc)
				break
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
