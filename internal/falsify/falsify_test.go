package falsify

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"delaycalc/internal/analysis"
)

func smallMatrix(t *testing.T, names string) []Scenario {
	t.Helper()
	all, err := DefaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	m := FilterMatrix(all, names)
	if len(m) == 0 {
		t.Fatalf("filter %q matched nothing", names)
	}
	return m
}

func smallOptions(seed int64) Options {
	return Options{
		Seed:        seed,
		Restarts:    2,
		Iterations:  6,
		PacketSizes: []float64{0.05},
	}
}

func TestDefaultMatrixScenariosAnalyzable(t *testing.T) {
	matrix, err := DefaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix) < 6 {
		t.Fatalf("matrix has only %d scenarios", len(matrix))
	}
	seen := map[string]bool{}
	for _, sc := range matrix {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Net.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if !sc.Net.Stable() {
			t.Errorf("%s: unstable network in matrix", sc.Name)
		}
		if !sc.Net.IsFeedforward() {
			t.Errorf("%s: matrix scenario is not feedforward", sc.Name)
		}
		if sc.Spread <= 0 {
			t.Errorf("%s: non-positive spread", sc.Name)
		}
	}
}

func TestSearchDeterministicAcrossRuns(t *testing.T) {
	matrix := smallMatrix(t, "tandem2-u50,parkinglot")
	analyzers := []analysis.Analyzer{analysis.Decomposed{}, analysis.Integrated{}}
	r1, err := Search(context.Background(), matrix, analyzers, smallOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	// Second run with higher parallelism must not change a byte.
	opts := smallOptions(11)
	opts.Parallelism = 8
	r2, err := Search(context.Background(), matrix, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("same seed produced different reports:\n%s\nvs\n%s", j1, j2)
	}
	// A different seed explores differently (controls differ even if the
	// headline ratios agree).
	r3, err := Search(context.Background(), matrix, analyzers, smallOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Results, r3.Results) {
		t.Log("warning: different seeds produced identical results (possible but unlikely)")
	}
}

func TestSoundBoundsSurviveAndAreLoose(t *testing.T) {
	matrix := smallMatrix(t, "parkinglot,tandem2")
	analyzers := []analysis.Analyzer{analysis.Decomposed{}, analysis.Integrated{}}
	rep, err := Search(context.Background(), matrix, analyzers, smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Contradictions) != 0 {
		t.Fatalf("sound analyzers contradicted: %+v", rep.Contradictions)
	}
	if got, want := len(rep.Results), len(matrix)*len(analyzers); got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}
	for _, res := range rep.Results {
		if res.Unbounded {
			t.Errorf("%s/%s: unexpectedly unbounded", res.Scenario, res.Analyzer)
			continue
		}
		if res.Tightness <= 0 || res.Tightness >= 1 {
			t.Errorf("%s/%s: tightness %g outside (0, 1)", res.Scenario, res.Analyzer, res.Tightness)
		}
		if res.Trials == 0 {
			t.Errorf("%s/%s: no trials recorded", res.Scenario, res.Analyzer)
		}
		if res.Bound <= 0 || res.Observed <= 0 {
			t.Errorf("%s/%s: degenerate bound %g / observed %g", res.Scenario, res.Analyzer, res.Bound, res.Observed)
		}
	}
	// Results must be ranked loosest-first.
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i].Tightness < rep.Results[i-1].Tightness {
			t.Fatalf("results not ranked: %g before %g", rep.Results[i-1].Tightness, rep.Results[i].Tightness)
		}
	}
}

func TestCorruptedBoundYieldsReplayableContradiction(t *testing.T) {
	matrix := smallMatrix(t, "tandem2-u80")
	opts := smallOptions(9)
	opts.BoundScale = 0.3 // test-only corruption: shrink every bound by 70%
	rep, err := Search(context.Background(), matrix, []analysis.Analyzer{analysis.Decomposed{}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Contradictions) == 0 {
		t.Fatal("corrupted bounds produced no contradiction")
	}
	c := rep.Contradictions[0]
	if c.Spec == nil || len(c.Spec.Servers) == 0 {
		t.Fatal("contradiction carries no topology spec")
	}
	if c.Seed != opts.Seed {
		t.Fatalf("contradiction seed %d, want %d", c.Seed, opts.Seed)
	}
	if c.Observed <= c.Bound+c.Slack {
		t.Fatalf("recorded observation %g does not exceed bound %g + slack %g", c.Observed, c.Bound, c.Slack)
	}
	// The contradiction must replay from its own spec alone, exactly.
	out, err := Replay(&c)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Violates {
		t.Fatalf("replay does not violate: observed %g, bound %g + slack %g", out.Observed, c.Bound, c.Slack)
	}
	if !out.Matches {
		t.Fatalf("replay observed %g, recorded %g", out.Observed, c.Observed)
	}
	// A contradiction must survive a JSON round trip (the report file is
	// the transport between the finder and the replayer).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	out2, err := Replay(&decoded.Contradictions[0])
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Violates || !out2.Matches {
		t.Fatal("decoded contradiction did not replay identically")
	}
}

func TestSearchHonorsCancellation(t *testing.T) {
	matrix := smallMatrix(t, "tandem")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: every unit must bail out quickly
	opts := smallOptions(1)
	opts.Iterations = 1000
	opts.Restarts = 1000
	start := time.Now()
	rep, err := Search(ctx, matrix, []analysis.Analyzer{analysis.Integrated{}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancelled search ran for too long")
	}
	for _, res := range rep.Results {
		if !res.Truncated {
			t.Errorf("%s/%s: cancelled unit not marked truncated", res.Scenario, res.Analyzer)
		}
	}
}

func TestFilterMatrix(t *testing.T) {
	all, err := DefaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if got := FilterMatrix(all, ""); len(got) != len(all) {
		t.Fatalf("empty filter dropped scenarios: %d vs %d", len(got), len(all))
	}
	tandems := FilterMatrix(all, "tandem")
	if len(tandems) == 0 {
		t.Fatal("tandem filter matched nothing")
	}
	for _, sc := range tandems {
		if got := sc.Name[:6]; got != "tandem" {
			t.Fatalf("filter leaked scenario %q", sc.Name)
		}
	}
	if got := FilterMatrix(all, "tandem2-u50,star4"); len(got) != 2 {
		t.Fatalf("compound filter matched %d scenarios", len(got))
	}
}
