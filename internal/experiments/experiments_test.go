package experiments

import (
	"math"
	"strings"
	"testing"
)

var quickLoads = []float64{0.2, 0.5, 0.8}

func TestFigure4Shape(t *testing.T) {
	fig, err := Figure4(quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Delays) != 8 || len(fig.Improvement) != 4 {
		t.Fatalf("series counts: %d delays, %d improvements", len(fig.Delays), len(fig.Improvement))
	}
	// Paper claim: at high load the service-curve method is worse than
	// decomposition (negative improvement of SC over D means D wins).
	for _, imp := range fig.Improvement {
		last := imp.Y[len(imp.Y)-1]
		if last > 0 {
			t.Errorf("%s: at U=0.8 the service-curve method should not beat decomposition (R=%g)", imp.Name, last)
		}
	}
	// All delays finite and increasing in load.
	for _, s := range fig.Delays {
		for i := range s.Y {
			if math.IsInf(s.Y[i], 0) || s.Y[i] <= 0 {
				t.Errorf("%s: bad delay %g at U=%g", s.Name, s.Y[i], s.X[i])
			}
			if i > 0 && s.Y[i] <= s.Y[i-1] {
				t.Errorf("%s: delay not increasing in load", s.Name)
			}
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5(quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	// Paper claim: Integrated always outperforms Decomposed, and for loads
	// up to 80% the improvement grows with network size.
	for _, imp := range fig.Improvement {
		for i, r := range imp.Y {
			if r <= 0 {
				t.Errorf("%s: improvement %g at U=%g, want positive", imp.Name, r, imp.X[i])
			}
		}
	}
	for i := range quickLoads {
		prev := -1.0
		for _, imp := range fig.Improvement { // ordered n = 2, 4, 8
			if imp.Y[i] <= prev {
				t.Errorf("improvement at U=%g did not grow with size: %g after %g",
					quickLoads[i], imp.Y[i], prev)
			}
			prev = imp.Y[i]
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	// Paper claim: Integrated significantly outperforms ServiceCurve.
	for _, imp := range fig.Improvement {
		for i, r := range imp.Y {
			if r <= 0.1 {
				t.Errorf("%s: improvement %g at U=%g, want clearly positive", imp.Name, r, imp.X[i])
			}
		}
	}
}

func TestRelativeImprovement(t *testing.T) {
	if got := RelativeImprovement(10, 5); got != 0.5 {
		t.Errorf("R(10,5) = %g", got)
	}
	if got := RelativeImprovement(0, 5); got != 0 {
		t.Errorf("R(0,5) = %g", got)
	}
	if got := RelativeImprovement(5, 10); got != -1 {
		t.Errorf("R(5,10) = %g", got)
	}
}

func TestBurstinessSweepInvariance(t *testing.T) {
	// Paper Section 4.1: larger sigma raises absolute delays but barely
	// moves the relative improvement.
	imp, abs, err := BurstinessSweep(4, 0.6, []float64{0.5, 1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(abs.Y); i++ {
		if abs.Y[i] <= abs.Y[i-1] {
			t.Errorf("absolute delay did not grow with sigma: %v", abs.Y)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range imp.Y {
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi-lo > 0.02 {
		t.Errorf("relative improvement varies with sigma beyond tolerance: spread %g (%v)", hi-lo, imp.Y)
	}
}

func TestValidationSweepSoundness(t *testing.T) {
	series, err := ValidationSweep(3, quickLoads, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	simS := series[0]
	for _, bound := range series[1:] {
		for i := range simS.Y {
			if simS.Y[i] > bound.Y[i]+0.1 {
				t.Errorf("%s at U=%g: simulated %g exceeds bound %g",
					bound.Name, simS.X[i], simS.Y[i], bound.Y[i])
			}
		}
	}
}

// TestDelayPercentileSweep checks the sampling-enabled experiment: no NaN
// anywhere (the bug this experiment guards against), percentiles ordered,
// and the p100 simulated worst case inside the analytic bound.
func TestDelayPercentileSweep(t *testing.T) {
	series, err := DelayPercentileSweep(3, quickLoads, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	p50, p99, p100, bound := series[0], series[1], series[2], series[3]
	for i := range p50.Y {
		for _, s := range series {
			if math.IsNaN(s.Y[i]) {
				t.Fatalf("%s at U=%g is NaN", s.Name, s.X[i])
			}
		}
		if !(p50.Y[i] <= p99.Y[i] && p99.Y[i] <= p100.Y[i]) {
			t.Errorf("U=%g: percentiles not ordered: %g %g %g", p50.X[i], p50.Y[i], p99.Y[i], p100.Y[i])
		}
		if p100.Y[i] > bound.Y[i]+0.1 {
			t.Errorf("U=%g: simulated p100 %g exceeds integrated bound %g", p100.X[i], p100.Y[i], bound.Y[i])
		}
	}
}

func TestAblationPairing(t *testing.T) {
	series, err := AblationPairing(4, quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	paired, single := series[0], series[1]
	for i := range paired.Y {
		if paired.Y[i] >= single.Y[i] {
			t.Errorf("U=%g: pairing did not help (%g vs %g)", paired.X[i], paired.Y[i], single.Y[i])
		}
	}
}

func TestGreedyGapOrdering(t *testing.T) {
	series, err := GreedyGap([]float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	simulated, est, sound := series[0], series[1], series[2]
	for i := range simulated.Y {
		// The sound bound must dominate the simulation; the greedy
		// estimate need not (that is the point of the experiment).
		if simulated.Y[i] > sound.Y[i]+0.1 {
			t.Errorf("U=%g: simulation %g above sound bound %g", simulated.X[i], simulated.Y[i], sound.Y[i])
		}
		if est.Y[i] > sound.Y[i]+1e-9 {
			t.Errorf("U=%g: greedy estimate %g above sound bound %g", est.X[i], est.Y[i], sound.Y[i])
		}
	}
}

func TestGuaranteedRateComparison(t *testing.T) {
	series, err := GuaranteedRateComparison(4, quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	netCurve, decomposed := series[0], series[1]
	for i := range netCurve.Y {
		if netCurve.Y[i] >= decomposed.Y[i] {
			t.Errorf("U=%g: network curve %g should beat GR decomposition %g",
				netCurve.X[i], netCurve.Y[i], decomposed.Y[i])
		}
	}
}

func TestStaticPriorityExperiment(t *testing.T) {
	series, err := StaticPriorityExperiment(4, quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	dec, integ, fifo := series[0], series[1], series[2]
	for i := range dec.Y {
		if integ.Y[i] > dec.Y[i]+1e-9 {
			t.Errorf("U=%g: integrated SP %g worse than decomposed SP %g",
				integ.X[i], integ.Y[i], dec.Y[i])
		}
		// The bulk class under SP pays for urgent isolation: worse than
		// FIFO at equal load.
		if dec.Y[i] <= fifo.Y[i] {
			t.Errorf("U=%g: low-priority SP %g should exceed FIFO %g", dec.X[i], dec.Y[i], fifo.Y[i])
		}
	}
	// The integrated SP analysis must win strictly somewhere.
	strict := false
	for i := range dec.Y {
		if integ.Y[i] < dec.Y[i]-1e-9 {
			strict = true
		}
	}
	if !strict {
		t.Error("integrated SP never strictly better than decomposed SP")
	}
}

func TestRenderContainsPanels(t *testing.T) {
	fig, err := Figure5([]float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	out := Render(fig)
	for _, want := range []string{"end-to-end delay", "relative improvement", "Integrated(2)", "Decomposed(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestEDFExperiment(t *testing.T) {
	series, err := EDFExperiment(4, quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	urgent, cross, fifo := series[0], series[1], series[2]
	for i := range urgent.Y {
		if urgent.Y[i] >= fifo.Y[i] {
			t.Errorf("U=%g: urgent EDF bound %g should beat FIFO %g", urgent.X[i], urgent.Y[i], fifo.Y[i])
		}
		if cross.Y[i] <= urgent.Y[i] {
			t.Errorf("U=%g: relaxed cross bound %g should exceed urgent %g", cross.X[i], cross.Y[i], urgent.Y[i])
		}
	}
}

func TestChainLengthSweep(t *testing.T) {
	series, err := ChainLengthSweep(6, quickLoads)
	if err != nil {
		t.Fatal(err)
	}
	dec, pairs, full := series[0], series[1], series[2]
	for i := range dec.Y {
		if pairs.Y[i] >= dec.Y[i] {
			t.Errorf("U=%g: pairs %g not better than decomposed %g", pairs.X[i], pairs.Y[i], dec.Y[i])
		}
		// The fixpoint propagation converges to (at least) the pairs
		// partition up to a small residue at low loads, and wins clearly
		// at high load (checked below).
		if full.Y[i] > pairs.Y[i]*1.001 {
			t.Errorf("U=%g: full chain %g materially worse than pairs %g", full.X[i], full.Y[i], pairs.Y[i])
		}
	}
	last := len(full.Y) - 1
	if full.Y[last] >= pairs.Y[last]*0.99 {
		t.Errorf("at U=%g the full chain %g should clearly beat pairs %g",
			full.X[last], full.Y[last], pairs.Y[last])
	}
}

func TestAdmissionCapacity(t *testing.T) {
	series, err := AdmissionCapacity(4, []float64{8, 14, 25}, 60)
	if err != nil {
		t.Fatal(err)
	}
	dec, sc, integ := series[0], series[1], series[2]
	for i := range dec.Y {
		if integ.Y[i] < dec.Y[i] {
			t.Errorf("deadline %g: integrated admits %g < decomposed %g",
				integ.X[i], integ.Y[i], dec.Y[i])
		}
		if sc.Y[i] < 0 {
			t.Errorf("negative count %g", sc.Y[i])
		}
	}
	// Looser deadlines admit at least as many connections.
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s: capacity not monotone in deadline: %v", s.Name, s.Y)
			}
		}
	}
	// Somewhere the integrated analysis must admit strictly more.
	strict := false
	for i := range dec.Y {
		if integ.Y[i] > dec.Y[i] {
			strict = true
		}
	}
	if !strict {
		t.Error("integrated never admitted strictly more than decomposed")
	}
}
