package experiments

import (
	"fmt"
	"math"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/minplus"
	"delaycalc/internal/server"
	"delaycalc/internal/sim"
	"delaycalc/internal/textplot"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// ValidationSweep simulates the paper tandem with greedy sources and
// returns the observed worst delay of connection 0 next to the three
// analytic bounds — the soundness check the paper could not run (it had no
// simulator). Every bound series must dominate the simulation series.
func ValidationSweep(n int, loads []float64, packetSize float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	simS := textplot.Series{Name: fmt.Sprintf("Simulated(%d)", n)}
	analyzers := []analysis.Analyzer{analysis.Integrated{}, analysis.Decomposed{}, analysis.ServiceCurve{}}
	bounds := make([]textplot.Series, len(analyzers))
	for i, a := range analyzers {
		bounds[i] = textplot.Series{Name: fmt.Sprintf("%s(%d)", a.Name(), n)}
	}
	for _, u := range loads {
		net, err := topo.PaperTandem(n, u)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(net, sim.Config{PacketSize: packetSize, Horizon: sim.WorstCaseHorizon(net)})
		if err != nil {
			return nil, err
		}
		simS.X = append(simS.X, u)
		simS.Y = append(simS.Y, res.Stats[0].MaxDelay)
		for i, a := range analyzers {
			r, err := a.Analyze(net)
			if err != nil {
				return nil, err
			}
			bounds[i].X = append(bounds[i].X, u)
			bounds[i].Y = append(bounds[i].Y, r.Bound(0))
		}
	}
	return append([]textplot.Series{simS}, bounds...), nil
}

// DelayPercentileSweep simulates the paper tandem with per-packet sampling
// enabled and reports conn-0 delay percentiles (p50, p99, p100) next to
// the integrated bound: how far inside the worst-case envelope typical
// packets live. Sampling MUST be on here — sim.ConnStats.Percentile
// returns NaN without Config.KeepSamples, which would silently poison the
// table — and the guard below turns any residual NaN into an error instead
// of a corrupt figure.
func DelayPercentileSweep(n int, loads []float64, packetSize float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	p50 := textplot.Series{Name: fmt.Sprintf("p50(%d)", n)}
	p99 := textplot.Series{Name: fmt.Sprintf("p99(%d)", n)}
	p100 := textplot.Series{Name: fmt.Sprintf("p100(%d)", n)}
	bound := textplot.Series{Name: fmt.Sprintf("Integrated(%d)", n)}
	for _, u := range loads {
		net, err := topo.PaperTandem(n, u)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(net, sim.Config{
			PacketSize: packetSize, Horizon: sim.WorstCaseHorizon(net), KeepSamples: true,
		})
		if err != nil {
			return nil, err
		}
		st := res.Stats[0]
		for _, q := range []struct {
			s *textplot.Series
			p float64
		}{{&p50, 0.5}, {&p99, 0.99}, {&p100, 1}} {
			v := st.Percentile(q.p)
			if math.IsNaN(v) {
				return nil, fmt.Errorf("percentile sweep: p%g is NaN at load %g (sampling disabled?)", 100*q.p, u)
			}
			q.s.X = append(q.s.X, u)
			q.s.Y = append(q.s.Y, v)
		}
		r, err := (analysis.Integrated{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		bound.X = append(bound.X, u)
		bound.Y = append(bound.Y, r.Bound(0))
	}
	return []textplot.Series{p50, p99, p100, bound}, nil
}

// AblationPairing quantifies the value of the two-server pairing: the same
// Integrated machinery with pairing disabled degenerates to decomposition.
// Returns the conn-0 bounds with and without pairing.
func AblationPairing(n int, loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	paired := textplot.Series{Name: fmt.Sprintf("Paired(%d)", n)}
	single := textplot.Series{Name: fmt.Sprintf("Singletons(%d)", n)}
	for _, u := range loads {
		net, err := topo.PaperTandem(n, u)
		if err != nil {
			return nil, err
		}
		rp, err := (analysis.Integrated{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		rs, err := (analysis.Integrated{DisablePairing: true}).Analyze(net)
		if err != nil {
			return nil, err
		}
		paired.X = append(paired.X, u)
		paired.Y = append(paired.Y, rp.Bound(0))
		single.X = append(single.X, u)
		single.Y = append(single.Y, rs.Bound(0))
	}
	return []textplot.Series{paired, single}, nil
}

// GreedyGap compares, on the paper's two-multiplexor subsystem (Figure 1),
// the literal greedy-scenario evaluation of Lemma 4 against the sound
// residual-curve pair bound and the simulated worst case. It documents why
// the shipped analyzer does not use the greedy evaluation: the simulation
// can exceed it.
func GreedyGap(loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	est := textplot.Series{Name: "GreedyLemma4"}
	sound := textplot.Series{Name: "Integrated"}
	simulated := textplot.Series{Name: "Simulated"}
	for _, u := range loads {
		net, err := topo.PaperTandem(2, u)
		if err != nil {
			return nil, err
		}
		// Subsystem envelopes as the analyzer sees them: everything fresh.
		rho := u / 4
		f12 := minplus.Sum(
			traffic.TokenBucket{Sigma: 1, Rho: rho}.EnvelopeCapped(1),
			traffic.TokenBucket{Sigma: 1, Rho: rho}.EnvelopeCapped(1),
		)
		f1 := traffic.TokenBucket{Sigma: 1, Rho: rho}.EnvelopeCapped(1)
		f2 := minplus.Sum(
			traffic.TokenBucket{Sigma: 1, Rho: rho}.EnvelopeCapped(1),
			traffic.TokenBucket{Sigma: 1, Rho: rho}.EnvelopeCapped(1),
		)
		est.X = append(est.X, u)
		est.Y = append(est.Y, analysis.GreedyPairEstimate(f12, f1, f2, 1, 1))

		ri, err := (analysis.Integrated{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		sound.X = append(sound.X, u)
		sound.Y = append(sound.Y, ri.Bound(0))

		res, err := sim.Run(net, sim.Config{PacketSize: 0.01, Horizon: sim.WorstCaseHorizon(net)})
		if err != nil {
			return nil, err
		}
		simulated.X = append(simulated.X, u)
		simulated.Y = append(simulated.Y, res.Stats[0].MaxDelay)
	}
	return []textplot.Series{simulated, est, sound}, nil
}

// GuaranteedRateComparison reproduces the paper's Section 1.2 observation:
// for guaranteed-rate servers the network-service-curve method is the
// right tool and clearly beats per-hop decomposition. It returns conn-0
// bounds for a WFQ tandem under both methods.
func GuaranteedRateComparison(n int, loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	netCurve := textplot.Series{Name: fmt.Sprintf("NetworkCurve(%d)", n)}
	decomposed := textplot.Series{Name: fmt.Sprintf("Decomposed(%d)", n)}
	for _, u := range loads {
		net, err := topo.Tandem(topo.TandemSpec{
			Switches: n, Sigma: 1, Rho: u / 4, Capacity: 1,
			Discipline: server.GuaranteedRate,
		})
		if err != nil {
			return nil, err
		}
		// A WFQ server needs a scheduling latency and per-connection
		// reservations; an interior link carries at most four
		// connections, so give each a fair quarter of the capacity
		// (which always covers its sustained rate U/4 < 1/4).
		for i := range net.Servers {
			net.Servers[i].Latency = 0.1
		}
		for i := range net.Connections {
			net.Connections[i].Rate = 0.25
		}
		rn, err := (analysis.GuaranteedRateNetworkCurve{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		rd, err := (analysis.Decomposed{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		netCurve.X = append(netCurve.X, u)
		netCurve.Y = append(netCurve.Y, rn.Bound(0))
		decomposed.X = append(decomposed.X, u)
		decomposed.Y = append(decomposed.Y, rd.Bound(0))
	}
	return []textplot.Series{netCurve, decomposed}, nil
}

// StaticPriorityExperiment runs the paper's announced extension on a
// static-priority tandem where connection 0 is the LOW-priority bulk
// class (the interesting case: the urgent class gets near-zero bounds
// regardless of method). Returns conn-0 bounds under SP decomposition,
// the integrated SP analysis, and plain FIFO for contrast.
func StaticPriorityExperiment(n int, loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	spDec := textplot.Series{Name: fmt.Sprintf("SP decomposed(%d)", n)}
	spInt := textplot.Series{Name: fmt.Sprintf("SP integrated(%d)", n)}
	fifo := textplot.Series{Name: fmt.Sprintf("FIFO conn0(%d)", n)}
	for _, u := range loads {
		spec := topo.TandemSpec{
			Switches: n, Sigma: 1, Rho: u / 4, Capacity: 1,
			Discipline: server.StaticPriority, Priority0: 1, PriorityCross: 0,
		}
		net, err := topo.Tandem(spec)
		if err != nil {
			return nil, err
		}
		rs, err := (analysis.Decomposed{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		rsi, err := (analysis.IntegratedSP{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		spec.Discipline = server.FIFO
		fnet, err := topo.Tandem(spec)
		if err != nil {
			return nil, err
		}
		rf, err := (analysis.Decomposed{}).Analyze(fnet)
		if err != nil {
			return nil, err
		}
		spDec.X = append(spDec.X, u)
		spDec.Y = append(spDec.Y, rs.Bound(0))
		spInt.X = append(spInt.X, u)
		spInt.Y = append(spInt.Y, rsi.Bound(0))
		fifo.X = append(fifo.X, u)
		fifo.Y = append(fifo.Y, rf.Bound(0))
	}
	return []textplot.Series{spDec, spInt, fifo}, nil
}

// EDFExperiment compares, on the tandem workload, the bound of an urgent
// multi-hop connection under EDF scheduling against FIFO: EDF lets the
// urgent connection buy a tight bound at the cross traffic's expense,
// provided the deadline assignment stays schedulable. Series: the urgent
// conn-0 EDF bound, a cross connection's EDF bound, and the FIFO conn-0
// bound.
func EDFExperiment(n int, loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	urgent := textplot.Series{Name: fmt.Sprintf("EDF conn0(%d)", n)}
	cross := textplot.Series{Name: fmt.Sprintf("EDF cross(%d)", n)}
	fifo := textplot.Series{Name: fmt.Sprintf("FIFO conn0(%d)", n)}
	for _, u := range loads {
		spec := topo.TandemSpec{
			Switches: n, Sigma: 1, Rho: u / 4, Capacity: 1,
			Discipline: server.EDF,
		}
		net, err := topo.Tandem(spec)
		if err != nil {
			return nil, err
		}
		// Deadline assignment: conn 0 urgent (2 per hop), cross traffic
		// relaxed (12 per hop).
		for i := range net.Connections {
			hops := float64(len(net.Connections[i].Path))
			if i == 0 {
				net.Connections[i].Deadline = 2 * hops
			} else {
				net.Connections[i].Deadline = 12 * hops
			}
		}
		re, err := (analysis.Decomposed{}).Analyze(net)
		if err != nil {
			return nil, err
		}
		spec.Discipline = server.FIFO
		fnet, err := topo.Tandem(spec)
		if err != nil {
			return nil, err
		}
		rf, err := (analysis.Decomposed{}).Analyze(fnet)
		if err != nil {
			return nil, err
		}
		urgent.X = append(urgent.X, u)
		urgent.Y = append(urgent.Y, re.Bound(0))
		cross.X = append(cross.X, u)
		cross.Y = append(cross.Y, re.Bound(2))
		fifo.X = append(fifo.X, u)
		fifo.Y = append(fifo.Y, rf.Bound(0))
	}
	return []textplot.Series{urgent, cross, fifo}, nil
}

// ChainLengthSweep quantifies the value of longer integrated chains on a
// deep tandem: conn-0 bounds for chain lengths 1 (decomposed), 2 (the
// paper), and the full path.
func ChainLengthSweep(n int, loads []float64) ([]textplot.Series, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	lengths := []int{1, 2, n}
	series := make([]textplot.Series, len(lengths))
	for i, L := range lengths {
		series[i] = textplot.Series{Name: fmt.Sprintf("ChainLength=%d(%d)", L, n)}
	}
	for _, u := range loads {
		net, err := topo.PaperTandem(n, u)
		if err != nil {
			return nil, err
		}
		for i, L := range lengths {
			res, err := (analysis.Integrated{ChainLength: L}).Analyze(net)
			if err != nil {
				return nil, err
			}
			series[i].X = append(series[i].X, u)
			series[i].Y = append(series[i].Y, res.Bound(0))
		}
	}
	return series, nil
}

// AdmissionCapacity measures the paper's motivating quantity directly: how
// many identical deadline-bearing connections each analysis can prove
// schedulable on an n-server tandem, as a function of the deadline. A
// tighter analysis admits more connections at the same quality of service.
func AdmissionCapacity(n int, deadlines []float64, limit int) ([]textplot.Series, error) {
	if len(deadlines) == 0 {
		deadlines = []float64{6, 8, 10, 14, 20, 30}
	}
	servers := make([]server.Server, n)
	path := make([]int, n)
	for i := range servers {
		servers[i] = server.Server{Name: fmt.Sprintf("s%d", i), Capacity: 1, Discipline: server.FIFO}
		path[i] = i
	}
	analyzers := []analysis.Analyzer{analysis.Decomposed{}, analysis.ServiceCurve{}, analysis.Integrated{}}
	series := make([]textplot.Series, len(analyzers))
	for i, a := range analyzers {
		series[i] = textplot.Series{Name: fmt.Sprintf("%s(%d)", a.Name(), n)}
	}
	for _, deadline := range deadlines {
		template := topo.Connection{
			Name:       "flow",
			Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.02},
			AccessRate: 1,
			Path:       path,
			Deadline:   deadline,
		}
		for i, a := range analyzers {
			ctrl, err := admission.New(servers, a)
			if err != nil {
				return nil, err
			}
			count, err := ctrl.FillGreedy(template, limit)
			if err != nil {
				return nil, err
			}
			series[i].X = append(series[i].X, deadline)
			series[i].Y = append(series[i].Y, float64(count))
		}
	}
	return series, nil
}
