// Package experiments regenerates the paper's evaluation (Section 4):
// every figure's series on the tandem network of n 3x3 switches, plus the
// supporting experiments listed in DESIGN.md. Each generator returns plain
// series data; cmd/figures and the benchmarks render them.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"delaycalc/internal/analysis"
	"delaycalc/internal/textplot"
	"delaycalc/internal/topo"
)

// DefaultLoads is the workload sweep used by all figures: interior-link
// utilizations from 10% to 95%.
var DefaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// Figure holds the reproduced series of one paper figure: the end-to-end
// delay curves (top panel) and the relative improvement curves (bottom
// panel).
type Figure struct {
	Name        string
	Delays      []textplot.Series
	Improvement []textplot.Series
}

// RelativeImprovement is the paper's metric R_{X,Y}(U) = (D_X - D_Y)/D_X:
// the fraction by which method Y improves on method X.
func RelativeImprovement(dx, dy float64) float64 {
	if dx == 0 {
		return 0
	}
	return (dx - dy) / dx
}

// conn0Bound analyzes the paper tandem and returns the bound of
// Connection 0 (the connection traveling the longest path, the one the
// paper reports).
func conn0Bound(a analysis.Analyzer, n int, load float64) (float64, error) {
	net, err := topo.PaperTandem(n, load)
	if err != nil {
		return 0, err
	}
	res, err := a.Analyze(net)
	if err != nil {
		return 0, err
	}
	return res.Bound(0), nil
}

// sweep evaluates an analyzer over the load range for one network size.
// The loads are independent, so they are analyzed concurrently across the
// available cores; results keep the input order.
func sweep(a analysis.Analyzer, n int, loads []float64) (textplot.Series, error) {
	s := textplot.Series{Name: fmt.Sprintf("%s(%d)", a.Name(), n)}
	ys := make([]float64, len(loads))
	errs := make([]error, len(loads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, u := range loads {
		wg.Add(1)
		go func(i int, u float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ys[i], errs[i] = conn0Bound(a, n, u)
		}(i, u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return s, err
		}
	}
	s.X = append(s.X, loads...)
	s.Y = append(s.Y, ys...)
	return s, nil
}

// twoMethodFigure builds a figure comparing methods x and y over the given
// network sizes: delay curves for both and R_{X,Y} per size.
func twoMethodFigure(name string, x, y analysis.Analyzer, sizes []int, loads []float64) (*Figure, error) {
	fig := &Figure{Name: name}
	for _, n := range sizes {
		sx, err := sweep(x, n, loads)
		if err != nil {
			return nil, err
		}
		sy, err := sweep(y, n, loads)
		if err != nil {
			return nil, err
		}
		fig.Delays = append(fig.Delays, sx, sy)
		imp := textplot.Series{Name: fmt.Sprintf("%s/%s(%d)", x.Name(), y.Name(), n)}
		for i := range sx.X {
			imp.X = append(imp.X, sx.X[i])
			imp.Y = append(imp.Y, RelativeImprovement(sx.Y[i], sy.Y[i]))
		}
		fig.Improvement = append(fig.Improvement, imp)
	}
	return fig, nil
}

// Figure4 reproduces the paper's Figure 4: Decomposed versus ServiceCurve
// end-to-end delays for Connection 0 on tandems of 2, 4, 6 and 8 switches,
// plus the relative improvement R_{Decomposed,ServiceCurve}.
func Figure4(loads []float64) (*Figure, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	return twoMethodFigure("Figure 4: Decomposed vs Service Curve",
		analysis.Decomposed{}, analysis.ServiceCurve{}, []int{2, 4, 6, 8}, loads)
}

// Figure5 reproduces the paper's Figure 5: Integrated versus Decomposed
// for tandems of 2, 4 and 8 switches (the sizes the paper plots), with the
// relative improvement R_{Decomposed,Integrated}.
func Figure5(loads []float64) (*Figure, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	return twoMethodFigure("Figure 5: Integrated vs Decomposed",
		analysis.Decomposed{}, analysis.Integrated{}, []int{2, 4, 8}, loads)
}

// Figure6 reproduces the paper's Figure 6: Integrated versus ServiceCurve
// for tandems of 2, 4, 6 and 8 switches, with the relative improvement
// R_{ServiceCurve,Integrated}.
func Figure6(loads []float64) (*Figure, error) {
	if loads == nil {
		loads = DefaultLoads
	}
	return twoMethodFigure("Figure 6: Integrated vs Service Curve",
		analysis.ServiceCurve{}, analysis.Integrated{}, []int{2, 4, 6, 8}, loads)
}

// BurstinessSweep checks the paper's Section 4.1 claim that increasing the
// source burstiness (sigma) raises absolute delays but leaves the relative
// improvements essentially unchanged. It returns, per sigma, the relative
// improvement of Integrated over Decomposed for connection 0.
func BurstinessSweep(n int, load float64, sigmas []float64) (textplot.Series, textplot.Series, error) {
	imp := textplot.Series{Name: fmt.Sprintf("R(Decomposed,Integrated) n=%d U=%g", n, load)}
	abs := textplot.Series{Name: fmt.Sprintf("Decomposed delay n=%d U=%g", n, load)}
	for _, sigma := range sigmas {
		net, err := topo.Tandem(topo.TandemSpec{
			Switches: n, Sigma: sigma, Rho: load / 4, Capacity: 1,
		})
		if err != nil {
			return imp, abs, err
		}
		rd, err := (analysis.Decomposed{}).Analyze(net)
		if err != nil {
			return imp, abs, err
		}
		ri, err := (analysis.Integrated{}).Analyze(net)
		if err != nil {
			return imp, abs, err
		}
		imp.X = append(imp.X, sigma)
		imp.Y = append(imp.Y, RelativeImprovement(rd.Bound(0), ri.Bound(0)))
		abs.X = append(abs.X, sigma)
		abs.Y = append(abs.Y, rd.Bound(0))
	}
	return imp, abs, nil
}

// Render pretty-prints a figure: a log-scale delay chart, an improvement
// chart, and the underlying tables.
func Render(fig *Figure) string {
	out := textplot.PlotLog(fig.Name+" — end-to-end delay of connection 0 vs load", fig.Delays, 64, 18)
	out += "\n" + textplot.Table(fig.Delays)
	out += "\n" + textplot.Plot(fig.Name+" — relative improvement vs load", fig.Improvement, 64, 14)
	out += "\n" + textplot.Table(fig.Improvement)
	return out
}
