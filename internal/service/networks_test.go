package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// newTenantServer builds a two-tenant server: network "alpha" (the
// default, servers a0/a1) and network "beta" (servers b0/b1), each with
// its own engine, cache, and metrics.
func newTenantServer(t *testing.T) *Server {
	t.Helper()
	reg := NewRegistry()
	for _, id := range []string{"alpha", "beta"} {
		prefix := id[:1]
		fabric := []server.Server{
			{Name: prefix + "0", Capacity: 1, Discipline: server.FIFO},
			{Name: prefix + "1", Capacity: 1, Discipline: server.FIFO},
		}
		state, err := NewState(fabric, analysis.Integrated{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Add(id, state, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func tenantAdmitBody(prefix, name string) string {
	return fmt.Sprintf(`{"connection": {"name": %q, "sigma": 1, "rho": 0.02, "access_rate": 1, "path": [%q, %q], "deadline": 20}}`,
		name, prefix+"0", prefix+"1")
}

func TestRegistryValidation(t *testing.T) {
	state, err := NewState(testFabric(), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Add("tenant-a", state, nil); err != nil {
		t.Fatalf("valid id rejected: %v", err)
	}
	if _, err := reg.Add("tenant-a", state, nil); err == nil {
		t.Fatal("duplicate id accepted")
	}
	for _, bad := range []string{"", "has space", "slash/y", strings.Repeat("x", 65)} {
		if _, err := reg.Add(bad, state, nil); err == nil {
			t.Fatalf("invalid id %q accepted", bad)
		}
	}
	if got := reg.DefaultID(); got != "tenant-a" {
		t.Fatalf("default id: want first-added tenant-a, got %q", got)
	}
	if _, ok := reg.Get("ghost"); ok {
		t.Fatal("Get(ghost) found a network")
	}
}

func TestMultiNetworkIsolation(t *testing.T) {
	srv := newTenantServer(t)

	// Admissions and analyses against alpha...
	if w := do(t, srv, "POST", "/v2/networks/alpha/connections", tenantAdmitBody("a", "va")); w.Code != http.StatusOK {
		t.Fatalf("alpha admit: %d %s", w.Code, w.Body)
	}
	if w := do(t, srv, "POST", "/v2/networks/alpha/analyze", analyzeBody); w.Code != http.StatusOK {
		t.Fatalf("alpha analyze: %d %s", w.Code, w.Body)
	}

	// ...must leave beta's admitted set, engine counters, cache, and
	// request metrics untouched.
	list := decode[ListResponse](t, do(t, srv, "GET", "/v2/networks/beta/connections", ""))
	if list.Count != 0 || len(list.Connections) != 0 {
		t.Fatalf("beta sees alpha's connections: %+v", list)
	}
	stats := decode[StatsResponse](t, do(t, srv, "GET", "/v2/networks/beta/stats", ""))
	if stats.Admitted != 0 || stats.Tests.Incremental+stats.Tests.Full != 0 {
		t.Fatalf("beta engine counters perturbed: %+v", stats)
	}
	beta, _ := srv.Registry().Get("beta")
	if n := beta.Cache().Len(); n != 0 {
		t.Fatalf("beta cache holds %d entries after alpha analyze", n)
	}
	alpha, _ := srv.Registry().Get("alpha")
	if n := alpha.Cache().Len(); n != 1 {
		t.Fatalf("alpha cache: want 1 entry, got %d", n)
	}
	betaMetrics := do(t, srv, "GET", "/v2/networks/beta/metrics", "").Body.String()
	if strings.Contains(betaMetrics, `delayd_requests_total{endpoint="POST /v2/networks/{netid}/connections"`) {
		t.Fatal("beta metrics page counts alpha's admit request")
	}
	alphaMetrics := do(t, srv, "GET", "/v2/networks/alpha/metrics", "").Body.String()
	want := `delayd_requests_total{endpoint="POST /v2/networks/{netid}/connections",code="200"} 1`
	if !strings.Contains(alphaMetrics, want) {
		t.Fatalf("alpha metrics page missing %q", want)
	}

	// Beta's own fabric is fully usable and its admissions are invisible
	// to alpha.
	if w := do(t, srv, "POST", "/v2/networks/beta/connections", tenantAdmitBody("b", "vb")); w.Code != http.StatusOK {
		t.Fatalf("beta admit: %d %s", w.Code, w.Body)
	}
	alphaList := decode[ListResponse](t, do(t, srv, "GET", "/v2/networks/alpha/connections", ""))
	if alphaList.Count != 1 || alphaList.Connections[0].Name != "va" {
		t.Fatalf("alpha list after beta admit: %+v", alphaList)
	}
}

func TestUnknownNetwork(t *testing.T) {
	srv := newTenantServer(t)
	for _, tc := range []struct{ method, path, body string }{
		{"GET", "/v2/networks/ghost/connections", ""},
		{"POST", "/v2/networks/ghost/connections", tenantAdmitBody("a", "x")},
		{"GET", "/v2/networks/ghost/stats", ""},
		{"DELETE", "/v2/networks/ghost/connections/x", ""},
	} {
		w := do(t, srv, tc.method, tc.path, tc.body)
		if w.Code != http.StatusNotFound {
			t.Fatalf("%s %s: want 404, got %d %s", tc.method, tc.path, w.Code, w.Body)
		}
		if env := decode[errorResponse](t, w); env.Error.Code != CodeUnknownNetwork {
			t.Fatalf("%s %s: want code %q, got %q", tc.method, tc.path, CodeUnknownNetwork, env.Error.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t, nil)
	for _, tc := range []struct {
		method, path string
		allow        []string
	}{
		{"PATCH", "/v1/connections", []string{"GET", "POST"}},
		{"PATCH", "/v2/networks/default/connections", []string{"GET", "POST"}},
		{"GET", "/v2/networks/default/batch", []string{"POST"}},
		{"DELETE", "/v2/networks", []string{"GET"}},
		{"PUT", "/connections", []string{"GET", "POST"}},
	} {
		w := do(t, srv, tc.method, tc.path, "")
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: want 405, got %d %s", tc.method, tc.path, w.Code, w.Body)
		}
		allow := w.Header().Get("Allow")
		for _, m := range tc.allow {
			if !strings.Contains(allow, m) {
				t.Fatalf("%s %s: Allow %q missing %s", tc.method, tc.path, allow, m)
			}
		}
		if env := decode[errorResponse](t, w); env.Error.Code != CodeMethodNotAllowed {
			t.Fatalf("%s %s: want code %q, got %q", tc.method, tc.path, CodeMethodNotAllowed, env.Error.Code)
		}
	}

	// Unrouted paths answer with the same JSON envelope, not the mux's
	// plain-text 404.
	w := do(t, srv, "GET", "/v3/nope", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown path: want 404, got %d", w.Code)
	}
	if env := decode[errorResponse](t, w); env.Error.Code != CodeNotFound {
		t.Fatalf("unknown path: want code %q, got %q", CodeNotFound, env.Error.Code)
	}
}

func TestSnapshotVersionHeader(t *testing.T) {
	srv := newTestServer(t, nil)
	version := func(w *httptest.ResponseRecorder) uint64 {
		t.Helper()
		raw := w.Header().Get(SnapshotVersionHeader)
		if raw == "" {
			t.Fatalf("missing %s header", SnapshotVersionHeader)
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatalf("%s: %v", SnapshotVersionHeader, err)
		}
		return v
	}

	before := version(do(t, srv, "GET", "/v2/networks/default/connections", ""))
	if w := do(t, srv, "POST", "/v2/networks/default/connections", admitBody); w.Code != http.StatusOK {
		t.Fatalf("admit: %d %s", w.Code, w.Body)
	}
	after := version(do(t, srv, "GET", "/v2/networks/default/connections", ""))
	if after <= before {
		t.Fatalf("snapshot version did not advance across a commit: %d -> %d", before, after)
	}

	w := do(t, srv, "GET", "/v2/networks/default/stats", "")
	stats := decode[StatsResponse](t, w)
	if got := version(w); got != stats.SnapshotVersion {
		t.Fatalf("stats header %d != body snapshot_version %d", got, stats.SnapshotVersion)
	}
	version(do(t, srv, "GET", "/v2/networks/default/metrics", ""))
}

func TestNetworksListing(t *testing.T) {
	srv := newTenantServer(t)
	if w := do(t, srv, "POST", "/v2/networks/beta/connections", tenantAdmitBody("b", "vb")); w.Code != http.StatusOK {
		t.Fatalf("beta admit: %d %s", w.Code, w.Body)
	}
	resp := decode[NetworksResponse](t, do(t, srv, "GET", "/v2/networks", ""))
	if len(resp.Networks) != 2 {
		t.Fatalf("want 2 networks, got %+v", resp)
	}
	byID := map[string]NetworkInfo{}
	for _, n := range resp.Networks {
		byID[n.ID] = n
	}
	if !byID["alpha"].Default || byID["beta"].Default {
		t.Fatalf("default flag: want alpha only, got %+v", resp.Networks)
	}
	if byID["alpha"].Admitted != 0 || byID["beta"].Admitted != 1 {
		t.Fatalf("admitted counts: %+v", resp.Networks)
	}
	if byID["alpha"].Shards != 1 {
		t.Fatalf("alpha shards: %+v", byID["alpha"])
	}
}

// TestCrossShardBatchStress churns a 4-shard engine through the HTTP API
// with component-local admits, cross-block (hence cross-shard) admits, and
// releases racing from several goroutines — run under -race in CI.
func TestCrossShardBatchStress(t *testing.T) {
	net, err := topo.DisjointBlocks(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	state, err := NewStateShards(net.Servers, analysis.Integrated{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{State: state})
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 4, 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := fmt.Sprintf("b%d.sw0.mid", g)
			local2 := fmt.Sprintf("b%d.sw1.mid", g)
			// Cross-block edges always point to a higher block so the
			// union of all racing paths stays feedforward (no ring).
			remote := fmt.Sprintf("b%d.sw0.mid", g+1)
			var pool []string
			for i := 0; i < iters; i++ {
				var ops []string
				name := fmt.Sprintf("g%dn%d", g, i)
				if i%6 == 5 && g+1 < workers {
					// A path spanning two blocks merges their components:
					// the sharded engine must take the cross-shard commit.
					ops = append(ops, fmt.Sprintf(
						`{"op": "admit", "connection": {"name": %q, "sigma": 1, "rho": 0.001, "access_rate": 1, "path": [%q, %q], "deadline": 500}}`,
						name, local, remote))
				} else {
					ops = append(ops, fmt.Sprintf(
						`{"op": "admit", "connection": {"name": %q, "sigma": 1, "rho": 0.001, "access_rate": 1, "path": [%q, %q], "deadline": 500}}`,
						name, local, local2))
				}
				if len(pool) > 1 {
					ops = append(ops, fmt.Sprintf(`{"op": "release", "name": %q}`, pool[0]))
					pool = pool[1:]
				}
				body := `{"operations": [` + strings.Join(ops, ",") + `]}`
				r := httptest.NewRequest("POST", "/v2/networks/default/batch", strings.NewReader(body))
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d batch: %d %s", g, w.Code, w.Body)
					return
				}
				var resp BatchResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("worker %d batch decode: %v", g, err)
					return
				}
				for _, res := range resp.Results {
					if res.Status == BatchStatusError {
						errs <- fmt.Errorf("worker %d op %d: %+v", g, res.Index, res.Error)
						return
					}
					if res.Op == "admit" && res.Status == BatchStatusAdmitted {
						pool = append(pool, name)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := decode[StatsResponse](t, do(t, srv, "GET", "/v2/networks/default/stats", ""))
	if stats.Shards != 4 {
		t.Fatalf("want 4 shards, got %+v", stats)
	}
	if stats.CrossShardCommits == 0 {
		t.Fatal("no cross-shard commits despite block-spanning admissions")
	}
	list := decode[ListResponse](t, do(t, srv, "GET", "/v2/networks/default/connections?limit=1000", ""))
	if list.Count != stats.Admitted {
		t.Fatalf("replica list count %d != stats admitted %d", list.Count, stats.Admitted)
	}
}
