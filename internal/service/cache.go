package service

import (
	"container/list"
	"sync"

	"delaycalc/internal/analysis"
)

// Cache is a goroutine-safe LRU cache of analysis results keyed by
// (analyzer name, canonical netspec digest). Results are stored as-is and
// must be treated as immutable by callers; the handlers only read them.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key string
	res *analysis.Result
}

// NewCache builds an LRU cache holding at most capacity results. A
// capacity of zero or less disables caching (every Get misses, Put is a
// no-op), which keeps the analyze path valid without branching at call
// sites.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*analysis.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result, evicting the least recently used entry when full.
// A nil result is rejected: caching one would serve it as a hit forever,
// turning a single error-path slip at a call site into a permanently
// poisoned key.
func (c *Cache) Put(key string, res *analysis.Result) {
	if c.capacity <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
