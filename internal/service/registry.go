package service

import (
	"fmt"
	"sort"
	"strings"

	"delaycalc/internal/analysis"
)

// analyzerAliases maps every accepted user-facing name to its analyzer.
// The canonical names (first per analyzer) are what AnalyzerNames lists.
var analyzerAliases = map[string]analysis.Analyzer{
	"integrated":     analysis.Integrated{},
	"int":            analysis.Integrated{},
	"decomposed":     analysis.Decomposed{},
	"dec":            analysis.Decomposed{},
	"servicecurve":   analysis.ServiceCurve{},
	"sc":             analysis.ServiceCurve{},
	"gr":             analysis.GuaranteedRateNetworkCurve{},
	"guaranteedrate": analysis.GuaranteedRateNetworkCurve{},
	"integratedsp":   analysis.IntegratedSP{},
	"sp":             analysis.IntegratedSP{},
}

// canonicalNames lists the analyzer names advertised to users; aliases
// resolve but are not listed.
var canonicalNames = []string{"integrated", "decomposed", "servicecurve", "gr", "integratedsp"}

// PickAnalyzer resolves a user-facing algorithm name (case-insensitive,
// aliases accepted). It is the single registry shared by the daemon and
// the command-line tools.
func PickAnalyzer(name string) (analysis.Analyzer, error) {
	a, ok := analyzerAliases[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q (want %s)", name, strings.Join(AnalyzerNames(), ", "))
	}
	return a, nil
}

// AnalyzerNames returns the canonical analyzer names, sorted.
func AnalyzerNames() []string {
	out := make([]string, len(canonicalNames))
	copy(out, canonicalNames)
	sort.Strings(out)
	return out
}

// ResolveAnalyzers maps a comma-separated list of analyzer names to their
// analyzers, deduplicating while preserving order. The single name "all"
// expands to every canonical analyzer. It is the registry entry point the
// falsification harness uses, so newly registered analyzers are attackable
// by name the moment they land.
func ResolveAnalyzers(list string) ([]analysis.Analyzer, error) {
	var names []string
	if strings.EqualFold(strings.TrimSpace(list), "all") {
		names = AnalyzerNames()
	} else {
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no analyzers named (want a comma-separated subset of %s, or \"all\")",
			strings.Join(AnalyzerNames(), ", "))
	}
	var out []analysis.Analyzer
	seen := map[string]bool{}
	for _, n := range names {
		a, err := PickAnalyzer(n)
		if err != nil {
			return nil, err
		}
		if seen[a.Name()] {
			continue
		}
		seen[a.Name()] = true
		out = append(out, a)
	}
	return out, nil
}
