package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
	"delaycalc/internal/traffic"
)

// testFabric is a 2-server tandem with unit capacity, matching the paper's
// topology at small scale.
func testFabric() []server.Server {
	return []server.Server{
		{Name: "s0", Capacity: 1, Discipline: server.FIFO},
		{Name: "s1", Capacity: 1, Discipline: server.FIFO},
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	state, err := NewState(testFabric(), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{State: state}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// do runs one request through the full instrumented handler stack.
func do(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
	return v
}

const admitBody = `{"connection": {"name": "video", "sigma": 1, "rho": 0.02, "access_rate": 1, "path": ["s0", "s1"], "deadline": 20}}`

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, nil)
	w := do(t, srv, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
}

func TestAdmitMatchesLibrary(t *testing.T) {
	srv := newTestServer(t, nil)
	w := do(t, srv, "POST", "/v1/connections", admitBody)
	if w.Code != http.StatusOK {
		t.Fatalf("admit: %d %s", w.Code, w.Body)
	}
	resp := decode[AdmitResponse](t, w)
	if !resp.Admitted || resp.Count != 1 {
		t.Fatalf("want admitted count=1, got %+v", resp)
	}

	// The same candidate through the raw library must yield identical
	// bounds — CLI, daemon, and library share one decision path.
	ctrl, err := admission.New(testFabric(), analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Admit(topo.Connection{
		Name:       "video",
		Bucket:     traffic.TokenBucket{Sigma: 1, Rho: 0.02},
		AccessRate: 1,
		Path:       []int{0, 1},
		Deadline:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bounds) != len(resp.Bounds) {
		t.Fatalf("bounds length: lib %d, service %d", len(d.Bounds), len(resp.Bounds))
	}
	for i := range d.Bounds {
		if float64(resp.Bounds[i]) != d.Bounds[i] {
			t.Errorf("bound %d: lib %g, service %g", i, d.Bounds[i], float64(resp.Bounds[i]))
		}
	}
}

func TestAdmitDryRun(t *testing.T) {
	srv := newTestServer(t, nil)
	body := admitBody[:len(admitBody)-1] + `, "dry_run": true}`
	w := do(t, srv, "POST", "/v1/connections", body)
	resp := decode[AdmitResponse](t, w)
	if w.Code != http.StatusOK || !resp.Admitted || !resp.DryRun {
		t.Fatalf("dry run: %d %+v", w.Code, resp)
	}
	if srv.State().Count() != 0 {
		t.Fatalf("dry run committed a connection: count %d", srv.State().Count())
	}
}

func TestAdmitRejection(t *testing.T) {
	srv := newTestServer(t, nil)
	// Without an access-rate cap the bucket burst arrives instantaneously
	// and the bound is at least sigma/capacity = 1 > 0.001.
	tight := strings.Replace(admitBody, `"deadline": 20`, `"deadline": 0.001`, 1)
	tight = strings.Replace(tight, `"access_rate": 1, `, "", 1)
	w := do(t, srv, "POST", "/v1/connections", tight)
	resp := decode[AdmitResponse](t, w)
	if w.Code != http.StatusOK || resp.Admitted {
		t.Fatalf("want clean rejection, got %d %+v", w.Code, resp)
	}
	if resp.Reason == "" || resp.Count != 0 {
		t.Fatalf("rejection must carry a reason and leave count 0: %+v", resp)
	}
}

func TestAdmitBadInput(t *testing.T) {
	srv := newTestServer(t, nil)
	cases := map[string]string{
		"malformed JSON":    `{"connection": `,
		"unknown field":     `{"connection": {"name": "x"}, "bogus": 1}`,
		"unknown server":    `{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": ["nope"], "deadline": 5}}`,
		"no deadline":       `{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": ["s0"]}}`,
		"trailing data":     `{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": ["s0"], "deadline": 5}} garbage`,
		"negative sigma":    `{"connection": {"name": "x", "sigma": -1, "rho": 0.1, "path": ["s0"], "deadline": 5}}`,
		"path out of range": `{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": [9], "deadline": 5}}`,
	}
	for label, body := range cases {
		w := do(t, srv, "POST", "/v1/connections", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d %s", label, w.Code, w.Body)
		}
	}
	if srv.State().Count() != 0 {
		t.Fatalf("bad input mutated state: count %d", srv.State().Count())
	}
}

func TestListAndRemove(t *testing.T) {
	srv := newTestServer(t, nil)
	if w := do(t, srv, "POST", "/v1/connections", admitBody); w.Code != http.StatusOK {
		t.Fatalf("admit: %d %s", w.Code, w.Body)
	}

	w := do(t, srv, "GET", "/v1/connections", "")
	list := decode[ListResponse](t, w)
	if list.Count != 1 || len(list.Connections) != 1 || list.Connections[0].Name != "video" {
		t.Fatalf("list: %+v", list)
	}
	if len(list.Utilization) != 2 || list.Utilization[0] != 0.02 {
		t.Fatalf("utilization: %+v", list.Utilization)
	}

	if w := do(t, srv, "DELETE", "/v1/connections/video", ""); w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	if srv.State().Count() != 0 {
		t.Fatalf("remove did not release: count %d", srv.State().Count())
	}
	if w := do(t, srv, "DELETE", "/v1/connections/video", ""); w.Code != http.StatusNotFound {
		t.Fatalf("second remove: want 404, got %d", w.Code)
	}
}

const analyzeBody = `{"analyzer": "integrated", "network": {
  "servers": [{"name": "s0", "capacity": 1}, {"name": "s1", "capacity": 1}],
  "connections": [{"name": "c", "sigma": 1, "rho": 0.1, "path": ["s0", "s1"]}]
}}`

func TestAnalyzeAndCache(t *testing.T) {
	srv := newTestServer(t, nil)
	w := do(t, srv, "POST", "/v1/analyze", analyzeBody)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", w.Code, w.Body)
	}
	first := decode[AnalyzeResponse](t, w)
	if first.Cached || len(first.Bounds) != 1 || first.Bounds[0] <= 0 {
		t.Fatalf("first analyze: %+v", first)
	}

	// Same network, different formatting and hop addressing: must hit.
	reformatted := `{"analyzer":"int","network":{"servers":[{"name":"s0","capacity":1},{"name":"s1","capacity":1}],"connections":[{"name":"c","sigma":1,"rho":0.1,"path":[0,1]}]}}`
	w = do(t, srv, "POST", "/v1/analyze", reformatted)
	second := decode[AnalyzeResponse](t, w)
	if !second.Cached {
		t.Fatalf("equivalent spec missed the cache: %+v", second)
	}
	if second.Digest != first.Digest || second.Bounds[0] != first.Bounds[0] {
		t.Fatalf("cache returned a different result: %+v vs %+v", first, second)
	}

	// A different analyzer over the same network must not collide.
	other := strings.Replace(analyzeBody, `"integrated"`, `"decomposed"`, 1)
	w = do(t, srv, "POST", "/v1/analyze", other)
	third := decode[AnalyzeResponse](t, w)
	if third.Cached {
		t.Fatalf("different analyzer hit the cache: %+v", third)
	}

	hits, misses := srv.Cache().Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("want 1 hit / 2 misses, got %d / %d", hits, misses)
	}
}

func TestAnalyzeUnstableReportsNullBounds(t *testing.T) {
	srv := newTestServer(t, nil)
	unstable := strings.Replace(analyzeBody, `"rho": 0.1`, `"rho": 1.5, "sigma": 1`, 1)
	unstable = strings.Replace(unstable, `"access_rate": 1, `, "", 1)
	w := do(t, srv, "POST", "/v1/analyze", unstable)
	if w.Code != http.StatusOK {
		t.Fatalf("unstable analyze: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "null") {
		t.Fatalf("unbounded delay must serialize as null: %s", w.Body)
	}
}

func TestAnalyzeBadInput(t *testing.T) {
	srv := newTestServer(t, nil)
	cases := map[string]struct {
		body string
		want int
	}{
		"unknown analyzer": {strings.Replace(analyzeBody, `"integrated"`, `"quantum"`, 1), http.StatusBadRequest},
		"malformed JSON":   {`{"analyzer": "integrated", "network": {`, http.StatusBadRequest},
		"empty network":    {`{"analyzer": "integrated", "network": {}}`, http.StatusBadRequest},
		"unknown hop":      {strings.Replace(analyzeBody, `["s0", "s1"]`, `["ghost"]`, 1), http.StatusBadRequest},
	}
	for label, c := range cases {
		w := do(t, srv, "POST", "/v1/analyze", c.body)
		if w.Code != c.want {
			t.Errorf("%s: want %d, got %d %s", label, c.want, w.Code, w.Body)
		}
	}
}

func TestOversizedBody(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	big := `{"connection": {"name": "` + strings.Repeat("x", 200) + `"}}`
	w := do(t, srv, "POST", "/v1/connections", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("want 413, got %d %s", w.Code, w.Body)
	}
}

func TestRequestTimeout(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	// The deadline expires before the handler reaches the analysis, so
	// both stateful and stateless endpoints must shed with 503 without
	// touching state.
	w := do(t, srv, "POST", "/v1/analyze", analyzeBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("analyze timeout: want 503, got %d %s", w.Code, w.Body)
	}
	w = do(t, srv, "POST", "/v1/connections", admitBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("admit timeout: want 503, got %d %s", w.Code, w.Body)
	}
	if srv.State().Count() != 0 {
		t.Fatalf("timed-out admit mutated state")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	do(t, srv, "POST", "/v1/connections", admitBody)
	do(t, srv, "POST", "/v1/analyze", analyzeBody)
	do(t, srv, "POST", "/v1/analyze", analyzeBody) // cache hit

	w := do(t, srv, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`delayd_requests_total{endpoint="POST /v2/networks/{netid}/connections",code="200"} 1`,
		`delayd_requests_total{endpoint="POST /v2/networks/{netid}/analyze",code="200"} 2`,
		`delayd_request_duration_seconds_count{endpoint="POST /v2/networks/{netid}/analyze"} 2`,
		`delayd_cache_hits_total 1`,
		`delayd_cache_misses_total 1`,
		`delayd_cache_hit_ratio 0.5`,
		`delayd_admitted_connections 1`,
		`delayd_server_utilization{server="s0"} 0.02`,
		// The in-flight gauge is sampled while the /metrics request
		// itself is still being handled, so it reads 1.
		`delayd_in_flight_requests 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestConcurrentAdmitRelease hammers every mutating endpoint from many
// goroutines; run with -race this is the data-race check for the locked
// wrapper around admission.Controller.
func TestConcurrentAdmitRelease(t *testing.T) {
	srv := newTestServer(t, nil)
	const workers = 16
	const rounds = 3

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("c%d-%d", g, i)
				body := fmt.Sprintf(`{"connection": {"name": %q, "sigma": 0.1, "rho": 0.001, "access_rate": 1, "path": ["s0", "s1"], "deadline": 50}}`, name)
				w := do(t, srv, "POST", "/v1/connections", body)
				if w.Code != http.StatusOK {
					t.Errorf("admit %s: %d %s", name, w.Code, w.Body)
					continue
				}
				resp := decode[AdmitResponse](t, w)
				do(t, srv, "GET", "/v1/connections", "")
				do(t, srv, "GET", "/metrics", "")
				if resp.Admitted {
					if w := do(t, srv, "DELETE", "/v1/connections/"+name, ""); w.Code != http.StatusOK {
						t.Errorf("remove %s: %d %s", name, w.Code, w.Body)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := srv.State().Count(); n != 0 {
		t.Fatalf("admit/release imbalance: %d connections left", n)
	}
	if in := srv.Metrics().InFlight(); in != 0 {
		t.Fatalf("in-flight gauge leaked: %d", in)
	}
}

func TestBoundMarshalsInfAsNull(t *testing.T) {
	b, err := json.Marshal([]Bound{1.5, Bound(math.Inf(1)), Bound(math.Inf(-1))})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1.5,null,null]" {
		t.Fatalf("got %s", b)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	r := &analysis.Result{Algorithm: "x"}
	c.Put("a", r)
	c.Put("b", r)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a evicted early")
	}
	c.Put("c", r)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats: %d hits %d misses", hits, misses)
	}

	// Disabled cache never stores.
	d := NewCache(0)
	d.Put("k", r)
	if _, ok := d.Get("k"); ok || d.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestPickAnalyzerRegistry(t *testing.T) {
	for _, name := range AnalyzerNames() {
		if _, err := PickAnalyzer(name); err != nil {
			t.Errorf("canonical name %q not resolvable: %v", name, err)
		}
	}
	if _, err := PickAnalyzer("nope"); err == nil {
		t.Error("unknown name must error")
	}
	a, err := PickAnalyzer(" Integrated ")
	if err != nil || a.Name() != "Integrated" {
		t.Errorf("case/space-insensitive lookup failed: %v %v", a, err)
	}
}
