package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// heavyConnBody renders an admit spec loading the route hard enough that
// one copy fits but two would not — the probe pair dry-run isolation tests
// lean on.
func heavyConnBody(name string) string {
	return fmt.Sprintf(`{"name": %q, "sigma": 1, "rho": 0.45, "access_rate": 1, "path": ["s0", "s1"], "deadline": 100}`, name)
}

// TestBatchSingleCommitViaStats pins the serving-side pipelining invariant
// end to end: one mixed envelope of N operations is exactly one engine
// envelope, one snapshot commit, and one version step, as exposed by
// GET /v1/stats — the same counters the CI bench gate reads.
func TestBatchSingleCommitViaStats(t *testing.T) {
	srv := newTestServer(t, nil)
	before := decode[StatsResponse](t, do(t, srv, "GET", "/v1/stats", ""))

	var ops []string
	for i := 0; i < 8; i++ {
		ops = append(ops, fmt.Sprintf(`{"op": "admit", "connection": %s}`, connBody(fmt.Sprintf("p%d", i))))
	}
	ops = append(ops, `{"op": "release", "name": "p0"}`)
	w := do(t, srv, "POST", "/v1/batch", fmt.Sprintf(`{"operations": [%s]}`, strings.Join(ops, ",")))
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchResponse](t, w)
	if resp.Admitted != 8 || resp.Released != 1 || resp.Errors != 0 {
		t.Fatalf("batch totals: %+v", resp)
	}

	after := decode[StatsResponse](t, do(t, srv, "GET", "/v1/stats", ""))
	if envs := after.BatchEnvelopes - before.BatchEnvelopes; envs != 1 {
		t.Fatalf("envelope count advanced by %d, want 1", envs)
	}
	if ops := after.BatchOps - before.BatchOps; ops != 9 {
		t.Fatalf("batch op count advanced by %d, want 9", ops)
	}
	if commits := after.BatchCommits - before.BatchCommits; commits != 1 {
		t.Fatalf("a 9-op envelope took %d snapshot commits, want exactly 1", commits)
	}
	if delta := after.SnapshotVersion - before.SnapshotVersion; delta != 1 {
		t.Fatalf("snapshot version advanced by %d over one envelope, want 1", delta)
	}
}

// TestBatchDryRunPinnedSnapshot pins the dry-run isolation semantics over
// the API: candidates of one dry envelope are judged against a single
// snapshot, each alone — two identical heavy candidates must both be
// admitted (no accumulation), nothing commits, and under a concurrent
// writer the pair must never split.
func TestBatchDryRunPinnedSnapshot(t *testing.T) {
	srv := newTestServer(t, nil)
	dryPair := fmt.Sprintf(`{"dry_run": true, "operations": [
		{"op": "admit", "connection": %s},
		{"op": "admit", "connection": %s}
	]}`, heavyConnBody("x"), heavyConnBody("y"))

	w := do(t, srv, "POST", "/v1/batch", dryPair)
	if w.Code != http.StatusOK {
		t.Fatalf("dry batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchResponse](t, w)
	if resp.Admitted != 2 {
		t.Fatalf("dry pair accumulated state across ops: %+v", resp)
	}
	if resp.Count != 0 || srv.State().Count() != 0 {
		t.Fatalf("dry envelope committed: count %d", srv.State().Count())
	}

	// Concurrent writer: flip a heavy blocker in and out on the same route.
	// Each dry pair must stay internally consistent — x and y always agree;
	// the old per-op path re-read the live head between ops and could split
	// them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := do(t, srv, "POST", "/v1/connections",
				fmt.Sprintf(`{"connection": %s}`, heavyConnBody("blocker")))
			if w.Code != http.StatusOK {
				return
			}
			do(t, srv, "DELETE", "/v1/connections/blocker", "")
		}
	}()
	for i := 0; i < 100; i++ {
		w := do(t, srv, "POST", "/v1/batch", dryPair)
		if w.Code != http.StatusOK {
			t.Fatalf("dry batch %d: %d %s", i, w.Code, w.Body)
		}
		resp := decode[BatchResponse](t, w)
		if len(resp.Results) != 2 {
			t.Fatalf("dry batch %d: %d results", i, len(resp.Results))
		}
		if resp.Results[0].Status != resp.Results[1].Status {
			t.Fatalf("dry batch %d internally inconsistent: %s vs %s",
				i, resp.Results[0].Status, resp.Results[1].Status)
		}
	}
	close(stop)
	wg.Wait()
}

// TestListCursorStaleAfterWrite pins the cursor stability contract: a
// cursor is only valid against the snapshot version it was cut from, and
// any commit in between — here a release that shifts every later offset —
// turns it into 410 stale_cursor instead of silently skipping a survivor.
func TestListCursorStaleAfterWrite(t *testing.T) {
	srv := newTestServer(t, nil)
	admitN(t, srv, 5)

	w := do(t, srv, "GET", "/v1/connections?limit=2", "")
	if w.Code != http.StatusOK {
		t.Fatalf("page 1: %d %s", w.Code, w.Body)
	}
	page1 := decode[ListResponse](t, w)
	if page1.NextCursor == "" {
		t.Fatal("page 1 returned no cursor")
	}

	// Cursor survives as long as nothing commits.
	w = do(t, srv, "GET", "/v1/connections?limit=2&cursor="+page1.NextCursor, "")
	if w.Code != http.StatusOK {
		t.Fatalf("page 2 before write: %d %s", w.Code, w.Body)
	}
	page2 := decode[ListResponse](t, w)

	// A release between pages compacts the set: offset 4 now points past a
	// different suffix and would skip the survivor that slid into it.
	if w := do(t, srv, "DELETE", "/v1/connections/c0", ""); w.Code != http.StatusOK {
		t.Fatalf("release: %d %s", w.Code, w.Body)
	}
	w = do(t, srv, "GET", "/v1/connections?limit=2&cursor="+page2.NextCursor, "")
	if w.Code != http.StatusGone {
		t.Fatalf("stale cursor: status %d, want 410 (%s)", w.Code, w.Body)
	}
	e := decode[errorResponse](t, w)
	if e.Error.Code != CodeStaleCursor {
		t.Fatalf("stale cursor code %q, want %q", e.Error.Code, CodeStaleCursor)
	}

	// Restarting the listing pages cleanly over the surviving 4.
	var got []string
	cursor := ""
	for {
		path := "/v1/connections?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		w := do(t, srv, "GET", path, "")
		if w.Code != http.StatusOK {
			t.Fatalf("restarted page: %d %s", w.Code, w.Body)
		}
		page := decode[ListResponse](t, w)
		for _, c := range page.Connections {
			got = append(got, c.Name)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(got) != 4 {
		t.Fatalf("restarted listing returned %d connections, want 4: %v", len(got), got)
	}
	for _, name := range got {
		if name == "c0" {
			t.Fatal("released connection still listed")
		}
	}
}

// TestBatchEnvelopeOrderPreserved pins the in-envelope ordering semantics
// on the pipelined path: release-then-readmit of one name inside a single
// envelope resolves sequentially (release first, fresh admit after).
func TestBatchEnvelopeOrderPreserved(t *testing.T) {
	srv := newTestServer(t, nil)
	admitN(t, srv, 2)
	body := fmt.Sprintf(`{"operations": [
		{"op": "release", "name": "c0"},
		{"op": "admit", "connection": %s},
		{"op": "release", "name": "c1"}
	]}`, connBody("c0"))
	w := do(t, srv, "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchResponse](t, w)
	if resp.Released != 2 || resp.Admitted != 1 || resp.Errors != 0 {
		t.Fatalf("batch totals: %+v", resp)
	}
	if resp.Results[0].Status != BatchStatusReleased ||
		resp.Results[1].Status != BatchStatusAdmitted ||
		resp.Results[2].Status != BatchStatusReleased {
		t.Fatalf("in-envelope order broken: %+v", resp.Results)
	}
	if resp.Count != 1 {
		t.Fatalf("final count %d, want 1", resp.Count)
	}
}
