package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
)

// connBody renders an admit spec for the test fabric with a loose deadline
// so many copies fit.
func connBody(name string) string {
	return fmt.Sprintf(`{"name": %q, "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s0", "s1"], "deadline": 100}`, name)
}

func admitN(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w := do(t, srv, "POST", "/v1/connections", fmt.Sprintf(`{"connection": %s}`, connBody(fmt.Sprintf("c%d", i))))
		if w.Code != http.StatusOK {
			t.Fatalf("admit c%d: %d %s", i, w.Code, w.Body)
		}
		if resp := decode[AdmitResponse](t, w); !resp.Admitted {
			t.Fatalf("admit c%d rejected: %+v", i, resp)
		}
	}
}

func TestBatchMixedOps(t *testing.T) {
	srv := newTestServer(t, nil)
	body := fmt.Sprintf(`{"operations": [
		{"op": "admit", "connection": %s},
		{"op": "admit", "connection": %s},
		{"op": "release", "name": "a"},
		{"op": "release", "name": "ghost"},
		{"op": "admit", "connection": %s}
	]}`, connBody("a"), connBody("b"), connBody("a"))
	w := do(t, srv, "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchResponse](t, w)
	if resp.Admitted != 3 || resp.Released != 1 || resp.Errors != 1 || resp.Rejected != 0 {
		t.Fatalf("batch totals: %+v", resp)
	}
	if resp.Count != 2 { // a admitted, released, re-admitted; b admitted
		t.Fatalf("final count %d, want 2", resp.Count)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("want 5 envelopes, got %d", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Index != i {
			t.Errorf("envelope %d carries index %d", i, res.Index)
		}
	}
	if r := resp.Results[0]; r.Op != "admit" || r.Status != BatchStatusAdmitted || r.Decision == nil || !r.Decision.Admitted {
		t.Errorf("op 0: %+v", r)
	}
	if r := resp.Results[2]; r.Op != "release" || r.Status != BatchStatusReleased || r.Mode == "" {
		t.Errorf("op 2: %+v", r)
	}
	if r := resp.Results[3]; r.Status != BatchStatusError || r.Error == nil || r.Error.Code != CodeNotFound {
		t.Errorf("op 3 (release of unknown name): %+v", r)
	}
	// The re-admission in op 4 saw the set as left by the release in op 2.
	if r := resp.Results[4]; r.Status != BatchStatusAdmitted {
		t.Errorf("op 4: %+v", r)
	}
}

func TestBatchRejectionEnvelope(t *testing.T) {
	srv := newTestServer(t, nil)
	// A lone flow rides through with zero queueing, so first load the
	// fabric with cross traffic; the tight-deadline candidate behind it is
	// then rejected — not an error — and its envelope carries the decision
	// with the violation list.
	cross := `{"name": "cross", "sigma": 5, "rho": 0.3, "access_rate": 1, "path": ["s0", "s1"], "deadline": 100}`
	tight := `{"name": "tight", "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s0", "s1"], "deadline": 0.0001}`
	w := do(t, srv, "POST", "/v1/batch", fmt.Sprintf(
		`{"operations": [{"op": "admit", "connection": %s}, {"op": "admit", "connection": %s}]}`, cross, tight))
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchResponse](t, w)
	if resp.Admitted != 1 || resp.Rejected != 1 || resp.Errors != 0 {
		t.Fatalf("totals: %+v", resp)
	}
	r := resp.Results[1]
	if r.Status != BatchStatusRejected || r.Decision == nil || r.Decision.Admitted || len(r.Decision.Violations) == 0 {
		t.Fatalf("rejected envelope: %+v", r)
	}
	if resp.Count != 1 {
		t.Fatalf("rejection committed something: count %d", resp.Count)
	}
}

func TestBatchValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{"operations": []}`},
		{"unknown op", `{"operations": [{"op": "compact"}]}`},
		{"admit without connection", `{"operations": [{"op": "admit"}]}`},
		{"release without name", `{"operations": [{"op": "release"}]}`},
		{"release in dry-run", `{"operations": [{"op": "release", "name": "x"}], "dry_run": true}`},
		{"negative timeout", fmt.Sprintf(`{"operations": [{"op": "admit", "connection": %s}], "timeout_seconds": -1}`, connBody("x"))},
		{"bad spec mid-batch", fmt.Sprintf(`{"operations": [{"op": "admit", "connection": %s}, {"op": "admit", "connection": {"name": "y", "path": ["nope"]}}]}`, connBody("x"))},
	}
	for _, tc := range cases {
		w := do(t, srv, "POST", "/v1/batch", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, w.Code, w.Body)
		}
	}
	// Up-front validation means the valid prefix of a malformed batch never
	// committed.
	if n := srv.State().Count(); n != 0 {
		t.Fatalf("malformed batches committed %d connections", n)
	}
}

func TestAdmitBatchDeprecatedAlias(t *testing.T) {
	srv := newTestServer(t, nil)
	body := fmt.Sprintf(`{"connections": [%s]}`, connBody("legacy"))
	w := do(t, srv, "POST", "/v1/admit/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("admit/batch: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation header %q, want \"true\"", got)
	}
	if got := w.Header().Get("Link"); got != `</v1/batch>; rel="successor-version"` {
		t.Errorf("Link header %q does not point at /v1/batch", got)
	}
	resp := decode[BatchAdmitResponse](t, w)
	if resp.Admitted != 1 || resp.Count != 1 {
		t.Fatalf("legacy batch semantics changed: %+v", resp)
	}
}

func TestListPagination(t *testing.T) {
	srv := newTestServer(t, nil)
	admitN(t, srv, 5)

	// No paging parameters: the whole set, no cursor (the pre-pagination
	// contract).
	all := decode[ListResponse](t, do(t, srv, "GET", "/v1/connections", ""))
	if all.Count != 5 || len(all.Connections) != 5 || all.NextCursor != "" {
		t.Fatalf("unpaged list: count %d, page %d, cursor %q", all.Count, len(all.Connections), all.NextCursor)
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		path := "/v1/connections?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		w := do(t, srv, "GET", path, "")
		if w.Code != http.StatusOK {
			t.Fatalf("page %d: %d %s", pages, w.Code, w.Body)
		}
		page := decode[ListResponse](t, w)
		if page.Count != 5 {
			t.Fatalf("page %d reports count %d, want 5", pages, page.Count)
		}
		for _, c := range page.Connections {
			got = append(got, c.Name)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(got) != 5 {
		t.Fatalf("walked %d pages, %d connections; want 3 pages, 5 connections", pages, len(got))
	}
	for i, name := range got {
		if want := fmt.Sprintf("c%d", i); name != want {
			t.Errorf("position %d: %q, want %q (pages must be stable and ordered)", i, name, want)
		}
	}

	for _, path := range []string{
		"/v1/connections?limit=-1",
		"/v1/connections?limit=x",
		"/v1/connections?cursor=%21%21",
		"/v1/connections?cursor=" + encodeCursor(3, srv.State().SnapshotVersion())[:1],
	} {
		if w := do(t, srv, "GET", path, ""); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, w.Code)
		}
	}

	// A cursor past the end is an empty page, not an error.
	w := do(t, srv, "GET", "/v1/connections?limit=2&cursor="+encodeCursor(99, srv.State().SnapshotVersion()), "")
	past := decode[ListResponse](t, w)
	if w.Code != http.StatusOK || len(past.Connections) != 0 || past.NextCursor != "" {
		t.Fatalf("past-the-end page: %d %+v", w.Code, past)
	}
}

func TestListServerFilter(t *testing.T) {
	srv := newTestServer(t, nil)
	// one connection crossing both servers, one entering at s1 only
	for _, body := range []string{
		`{"connection": {"name": "both", "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s0", "s1"], "deadline": 100}}`,
		`{"connection": {"name": "tail", "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s1"], "deadline": 100}}`,
	} {
		if w := do(t, srv, "POST", "/v1/connections", body); w.Code != http.StatusOK {
			t.Fatalf("admit: %d %s", w.Code, w.Body)
		}
	}
	s0 := decode[ListResponse](t, do(t, srv, "GET", "/v1/connections?server=s0", ""))
	if s0.Count != 1 || len(s0.Connections) != 1 || s0.Connections[0].Name != "both" {
		t.Fatalf("server=s0: %+v", s0)
	}
	s1 := decode[ListResponse](t, do(t, srv, "GET", "/v1/connections?server=s1", ""))
	if s1.Count != 2 || len(s1.Connections) != 2 {
		t.Fatalf("server=s1: %+v", s1)
	}
	// The filter composes with paging.
	paged := decode[ListResponse](t, do(t, srv, "GET", "/v1/connections?server=s1&limit=1", ""))
	if paged.Count != 2 || len(paged.Connections) != 1 || paged.NextCursor == "" {
		t.Fatalf("filtered page: %+v", paged)
	}
	if w := do(t, srv, "GET", "/v1/connections?server=nope", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown server: status %d, want 400", w.Code)
	}
}

func TestRemoveReportsMode(t *testing.T) {
	// On the shared 2-server fabric every connection interferes with every
	// other, so a release's closure covers all survivors and compaction is
	// the right call under the default threshold.
	srv := newTestServer(t, nil)
	admitN(t, srv, 2)
	w := do(t, srv, "DELETE", "/v1/connections/c0", "")
	if w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	resp := decode[RemoveResponse](t, w)
	if resp.Removed != "c0" || resp.Count != 1 {
		t.Fatalf("remove response: %+v", resp)
	}
	if resp.Mode != "compacted" {
		t.Fatalf("full-closure release reported mode %q, want compacted", resp.Mode)
	}

	// Disjoint routes: the closure is empty, so the same release shrinks
	// the baseline in place and reports incremental.
	state, err := NewState([]server.Server{
		{Name: "s0", Capacity: 1, Discipline: server.FIFO},
		{Name: "s1", Capacity: 1, Discipline: server.FIFO},
		{Name: "s2", Capacity: 1, Discipline: server.FIFO},
		{Name: "s3", Capacity: 1, Discipline: server.FIFO},
	}, analysis.Integrated{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(Config{State: state})
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{
		`{"connection": {"name": "left", "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s0", "s1"], "deadline": 100}}`,
		`{"connection": {"name": "right", "sigma": 1, "rho": 0.002, "access_rate": 1, "path": ["s2", "s3"], "deadline": 100}}`,
	} {
		if w := do(t, srv2, "POST", "/v1/connections", body); w.Code != http.StatusOK {
			t.Fatalf("admit: %d %s", w.Code, w.Body)
		}
	}
	w = do(t, srv2, "DELETE", "/v1/connections/left", "")
	if w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	if resp := decode[RemoveResponse](t, w); resp.Mode != "incremental" {
		t.Fatalf("disjoint release reported mode %q, want incremental", resp.Mode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	admitN(t, srv, 3)
	do(t, srv, "DELETE", "/v1/connections/c1", "")

	w := do(t, srv, "GET", "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	st := decode[StatsResponse](t, w)
	if st.Analyzer != (analysis.Integrated{}).Name() || !st.Incremental {
		t.Fatalf("engine identity: %+v", st)
	}
	if st.Admitted != 2 {
		t.Fatalf("admitted %d, want 2", st.Admitted)
	}
	if st.Tests.Incremental+st.Tests.Full < 3 {
		t.Fatalf("test counters did not accumulate: %+v", st.Tests)
	}
	if st.Releases.Incremental+st.Releases.Full != 1 {
		t.Fatalf("release counters: %+v", st.Releases)
	}
	if st.BaselineEpoch == 0 {
		t.Fatalf("baseline epoch never advanced: %+v", st)
	}
	if st.SnapshotVersion == 0 {
		t.Fatalf("snapshot version never advanced: %+v", st)
	}
	if len(st.Affected) == 0 {
		t.Fatal("no affected-set histogram")
	}
	// Cumulative buckets: non-decreasing, ending at the observation count.
	prev := uint64(0)
	for i, b := range st.Affected {
		if b.Count < prev {
			t.Fatalf("bucket %d not cumulative: %+v", i, st.Affected)
		}
		prev = b.Count
	}
	if last := st.Affected[len(st.Affected)-1]; last.Count != st.AffectedCount {
		t.Fatalf("+Inf bucket %d != affected_count %d", last.Count, st.AffectedCount)
	}
}

func TestMetricsExposeReleases(t *testing.T) {
	srv := newTestServer(t, nil)
	admitN(t, srv, 1)
	do(t, srv, "DELETE", "/v1/connections/c0", "")
	w := do(t, srv, "GET", "/v1/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		"delayd_admission_releases_total{mode=\"incremental\"}",
		"delayd_admission_releases_total{mode=\"compacted\"}",
		"delayd_admission_baseline_epoch",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
