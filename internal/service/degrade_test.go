package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"delaycalc/internal/analysis"
	"delaycalc/internal/netspec"
	"delaycalc/internal/topo"
)

// TestAnalyzeDegradesToDecomposed forces the soft budget to expire
// instantly: the integrated analysis is cut off at its first checkpoint,
// the handler falls back to the decomposed bound, and the response is
// labeled degraded with the bound source. The bounds must match a direct
// decomposed analysis bit for bit.
func TestAnalyzeDegradesToDecomposed(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.AnalyzeTimeout = time.Nanosecond })
	w := do(t, srv, "POST", "/v1/analyze", analyzeBody)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded analyze: %d %s", w.Code, w.Body)
	}
	resp := decode[AnalyzeResponse](t, w)
	if !resp.Degraded {
		t.Fatalf("want degraded:true, got %s", w.Body)
	}
	if resp.BoundSource != (analysis.Decomposed{}).Name() {
		t.Fatalf("want bound_source %q, got %q", (analysis.Decomposed{}).Name(), resp.BoundSource)
	}
	if resp.Algorithm != (analysis.Decomposed{}).Name() {
		t.Fatalf("degraded algorithm %q, want decomposed", resp.Algorithm)
	}
	if got := srv.Metrics().Degraded(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// The degraded bounds are exactly the decomposed analysis of the
	// posted network.
	var req AnalyzeRequest
	if err := json.Unmarshal([]byte(analyzeBody), &req); err != nil {
		t.Fatal(err)
	}
	net, err := netspec.FromSpec(&req.Network)
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.Decomposed{}.Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Bounds) != len(want.Bounds) {
		t.Fatalf("degraded bounds length %d, want %d", len(resp.Bounds), len(want.Bounds))
	}
	for i := range want.Bounds {
		if float64(resp.Bounds[i]) != want.Bounds[i] {
			t.Errorf("degraded bound %d = %v, want decomposed %v", i, resp.Bounds[i], want.Bounds[i])
		}
	}

	// The degraded result was cached under the FALLBACK's key, never the
	// requested analyzer's: a later uncontended integrated request must
	// miss, while an explicit decomposed request hits.
	digest, err := netspec.Digest(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Cache().Get((analysis.Integrated{}).Name() + ":" + digest); ok {
		t.Fatal("degraded result cached under the integrated key")
	}
	if _, ok := srv.Cache().Get((analysis.Decomposed{}).Name() + ":" + digest); !ok {
		t.Fatal("degraded result not cached under the decomposed key")
	}
}

// TestAnalyzeDecomposedNeverDegrades pins that the fallback analyzer
// itself is exempt from the soft budget: there is nothing sound to degrade
// to below it, so it runs to completion under the hard deadline.
func TestAnalyzeDecomposedNeverDegrades(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.AnalyzeTimeout = time.Nanosecond })
	body := strings.Replace(analyzeBody, `"integrated"`, `"decomposed"`, 1)
	w := do(t, srv, "POST", "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("decomposed analyze under 1ns budget: %d %s", w.Code, w.Body)
	}
	resp := decode[AnalyzeResponse](t, w)
	if resp.Degraded {
		t.Fatalf("decomposed analysis reported degraded: %s", w.Body)
	}
}

// TestAnalyzeTimeoutOverride pins the per-request budget override: a
// negative value is rejected up front, a generous value disables the
// degradation the 1ns server default would force.
func TestAnalyzeTimeoutOverride(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.AnalyzeTimeout = time.Nanosecond })
	bad := analyzeBody[:len(analyzeBody)-1] + `, "timeout_seconds": -1}`
	w := do(t, srv, "POST", "/v1/analyze", bad)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("negative timeout_seconds: want 400, got %d %s", w.Code, w.Body)
	}
	generous := analyzeBody[:len(analyzeBody)-1] + `, "timeout_seconds": 30}`
	w = do(t, srv, "POST", "/v1/analyze", generous)
	if w.Code != http.StatusOK {
		t.Fatalf("override analyze: %d %s", w.Code, w.Body)
	}
	if resp := decode[AnalyzeResponse](t, w); resp.Degraded {
		t.Fatalf("30s override still degraded: %s", w.Body)
	}
}

// TestAdmitDegradesToDecomposed forces the admission test onto the
// degraded path and checks the decision still commits: the decomposed
// bound dominates the integrated one, so an admission it grants is safe.
func TestAdmitDegradesToDecomposed(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.AnalyzeTimeout = time.Nanosecond })
	w := do(t, srv, "POST", "/v1/connections", admitBody)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded admit: %d %s", w.Code, w.Body)
	}
	resp := decode[AdmitResponse](t, w)
	if !resp.Degraded {
		t.Fatalf("want degraded:true, got %s", w.Body)
	}
	if resp.BoundSource != (analysis.Decomposed{}).Name() {
		t.Fatalf("want bound_source %q, got %q", (analysis.Decomposed{}).Name(), resp.BoundSource)
	}
	if !resp.Admitted || resp.Count != 1 {
		t.Fatalf("degraded admit should still commit: %+v", resp)
	}
	if srv.State().Count() != 1 {
		t.Fatalf("state count = %d after degraded admit", srv.State().Count())
	}
	// The decomposed bounds the decision was made on.
	lib, err := analysis.Decomposed{}.Analyze(&topo.Network{
		Servers:     testFabric(),
		Connections: []topo.Connection{mustConnection(t, admitBody)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lib.Bounds {
		if float64(resp.Bounds[i]) != lib.Bounds[i] {
			t.Errorf("degraded admit bound %d = %v, want decomposed %v", i, resp.Bounds[i], lib.Bounds[i])
		}
	}
}

// TestBatchAdmitDegrades runs a batch under an instant soft budget: every
// item is marked degraded and the committed count matches.
func TestBatchAdmitDegrades(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.AnalyzeTimeout = time.Nanosecond })
	conn := connectionOf(admitBody)
	conn2 := strings.Replace(conn, `"video"`, `"audio"`, 1)
	body := fmt.Sprintf(`{"connections": [%s, %s]}`, conn, conn2)
	w := do(t, srv, "POST", "/v1/admit/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchAdmitResponse](t, w)
	if resp.Admitted != 2 {
		t.Fatalf("degraded batch admitted %d, want 2: %s", resp.Admitted, w.Body)
	}
	for i, item := range resp.Results {
		if !item.Degraded {
			t.Errorf("batch item %d not marked degraded: %+v", i, item)
		}
	}
}

// TestPanickingAnalyzerRecovered injects an analyzer that panics mid
// analysis: the request must answer the standard 500 envelope, the panic
// must not kill the process, and the in-flight gauge must return to zero
// (the defer-based accounting satellite).
func TestPanickingAnalyzerRecovered(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.pick = func(string) (analysis.Analyzer, error) { return panicAnalyzer{}, nil }
	w := do(t, srv, "POST", "/v1/analyze", analyzeBody)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panic analyze: want 500, got %d %s", w.Code, w.Body)
	}
	env := decode[errorResponse](t, w)
	if env.Error.Code != CodeInternal {
		t.Fatalf("panic envelope code %q, want %q", env.Error.Code, CodeInternal)
	}
	if got := srv.Metrics().InFlight(); got != 0 {
		t.Fatalf("in-flight gauge %d after recovered panic, want 0", got)
	}
	// The server keeps serving afterwards.
	if w := do(t, srv, "GET", "/v1/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", w.Code)
	}
}

type panicAnalyzer struct{}

func (panicAnalyzer) Name() string { return "panic" }
func (panicAnalyzer) Analyze(*topo.Network) (*analysis.Result, error) {
	panic("injected analyzer panic")
}

// TestCancelledAnalysisNoGoroutineLeak sheds a burst of instantly
// timed-out requests and checks the goroutine count settles back: the
// synchronous, context-aware analyze path leaves nothing running behind a
// shed response.
func TestCancelledAnalysisNoGoroutineLeak(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, srv, "POST", "/v1/analyze", analyzeBody)
			if w.Code != http.StatusServiceUnavailable {
				t.Errorf("want 503, got %d", w.Code)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked by shed analyses: %d before, %d after settle",
		before, runtime.NumGoroutine())
}

// mustConnection decodes the connection object of an AdmitRequest body
// against the test fabric.
func mustConnection(t *testing.T, body string) topo.Connection {
	t.Helper()
	var req AdmitRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	index, err := netspec.ServerIndex(testFabric())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := netspec.ConnectionFromSpec(&req.Connection, index)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}
