package service

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultNetworkID names the network that every /v1 (and legacy) route is
// an alias for. A Config built from a bare State serves exactly one
// network under this id, which keeps single-tenant deployments identical
// to the pre-registry behavior.
const DefaultNetworkID = "default"

// Network is one tenant fabric: an admission state (over a sharded
// engine), its own analyze cache, and its own request metrics. Tenants
// never share mutable state, so load on one network cannot perturb
// another's bounds, cache hit ratio, or metric series.
type Network struct {
	id      string
	state   *State
	cache   *Cache
	metrics *Metrics
}

// ID returns the network's registry id.
func (n *Network) ID() string { return n.id }

// State returns the network's admission state.
func (n *Network) State() *State { return n.state }

// Cache returns the network's analyze cache.
func (n *Network) Cache() *Cache { return n.cache }

// Metrics returns the network's request metrics.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Registry maps network ids to independent Network instances. The first
// network added becomes the default: the one /v1 and legacy spellings
// resolve to. Lookups are lock-free for the common path (read lock);
// registration normally happens at startup but is safe at any time.
type Registry struct {
	mu        sync.RWMutex
	nets      map[string]*Network
	order     []string
	defaultID string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{nets: make(map[string]*Network)}
}

// validNetworkID reports whether an id is usable in a URL path segment
// without escaping: 1-64 characters from [A-Za-z0-9._-].
func validNetworkID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Add registers a network under id. The cache may be nil, in which case
// the network gets its own NewCache(DefaultCacheSize). The first network
// added becomes the registry default.
func (r *Registry) Add(id string, state *State, cache *Cache) (*Network, error) {
	if !validNetworkID(id) {
		return nil, fmt.Errorf("service: invalid network id %q (want 1-64 chars of [A-Za-z0-9._-])", id)
	}
	if state == nil {
		return nil, fmt.Errorf("service: network %q has no state", id)
	}
	if cache == nil {
		cache = NewCache(DefaultCacheSize)
	}
	nw := &Network{id: id, state: state, cache: cache, metrics: NewMetrics()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nets[id]; dup {
		return nil, fmt.Errorf("service: duplicate network id %q", id)
	}
	r.nets[id] = nw
	r.order = append(r.order, id)
	if r.defaultID == "" {
		r.defaultID = id
	}
	return nw, nil
}

// Get returns the network registered under id.
func (r *Registry) Get(id string) (*Network, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nw, ok := r.nets[id]
	return nw, ok
}

// Default returns the default network (the first one added), or nil for
// an empty registry.
func (r *Registry) Default() *Network {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nets[r.defaultID]
}

// DefaultID returns the default network's id ("" for an empty registry).
func (r *Registry) DefaultID() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultID
}

// IDs returns every registered network id in sorted order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, len(r.order))
	copy(ids, r.order)
	sort.Strings(ids)
	return ids
}

// Len returns the number of registered networks.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nets)
}
