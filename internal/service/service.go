package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/netspec"
	"delaycalc/internal/topo"
)

// Defaults applied by NewServer when the corresponding Config field is zero.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultAnalyzeTimeout = 5 * time.Second
	DefaultMaxInFlight    = 64
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB
	DefaultCacheSize      = 256
)

// Config parameterizes a Server.
type Config struct {
	// Registry holds the tenant networks the server routes
	// /v2/networks/{netid}/... requests to. When nil, the server builds a
	// single-network registry from State and Cache under DefaultNetworkID —
	// the single-tenant configuration every /v1 deployment ran as.
	Registry *Registry
	// State holds the live admission fabric of the default network.
	// Required when Registry is nil; must be unset otherwise.
	State *State
	// Cache holds the default network's analyze results;
	// NewCache(DefaultCacheSize) when nil. Only read when Registry is nil.
	Cache *Cache
	// Logger receives structured request logs; a no-op logger when nil.
	Logger *slog.Logger
	// RequestTimeout bounds each request's context — the HARD deadline:
	// once it passes, the request is shed with a 503 envelope and a
	// Retry-After header, and its in-flight analysis is cancelled.
	RequestTimeout time.Duration
	// AnalyzeTimeout is the SOFT analysis budget: when the requested
	// analyzer exceeds it, the request degrades to the always-sound
	// decomposed bound, labeled degraded:true with the bound source.
	// Zero applies DefaultAnalyzeTimeout; negative disables degradation
	// (the analyzer runs until the hard deadline). Overridable
	// per-request via timeout_seconds.
	AnalyzeTimeout time.Duration
	// MaxInFlight bounds the number of concurrently running analyses
	// across the analyze and admit endpoints of EVERY network; excess
	// requests queue until a slot frees or their hard deadline sheds them.
	// Zero applies DefaultMaxInFlight; negative disables the bound.
	MaxInFlight int
	// MaxBodyBytes bounds request body sizes; oversized bodies get 413.
	MaxBodyBytes int64
}

// Server is the delayd HTTP API: admission control over one or more
// tenant fabrics plus stateless analysis with caching, instrumented with
// per-network Metrics. Canonical endpoints are network-scoped under
// /v2/networks/{netid}/; every /v1 spelling (and the unprefixed spellings
// from before the API was versioned) still works as an alias for the
// default network, answering with a Deprecation header and a
// successor-version Link to its /v2 equivalent.
type Server struct {
	reg        *Registry
	log        *slog.Logger
	timeout    time.Duration
	softBudget time.Duration // <= 0: degradation disabled
	sem        chan struct{} // analysis slots; nil: unbounded
	pick       func(string) (analysis.Analyzer, error)
	maxBody    int64
	mux        *http.ServeMux
}

// netHandler is an endpoint handler bound to one resolved tenant network.
type netHandler func(nw *Network, w http.ResponseWriter, r *http.Request)

// Canonical endpoint labels. Metrics are per-network instances, so the
// label keeps the {netid} placeholder literal: cardinality stays
// independent of both the spelling clients use and the number of tenants.
const (
	epAdmit      = "POST /v2/networks/{netid}/connections"
	epBatch      = "POST /v2/networks/{netid}/batch"
	epAdmitBatch = "POST /v1/admit/batch"
	epAnalyze    = "POST /v2/networks/{netid}/analyze"
)

// route is one row of the Server's registration table: a canonical
// network-scoped suffix under /v2/networks/{netid} (or an absolute path
// for global rows), the deprecated /v1 spelling, optional /v1-era aliases,
// and optional pre-versioning legacy spellings. Every non-canonical
// spelling resolves to the default network and is instrumented under the
// canonical label, so metrics cardinality does not depend on which
// spelling clients use.
type route struct {
	method  string
	suffix  string   // v2 path suffix; for global rows, the absolute v2 path
	global  bool     // not network-scoped (healthz, the networks listing)
	v1      string   // deprecated /v1 spelling ("" = v2-only)
	aliases []string // additional deprecated /v1-era spellings
	legacy  []string // deprecated pre-versioning spellings
	// successor overrides the computed /v2 successor in deprecation links
	// (the admit-only batch points at /v1/batch, its direct replacement).
	successor string
	handler   netHandler
}

// routes is the single registration table for every endpoint.
func (s *Server) routes() []route {
	return []route{
		{method: "POST", suffix: "/connections", v1: "/v1/connections", handler: s.handleAdmit,
			aliases: []string{"/v1/admit"}, legacy: []string{"/connections", "/admit"}},
		{method: "GET", suffix: "/connections", v1: "/v1/connections", handler: s.handleList,
			legacy: []string{"/connections"}},
		{method: "DELETE", suffix: "/connections/{name}", v1: "/v1/connections/{name}", handler: s.handleRemove,
			legacy: []string{"/connections/{name}"}},
		{method: "POST", suffix: "/batch", v1: "/v1/batch", handler: s.handleBatch},
		// The admit-only batch predates the mixed-op batch; it stays a
		// /v1-only spelling whose successor is the mixed-op endpoint.
		{method: "POST", v1: "/v1/admit/batch", successor: "/v1/batch", handler: s.handleAdmitBatch},
		{method: "GET", suffix: "/stats", v1: "/v1/stats", handler: s.handleStats},
		{method: "POST", suffix: "/analyze", v1: "/v1/analyze", handler: s.handleAnalyze,
			legacy: []string{"/analyze"}},
		{method: "GET", suffix: "/metrics", v1: "/v1/metrics", handler: s.handleMetrics,
			legacy: []string{"/metrics"}},
		{method: "GET", suffix: "/v2/healthz", global: true, v1: "/v1/healthz", handler: s.handleHealthz,
			legacy: []string{"/healthz"}},
		{method: "GET", suffix: "/v2/networks", global: true, handler: s.handleNetworks},
	}
}

// NewServer assembles the API around a network registry (or, for the
// single-tenant configuration, a bare admission state).
func NewServer(cfg Config) (*Server, error) {
	s := &Server{
		reg:        cfg.Registry,
		log:        cfg.Logger,
		timeout:    cfg.RequestTimeout,
		softBudget: cfg.AnalyzeTimeout,
		pick:       PickAnalyzer,
		maxBody:    cfg.MaxBodyBytes,
	}
	if s.reg == nil {
		if cfg.State == nil {
			return nil, fmt.Errorf("service: Config.State is required when no Registry is given")
		}
		s.reg = NewRegistry()
		if _, err := s.reg.Add(DefaultNetworkID, cfg.State, cfg.Cache); err != nil {
			return nil, err
		}
	} else {
		if cfg.State != nil || cfg.Cache != nil {
			return nil, fmt.Errorf("service: set either Config.Registry or Config.State/Cache, not both")
		}
		if s.reg.Len() == 0 {
			return nil, fmt.Errorf("service: Config.Registry has no networks")
		}
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.timeout <= 0 {
		s.timeout = DefaultRequestTimeout
	}
	if s.softBudget == 0 {
		s.softBudget = DefaultAnalyzeTimeout
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxInFlight > 0 {
		s.sem = make(chan struct{}, maxInFlight)
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}

	defID := s.reg.DefaultID()
	s.mux = http.NewServeMux()
	// allow collects, per exact path spelling, the method set: the input of
	// the uniform 405 handlers registered below.
	allow := make(map[string][]string)
	addAllow := func(path, method string) {
		for _, m := range allow[path] {
			if m == method {
				return
			}
		}
		allow[path] = append(allow[path], method)
	}
	for _, rt := range s.routes() {
		var label, v2path string
		switch {
		case rt.global:
			v2path = rt.suffix
			label = rt.method + " " + v2path
		case rt.suffix != "":
			v2path = "/v2/networks/{netid}" + rt.suffix
			label = rt.method + " " + v2path
		default: // /v1-only row
			label = rt.method + " " + rt.v1
		}
		if v2path != "" {
			h := s.scoped(rt.handler)
			if rt.global {
				h = s.onDefault(rt.handler)
			}
			s.mux.HandleFunc(rt.method+" "+v2path, s.instrument(label, h))
			addAllow(v2path, rt.method)
		}
		successor := rt.successor
		if successor == "" {
			if rt.global {
				successor = v2path
			} else {
				successor = "/v2/networks/" + defID + rt.suffix
			}
		}
		spellings := make([]string, 0, 2+len(rt.aliases)+len(rt.legacy))
		if rt.v1 != "" {
			spellings = append(spellings, rt.v1)
		}
		spellings = append(spellings, rt.aliases...)
		spellings = append(spellings, rt.legacy...)
		for _, p := range spellings {
			s.mux.HandleFunc(rt.method+" "+p,
				s.instrument(label, deprecated(successor, s.onDefault(rt.handler))))
			addAllow(p, rt.method)
		}
	}
	// Every known path answers unsupported methods with the same 405
	// envelope and an Allow header, instead of the mux's plain-text default.
	for path, methods := range allow {
		sort.Strings(methods)
		s.mux.HandleFunc(path, methodNotAllowed(methods))
	}
	// Unknown paths answer the JSON 404 envelope.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s, nil
}

// scoped resolves {netid} against the registry before invoking the
// handler; unknown ids answer the 404 envelope with a stable code.
func (s *Server) scoped(h netHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("netid")
		nw, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownNetwork,
				fmt.Sprintf("no network named %q", id))
			return
		}
		h(nw, w, r)
	}
}

// onDefault binds a handler to the default network — the target of every
// /v1 and legacy spelling, and of global routes.
func (s *Server) onDefault(h netHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(s.reg.Default(), w, r)
	}
}

// methodNotAllowed writes the uniform 405 envelope with an Allow header;
// registered as the method-less pattern of every known path so the mux's
// plain-text fallback never reaches clients.
func methodNotAllowed(methods []string) http.HandlerFunc {
	allow := strings.Join(methods, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, allow))
	}
}

// deprecated marks responses from a superseded spelling with the standard
// Deprecation header and a successor-version link to its replacement.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		h(w, r)
	}
}

// ServeHTTP dispatches to the instrumented mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the tenant networks.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the default network's accumulator (used by tests).
func (s *Server) Metrics() *Metrics { return s.reg.Default().metrics }

// Cache exposes the default network's analyze cache (used by tests and
// benchmarks).
func (s *Server) Cache() *Cache { return s.reg.Default().cache }

// State exposes the default network's admission state.
func (s *Server) State() *State { return s.reg.Default().state }

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// metricsFor resolves the Metrics instance a request charges to: the
// addressed network's when the path carries a known {netid}, the default
// network's otherwise (v1/legacy spellings, global routes, unknown ids).
func (s *Server) metricsFor(r *http.Request) *Metrics {
	if id := r.PathValue("netid"); id != "" {
		if nw, ok := s.reg.Get(id); ok {
			return nw.metrics
		}
	}
	return s.reg.Default().metrics
}

// instrument wraps a handler with the request-scoped plumbing shared by
// every endpoint: body size limiting, a context deadline, in-flight and
// latency metrics under a stable endpoint label on the addressed
// network's accumulator, panic recovery, and a structured access log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m := s.metricsFor(r)
		m.RequestStarted()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.maxBody)
		}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic", "endpoint", endpoint, "panic", p,
					"stack", string(debug.Stack()))
				if rec.status == http.StatusOK {
					writeError(rec, http.StatusInternalServerError, CodeInternal, "internal error")
				}
			}
			elapsed := time.Since(start)
			m.RequestFinished(endpoint, rec.status, elapsed.Seconds())
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}()
		h(rec, r)
	}
}

// Stable machine-readable error codes carried by every non-2xx reply's
// envelope. The admission codes are shared with package admission so a
// Decision's code and the envelope's code can never drift apart.
const (
	CodeInvalidSpec      = admission.CodeInvalidSpec
	CodeDeadlineMissed   = admission.CodeDeadlineMissed
	CodeUnstable         = admission.CodeUnstable
	CodeUnknownAnalyzer  = "unknown_analyzer"
	CodeUnknownNetwork   = "unknown_network"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTimeout          = "timeout"
	CodeNotFound         = "not_found"
	CodeBodyTooLarge     = "body_too_large"
	CodeStaleCursor      = "stale_cursor"
	CodeInternal         = "internal"
)

// SnapshotVersionHeader carries the replica-read snapshot version on GET
// responses: the version of the immutable promoted snapshot view the
// response was served from, monotone under every commit on the network.
const SnapshotVersionHeader = "X-Snapshot-Version"

func setSnapshotVersion(w http.ResponseWriter, version uint64) {
	w.Header().Set(SnapshotVersionHeader, strconv.FormatUint(version, 10))
}

// ErrorDetail is the payload of the error envelope: a stable
// machine-readable code plus a human-readable message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is the JSON envelope of every non-2xx reply:
//
//	{"error": {"code": "...", "message": "..."}}
type errorResponse struct {
	Error ErrorDetail `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: ErrorDetail{Code: code, Message: msg}})
}

// decodeBody decodes a JSON request body strictly, mapping the failure
// modes to the right status: 413 for an oversized body, 400 otherwise.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "invalid JSON: "+err.Error())
		return false
	}
	// Reject trailing garbage after the document.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "invalid JSON: trailing data after document")
		return false
	}
	return true
}

// fallbackAnalyzer is the degradation target: the decomposed (Cruz)
// analysis is always valid — its bound dominates the integrated bound on
// every network — and cheap, so falling back to it under time pressure
// trades tightness for latency without ever returning an unsound bound.
var fallbackAnalyzer = analysis.Decomposed{}

// degradable reports whether an analyzer has a cheaper sound fallback
// (everything except the fallback itself).
func degradable(a analysis.Analyzer) bool {
	_, isDecomposed := a.(analysis.Decomposed)
	return !isDecomposed
}

// shed rejects a request whose hard deadline passed (or that could not get
// an analysis slot in time) with the 503 envelope and a Retry-After hint.
func (s *Server) shed(nw *Network, w http.ResponseWriter, msg string) {
	nw.metrics.RequestShed()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, CodeTimeout, msg)
}

// acquireSlot takes one bounded-concurrency analysis slot, queueing (and
// exporting the queue depth on the network's metrics) until one frees or
// the request's hard deadline sheds it. Reports false when the context
// won. The slot pool is shared across networks — it bounds the process's
// concurrent analyses — but the queue gauge is per-network.
func (s *Server) acquireSlot(ctx context.Context, nw *Network) bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	nw.metrics.QueueEntered()
	defer nw.metrics.QueueLeft()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// releaseSlot returns an analysis slot.
func (s *Server) releaseSlot() {
	if s.sem != nil {
		<-s.sem
	}
}

// softContext derives the soft-budget context for one analysis: the
// per-request override (seconds) when positive, the server default
// otherwise. ok is false when degradation is disabled (negative budget),
// in which case ctx is returned unchanged.
func (s *Server) softContext(ctx context.Context, override float64) (sctx context.Context, cancel context.CancelFunc, ok bool) {
	budget := s.softBudget
	if override > 0 {
		budget = time.Duration(override * float64(time.Second))
	}
	if budget <= 0 {
		return ctx, func() {}, false
	}
	sctx, cancel = context.WithTimeout(ctx, budget)
	return sctx, cancel, true
}

// observeStages exports an analysis run's per-stage wall time to the
// network's metrics histograms and the debug log.
func (s *Server) observeStages(nw *Network, endpoint string, tm *analysis.Timings) {
	stages := tm.StageSeconds()
	for st, sec := range stages {
		nw.metrics.ObserveStage(st, sec)
	}
	s.log.Debug("analysis stages",
		"endpoint", endpoint,
		"network", nw.id,
		"partition_s", stages["partition"],
		"aggregate_s", stages["aggregate"],
		"theta_s", stages["theta"],
		"propagate_s", stages["propagate"],
	)
}

// runAnalysis executes one stateless analysis under the degradation
// policy: the requested analyzer runs under the soft budget; if the budget
// expires while the hard deadline is still alive, the always-sound
// decomposed fallback runs in its place and degraded is reported true. An
// error for which admission.IsCanceled holds means the hard deadline
// passed and the request must be shed.
func (s *Server) runAnalysis(ctx context.Context, nw *Network, endpoint string, analyzer analysis.Analyzer, net *topo.Network, override float64) (res *analysis.Result, degraded bool, err error) {
	tctx, tm := analysis.WithTimings(ctx)
	defer s.observeStages(nw, endpoint, tm)
	sctx, cancel, hasSoft := s.softContext(tctx, override)
	if !hasSoft || !degradable(analyzer) {
		cancel()
		res, err = analysis.AnalyzeWithContext(tctx, analyzer, net)
		return res, false, err
	}
	res, err = analysis.AnalyzeWithContext(sctx, analyzer, net)
	cancel()
	if err == nil {
		return res, false, nil
	}
	if !admission.IsCanceled(err) || ctx.Err() != nil {
		// A real analyzer error, or the hard deadline itself: no fallback.
		return nil, false, err
	}
	nw.metrics.DegradedServed()
	s.log.Warn("analysis degraded to decomposed bound",
		"endpoint", endpoint, "network", nw.id, "analyzer", analyzer.Name())
	res, err = analysis.AnalyzeWithContext(tctx, fallbackAnalyzer, net)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// runAdmission executes one admission test/commit under the same
// degradation policy as runAnalysis. Degrading an admission is sound in
// the conservative direction: the decomposed bound dominates the
// integrated bound, so a degraded decision may reject a candidate the
// integrated analysis would have admitted but never the reverse.
func (s *Server) runAdmission(ctx context.Context, nw *Network, endpoint string, dryRun bool, cand topo.Connection, override float64) (d admission.Decision, degraded bool, err error) {
	tctx, tm := analysis.WithTimings(ctx)
	defer s.observeStages(nw, endpoint, tm)
	run := func(runCtx context.Context) (admission.Decision, error) {
		if dryRun {
			return nw.state.TestContext(runCtx, cand)
		}
		return nw.state.AdmitContext(runCtx, cand)
	}
	sctx, cancel, hasSoft := s.softContext(tctx, override)
	if !hasSoft || !degradable(nw.state.Engine().Analyzer()) {
		cancel()
		d, err = run(tctx)
		return d, false, err
	}
	d, err = run(sctx)
	cancel()
	if err == nil || !admission.IsCanceled(err) || ctx.Err() != nil {
		return d, false, err
	}
	nw.metrics.DegradedServed()
	s.log.Warn("admission degraded to decomposed bound",
		"endpoint", endpoint, "network", nw.id, "connection", cand.Name, "dry_run", dryRun)
	if dryRun {
		d, err = nw.state.TestWith(tctx, fallbackAnalyzer, cand)
	} else {
		d, err = nw.state.AdmitWith(tctx, fallbackAnalyzer, cand)
	}
	if err != nil {
		return d, false, err
	}
	return d, true, nil
}

// Bound marshals a delay bound, rendering the unbounded (+Inf) and
// undefined (NaN) cases as JSON null, which plain JSON numbers cannot
// represent.
type Bound float64

// MarshalJSON implements json.Marshaler.
func (b Bound) MarshalJSON() ([]byte, error) {
	f := float64(b)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

func toBounds(fs []float64) []Bound {
	out := make([]Bound, len(fs))
	for i, f := range fs {
		out[i] = Bound(f)
	}
	return out
}

// ViolationSpec mirrors admission.Violation in JSON: one connection whose
// deadline the trial network would miss, with the offending bound (null
// when unbounded) and the deadline as structured fields.
type ViolationSpec struct {
	Connection string  `json:"connection"`
	Bound      Bound   `json:"bound"`
	Deadline   float64 `json:"deadline"`
}

func toViolations(vs []admission.Violation) []ViolationSpec {
	if len(vs) == 0 {
		return nil
	}
	out := make([]ViolationSpec, len(vs))
	for i, v := range vs {
		out[i] = ViolationSpec{Connection: v.Connection, Bound: Bound(v.Bound), Deadline: v.Deadline}
	}
	return out
}

// AdmitRequest is the body of POST /v2/networks/{netid}/connections.
type AdmitRequest struct {
	Connection netspec.ConnectionSpec `json:"connection"`
	// DryRun runs the admission test without committing the connection.
	DryRun bool `json:"dry_run,omitempty"`
	// TimeoutSeconds overrides the server's soft analysis budget for this
	// request; zero keeps the server default, negative is rejected.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// AdmitResponse reports an admission decision. Code carries the stable
// rejection code (deadline_missed, unstable, ...) and Violations the full
// list of deadline violations; Reason stays the human-readable summary.
type AdmitResponse struct {
	Admitted   bool            `json:"admitted"`
	DryRun     bool            `json:"dry_run,omitempty"`
	Code       string          `json:"code,omitempty"`
	Reason     string          `json:"reason,omitempty"`
	Violations []ViolationSpec `json:"violations,omitempty"`
	Bounds     []Bound         `json:"bounds,omitempty"`
	Count      int             `json:"count"`
	// Degraded marks a decision made against the decomposed fallback bound
	// after the requested analysis exceeded its soft budget; BoundSource
	// names the analysis that produced the bounds.
	Degraded    bool   `json:"degraded,omitempty"`
	BoundSource string `json:"bound_source,omitempty"`
}

func (s *Server) handleAdmit(nw *Network, w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	index, err := netspec.ServerIndex(nw.state.Servers())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	cand, err := netspec.ConnectionFromSpec(&req.Connection, index)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	if req.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "timeout_seconds must be non-negative")
		return
	}
	ctx := r.Context()
	if ctx.Err() != nil {
		s.shed(nw, w, "request deadline exceeded")
		return
	}
	if !s.acquireSlot(ctx, nw) {
		s.shed(nw, w, "no analysis slot free before the request deadline")
		return
	}
	defer s.releaseSlot()
	// The admission test analyzes an immutable snapshot outside any lock;
	// Admit commits with a version check and retries on conflict, so a
	// timed-out client still never leaves the fabric in an unknown state.
	d, degraded, err := s.runAdmission(ctx, nw, epAdmit, req.DryRun, cand, req.TimeoutSeconds)
	if err != nil {
		if admission.IsCanceled(err) {
			s.shed(nw, w, "admission analysis did not finish before the request deadline")
			return
		}
		code := d.Code
		if code == "" {
			code = CodeInvalidSpec
		}
		writeError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	resp := AdmitResponse{
		Admitted:   d.Admitted,
		DryRun:     req.DryRun,
		Code:       d.Code,
		Reason:     d.Reason,
		Violations: toViolations(d.Violations),
		Bounds:     toBounds(d.Bounds),
		Count:      nw.state.Count(),
		Degraded:   degraded,
	}
	if degraded {
		resp.BoundSource = fallbackAnalyzer.Name()
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchAdmitRequest is the body of POST /v1/admit/batch: candidates are
// tested and committed in order, each against the set as left by its
// predecessors (greedy semantics, like repeated single admissions).
type BatchAdmitRequest struct {
	Connections []netspec.ConnectionSpec `json:"connections"`
	// DryRun tests every candidate without committing any of them; each
	// candidate is then judged against the current admitted set alone.
	DryRun bool `json:"dry_run,omitempty"`
	// TimeoutSeconds overrides the server's soft analysis budget for each
	// candidate; zero keeps the server default, negative is rejected.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// BatchAdmitItem is one per-candidate outcome inside a batch response.
type BatchAdmitItem struct {
	Connection string          `json:"connection"`
	Admitted   bool            `json:"admitted"`
	Code       string          `json:"code,omitempty"`
	Reason     string          `json:"reason,omitempty"`
	Violations []ViolationSpec `json:"violations,omitempty"`
	// MaxBound is the largest per-connection bound of the item's trial
	// analysis; null when unbounded or when the candidate never analyzed.
	MaxBound Bound `json:"max_bound"`
	// Degraded marks a decision made against the decomposed fallback
	// bound after the candidate's analysis exceeded its soft budget.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchAdmitResponse reports the whole batch: per-candidate outcomes in
// request order plus the totals.
type BatchAdmitResponse struct {
	DryRun   bool             `json:"dry_run,omitempty"`
	Admitted int              `json:"admitted"`
	Rejected int              `json:"rejected"`
	Results  []BatchAdmitItem `json:"results"`
	Count    int              `json:"count"`
}

func (s *Server) handleAdmitBatch(nw *Network, w http.ResponseWriter, r *http.Request) {
	var req BatchAdmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Connections) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "batch has no connections")
		return
	}
	index, err := netspec.ServerIndex(nw.state.Servers())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	// Resolve every spec up front so a typo in candidate 7 fails the batch
	// before candidate 0 is committed.
	cands := make([]topo.Connection, len(req.Connections))
	for i := range req.Connections {
		cand, err := netspec.ConnectionFromSpec(&req.Connections[i], index)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("connection %d: %v", i, err))
			return
		}
		cands[i] = cand
	}
	if req.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "timeout_seconds must be non-negative")
		return
	}
	ctx := r.Context()
	if ctx.Err() != nil {
		s.shed(nw, w, "request deadline exceeded")
		return
	}
	if !s.acquireSlot(ctx, nw) {
		s.shed(nw, w, "no analysis slot free before the request deadline")
		return
	}
	defer s.releaseSlot()
	resp := BatchAdmitResponse{DryRun: req.DryRun, Results: make([]BatchAdmitItem, 0, len(cands))}
	for _, cand := range cands {
		d, degraded, err := s.runAdmission(ctx, nw, epAdmitBatch, req.DryRun, cand, req.TimeoutSeconds)
		if err != nil && admission.IsCanceled(err) {
			// The hard deadline passed mid-batch; nothing has been written
			// yet, so the whole request sheds (committed prefixes stay).
			s.shed(nw, w, fmt.Sprintf("batch deadline exceeded at connection %q", cand.Name))
			return
		}
		item := BatchAdmitItem{
			Connection: cand.Name,
			Admitted:   d.Admitted,
			Code:       d.Code,
			Reason:     d.Reason,
			Violations: toViolations(d.Violations),
			MaxBound:   Bound(d.MaxBound()),
			Degraded:   degraded,
		}
		if err != nil {
			// A per-candidate spec error (e.g. no deadline) rejects that
			// candidate only; the rest of the batch proceeds.
			item.Reason = err.Error()
			if item.Code == "" {
				item.Code = CodeInvalidSpec
			}
		}
		if item.Admitted {
			resp.Admitted++
		} else {
			resp.Rejected++
		}
		resp.Results = append(resp.Results, item)
	}
	resp.Count = nw.state.Count()
	writeJSON(w, http.StatusOK, resp)
}

// BatchOp is one operation inside POST /v2/networks/{netid}/batch: an
// admission (op "admit", with the candidate spec) or a release (op
// "release", with the admitted connection's name).
type BatchOp struct {
	Op         string                  `json:"op"`
	Connection *netspec.ConnectionSpec `json:"connection,omitempty"`
	Name       string                  `json:"name,omitempty"`
}

// BatchRequest is the body of POST /v2/networks/{netid}/batch: a mixed,
// ordered list of admit and release operations, executed in order against
// the live set (greedy semantics — each operation sees the set as left by
// its predecessors).
type BatchRequest struct {
	Operations []BatchOp `json:"operations"`
	// DryRun tests admit operations without committing them; release
	// operations are invalid in a dry-run batch (there is nothing sound to
	// report without actually removing the connection).
	DryRun bool `json:"dry_run,omitempty"`
	// TimeoutSeconds overrides the server's soft analysis budget for each
	// admit operation; zero keeps the server default, negative is rejected.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// Batch item statuses: every per-op envelope carries exactly one.
const (
	BatchStatusAdmitted = "admitted" // admit op: candidate committed (or passed dry-run)
	BatchStatusRejected = "rejected" // admit op: candidate failed the admission test
	BatchStatusReleased = "released" // release op: connection removed
	BatchStatusError    = "error"    // op failed outright; see the error detail
)

// BatchOpResult is the per-operation envelope of a batch response: the
// operation's index and kind, its status, and either the admission
// decision (admit ops) or the release mode (release ops) or an error
// detail.
type BatchOpResult struct {
	Index    int             `json:"index"`
	Op       string          `json:"op"`
	Status   string          `json:"status"`
	Decision *BatchAdmitItem `json:"decision,omitempty"`
	// Mode reports how a release was absorbed: "incremental" (baseline
	// shrunk in place) or "compacted" (baseline dropped, rebuilt lazily).
	Mode  string       `json:"mode,omitempty"`
	Error *ErrorDetail `json:"error,omitempty"`
}

// BatchResponse reports a whole mixed batch: per-operation envelopes in
// request order plus the totals.
type BatchResponse struct {
	DryRun   bool            `json:"dry_run,omitempty"`
	Admitted int             `json:"admitted"`
	Rejected int             `json:"rejected"`
	Released int             `json:"released"`
	Errors   int             `json:"errors"`
	Results  []BatchOpResult `json:"results"`
	Count    int             `json:"count"`
}

func (s *Server) handleBatch(nw *Network, w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Operations) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "batch has no operations")
		return
	}
	if req.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "timeout_seconds must be non-negative")
		return
	}
	index, err := netspec.ServerIndex(nw.state.Servers())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	// Validate the whole batch up front so a malformed operation 7 fails
	// the request before operation 0 commits anything.
	cands := make([]topo.Connection, len(req.Operations))
	for i, op := range req.Operations {
		switch op.Op {
		case "admit":
			if op.Connection == nil {
				writeError(w, http.StatusBadRequest, CodeInvalidSpec,
					fmt.Sprintf("operation %d: admit requires a connection", i))
				return
			}
			cand, err := netspec.ConnectionFromSpec(op.Connection, index)
			if err != nil {
				writeError(w, http.StatusBadRequest, CodeInvalidSpec,
					fmt.Sprintf("operation %d: %v", i, err))
				return
			}
			cands[i] = cand
		case "release":
			if strings.TrimSpace(op.Name) == "" {
				writeError(w, http.StatusBadRequest, CodeInvalidSpec,
					fmt.Sprintf("operation %d: release requires a name", i))
				return
			}
			if req.DryRun {
				writeError(w, http.StatusBadRequest, CodeInvalidSpec,
					fmt.Sprintf("operation %d: release is not supported in dry-run batches", i))
				return
			}
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidSpec,
				fmt.Sprintf("operation %d: unknown op %q (want admit or release)", i, op.Op))
			return
		}
	}
	ctx := r.Context()
	if ctx.Err() != nil {
		s.shed(nw, w, "request deadline exceeded")
		return
	}
	if !s.acquireSlot(ctx, nw) {
		s.shed(nw, w, "no analysis slot free before the request deadline")
		return
	}
	defer s.releaseSlot()

	// The envelope runs through the engine's pipelined batch path: one
	// snapshot commit per shard touched instead of one per operation, and
	// no interleaving with concurrent traffic mid-envelope. A hard
	// deadline therefore sheds the whole envelope with nothing committed
	// (previously the committed prefix stayed).
	ops := make([]admission.Op, len(req.Operations))
	for i, op := range req.Operations {
		if op.Op == "admit" {
			ops[i] = admission.Op{Kind: admission.OpAdmit, Candidate: cands[i]}
		} else {
			ops[i] = admission.Op{Kind: admission.OpRelease, Name: op.Name}
		}
	}
	results, degraded, err := s.runBatch(ctx, nw, req.DryRun, cands, ops, req.TimeoutSeconds)
	if err != nil {
		if admission.IsCanceled(err) {
			s.shed(nw, w, "batch deadline exceeded")
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}

	resp := BatchResponse{DryRun: req.DryRun, Results: make([]BatchOpResult, 0, len(req.Operations))}
	for i, op := range req.Operations {
		item := BatchOpResult{Index: i, Op: op.Op}
		r := results[i]
		switch op.Op {
		case "admit":
			d := r.Decision
			dec := &BatchAdmitItem{
				Connection: cands[i].Name,
				Admitted:   d.Admitted,
				Code:       d.Code,
				Reason:     d.Reason,
				Violations: toViolations(d.Violations),
				MaxBound:   Bound(d.MaxBound()),
				Degraded:   degraded,
			}
			switch {
			case r.Err != nil:
				item.Status = BatchStatusError
				item.Error = &ErrorDetail{Code: d.Code, Message: r.Err.Error()}
				if item.Error.Code == "" {
					item.Error.Code = CodeInvalidSpec
				}
				resp.Errors++
			case d.Admitted:
				item.Status = BatchStatusAdmitted
				item.Decision = dec
				resp.Admitted++
			default:
				item.Status = BatchStatusRejected
				item.Decision = dec
				resp.Rejected++
			}
		case "release":
			if !r.Released {
				item.Status = BatchStatusError
				item.Error = &ErrorDetail{Code: CodeNotFound,
					Message: fmt.Sprintf("no admitted connection named %q", op.Name)}
				resp.Errors++
				break
			}
			item.Status = BatchStatusReleased
			item.Mode = releaseMode(r.Release)
			resp.Released++
		}
		resp.Results = append(resp.Results, item)
	}
	resp.Count = nw.state.Count()
	writeJSON(w, http.StatusOK, resp)
}

// runBatch executes a whole envelope through the pipelined batch path
// under the serving degradation policy. Dry-run envelopes evaluate every
// candidate against one pinned snapshot (TestBatch); live envelopes apply
// through ApplyBatch. If the soft budget expires while the hard deadline
// is alive, the envelope reruns on the decomposed fallback — sound
// because the canceled run committed nothing (dry runs never commit; a
// single-shard live envelope is atomic). A multi-shard live envelope
// commits per shard atomically, so it skips the soft budget rather than
// risk re-applying a shard that already committed; it runs to the hard
// deadline undegraded.
func (s *Server) runBatch(ctx context.Context, nw *Network, dryRun bool, cands []topo.Connection, ops []admission.Op, override float64) ([]admission.OpResult, bool, error) {
	tctx, tm := analysis.WithTimings(ctx)
	defer s.observeStages(nw, epBatch, tm)
	run := func(runCtx context.Context) ([]admission.OpResult, error) {
		if dryRun {
			return nw.state.TestBatch(runCtx, cands)
		}
		br, err := nw.state.ApplyBatch(runCtx, ops)
		if err != nil {
			return nil, err
		}
		return br.Results, nil
	}
	canDegrade := degradable(nw.state.Engine().Analyzer()) && (dryRun || nw.state.Shards() == 1)
	sctx, cancel, hasSoft := s.softContext(tctx, override)
	if !hasSoft || !canDegrade {
		cancel()
		res, err := run(tctx)
		return res, false, err
	}
	res, err := run(sctx)
	cancel()
	if err == nil || !admission.IsCanceled(err) || ctx.Err() != nil {
		return res, false, err
	}
	nw.metrics.DegradedServed()
	s.log.Warn("batch degraded to decomposed bound",
		"network", nw.id, "dry_run", dryRun, "operations", len(ops))
	if dryRun {
		res, err = nw.state.TestBatchWith(tctx, fallbackAnalyzer, cands)
	} else {
		res, err = s.applyBatchDegraded(tctx, nw, cands, ops)
	}
	if err != nil {
		return res, false, err
	}
	return res, true, nil
}

// applyBatchDegraded replays a live envelope per-op on the fallback
// analyzer: the canceled pipelined run committed nothing, so the replay
// starts clean. Degraded envelopes trade the single-commit invariant for
// meeting the deadline (per-op commits, like the pre-pipelining path).
func (s *Server) applyBatchDegraded(ctx context.Context, nw *Network, cands []topo.Connection, ops []admission.Op) ([]admission.OpResult, error) {
	out := make([]admission.OpResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case admission.OpAdmit:
			d, err := nw.state.AdmitWith(ctx, fallbackAnalyzer, cands[i])
			if err != nil && admission.IsCanceled(err) {
				return nil, err
			}
			out[i] = admission.OpResult{Decision: d, Err: err}
		case admission.OpRelease:
			info, ok := nw.state.Release(op.Name)
			out[i] = admission.OpResult{Released: ok, Release: info}
		}
	}
	return out, nil
}

// releaseMode names how the engine absorbed a release in API responses.
func releaseMode(info admission.ReleaseInfo) string {
	if info.Incremental {
		return "incremental"
	}
	return "compacted"
}

// ListResponse is the body of GET /v2/networks/{netid}/connections. Count
// is the number of connections matching the filter (the whole admitted set
// without one); Connections is the requested page and NextCursor, when
// present, fetches the next page (pass it back as ?cursor=).
type ListResponse struct {
	Count       int                      `json:"count"`
	Utilization []float64                `json:"utilization"`
	Connections []netspec.ConnectionSpec `json:"connections"`
	NextCursor  string                   `json:"next_cursor,omitempty"`
}

// encodeCursor / decodeCursor wrap the page offset in an opaque token so
// clients do not couple to the paging scheme. The token pins the snapshot
// version the listing was cut from: offsets are only meaningful within one
// immutable view, so a commit between pages (a release compacting the set,
// an admission appending to it) invalidates outstanding cursors instead of
// silently skipping or duplicating survivors.
func encodeCursor(offset int, version uint64) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(strconv.Itoa(offset) + "@" + strconv.FormatUint(version, 10)))
}

func decodeCursor(token string) (int, uint64, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed cursor")
	}
	off, ver, found := strings.Cut(string(raw), "@")
	if !found {
		return 0, 0, fmt.Errorf("malformed cursor")
	}
	offset, err := strconv.Atoi(off)
	if err != nil || offset < 0 {
		return 0, 0, fmt.Errorf("malformed cursor")
	}
	version, err := strconv.ParseUint(ver, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed cursor")
	}
	return offset, version, nil
}

func (s *Server) handleList(nw *Network, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0 // 0: no paging (the whole set), preserving the pre-pagination contract
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidSpec, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	offset := 0
	cursorVersion := uint64(0)
	hasCursor := false
	if v := q.Get("cursor"); v != "" {
		off, ver, err := decodeCursor(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
			return
		}
		offset, cursorVersion, hasCursor = off, ver, true
	}

	// Replica read: the listing is assembled lock-free from the latest
	// immutable promoted shard snapshots; the header tells the client which
	// version of the write history it reflects.
	conns, version, util := nw.state.ReadView()
	setSnapshotVersion(w, version)

	// A cursor is an offset into the snapshot it was cut from; any commit
	// since then may have reordered or compacted the set, so continuing to
	// page would skip or duplicate survivors. 410 tells the client to
	// restart the listing.
	if hasCursor && cursorVersion != version {
		writeError(w, http.StatusGone, CodeStaleCursor,
			fmt.Sprintf("cursor was cut from snapshot version %d, current is %d; restart the listing", cursorVersion, version))
		return
	}

	// ?server= narrows the listing to connections whose path crosses the
	// named fabric server.
	if name := q.Get("server"); name != "" {
		serverIdx := -1
		for i, sv := range nw.state.Servers() {
			if sv.Name == name {
				serverIdx = i
				break
			}
		}
		if serverIdx < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("no fabric server named %q", name))
			return
		}
		filtered := conns[:0]
		for _, c := range conns {
			for _, hop := range c.Path {
				if hop == serverIdx {
					filtered = append(filtered, c)
					break
				}
			}
		}
		conns = filtered
	}

	resp := ListResponse{Count: len(conns), Utilization: util}
	page := conns
	if offset > 0 {
		if offset > len(conns) {
			offset = len(conns)
		}
		page = conns[offset:]
	}
	if limit > 0 && len(page) > limit {
		page = page[:limit]
		resp.NextCursor = encodeCursor(offset+limit, version)
	}
	spec := netspec.ToSpec(&topo.Network{Servers: nw.state.Servers(), Connections: page})
	resp.Connections = spec.Connections
	if resp.Connections == nil {
		resp.Connections = []netspec.ConnectionSpec{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// RemoveResponse is the body of DELETE /v2/networks/{netid}/connections/
// {name}. Mode reports how the engine absorbed the release: "incremental"
// (the analysis baseline was shrunk in place, so the next test stays fast)
// or "compacted" (the baseline was dropped and rebuilds lazily).
type RemoveResponse struct {
	Removed string `json:"removed"`
	Count   int    `json:"count"`
	Mode    string `json:"mode"`
}

func (s *Server) handleRemove(nw *Network, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "empty connection name")
		return
	}
	info, ok := nw.state.Release(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no admitted connection named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, RemoveResponse{Removed: name, Count: nw.state.Count(), Mode: releaseMode(info)})
}

// StatsCounter pairs the incremental and full counts of one operation.
type StatsCounter struct {
	Incremental uint64 `json:"incremental"`
	Full        uint64 `json:"full"`
}

// AffectedBucket is one bucket of the affected-set histogram: how many
// incremental analyses had a closure of at most LE admitted connections
// (cumulative, Prometheus-style; LE null is the +Inf bucket).
type AffectedBucket struct {
	LE    Bound  `json:"le"`
	Count uint64 `json:"count"`
}

// ShardStatSpec summarizes one engine shard in the stats body.
type ShardStatSpec struct {
	Shard    int          `json:"shard"`
	Admitted int          `json:"admitted"`
	Version  uint64       `json:"version"`
	Tests    StatsCounter `json:"tests"`
	Releases StatsCounter `json:"releases"`
}

// StatsResponse is the body of GET /v2/networks/{netid}/stats: the
// admission engine's counters as a stable JSON schema. Releases.Full
// counts compacted releases (baseline dropped); AffectedSum/AffectedCount
// give the mean closure size alongside the histogram. The shard fields
// are additive: Shards is the configured shard count,
// CrossShardCommits the number of global epoch-stamped commits (component
// merges plus rebalances), and PerShard the per-shard breakdown.
type StatsResponse struct {
	Analyzer          string           `json:"analyzer"`
	Incremental       bool             `json:"incremental"`
	Admitted          int              `json:"admitted"`
	SnapshotVersion   uint64           `json:"snapshot_version"`
	Shards            int              `json:"shards"`
	CrossShardCommits uint64           `json:"cross_shard_commits"`
	Rebalances        uint64           `json:"rebalances"`
	BaselineEpoch     uint64           `json:"baseline_epoch"`
	Tests             StatsCounter     `json:"tests"`
	Releases          StatsCounter     `json:"releases"`
	CommitConflicts   uint64           `json:"commit_conflicts"`
	BatchEnvelopes    uint64           `json:"batch_envelopes"`
	BatchOps          uint64           `json:"batch_ops"`
	BatchCommits      uint64           `json:"batch_commits"`
	Affected          []AffectedBucket `json:"affected_histogram"`
	AffectedCount     uint64           `json:"affected_count"`
	AffectedSum       uint64           `json:"affected_sum"`
	PerShard          []ShardStatSpec  `json:"per_shard,omitempty"`
}

func (s *Server) handleStats(nw *Network, w http.ResponseWriter, r *http.Request) {
	eng := nw.state.Engine()
	st := eng.Stats()
	conns, version := eng.ReadView()
	setSnapshotVersion(w, version)
	resp := StatsResponse{
		Analyzer:          eng.Analyzer().Name(),
		Incremental:       eng.Incremental(),
		Admitted:          len(conns),
		SnapshotVersion:   version,
		Shards:            st.Shards,
		CrossShardCommits: st.CrossShardCommits,
		Rebalances:        st.Rebalances,
		BaselineEpoch:     st.BaselineEpoch,
		Tests:             StatsCounter{Incremental: st.IncrementalTests, Full: st.FullTests},
		Releases:          StatsCounter{Incremental: st.IncrementalReleases, Full: st.CompactedReleases},
		CommitConflicts:   st.CommitConflicts,
		BatchEnvelopes:    st.BatchEnvelopes,
		BatchOps:          st.BatchOps,
		BatchCommits:      st.BatchCommits,
		AffectedCount:     st.AffectedCount,
		AffectedSum:       st.AffectedSum,
	}
	bounds := admission.AffectedBucketBounds()
	cum := uint64(0)
	for i, ub := range bounds {
		cum += st.AffectedBuckets[i]
		resp.Affected = append(resp.Affected, AffectedBucket{LE: Bound(ub), Count: cum})
	}
	resp.Affected = append(resp.Affected, AffectedBucket{LE: Bound(math.Inf(1)), Count: st.AffectedCount})
	for i, sh := range st.PerShard {
		resp.PerShard = append(resp.PerShard, ShardStatSpec{
			Shard:    i,
			Admitted: sh.Admitted,
			Version:  sh.Version,
			Tests:    StatsCounter{Incremental: sh.IncrementalTests, Full: sh.FullTests},
			Releases: StatsCounter{Incremental: sh.IncrementalReleases, Full: sh.CompactedReleases},
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// NetworkInfo is one entry of the GET /v2/networks listing.
type NetworkInfo struct {
	ID              string `json:"id"`
	Default         bool   `json:"default"`
	Admitted        int    `json:"admitted"`
	Shards          int    `json:"shards"`
	SnapshotVersion uint64 `json:"snapshot_version"`
}

// NetworksResponse is the body of GET /v2/networks.
type NetworksResponse struct {
	Networks []NetworkInfo `json:"networks"`
}

func (s *Server) handleNetworks(_ *Network, w http.ResponseWriter, r *http.Request) {
	defID := s.reg.DefaultID()
	resp := NetworksResponse{Networks: []NetworkInfo{}}
	for _, id := range s.reg.IDs() {
		nw, ok := s.reg.Get(id)
		if !ok {
			continue
		}
		conns, version := nw.state.Engine().ReadView()
		resp.Networks = append(resp.Networks, NetworkInfo{
			ID:              id,
			Default:         id == defID,
			Admitted:        len(conns),
			Shards:          nw.state.Shards(),
			SnapshotVersion: version,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// AnalyzeRequest is the body of POST /v2/networks/{netid}/analyze.
type AnalyzeRequest struct {
	// Analyzer names the algorithm ("integrated" when empty); see
	// AnalyzerNames for the accepted set.
	Analyzer string `json:"analyzer,omitempty"`
	// Network is the full netspec document to analyze.
	Network netspec.Spec `json:"network"`
	// TimeoutSeconds overrides the server's soft analysis budget for this
	// request; zero keeps the server default, negative is rejected.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// AnalyzeResponse reports per-connection delay bounds and per-server
// backlog bounds. Null entries mark unbounded (unstable) connections.
type AnalyzeResponse struct {
	Algorithm string  `json:"algorithm"`
	Digest    string  `json:"digest"`
	Cached    bool    `json:"cached"`
	Bounds    []Bound `json:"bounds"`
	Backlogs  []Bound `json:"backlogs,omitempty"`
	MaxBound  Bound   `json:"max_bound"`
	// Degraded marks bounds produced by the decomposed fallback after the
	// requested analyzer exceeded its soft budget; BoundSource names the
	// analysis that produced them.
	Degraded    bool   `json:"degraded,omitempty"`
	BoundSource string `json:"bound_source,omitempty"`
}

func (s *Server) handleAnalyze(nw *Network, w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	name := req.Analyzer
	if name == "" {
		name = "integrated"
	}
	if req.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "timeout_seconds must be non-negative")
		return
	}
	analyzer, err := s.pick(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeUnknownAnalyzer, err.Error())
		return
	}
	net, err := netspec.FromSpec(&req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	digest, err := netspec.Digest(net)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	key := analyzer.Name() + ":" + digest
	if res, ok := nw.cache.Get(key); ok {
		writeAnalyzeResponse(w, res, digest, true, false)
		return
	}
	ctx := r.Context()
	if ctx.Err() != nil {
		s.shed(nw, w, "request deadline exceeded")
		return
	}
	if !s.acquireSlot(ctx, nw) {
		s.shed(nw, w, "no analysis slot free before the request deadline")
		return
	}
	defer s.releaseSlot()
	// The analysis runs on the handler goroutine under the request's hard
	// deadline: a shed request cancels its analysis cooperatively instead
	// of abandoning a goroutine to finish unobserved.
	res, degradedRes, err := s.runAnalysis(ctx, nw, epAnalyze, analyzer, net, req.TimeoutSeconds)
	if err != nil {
		if admission.IsCanceled(err) {
			s.shed(nw, w, "analysis did not finish before the request deadline")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, CodeInvalidSpec, err.Error())
		return
	}
	if degradedRes {
		// A degraded result is a valid decomposed analysis: cache it under
		// the fallback's own key, never under the requested analyzer's.
		nw.cache.Put(fallbackAnalyzer.Name()+":"+digest, res)
	} else {
		nw.cache.Put(key, res)
	}
	writeAnalyzeResponse(w, res, digest, false, degradedRes)
}

func writeAnalyzeResponse(w http.ResponseWriter, res *analysis.Result, digest string, cached, degraded bool) {
	resp := AnalyzeResponse{
		Algorithm: res.Algorithm,
		Digest:    digest,
		Cached:    cached,
		Bounds:    toBounds(res.Bounds),
		Backlogs:  toBounds(res.Backlogs),
		MaxBound:  Bound(res.MaxBound()),
		Degraded:  degraded,
	}
	if degraded {
		resp.BoundSource = res.Algorithm
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(nw *Network, w http.ResponseWriter, r *http.Request) {
	setSnapshotVersion(w, nw.state.SnapshotVersion())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	nw.metrics.WriteText(w)
	writeCacheMetrics(w, nw.cache)
	writeAdmissionMetrics(w, nw.state)
	writeEngineMetrics(w, nw.state)
}

func (s *Server) handleHealthz(_ *Network, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
