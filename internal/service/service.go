package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"time"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/netspec"
	"delaycalc/internal/topo"
)

// Defaults applied by NewServer when the corresponding Config field is zero.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB
	DefaultCacheSize      = 256
)

// Config parameterizes a Server.
type Config struct {
	// State holds the live admission fabric. Required.
	State *State
	// Cache holds analyze results; NewCache(DefaultCacheSize) when nil.
	Cache *Cache
	// Logger receives structured request logs; a no-op logger when nil.
	Logger *slog.Logger
	// RequestTimeout bounds each request's context.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request body sizes; oversized bodies get 413.
	MaxBodyBytes int64
}

// Server is the delayd HTTP API: admission control over a live fabric plus
// stateless analysis with caching, instrumented with Metrics.
type Server struct {
	state   *State
	cache   *Cache
	log     *slog.Logger
	metrics *Metrics
	timeout time.Duration
	maxBody int64
	mux     *http.ServeMux
}

// NewServer assembles the API around an admission state.
func NewServer(cfg Config) (*Server, error) {
	if cfg.State == nil {
		return nil, fmt.Errorf("service: Config.State is required")
	}
	s := &Server{
		state:   cfg.State,
		cache:   cfg.Cache,
		log:     cfg.Logger,
		metrics: NewMetrics(),
		timeout: cfg.RequestTimeout,
		maxBody: cfg.MaxBodyBytes,
	}
	if s.cache == nil {
		s.cache = NewCache(DefaultCacheSize)
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.timeout <= 0 {
		s.timeout = DefaultRequestTimeout
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/connections", s.instrument("POST /v1/connections", s.handleAdmit))
	s.mux.HandleFunc("GET /v1/connections", s.instrument("GET /v1/connections", s.handleList))
	s.mux.HandleFunc("DELETE /v1/connections/{name}", s.instrument("DELETE /v1/connections/{name}", s.handleRemove))
	s.mux.HandleFunc("POST /v1/analyze", s.instrument("POST /v1/analyze", s.handleAnalyze))
	s.mux.HandleFunc("GET /metrics", s.instrument("GET /metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("GET /healthz", s.handleHealthz))
	return s, nil
}

// ServeHTTP dispatches to the instrumented mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the accumulator (used by tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the analyze cache (used by tests and benchmarks).
func (s *Server) Cache() *Cache { return s.cache }

// State exposes the admission state.
func (s *Server) State() *State { return s.state }

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request-scoped plumbing shared by
// every endpoint: body size limiting, a context deadline, in-flight and
// latency metrics under a stable endpoint label, panic recovery, and a
// structured access log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.RequestStarted()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.maxBody)
		}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic", "endpoint", endpoint, "panic", p)
				if rec.status == http.StatusOK {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			elapsed := time.Since(start)
			s.metrics.RequestFinished(endpoint, rec.status, elapsed.Seconds())
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}()
		h(rec, r)
	}
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// decodeBody decodes a JSON request body strictly, mapping the failure
// modes to the right status: 413 for an oversized body, 400 otherwise.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	// Reject trailing garbage after the document.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, "invalid JSON: trailing data after document")
		return false
	}
	return true
}

// Bound marshals a delay bound, rendering the unbounded (+Inf) and
// undefined (NaN) cases as JSON null, which plain JSON numbers cannot
// represent.
type Bound float64

// MarshalJSON implements json.Marshaler.
func (b Bound) MarshalJSON() ([]byte, error) {
	f := float64(b)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

func toBounds(fs []float64) []Bound {
	out := make([]Bound, len(fs))
	for i, f := range fs {
		out[i] = Bound(f)
	}
	return out
}

// AdmitRequest is the body of POST /v1/connections.
type AdmitRequest struct {
	Connection netspec.ConnectionSpec `json:"connection"`
	// DryRun runs the admission test without committing the connection.
	DryRun bool `json:"dry_run,omitempty"`
}

// AdmitResponse reports an admission decision.
type AdmitResponse struct {
	Admitted bool    `json:"admitted"`
	DryRun   bool    `json:"dry_run,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	Bounds   []Bound `json:"bounds,omitempty"`
	Count    int     `json:"count"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	index, err := netspec.ServerIndex(s.state.Servers())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cand, err := netspec.ConnectionFromSpec(&req.Connection, index)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
		return
	}
	// The admission test itself runs synchronously under the state lock:
	// it cannot be cancelled midway, and completing it keeps the admitted
	// set deterministic — a timed-out client never leaves the fabric in an
	// unknown state.
	var d admission.Decision
	if req.DryRun {
		d, err = s.state.Test(cand)
	} else {
		d, err = s.state.Admit(cand)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, AdmitResponse{
		Admitted: d.Admitted,
		DryRun:   req.DryRun,
		Reason:   d.Reason,
		Bounds:   toBounds(d.Bounds),
		Count:    s.state.Count(),
	})
}

// ListResponse is the body of GET /v1/connections.
type ListResponse struct {
	Count       int                      `json:"count"`
	Utilization []float64                `json:"utilization"`
	Connections []netspec.ConnectionSpec `json:"connections"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	conns, util, count := s.state.Snapshot()
	spec := netspec.ToSpec(&topo.Network{Servers: s.state.Servers(), Connections: conns})
	if spec.Connections == nil {
		spec.Connections = []netspec.ConnectionSpec{}
	}
	writeJSON(w, http.StatusOK, ListResponse{
		Count:       count,
		Utilization: util,
		Connections: spec.Connections,
	})
}

// RemoveResponse is the body of DELETE /v1/connections/{name}.
type RemoveResponse struct {
	Removed string `json:"removed"`
	Count   int    `json:"count"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		writeError(w, http.StatusBadRequest, "empty connection name")
		return
	}
	if !s.state.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no admitted connection named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, RemoveResponse{Removed: name, Count: s.state.Count()})
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Analyzer names the algorithm ("integrated" when empty); see
	// AnalyzerNames for the accepted set.
	Analyzer string `json:"analyzer,omitempty"`
	// Network is the full netspec document to analyze.
	Network netspec.Spec `json:"network"`
}

// AnalyzeResponse reports per-connection delay bounds and per-server
// backlog bounds. Null entries mark unbounded (unstable) connections.
type AnalyzeResponse struct {
	Algorithm string  `json:"algorithm"`
	Digest    string  `json:"digest"`
	Cached    bool    `json:"cached"`
	Bounds    []Bound `json:"bounds"`
	Backlogs  []Bound `json:"backlogs,omitempty"`
	MaxBound  Bound   `json:"max_bound"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	name := req.Analyzer
	if name == "" {
		name = "integrated"
	}
	analyzer, err := PickAnalyzer(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	net, err := netspec.FromSpec(&req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	digest, err := netspec.Digest(net)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	key := analyzer.Name() + ":" + digest
	if res, ok := s.cache.Get(key); ok {
		writeAnalyzeResponse(w, res, digest, true)
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
		return
	}
	// The analysis itself is stateless and may be slow on large networks,
	// so run it off the handler goroutine and race it against the request
	// deadline. A result that loses the race is still cached for the
	// client's retry.
	type outcome struct {
		res *analysis.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := analyzer.Analyze(net)
		if err == nil {
			s.cache.Put(key, res)
		}
		done <- outcome{res, err}
	}()
	select {
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "analysis did not finish before the request deadline")
	case out := <-done:
		if out.err != nil {
			writeError(w, http.StatusUnprocessableEntity, out.err.Error())
			return
		}
		writeAnalyzeResponse(w, out.res, digest, false)
	}
}

func writeAnalyzeResponse(w http.ResponseWriter, res *analysis.Result, digest string, cached bool) {
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Algorithm: res.Algorithm,
		Digest:    digest,
		Cached:    cached,
		Bounds:    toBounds(res.Bounds),
		Backlogs:  toBounds(res.Backlogs),
		MaxBound:  Bound(res.MaxBound()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w)
	writeCacheMetrics(w, s.cache)
	writeAdmissionMetrics(w, s.state)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
