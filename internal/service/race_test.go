package service

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"delaycalc/internal/analysis"
)

// TestCachePutNilRejected is the regression test for the poisoned-key bug:
// caching a nil result would serve it as a hit forever, so Put must drop
// nil instead of storing it.
func TestCachePutNilRejected(t *testing.T) {
	c := NewCache(4)
	c.Put("k", nil)
	if c.Len() != 0 {
		t.Fatalf("nil put stored an entry: len=%d", c.Len())
	}
	if res, ok := c.Get("k"); ok {
		t.Fatalf("nil put served as a hit: %v", res)
	}
	// A real result under the same key still works.
	want := &analysis.Result{Algorithm: "x"}
	c.Put("k", want)
	if res, ok := c.Get("k"); !ok || res != want {
		t.Fatalf("real put after nil put: ok=%v res=%v", ok, res)
	}
}

// TestMetricsParallel hammers every Metrics entry point from parallel
// goroutines while WriteText renders concurrently; meaningful under -race.
func TestMetricsParallel(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ep := fmt.Sprintf("POST /v1/ep%d", g%3)
			for i := 0; i < 200; i++ {
				m.RequestStarted()
				m.QueueEntered()
				m.ObserveStage("theta", 0.001*float64(i%7))
				m.ObserveStage("partition", 0.0001)
				if i%5 == 0 {
					m.DegradedServed()
				}
				if i%7 == 0 {
					m.RequestShed()
				}
				m.QueueLeft()
				m.RequestFinished(ep, 200+(i%2)*303, 0.01)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.WriteText(io.Discard)
				_ = m.InFlight()
				_ = m.QueueDepth()
				_ = m.Degraded()
				_ = m.Shed()
			}
		}()
	}
	wg.Wait()
	if got := m.InFlight(); got != 0 {
		t.Fatalf("in-flight gauge %d after balanced start/finish", got)
	}
	if got := m.QueueDepth(); got != 0 {
		t.Fatalf("queue depth %d after balanced enter/leave", got)
	}
}

// TestCacheParallelEviction drives Put/Get from parallel goroutines
// against a capacity far below the key universe, so evictions race with
// lookups and reinsertions; meaningful under -race.
func TestCacheParallelEviction(t *testing.T) {
	c := NewCache(8)
	results := make([]*analysis.Result, 64)
	for i := range results {
		results[i] = &analysis.Result{Algorithm: fmt.Sprintf("a%d", i)}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key%d", (g*31+i)%len(results))
				if i%3 == 0 {
					c.Put(k, results[(g+i)%len(results)])
				} else if res, ok := c.Get(k); ok && res == nil {
					t.Error("Get returned ok with nil result")
					return
				}
				if i%97 == 0 {
					c.Put(k, nil) // must stay a no-op under pressure too
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache over capacity after parallel churn: %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
