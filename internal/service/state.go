// Package service is the serving layer of the repository: a goroutine-safe
// admission-control state, an LRU cache for analysis results, request
// metrics, a multi-tenant network registry, and the HTTP/JSON handlers
// that delayd (cmd/delayd) mounts. The command-line tools reuse the same
// State so that CLI and daemon drive one admission implementation.
package service

import (
	"context"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// State is the live admission fabric shared by concurrent HTTP handlers
// and the CLIs. It is a thin veneer over admission.ShardedEngine: the
// fabric is partitioned into independent server-sharing components, one
// engine shard per component group, so disjoint workloads commit without
// contending; every test analyzes an immutable snapshot OUTSIDE any lock
// and Admit commits with a version check (retrying on conflict). With one
// shard (NewState) the behavior is exactly the single admission.Engine.
// All accessors return copies.
type State struct {
	eng     *admission.ShardedEngine
	servers []server.Server // immutable after construction
}

// NewState builds a single-shard admission state over the given fabric —
// the exact pre-sharding engine behavior.
func NewState(servers []server.Server, analyzer analysis.Analyzer) (*State, error) {
	return NewStateShards(servers, analyzer, 1)
}

// NewStateShards builds an admission state whose engine is partitioned
// into the given number of shards. Connections whose components stay
// disjoint commit on independent shards; admissions that span shards fall
// back to a global epoch-stamped commit.
func NewStateShards(servers []server.Server, analyzer analysis.Analyzer, shards int) (*State, error) {
	eng, err := admission.NewShardedEngine(servers, analyzer, shards)
	if err != nil {
		return nil, err
	}
	cp := make([]server.Server, len(servers))
	copy(cp, servers)
	return &State{eng: eng, servers: cp}, nil
}

// Engine exposes the underlying sharded admission engine (used by metrics
// and tests).
func (s *State) Engine() *admission.ShardedEngine { return s.eng }

// Shards returns the engine's shard count.
func (s *State) Shards() int { return s.eng.Shards() }

// ForceFull disables the incremental analysis path; every admission test
// re-analyzes the whole trial network. Intended for startup configuration
// (delayd -incremental=false).
func (s *State) ForceFull() { s.eng.ForceFull() }

// Servers returns a copy of the fabric the state admits against.
func (s *State) Servers() []server.Server {
	cp := make([]server.Server, len(s.servers))
	copy(cp, s.servers)
	return cp
}

// Test runs the admission test without committing the candidate.
func (s *State) Test(cand topo.Connection) (admission.Decision, error) {
	return s.eng.Test(cand)
}

// TestContext is Test with cooperative cancellation: the analysis observes
// the context and the call returns its error (check admission.IsCanceled)
// once it is done.
func (s *State) TestContext(ctx context.Context, cand topo.Connection) (admission.Decision, error) {
	return s.eng.TestContext(ctx, cand)
}

// TestWith runs a full admission test with an explicit analyzer — the
// degraded path: a timed-out integrated test retried with the always-valid
// decomposed analyzer.
func (s *State) TestWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (admission.Decision, error) {
	return s.eng.TestWith(ctx, analyzer, cand)
}

// Admit runs the admission test and commits the candidate on success.
func (s *State) Admit(cand topo.Connection) (admission.Decision, error) {
	return s.eng.Admit(cand)
}

// AdmitContext is Admit with cooperative cancellation; a cancelled call
// commits nothing.
func (s *State) AdmitContext(ctx context.Context, cand topo.Connection) (admission.Decision, error) {
	return s.eng.AdmitContext(ctx, cand)
}

// AdmitWith is Admit on the degraded path: the test runs with the given
// analyzer and a positive decision commits without a promoted baseline.
func (s *State) AdmitWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (admission.Decision, error) {
	return s.eng.AdmitWith(ctx, analyzer, cand)
}

// ApplyBatch evaluates a whole mixed admit/release envelope through the
// engine's pipelined batch path: every operation sees the set as left by
// its predecessors, decisions are bit-identical to per-op calls, and the
// envelope commits one snapshot per shard touched instead of one per op.
// A canceled call (admission.IsCanceled) commits nothing on any shard it
// had not finished.
func (s *State) ApplyBatch(ctx context.Context, ops []admission.Op) (*admission.BatchResult, error) {
	return s.eng.ApplyBatch(ctx, ops)
}

// TestBatch evaluates a dry-run envelope of candidates against one pinned
// snapshot per shard: the report is internally consistent even while
// concurrent admissions commit, and each candidate is judged against the
// current admitted set alone. Nothing is committed.
func (s *State) TestBatch(ctx context.Context, cands []topo.Connection) ([]admission.OpResult, error) {
	return s.eng.TestBatch(ctx, cands)
}

// TestBatchWith is TestBatch on the degraded path: every candidate runs a
// full analysis with the explicit analyzer against the same pinned
// snapshots.
func (s *State) TestBatchWith(ctx context.Context, analyzer analysis.Analyzer, cands []topo.Connection) ([]admission.OpResult, error) {
	return s.eng.TestBatchWith(ctx, analyzer, cands)
}

// Remove releases a previously admitted connection by name.
func (s *State) Remove(name string) bool { return s.eng.Remove(name) }

// Release removes a previously admitted connection by name and reports how
// the engine absorbed it: incrementally (the analysis baseline was shrunk
// in place) or by compaction (the baseline was dropped and will rebuild).
func (s *State) Release(name string) (admission.ReleaseInfo, bool) {
	return s.eng.Release(name)
}

// WarmBaseline synchronously materializes every shard's analysis baseline
// so the next admission test runs incrementally at full speed.
func (s *State) WarmBaseline() error { return s.eng.WarmBaseline() }

// Admitted returns a copy of the currently admitted connections.
func (s *State) Admitted() []topo.Connection { return s.eng.Admitted() }

// Count returns the number of admitted connections.
func (s *State) Count() int { return s.eng.Count() }

// Utilization returns the per-server utilization of the admitted set.
func (s *State) Utilization() []float64 { return s.eng.Utilization() }

// Snapshot returns the admitted set, per-server utilization, and count in
// one consistent view assembled from the latest immutable promoted shard
// snapshots — the lock-free read-replica path GET endpoints serve from.
func (s *State) Snapshot() (conns []topo.Connection, util []float64, count int) {
	conns, _, util = s.readView()
	return conns, util, len(conns)
}

// SnapshotVersion returns the replica-read snapshot version: the sum of
// every shard's snapshot version, monotone under every commit. GET
// responses expose it as X-Snapshot-Version so clients can correlate a
// read with the write history it reflects.
func (s *State) SnapshotVersion() uint64 { return s.eng.SnapshotVersion() }

// ReadView returns the admitted set, utilization, and the snapshot
// version in one replica read.
func (s *State) ReadView() (conns []topo.Connection, version uint64, util []float64) {
	return s.readView()
}

func (s *State) readView() ([]topo.Connection, uint64, []float64) {
	conns, version := s.eng.ReadView()
	net := &topo.Network{Servers: s.servers, Connections: conns}
	return conns, version, net.Utilization()
}

// FillGreedy admits numbered copies of the template until the first
// rejection. It is the measurement loop used by cmd/admit to compare
// admission capacity across analyzers.
func (s *State) FillGreedy(template topo.Connection, limit int) (int, error) {
	return s.eng.FillGreedy(template, limit)
}

// FillGreedyContext is FillGreedy with cooperative cancellation between
// and inside admissions.
func (s *State) FillGreedyContext(ctx context.Context, template topo.Connection, limit int) (int, error) {
	return s.eng.FillGreedyContext(ctx, template, limit)
}
