// Package service is the serving layer of the repository: a goroutine-safe
// admission-control state, an LRU cache for analysis results, request
// metrics, and the HTTP/JSON handlers that delayd (cmd/delayd) mounts.
// The command-line tools reuse the same State so that CLI and daemon
// drive one admission implementation.
package service

import (
	"context"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// State is the live admission fabric shared by concurrent HTTP handlers
// and the CLIs. It is a thin veneer over admission.Engine: every test
// analyzes an immutable snapshot OUTSIDE any lock and Admit commits with a
// version check (retrying on conflict), so slow analyses never serialize
// readers, and on incremental analyzers each test re-analyzes only the
// candidate's interference closure. All accessors return copies.
type State struct {
	eng     *admission.Engine
	servers []server.Server // immutable after construction
}

// NewState builds an admission state over the given fabric.
func NewState(servers []server.Server, analyzer analysis.Analyzer) (*State, error) {
	eng, err := admission.NewEngine(servers, analyzer)
	if err != nil {
		return nil, err
	}
	cp := make([]server.Server, len(servers))
	copy(cp, servers)
	return &State{eng: eng, servers: cp}, nil
}

// Engine exposes the underlying admission engine (used by metrics and
// tests).
func (s *State) Engine() *admission.Engine { return s.eng }

// ForceFull disables the incremental analysis path; every admission test
// re-analyzes the whole trial network. Intended for startup configuration
// (delayd -incremental=false).
func (s *State) ForceFull() { s.eng.ForceFull() }

// Servers returns a copy of the fabric the state admits against.
func (s *State) Servers() []server.Server {
	cp := make([]server.Server, len(s.servers))
	copy(cp, s.servers)
	return cp
}

// Test runs the admission test without committing the candidate.
func (s *State) Test(cand topo.Connection) (admission.Decision, error) {
	return s.eng.Test(cand)
}

// TestContext is Test with cooperative cancellation: the analysis observes
// the context and the call returns its error (check admission.IsCanceled)
// once it is done.
func (s *State) TestContext(ctx context.Context, cand topo.Connection) (admission.Decision, error) {
	return s.eng.TestContext(ctx, cand)
}

// TestWith runs a full admission test with an explicit analyzer — the
// degraded path: a timed-out integrated test retried with the always-valid
// decomposed analyzer.
func (s *State) TestWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (admission.Decision, error) {
	return s.eng.TestWith(ctx, analyzer, cand)
}

// Admit runs the admission test and commits the candidate on success.
func (s *State) Admit(cand topo.Connection) (admission.Decision, error) {
	return s.eng.Admit(cand)
}

// AdmitContext is Admit with cooperative cancellation; a cancelled call
// commits nothing.
func (s *State) AdmitContext(ctx context.Context, cand topo.Connection) (admission.Decision, error) {
	return s.eng.AdmitContext(ctx, cand)
}

// AdmitWith is Admit on the degraded path: the test runs with the given
// analyzer and a positive decision commits without a promoted baseline.
func (s *State) AdmitWith(ctx context.Context, analyzer analysis.Analyzer, cand topo.Connection) (admission.Decision, error) {
	return s.eng.AdmitWith(ctx, analyzer, cand)
}

// Remove releases a previously admitted connection by name.
func (s *State) Remove(name string) bool { return s.eng.Remove(name) }

// Release removes a previously admitted connection by name and reports how
// the engine absorbed it: incrementally (the analysis baseline was shrunk
// in place) or by compaction (the baseline was dropped and will rebuild).
func (s *State) Release(name string) (admission.ReleaseInfo, bool) {
	return s.eng.Release(name)
}

// WarmBaseline synchronously materializes the current snapshot's analysis
// baseline so the next admission test runs incrementally at full speed.
func (s *State) WarmBaseline() error { return s.eng.WarmBaseline() }

// Admitted returns a copy of the currently admitted connections.
func (s *State) Admitted() []topo.Connection { return s.eng.Admitted() }

// Count returns the number of admitted connections.
func (s *State) Count() int { return s.eng.Count() }

// Utilization returns the per-server utilization of the admitted set.
func (s *State) Utilization() []float64 { return s.eng.Utilization() }

// Snapshot returns the admitted set, per-server utilization, and count in
// one consistent view (a single engine snapshot).
func (s *State) Snapshot() (conns []topo.Connection, util []float64, count int) {
	snap := s.eng.Snapshot()
	return snap.Admitted(), snap.Utilization(), snap.Count()
}

// FillGreedy admits numbered copies of the template until the first
// rejection. It is the measurement loop used by cmd/admit to compare
// admission capacity across analyzers.
func (s *State) FillGreedy(template topo.Connection, limit int) (int, error) {
	return s.eng.FillGreedy(template, limit)
}

// FillGreedyContext is FillGreedy with cooperative cancellation between
// and inside admissions.
func (s *State) FillGreedyContext(ctx context.Context, template topo.Connection, limit int) (int, error) {
	return s.eng.FillGreedyContext(ctx, template, limit)
}
