// Package service is the serving layer of the repository: a goroutine-safe
// admission-control state, an LRU cache for analysis results, request
// metrics, and the HTTP/JSON handlers that delayd (cmd/delayd) mounts.
// The command-line tools reuse the same State so that CLI and daemon
// drive one admission implementation.
package service

import (
	"sync"

	"delaycalc/internal/admission"
	"delaycalc/internal/analysis"
	"delaycalc/internal/server"
	"delaycalc/internal/topo"
)

// State wraps admission.Controller (which is not goroutine-safe) behind a
// mutex so that concurrent HTTP handlers can test, admit, and release
// connections safely. All accessors return copies; no internal slice
// escapes the lock.
type State struct {
	mu      sync.Mutex
	ctrl    *admission.Controller
	servers []server.Server // immutable after construction
}

// NewState builds a locked admission state over the given fabric.
func NewState(servers []server.Server, analyzer analysis.Analyzer) (*State, error) {
	ctrl, err := admission.New(servers, analyzer)
	if err != nil {
		return nil, err
	}
	cp := make([]server.Server, len(servers))
	copy(cp, servers)
	return &State{ctrl: ctrl, servers: cp}, nil
}

// Servers returns a copy of the fabric the state admits against.
func (s *State) Servers() []server.Server {
	cp := make([]server.Server, len(s.servers))
	copy(cp, s.servers)
	return cp
}

// Test runs the admission test without committing the candidate.
func (s *State) Test(cand topo.Connection) (admission.Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Test(cand)
}

// Admit runs the admission test and commits the candidate on success.
func (s *State) Admit(cand topo.Connection) (admission.Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Admit(cand)
}

// Remove releases a previously admitted connection by name.
func (s *State) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Remove(name)
}

// Admitted returns a copy of the currently admitted connections.
func (s *State) Admitted() []topo.Connection {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Admitted()
}

// Count returns the number of admitted connections.
func (s *State) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Count()
}

// Utilization returns the per-server utilization of the admitted set.
func (s *State) Utilization() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Utilization()
}

// Snapshot returns the admitted set, per-server utilization, and count in
// one consistent view (a single lock acquisition).
func (s *State) Snapshot() (conns []topo.Connection, util []float64, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Admitted(), s.ctrl.Utilization(), s.ctrl.Count()
}

// FillGreedy admits numbered copies of the template until the first
// rejection, holding the lock across the whole fill so that the count is
// exact even with concurrent callers. It is the measurement loop used by
// cmd/admit to compare admission capacity across analyzers.
func (s *State) FillGreedy(template topo.Connection, limit int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.FillGreedy(template, limit)
}
