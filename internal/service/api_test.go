package service

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestV1AliasesAndLegacyDeprecation drives every /v1 and legacy spelling
// through the full handler stack: each must behave exactly like its
// network-scoped /v2 route against the default network and carry the
// Deprecation header with a successor-version link, while /v2 canonical
// routes stay header-free.
func TestV1AliasesAndLegacyDeprecation(t *testing.T) {
	srv := newTestServer(t, nil)

	// POST /admit and POST /v1/admit are spellings of the v2 admit route.
	w := do(t, srv, "POST", "/v1/admit", admitBody)
	if w.Code != http.StatusOK || !decode[AdmitResponse](t, w).Admitted {
		t.Fatalf("/v1/admit: %d %s", w.Code, w.Body)
	}

	deprecatedSpellings := []struct {
		method, path, body, successor string
		want                          int
	}{
		{"POST", "/connections", strings.Replace(admitBody, `"video"`, `"v2"`, 1), "/v2/networks/default/connections", http.StatusOK},
		{"POST", "/admit", strings.Replace(admitBody, `"video"`, `"v3"`, 1), "/v2/networks/default/connections", http.StatusOK},
		{"POST", "/v1/connections", strings.Replace(admitBody, `"video"`, `"v4"`, 1), "/v2/networks/default/connections", http.StatusOK},
		{"POST", "/v1/admit", strings.Replace(admitBody, `"video"`, `"v5"`, 1), "/v2/networks/default/connections", http.StatusOK},
		{"GET", "/connections", "", "/v2/networks/default/connections", http.StatusOK},
		{"GET", "/v1/connections", "", "/v2/networks/default/connections", http.StatusOK},
		{"POST", "/analyze", analyzeBody, "/v2/networks/default/analyze", http.StatusOK},
		{"POST", "/v1/analyze", analyzeBody, "/v2/networks/default/analyze", http.StatusOK},
		{"GET", "/metrics", "", "/v2/networks/default/metrics", http.StatusOK},
		{"GET", "/v1/stats", "", "/v2/networks/default/stats", http.StatusOK},
		{"GET", "/healthz", "", "/v2/healthz", http.StatusOK},
		{"GET", "/v1/healthz", "", "/v2/healthz", http.StatusOK},
		{"DELETE", "/connections/v2", "", "/v2/networks/default/connections/{name}", http.StatusOK},
		{"DELETE", "/v1/connections/v3", "", "/v2/networks/default/connections/{name}", http.StatusOK},
	}
	for _, c := range deprecatedSpellings {
		w := do(t, srv, c.method, c.path, c.body)
		if w.Code != c.want {
			t.Errorf("%s %s: want %d, got %d %s", c.method, c.path, c.want, w.Code, w.Body)
			continue
		}
		if w.Header().Get("Deprecation") != "true" {
			t.Errorf("%s %s: deprecated route missing Deprecation header", c.method, c.path)
		}
		link := w.Header().Get("Link")
		if !strings.Contains(link, c.successor) || !strings.Contains(link, "successor-version") {
			t.Errorf("%s %s: Link header %q does not point at %s", c.method, c.path, link, c.successor)
		}
	}

	// The admit-only batch's successor is the mixed-op batch, not a /v2
	// path.
	w = do(t, srv, "POST", "/v1/admit/batch", `{"connections": [`+connectionOf(strings.Replace(admitBody, `"video"`, `"b0"`, 1))+`]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/admit/batch: %d %s", w.Code, w.Body)
	}
	if link := w.Header().Get("Link"); !strings.Contains(link, "/v1/batch") {
		t.Errorf("/v1/admit/batch Link %q does not point at /v1/batch", link)
	}

	// Canonical /v2 routes answer without deprecation headers.
	for _, path := range []string{
		"/v2/networks/default/connections",
		"/v2/networks/default/metrics",
		"/v2/networks/default/stats",
		"/v2/healthz",
		"/v2/networks",
	} {
		w = do(t, srv, "GET", path, "")
		if w.Code != http.StatusOK || w.Header().Get("Deprecation") != "" {
			t.Errorf("GET %s: canonical route deprecated itself: %d %q", path, w.Code, w.Header().Get("Deprecation"))
		}
	}
}

// TestLegacyRoutesShareMetricsLabel pins the cardinality contract: every
// spelling — legacy, /v1, and the network-scoped /v2 canonical — is
// counted under one canonical label with a literal {netid} placeholder.
func TestLegacyRoutesShareMetricsLabel(t *testing.T) {
	srv := newTestServer(t, nil)
	do(t, srv, "POST", "/connections", admitBody)
	do(t, srv, "POST", "/v1/connections", strings.Replace(admitBody, `"video"`, `"w"`, 1))
	do(t, srv, "POST", "/v2/networks/default/connections", strings.Replace(admitBody, `"video"`, `"x"`, 1))
	if n := srv.Metrics().RequestCount("POST /v2/networks/{netid}/connections", http.StatusOK); n != 3 {
		t.Fatalf("canonical label count %d, want 3 (legacy + v1 + v2)", n)
	}
	for _, stale := range []string{"POST /connections", "POST /v1/connections", "POST /v2/networks/default/connections"} {
		if n := srv.Metrics().RequestCount(stale, http.StatusOK); n != 0 {
			t.Fatalf("spelling %q leaked its own metrics label (%d)", stale, n)
		}
	}
}

// TestErrorEnvelopeCodes asserts the error envelope shape
// {"error":{"code","message"}} and the stable code for every failure mode.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 512 })
	cases := []struct {
		label, method, path, body string
		status                    int
		code                      string
	}{
		{"malformed JSON", "POST", "/v1/connections", `{"connection": `, http.StatusBadRequest, CodeInvalidSpec},
		{"unknown server", "POST", "/v1/connections",
			`{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": ["nope"], "deadline": 5}}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"no deadline", "POST", "/v1/connections",
			`{"connection": {"name": "x", "sigma": 1, "rho": 0.1, "path": ["s0"]}}`,
			http.StatusBadRequest, CodeInvalidSpec},
		{"unknown analyzer", "POST", "/v1/analyze",
			strings.Replace(analyzeBody, `"integrated"`, `"quantum"`, 1),
			http.StatusBadRequest, CodeUnknownAnalyzer},
		{"remove missing", "DELETE", "/v1/connections/ghost", "", http.StatusNotFound, CodeNotFound},
		{"oversized body", "POST", "/v1/connections",
			`{"connection": {"name": "` + strings.Repeat("x", 600) + `"}}`,
			http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
	}
	for _, c := range cases {
		w := do(t, srv, c.method, c.path, c.body)
		if w.Code != c.status {
			t.Errorf("%s: want %d, got %d %s", c.label, c.status, w.Code, w.Body)
			continue
		}
		env := decode[errorResponse](t, w)
		if env.Error.Code != c.code {
			t.Errorf("%s: want code %q, got %q (%s)", c.label, c.code, env.Error.Code, w.Body)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", c.label)
		}
	}
}

// TestErrorEnvelopeTimeout pins the shed envelope on every timed endpoint:
// a passed hard deadline answers 503 + Retry-After with the timeout code.
func TestErrorEnvelopeTimeout(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	for _, c := range []struct{ path, body string }{
		{"/v1/analyze", analyzeBody},
		{"/v1/connections", admitBody},
		{"/v1/admit/batch", `{"connections": [` + connectionOf(admitBody) + `]}`},
	} {
		w := do(t, srv, "POST", c.path, c.body)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: want 503, got %d %s", c.path, w.Code, w.Body)
		}
		if got := w.Header().Get("Retry-After"); got == "" {
			t.Fatalf("%s: shed response missing Retry-After header", c.path)
		}
		if env := decode[errorResponse](t, w); env.Error.Code != CodeTimeout {
			t.Fatalf("%s: want code %q, got %s", c.path, CodeTimeout, w.Body)
		}
	}
}

// connectionOf extracts the connection object from an AdmitRequest body.
func connectionOf(admitBody string) string {
	s := strings.TrimPrefix(admitBody, `{"connection": `)
	return strings.TrimSuffix(s, `}`)
}

// TestAdmitRejectionCarriesCodeAndViolations checks the structured
// rejection contract on the 200-level decision body: stable code plus the
// violating connection with bound and deadline as fields, not prose.
func TestAdmitRejectionCarriesCodeAndViolations(t *testing.T) {
	srv := newTestServer(t, nil)
	tight := strings.Replace(admitBody, `"deadline": 20`, `"deadline": 0.001`, 1)
	tight = strings.Replace(tight, `"access_rate": 1, `, "", 1)
	w := do(t, srv, "POST", "/v1/connections", tight)
	resp := decode[AdmitResponse](t, w)
	if w.Code != http.StatusOK || resp.Admitted {
		t.Fatalf("want clean rejection, got %d %+v", w.Code, resp)
	}
	if resp.Code != CodeDeadlineMissed {
		t.Fatalf("want code %q, got %q", CodeDeadlineMissed, resp.Code)
	}
	if len(resp.Violations) == 0 {
		t.Fatal("rejection carries no violations")
	}
	v := resp.Violations[0]
	if v.Connection != "video" || v.Deadline != 0.001 || float64(v.Bound) <= v.Deadline {
		t.Fatalf("violation not structured: %+v", v)
	}

	// Unstable trials carry their own code.
	unstable := strings.Replace(admitBody, `"rho": 0.02`, `"rho": 1.5`, 1)
	unstable = strings.Replace(unstable, `"access_rate": 1, `, "", 1)
	w = do(t, srv, "POST", "/v1/connections", unstable)
	resp = decode[AdmitResponse](t, w)
	if w.Code != http.StatusOK || resp.Admitted || resp.Code != CodeUnstable {
		t.Fatalf("want unstable rejection, got %d %+v", w.Code, resp)
	}
}

const batchBody = `{"connections": [
  {"name": "b0", "sigma": 1, "rho": 0.02, "access_rate": 1, "path": ["s0", "s1"], "deadline": 20},
  {"name": "b1", "sigma": 1, "rho": 0.02, "access_rate": 1, "path": ["s0"], "deadline": 20},
  {"name": "tight", "sigma": 1, "rho": 0.02, "path": ["s0", "s1"], "deadline": 0.001},
  {"name": "nodeadline", "sigma": 1, "rho": 0.02, "access_rate": 1, "path": ["s1"]}
]}`

func TestAdmitBatch(t *testing.T) {
	srv := newTestServer(t, nil)
	w := do(t, srv, "POST", "/v1/admit/batch", batchBody)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	resp := decode[BatchAdmitResponse](t, w)
	if resp.Admitted != 2 || resp.Rejected != 2 || resp.Count != 2 || len(resp.Results) != 4 {
		t.Fatalf("batch outcome: %+v", resp)
	}
	if !resp.Results[0].Admitted || !resp.Results[1].Admitted {
		t.Fatalf("good candidates rejected: %+v", resp.Results)
	}
	if r := resp.Results[2]; r.Admitted || r.Code != CodeDeadlineMissed || len(r.Violations) == 0 {
		t.Fatalf("tight candidate: %+v", r)
	}
	if r := resp.Results[3]; r.Admitted || r.Code != CodeInvalidSpec || r.Reason == "" {
		t.Fatalf("deadline-less candidate: %+v", r)
	}
	if srv.State().Count() != 2 {
		t.Fatalf("state count %d, want 2", srv.State().Count())
	}
}

func TestAdmitBatchDryRun(t *testing.T) {
	srv := newTestServer(t, nil)
	body := strings.TrimSuffix(batchBody, "}") + `, "dry_run": true}`
	w := do(t, srv, "POST", "/v1/admit/batch", body)
	resp := decode[BatchAdmitResponse](t, w)
	if w.Code != http.StatusOK || !resp.DryRun || resp.Admitted != 2 {
		t.Fatalf("dry-run batch: %d %+v", w.Code, resp)
	}
	if srv.State().Count() != 0 {
		t.Fatalf("dry-run committed %d connections", srv.State().Count())
	}
}

func TestAdmitBatchBadInput(t *testing.T) {
	srv := newTestServer(t, nil)
	cases := map[string]string{
		"empty batch":    `{"connections": []}`,
		"unknown server": `{"connections": [{"name": "x", "sigma": 1, "rho": 0.1, "path": ["ghost"], "deadline": 5}]}`,
		"malformed":      `{"connections": `,
	}
	for label, body := range cases {
		w := do(t, srv, "POST", "/v1/admit/batch", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d %s", label, w.Code, w.Body)
		}
		if env := decode[errorResponse](t, w); env.Error.Code != CodeInvalidSpec {
			t.Errorf("%s: want code %q, got %s", label, CodeInvalidSpec, w.Body)
		}
	}
	if srv.State().Count() != 0 {
		t.Fatalf("bad batch mutated state: %d", srv.State().Count())
	}
}

// TestEngineMetricsExposed checks the new admission-engine series on the
// canonical metrics route.
func TestEngineMetricsExposed(t *testing.T) {
	srv := newTestServer(t, nil)
	do(t, srv, "POST", "/v1/connections", admitBody)
	do(t, srv, "POST", "/v1/connections", strings.Replace(admitBody, `"video"`, `"v2"`, 1))
	w := do(t, srv, "GET", "/v1/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`delayd_admission_incremental_enabled 1`,
		`delayd_admission_tests_total{mode="incremental"}`,
		`delayd_admission_tests_total{mode="full"} 0`,
		`delayd_admission_commit_conflicts_total 0`,
		`delayd_admission_affected_connections_count 2`,
		`delayd_admission_affected_connections_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}
