package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"delaycalc/internal/analysis"
)

// benchServer builds a server over the test fabric with the given cache
// capacity (0 disables caching, forcing every analyze to run the analyzer).
func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	state, err := NewState(testFabric(), analysis.Integrated{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(Config{State: state, Cache: NewCache(cacheSize)})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// benchAnalyzeSpec is a 4-server tandem with cross traffic, big enough
// that the integrated analysis does real work per miss.
func benchAnalyzeSpec() string {
	var sb strings.Builder
	sb.WriteString(`{"analyzer": "integrated", "network": {"servers": [`)
	for i := 0; i < 4; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, `{"name": "s%d", "capacity": 1}`, i)
	}
	sb.WriteString(`], "connections": [`)
	sb.WriteString(`{"name": "through", "sigma": 1, "rho": 0.05, "path": ["s0", "s1", "s2", "s3"]}`)
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, `, {"name": "cross%d", "sigma": 1, "rho": 0.05, "path": ["s%d", "s%d"]}`, i, i, i+1)
	}
	sb.WriteString(`]}}`)
	return sb.String()
}

func benchAnalyzeOnce(b *testing.B, srv *Server, body string, wantCached string) {
	b.Helper()
	r := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("analyze: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), wantCached) {
		b.Fatalf("want %s in response, got %s", wantCached, w.Body)
	}
}

// BenchmarkAnalyzeCacheHit measures the full HTTP round trip when the
// result is served from the LRU cache: decode + digest + lookup.
func BenchmarkAnalyzeCacheHit(b *testing.B) {
	srv := benchServer(b, DefaultCacheSize)
	body := benchAnalyzeSpec()
	benchAnalyzeOnce(b, srv, body, `"cached": false`) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchAnalyzeOnce(b, srv, body, `"cached": true`)
	}
}

// BenchmarkAnalyzeCacheMiss measures the same round trip with caching
// disabled, i.e. running the integrated analysis every time. The ratio to
// BenchmarkAnalyzeCacheHit is the cache win.
func BenchmarkAnalyzeCacheMiss(b *testing.B) {
	srv := benchServer(b, 0)
	body := benchAnalyzeSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchAnalyzeOnce(b, srv, body, `"cached": false`)
	}
}
