package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"delaycalc/internal/admission"
)

// latencyBuckets are the histogram upper bounds in seconds (a +Inf bucket
// is implicit). Chosen to resolve both sub-millisecond cache hits and
// multi-second worst-case integrated analyses.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []uint64 // one per bucket in latencyBuckets, cumulative on render
	sum    float64
	count  uint64
}

func (h *histogram) observe(seconds float64) {
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.count++
}

// analysisStages are the per-stage timing labels in render order; they
// mirror analysis.Timings.
var analysisStages = []string{"aggregate", "partition", "propagate", "theta"}

// Metrics accumulates request counters, an in-flight gauge, and
// per-endpoint latency histograms, and renders them in the Prometheus
// text exposition format without any external dependency.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // endpoint -> status code -> count
	hist     map[string]*histogram     // endpoint -> latency histogram
	stages   map[string]*histogram     // analysis stage -> timing histogram
	inFlight int64                     // atomic
	queued   int64                     // atomic: requests waiting for an analysis slot
	degraded uint64                    // atomic: requests served from the decomposed fallback
	shed     uint64                    // atomic: requests shed at the hard deadline or queue
}

// NewMetrics builds an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]map[int]uint64),
		hist:     make(map[string]*histogram),
		stages:   make(map[string]*histogram),
	}
}

// RequestStarted increments the in-flight gauge.
func (m *Metrics) RequestStarted() { atomic.AddInt64(&m.inFlight, 1) }

// RequestFinished decrements the in-flight gauge and records the request's
// endpoint, status code, and latency.
func (m *Metrics) RequestFinished(endpoint string, code int, seconds float64) {
	atomic.AddInt64(&m.inFlight, -1)
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode, ok := m.requests[endpoint]
	if !ok {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h, ok := m.hist[endpoint]
	if !ok {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.hist[endpoint] = h
	}
	h.observe(seconds)
}

// InFlight returns the current in-flight request count.
func (m *Metrics) InFlight() int64 { return atomic.LoadInt64(&m.inFlight) }

// RequestCount returns the total count recorded for an endpoint and code.
func (m *Metrics) RequestCount(endpoint string, code int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[endpoint][code]
}

// QueueEntered / QueueLeft track the analysis-slot wait queue.
func (m *Metrics) QueueEntered() { atomic.AddInt64(&m.queued, 1) }
func (m *Metrics) QueueLeft()    { atomic.AddInt64(&m.queued, -1) }

// QueueDepth returns the number of requests currently waiting for an
// analysis slot.
func (m *Metrics) QueueDepth() int64 { return atomic.LoadInt64(&m.queued) }

// DegradedServed counts one request answered from the decomposed fallback.
func (m *Metrics) DegradedServed() { atomic.AddUint64(&m.degraded, 1) }

// Degraded returns the cumulative degraded-request count.
func (m *Metrics) Degraded() uint64 { return atomic.LoadUint64(&m.degraded) }

// RequestShed counts one request rejected with 503 (hard deadline passed
// before an analysis slot or result was available).
func (m *Metrics) RequestShed() { atomic.AddUint64(&m.shed, 1) }

// Shed returns the cumulative shed-request count.
func (m *Metrics) Shed() uint64 { return atomic.LoadUint64(&m.shed) }

// ObserveStage records one analysis stage's accumulated time in seconds.
// Stage names come from analysis.Timings.StageSeconds.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stages[stage]
	if !ok {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.stages[stage] = h
	}
	h.observe(seconds)
}

// gaugeLine formats one sample line.
func gaugeLine(w io.Writer, name, labels string, value float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %s\n", name, labels, strconv.FormatFloat(value, 'g', -1, 64))
}

// WriteText renders every metric in the text exposition format with
// deterministic ordering. The extra gauges (cache, admission) are sampled
// from the Server that owns this Metrics via the write* helpers below.
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	fmt.Fprintln(w, "# HELP delayd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE delayd_requests_total counter")
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for code := range m.requests[ep] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			gaugeLine(w, "delayd_requests_total",
				fmt.Sprintf(`endpoint=%q,code="%d"`, ep, code), float64(m.requests[ep][code]))
		}
	}

	fmt.Fprintln(w, "# HELP delayd_in_flight_requests Requests currently being handled.")
	fmt.Fprintln(w, "# TYPE delayd_in_flight_requests gauge")
	gaugeLine(w, "delayd_in_flight_requests", "", float64(atomic.LoadInt64(&m.inFlight)))

	fmt.Fprintln(w, "# HELP delayd_analysis_queue_depth Requests waiting for an analysis slot.")
	fmt.Fprintln(w, "# TYPE delayd_analysis_queue_depth gauge")
	gaugeLine(w, "delayd_analysis_queue_depth", "", float64(atomic.LoadInt64(&m.queued)))

	fmt.Fprintln(w, "# HELP delayd_degraded_requests_total Requests answered from the decomposed fallback after the soft analysis budget expired.")
	fmt.Fprintln(w, "# TYPE delayd_degraded_requests_total counter")
	gaugeLine(w, "delayd_degraded_requests_total", "", float64(atomic.LoadUint64(&m.degraded)))

	fmt.Fprintln(w, "# HELP delayd_shed_requests_total Requests shed with 503 at the hard deadline or while queued.")
	fmt.Fprintln(w, "# TYPE delayd_shed_requests_total counter")
	gaugeLine(w, "delayd_shed_requests_total", "", float64(atomic.LoadUint64(&m.shed)))

	fmt.Fprintln(w, "# HELP delayd_analysis_stage_seconds Per-analysis stage time (partition/aggregate/theta/propagate), by stage.")
	fmt.Fprintln(w, "# TYPE delayd_analysis_stage_seconds histogram")
	for _, st := range analysisStages {
		h := m.stages[st]
		if h == nil {
			h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		}
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			gaugeLine(w, "delayd_analysis_stage_seconds_bucket",
				fmt.Sprintf(`stage=%q,le="%s"`, st, strconv.FormatFloat(ub, 'g', -1, 64)), float64(cum))
		}
		gaugeLine(w, "delayd_analysis_stage_seconds_bucket", fmt.Sprintf(`stage=%q,le="+Inf"`, st), float64(h.count))
		gaugeLine(w, "delayd_analysis_stage_seconds_sum", fmt.Sprintf("stage=%q", st), h.sum)
		gaugeLine(w, "delayd_analysis_stage_seconds_count", fmt.Sprintf("stage=%q", st), float64(h.count))
	}

	fmt.Fprintln(w, "# HELP delayd_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE delayd_request_duration_seconds histogram")
	for _, ep := range endpoints {
		h := m.hist[ep]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			gaugeLine(w, "delayd_request_duration_seconds_bucket",
				fmt.Sprintf(`endpoint=%q,le="%s"`, ep, strconv.FormatFloat(ub, 'g', -1, 64)), float64(cum))
		}
		gaugeLine(w, "delayd_request_duration_seconds_bucket",
			fmt.Sprintf(`endpoint=%q,le="+Inf"`, ep), float64(h.count))
		gaugeLine(w, "delayd_request_duration_seconds_sum", fmt.Sprintf("endpoint=%q", ep), h.sum)
		gaugeLine(w, "delayd_request_duration_seconds_count", fmt.Sprintf("endpoint=%q", ep), float64(h.count))
	}
}

// writeCacheMetrics renders the analyze-cache counters.
func writeCacheMetrics(w io.Writer, c *Cache) {
	hits, misses := c.Stats()
	fmt.Fprintln(w, "# HELP delayd_cache_hits_total Analyze-cache hits.")
	fmt.Fprintln(w, "# TYPE delayd_cache_hits_total counter")
	gaugeLine(w, "delayd_cache_hits_total", "", float64(hits))
	fmt.Fprintln(w, "# HELP delayd_cache_misses_total Analyze-cache misses.")
	fmt.Fprintln(w, "# TYPE delayd_cache_misses_total counter")
	gaugeLine(w, "delayd_cache_misses_total", "", float64(misses))
	fmt.Fprintln(w, "# HELP delayd_cache_hit_ratio Hits over lookups since start (0 when no lookups).")
	fmt.Fprintln(w, "# TYPE delayd_cache_hit_ratio gauge")
	ratio := 0.0
	if total := hits + misses; total > 0 {
		ratio = float64(hits) / float64(total)
	}
	gaugeLine(w, "delayd_cache_hit_ratio", "", ratio)
	fmt.Fprintln(w, "# HELP delayd_cache_entries Resident analyze-cache entries.")
	fmt.Fprintln(w, "# TYPE delayd_cache_entries gauge")
	gaugeLine(w, "delayd_cache_entries", "", float64(c.Len()))
}

// writeEngineMetrics renders the admission engine's counters: how many
// tests ran incrementally versus as full re-analyses, how often an Admit
// commit lost the version race, and the affected-set size histogram (how
// many existing connections each test's incremental closure touched).
func writeEngineMetrics(w io.Writer, st *State) {
	stats := st.Engine().Stats()
	fmt.Fprintln(w, "# HELP delayd_admission_incremental_enabled Whether the incremental analysis path is active.")
	fmt.Fprintln(w, "# TYPE delayd_admission_incremental_enabled gauge")
	enabled := 0.0
	if st.Engine().Incremental() {
		enabled = 1
	}
	gaugeLine(w, "delayd_admission_incremental_enabled", "", enabled)

	fmt.Fprintln(w, "# HELP delayd_admission_tests_total Admission analyses, by path.")
	fmt.Fprintln(w, "# TYPE delayd_admission_tests_total counter")
	gaugeLine(w, "delayd_admission_tests_total", `mode="incremental"`, float64(stats.IncrementalTests))
	gaugeLine(w, "delayd_admission_tests_total", `mode="full"`, float64(stats.FullTests))

	fmt.Fprintln(w, "# HELP delayd_admission_releases_total Connection releases, by how the baseline absorbed them.")
	fmt.Fprintln(w, "# TYPE delayd_admission_releases_total counter")
	gaugeLine(w, "delayd_admission_releases_total", `mode="incremental"`, float64(stats.IncrementalReleases))
	gaugeLine(w, "delayd_admission_releases_total", `mode="compacted"`, float64(stats.CompactedReleases))

	fmt.Fprintln(w, "# HELP delayd_admission_baseline_epoch Generation of the analysis baseline (bumps on every rebuild or shrink).")
	fmt.Fprintln(w, "# TYPE delayd_admission_baseline_epoch gauge")
	gaugeLine(w, "delayd_admission_baseline_epoch", "", float64(stats.BaselineEpoch))

	fmt.Fprintln(w, "# HELP delayd_admission_commit_conflicts_total Admit retries forced by a concurrent commit.")
	fmt.Fprintln(w, "# TYPE delayd_admission_commit_conflicts_total counter")
	gaugeLine(w, "delayd_admission_commit_conflicts_total", "", float64(stats.CommitConflicts))

	fmt.Fprintln(w, "# HELP delayd_admission_affected_connections Admitted connections inside each test's interference closure.")
	fmt.Fprintln(w, "# TYPE delayd_admission_affected_connections histogram")
	bounds := admission.AffectedBucketBounds()
	cum := uint64(0)
	for i, ub := range bounds {
		cum += stats.AffectedBuckets[i]
		gaugeLine(w, "delayd_admission_affected_connections_bucket",
			fmt.Sprintf(`le="%s"`, strconv.FormatFloat(ub, 'g', -1, 64)), float64(cum))
	}
	gaugeLine(w, "delayd_admission_affected_connections_bucket", `le="+Inf"`, float64(stats.AffectedCount))
	gaugeLine(w, "delayd_admission_affected_connections_sum", "", float64(stats.AffectedSum))
	gaugeLine(w, "delayd_admission_affected_connections_count", "", float64(stats.AffectedCount))

	fmt.Fprintln(w, "# HELP delayd_admission_shards Engine shards the fabric is partitioned into.")
	fmt.Fprintln(w, "# TYPE delayd_admission_shards gauge")
	gaugeLine(w, "delayd_admission_shards", "", float64(stats.Shards))

	fmt.Fprintln(w, "# HELP delayd_admission_cross_shard_commits_total Global epoch-stamped commits (component merges plus rebalances).")
	fmt.Fprintln(w, "# TYPE delayd_admission_cross_shard_commits_total counter")
	gaugeLine(w, "delayd_admission_cross_shard_commits_total", "", float64(stats.CrossShardCommits))

	fmt.Fprintln(w, "# HELP delayd_admission_rebalances_total Release-triggered component migrations onto empty shards.")
	fmt.Fprintln(w, "# TYPE delayd_admission_rebalances_total counter")
	gaugeLine(w, "delayd_admission_rebalances_total", "", float64(stats.Rebalances))

	fmt.Fprintln(w, "# HELP delayd_admission_shard_admitted Admitted connections per engine shard.")
	fmt.Fprintln(w, "# TYPE delayd_admission_shard_admitted gauge")
	for i, sh := range stats.PerShard {
		gaugeLine(w, "delayd_admission_shard_admitted", fmt.Sprintf(`shard="%d"`, i), float64(sh.Admitted))
	}

	fmt.Fprintln(w, "# HELP delayd_admission_shard_version Snapshot version per engine shard.")
	fmt.Fprintln(w, "# TYPE delayd_admission_shard_version gauge")
	for i, sh := range stats.PerShard {
		gaugeLine(w, "delayd_admission_shard_version", fmt.Sprintf(`shard="%d"`, i), float64(sh.Version))
	}
}

// writeAdmissionMetrics renders the current admitted-set gauges.
func writeAdmissionMetrics(w io.Writer, st *State) {
	_, util, count := st.Snapshot()
	servers := st.Servers()
	fmt.Fprintln(w, "# HELP delayd_admitted_connections Currently admitted connections.")
	fmt.Fprintln(w, "# TYPE delayd_admitted_connections gauge")
	gaugeLine(w, "delayd_admitted_connections", "", float64(count))
	fmt.Fprintln(w, "# HELP delayd_server_utilization Long-run utilization of each fabric server.")
	fmt.Fprintln(w, "# TYPE delayd_server_utilization gauge")
	for i, u := range util {
		name := servers[i].Name
		if name == "" {
			name = strconv.Itoa(i)
		}
		if math.IsNaN(u) {
			u = 0
		}
		gaugeLine(w, "delayd_server_utilization", fmt.Sprintf("server=%q", name), u)
	}
}
