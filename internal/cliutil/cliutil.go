// Package cliutil holds the small helpers shared by the command-line
// tools: loading a network from a spec file or a builder flag, and
// resolving analyzer names.
package cliutil

import (
	"fmt"
	"os"

	"delaycalc/internal/analysis"
	"delaycalc/internal/netspec"
	"delaycalc/internal/service"
	"delaycalc/internal/topo"
)

// LoadNetwork builds a network from either a JSON spec path or the paper's
// tandem parameters. Exactly one of specPath / tandem must be given.
func LoadNetwork(specPath string, tandem int, load float64) (*topo.Network, error) {
	switch {
	case specPath != "" && tandem > 0:
		return nil, fmt.Errorf("use either -spec or -tandem, not both")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return netspec.Decode(data)
	case tandem > 0:
		return topo.PaperTandem(tandem, load)
	default:
		return nil, fmt.Errorf("provide -spec FILE or -tandem N (see -h)")
	}
}

// PickAnalyzer resolves a user-facing algorithm name. It delegates to the
// service registry so that the CLIs and the delayd daemon accept exactly
// the same names.
func PickAnalyzer(name string) (analysis.Analyzer, error) {
	return service.PickAnalyzer(name)
}
